package host

import (
	"fmt"
	"sort"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Reliable is a stop-and-wait reliable datagram layer over the node's UDP
// stack: sequence numbers, positive acks, retransmission with exponential
// backoff and RNG jitter, and bounded retries. It is the recovery layer's
// end-to-end component — the network's link resets and watchdogs only drop
// wedged packets; something above UDP has to send them again. One Reliable
// endpoint binds one port; each destination MAC is an independent flow with
// its own sequence space and RTT estimate.
//
// The zero value is not usable; construct with NewReliable.
type Reliable struct {
	node *Node
	k    *sim.Kernel
	cfg  ReliableConfig
	port uint16

	flows  map[myrinet.MAC]*flow  // sender state per destination
	expect map[myrinet.MAC]uint32 // receiver state: next in-order seq per source
	onData func(src myrinet.MAC, data []byte)

	stats ReliableStats
}

// ReliableConfig parameterizes the transport.
type ReliableConfig struct {
	// InitialRTO seeds the retransmission timeout before any RTT sample.
	// Zero selects 2 ms (a host round trip is ~500 us of CPU overheads
	// plus wire time).
	InitialRTO sim.Duration
	// MaxRTO caps the exponential backoff. Zero selects 100 ms — past the
	// link layer's long timeout and every recovery watchdog, so a
	// retransmission lands on a link that has had time to reset itself.
	MaxRTO sim.Duration
	// MaxRetries bounds retransmissions per datagram; one past the limit
	// the datagram is abandoned and counted as GaveUp. Zero selects 6.
	MaxRetries int
}

func (c *ReliableConfig) fillDefaults() {
	if c.InitialRTO == 0 {
		c.InitialRTO = 2 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 100 * sim.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 6
	}
}

// ReliableStats aggregates one endpoint's counters across all flows.
type ReliableStats struct {
	// Sent counts datagrams accepted from the application.
	Sent uint64
	// Delivered counts datagrams positively acknowledged.
	Delivered uint64
	// Retransmits counts timeout-driven resends.
	Retransmits uint64
	// GaveUp counts datagrams abandoned after MaxRetries.
	GaveUp uint64
	// DupsDropped counts received duplicates (the datagram arrived, its
	// ack was lost, the retransmit arrived too).
	DupsDropped uint64
	// AcksReceived counts acks consumed, including stale ones.
	AcksReceived uint64
}

// FlowStats describes one destination's flow.
type FlowStats struct {
	Sent        uint64
	Delivered   uint64
	Retransmits uint64
	GaveUp      uint64
	// SRTT is the smoothed round-trip estimate; zero before any sample.
	SRTT sim.Duration
	// RTO is the current retransmission timeout.
	RTO sim.Duration
	// Queued counts datagrams waiting behind the in-flight one.
	Queued int
}

// flow is the sender half of one destination's stop-and-wait channel.
type flow struct {
	r   *Reliable
	dst myrinet.MAC

	nextSeq uint32
	queue   [][]byte // waiting behind the in-flight datagram

	// In-flight datagram; inflight == nil means the channel is idle.
	inflight []byte
	seq      uint32
	attempts int
	sentAt   sim.Time
	timer    sim.EventID
	timerSet bool

	// RFC 6298-style estimator, sampled only on first-attempt acks
	// (Karn's algorithm: a retransmitted datagram's ack is ambiguous).
	srtt   sim.Duration
	rttvar sim.Duration
	rto    sim.Duration

	stats FlowStats
}

// Wire format: kind(1) seq(4) payload. Acks echo the seq, no payload.
const (
	relKind   = 0 // offset of the kind byte
	relSeq    = 1 // offset of the big-endian sequence number
	relHdrLen = 5

	relData = byte('D')
	relAck  = byte('A')
)

// NewReliable binds port on n and returns the transport endpoint.
func NewReliable(n *Node, port uint16, cfg ReliableConfig) (*Reliable, error) {
	cfg.fillDefaults()
	r := &Reliable{
		node:   n,
		k:      n.k,
		cfg:    cfg,
		port:   port,
		flows:  make(map[myrinet.MAC]*flow),
		expect: make(map[myrinet.MAC]uint32),
	}
	if _, err := n.Bind(port, r.onDatagram); err != nil {
		return nil, err
	}
	return r, nil
}

// SetHandler registers the in-order delivery callback.
func (r *Reliable) SetHandler(fn func(src myrinet.MAC, data []byte)) { r.onData = fn }

// Stats returns a copy of the endpoint's aggregate counters.
func (r *Reliable) Stats() ReliableStats { return r.stats }

// FlowStats returns the sender-side view of the flow to dst.
func (r *Reliable) FlowStats(dst myrinet.MAC) FlowStats {
	f, ok := r.flows[dst]
	if !ok {
		return FlowStats{}
	}
	s := f.stats
	s.SRTT = f.srtt
	s.RTO = f.rto
	s.Queued = len(f.queue)
	return s
}

// Flows returns the destinations with sender state, in deterministic order.
func (r *Reliable) Flows() []myrinet.MAC {
	out := make([]myrinet.MAC, 0, len(r.flows))
	for m := range r.flows {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Outstanding counts datagrams not yet acknowledged or abandoned: in-flight
// plus queued, across all flows. It is the campaign's "work left" figure —
// a trial is done when Outstanding reaches zero.
func (r *Reliable) Outstanding() int {
	n := 0
	for _, f := range r.flows {
		if f.inflight != nil {
			n++
		}
		n += len(f.queue)
	}
	return n
}

// Send queues data for reliable delivery to dst. Per-flow stop-and-wait:
// the datagram transmits immediately if the flow is idle, otherwise waits
// its turn.
func (r *Reliable) Send(dst myrinet.MAC, data []byte) {
	f := r.flows[dst]
	if f == nil {
		f = &flow{r: r, dst: dst, rto: r.cfg.InitialRTO}
		r.flows[dst] = f
	}
	r.stats.Sent++
	f.stats.Sent++
	f.queue = append(f.queue, append([]byte(nil), data...))
	f.pump()
}

// pump transmits the next queued datagram when the flow is idle.
func (f *flow) pump() {
	if f.inflight != nil || len(f.queue) == 0 {
		return
	}
	data := f.queue[0]
	f.queue = f.queue[1:]
	f.seq = f.nextSeq
	f.nextSeq++
	f.inflight = make([]byte, relHdrLen+len(data))
	f.inflight[relKind] = relData
	putU32(f.inflight[relSeq:], f.seq)
	copy(f.inflight[relHdrLen:], data)
	f.attempts = 0
	f.transmit()
}

// transmit sends the in-flight datagram and arms the retransmission timer
// with the current RTO plus uniform jitter (so retransmissions from many
// flows hit a recovering network staggered, not in lockstep).
func (f *flow) transmit() {
	f.attempts++
	f.sentAt = f.r.k.Now()
	f.r.node.SendUDP(f.dst, f.r.port, f.r.port, f.inflight)
	wait := f.rto + sim.Duration(f.r.k.Rand().Int63n(int64(f.rto/4)+1))
	f.timer = f.r.k.AfterArg(wait, flowTimeout, f)
	f.timerSet = true
}

func flowTimeout(a any) { a.(*flow).onTimeout() }

func (f *flow) stopTimer() {
	if f.timerSet {
		f.r.k.Cancel(f.timer)
		f.timerSet = false
	}
}

// onTimeout retransmits with doubled RTO, or gives up past MaxRetries.
func (f *flow) onTimeout() {
	f.timerSet = false
	if f.inflight == nil {
		return
	}
	if f.attempts > f.r.cfg.MaxRetries {
		f.r.stats.GaveUp++
		f.stats.GaveUp++
		f.inflight = nil
		f.pump()
		return
	}
	f.r.stats.Retransmits++
	f.stats.Retransmits++
	f.rto *= 2
	if f.rto > f.r.cfg.MaxRTO {
		f.rto = f.r.cfg.MaxRTO
	}
	f.transmit()
}

// onAck completes the in-flight datagram when the seq matches.
func (f *flow) onAck(seq uint32) {
	if f.inflight == nil || seq != f.seq {
		return // stale ack for an already-completed or abandoned datagram
	}
	f.stopTimer()
	if f.attempts == 1 {
		f.sampleRTT(f.r.k.Now() - f.sentAt)
	}
	f.r.stats.Delivered++
	f.stats.Delivered++
	f.inflight = nil
	f.pump()
}

// sampleRTT folds one clean round-trip into the RFC 6298 estimator.
func (f *flow) sampleRTT(rtt sim.Duration) {
	if f.srtt == 0 {
		f.srtt = rtt
		f.rttvar = rtt / 2
	} else {
		d := f.srtt - rtt
		if d < 0 {
			d = -d
		}
		f.rttvar = (3*f.rttvar + d) / 4
		f.srtt = (7*f.srtt + rtt) / 8
	}
	f.rto = f.srtt + 4*f.rttvar
	if f.rto < f.r.cfg.InitialRTO {
		f.rto = f.r.cfg.InitialRTO
	}
	if f.rto > f.r.cfg.MaxRTO {
		f.rto = f.r.cfg.MaxRTO
	}
}

// onDatagram demultiplexes data from acks on the bound port.
func (r *Reliable) onDatagram(src myrinet.MAC, srcPort uint16, dgram []byte) {
	if len(dgram) < relHdrLen {
		return
	}
	seq := u32(dgram[relSeq:])
	switch dgram[relKind] {
	case relAck:
		r.stats.AcksReceived++
		if f, ok := r.flows[src]; ok {
			f.onAck(seq)
		}
	case relData:
		r.onDataFrame(src, seq, dgram[relHdrLen:])
	}
}

// onDataFrame acks every in-window data frame and delivers new ones in
// order. A duplicate (retransmit racing a lost ack) is re-acked but not
// re-delivered.
func (r *Reliable) onDataFrame(src myrinet.MAC, seq uint32, data []byte) {
	expected := r.expect[src]
	switch {
	case seq == expected:
		r.expect[src] = expected + 1
		r.sendAck(src, seq)
		if r.onData != nil {
			r.onData(src, append([]byte(nil), data...))
		}
	case seq < expected:
		r.stats.DupsDropped++
		r.sendAck(src, seq)
	default:
		// A gap: the sender gave up on an earlier datagram and moved on.
		// Accept the new sequence point so the flow keeps working.
		r.expect[src] = seq + 1
		r.sendAck(src, seq)
		if r.onData != nil {
			r.onData(src, append([]byte(nil), data...))
		}
	}
}

func (r *Reliable) sendAck(dst myrinet.MAC, seq uint32) {
	ack := make([]byte, relHdrLen)
	ack[relKind] = relAck
	putU32(ack[relSeq:], seq)
	r.node.SendUDP(dst, r.port, r.port, ack)
}

// String renders the aggregate counters.
func (s ReliableStats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d retx=%d gaveup=%d dups=%d",
		s.Sent, s.Delivered, s.Retransmits, s.GaveUp, s.DupsDropped)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
