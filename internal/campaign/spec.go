package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"netfi/internal/core"
	"netfi/internal/sim"
)

// Spec is a declarative fault-injection campaign, the way NFTAPE scripts
// drove the real board: a workload, a list of timed fault activations
// (raw injector command lines plus arming/metering), and a measurement
// window. Specs serialize to JSON for cmd/campaign.
type Spec struct {
	// Name labels the campaign in results.
	Name string `json:"name"`
	// Seed drives the deterministic run. Zero selects 1.
	Seed int64 `json:"seed,omitempty"`
	// DurationMS is the measured load window in simulated milliseconds.
	// Zero selects 1000.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Mapping enables the MCP mapping plane (default static routes).
	Mapping bool `json:"mapping,omitempty"`
	// TxQueueLimit bounds each NIC ring (0 = testbed default).
	TxQueueLimit int `json:"tx_queue_limit,omitempty"`
	// Load overrides the workload (zero values = defaults).
	Load LoadSpec `json:"load,omitempty"`
	// Faults lists the injector activations.
	Faults []FaultSpec `json:"faults"`
}

// LoadSpec mirrors LoadConfig in JSON-friendly units.
type LoadSpec struct {
	Burst    int     `json:"burst,omitempty"`
	PeriodMS float64 `json:"period_ms,omitempty"`
	Size     int     `json:"size,omitempty"`
}

// FaultSpec is one injector activation.
type FaultSpec struct {
	// Direction is "L" (tapped node → switch), "R" (switch → tapped
	// node), or "both" (default).
	Direction string `json:"direction,omitempty"`
	// Commands are raw injector command lines (COMPARE/CORRUPT/CRC ...),
	// sent over the serial console; do not include MODE — arming is
	// controlled by Mode and the duty fields.
	Commands []string `json:"commands"`
	// Mode is "on" (default) or "once".
	Mode string `json:"mode,omitempty"`
	// AtMS delays the activation from the start of the load.
	AtMS float64 `json:"at_ms,omitempty"`
	// DutyOnMS/DutyPeriodMS meter the trigger; zero means armed
	// continuously from AtMS.
	DutyOnMS     float64 `json:"duty_on_ms,omitempty"`
	DutyPeriodMS float64 `json:"duty_period_ms,omitempty"`
}

// SpecResult is the measured outcome of a Spec run.
type SpecResult struct {
	Name            string            `json:"name"`
	Sent            uint64            `json:"sent"`
	Received        uint64            `json:"received"`
	LossRate        float64           `json:"loss_rate"`
	CorruptAccepted uint64            `json:"corrupt_accepted"`
	Classification  string            `json:"classification"`
	Injections      uint64            `json:"injections"`
	Matches         uint64            `json:"matches"`
	Drops           map[string]uint64 `json:"drops,omitempty"`
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos in
// campaign files fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: bad spec: %w", err)
	}
	if s.Name == "" {
		return Spec{}, fmt.Errorf("campaign: spec needs a name")
	}
	for i, f := range s.Faults {
		switch f.Direction {
		case "", "both", "L", "R":
		default:
			return Spec{}, fmt.Errorf("campaign: fault %d: unknown direction %q", i, f.Direction)
		}
		switch f.Mode {
		case "", "on", "once":
		default:
			return Spec{}, fmt.Errorf("campaign: fault %d: unknown mode %q", i, f.Mode)
		}
		if (f.DutyOnMS > 0) != (f.DutyPeriodMS > 0) {
			return Spec{}, fmt.Errorf("campaign: fault %d: duty_on_ms and duty_period_ms go together", i)
		}
		if f.DutyPeriodMS > 0 && f.DutyOnMS > f.DutyPeriodMS {
			return Spec{}, fmt.Errorf("campaign: fault %d: duty on exceeds period", i)
		}
		if len(f.Commands) == 0 {
			return Spec{}, fmt.Errorf("campaign: fault %d: no commands", i)
		}
	}
	return s, nil
}

func ms(v float64) sim.Duration { return sim.Duration(v * float64(sim.Millisecond)) }

// RunSpec executes a campaign from a known good state and classifies the
// outcome.
func RunSpec(s Spec) SpecResult {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	duration := ms(s.DurationMS)
	if duration == 0 {
		duration = sim.Second
	}
	tb := NewTestbed(TestbedConfig{
		Seed:         seed,
		Mapping:      s.Mapping,
		TxQueueLimit: s.TxQueueLimit,
	})

	for _, f := range s.Faults {
		dirs := []string{"L", "R"}
		if f.Direction == "L" || f.Direction == "R" {
			dirs = []string{f.Direction}
		}
		for _, d := range dirs {
			tb.Configure(append([]string{"DIR " + d, "MODE OFF"}, f.Commands...)...)
		}
		// Arming is scheduled as direct register pokes (the way DutyCycle
		// works): the serial path cannot be driven from inside a
		// simulation event, and the paper's own campaigns pre-programmed
		// the patterns and toggled only the match mode during a run.
		engines := make([]*core.Engine, 0, 2)
		for _, d := range dirs {
			if d == "L" {
				engines = append(engines, tb.Injector.Engine(DirOutbound))
			} else {
				engines = append(engines, tb.Injector.Engine(DirInbound))
			}
		}
		mode := core.MatchOn
		if f.Mode == "once" {
			mode = core.MatchOnce
		}
		arm := func(m core.MatchMode) func() {
			return func() {
				for _, e := range engines {
					e.SetMatchMode(m)
				}
			}
		}
		if f.DutyPeriodMS > 0 {
			// Metered arming: re-arm each period, disarm after the
			// on-window.
			period := ms(f.DutyPeriodMS)
			repeats := int((duration-ms(f.AtMS))/period) + 1
			for i := 0; i < repeats; i++ {
				start := ms(f.AtMS) + sim.Duration(i)*period
				tb.K.After(start, arm(mode))
				tb.K.After(start+ms(f.DutyOnMS), arm(core.MatchOff))
			}
		} else {
			tb.K.After(ms(f.AtMS), arm(mode))
		}
	}

	load := tb.StartLoad(LoadConfig{
		Burst:  s.Load.Burst,
		Period: ms(s.Load.PeriodMS),
		Size:   s.Load.Size,
	})
	tb.K.RunFor(duration)
	load.Stop()
	tb.ConfigureBothMode(false)
	tb.K.RunFor(100 * sim.Millisecond)

	outcome := load.Classify()
	res := SpecResult{
		Name:            s.Name,
		Sent:            outcome.Sent,
		Received:        outcome.Received,
		LossRate:        outcome.LossRate,
		CorruptAccepted: outcome.CorruptAccepted,
		Classification:  outcome.Classification,
		Drops:           map[string]uint64{},
	}
	for _, dir := range []core.Direction{DirOutbound, DirInbound} {
		_, m, inj := tb.Injector.Engine(dir).Stats()
		res.Matches += m
		res.Injections += inj
	}
	for _, n := range tb.Nodes {
		for r, v := range n.Interface().Counters().Drops {
			res.Drops[r.String()] += v
		}
	}
	for p := 0; p < tb.Switch.Ports(); p++ {
		for r, v := range tb.Switch.PortCounters(p).Drops {
			res.Drops[r.String()] += v
		}
	}
	return res
}

// FormatSpecResult renders a result as text.
func FormatSpecResult(r SpecResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: sent=%d received=%d loss=%.1f%% class=%s\n",
		r.Name, r.Sent, r.Received, 100*r.LossRate, r.Classification)
	fmt.Fprintf(&b, "  injector: matches=%d injections=%d\n", r.Matches, r.Injections)
	if len(r.Drops) > 0 {
		fmt.Fprintf(&b, "  drops: %v\n", r.Drops)
	}
	return b.String()
}
