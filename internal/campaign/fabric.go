package campaign

import (
	"fmt"
	"strings"
	"time"

	"netfi/internal/monitor"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
	"netfi/internal/topo"
)

// Fabric campaigns: workloads over the sharded multi-switch topologies of
// internal/topo. Unlike the paper-scale Testbed (one switch, a handful of
// hosts, host.Node stacks), the fabric testbed drives the interfaces
// directly with scheduled sends — the point is datapath and coordinator
// throughput at hundreds of switches, not OS overhead modeling. Every
// source of nondeterminism is counter-based: destinations and payloads hash
// from (seed, host, packet), never from kernel randomness, so a fabric run
// is a pure function of its config regardless of the shard count.

// FabricWorkload selects the traffic pattern.
type FabricWorkload string

const (
	// WorkloadFlood: every host sends Packets packets at Gap intervals to
	// seed-hashed destinations.
	WorkloadFlood FabricWorkload = "flood"
	// WorkloadPingPong: hosts pair (h, h^1); each pair plays Packets
	// round trips, the reply sent from the receive upcall.
	WorkloadPingPong FabricWorkload = "pingpong"
)

// FabricConfig parameterizes one fabric run.
type FabricConfig struct {
	Topo     topo.Config
	Workload FabricWorkload // default flood
	Packets  int            // per-host send budget (default 4)
	Payload  int            // payload bytes per packet (default 64)
	Gap      sim.Duration   // per-host inter-send gap (default 5 us)
	Start    sim.Duration   // first send (default 1 us)
	Limit    sim.Duration   // run limit (default 100 ms)
	// Record keeps per-host flow tables and receive logs for the
	// equivalence fingerprint. Off for throughput runs.
	Record bool
}

func (c *FabricConfig) fillDefaults() {
	if c.Workload == "" {
		c.Workload = WorkloadFlood
	}
	if c.Packets <= 0 {
		c.Packets = 4
	}
	if c.Payload <= 0 {
		c.Payload = 64
	}
	if c.Gap <= 0 {
		c.Gap = 5 * sim.Microsecond
	}
	if c.Start <= 0 {
		c.Start = sim.Microsecond
	}
	if c.Limit <= 0 {
		c.Limit = 100 * sim.Millisecond
	}
}

// fabricEvent is one receive-log entry: the per-host event log the
// equivalence fingerprint renders.
type fabricEvent struct {
	at  sim.Time
	src uint16
	n   int
}

// fabricLogCap bounds each host's receive log; Record runs are small-fabric
// gates, so hitting the cap means a misconfigured test, and the fingerprint
// exposes the truncation through the delivered counters anyway.
const fabricLogCap = 8192

// FabricTestbed is a built fabric with its workload armed.
type FabricTestbed struct {
	Cfg FabricConfig
	F   *topo.Fabric

	Sent      []uint64 // per host
	SendErrs  []uint64
	Delivered []uint64
	Bytes     []uint64

	rings []*monitor.ExportRing // per host, Record only
	flows []*monitor.FlowTable
	logs  [][]fabricEvent

	drained bool
}

// NewFabricTestbed builds the fabric and schedules the workload's initial
// events. Run drives it.
func NewFabricTestbed(cfg FabricConfig) (*FabricTestbed, error) {
	cfg.fillDefaults()
	f, err := topo.Build(cfg.Topo)
	if err != nil {
		return nil, err
	}
	hosts := cfg.Topo.Hosts
	tb := &FabricTestbed{
		Cfg:       cfg,
		F:         f,
		Sent:      make([]uint64, hosts),
		SendErrs:  make([]uint64, hosts),
		Delivered: make([]uint64, hosts),
		Bytes:     make([]uint64, hosts),
	}
	if cfg.Record {
		tb.rings = make([]*monitor.ExportRing, hosts)
		tb.flows = make([]*monitor.FlowTable, hosts)
		tb.logs = make([][]fabricEvent, hosts)
		for h := 0; h < hosts; h++ {
			tb.rings[h] = monitor.NewExportRing(256)
			tb.flows[h] = monitor.NewFlowTable(f.Hosts[h].Name(), tb.rings[h], sim.Second)
		}
	}
	for h := 0; h < hosts; h++ {
		h := h
		f.Hosts[h].SetDataHandler(func(src myrinet.MAC, payload []byte) {
			tb.onData(h, src, payload)
		})
	}
	tb.arm()
	return tb, nil
}

// fabricMix is the workload's counter-based random stream (splitmix64 over
// the argument tuple): deterministic, shared-nothing, never touching any
// kernel's RNG.
func fabricMix(vals ...uint64) uint64 {
	h := uint64(0x452821e638d01377)
	for _, v := range vals {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// fabricSender is a host's send chain: a pooled AtArg argument that
// reschedules itself, one live event per host.
type fabricSender struct {
	tb *FabricTestbed
	h  int
	n  int
}

func fabricSenderFire(a any) { a.(*fabricSender).fire() }

func (s *fabricSender) fire() {
	tb := s.tb
	tb.send(s.h, tb.floodDst(s.h, s.n), uint32(s.n))
	s.n++
	if s.n < tb.Cfg.Packets {
		tb.F.HostKernel(s.h).AfterArg(tb.Cfg.Gap, fabricSenderFire, s)
	}
}

// floodDst picks packet n's destination for host h: seed-hashed, never h
// itself.
func (tb *FabricTestbed) floodDst(h, n int) int {
	hosts := tb.Cfg.Topo.Hosts
	d := int(fabricMix(uint64(tb.Cfg.Topo.Seed), uint64(h), uint64(n)) % uint64(hosts-1))
	if d >= h {
		d++
	}
	return d
}

// arm schedules the workload's opening sends on each host's shard kernel.
func (tb *FabricTestbed) arm() {
	hosts := tb.Cfg.Topo.Hosts
	switch tb.Cfg.Workload {
	case WorkloadFlood:
		for h := 0; h < hosts; h++ {
			s := &fabricSender{tb: tb, h: h}
			tb.F.HostKernel(h).AtArg(sim.Time(tb.Cfg.Start), fabricSenderFire, s)
		}
	case WorkloadPingPong:
		// The even host of each complete pair serves: it sends the
		// opening packet carrying the remaining-hop count; every
		// receive decrements and returns it until it hits zero.
		for h := 0; h < hosts-1; h += 2 {
			s := &pongOpener{tb: tb, h: h}
			tb.F.HostKernel(h).AtArg(sim.Time(tb.Cfg.Start), pongOpenerFire, s)
		}
	default:
		panic(fmt.Sprintf("campaign: unknown fabric workload %q", tb.Cfg.Workload))
	}
}

type pongOpener struct {
	tb *FabricTestbed
	h  int
}

func pongOpenerFire(a any) {
	s := a.(*pongOpener)
	hops := uint32(2*s.tb.Cfg.Packets - 1)
	s.tb.send(s.h, s.h+1, hops)
}

// send builds and transmits one workload packet from src to dst. The first
// four payload bytes carry the sequence number (flood) or remaining-hop
// count (ping-pong); the rest is a deterministic fill pattern.
func (tb *FabricTestbed) send(src, dst int, word uint32) {
	p := make([]byte, tb.Cfg.Payload)
	if len(p) >= 4 {
		p[0], p[1], p[2], p[3] = byte(word>>24), byte(word>>16), byte(word>>8), byte(word)
	}
	fill := byte(fabricMix(uint64(src), uint64(dst), uint64(word)))
	for i := 4; i < len(p); i++ {
		p[i] = fill + byte(i)
	}
	if err := tb.F.Hosts[src].Send(topo.HostMAC(dst), p); err != nil {
		tb.SendErrs[src]++
		return
	}
	tb.Sent[src]++
}

// onData is every host's receive upcall, running on the host's shard
// kernel.
func (tb *FabricTestbed) onData(h int, src myrinet.MAC, payload []byte) {
	tb.Delivered[h]++
	tb.Bytes[h] += uint64(len(payload))
	if tb.Cfg.Record {
		now := tb.F.HostKernel(h).Now()
		s, _ := topo.HostIndex(src)
		if len(tb.logs[h]) < fabricLogCap {
			tb.logs[h] = append(tb.logs[h], fabricEvent{at: now, src: uint16(s), n: len(payload)})
		}
		tb.flows[h].Observe(monitor.FlowKey{Src: src, Dst: tb.F.Hosts[h].MAC()}, len(payload), now)
	}
	if tb.Cfg.Workload == WorkloadPingPong && len(payload) >= 4 {
		hops := uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])
		if hops > 0 {
			s, ok := topo.HostIndex(src)
			if ok {
				tb.send(h, s, hops-1)
			}
		}
	}
}

// Run advances the fabric to the configured limit and reports whether it
// drained (ran to quiescence). Record runs flush the flow tables so every
// flow lands in its ring.
func (tb *FabricTestbed) Run() bool {
	tb.drained = tb.F.Run(sim.Time(tb.Cfg.Limit))
	if tb.Cfg.Record {
		for h := range tb.flows {
			tb.flows[h].FlushAll()
		}
	}
	return tb.drained
}

// Close releases the fabric's shard workers.
func (tb *FabricTestbed) Close() { tb.F.Close() }

// Totals sums the per-host counters.
func (tb *FabricTestbed) Totals() (sent, delivered, bytes uint64) {
	for h := range tb.Sent {
		sent += tb.Sent[h]
		delivered += tb.Delivered[h]
		bytes += tb.Bytes[h]
	}
	return
}

// fabricFingerprint digests the complete post-run state: coordinator
// counters, every STAT counter on every switch port and host interface,
// per-cable link totals, workload counters, flow records, and the per-host
// receive event logs. Two runs with equal fingerprints executed the same
// events in the same order — the byte-identity the shard equivalence gate
// compares across shard counts. Shard-count-dependent quantities are
// excluded or aggregated: windows and exchanged-delivery counts depend on
// the partition and the distance matrix (adaptive horizons cut fewer,
// wider windows; only cross-shard deliveries ride the exchange), and
// per-shard clocks / per-kernel event counts appear only as the global
// last-event time and the processed-event sum, which the coordinator keeps
// partition-independent.
func fabricFingerprint(tb *FabricTestbed) string {
	var b strings.Builder
	f := tb.F
	fmt.Fprintf(&b, "fabric now=%d processed=%d drained=%v\n",
		f.Group.Now(), f.Group.Processed(), tb.drained)
	for _, sw := range f.Switches {
		for p := 0; p < sw.Ports(); p++ {
			writeCounters(&b, fmt.Sprintf("%s.p%d", sw.Name(), p), sw.PortCounters(p))
		}
		fmt.Fprintf(&b, "%s held=%d\n", sw.Name(), sw.HeldOutputs())
	}
	for h, ifc := range f.Hosts {
		writeCounters(&b, ifc.Name(), ifc.Counters())
		fmt.Fprintf(&b, "%s sent=%d errs=%d delivered=%d bytes=%d\n",
			ifc.Name(), tb.Sent[h], tb.SendErrs[h], tb.Delivered[h], tb.Bytes[h])
	}
	for _, c := range f.Cables {
		for _, l := range []interface {
			Name() string
			Stats() (uint64, uint64)
			SeveredChars() uint64
		}{c.LeftToRight, c.RightToLeft} {
			chars, bursts := l.Stats()
			fmt.Fprintf(&b, "link %s chars=%d bursts=%d severed=%d\n", l.Name(), chars, bursts, l.SeveredChars())
		}
	}
	if tb.Cfg.Record {
		for h := range tb.rings {
			for _, rec := range tb.rings[h].Records() {
				fmt.Fprintf(&b, "flow %s %v pkts=%d bytes=%d %d..%d cause=%v\n",
					rec.Tap, rec.Key, rec.Packets, rec.Bytes, rec.First, rec.Last, rec.Cause)
			}
			fmt.Fprintf(&b, "ring %d exported=%d dropped=%d\n", h, tb.rings[h].Exported(), tb.rings[h].Dropped())
		}
		for h := range tb.logs {
			for _, e := range tb.logs[h] {
				fmt.Fprintf(&b, "ev h%04d at=%d src=%d n=%d\n", h, e.at, e.src, e.n)
			}
		}
	}
	return b.String()
}

// FabricResult summarizes one throughput run for the CLI.
type FabricResult struct {
	Cfg       FabricConfig
	Drained   bool
	SimTime   sim.Time
	Wall      time.Duration
	Sent      uint64
	Delivered uint64
	Bytes     uint64
	Symbols   uint64 // total link characters carried
	Events    uint64
	Windows   uint64
	Exchanged uint64
	// ShardEvents is the per-shard executed-event split — the load
	// balance the partitioner achieved.
	ShardEvents []uint64
}

// RunFabric builds, runs, and tears down one fabric workload.
func RunFabric(cfg FabricConfig) (FabricResult, error) {
	tb, err := NewFabricTestbed(cfg)
	if err != nil {
		return FabricResult{}, err
	}
	defer tb.Close()
	start := time.Now()
	drained := tb.Run()
	wall := time.Since(start)
	sent, delivered, bytes := tb.Totals()
	res := FabricResult{
		Cfg:       tb.Cfg,
		Drained:   drained,
		SimTime:   tb.F.Group.Now(),
		Wall:      wall,
		Sent:      sent,
		Delivered: delivered,
		Bytes:     bytes,
		Symbols:   tb.F.TotalChars(),
		Events:    tb.F.Group.Processed(),
		Windows:   tb.F.Group.Windows(),
		Exchanged: tb.F.Group.Exchanged(),
	}
	for _, k := range tb.F.Kernels {
		res.ShardEvents = append(res.ShardEvents, k.Processed())
	}
	return res, nil
}

// EventsPerWindow reports the mean executed events per coordinator window
// — the direct measure of how much work each barrier amortizes.
func (r FabricResult) EventsPerWindow() float64 {
	if r.Windows == 0 {
		return 0
	}
	return float64(r.Events) / float64(r.Windows)
}

// WindowsPerSimSec reports coordinator windows per simulated second — the
// adaptive-lookahead headline: lower means wider safe horizons.
func (r FabricResult) WindowsPerSimSec() float64 {
	secs := float64(r.SimTime) * 1e-12
	if secs <= 0 {
		return 0
	}
	return float64(r.Windows) / secs
}

// SymbolsPerSec reports simulated link characters per wall-clock second.
func (r FabricResult) SymbolsPerSec() float64 {
	secs := r.Wall.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Symbols) / secs
}

// FormatFabricStats renders the coordinator-efficiency block behind
// `netfi fabric -stats`: window counts, barrier traffic, and the
// events-per-window / windows-per-simulated-second ratios that say whether
// the adaptive horizons are doing their job.
func FormatFabricStats(r FabricResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  stats: %.1f events/window, %.3gM windows/simsec\n",
		r.EventsPerWindow(), r.WindowsPerSimSec()/1e6)
	fmt.Fprintf(&b, "  stats: %d windows, %d exchanged deliveries, %.2fM symbols/s wall\n",
		r.Windows, r.Exchanged, r.SymbolsPerSec()/1e6)
	return b.String()
}

// FormatFabric renders the CLI report.
func FormatFabric(r FabricResult) string {
	var b strings.Builder
	f := r.Cfg.Topo
	fmt.Fprintf(&b, "fabric: %d switches, %d hosts, %d shards (seed %d, %s workload)\n",
		f.Switches, f.Hosts, f.Shards, f.Seed, r.Cfg.Workload)
	fmt.Fprintf(&b, "  run: drained=%v simTime=%v wall=%v\n", r.Drained, r.SimTime, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  traffic: sent=%d delivered=%d bytes=%d\n", r.Sent, r.Delivered, r.Bytes)
	secs := r.Wall.Seconds()
	if secs > 0 {
		fmt.Fprintf(&b, "  rate: %.2fM symbols/s, %.2fM events/s (%d symbols, %d events)\n",
			float64(r.Symbols)/secs/1e6, float64(r.Events)/secs/1e6, r.Symbols, r.Events)
	}
	fmt.Fprintf(&b, "  coordinator: %d windows, %d cross-shard deliveries\n", r.Windows, r.Exchanged)
	fmt.Fprintf(&b, "  shard events:")
	for i, n := range r.ShardEvents {
		if i == 16 {
			fmt.Fprintf(&b, " ... (%d shards)", len(r.ShardEvents))
			break
		}
		fmt.Fprintf(&b, " %d", n)
	}
	b.WriteByte('\n')
	return b.String()
}
