package phy

import (
	"testing"
	"testing/quick"

	"netfi/internal/sim"
)

const charPeriod = 12_500 * sim.Picosecond // 12.5 ns at 80 MB/s

type collector struct {
	bursts [][]Character
	times  []sim.Time
	k      *sim.Kernel
}

func (c *collector) Receive(chars []Character) {
	c.bursts = append(c.bursts, chars)
	c.times = append(c.times, c.k.Now())
}

func newTestLink(t *testing.T, prop sim.Duration) (*sim.Kernel, *Link, *collector) {
	t.Helper()
	k := sim.NewKernel(1)
	c := &collector{k: k}
	l := NewLink(k, LinkConfig{Name: "test", CharPeriod: charPeriod, PropDelay: prop}, c)
	return k, l, c
}

func TestCharacterDataControl(t *testing.T) {
	d := DataChar(0x0F)
	if !d.IsData() || d.Byte() != 0x0F {
		t.Errorf("DataChar(0x0F) = %v", d)
	}
	c := ControlChar(0x0F)
	if c.IsData() || c.Byte() != 0x0F {
		t.Errorf("ControlChar(0x0F) = %v", c)
	}
	if d == c {
		t.Error("data and control characters with the same byte must differ (separate D/C bit)")
	}
	if got := d.String(); got != "D:0f" {
		t.Errorf("String() = %q, want D:0f", got)
	}
	if got := c.String(); got != "C:0f" {
		t.Errorf("String() = %q, want C:0f", got)
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	prop := 5 * sim.Nanosecond
	k, l, c := newTestLink(t, prop)
	arrival := l.Send(DataChars([]byte{1, 2, 3, 4}))
	want := 4*charPeriod + prop
	if arrival != want {
		t.Fatalf("Send returned arrival %v, want %v", arrival, want)
	}
	k.Run()
	if len(c.bursts) != 1 {
		t.Fatalf("got %d bursts, want 1", len(c.bursts))
	}
	if c.times[0] != want {
		t.Errorf("delivered at %v, want %v", c.times[0], want)
	}
}

func TestLinkSerializesBackToBackBursts(t *testing.T) {
	k, l, c := newTestLink(t, 0)
	l.Send(DataChars([]byte{1, 2}))
	l.Send(DataChars([]byte{3}))
	k.Run()
	if len(c.times) != 2 {
		t.Fatalf("got %d bursts, want 2", len(c.times))
	}
	if c.times[0] != 2*charPeriod {
		t.Errorf("first burst at %v, want %v", c.times[0], 2*charPeriod)
	}
	if c.times[1] != 3*charPeriod {
		t.Errorf("second burst at %v, want %v (queued behind first)", c.times[1], 3*charPeriod)
	}
}

func TestLinkPreservesContentAndOrder(t *testing.T) {
	k, l, c := newTestLink(t, 0)
	l.Send([]Character{ControlChar(0x0C)})
	l.Send(DataChars([]byte{0xDE, 0xAD}))
	k.Run()
	if len(c.bursts) != 2 {
		t.Fatalf("got %d bursts, want 2", len(c.bursts))
	}
	if c.bursts[0][0] != ControlChar(0x0C) {
		t.Errorf("burst 0 = %v, want GAP control char", c.bursts[0])
	}
	if c.bursts[1][0] != DataChar(0xDE) || c.bursts[1][1] != DataChar(0xAD) {
		t.Errorf("burst 1 = %v", c.bursts[1])
	}
}

func TestLinkCopiesCallerBuffer(t *testing.T) {
	k, l, c := newTestLink(t, 0)
	buf := DataChars([]byte{1, 2, 3})
	l.Send(buf)
	buf[0] = ControlChar(0xFF) // caller reuses buffer before delivery
	k.Run()
	if c.bursts[0][0] != DataChar(1) {
		t.Error("link did not copy the caller's buffer")
	}
}

func TestLinkEmptySendIsNoOp(t *testing.T) {
	k, l, c := newTestLink(t, 0)
	if got := l.Send(nil); got != 0 {
		t.Errorf("empty Send arrival = %v, want now (0)", got)
	}
	k.Run()
	if len(c.bursts) != 0 {
		t.Error("empty send delivered a burst")
	}
}

func TestLinkStats(t *testing.T) {
	k, l, _ := newTestLink(t, 0)
	l.Send(DataChars([]byte{1, 2, 3}))
	l.Send(DataChars([]byte{4}))
	k.Run()
	chars, bursts := l.Stats()
	if chars != 4 || bursts != 2 {
		t.Errorf("Stats() = (%d,%d), want (4,2)", chars, bursts)
	}
	if tp := l.Throughput(); tp <= 0 {
		t.Errorf("Throughput() = %v, want > 0", tp)
	}
}

func TestLinkIdle(t *testing.T) {
	k, l, _ := newTestLink(t, 0)
	if !l.Idle() {
		t.Error("new link not idle")
	}
	l.Send(DataChars([]byte{1}))
	if l.Idle() {
		t.Error("link idle while serializing")
	}
	k.Run()
	if !l.Idle() {
		t.Error("link not idle after drain")
	}
}

func TestLinkSetDstRewires(t *testing.T) {
	k, l, c := newTestLink(t, 0)
	c2 := &collector{k: k}
	l.SetDst(c2)
	l.Send(DataChars([]byte{9}))
	k.Run()
	if len(c.bursts) != 0 || len(c2.bursts) != 1 {
		t.Error("SetDst did not rewire delivery")
	}
}

func TestLinkConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero CharPeriod", func() {
		NewLink(k, LinkConfig{CharPeriod: 0}, ReceiverFunc(func([]Character) {}))
	})
	mustPanic("negative PropDelay", func() {
		NewLink(k, LinkConfig{CharPeriod: 1, PropDelay: -1}, ReceiverFunc(func([]Character) {}))
	})
	mustPanic("nil dst", func() { NewLink(k, LinkConfig{CharPeriod: 1}, nil) })
}

func TestCableBothDirections(t *testing.T) {
	k := sim.NewKernel(1)
	left := &collector{k: k}
	right := &collector{k: k}
	cable := NewCable(k, LinkConfig{Name: "c", CharPeriod: charPeriod}, left, right)
	cable.LeftToRight.Send(DataChars([]byte{1}))
	cable.RightToLeft.Send(DataChars([]byte{2}))
	k.Run()
	if len(right.bursts) != 1 || right.bursts[0][0].Byte() != 1 {
		t.Error("left-to-right direction failed")
	}
	if len(left.bursts) != 1 || left.bursts[0][0].Byte() != 2 {
		t.Error("right-to-left direction failed")
	}
	if cable.LeftToRight.Name() != "c:l2r" || cable.RightToLeft.Name() != "c:r2l" {
		t.Errorf("cable link names = %q, %q", cable.LeftToRight.Name(), cable.RightToLeft.Name())
	}
}

// Property: total delivery time for any sequence of bursts equals
// (total characters)*charPeriod + propDelay, i.e. the link never creates or
// destroys characters and keeps the wire contiguous under back-to-back load.
func TestLinkConservationProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		k := sim.NewKernel(1)
		c := &collector{k: k}
		l := NewLink(k, LinkConfig{Name: "p", CharPeriod: charPeriod, PropDelay: 7 * sim.Nanosecond}, c)
		total := 0
		sent := 0
		for _, s := range sizes {
			n := int(s%32) + 1
			l.Send(DataChars(make([]byte, n)))
			total += n
			sent++
		}
		k.Run()
		got := 0
		for _, b := range c.bursts {
			got += len(b)
		}
		if got != total || len(c.bursts) != sent {
			return false
		}
		if sent == 0 {
			return true
		}
		last := c.times[len(c.times)-1]
		want := sim.Duration(total)*charPeriod + 7*sim.Nanosecond
		return last == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
