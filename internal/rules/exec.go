package rules

import "math/bits"

// Executor runs a compiled Program over a symbol stream, one 9-bit symbol
// per Step call, with zero allocations in the hot path. It also owns the
// per-rule trigger state (match/fire counters, once latches, the armed
// window) so that re-arming is a Reset away, like reloading the register
// file of the single-pattern engine.
type Executor struct {
	p *Program

	dfa   int32
	lanes []uint64 // per-rule active-state bitsets (lane mode)

	symbols   uint64 // symbols consumed since Reset
	onceFired uint64
	matches   []uint64
	fires     []uint64
}

// NewExecutor returns an armed executor.
func NewExecutor(p *Program) *Executor {
	e := &Executor{
		p:       p,
		matches: make([]uint64, len(p.rules)),
		fires:   make([]uint64, len(p.rules)),
	}
	if !p.UsesDFA() {
		e.lanes = make([]uint64, len(p.rules))
	}
	e.Reset()
	return e
}

// Program returns the compiled rule set.
func (e *Executor) Program() *Program { return e.p }

// Reset re-arms the executor: automaton state, once latches, the window
// clock, and the per-rule counters all return to their power-on state.
func (e *Executor) Reset() {
	e.dfa = 0
	for i := range e.lanes {
		e.lanes[i] = 1 // the always-active unanchored start
	}
	e.symbols = 0
	e.onceFired = 0
	for i := range e.matches {
		e.matches[i] = 0
		e.fires[i] = 0
	}
}

// Step consumes one symbol and returns the bitmask of rules firing on it
// (bit i = rule i in compile order), after mode gating. Match counters
// advance even when the mode gates the fire.
func (e *Executor) Step(sym uint16) uint64 {
	sym &= SymbolMask
	e.symbols++
	var matched uint64
	if e.p.dfaTable != nil {
		e.dfa = e.p.dfaTable[int(e.dfa)*SymbolSpace+int(sym)]
		matched = e.p.dfaAccept[e.dfa]
	} else {
		for r := range e.p.lanes {
			lane := &e.p.lanes[r]
			var next uint64 = 1
			for set := e.lanes[r]; set != 0; set &= set - 1 {
				i := bits.TrailingZeros64(set)
				st := &lane.states[i]
				if st.selfAny {
					next |= 1 << uint(i)
				}
				if st.anyNext >= 0 {
					next |= 1 << uint(st.anyNext)
				}
				if st.matchNext >= 0 && (sym^st.cmp)&st.mask == 0 {
					next |= 1 << uint(st.matchNext)
				}
			}
			e.lanes[r] = next
			if next&lane.accept != 0 {
				matched |= 1 << uint(r)
			}
		}
	}
	if matched == 0 {
		return 0
	}
	var fired uint64
	for set := matched; set != 0; set &= set - 1 {
		i := bits.TrailingZeros64(set)
		e.matches[i]++
		r := &e.p.rules[i]
		fire := false
		switch r.Mode {
		case ModeOn:
			fire = true
		case ModeOnce:
			if e.onceFired&(1<<uint(i)) == 0 {
				fire = true
				e.onceFired |= 1 << uint(i)
			}
		case ModeAfterN:
			fire = e.matches[i] > r.N
		case ModeWindow:
			fire = e.symbols <= r.N
		}
		if fire {
			e.fires[i]++
			fired |= 1 << uint(i)
		}
	}
	return fired
}

// Counters reports rule i's cumulative matches and (mode-gated) fires since
// the last Reset.
func (e *Executor) Counters(i int) (matches, fires uint64) {
	return e.matches[i], e.fires[i]
}

// Symbols reports how many symbols the executor has consumed since Reset.
func (e *Executor) Symbols() uint64 { return e.symbols }
