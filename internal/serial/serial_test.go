package serial

import (
	"strings"
	"testing"
	"testing/quick"

	"netfi/internal/core"
	"netfi/internal/sim"
)

func TestUARTByteTiming(t *testing.T) {
	k := sim.NewKernel(1)
	var times []sim.Time
	u := NewUART(k, 115200, ByteSinkFunc(func(byte) { times = append(times, k.Now()) }))
	u.Send([]byte("AB"))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d bytes, want 2", len(times))
	}
	// 10 bits at 115200 baud = 86.805... us per byte.
	bt := u.ByteTime()
	if bt < 86*sim.Microsecond || bt > 87*sim.Microsecond {
		t.Errorf("ByteTime = %v, want ~86.8us", bt)
	}
	if times[0] != bt || times[1] != 2*bt {
		t.Errorf("delivery times %v, want [%v %v]", times, bt, 2*bt)
	}
}

func TestUARTQueuesBehindBusyLine(t *testing.T) {
	k := sim.NewKernel(1)
	var got []byte
	u := NewUART(k, 0, ByteSinkFunc(func(b byte) { got = append(got, b) }))
	u.Send([]byte("first "))
	u.Send([]byte("second"))
	k.Run()
	if string(got) != "first second" {
		t.Errorf("got %q", got)
	}
	if u.Sent() != 12 {
		t.Errorf("Sent() = %d, want 12", u.Sent())
	}
}

func TestSPIFrameRoundTrip(t *testing.T) {
	prop := func(b byte) bool {
		f := NewDataFrame(b)
		return f.IsData() && f.Payload() == b && f.Tag() == TagData
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSPIAssemblerPackUnpack(t *testing.T) {
	var a Assembler
	data := []byte("MODE ON\n")
	frames := a.Pack(data)
	got := a.Unpack(frames)
	if string(got) != string(data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestSPIAssemblerRejectsUnknownTags(t *testing.T) {
	var a Assembler
	frames := []Frame{NewDataFrame('A'), NewStatusFrame(0x01), NewDataFrame('B'), Frame(0xFFFF)}
	got := a.Unpack(frames)
	if string(got) != "AB" {
		t.Errorf("unpacked %q, want AB", got)
	}
	_, rejected := a.Stats()
	if rejected != 2 {
		t.Errorf("rejected = %d, want 2", rejected)
	}
}

func TestConsoleConfiguresDeviceOverSerial(t *testing.T) {
	k := sim.NewKernel(1)
	dev := core.NewDevice(k, core.DeviceConfig{Name: "inj"})
	con := NewConsole(k, dev, 115200)
	con.Send("MODE ONCE")
	con.Send("COMPARE -- -- 18 18")
	k.Run()
	if dev.Engine(core.LeftToRight).Config().Match != core.MatchOnce {
		t.Error("device not configured over the serial path")
	}
	resp := con.Responses()
	if len(resp) != 2 || resp[0] != "OK" || resp[1] != "OK" {
		t.Errorf("responses = %q", resp)
	}
}

func TestConsoleSerialPathCostsRealTime(t *testing.T) {
	// A ~10-byte command at 115200 baud costs close to a millisecond of
	// simulated time — "the slower serial line" of §3.3.
	k := sim.NewKernel(1)
	dev := core.NewDevice(k, core.DeviceConfig{Name: "inj"})
	con := NewConsole(k, dev, 115200)
	con.Send("MODE ONCE")
	k.Run()
	if k.Now() < 800*sim.Microsecond {
		t.Errorf("serial round trip completed in %v; too fast for 115200 baud", k.Now())
	}
	if con.LastResponse() != "OK" {
		t.Errorf("LastResponse = %q", con.LastResponse())
	}
}

func TestConsoleErrorResponse(t *testing.T) {
	k := sim.NewKernel(1)
	dev := core.NewDevice(k, core.DeviceConfig{Name: "inj"})
	con := NewConsole(k, dev, 0)
	con.Send("BOGUS CMD")
	k.Run()
	if !strings.HasPrefix(con.LastResponse(), "ERR") {
		t.Errorf("LastResponse = %q, want ERR...", con.LastResponse())
	}
}

func TestConsoleStatOverSerial(t *testing.T) {
	k := sim.NewKernel(1)
	dev := core.NewDevice(k, core.DeviceConfig{Name: "inj"})
	con := NewConsole(k, dev, 0)
	con.Send("STAT")
	k.Run()
	found := false
	for _, l := range con.Responses() {
		if strings.HasPrefix(l, "STAT dir=L2R") {
			found = true
		}
	}
	if !found {
		t.Errorf("no STAT line in %q", con.Responses())
	}
}

func TestUARTNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sink did not panic")
		}
	}()
	NewUART(sim.NewKernel(1), 0, nil)
}
