package rules

import (
	"fmt"
	"sort"
)

// DefaultMaxDFAStates bounds subset construction: a 1024-state DFA over the
// 512-symbol alphabet is a 2 MiB transition table — the upper end of what a
// block-RAM transition ROM on the paper's FPGA class could hold.
const DefaultMaxDFAStates = 1024

// PrefilterMode selects the batch prefilter engine (see prefilter.go).
type PrefilterMode int

const (
	// PrefilterAuto compiles a screen when it would pay: prefixes longer
	// than one symbol and starter classes covering at most half the symbol
	// space; it picks shift-and or the reduced prefix-DFA by size.
	PrefilterAuto PrefilterMode = iota
	// PrefilterOff disables the screen; StepBatch falls back to the
	// quiet-run path.
	PrefilterOff
	// PrefilterShiftAnd forces the bit-parallel engine.
	PrefilterShiftAnd
	// PrefilterReduced forces the budgeted approximate-DFA engine (falling
	// back to shift-and only if no truncation fits the budget).
	PrefilterReduced
)

// Options parameterizes compilation.
type Options struct {
	// MaxDFAStates is the subset-construction state budget; zero selects
	// DefaultMaxDFAStates. When the budget is exceeded the compiler falls
	// back to per-rule NFA lanes.
	MaxDFAStates int
	// ForceLanes skips the DFA entirely (benchmarking the fallback, or
	// bounding memory).
	ForceLanes bool
	// Prefilter selects the batch screen engine; the zero value is auto.
	Prefilter PrefilterMode
	// PrefilterBudget bounds the reduced prefix-DFA's subset construction;
	// zero selects DefaultPrefilterStates.
	PrefilterBudget int
}

// nfaState is one Thompson-style state. Each state has at most one
// consuming transition (fires when (sym^cmp)&mask == 0; mask 0 fires on any
// symbol), at most one wildcard advance (the bounded-gap chain), and an
// optional wildcard self-loop (the unanchored start and unbounded gaps).
type nfaState struct {
	cmp, mask uint16
	matchNext int32 // consuming transition target, -1 none
	anyNext   int32 // gap-chain advance target, -1 none
	selfAny   bool
	accept    int32 // rule index reaching acceptance at this state, -1 none
}

// laneProg is one rule's private NFA, executed as a 64-bit set of active
// states. Bit 0 is the start state and stays set forever (unanchored
// matching).
type laneProg struct {
	states []nfaState
	accept uint64 // bitmask of accepting local states
}

// Program is a compiled rule set: either a flat DFA transition table
// (table[state*512+sym] -> state, with a per-state accept bitmask) or, past
// the state budget, one NFA lane per rule.
type Program struct {
	rules []Rule
	lanes []laneProg

	// Subset-construction result; dfaTable nil selects lane execution.
	dfaTable  []int32
	dfaAccept []uint64
	dfaStates int

	nfaStates int

	// prefilter is the compiled batch screen; nil when off or judged
	// useless (see compilePrefilter).
	prefilter *Prefilter
}

// ProgramStats summarizes the compiled form, for resource estimation
// (internal/synth) and diagnostics.
type ProgramStats struct {
	// Rules is the rule count; NFAStates the summed per-rule NFA sizes.
	Rules     int
	NFAStates int
	// DFAStates is zero in lane mode.
	DFAStates int
	// TableEntries is the transition storage: DFA states x 512, or the
	// summed lane state counts in lane mode.
	TableEntries int
	// Mode is "dfa" or "nfa-lanes".
	Mode string
}

// Compile validates and lowers a rule set. Rule order is preserved: rule i
// of the input is bit i of every Executor fire mask.
func Compile(rs []Rule, opts Options) (*Program, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("rules: empty rule set")
	}
	if len(rs) > MaxRules {
		return nil, fmt.Errorf("rules: %d rules, max %d", len(rs), MaxRules)
	}
	budget := opts.MaxDFAStates
	if budget <= 0 {
		budget = DefaultMaxDFAStates
	}
	p := &Program{rules: make([]Rule, 0, len(rs))}
	for i := range rs {
		if err := rs[i].Validate(); err != nil {
			return nil, err
		}
		p.rules = append(p.rules, rs[i].clone())
		p.lanes = append(p.lanes, buildLane(&rs[i], int32(i)))
		p.nfaStates += len(p.lanes[i].states)
	}
	if !opts.ForceLanes {
		p.buildDFA(budget) // leaves dfaTable nil past the budget
	}
	p.prefilter = compilePrefilter(p.rules, opts)
	return p, nil
}

// buildLane lowers one rule to its private NFA. States are laid out start
// first, then per step: the gap chain (if bounded) followed by the post
// state, so every consuming transition targets the step's post state.
func buildLane(r *Rule, ruleIdx int32) laneProg {
	states := make([]nfaState, 0, r.nfaSize())
	add := func(s nfaState) int32 {
		states = append(states, s)
		return int32(len(states) - 1)
	}
	blank := nfaState{matchNext: -1, anyNext: -1, accept: -1}
	cur := add(func() nfaState { s := blank; s.selfAny = true; return s }()) // unanchored start
	for j, step := range r.Steps {
		// The post state this step's consuming transitions target.
		post := blank
		if j == len(r.Steps)-1 {
			post.accept = ruleIdx
		}
		consume := func(from int32, to int32) {
			states[from].cmp = step.Sym
			states[from].mask = step.Mask
			states[from].matchNext = to
		}
		switch {
		case step.Gap == GapUnbounded:
			states[cur].selfAny = true
			postIdx := add(post)
			consume(cur, postIdx)
			cur = postIdx
		case step.Gap > 0:
			chain := make([]int32, step.Gap)
			for k := range chain {
				chain[k] = add(blank)
			}
			postIdx := add(post)
			prev := cur
			for _, g := range chain {
				states[prev].anyNext = g
				prev = g
			}
			consume(cur, postIdx)
			for _, g := range chain {
				consume(g, postIdx)
			}
			cur = postIdx
		default:
			postIdx := add(post)
			consume(cur, postIdx)
			cur = postIdx
		}
	}
	lp := laneProg{states: states}
	for i, s := range states {
		if s.accept >= 0 {
			lp.accept |= 1 << uint(i)
		}
	}
	return lp
}

// globalNFA concatenates the lanes into one state array for subset
// construction, fixing up transition targets by each lane's offset.
func (p *Program) globalNFA() (states []nfaState, starts []int32) {
	for _, lane := range p.lanes {
		off := int32(len(states))
		starts = append(starts, off)
		for _, s := range lane.states {
			if s.matchNext >= 0 {
				s.matchNext += off
			}
			if s.anyNext >= 0 {
				s.anyNext += off
			}
			states = append(states, s)
		}
	}
	return states, starts
}

// dfaBuilder interns NFA-state sets and owns the per-symbol scratch. The
// per-DFA-state work is split into a symbol-independent "base" target set
// (self-loops, gap advances, wildcard steps) and per-symbol extras from
// masked consuming transitions, whose symbol classes are enumerated by
// walking the submasks of the don't-care bits; only symbols actually named
// by some transition get a non-base target, so a row costs 512 writes plus
// a handful of set constructions rather than 512 of them.
type dfaBuilder struct {
	nfa    []nfaState
	sets   [][]int32
	ids    map[string]int32
	accept []uint64

	specific [SymbolSpace][]int32
	touched  []uint16
}

// intern returns the DFA state id for a sorted, deduplicated NFA set,
// creating it if new.
func (b *dfaBuilder) intern(set []int32) int32 {
	key := setKey(set)
	if id, ok := b.ids[key]; ok {
		return id
	}
	id := int32(len(b.sets))
	b.sets = append(b.sets, append([]int32(nil), set...))
	b.ids[key] = id
	var acc uint64
	for _, s := range set {
		if r := b.nfa[s].accept; r >= 0 {
			acc |= 1 << uint(r)
		}
	}
	b.accept = append(b.accept, acc)
	return id
}

// setKey encodes a sorted set as map key bytes.
func setKey(set []int32) string {
	buf := make([]byte, 0, 2*len(set))
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8))
	}
	return string(buf)
}

// normalize sorts and deduplicates a target list in place.
func normalize(set []int32) []int32 {
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	out := set[:0]
	for i, s := range set {
		if i == 0 || s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// buildDFA runs subset construction under the state budget. On success the
// program's dfaTable/dfaAccept/dfaStates are populated; past the budget the
// program is left in lane mode.
func (p *Program) buildDFA(budget int) {
	nfa, starts := p.globalNFA()
	table, accept, sets, ok := subsetConstruct(nfa, starts, budget)
	if !ok {
		return // blown budget: stay in lane mode
	}
	p.dfaStates = len(sets)
	p.dfaTable = table
	p.dfaAccept = accept
}

// subsetConstruct determinizes an NFA under a state budget. It serves both
// the exact rule DFA and the prefilter's reduced prefix-DFA: the returned
// sets (the NFA members of each DFA state) let callers derive per-state
// metadata such as the prefilter's viable-partial depth. ok is false when
// the budget blew, with the partial results discarded.
func subsetConstruct(nfa []nfaState, starts []int32, budget int) (table []int32, accept []uint64, sets [][]int32, ok bool) {
	b := &dfaBuilder{nfa: nfa, ids: make(map[string]int32)}
	b.intern(normalize(append([]int32(nil), starts...)))

	// The transition table grows row by row in its final backing array —
	// one geometric-growth allocation chain instead of a 2KB row per state
	// plus a final copy.
	table = make([]int32, 0, 4*SymbolSpace)
	for si := 0; si < len(b.sets); si++ {
		S := b.sets[si]
		base := make([]int32, 0, len(S)+4)
		for _, s := range S {
			st := &nfa[s]
			if st.selfAny {
				base = append(base, s)
			}
			if st.anyNext >= 0 {
				base = append(base, st.anyNext)
			}
			if st.matchNext < 0 {
				continue
			}
			if st.mask == 0 {
				base = append(base, st.matchNext)
				continue
			}
			// Enumerate the masked symbol class: fixed bits from
			// cmp&mask, free bits walked as submasks.
			free := ^st.mask & SymbolMask
			want := st.cmp & st.mask
			for sub := uint16(free); ; sub = (sub - 1) & uint16(free) {
				sym := want | sub
				if len(b.specific[sym]) == 0 {
					b.touched = append(b.touched, sym)
				}
				b.specific[sym] = append(b.specific[sym], st.matchNext)
				if sub == 0 {
					break
				}
			}
		}
		base = normalize(base)
		baseID := b.intern(base)
		start := len(table)
		for i := 0; i < SymbolSpace; i++ {
			table = append(table, baseID)
		}
		row := table[start:]
		sort.Slice(b.touched, func(i, j int) bool { return b.touched[i] < b.touched[j] })
		for _, sym := range b.touched {
			t := append(append([]int32(nil), base...), b.specific[sym]...)
			row[sym] = b.intern(normalize(t))
			b.specific[sym] = b.specific[sym][:0]
		}
		b.touched = b.touched[:0]
		if len(b.sets) > budget {
			return nil, nil, nil, false
		}
	}
	return table, b.accept, b.sets, true
}

// NumRules returns the rule count.
func (p *Program) NumRules() int { return len(p.rules) }

// Rule returns rule i (compile order).
func (p *Program) Rule(i int) *Rule { return &p.rules[i] }

// Rules returns the compiled rules in order. The slice is shared; treat it
// as read-only.
func (p *Program) Rules() []Rule { return p.rules }

// UsesDFA reports whether subset construction fit the budget.
func (p *Program) UsesDFA() bool { return p.dfaTable != nil }

// Prefilter returns the compiled batch screen, or nil when none executes
// (mode off, or the auto heuristic judged one useless for this rule set).
func (p *Program) Prefilter() *Prefilter { return p.prefilter }

// Stats summarizes the compiled form.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{Rules: len(p.rules), NFAStates: p.nfaStates}
	if p.UsesDFA() {
		st.DFAStates = p.dfaStates
		st.TableEntries = p.dfaStates * SymbolSpace
		st.Mode = "dfa"
	} else {
		st.TableEntries = p.nfaStates
		st.Mode = "nfa-lanes"
	}
	return st
}
