package monitor

import (
	"fmt"

	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). The monitoring plane's cloning rules:
//
//   - Taps register in the mapper so the myrinet layer's deferred tap
//     lookups (LinkController.Clone) land on the fork's observation points.
//   - Probes are NOT cloned: their counter/gauge closures capture
//     campaign-owned objects of the old world. A campaign that wants probes
//     in the fork re-adds them post-fork against the cloned objects —
//     AddCounterProbe snapshots the counter at registration, so a re-added
//     probe sees no spurious delta.
//   - The export ring, flow caches, detectors, and the event log all deep
//     copy; the fork's detections diverge from the base from the fork point
//     on without back-propagating.

// Clone copies the accrual detector's inter-arrival window and clock.
func (d *PhiDetector) Clone() *PhiDetector {
	d2 := &PhiDetector{}
	*d2 = *d
	d2.samples = append([]sim.Duration(nil), d.samples...)
	return d2
}

// Clone copies the shift detector: frozen/accruing baseline and the EWMA.
func (d *ShiftDetector) Clone() *ShiftDetector {
	d2 := &ShiftDetector{base: d.base, warmup: d.warmup, zmax: d.zmax}
	e := *d.recent
	d2.recent = &e
	return d2
}

// Clone copies the export ring: buffered records and drop accounting.
func (r *ExportRing) Clone() *ExportRing {
	r2 := &ExportRing{}
	*r2 = *r
	r2.buf = append([]FlowRecord(nil), r.buf...)
	return r2
}

// Clone copies the flow table into ring (the fork plane's export ring). A
// flowState can sit in both the order slice (dead, pre-compaction) and the
// free list, so identity is preserved through a local translation map.
func (t *FlowTable) Clone(ring *ExportRing) *FlowTable {
	t2 := &FlowTable{
		tap:     t.tap,
		active:  make(map[FlowKey]*flowState, len(t.active)),
		ring:    ring,
		idle:    t.idle,
		flows:   t.flows,
		packets: t.packets,
		bytes:   t.bytes,
	}
	states := make(map[*flowState]*flowState, len(t.order)+len(t.free))
	dup := func(st *flowState) *flowState {
		if st2, ok := states[st]; ok {
			return st2
		}
		st2 := &flowState{rec: st.rec, dead: st.dead}
		states[st] = st2
		return st2
	}
	if len(t.order) > 0 {
		t2.order = make([]*flowState, len(t.order))
		for i, st := range t.order {
			t2.order[i] = dup(st)
		}
	}
	if len(t.free) > 0 {
		t2.free = make([]*flowState, len(t.free))
		for i, st := range t.free {
			t2.free[i] = dup(st)
		}
	}
	for key, st := range t.active {
		t2.active[key] = dup(st)
	}
	return t2
}

// clone copies the tap into the fork plane, registering it so stream owners
// (link controllers) rewire to it in the deferred pass.
func (t *Tap) clone(m *sim.Mapper, p2 *Plane) *Tap {
	t2 := &Tap{}
	*t2 = *t // name, burst clock, reassembly buffer, counters
	t2.plane = p2
	if t.flows != nil {
		t2.flows = t.flows.Clone(p2.ring)
	}
	if t.detector != nil {
		t2.detector = t.detector.Clone()
		m.Put(t.detector, t2.detector)
	}
	if t.gap != nil {
		t2.gap = t.gap.Clone()
	}
	m.Put(t, t2)
	return t2
}

// Clone forks the monitoring plane: every tap with its flow cache and
// detectors, the shared export ring, the suspicion state machine, and the
// event log. The sampling ticker carries its phase across the fork, so the
// fork's next tick lands exactly where the base's would have. Probes do not
// cross the fork (see the package rules above).
func (p *Plane) Clone(m *sim.Mapper) *Plane {
	p2 := &Plane{
		k:             m.Kernel(),
		cfg:           p.cfg,
		ring:          p.ring.Clone(),
		events:        append([]Event(nil), p.events...),
		eventOverflow: p.eventOverflow,
	}
	m.Put(p, p2)
	p2.ticker = p.ticker.Clone(m, p2.tick)
	if len(p.taps) > 0 {
		p2.taps = make([]*Tap, len(p.taps))
		for i, t := range p.taps {
			p2.taps[i] = t.clone(m, p2)
		}
	}
	if len(p.detectors) > 0 {
		p2.detectors = make([]*planeDetector, len(p.detectors))
		for i, pd := range p.detectors {
			v, ok := m.Lookup(pd.d)
			if !ok {
				panic(fmt.Sprintf("monitor: fork: detector %s does not belong to any tap", pd.name))
			}
			p2.detectors[i] = &planeDetector{
				name:      pd.name,
				d:         v.(*PhiDetector),
				suspected: pd.suspected,
			}
		}
	}
	return p2
}
