package rules

import (
	"math/rand"
	"testing"
)

// checkStepBatchCase builds a rule set and stream from raw bytes, randomizes
// the trigger modes (mode gating reads the symbol clock, so bulk skipping
// must keep it exact), then runs StepBatch over random chunkings against a
// fresh per-symbol executor. Every chunk's cumulative fire mask, and the
// final match/fire counters and symbol clock, must agree.
func checkStepBatchCase(t *testing.T, data []byte) {
	c := &byteCursor{data: data}
	rs := buildFuzzRules(c)
	for i := range rs {
		switch c.next() % 4 {
		case 0:
			rs[i].Mode = ModeOn
		case 1:
			rs[i].Mode = ModeOnce
		case 2:
			rs[i].Mode = ModeAfterN
			rs[i].N = uint64(c.next() % 3)
		case 3:
			rs[i].Mode = ModeWindow
			rs[i].N = uint64(c.next() % 64)
		}
	}

	// The three-way differential: prefilter off, forced shift-and, forced
	// reduced-DFA (including a starved budget that exercises the truncation
	// ladder), over both exact-engine forms. Auto mode rides along as the
	// first two entries' default. Rule sets with no usable literal prefix —
	// wildcard first steps — flow through the same cases; auto declines the
	// screen for them and forced modes must still agree.
	for _, opts := range []Options{
		{MaxDFAStates: 64},
		{ForceLanes: true},
		{MaxDFAStates: 64, Prefilter: PrefilterOff},
		{MaxDFAStates: 64, Prefilter: PrefilterShiftAnd},
		{ForceLanes: true, Prefilter: PrefilterShiftAnd},
		{MaxDFAStates: 64, Prefilter: PrefilterReduced},
		{MaxDFAStates: 64, Prefilter: PrefilterReduced, PrefilterBudget: 4},
	} {
		p, err := Compile(rs, opts)
		if err != nil {
			return // invalid rule set; the compile fuzzer owns that path
		}
		stream := buildFuzzStream(c, rs, 96)

		ref := NewExecutor(p)
		batch := NewExecutor(p)
		pos := 0
		for pos < len(stream) {
			n := 1 + int(c.next())%24
			if pos+n > len(stream) {
				n = len(stream) - pos
			}
			chunk := stream[pos : pos+n]
			var want uint64
			for _, sym := range chunk {
				want |= ref.Step(sym)
			}
			if got := batch.StepBatch(chunk); got != want {
				t.Fatalf("chunk [%d:%d): StepBatch fired %#x, per-symbol %#x (lanes=%v)\nrules: %+v\nstream: %v",
					pos, pos+n, got, want, opts.ForceLanes, rs, stream[:pos+n])
			}
			pos += n
		}
		if ref.Symbols() != batch.Symbols() {
			t.Fatalf("symbol clock diverged: per-symbol %d, batch %d", ref.Symbols(), batch.Symbols())
		}
		for i := range rs {
			rm, rf := ref.Counters(i)
			bm, bf := batch.Counters(i)
			if rm != bm || rf != bf {
				t.Fatalf("rule %d counters diverged: per-symbol (%d,%d), batch (%d,%d)\nrules: %+v",
					i, rm, rf, bm, bf, rs)
			}
		}
	}
}

// TestStepBatchEquivalence10k re-proves batch/per-symbol agreement on ten
// thousand seeded random cases every ordinary `go test` run.
func TestStepBatchEquivalence10k(t *testing.T) {
	cases := 10_000
	if testing.Short() {
		cases = 1_000
	}
	rng := rand.New(rand.NewSource(431))
	buf := make([]byte, 160)
	for i := 0; i < cases; i++ {
		rng.Read(buf)
		checkStepBatchCase(t, buf)
		if t.Failed() {
			t.Fatalf("diverged on case %d", i)
		}
	}
}

// FuzzStepBatch lets the fuzzer hunt for chunkings or rule shapes where the
// skip-run scanner disagrees with the per-symbol executor.
// Run with: go test -fuzz=FuzzStepBatch ./internal/rules
func FuzzStepBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0x18, 1, 0xFF, 2, 0x19, 0, 0x00, 5, 9, 9})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 16; i++ {
		buf := make([]byte, 16+rng.Intn(96))
		rng.Read(buf)
		f.Add(buf)
	}
	f.Fuzz(checkStepBatchCase)
}

// The quiet set must never contain a symbol the reference matcher can start
// a match on: every symbol matching some rule's first step is excluded.
func TestQuietSymbolsExcludeAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 64)
	for caseN := 0; caseN < 500; caseN++ {
		rng.Read(buf)
		c := &byteCursor{data: buf}
		rs := buildFuzzRules(c)
		for _, opts := range []Options{{MaxDFAStates: 64}, {ForceLanes: true}} {
			p, err := Compile(rs, opts)
			if err != nil {
				break
			}
			quiet := NewExecutor(p).QuietSymbols()
			for s := 0; s < SymbolSpace; s++ {
				if quiet[s>>6]&(1<<uint(s&63)) == 0 {
					continue
				}
				for i := range rs {
					first := rs[i].Steps[0]
					if (uint16(s)^first.Sym)&first.Mask&SymbolMask == 0 {
						t.Fatalf("case %d: symbol %#03x marked quiet but anchors rule %d (lanes=%v)",
							caseN, s, i, opts.ForceLanes)
					}
				}
			}
		}
	}
}
