package myrinet

import (
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Tap observes the character stream arriving at a link controller, batch by
// batch — the monitoring plane's passive observation point. Taps are
// strictly opt-in: a controller with no tap pays a single nil check per
// received burst, keeping the datapath's zero-allocation guarantees intact.
//
// The slice passed to ObserveChars is the controller's pooled receive
// burst: the tap must not retain or mutate it — copy what it needs before
// returning. Observation happens before classification, so a tap sees the
// stream exactly as the hardware does, including flow-control symbols and
// RESETs.
type Tap interface {
	ObserveChars(now sim.Time, chars []phy.Character)
}

// SetTap installs (or, with nil, removes) the controller's tap.
func (lc *LinkController) SetTap(t Tap) { lc.tap = t }

// Tap returns the controller's tap, nil when monitoring is off.
func (lc *LinkController) Tap() Tap { return lc.tap }

// SetPortTap installs a tap on switch port p's input stream: everything the
// attached device transmits into the switch. Panics if nothing is attached
// at p.
func (sw *Switch) SetPortTap(p int, t Tap) {
	if !sw.Attached(p) {
		panic("myrinet: SetPortTap on unattached port")
	}
	sw.ports[p].lc.SetTap(t)
}

// SetTap installs a tap on the interface's input stream: everything
// arriving at this host from the network. The interface must be attached.
func (ifc *Interface) SetTap(t Tap) {
	if ifc.lc == nil {
		panic("myrinet: SetTap before AttachLink")
	}
	ifc.lc.SetTap(t)
}
