// Package topo instantiates multi-stage Myrinet fabrics — leaf-spine Clos
// topologies with hundreds of switches and thousands of hosts — and shards
// one simulation across per-core event kernels.
//
// Everything about a fabric is a pure function of its Config: switch and
// host placement, port mapping, source routes, and the shard partition all
// derive deterministically from the parameters and the seed, so two
// processes building the same Config get byte-identical fabrics with no
// mapping protocol traffic (the MCP is disabled; routes come from the
// resolver).
//
// Sharding: the switch graph and the hosts are partitioned into N shards,
// each owning a private sim.Kernel. Every cable is *channelized*: its
// deliveries become externally-ordered events stamped with the link's rank
// and per-link sequence, so every kernel fires same-time deliveries in an
// order that is a pure function of the traffic rather than the partition
// (see sim.Kernel.AtExt). Cross-shard cables buffer deliveries in the
// sender shard's outbox and inject them at barriers (phy.ExchangeSet);
// same-shard cables schedule the identical event immediately
// (phy.DirectEnd). The same fabric run with 1, 2, or N shards is therefore
// byte-identical, which the campaign equivalence gate pins down.
//
// Adaptive lookahead: Build derives a shard-pair minimum-latency matrix
// from the cable map — the weight of a cross-shard edge is one character's
// serialization plus that cable's propagation delay, and dist(i, j) is the
// all-pairs shortest influence path over those edges (purely intra-shard
// chains need no barrier: DirectEnd schedules them synchronously). The
// ShardGroup uses the matrix to compute per-shard safe horizons from the
// actual pending-event times, so shards sprint past quiet periods instead
// of lock-stepping at the global minimum channel latency.
package topo

import (
	"fmt"

	"netfi/internal/myrinet"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Config parameterizes a fabric. The zero value is not usable; Switches and
// Hosts must be positive.
type Config struct {
	// Switches is the total switch count. Switches/8 (at least one, when
	// the count allows two leaves) become spines; the rest are leaves.
	// Small fabrics that cannot form a two-stage Clos fall back to a
	// full mesh of host-bearing switches.
	Switches int
	// Hosts is the total host-interface count, distributed contiguously
	// across the host-bearing switches.
	Hosts int
	// Shards is the number of event kernels to partition across; it is
	// clamped to [1, Switches+Hosts]. Zero selects 1.
	Shards int
	// Seed drives every deterministic choice (spine selection per
	// leaf pair, kernel seeding).
	Seed int64
	// HostPropDelay is the host-to-leaf cable propagation delay; zero
	// selects 25 ns (an in-rack cable). It bounds the lookahead window,
	// so longer cables mean fewer barriers.
	HostPropDelay sim.Duration
	// TrunkPropDelay is the switch-to-switch cable propagation delay;
	// zero selects 100 ns (a cross-rack trunk).
	TrunkPropDelay sim.Duration
	// MaxPacket is passed through to every interface; zero selects the
	// interface default.
	MaxPacket int
}

func (c *Config) fillDefaults() error {
	if c.Switches <= 0 {
		return fmt.Errorf("topo: Switches must be positive (got %d)", c.Switches)
	}
	if c.Hosts <= 0 {
		return fmt.Errorf("topo: Hosts must be positive (got %d)", c.Hosts)
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if max := c.Switches + c.Hosts; c.Shards > max {
		c.Shards = max
	}
	if c.HostPropDelay <= 0 {
		c.HostPropDelay = 25 * sim.Nanosecond
	}
	if c.TrunkPropDelay <= 0 {
		c.TrunkPropDelay = 100 * sim.Nanosecond
	}
	return nil
}

// Fabric is a built multi-switch Myrinet with its shard coordinator.
type Fabric struct {
	Config Config

	Kernels []*sim.Kernel
	Group   *sim.ShardGroup

	// Switches: in a Clos fabric indexes [0, leaves) are leaf switches
	// and [leaves, leaves+spines) are spines; in a mesh every switch
	// bears hosts.
	Switches []*myrinet.Switch
	Hosts    []*myrinet.Interface
	Cables   []*phy.Cable // rank order: host cables, then trunks

	// Topology shape.
	Mesh         bool
	Spines       int
	Leaves       int
	HostsPerLeaf int

	shardOfSwitch []int
	shardOfHost   []int
	lookahead     sim.Duration

	exch *phy.ExchangeSet
	// crossMin[{i, j}] is the minimum direct latency of any cross-shard
	// cable direction from shard i to shard j; the distance matrix's edge
	// weights.
	crossMin map[[2]int]sim.Duration
}

// hostMACPrefix distinguishes fabric host addresses; the low two bytes are
// the host index.
var hostMACPrefix = [4]byte{0x06, 0x4d, 0x59, 0x52} // locally administered, "MYR"

// HostMAC returns the deterministic address of fabric host i.
func HostMAC(i int) myrinet.MAC {
	return myrinet.MAC{hostMACPrefix[0], hostMACPrefix[1], hostMACPrefix[2], hostMACPrefix[3], byte(i >> 8), byte(i)}
}

// HostIndex inverts HostMAC; ok is false for foreign addresses.
func HostIndex(m myrinet.MAC) (int, bool) {
	if [4]byte{m[0], m[1], m[2], m[3]} != hostMACPrefix {
		return 0, false
	}
	return int(m[4])<<8 | int(m[5]), true
}

// splitmix advances one splitmix64 step; the fabric's only "random" choices
// (spine selection, kernel seeds) hash through it so they depend on nothing
// but the seed and the topology coordinates.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mix(vals ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, v := range vals {
		h = splitmix(h ^ v)
	}
	return h
}

// Build constructs the fabric: switches and interfaces on their shard
// kernels, every cable channelized through the shard outboxes, route
// resolvers installed, and the ShardGroup wired with the exchange hook.
func Build(cfg Config) (*Fabric, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	f := &Fabric{Config: cfg}

	// Shape: two-stage Clos when at least two leaves remain after
	// carving out spines; otherwise a full mesh of host-bearing
	// switches (covers the paper-scale 1- and 2-switch labs).
	f.Spines = cfg.Switches / 8
	if f.Spines < 1 {
		f.Spines = 1
	}
	f.Leaves = cfg.Switches - f.Spines
	if f.Leaves < 2 {
		f.Mesh = true
		f.Spines = 0
		f.Leaves = cfg.Switches
	}
	f.HostsPerLeaf = (cfg.Hosts + f.Leaves - 1) / f.Leaves

	// Port budgets: route bytes address ports through a 7-bit field.
	leafPorts := f.HostsPerLeaf + f.Spines
	if f.Mesh {
		leafPorts = f.HostsPerLeaf + cfg.Switches
	}
	const maxPorts = int(myrinet.RoutePortMask) + 1
	if leafPorts > maxPorts {
		return nil, fmt.Errorf("topo: %d ports per leaf exceeds the %d-port route byte (reduce hosts per switch)", leafPorts, maxPorts)
	}
	if f.Leaves > maxPorts {
		return nil, fmt.Errorf("topo: %d leaves exceed the %d-port spine radix", f.Leaves, maxPorts)
	}

	f.partition()

	// Kernels. The per-shard seeds only matter if a model consumes
	// kernel randomness, which fabric models never do (mapping is
	// disabled, jitter off); seeding them distinctly is belt and braces
	// for misuse, not a determinism requirement.
	f.Kernels = make([]*sim.Kernel, cfg.Shards)
	for i := range f.Kernels {
		f.Kernels[i] = sim.NewKernel(int64(mix(uint64(cfg.Seed), uint64(i))))
	}
	f.exch = phy.NewExchangeSet(cfg.Shards)
	f.crossMin = make(map[[2]int]sim.Duration)

	// Switches.
	f.Switches = make([]*myrinet.Switch, cfg.Switches)
	for i := range f.Switches {
		var name string
		var ports int
		switch {
		case f.Mesh:
			name, ports = fmt.Sprintf("sw%03d", i), leafPorts
		case i < f.Leaves:
			name, ports = fmt.Sprintf("leaf%03d", i), leafPorts
		default:
			name, ports = fmt.Sprintf("spine%02d", i-f.Leaves), f.Leaves
		}
		f.Switches[i] = myrinet.NewSwitch(f.Kernels[f.shardOfSwitch[i]], name, ports)
	}

	// Hosts.
	f.Hosts = make([]*myrinet.Interface, cfg.Hosts)
	for h := range f.Hosts {
		ifc := myrinet.NewInterface(f.Kernels[f.shardOfHost[h]], myrinet.InterfaceConfig{
			Name:      fmt.Sprintf("h%04d", h),
			MAC:       HostMAC(h),
			ID:        myrinet.NodeID(h + 1),
			MaxPacket: cfg.MaxPacket,
		})
		ifc.SetRouteResolver(f.resolverFor(h))
		f.Hosts[h] = ifc
	}

	// Cables, in rank order: host h ascending, then trunks. Each link's
	// rank is 2*cable (left-to-right) or 2*cable+1, so the exchange sort
	// key is unique and topology-determined.
	hostLink := phy.LinkConfig{CharPeriod: myrinet.CharPeriod, PropDelay: cfg.HostPropDelay}
	trunkLink := phy.LinkConfig{CharPeriod: myrinet.CharPeriod, PropDelay: cfg.TrunkPropDelay}
	for h := range f.Hosts {
		sw, port := f.hostAttach(h)
		lc := hostLink
		lc.Name = fmt.Sprintf("%s<->%s.p%d", f.Hosts[h].Name(), f.Switches[sw].Name(), port)
		f.addCable(lc, f.shardOfHost[h], f.shardOfSwitch[sw], f.Hosts[h], myrinet.Port(f.Switches[sw], port))
	}
	if f.Mesh {
		for a := 0; a < cfg.Switches; a++ {
			for b := a + 1; b < cfg.Switches; b++ {
				lc := trunkLink
				lc.Name = fmt.Sprintf("%s.p%d<->%s.p%d", f.Switches[a].Name(), f.HostsPerLeaf+b, f.Switches[b].Name(), f.HostsPerLeaf+a)
				f.addCable(lc, f.shardOfSwitch[a], f.shardOfSwitch[b],
					myrinet.Port(f.Switches[a], f.HostsPerLeaf+b), myrinet.Port(f.Switches[b], f.HostsPerLeaf+a))
			}
		}
	} else {
		for l := 0; l < f.Leaves; l++ {
			for s := 0; s < f.Spines; s++ {
				spine := f.Switches[f.Leaves+s]
				lc := trunkLink
				lc.Name = fmt.Sprintf("%s.p%d<->%s.p%d", f.Switches[l].Name(), f.HostsPerLeaf+s, spine.Name(), l)
				f.addCable(lc, f.shardOfSwitch[l], f.shardOfSwitch[f.Leaves+s],
					myrinet.Port(f.Switches[l], f.HostsPerLeaf+s), myrinet.Port(spine, l))
			}
		}
	}

	// Lookahead: the minimum virtual-time latency of any link — one
	// character's serialization plus the shortest propagation delay.
	minProp := cfg.HostPropDelay
	if cfg.TrunkPropDelay < minProp {
		minProp = cfg.TrunkPropDelay
	}
	f.lookahead = myrinet.CharPeriod + minProp

	f.Group = sim.NewShardGroup(f.Kernels, f.lookahead)
	f.Group.SetDistanceMatrix(f.distanceMatrix())
	f.Group.SetExchange(f.exch.Exchange)
	return f, nil
}

// distanceMatrix computes dist[i][j]: the minimum virtual-time latency from
// an event executing on shard i to the earliest resulting arrival on shard
// j over influence paths with at least one cross-shard hop (zero when no
// such path exists). Purely intra-shard delivery chains are excluded on
// purpose — DirectEnd schedules them synchronously during the window, so
// they never need barrier protection; only chains whose last hop crosses a
// shard boundary wait in an outbox. Seeding each Dijkstra frontier with the
// source's outgoing edges (instead of dist[src] = 0) makes dist[j][j] the
// shortest nontrivial cross-shard cycle through j for free.
func (f *Fabric) distanceMatrix() [][]sim.Duration {
	n := f.Config.Shards
	type edge struct {
		to int
		w  sim.Duration
	}
	adj := make([][]edge, n)
	for pair, w := range f.crossMin {
		adj[pair[0]] = append(adj[pair[0]], edge{pair[1], w})
	}

	const inf = sim.Duration(1<<63 - 1)
	type item struct {
		d sim.Duration
		v int
	}
	var pq []item
	push := func(it item) {
		pq = append(pq, it)
		for i := len(pq) - 1; i > 0; {
			p := (i - 1) / 2
			if pq[p].d <= pq[i].d {
				break
			}
			pq[p], pq[i] = pq[i], pq[p]
			i = p
		}
	}
	pop := func() item {
		top := pq[0]
		last := len(pq) - 1
		pq[0] = pq[last]
		pq = pq[:last]
		for i := 0; ; {
			l, r, m := 2*i+1, 2*i+2, i
			if l < len(pq) && pq[l].d < pq[m].d {
				m = l
			}
			if r < len(pq) && pq[r].d < pq[m].d {
				m = r
			}
			if m == i {
				break
			}
			pq[i], pq[m] = pq[m], pq[i]
			i = m
		}
		return top
	}

	dist := make([][]sim.Duration, n)
	d := make([]sim.Duration, n)
	for src := 0; src < n; src++ {
		for i := range d {
			d[i] = inf
		}
		pq = pq[:0]
		for _, e := range adj[src] {
			if e.w < d[e.to] {
				d[e.to] = e.w
				push(item{e.w, e.to})
			}
		}
		for len(pq) > 0 {
			it := pop()
			if it.d > d[it.v] {
				continue
			}
			for _, e := range adj[it.v] {
				if nd := it.d + e.w; nd < d[e.to] {
					d[e.to] = nd
					push(item{nd, e.to})
				}
			}
		}
		row := make([]sim.Duration, n)
		for j := range row {
			if d[j] < inf {
				row[j] = d[j]
			}
		}
		dist[src] = row
	}
	return dist
}

// partition assigns switches and hosts to shards. Units are switches AND
// hosts, so a fabric can shard finer than its switch count (the 2-switch
// equivalence gate runs 4 shards). With N <= switches, switches split into
// contiguous blocks and each host follows its switch, keeping host<->leaf
// cables intra-shard; with more shards than switches, every switch gets its
// own shard and hosts spread over the remainder.
func (f *Fabric) partition() {
	s, h, n := f.Config.Switches, f.Config.Hosts, f.Config.Shards
	f.shardOfSwitch = make([]int, s)
	f.shardOfHost = make([]int, h)
	if n <= s {
		for i := range f.shardOfSwitch {
			f.shardOfSwitch[i] = i * n / s
		}
		for i := range f.shardOfHost {
			sw, _ := f.hostAttach(i)
			f.shardOfHost[i] = f.shardOfSwitch[sw]
		}
		return
	}
	for i := range f.shardOfSwitch {
		f.shardOfSwitch[i] = i
	}
	for i := range f.shardOfHost {
		f.shardOfHost[i] = s + i*(n-s)/h
	}
}

// hostAttach returns the switch index and port where host h attaches.
func (f *Fabric) hostAttach(h int) (sw, port int) {
	return h / f.HostsPerLeaf, h % f.HostsPerLeaf
}

// addCable builds one channelized cable: each direction's link lives on the
// sender's kernel. Cross-shard directions buffer through the sender shard's
// outbox for barrier exchange and record the edge in the latency graph;
// same-shard directions schedule the identical externally-ordered event
// directly into the shared kernel.
func (f *Fabric) addCable(cfg phy.LinkConfig, shardA, shardB int, a, b myrinet.Attachable) {
	cable := myrinet.ConnectCross(f.Kernels[shardA], f.Kernels[shardB], cfg, a, b)
	rank := uint32(2 * len(f.Cables))
	if shardA == shardB {
		cable.LeftToRight.SetDeliverySink(phy.NewDirectEnd(f.Kernels[shardA], rank))
		cable.RightToLeft.SetDeliverySink(phy.NewDirectEnd(f.Kernels[shardA], rank+1))
	} else {
		cable.LeftToRight.SetDeliverySink(phy.NewChannelEnd(f.exch.Box(shardA), f.Kernels[shardB], rank))
		cable.RightToLeft.SetDeliverySink(phy.NewChannelEnd(f.exch.Box(shardB), f.Kernels[shardA], rank+1))
		lat := cfg.CharPeriod + cfg.PropDelay
		f.noteCross(shardA, shardB, lat)
		f.noteCross(shardB, shardA, lat)
	}
	f.Cables = append(f.Cables, cable)
}

// noteCross records a direct cross-shard edge for the distance matrix.
func (f *Fabric) noteCross(from, to int, lat sim.Duration) {
	key := [2]int{from, to}
	if cur, ok := f.crossMin[key]; !ok || lat < cur {
		f.crossMin[key] = lat
	}
}

// Route returns the source route from host src to host dst, or false when
// either index is out of range. Same-leaf traffic takes one hop; cross-leaf
// traffic transits a spine chosen deterministically per (srcLeaf, dstLeaf)
// from the seed, so both the route and the load spread are reproducible.
func (f *Fabric) Route(src, dst int) ([]byte, bool) {
	if src < 0 || src >= f.Config.Hosts || dst < 0 || dst >= f.Config.Hosts || src == dst {
		return nil, false
	}
	srcSw, _ := f.hostAttach(src)
	dstSw, dstPort := f.hostAttach(dst)
	if srcSw == dstSw {
		return myrinet.RouteTo(dstPort), true
	}
	if f.Mesh {
		return myrinet.RouteTo(f.HostsPerLeaf+dstSw, dstPort), true
	}
	spine := int(mix(uint64(f.Config.Seed), uint64(srcSw), uint64(dstSw)) % uint64(f.Spines))
	return myrinet.RouteTo(f.HostsPerLeaf+spine, dstSw, dstPort), true
}

// resolverFor builds host h's on-demand route resolver: the interface's
// table stays empty until a destination is first used, so a 1024-host
// fabric does not materialize a million route entries up front.
func (f *Fabric) resolverFor(h int) func(myrinet.MAC) ([]byte, bool) {
	return func(dst myrinet.MAC) ([]byte, bool) {
		d, ok := HostIndex(dst)
		if !ok {
			return nil, false
		}
		return f.Route(h, d)
	}
}

// Lookahead returns the conservative-lookahead window width.
func (f *Fabric) Lookahead() sim.Duration { return f.lookahead }

// ShardOfHost returns the shard owning host h.
func (f *Fabric) ShardOfHost(h int) int { return f.shardOfHost[h] }

// ShardOfSwitch returns the shard owning switch i.
func (f *Fabric) ShardOfSwitch(i int) int { return f.shardOfSwitch[i] }

// HostKernel returns the kernel owning host h; workload events for h must
// be scheduled here.
func (f *Fabric) HostKernel(h int) *sim.Kernel { return f.Kernels[f.shardOfHost[h]] }

// Run advances the fabric to limit (see sim.ShardGroup.Run); it reports
// whether the fabric drained.
func (f *Fabric) Run(limit sim.Time) bool { return f.Group.Run(limit) }

// Close releases the shard workers. The fabric must not run afterwards.
func (f *Fabric) Close() { f.Group.Close() }

// TotalChars sums the characters carried by every link in the fabric — the
// "simulated symbols" of the headline symbols/sec metric.
func (f *Fabric) TotalChars() uint64 {
	var total uint64
	for _, c := range f.Cables {
		for _, l := range []*phy.Link{c.LeftToRight, c.RightToLeft} {
			chars, _ := l.Stats()
			total += chars
		}
	}
	return total
}
