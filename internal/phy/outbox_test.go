package phy

import (
	"testing"

	"netfi/internal/sim"
)

// Steady-state barrier exchange is per-window overhead in a sharded
// fabric: after the delivery and event pools warm up and the outbox
// backing arrays reach their working size, a buffer/exchange/execute cycle
// must not allocate at all.
func TestExchangeSteadyStateAllocs(t *testing.T) {
	k := sim.NewKernel(1)
	set := NewExchangeSet(2)
	endA := NewChannelEnd(set.Box(0), k, 2)
	endB := NewChannelEnd(set.Box(1), k, 3)
	sink := &releasingSink{}
	cycle := func() {
		base := k.Now()
		for i := 0; i < 8; i++ {
			endA.Deliver(base+sim.Time(i+1), sink, GetBurst(16))
			endB.Deliver(base+sim.Time(i+1), sink, GetBurst(16))
		}
		if n := set.Exchange(); n != 16 {
			t.Fatalf("exchange moved %d deliveries, want 16", n)
		}
		k.Run()
	}
	for i := 0; i < 50; i++ {
		cycle() // warm the pools and the pending/scratch arrays
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("steady-state exchange allocates %.2f objects/op, want 0", avg)
	}
	if sink.chars == 0 {
		t.Fatal("sink received nothing")
	}
}

// The empty fast path must not touch any outbox: with nothing buffered,
// Exchange is one atomic load.
func TestExchangeEmptySkip(t *testing.T) {
	set := NewExchangeSet(4)
	if avg := testing.AllocsPerRun(100, func() {
		if set.Exchange() != 0 {
			t.Fatal("empty exchange moved deliveries")
		}
	}); avg != 0 {
		t.Errorf("empty exchange allocates %.2f objects/op, want 0", avg)
	}
}

// A traffic burst balloons an outbox's pending array; sustained light
// traffic afterwards must shrink it back instead of pinning the high-water
// capacity forever.
func TestOutboxShrinksAfterBurst(t *testing.T) {
	k := sim.NewKernel(1)
	set := NewExchangeSet(1)
	end := NewChannelEnd(set.Box(0), k, 0)
	sink := &releasingSink{}
	deliver := func(n int) {
		base := k.Now()
		for i := 0; i < n; i++ {
			end.Deliver(base+sim.Time(i+1), sink, GetBurst(16))
		}
		set.Exchange()
		k.Run()
	}
	deliver(512)
	grown := cap(set.Box(0).pending)
	if grown < 512 {
		t.Fatalf("burst did not grow the pending array (cap %d)", grown)
	}
	for i := 0; i < 200; i++ {
		deliver(1)
	}
	if c := cap(set.Box(0).pending); c >= grown {
		t.Errorf("pending cap %d did not shrink from burst high-water %d", c, grown)
	}
}

// DirectEnd must reproduce the exchange path's event ordering: same-time
// deliveries fire in (rank, seq) order no matter how they were scheduled,
// and external deliveries fire before local events at the same timestamp.
func TestDirectEndOrdering(t *testing.T) {
	k := sim.NewKernel(1)
	var order []int
	tag := func(id int) Receiver {
		return ReceiverFunc(func(chars []Character) {
			order = append(order, id)
			ReleaseBurst(chars)
		})
	}
	at := sim.Time(100)
	hi := NewDirectEnd(k, 9)
	lo := NewDirectEnd(k, 4)
	k.At(at, func() { order = append(order, 99) }) // local: fires after externals
	hi.Deliver(at, tag(2), GetBurst(8))
	hi.Deliver(at, tag(3), GetBurst(8)) // same rank: seq breaks the tie
	lo.Deliver(at, tag(1), GetBurst(8))
	k.Run()
	want := []int{1, 2, 3, 99}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
