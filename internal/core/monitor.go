package core

import (
	"fmt"
	"sort"

	"netfi/internal/phy"
)

// PacketStats implements the §3.2 statistics-gathering feature: the FPGA
// has full access to the data path, so it can parse data-link packet
// headers on the fly and increment counters per source/destination
// identifier pair. This is the Myrinet-specific slice of the interface
// logic: it understands the route-byte prefix, the 4-byte type field, and
// the 48-bit addresses at the head of data payloads.
//
// The zero value is not usable; construct with NewPacketStats.
type PacketStats struct {
	// Stream reassembly.
	inPacket bool
	buf      []byte

	packets        uint64
	controlPackets uint64
	pairs          map[pairKey]uint64
}

type pairKey struct {
	src, dst [6]byte
}

// maxStatsHeader bounds header reassembly; payload beyond it is not needed
// for identifier extraction.
const maxStatsHeader = 64

// NewPacketStats returns an empty monitor.
func NewPacketStats() *PacketStats {
	return &PacketStats{pairs: make(map[pairKey]uint64)}
}

// Observe feeds pass-through characters to the monitor.
func (s *PacketStats) Observe(chars []phy.Character) {
	for _, c := range chars {
		if c.IsData() {
			s.inPacket = true
			if len(s.buf) < maxStatsHeader {
				s.buf = append(s.buf, c.Byte())
			}
			continue
		}
		// GAP terminates a packet; other control symbols are ignored.
		if c.Byte() == 0x0C && s.inPacket {
			s.classify(s.buf)
			s.buf = s.buf[:0]
			s.inPacket = false
		}
	}
}

func (s *PacketStats) classify(raw []byte) {
	s.packets++
	// Skip switch-hop route bytes (MSB set), then the final route byte.
	i := 0
	for i < len(raw) && raw[i]&0x80 != 0 {
		i++
	}
	i++ // final route byte
	if i+4 > len(raw) {
		return
	}
	typ := uint16(raw[i+2])<<8 | uint16(raw[i+3])
	hi := uint16(raw[i])<<8 | uint16(raw[i+1])
	i += 4
	if hi != 0 || typ != 0x0004 {
		s.controlPackets++
		return
	}
	if i+12 > len(raw) {
		return
	}
	var k pairKey
	copy(k.dst[:], raw[i:i+6])
	copy(k.src[:], raw[i+6:i+12])
	s.pairs[k]++
}

// Packets reports total packets observed and how many were non-data
// (control/mapping) packets.
func (s *PacketStats) Packets() (total, control uint64) { return s.packets, s.controlPackets }

// PairCount reports the packet count seen for a src → dst identifier pair.
func (s *PacketStats) PairCount(src, dst [6]byte) uint64 {
	return s.pairs[pairKey{src: src, dst: dst}]
}

// Report renders the per-pair counters, sorted for determinism.
func (s *PacketStats) Report() []string {
	keys := make([]pairKey, 0, len(s.pairs))
	for k := range s.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a := fmt.Sprintf("%x%x", keys[i].src, keys[i].dst)
		b := fmt.Sprintf("%x%x", keys[j].src, keys[j].dst)
		return a < b
	})
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%x -> %x: %d", k.src, k.dst, s.pairs[k]))
	}
	return out
}

// Reset clears all counters.
func (s *PacketStats) Reset() {
	s.packets = 0
	s.controlPackets = 0
	s.pairs = make(map[pairKey]uint64)
	s.buf = s.buf[:0]
	s.inPacket = false
}
