package rules

// Clone copies the executor's run state — automaton position, counters,
// once latches — sharing the compiled Program, which is immutable after
// Compile. Forked campaigns use this to duplicate a warmed injector without
// recompiling.
func (e *Executor) Clone() *Executor {
	e2 := &Executor{}
	*e2 = *e // p (shared), dfa, symbols, onceFired, quiet (value array)
	if e.lanes != nil {
		e2.lanes = append([]uint64(nil), e.lanes...)
	}
	e2.matches = append([]uint64(nil), e.matches...)
	e2.fires = append([]uint64(nil), e.fires...)
	return e2
}
