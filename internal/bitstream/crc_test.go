package bitstream

import (
	"bytes"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCRC8KnownVectors(t *testing.T) {
	// CRC-8/ATM-HEC ("123456789" -> 0xF4 is the standard check value for
	// poly 0x07, init 0, no reflection).
	cases := []struct {
		in   string
		want byte
	}{
		{"", 0x00},
		{"123456789", 0xF4},
		{"\x00", 0x00},
		{"\xFF", 0xF3},
	}
	for _, c := range cases {
		if got := CRC8([]byte(c.in)); got != c.want {
			t.Errorf("CRC8(%q) = %#02x, want %#02x", c.in, got, c.want)
		}
	}
}

func TestCRC8UpdateMatchesWholeBuffer(t *testing.T) {
	data := []byte("myrinet packet body with route bytes")
	var crc byte
	for _, b := range data {
		crc = CRC8Update(crc, b)
	}
	if want := CRC8(data); crc != want {
		t.Errorf("incremental CRC8 = %#02x, want %#02x", crc, want)
	}
}

func TestCRC8DetectsSingleBitErrors(t *testing.T) {
	data := []byte{0x81, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}
	good := CRC8(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= 1 << bit
			if CRC8(mutated) == good {
				t.Errorf("single-bit flip at byte %d bit %d not detected", i, bit)
			}
		}
	}
}

// Property: CRC-8 is linear over GF(2): crc(a^b) == crc(a)^crc(b) for
// equal-length inputs (with zero init, no final xor).
func TestCRC8Linearity(t *testing.T) {
	prop := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		x := make([]byte, n)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return CRC8(x) == CRC8(a)^CRC8(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	prop := func(data []byte) bool {
		return CRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksum16KnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions: verify by summing back in.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	sum := Checksum16(data)
	withSum := append(append([]byte(nil), data...), byte(sum>>8), byte(sum))
	if !VerifyChecksum16(withSum) {
		t.Errorf("Checksum16 round trip failed: sum=%#04x", sum)
	}
}

func TestChecksum16OddLength(t *testing.T) {
	data := []byte{0xAB, 0xCD, 0xEF}
	sum := Checksum16(data)
	// Appending the checksum after padding semantics: verify manually.
	var s uint32 = 0xABCD + 0xEF00 + uint32(sum)
	for s>>16 != 0 {
		s = s&0xFFFF + s>>16
	}
	if uint16(s) != 0xFFFF {
		t.Errorf("odd-length checksum does not verify: %#04x", s)
	}
}

// Property: swapping two bytes exactly 16 bits apart is invisible to the
// one's-complement checksum. This is precisely the fault the paper's §4.3.4
// injection exploits ("Have a lot of fun" -> "veHa a lot of fun").
func TestChecksum16BlindToAlignedSwaps(t *testing.T) {
	prop := func(data []byte, idx uint8) bool {
		if len(data) < 4 {
			return true
		}
		i := int(idx) % (len(data) - 2)
		// Swap data[i] with data[i+2]: same column in the 16-bit sum.
		mutated := append([]byte(nil), data...)
		mutated[i], mutated[i+2] = mutated[i+2], mutated[i]
		return Checksum16(mutated) == Checksum16(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksum16HaveALotOfFun(t *testing.T) {
	orig := []byte("Have a lot of fun")
	swapped := []byte("veHa a lot of fun")
	// "Have" -> "veHa" swaps bytes 0<->2 and 1<->3, both 16 bits apart.
	if Checksum16(orig) != Checksum16(swapped) {
		t.Error("checksum detected the 16-bit-aligned swap; the paper's fault should be invisible")
	}
	// A swap that is NOT 16-bit aligned is detected.
	detected := append([]byte(nil), orig...)
	detected[0], detected[1] = detected[1], detected[0]
	if Checksum16(detected) == Checksum16(orig) && !bytes.Equal(detected, orig) {
		t.Error("adjacent-byte swap unexpectedly evaded the checksum")
	}
}

func TestChecksum16DetectsSingleBitErrors(t *testing.T) {
	data := []byte("UDP payload under test 1234")
	good := Checksum16(data)
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if Checksum16(mutated) == good {
			t.Errorf("bit error at byte %d not detected", i)
		}
	}
}
