package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/netmap"
	"netfi/internal/sim"
)

// Sec433Result reproduces the §4.3.3 physical-address corruption
// experiments. All four use the injector's ability to rewrite the 48-bit
// Ethernet-style addresses in flight; the CRC-recompute trigger decides
// whether the corruption survives the interface's CRC check.
type Sec433Result struct {
	// Destination corrupted to another node's address, CRC left stale:
	// dropped "as a result of the incorrect CRC-8", received by neither.
	DestDroppedByCRC    bool
	DestNeitherReceived bool

	// The node's own (inbound destination) address corrupted: it drops
	// everything as misaddressed yet "still responds correctly to
	// mapping packets and the routing information remained unchanged".
	SelfUnreachable   bool
	SelfMappingWorks  bool
	SelfRoutingStable bool

	// Address corrupted to match the controller's: the routing table is
	// badly corrupted; every resolution attempt fails differently.
	CtrlMapsInconsistent bool
	CtrlMapsVary         bool
	CtrlFigBefore        string
	CtrlFigAfter         string

	// Address corrupted to a nonexistent one: packets in transit are
	// dropped and the routing table is updated with the new information,
	// "analogous to removing a computer and replacing it with another".
	GhostInMap        bool
	RealGone          bool
	GhostTrafficDrops bool
}

// Sec433Options parameterizes the experiments.
type Sec433Options struct {
	Seed int64
	// Workers runs the four independent experiments concurrently; <= 1 is
	// serial. Results are identical either way.
	Workers int
}

// macWindow renders the 4-entry compare window covering node i's MAC tail
// (bytes 3..5) followed by an expected next byte on the wire.
func macWindow(i int, next byte) string {
	m := NodeMAC(i)
	return fmt.Sprintf("COMPARE %02X %02X %02X %02X", m[3], m[4], m[5], next)
}

// macLastByteReplace renders the corrupt vector replacing the MAC's last
// byte (window position 2) with v.
func macLastByteReplace(v byte) string {
	return fmt.Sprintf("CORRUPT REPLACE -- -- %02X --", v)
}

// RunSec433 executes the four experiments. Like §4.3.2, each runs on its own
// testbed and seed and fills a disjoint set of result fields, so they fan out
// over the worker pool and merge.
func RunSec433(opts Sec433Options) Sec433Result {
	parts := RunTrials(4, opts.Workers, func(i int) Sec433Result {
		var r Sec433Result
		switch i {
		case 0:
			return runDestCorruption(opts.Seed, r)
		case 1:
			return runSelfAddressCorruption(opts.Seed+10, r)
		case 2:
			return runControllerDuplicate(opts.Seed+20, r)
		default:
			return runGhostAddress(opts.Seed+30, r)
		}
	})
	res := parts[0] // destination-corruption fields
	res.SelfUnreachable = parts[1].SelfUnreachable
	res.SelfMappingWorks = parts[1].SelfMappingWorks
	res.SelfRoutingStable = parts[1].SelfRoutingStable
	res.CtrlMapsInconsistent = parts[2].CtrlMapsInconsistent
	res.CtrlMapsVary = parts[2].CtrlMapsVary
	res.CtrlFigBefore = parts[2].CtrlFigBefore
	res.CtrlFigAfter = parts[2].CtrlFigAfter
	res.GhostInMap = parts[3].GhostInMap
	res.RealGone = parts[3].RealGone
	res.GhostTrafficDrops = parts[3].GhostTrafficDrops
	return res
}

// runDestCorruption rewrites the destination address of a packet bound for
// node1 into node2's, leaving the CRC stale.
func runDestCorruption(seed int64, res Sec433Result) Sec433Result {
	tb := NewTestbed(TestbedConfig{Seed: seed})
	tap := tb.TapNode()
	right := tb.Nodes[1]
	wrong := tb.Nodes[2]
	rRight, err := NewTapReceiver(right)
	if err != nil {
		panic(err)
	}
	rWrong, err := NewTapReceiver(wrong)
	if err != nil {
		panic(err)
	}

	// Outbound data to node1: destination MAC tail (..40 40 12) followed
	// by the source MAC's first byte. Replace the last address byte with
	// node2's; no CRC recompute, so the trailing CRC-8 goes stale.
	tb.Configure(
		"DIR L",
		macWindow(1, NodeMAC(0)[0]), // dest MAC tail, then source MAC's first byte
		macLastByteReplace(NodeMAC(2)[5]),
		"MODE ONCE",
	)
	crcBefore := right.Interface().Counters().Drops[myrinet.DropCRC]
	tap.SendUDP(right.MAC(), 9000, 9001, []byte("misdelivered?"))
	tb.K.RunFor(5 * sim.Millisecond)

	res.DestDroppedByCRC = right.Interface().Counters().Drops[myrinet.DropCRC] == crcBefore+1
	res.DestNeitherReceived = rRight.Received() == 0 && rWrong.Received() == 0
	return res
}

// runSelfAddressCorruption rewrites the destination address of everything
// arriving at the tapped node (CRC recomputed, so only the address check
// fires): the node becomes unreachable for data yet keeps answering scouts.
func runSelfAddressCorruption(seed int64, res Sec433Result) Sec433Result {
	const mapPeriod = 200 * sim.Millisecond
	tb := NewTestbed(TestbedConfig{Seed: seed, Mapping: true, MapPeriod: mapPeriod})
	tap := tb.TapNode()
	src := tb.Nodes[1]
	r, err := NewTapReceiver(tap)
	if err != nil {
		panic(err)
	}
	answersBefore := tap.Interface().MCP().ScoutsAnswered()
	routesBefore := fmt.Sprint(src.Interface().Routes())

	// Inbound to the tapped node: its own MAC tail followed by the
	// source MAC's first byte identifies data packets addressed to it.
	tb.Configure(
		"DIR R",
		macWindow(0, NodeMAC(1)[0]), // own MAC as destination, then source MAC
		macLastByteReplace(NodeMAC(1)[5]),
		"CRC ON",
		"MODE ON",
	)
	misBefore := tap.Interface().Counters().Drops[myrinet.DropMisaddressed]
	for i := 0; i < 5; i++ {
		src.SendUDP(tap.MAC(), 9000, 9001, []byte{byte(i)})
	}
	// Let a mapping round pass under corruption.
	tb.K.RunFor(mapPeriod + 50*sim.Millisecond)
	tb.ConfigureBothMode(false)

	res.SelfUnreachable = r.Received() == 0 &&
		tap.Interface().Counters().Drops[myrinet.DropMisaddressed] >= misBefore+5
	res.SelfMappingWorks = tap.Interface().MCP().ScoutsAnswered() > answersBefore &&
		tb.Nodes[2].Interface().MCP().LastSnapshot().Has(tap.MAC())
	res.SelfRoutingStable = fmt.Sprint(src.Interface().Routes()) == routesBefore
	return res
}

// runControllerDuplicate rewrites the tapped node's identity in its scout
// replies to the controller's own address: the mapper cannot build a
// consistent map, and each attempt fails differently (Fig. 11).
func runControllerDuplicate(seed int64, res Sec433Result) Sec433Result {
	const mapPeriod = 200 * sim.Millisecond
	tb := NewTestbed(TestbedConfig{Seed: seed, Mapping: true, MapPeriod: mapPeriod})
	mapper := tb.Nodes[len(tb.Nodes)-1].Interface().MCP()
	before := mapper.LastSnapshot()
	res.CtrlFigBefore = netmap.Render(before)

	// The tapped node's scout replies carry its MAC followed by the
	// probe sequence's high byte (zero). Rewrite the address tail to the
	// controller's, CRC recomputed so the reply still parses.
	tb.Configure(
		"DIR L",
		macWindow(0, 0x00), // own MAC in a scout reply, then the sequence high byte
		macLastByteReplace(NodeMAC(len(tb.Nodes) - 1)[5]),
		"CRC ON",
		"MODE ON",
	)
	sizes := map[int]bool{}
	inconsistent := 0
	rounds := 6
	for i := 0; i < rounds; i++ {
		tb.K.RunFor(mapPeriod)
		if s := mapper.LastSnapshot(); s != nil && s.Inconsistent {
			inconsistent++
			sizes[s.NodeCount()] = true
		}
	}
	after := mapper.LastSnapshot()
	res.CtrlFigAfter = netmap.Render(after)
	res.CtrlMapsInconsistent = inconsistent >= rounds/2
	res.CtrlMapsVary = len(sizes) >= 2
	return res
}

// runGhostAddress rewrites the tapped node's identity in scout replies to a
// nonexistent address: the map gains the ghost, loses the real node, and
// traffic to the ghost is dropped by the (real) interface underneath.
func runGhostAddress(seed int64, res Sec433Result) Sec433Result {
	const mapPeriod = 200 * sim.Millisecond
	tb := NewTestbed(TestbedConfig{Seed: seed, Mapping: true, MapPeriod: mapPeriod})
	tap := tb.TapNode()
	src := tb.Nodes[1]
	ghost := NodeMAC(0)
	ghost[5] = 0x77

	tb.Configure(
		"DIR L",
		macWindow(0, 0x00),
		macLastByteReplace(0x77),
		"CRC ON",
		"MODE ON",
	)
	tb.K.RunFor(mapPeriod + 50*sim.Millisecond)

	snap := tb.Nodes[2].Interface().MCP().LastSnapshot()
	res.GhostInMap = snap != nil && snap.Has(ghost)
	res.RealGone = snap != nil && !snap.Has(tap.MAC())
	// Traffic to the ghost reaches the real interface underneath, whose
	// address check drops it.
	misBefore := tap.Interface().Counters().Drops[myrinet.DropMisaddressed]
	src.SendUDP(ghost, 9000, 9001, []byte("to a ghost"))
	tb.K.RunFor(5 * sim.Millisecond)
	res.GhostTrafficDrops = tap.Interface().Counters().Drops[myrinet.DropMisaddressed] == misBefore+1
	return res
}

// FormatSec433 renders the result against the paper's observations.
func FormatSec433(r Sec433Result) string {
	check := func(b bool) string {
		if b {
			return "reproduced"
		}
		return "NOT reproduced"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "destination corrupted: dropped by CRC-8: %s; received by neither: %s\n",
		check(r.DestDroppedByCRC), check(r.DestNeitherReceived))
	fmt.Fprintf(&b, "own address corrupted: unreachable for data: %s; mapping still answered: %s; routing unchanged: %s\n",
		check(r.SelfUnreachable), check(r.SelfMappingWorks), check(r.SelfRoutingStable))
	fmt.Fprintf(&b, "address == controller: maps inconsistent: %s; faulty map varies per round: %s\n",
		check(r.CtrlMapsInconsistent), check(r.CtrlMapsVary))
	fmt.Fprintf(&b, "address -> nonexistent: ghost mapped: %s; real node gone: %s; ghost traffic dropped: %s\n",
		check(r.GhostInMap), check(r.RealGone), check(r.GhostTrafficDrops))
	b.WriteString("\n-- Fig. 11, before --\n")
	b.WriteString(r.CtrlFigBefore)
	b.WriteString("-- Fig. 11, after --\n")
	b.WriteString(r.CtrlFigAfter)
	return b.String()
}
