package campaign

import (
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// controlCodes are every byte value the Table 4 campaign may match on: the
// canonical control-symbol codes plus the degraded forms the decode rules
// still accept.
var controlCodes = []byte{
	myrinet.SymIdle, myrinet.SymGo, myrinet.SymGap, myrinet.SymStop, 0x02, 0x08,
}

// TestNodeMACsAvoidControlCodes guards the workload discipline of §4.3.1
// ("the symbol mask we corrupted did not appear in the message itself"),
// extended to addresses: a MAC byte equal to a control-symbol code would
// silently turn every byte-value corruption campaign into an address
// corruption campaign (it did, during development — node2's MAC used to
// end in 0x03, and the GO rows nuked everything addressed to it).
func TestNodeMACsAvoidControlCodes(t *testing.T) {
	for i := 0; i < 8; i++ {
		mac := NodeMAC(i)
		for _, b := range mac {
			for _, code := range controlCodes {
				if b == code {
					t.Errorf("NodeMAC(%d) = %v contains control code %#02x", i, mac, code)
				}
			}
		}
	}
}

// TestNodeMACsDistinct: campaigns rely on address uniqueness for the
// misaddressed/ghost experiments.
func TestNodeMACsDistinct(t *testing.T) {
	seen := map[myrinet.MAC]int{}
	for i := 0; i < 8; i++ {
		m := NodeMAC(i)
		if prev, dup := seen[m]; dup {
			t.Errorf("NodeMAC(%d) == NodeMAC(%d)", i, prev)
		}
		seen[m] = i
	}
}

// TestLoadPayloadsAvoidControlCodes: every byte of every workload payload —
// tag, sequence stamp, filler — must stay clear of the maskable codes so
// Table 4's losses are attributable to control-symbol corruption alone.
func TestLoadPayloadsAvoidControlCodes(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1})
	load := tb.StartLoad(LoadConfig{})
	for i := 0; i < 500; i++ {
		p := load.payload()
		for j, b := range p {
			for _, code := range controlCodes {
				if b == code {
					t.Fatalf("payload %d byte %d = %#02x is a control code", i, j, b)
				}
			}
		}
	}
	load.Stop()
}

// TestLoadUDPHeadersAvoidMaskCodes: the fixed parts of the UDP header the
// campaign cannot randomize away (ports, length) must avoid the three mask
// codes 0x0F/0x0C/0x03; only the checksum and trailing CRC remain at risk —
// the collateral channel EXPERIMENTS.md documents.
func TestLoadUDPHeadersAvoidMaskCodes(t *testing.T) {
	var (
		srcPort uint16 = loadSrcPort
		dstPort uint16 = loadDstPort
		length  uint16 = 512 + 8
	)
	fixed := []byte{
		byte(srcPort >> 8), byte(srcPort), byte(dstPort >> 8), byte(dstPort),
		byte(length >> 8), byte(length),
	}
	for _, b := range fixed {
		for _, code := range []byte{myrinet.SymStop, myrinet.SymGap, myrinet.SymGo} {
			if b == code {
				t.Errorf("UDP header byte %#02x collides with mask code %#02x", b, code)
			}
		}
	}
}

// TestTestbedTapNodeSelection: the injector must sit on the configured
// node's cable — experiments that tap node 2 (the chameleon example)
// depend on it.
func TestTestbedTapNodeSelection(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1, TapNode: 2})
	if tb.TapNode() != tb.Nodes[2] {
		t.Fatal("TapNode() does not match config")
	}
	// Traffic from node2 must pass the injector; node0<->node1 must not.
	tb.Nodes[2].SendUDP(NodeMAC(0), 9000, 9001, []byte("through tap"))
	tb.Nodes[0].SendUDP(NodeMAC(1), 9000, 9001, []byte("around tap"))
	tb.K.RunFor(5 * sim.Millisecond)
	co, _, _ := tb.Injector.Engine(DirOutbound).Stats()
	if co == 0 {
		t.Error("tapped node's traffic bypassed the injector")
	}
}
