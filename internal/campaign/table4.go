package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Table4Row is one line of the paper's Table 4: corrupt every occurrence of
// Mask into Replacement on the tapped link (both directions) under full
// load, and count application-level message loss.
type Table4Row struct {
	Mask        myrinet.Symbol
	Replacement myrinet.Symbol
	Sent        uint64
	Received    uint64
	LossRate    float64
	Outcome     Outcome
}

// Table4Options parameterizes the campaign.
type Table4Options struct {
	// Seed drives the run; each row perturbs it so rows are independent
	// experiments from a known good state (§4.2).
	Seed int64
	// Duration is the measured load window per row. Zero selects 1.7 s
	// (about 4000 messages at the paper's offered load).
	Duration sim.Duration
	// DutyOn/DutyPeriod meter the injection: the trigger is armed DutyOn
	// out of every DutyPeriod. Zeros select 12.5 ms / 50 ms — NFTAPE
	// toggling the board's match mode a few times per burst period.
	DutyOn     sim.Duration
	DutyPeriod sim.Duration
	// Workers runs the nine rows concurrently; <= 1 is serial. Each row is
	// an independent simulation from its own seed, so results are
	// identical either way.
	Workers int
}

func (o *Table4Options) fillDefaults() {
	if o.Duration == 0 {
		o.Duration = 1700 * sim.Millisecond
	}
	if o.DutyOn == 0 {
		o.DutyOn = sim.Millisecond
	}
	if o.DutyPeriod == 0 {
		o.DutyPeriod = 100 * sim.Millisecond
	}
}

// rowDuty returns the injection duty for one row. Corruptions that
// manufacture spurious GAPs (mask GAP, or STOP replaced by GAP) destroy
// packet framing and hold switch paths until the long-period timeout, so a
// single armed window degrades tens of milliseconds of traffic; those rows
// are metered. Overflow- and stall-driven rows (the rest) need the trigger
// armed continuously to catch the bursty flow-control symbols at all.
func rowDuty(mask, repl myrinet.Symbol, opts Table4Options) (on, period sim.Duration) {
	switch {
	case mask == myrinet.SymbolGap:
		return opts.DutyOn, opts.DutyPeriod
	case mask == myrinet.SymbolStop && repl == myrinet.SymbolGap:
		return 75 * opts.DutyOn, opts.DutyPeriod
	default:
		return opts.DutyPeriod, opts.DutyPeriod // always on
	}
}

// byteEntry renders a symbol's code as a byte-value window entry: the
// compare operates on the 8-bit data path regardless of the D/C flag (the
// 32-bit segment view of §3.3), which is why the paper's workloads had to
// keep the mask byte out of the message body — checksum and CRC bytes
// remain at risk, a real collateral-loss channel.
func byteEntry(s myrinet.Symbol) string {
	return fmt.Sprintf("X%02X", s.Code())
}

// Table4Pairs lists the nine mask→replacement pairs of the paper's Table 4,
// in table order.
func Table4Pairs() [][2]myrinet.Symbol {
	return [][2]myrinet.Symbol{
		{myrinet.SymbolStop, myrinet.SymbolIdle},
		{myrinet.SymbolStop, myrinet.SymbolGap},
		{myrinet.SymbolStop, myrinet.SymbolGo},
		{myrinet.SymbolGap, myrinet.SymbolGo},
		{myrinet.SymbolGap, myrinet.SymbolIdle},
		{myrinet.SymbolGap, myrinet.SymbolStop},
		{myrinet.SymbolGo, myrinet.SymbolIdle},
		{myrinet.SymbolGo, myrinet.SymbolGap},
		{myrinet.SymbolGo, myrinet.SymbolStop},
	}
}

// RunTable4Row executes one corruption experiment from a fresh test bed.
func RunTable4Row(mask, replacement myrinet.Symbol, opts Table4Options) Table4Row {
	opts.fillDefaults()
	tb := NewTestbed(TestbedConfig{Seed: opts.Seed, TxQueueLimit: 4})
	// Program both directions over the serial console, then meter the
	// match mode with the duty cycle.
	for _, dir := range []string{"L", "R"} {
		tb.Configure(
			"DIR "+dir,
			"MODE OFF",
			"COMPARE -- -- -- "+byteEntry(mask),
			"CORRUPT REPLACE -- -- -- "+byteEntry(replacement),
		)
	}
	on, period := rowDuty(mask, replacement, opts)
	repeats := int(opts.Duration/period) + 1
	tb.DutyCycle(on, period, repeats)

	load := tb.StartLoad(LoadConfig{})
	tb.K.RunFor(opts.Duration)
	load.Stop()
	// Disarm and let in-flight traffic drain before counting.
	tb.ConfigureBothMode(false)
	tb.K.RunFor(100 * sim.Millisecond)

	return Table4Row{
		Mask:        mask,
		Replacement: replacement,
		Sent:        load.Sent(),
		Received:    load.Received(),
		LossRate:    load.LossRate(),
		Outcome:     load.Classify(),
	}
}

// RunTable4 executes all nine rows over the worker pool.
func RunTable4(opts Table4Options) []Table4Row {
	pairs := Table4Pairs()
	return RunTrials(len(pairs), opts.Workers, func(i int) Table4Row {
		rowOpts := opts
		rowOpts.Seed = opts.Seed + int64(i)
		return RunTable4Row(pairs[i][0], pairs[i][1], rowOpts)
	})
}

// FormatTable4 renders rows like the paper's Table 4, with the published
// figures alongside.
func FormatTable4(rows []Table4Row) string {
	paper := map[string][3]uint64{ // sent, received, loss%
		"STOP->IDLE": {4064, 3705, 8},
		"STOP->GAP":  {4092, 3445, 15},
		"STOP->GO":   {4015, 3694, 7},
		"GAP->GO":    {3132, 2785, 11},
		"GAP->IDLE":  {3378, 3022, 11},
		"GAP->STOP":  {3983, 3607, 9},
		"GO->IDLE":   {2564, 2199, 14},
		"GO->GAP":    {3483, 3108, 10},
		"GO->STOP":   {3720, 3322, 10},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-11s %8s %8s %6s   %8s %8s %6s\n",
		"Mask", "Replacement", "sent", "recv", "loss", "p.sent", "p.recv", "p.loss")
	for _, r := range rows {
		key := fmt.Sprintf("%v->%v", r.Mask, r.Replacement)
		p := paper[key]
		fmt.Fprintf(&b, "%-6v %-11v %8d %8d %5.1f%%   %8d %8d %5d%%\n",
			r.Mask, r.Replacement, r.Sent, r.Received, 100*r.LossRate, p[0], p[1], p[2])
	}
	return b.String()
}
