// Package phy models the physical layer the fault injector taps: full-duplex
// point-to-point links that carry a stream of link-level characters at a
// fixed character period with a propagation delay. Myrinet characters are
// 9 bits wide (a Data/Control flag plus 8 data bits); Fibre Channel code
// groups are 10 bits. Both fit in a Character.
//
// Links deliver chunks ("bursts") of characters rather than one event per
// character so that minute-long campaigns stay tractable, but all timing is
// accounted at character granularity: a burst of n characters occupies the
// transmitter for exactly n character periods.
package phy

import (
	"fmt"

	"netfi/internal/sim"
)

// Character is one link-level code: for Myrinet, bit 8 is the D/C flag
// (1 = data, 0 = control symbol) and bits 7..0 are the payload; for Fibre
// Channel it is a 10-bit code group.
type Character uint16

// Myrinet character constructors and accessors. The D/C bit is separate from
// the 8-bit data path, exactly as in the Myrinet interface design (§4.1).
const dcBit Character = 1 << 8

// DataChar returns the data character carrying byte b (D/C = 1).
func DataChar(b byte) Character { return dcBit | Character(b) }

// ControlChar returns the control character with code b (D/C = 0).
func ControlChar(b byte) Character { return Character(b) }

// IsData reports whether c has the D/C bit set.
func (c Character) IsData() bool { return c&dcBit != 0 }

// Byte returns the low 8 bits of c.
func (c Character) Byte() byte { return byte(c) }

// String renders a character for traces, e.g. "D:3f" or "C:0c".
func (c Character) String() string {
	if c.IsData() {
		return fmt.Sprintf("D:%02x", c.Byte())
	}
	return fmt.Sprintf("C:%02x", c.Byte())
}

// DataChars converts a byte slice to data characters.
func DataChars(b []byte) []Character {
	out := make([]Character, len(b))
	for i, v := range b {
		out[i] = DataChar(v)
	}
	return out
}

// Receiver consumes characters delivered by a link. The slice is owned by
// the receiver after the call: links never touch a delivered buffer again.
// Delivered buffers come from the burst pool, so a receiver that is done
// with the slice when Receive returns may hand it back with ReleaseBurst;
// receivers that retain the slice simply keep it (the pool never reclaims a
// buffer that was not explicitly released).
type Receiver interface {
	Receive(chars []Character)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(chars []Character)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(chars []Character) { f(chars) }

var _ Receiver = ReceiverFunc(nil)

// Link is one direction of a point-to-point physical link. A full-duplex
// cable is a pair of Links. Send serializes a burst at the link's character
// period; the destination receives the whole burst when its last character
// has arrived (serialization time plus propagation delay).
//
// The zero value is not usable; construct with NewLink.
type Link struct {
	k          *sim.Kernel
	name       string
	charPeriod sim.Duration
	propDelay  sim.Duration
	dst        Receiver
	sink       DeliverySink

	busyUntil sim.Time
	severed   bool

	// Statistics.
	chars        uint64
	bursts       uint64
	severedChars uint64
}

// LinkConfig describes a link's timing.
type LinkConfig struct {
	// Name labels the link in traces and errors.
	Name string
	// CharPeriod is the time to serialize one character. The paper's
	// Myrinet runs at 80 MB/s per direction: 12.5 ns per character.
	CharPeriod sim.Duration
	// PropDelay is the cable propagation delay (about 5 ns/m).
	PropDelay sim.Duration
}

// NewLink returns a link delivering to dst under the given timing.
func NewLink(k *sim.Kernel, cfg LinkConfig, dst Receiver) *Link {
	if cfg.CharPeriod <= 0 {
		panic("phy: CharPeriod must be positive")
	}
	if cfg.PropDelay < 0 {
		panic("phy: PropDelay must be non-negative")
	}
	if dst == nil {
		panic("phy: nil destination")
	}
	return &Link{
		k:          k,
		name:       cfg.Name,
		charPeriod: cfg.CharPeriod,
		propDelay:  cfg.PropDelay,
		dst:        dst,
	}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// CharPeriod returns the serialization time per character.
func (l *Link) CharPeriod() sim.Duration { return l.charPeriod }

// PropDelay returns the propagation delay.
func (l *Link) PropDelay() sim.Duration { return l.propDelay }

// SetDst rewires the link's receiver. Used when inserting the fault injector
// into an existing cable: the segment's receiver becomes the injector port.
func (l *Link) SetDst(dst Receiver) {
	if dst == nil {
		panic("phy: nil destination")
	}
	l.dst = dst
}

// Dst returns the link's current receiver; an inserted device saves it as
// the downstream side of the splice.
func (l *Link) Dst() Receiver { return l.dst }

// SetDeliverySink diverts the link's deliveries: instead of scheduling
// dst.Receive into the link's own kernel, each burst (with its computed
// arrival time) is handed to sink. Sharded fabrics use this to channelize
// cables whose receiver lives on a different kernel — the sink buffers the
// delivery until the next barrier exchange. A nil sink restores direct
// scheduling.
func (l *Link) SetDeliverySink(sink DeliverySink) { l.sink = sink }

// Send transmits a burst. If the transmitter is still serializing a previous
// burst the new one queues behind it (FIFO, contiguous on the wire). Send
// copies chars, so callers may reuse the slice. It returns the time at which
// the last character will have been received by the destination.
func (l *Link) Send(chars []Character) sim.Time {
	if len(chars) == 0 {
		return l.k.Now()
	}
	burst := GetBurst(len(chars))
	copy(burst, chars)
	return l.sendOwned(burst)
}

// sendOwned queues a burst the link already owns (a pooled copy).
func (l *Link) sendOwned(burst []Character) sim.Time {
	if l.severed {
		l.severedChars += uint64(len(burst))
		ReleaseBurst(burst)
		return l.k.Now()
	}
	start := l.k.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start + sim.Duration(len(burst))*l.charPeriod
	l.busyUntil = end
	arrival := end + l.propDelay
	l.chars += uint64(len(burst))
	l.bursts++
	if l.sink != nil {
		l.sink.Deliver(arrival, l.dst, burst)
	} else {
		ScheduleReceive(l.k, arrival, l.dst, burst)
	}
	return arrival
}

// SendPriority transmits a short control burst that preempts queued data at
// the next character boundary, the way Myrinet interleaves flow-control
// symbols into the stream: it is delivered after its own serialization and
// propagation time, without waiting behind bursts already committed to the
// transmit queue (and without pushing them back — the one-character wire
// occupancy is absorbed into the burst model's granularity).
func (l *Link) SendPriority(chars []Character) sim.Time {
	if len(chars) == 0 {
		return l.k.Now()
	}
	burst := GetBurst(len(chars))
	copy(burst, chars)
	return l.sendPriorityOwned(burst)
}

func (l *Link) sendPriorityOwned(burst []Character) sim.Time {
	if l.severed {
		l.severedChars += uint64(len(burst))
		ReleaseBurst(burst)
		return l.k.Now()
	}
	arrival := l.k.Now() + sim.Duration(len(burst))*l.charPeriod + l.propDelay
	l.chars += uint64(len(burst))
	l.bursts++
	if l.sink != nil {
		l.sink.Deliver(arrival, l.dst, burst)
	} else {
		ScheduleReceive(l.k, arrival, l.dst, burst)
	}
	return arrival
}

// SendOne transmits a single character without the caller building a slice;
// flow-control symbols (STOP/GO/GAP) dominate link traffic, so this path
// must not allocate.
func (l *Link) SendOne(c Character) sim.Time {
	burst := GetBurst(1)
	burst[0] = c
	return l.sendOwned(burst)
}

// SendPriorityOne is SendOne with SendPriority's preemption semantics.
func (l *Link) SendPriorityOne(c Character) sim.Time {
	burst := GetBurst(1)
	burst[0] = c
	return l.sendPriorityOwned(burst)
}

// SendByte transmits a single data byte.
func (l *Link) SendByte(b byte) sim.Time { return l.SendOne(DataChar(b)) }

// SendControl transmits a single control character.
func (l *Link) SendControl(code byte) sim.Time { return l.SendOne(ControlChar(code)) }

// Sever cuts the link: every subsequent burst is discarded at the
// transmitter and counted. Bursts already committed to the wire still
// arrive — light in the pipe — so a severed link drains rather than
// un-happens. Chaos campaigns use this as the cable-cut fault primitive.
func (l *Link) Sever() { l.severed = true }

// Severed reports whether the link has been cut.
func (l *Link) Severed() bool { return l.severed }

// SeveredChars reports characters discarded after the cut.
func (l *Link) SeveredChars() uint64 { return l.severedChars }

// BusyUntil reports when the transmitter finishes its current queue.
func (l *Link) BusyUntil() sim.Time { return l.busyUntil }

// Idle reports whether the transmitter has drained.
func (l *Link) Idle() bool { return l.busyUntil <= l.k.Now() }

// Stats reports cumulative characters and bursts sent.
func (l *Link) Stats() (chars, bursts uint64) { return l.chars, l.bursts }

// Throughput reports average payload rate in characters per second between
// simulation start and now. Zero when no time has elapsed.
func (l *Link) Throughput() float64 {
	if l.k.Now() == 0 {
		return 0
	}
	return float64(l.chars) / l.k.Now().Seconds()
}

// Cable bundles the two directions of a full-duplex link between endpoints
// conventionally called "left" and "right" (matching the paper's
// bi-directional injector, which corrupts "left going" and "right going"
// data independently).
type Cable struct {
	LeftToRight *Link // carries data from the left endpoint to the right
	RightToLeft *Link // carries data from the right endpoint to the left
}

// Sever cuts both directions of the cable.
func (c *Cable) Sever() {
	c.LeftToRight.Sever()
	c.RightToLeft.Sever()
}

// NewCable builds a full-duplex cable with identical timing in both
// directions, delivering to the given receivers.
func NewCable(k *sim.Kernel, cfg LinkConfig, leftEnd, rightEnd Receiver) *Cable {
	l2r := cfg
	l2r.Name = cfg.Name + ":l2r"
	r2l := cfg
	r2l.Name = cfg.Name + ":r2l"
	return &Cable{
		LeftToRight: NewLink(k, l2r, rightEnd),
		RightToLeft: NewLink(k, r2l, leftEnd),
	}
}
