package myrinet

import (
	"fmt"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). The myrinet layer's cloning rules:
//
//   - Counters are frequently shared between a port and its link controller,
//     so they clone through a lookup-or-copy helper that registers the first
//     copy and reuses it for every later reference.
//   - Callbacks wired at construction time (slack watermarks, timer fns,
//     notify/reset handlers) are method values on the owner; each clone
//     rebinds them to the new-world owner rather than copying the old
//     closure.
//   - Cross-references that span devices (a controller's output link, a tap)
//     resolve in the mapper's deferred pass, so clone order never matters.
//   - Queued txPackets survive only with interface-form completions
//     (EnqueuePacketTo); a pending closure completion fails the fork loudly.

// cloneCounters returns the fork's copy of c, creating and registering it on
// first sight. Shared counters (a switch port and its controller point at the
// same struct) stay shared in the fork.
func cloneCounters(m *sim.Mapper, c *Counters) *Counters {
	if c == nil {
		return nil
	}
	if v, ok := m.Lookup(c); ok {
		return v.(*Counters)
	}
	c2 := &Counters{}
	*c2 = *c
	c2.Drops = make(map[DropReason]uint64, len(c.Drops))
	for r, n := range c.Drops {
		c2.Drops[r] = n
	}
	m.Put(c, c2)
	return c2
}

// clone copies the slack buffer with new watermark callbacks (method values
// on the cloned controller).
func (s *SlackBuffer) clone(onStop, onGo func()) *SlackBuffer {
	s2 := &SlackBuffer{
		buf:      append([]phy.Character(nil), s.buf...),
		capacity: s.capacity,
		head:     s.head,
		count:    s.count,
		high:     s.high,
		low:      s.low,
		stopping: s.stopping,
		onStop:   onStop,
		onGo:     onGo,
		overflow: s.overflow,
		pushes:   s.pushes,
	}
	return s2
}

// clone copies one queued packet. The interface-form completion remaps in the
// deferred pass; a closure-form completion cannot cross a fork and fails it.
func (p *txPacket) clone(m *sim.Mapper, owner string) *txPacket {
	p2 := &txPacket{chars: append([]phy.Character(nil), p.chars...)}
	if p.onDone != nil {
		m.Defer(func() error {
			return fmt.Errorf("myrinet: fork: %s has a queued packet with a closure completion; use EnqueuePacketTo", owner)
		})
	}
	if p.done != nil {
		done := p.done
		m.Defer(func() error {
			d2, ok := m.Lookup(done)
			if !ok {
				return fmt.Errorf("myrinet: fork: %s queued packet completes to uncloned %T", owner, done)
			}
			p2.done = d2.(TxCompletion)
			return nil
		})
	}
	return p2
}

// Clone forks the link controller. The consumer callbacks (notify,
// txDrainNotify, onReset) are left nil: the owning port or interface rebinds
// them when it clones itself. The output link and tap resolve deferred.
func (lc *LinkController) Clone(m *sim.Mapper) *LinkController {
	lc2 := &LinkController{
		k:           m.Kernel(),
		name:        lc.name,
		ctr:         cloneCounters(m, lc.ctr),
		paused:      lc.paused,
		curPos:      lc.curPos,
		txScheduled: lc.txScheduled,
		streamPos:   lc.streamPos,
		refreshOn:   lc.refreshOn,
		recovery:    lc.recovery,
	}
	m.Put(lc, lc2)
	lc2.shortTimer = lc.shortTimer.Clone(m, lc2.onShortTimeout)
	lc2.longTimer = lc.longTimer.Clone(m, lc2.onLongTimeout)
	if lc.stopWatchdog != nil {
		lc2.stopWatchdog = lc.stopWatchdog.Clone(m, lc2.onStopWatchdog)
	}
	if lc.cur != nil {
		lc2.cur = lc.cur.clone(m, lc.name)
	}
	if len(lc.txq) > 0 {
		lc2.txq = make([]*txPacket, len(lc.txq))
		for i, p := range lc.txq {
			lc2.txq[i] = p.clone(m, lc.name)
		}
	}
	if len(lc.streamBuf) > 0 {
		lc2.streamBuf = append([]phy.Character(nil), lc.streamBuf...)
	}
	lc2.slack = lc.slack.clone(lc2.assertStop, lc2.assertGo)
	m.Put(lc.slack, lc2.slack)
	lc2.refreshEvent = m.MapEventID(lc.refreshEvent)
	m.Defer(func() error {
		out, ok := m.Lookup(lc.out)
		if !ok {
			return fmt.Errorf("myrinet: fork: controller %s transmits on uncloned link %s", lc.name, lc.out.Name())
		}
		lc2.out = out.(*phy.Link)
		return nil
	})
	if lc.tap != nil {
		tap := lc.tap
		m.Defer(func() error {
			t2, ok := m.Lookup(tap)
			if !ok {
				return fmt.Errorf("myrinet: fork: controller %s has an uncloned tap %T", lc.name, tap)
			}
			lc2.tap = t2.(Tap)
			return nil
		})
	}
	return lc2
}

// Clone forks the switch: every port's FSM state, controller, and watchdog,
// with intra-switch cross-references (held outputs, waiter queues) resolved
// by port index.
func (sw *Switch) Clone(m *sim.Mapper) *Switch {
	sw2 := &Switch{
		k:        m.Kernel(),
		name:     sw.name,
		recovery: sw.recovery,
		ports:    make([]*switchPort, len(sw.ports)),
	}
	m.Put(sw, sw2)
	for i, p := range sw.ports {
		p2 := &switchPort{
			sw:           sw2,
			index:        i,
			ctr:          cloneCounters(m, p.ctr),
			state:        p.state,
			pendingRoute: p.pendingRoute,
			held:         p.held,
			haveHeld:     p.haveHeld,
			crcCorr:      p.crcCorr,
			phase:        p.phase,
			isMapping:    p.isMapping,
		}
		if len(p.typeBytes) > 0 {
			p2.typeBytes = append([]byte(nil), p.typeBytes...)
		}
		m.Put(p, p2)
		sw2.ports[i] = p2
	}
	// Second pass: everything that references other ports of this switch.
	for i, p := range sw.ports {
		p2 := sw2.ports[i]
		if p.lc != nil {
			p2.lc = p.lc.Clone(m)
			p2.lc.notify = p2.drain
			p2.lc.txDrainNotify = p2.onOutputDrained
			p2.lc.onReset = p2.onReset
		}
		if p.outPort != nil {
			p2.outPort = sw2.ports[p.outPort.index]
		}
		if p.owner != nil {
			p2.owner = sw2.ports[p.owner.index]
		}
		if len(p.waiters) > 0 {
			p2.waiters = make([]*switchPort, len(p.waiters))
			for j, w := range p.waiters {
				p2.waiters[j] = sw2.ports[w.index]
			}
		}
		if p.blockedTimer != nil {
			p2.blockedTimer = p.blockedTimer.Clone(m, p2.onBlockedTimeout)
		}
	}
	return sw2
}

// clone forks the MCP. The snapshot handler is campaign-owned and must be
// re-registered post-fork; the last snapshot is shared (it is immutable once
// published — a new round replaces, never mutates, it).
func (mc *MCP) clone(m *sim.Mapper, ifc2 *Interface) *MCP {
	m2 := &MCP{
		ifc:            ifc2,
		cfg:            mc.cfg,
		isMapper:       mc.isMapper,
		knownMapper:    mc.knownMapper,
		seq:            mc.seq,
		roundActive:    mc.roundActive,
		rounds:         mc.rounds,
		failed:         mc.failed,
		last:           mc.last,
		scoutsSent:     mc.scoutsSent,
		scoutsAnswered: mc.scoutsAnswered,
		repliesSeen:    mc.repliesSeen,
		tablesApplied:  mc.tablesApplied,
		promotions:     mc.promotions,
		demotions:      mc.demotions,
	}
	m2.probes = make(map[uint16]*probe, len(mc.probes))
	for s, pr := range mc.probes {
		pr2 := &probe{
			route:    append([]byte(nil), pr.route...),
			firstHop: pr.firstHop,
		}
		if pr.entry != nil {
			e := *pr.entry
			e.Route = append([]byte(nil), pr.entry.Route...)
			e.InPorts = append([]byte(nil), pr.entry.InPorts...)
			pr2.entry = &e
		}
		m2.probes[s] = pr2
	}
	m.Put(mc, m2)
	m2.watchdog = mc.watchdog.Clone(m, m2.onWatchdog)
	return m2
}

// Clone forks the interface: stream parser state, routing table, controller,
// and MCP. The host-side data handler is rebound by the owning Node's clone;
// the packet observer is monitoring-owned and re-registered post-fork.
func (ifc *Interface) Clone(m *sim.Mapper) *Interface {
	if ifc.resolver != nil {
		panic(fmt.Sprintf("myrinet: fork: interface %s has a route resolver; fabric interfaces do not fork", ifc.cfg.Name))
	}
	ifc2 := &Interface{
		k:         m.Kernel(),
		cfg:       ifc.cfg,
		ctr:       cloneCounters(m, ifc.ctr),
		inPacket:  ifc.inPacket,
		oversized: ifc.oversized,
		routes:    make(map[MAC][]byte, len(ifc.routes)),
	}
	if len(ifc.assembling) > 0 {
		ifc2.assembling = append([]byte(nil), ifc.assembling...)
	}
	for mac, r := range ifc.routes {
		ifc2.routes[mac] = append([]byte(nil), r...)
	}
	m.Put(ifc, ifc2)
	if ifc.lc != nil {
		ifc2.lc = ifc.lc.Clone(m)
		ifc2.lc.notify = ifc2.drain
		ifc2.lc.onReset = ifc2.onLinkReset
	}
	ifc2.mcp = ifc.mcp.clone(m, ifc2)
	return ifc2
}

// Clone forks the whole network container: switches, interfaces, and cables.
// The kernel must already be cloned into m (phase 1).
func (n *Network) Clone(m *sim.Mapper) *Network {
	n2 := &Network{
		Kernel: m.Kernel(),
		Cables: make(map[string]*phy.Cable, len(n.Cables)),
	}
	m.Put(n, n2)
	// nullReceiver is a stateless placeholder left as a link destination
	// only on half-wired topologies; it maps to itself.
	m.Put(nullReceiver{}, nullReceiver{})
	for _, sw := range n.Switches {
		n2.Switches = append(n2.Switches, sw.Clone(m))
	}
	for _, ifc := range n.Interfaces {
		n2.Interfaces = append(n2.Interfaces, ifc.Clone(m))
	}
	for name, c := range n.Cables {
		n2.Cables[name] = c.Clone(m)
	}
	return n2
}
