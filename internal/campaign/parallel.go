package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunTrials executes fn(0) … fn(n-1) across up to workers goroutines and
// returns the results in trial order.
//
// Determinism: campaign trials are embarrassingly parallel by construction —
// every trial builds its own Testbed around its own sim.Kernel, seeded from
// the campaign seed and the trial index alone, and shares no mutable state
// with its siblings. Scheduling therefore cannot influence any result, only
// the wall-clock order in which results are produced, and reassembling them
// by index makes parallel output byte-identical to serial. The contract fn
// must honor: derive all randomness from the trial index (never from a
// rand.Rand captured outside fn — the race test pins this), and do not touch
// shared state.
//
// workers <= 1 runs the trials inline on the calling goroutine, reproducing
// the pre-parallel behavior exactly. A panic in any trial is re-raised on
// the calling goroutine once the pool has drained.
func RunTrials[T any](n, workers int, fn func(trial int) T) []T {
	out, errs := RunTrialsErr(n, workers, fn)
	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("campaign: %v", err))
		}
	}
	return out
}

// RunTrialsErr is RunTrials with per-trial fault isolation: a trial that
// panics yields its zero value plus an error at its index, the worker that
// ran it moves on to the next trial, and every other trial completes. Chaos
// sweeps use this so one pathological fork out of thousands surfaces as a
// triaged error instead of killing the campaign. The returned error slice
// has one entry per trial (nil for trials that completed).
func RunTrialsErr[T any](n, workers int, fn func(trial int) T) ([]T, []error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	// run executes one trial with the recover barrier inside the loop body,
	// so a panic consumes only its own trial, never the worker.
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("trial %d panicked: %v", i, r)
			}
		}()
		out[i] = fn(i)
	}
	workers = workerCount(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return out, errs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// workerCount bounds the pool size for n trials: at most one goroutine per
// trial (a 3-trial campaign on a 64-CPU box must not spawn 61 idle
// workers), and at least one.
func workerCount(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DefaultWorkers is the worker count campaigns use when none is specified:
// one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
