// Package enc8b10b implements the IBM 8b/10b transmission code used by
// Fibre Channel (FC-PH, [ANS94]): 5b/6b and 3b/4b sub-block encoding with
// running-disparity tracking, the special K (control) characters, and a
// decoder that classifies invalid code groups and disparity errors. The
// fault injector demonstrates media independence by corrupting FC streams
// at the 10-bit code-group level; corrupted groups surface here as code
// violations or disparity errors, which is how real FC hardware notices
// in-flight bit faults.
package enc8b10b

import "fmt"

// RD is the running disparity.
type RD int

// Disparities. Transmission starts at RDMinus.
const (
	RDMinus RD = -1
	RDPlus  RD = 1
)

// enc6 holds the 5b/6b table as {RD- form, RD+ form}, bit 5 = a … bit 0 = i.
var enc6 = [32][2]uint16{
	{0b100111, 0b011000}, // D.0
	{0b011101, 0b100010}, // D.1
	{0b101101, 0b010010}, // D.2
	{0b110001, 0b110001}, // D.3
	{0b110101, 0b001010}, // D.4
	{0b101001, 0b101001}, // D.5
	{0b011001, 0b011001}, // D.6
	{0b111000, 0b000111}, // D.7 (balanced but alternating)
	{0b111001, 0b000110}, // D.8
	{0b100101, 0b100101}, // D.9
	{0b010101, 0b010101}, // D.10
	{0b110100, 0b110100}, // D.11
	{0b001101, 0b001101}, // D.12
	{0b101100, 0b101100}, // D.13
	{0b011100, 0b011100}, // D.14
	{0b010111, 0b101000}, // D.15
	{0b011011, 0b100100}, // D.16
	{0b100011, 0b100011}, // D.17
	{0b010011, 0b010011}, // D.18
	{0b110010, 0b110010}, // D.19
	{0b001011, 0b001011}, // D.20
	{0b101010, 0b101010}, // D.21
	{0b011010, 0b011010}, // D.22
	{0b111010, 0b000101}, // D.23
	{0b110011, 0b001100}, // D.24
	{0b100110, 0b100110}, // D.25
	{0b010110, 0b010110}, // D.26
	{0b110110, 0b001001}, // D.27
	{0b001110, 0b001110}, // D.28
	{0b101110, 0b010001}, // D.29
	{0b011110, 0b100001}, // D.30
	{0b101011, 0b010100}, // D.31
}

// k28_6 is the 5b/6b encoding of K.28, the only 5b value with a distinct K
// form used by the standard control characters.
var k28_6 = [2]uint16{0b001111, 0b110000}

// enc4Data holds the data 3b/4b table as {RD- form, RD+ form},
// bit 3 = f … bit 0 = j. y = 7 entries are the primary forms; the A7
// alternates are applied by the run-length rule in encode4.
var enc4Data = [8][2]uint16{
	{0b1011, 0b0100}, // .0
	{0b1001, 0b1001}, // .1
	{0b0101, 0b0101}, // .2
	{0b1100, 0b0011}, // .3 (balanced but alternating)
	{0b1101, 0b0010}, // .4
	{0b1010, 0b1010}, // .5
	{0b0110, 0b0110}, // .6
	{0b1110, 0b0001}, // .7 primary
}

// a7 holds the alternate .7 encodings {RD-, RD+}.
var a7 = [2]uint16{0b0111, 0b1000}

// enc4K holds the control-character 3b/4b table: K.x.1/2/5/6 use the
// alternate encodings so no false comma can form.
var enc4K = [8][2]uint16{
	{0b1011, 0b0100}, // K.x.0
	{0b0110, 0b1001}, // K.x.1
	{0b1010, 0b0101}, // K.x.2
	{0b1100, 0b0011}, // K.x.3
	{0b1101, 0b0010}, // K.x.4
	{0b0101, 0b1010}, // K.x.5
	{0b1001, 0b0110}, // K.x.6
	{0b0111, 0b1000}, // K.x.7
}

// Valid K characters (the FC-PH set).
var validK = map[byte]bool{
	0x1C: true, // K28.0
	0x3C: true, // K28.1
	0x5C: true, // K28.2
	0x7C: true, // K28.3
	0x9C: true, // K28.4
	0xBC: true, // K28.5 (the comma character)
	0xDC: true, // K28.6
	0xFC: true, // K28.7
	0xF7: true, // K23.7
	0xFB: true, // K27.7
	0xFD: true, // K29.7
	0xFE: true, // K30.7
}

// IsValidK reports whether b names a standard control character.
func IsValidK(b byte) bool { return validK[b] }

func rdIdx(rd RD) int {
	if rd == RDPlus {
		return 1
	}
	return 0
}

func disparity(code uint16, bits int) int {
	ones := 0
	for i := 0; i < bits; i++ {
		if code&(1<<i) != 0 {
			ones++
		}
	}
	return 2*ones - bits
}

// Encode encodes one byte (a K character when isK) under the running
// disparity, returning the 10-bit code group (bit 9 = a … bit 0 = j) and
// the new disparity.
func Encode(b byte, isK bool, rd RD) (uint16, RD, error) {
	x := b & 0x1F       // EDCBA
	y := (b >> 5) & 0x7 // HGF
	var six uint16
	switch {
	case isK && x == 28:
		six = k28_6[rdIdx(rd)]
	case isK && y == 7 && (x == 23 || x == 27 || x == 29 || x == 30):
		six = enc6[x][rdIdx(rd)]
	case isK:
		return 0, rd, fmt.Errorf("enc8b10b: no such control character K%d.%d", x, y)
	default:
		six = enc6[x][rdIdx(rd)]
	}
	rd2 := rd
	if disparity(six, 6) != 0 {
		rd2 = -rd
	}
	var four uint16
	switch {
	case isK:
		four = enc4K[y][rdIdx(rd2)]
	case y == 7 && useA7(x, rd2):
		four = a7[rdIdx(rd2)]
	default:
		four = enc4Data[y][rdIdx(rd2)]
	}
	rd3 := rd2
	if disparity(four, 4) != 0 {
		rd3 = -rd2
	}
	return six<<4 | four, rd3, nil
}

// useA7 implements the alternate-.7 rule that prevents a run of five equal
// bits across the sub-block boundary.
func useA7(x byte, rd RD) bool {
	if rd == RDMinus {
		return x == 17 || x == 18 || x == 20
	}
	return x == 11 || x == 13 || x == 14
}

// decoded is one decode-table entry.
type decoded struct {
	b   byte
	isK bool
}

// decodeMap[rdIdx][code] is built by exhaustive encoding.
var decodeMap = buildDecodeMaps()

func buildDecodeMaps() [2]map[uint16]decoded {
	var maps [2]map[uint16]decoded
	for rdi, rd := range []RD{RDMinus, RDPlus} {
		maps[rdi] = make(map[uint16]decoded)
		for v := 0; v < 256; v++ {
			code, _, err := Encode(byte(v), false, rd)
			if err == nil {
				maps[rdi][code] = decoded{b: byte(v)}
			}
		}
		for v := range validK {
			code, _, err := Encode(v, true, rd)
			if err != nil {
				panic(err)
			}
			if prev, ok := maps[rdi][code]; ok {
				panic(fmt.Sprintf("enc8b10b: K%#02x collides with D%#02x", v, prev.b))
			}
			maps[rdi][code] = decoded{b: v, isK: true}
		}
	}
	return maps
}

// DecodeResult classifies one decoded code group.
type DecodeResult struct {
	// Byte is the decoded value (valid unless Invalid).
	Byte byte
	// IsK reports a control character.
	IsK bool
	// DisparityError reports a legal code group arriving under the wrong
	// running disparity — the signature of an upstream bit fault.
	DisparityError bool
	// Invalid reports a code group outside the 8b/10b code space.
	Invalid bool
}

// Decode decodes one 10-bit code group under the running disparity and
// returns the classification plus the new disparity.
func Decode(code uint16, rd RD) (DecodeResult, RD) {
	code &= 0x3FF
	newRD := rd
	if d := disparity(code, 10); d > 0 {
		newRD = RDPlus
	} else if d < 0 {
		newRD = RDMinus
	}
	if dec, ok := decodeMap[rdIdx(rd)][code]; ok {
		return DecodeResult{Byte: dec.b, IsK: dec.isK}, newRD
	}
	// Legal under the opposite disparity? Then it's a disparity error.
	if dec, ok := decodeMap[1-rdIdx(rd)][code]; ok {
		return DecodeResult{Byte: dec.b, IsK: dec.isK, DisparityError: true}, newRD
	}
	return DecodeResult{Invalid: true}, newRD
}

// EncodeStream encodes a byte stream (all data characters) from an initial
// disparity, returning the code groups and final disparity.
func EncodeStream(data []byte, rd RD) ([]uint16, RD) {
	out := make([]uint16, len(data))
	for i, b := range data {
		code, next, err := Encode(b, false, rd)
		if err != nil {
			panic(err) // unreachable: every data byte encodes
		}
		out[i] = code
		rd = next
	}
	return out, rd
}
