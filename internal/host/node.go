// Package host models the workstations of the paper's test bed (Fig. 10):
// a UDP/IP-era stack on slow CPUs (200 MHz Pentium Pro, 170 MHz
// UltraSPARC). Each Node couples a Myrinet interface with per-packet
// send/receive processing overheads, a bounded socket buffer that drops on
// overflow, a real 16-bit one's-complement UDP checksum (§4.3.4 depends on
// its arithmetic), and an interrupt-granularity timing model: receive
// completions are visible to applications only at timer-tick boundaries
// whose phase differs per run — the source of Table 2's measurement
// uncertainty ("the actual latency interval is getting lost in the
// granularity caused by the computer's interrupt handler").
package host

import (
	"fmt"

	"netfi/internal/bitstream"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// NodeConfig parameterizes a workstation.
type NodeConfig struct {
	// Name labels the node.
	Name string
	// MAC and ID identify the node's Myrinet interface.
	MAC myrinet.MAC
	ID  myrinet.NodeID
	// SendOverhead is the per-packet CPU cost from the application's
	// send call to the NIC enqueue. Zero selects 100 us (mid-90s UDP
	// stack on a Pentium Pro).
	SendOverhead sim.Duration
	// RecvOverhead is the per-packet CPU cost from NIC delivery to the
	// application handler. Zero selects 130 us.
	RecvOverhead sim.Duration
	// InterruptTick quantizes receive completion times: the application
	// observes arrival only at the next tick boundary. Zero selects 1 us.
	InterruptTick sim.Duration
	// OverheadJitter adds uniform per-packet noise to the send and
	// receive overheads (cache effects, other interrupts); it lets the
	// quantized per-run averages drift the way real hosts do. Zero means
	// deterministic overheads.
	OverheadJitter sim.Duration
	// TickPhase offsets the tick grid; runs with different phases
	// measure differently, which is exactly Table 2's uncertainty.
	TickPhase sim.Duration
	// SocketBuffer bounds queued-but-undelivered packets per node; the
	// classic UDP drop-on-overflow. Zero selects 64.
	SocketBuffer int
	// TxQueueLimit bounds the NIC transmit queue in packets (zero means
	// unbounded); see myrinet.InterfaceConfig.
	TxQueueLimit int
	// Mapping configures the interface's MCP.
	Mapping myrinet.MappingConfig
	// Recovery enables the link-reset protocol on the node's interface.
	Recovery myrinet.RecoveryConfig
}

func (c *NodeConfig) fillDefaults() {
	if c.SendOverhead == 0 {
		c.SendOverhead = 100 * sim.Microsecond
	}
	if c.RecvOverhead == 0 {
		c.RecvOverhead = 130 * sim.Microsecond
	}
	if c.InterruptTick == 0 {
		c.InterruptTick = sim.Microsecond
	}
	if c.SocketBuffer == 0 {
		c.SocketBuffer = 64
	}
}

// Stats counts host-stack events.
type Stats struct {
	UDPSent        uint64
	UDPReceived    uint64
	ChecksumDrops  uint64
	NoSocketDrops  uint64
	OverflowDrops  uint64
	MalformedDrops uint64
	NoRouteErrors  uint64
}

// Node is one workstation: a Myrinet interface plus the host stack.
//
// The zero value is not usable; construct with NewNode.
type Node struct {
	k   *sim.Kernel
	cfg NodeConfig
	ifc *myrinet.Interface

	sockets map[uint16]*Socket
	stats   Stats

	// Receive processor: one packet at a time, RecvOverhead each. While
	// recvBusy, inRecv is the packet whose completion event is pending
	// (kept on the node, not in a closure, so a fork can copy it).
	recvq    []queuedPacket
	recvBusy bool
	inRecv   queuedPacket

	// Send serialization: the CPU injects packets one SendOverhead apart.
	sendReadyAt sim.Time

	// dead marks a killed workstation (chaos node-death fault): the CPU
	// neither sends nor services interrupts, while the NIC hardware below
	// keeps echoing link-level symbols until its cable is also cut.
	dead bool
}

type queuedPacket struct {
	src     myrinet.MAC
	srcPort uint16
	dstPort uint16
	data    []byte
}

// NewNode builds a workstation around a new Myrinet interface.
func NewNode(k *sim.Kernel, cfg NodeConfig) *Node {
	cfg.fillDefaults()
	n := &Node{
		k:       k,
		cfg:     cfg,
		sockets: make(map[uint16]*Socket),
	}
	n.ifc = myrinet.NewInterface(k, myrinet.InterfaceConfig{
		Name:         cfg.Name,
		MAC:          cfg.MAC,
		ID:           cfg.ID,
		Mapping:      cfg.Mapping,
		TxQueueLimit: cfg.TxQueueLimit,
		Recovery:     cfg.Recovery,
	})
	n.ifc.SetDataHandler(n.onDatagram)
	return n
}

// Name returns the node's label.
func (n *Node) Name() string { return n.cfg.Name }

// Interface exposes the node's Myrinet interface.
func (n *Node) Interface() *myrinet.Interface { return n.ifc }

// MAC returns the node's address.
func (n *Node) MAC() myrinet.MAC { return n.cfg.MAC }

// Stats returns a copy of the host-stack counters.
func (n *Node) Stats() Stats { return n.stats }

// Kill halts the workstation: pending and future sends are discarded and
// arriving datagrams are dropped without processing. The interface hardware
// is untouched — a dead host's NIC still participates in link-level flow
// control, which is exactly why chaos campaigns pair Kill with severing the
// node's cable when they want the peer's detectors to see full silence.
func (n *Node) Kill() { n.dead = true }

// Dead reports whether the workstation has been killed.
func (n *Node) Dead() bool { return n.dead }

// Socket is a bound UDP port.
type Socket struct {
	node    *Node
	port    uint16
	handler func(src myrinet.MAC, srcPort uint16, data []byte)

	received uint64
}

// Received reports datagrams delivered to this socket's handler.
func (s *Socket) Received() uint64 { return s.received }

// Port returns the bound port.
func (s *Socket) Port() uint16 { return s.port }

// Bind opens a UDP socket on port; handler runs after the receive path's
// processing overhead. Binding an in-use port is an error.
func (n *Node) Bind(port uint16, handler func(src myrinet.MAC, srcPort uint16, data []byte)) (*Socket, error) {
	if _, ok := n.sockets[port]; ok {
		return nil, fmt.Errorf("host: %s port %d already bound", n.cfg.Name, port)
	}
	s := &Socket{node: n, port: port, handler: handler}
	n.sockets[port] = s
	return s, nil
}

// Close releases the socket's port.
func (s *Socket) Close() { delete(s.node.sockets, s.port) }

// SetHandler rebinds the socket's delivery handler. Applications that
// survive a fork use this to point their cloned sockets at new-world
// closures (a fork carries sockets with nil handlers; see Node.Clone).
func (s *Socket) SetHandler(handler func(src myrinet.MAC, srcPort uint16, data []byte)) {
	s.handler = handler
}

// udpHeaderLen is srcPort(2) + dstPort(2) + length(2) + checksum(2).
const udpHeaderLen = 8

// EncodeUDP builds the datagram: header with a one's-complement checksum
// over header (checksum field zero) plus data.
func EncodeUDP(srcPort, dstPort uint16, data []byte) []byte {
	dgram := make([]byte, udpHeaderLen+len(data))
	putU16(dgram[0:], srcPort)
	putU16(dgram[2:], dstPort)
	putU16(dgram[4:], uint16(udpHeaderLen+len(data)))
	copy(dgram[udpHeaderLen:], data)
	putU16(dgram[6:], bitstream.Checksum16(dgram))
	return dgram
}

// DecodeUDP parses and checksums a datagram.
func DecodeUDP(dgram []byte) (srcPort, dstPort uint16, data []byte, err error) {
	if len(dgram) < udpHeaderLen {
		return 0, 0, nil, fmt.Errorf("host: datagram too short (%d bytes)", len(dgram))
	}
	if u16(dgram[4:]) != uint16(len(dgram)) {
		return 0, 0, nil, fmt.Errorf("host: datagram length field %d != %d", u16(dgram[4:]), len(dgram))
	}
	if !bitstream.VerifyChecksum16(dgram) {
		return 0, 0, nil, errChecksum
	}
	return u16(dgram[0:]), u16(dgram[2:]), dgram[udpHeaderLen:], nil
}

var errChecksum = fmt.Errorf("host: UDP checksum mismatch")

func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func u16(b []byte) uint16       { return uint16(b[0])<<8 | uint16(b[1]) }

// jitter returns a uniform random duration in [0, OverheadJitter).
func (n *Node) jitter() sim.Duration {
	if n.cfg.OverheadJitter <= 0 {
		return 0
	}
	return sim.Duration(n.k.Rand().Int63n(int64(n.cfg.OverheadJitter)))
}

// SendUDP queues a datagram to dst. The CPU serializes sends one
// SendOverhead apart; the NIC transmits when the packet reaches it.
func (n *Node) SendUDP(dst myrinet.MAC, srcPort, dstPort uint16, data []byte) {
	if n.dead {
		return
	}
	dgram := EncodeUDP(srcPort, dstPort, data)
	at := n.k.Now() + n.cfg.SendOverhead + n.jitter()
	if n.sendReadyAt > n.k.Now() {
		at = n.sendReadyAt + n.cfg.SendOverhead + n.jitter()
	}
	n.sendReadyAt = at
	n.k.AtArg(at, firePendingSend, &pendingSend{n: n, dst: dst, dgram: dgram})
}

// pendingSend is one serialized CPU send awaiting its injection instant.
// Several can be pending per node (the CPU pipelines them SendOverhead
// apart), so each is its own allocation.
type pendingSend struct {
	n     *Node
	dst   myrinet.MAC
	dgram []byte
}

func firePendingSend(a any) {
	s := a.(*pendingSend)
	if s.n.dead {
		return
	}
	if err := s.n.ifc.Send(s.dst, s.dgram); err != nil {
		s.n.stats.NoRouteErrors++
		return
	}
	s.n.stats.UDPSent++
}

// CloneSimArg implements sim.ArgClonable: a fork remaps the node and copies
// the datagram so neither world aliases the other's buffer.
func (s *pendingSend) CloneSimArg(m *sim.Mapper) any {
	n2, ok := m.Lookup(s.n)
	if !ok {
		panic("host: fork: pending send references an uncloned node")
	}
	return &pendingSend{
		n:     n2.(*Node),
		dst:   s.dst,
		dgram: append([]byte(nil), s.dgram...),
	}
}

// onDatagram is the NIC delivery path: checksum and demultiplex at
// interrupt level, then queue for process-level delivery.
func (n *Node) onDatagram(src myrinet.MAC, payload []byte) {
	if n.dead {
		return
	}
	srcPort, dstPort, data, err := DecodeUDP(payload)
	if err != nil {
		if err == errChecksum {
			// "When the corruption did not satisfy the checksum, the
			// packets were dropped" (§4.3.4).
			n.stats.ChecksumDrops++
			n.ifc.Counters().Drop(myrinet.DropChecksum)
		} else {
			n.stats.MalformedDrops++
		}
		return
	}
	if _, ok := n.sockets[dstPort]; !ok {
		n.stats.NoSocketDrops++
		return
	}
	if len(n.recvq) >= n.cfg.SocketBuffer {
		n.stats.OverflowDrops++
		return
	}
	n.recvq = append(n.recvq, queuedPacket{src: src, srcPort: srcPort, dstPort: dstPort, data: data})
	n.pumpRecv()
}

// pumpRecv drains the receive queue one packet per RecvOverhead, delivering
// at interrupt-tick boundaries.
func (n *Node) pumpRecv() {
	if n.recvBusy || len(n.recvq) == 0 {
		return
	}
	n.recvBusy = true
	n.inRecv = n.recvq[0]
	n.recvq = n.recvq[1:]
	done := n.quantize(n.k.Now() + n.cfg.RecvOverhead + n.jitter())
	n.k.AtArg(done, nodeRecvDone, n)
}

func nodeRecvDone(a any) {
	n := a.(*Node)
	p := n.inRecv
	n.inRecv = queuedPacket{}
	n.recvBusy = false
	if s, ok := n.sockets[p.dstPort]; ok {
		n.stats.UDPReceived++
		s.received++
		if s.handler != nil {
			s.handler(p.src, p.srcPort, p.data)
		}
	} else {
		n.stats.NoSocketDrops++
	}
	n.pumpRecv()
}

// quantize rounds t up to the node's next interrupt-tick boundary.
func (n *Node) quantize(t sim.Time) sim.Time {
	tick := n.cfg.InterruptTick
	if tick <= 1 {
		return t
	}
	rel := t - n.cfg.TickPhase
	q := (rel + tick - 1) / tick * tick
	return q + n.cfg.TickPhase
}
