package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/host"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Sec432Result reproduces the §4.3.2 packet-type corruption experiments:
// mapping-packet designator corruption (0x0005 → 0x000x), data-packet
// designator corruption (0x0004 → unknown), source-route MSB corruption,
// and misrouting.
type Sec432Result struct {
	// Mapping-packet corruption: the node whose scout exchange was hit
	// disappears from the map and from peers' routing tables, and comes
	// back at the next mapping round.
	MappingNodeRemoved  bool
	MappingSendsFailed  uint64 // no-route failures while removed
	MappingNodeRestored bool

	// Data-packet corruption: dropped by the receiving node; routing
	// structures untouched.
	DataPacketDropped   bool
	DataRoutesUntouched bool

	// Source-route MSB set at the destination interface: consumed and
	// handled as an error, without incident.
	RouteMSBConsumed   bool
	RouteMSBNoIncident bool

	// Misrouting: packets directed at the wrong switch port or host are
	// lost, but never accepted by the wrong node.
	MisrouteLost        bool
	MisrouteNotAccepted bool
}

// Sec432Options parameterizes the experiments.
type Sec432Options struct {
	Seed int64
	// Workers runs the four independent experiments concurrently; <= 1 is
	// serial. Results are identical either way.
	Workers int
}

// RunSec432 executes the four §4.3.2 experiments on fresh test beds. Each
// experiment builds its own testbed from its own seed and writes a disjoint
// set of result fields, so they fan out over the worker pool and merge.
func RunSec432(opts Sec432Options) Sec432Result {
	parts := RunTrials(4, opts.Workers, func(i int) Sec432Result {
		var r Sec432Result
		switch i {
		case 0:
			return runMappingCorruption(opts.Seed, r)
		case 1:
			return runDataTypeCorruption(opts.Seed+10, r)
		case 2:
			return runRouteMSB(opts.Seed+20, r)
		default:
			return runMisroute(opts.Seed+30, r)
		}
	})
	res := parts[0] // mapping fields
	res.DataPacketDropped = parts[1].DataPacketDropped
	res.DataRoutesUntouched = parts[1].DataRoutesUntouched
	res.RouteMSBConsumed = parts[2].RouteMSBConsumed
	res.RouteMSBNoIncident = parts[2].RouteMSBNoIncident
	res.MisrouteLost = parts[3].MisrouteLost
	res.MisrouteNotAccepted = parts[3].MisrouteNotAccepted
	return res
}

// runMappingCorruption corrupts the 0x0005 designator of the tapped node's
// scout replies during one mapping round: the mapper sees no response, so
// the node is removed from the network until the next round (§4.3.2).
func runMappingCorruption(seed int64, res Sec432Result) Sec432Result {
	const mapPeriod = 200 * sim.Millisecond
	tb := NewTestbed(TestbedConfig{Seed: seed, Mapping: true, MapPeriod: mapPeriod})
	tapMAC := tb.TapNode().MAC()
	other := tb.Nodes[1]

	// Sanity: route present after warmup.
	if _, ok := other.Interface().Route(tapMAC); !ok {
		return res // warmup failed; flags stay false
	}
	// Match the 4-byte mapping type field 00 00 00 05 and corrupt the
	// designator to 0x000B ("000x where x is a random value"). Armed for
	// exactly one round.
	tb.Configure(
		"DIR L", // outbound: the tapped node's scout replies
		"COMPARE 00 00 00 05",
		"CORRUPT REPLACE -- -- -- 0B",
		"CRC ON", // recompute the trailing CRC-8 so only the designator is wrong
		"MODE ON",
	)
	// One full round with corruption in force.
	tb.K.RunFor(mapPeriod + 50*sim.Millisecond)
	tb.ConfigureBothMode(false)

	removed := true
	if _, ok := other.Interface().Route(tapMAC); ok {
		removed = false
	}
	res.MappingNodeRemoved = removed

	// Sends to the removed node fail with no-route.
	before := other.Stats().NoRouteErrors
	other.SendUDP(tapMAC, 9000, 9001, []byte("to the missing node"))
	tb.K.RunFor(sim.Millisecond)
	res.MappingSendsFailed = other.Stats().NoRouteErrors - before

	// "The node will remain out of the network until the next mapping
	// packet is received": one clean round restores it.
	tb.K.RunFor(mapPeriod + 50*sim.Millisecond)
	_, ok := other.Interface().Route(tapMAC)
	res.MappingNodeRestored = ok
	return res
}

// runDataTypeCorruption corrupts a data packet's 0x0004 designator: the
// receiving node drops it and "the internal network structures, such as the
// routing table, remain unchanged".
func runDataTypeCorruption(seed int64, res Sec432Result) Sec432Result {
	const mapPeriod = 200 * sim.Millisecond
	tb := NewTestbed(TestbedConfig{Seed: seed, Mapping: true, MapPeriod: mapPeriod})
	tap := tb.TapNode()
	dst := tb.Nodes[1]
	routesBefore := fmt.Sprint(dst.Interface().Routes())

	tb.Configure(
		"DIR L",
		"COMPARE 00 00 00 04",
		"CORRUPT REPLACE -- -- -- 0B",
		"CRC ON",
		"MODE ONCE",
	)
	recvBefore := dst.Interface().Counters().PacketsReceived
	dropBefore := dst.Interface().Counters().Drops[myrinet.DropUnknownType]
	tap.SendUDP(dst.MAC(), 9000, 9001, []byte("typed wrong in flight"))
	tb.K.RunFor(5 * sim.Millisecond)

	res.DataPacketDropped = dst.Interface().Counters().Drops[myrinet.DropUnknownType] == dropBefore+1 &&
		dst.Interface().Counters().PacketsReceived == recvBefore
	// Let another mapping round pass; routes must be unchanged.
	tb.K.RunFor(mapPeriod + 50*sim.Millisecond)
	res.DataRoutesUntouched = fmt.Sprint(dst.Interface().Routes()) == routesBefore
	return res
}

// runRouteMSB sets the MSB of the final route byte on a packet arriving at
// the tapped node: the interface must consume it as an error "without
// incident, and without causing delays or other errors on the target node".
func runRouteMSB(seed int64, res Sec432Result) Sec432Result {
	tb := NewTestbed(TestbedConfig{Seed: seed})
	tap := tb.TapNode()
	src := tb.Nodes[1]
	r, err := NewTapReceiver(tap)
	if err != nil {
		panic(err)
	}

	// On the switch→host segment a packet head reads: final route byte
	// 0x00, then the type field's three zero bytes. Match that window
	// and set the route byte's MSB (position 0, the oldest window slot).
	tb.Configure(
		"DIR R",
		"COMPARE 00 00 00 00",
		"CORRUPT REPLACE 81 -- -- --",
		"MODE ONCE",
	)
	// The first packet is corrupted (once mode); two more prove the node
	// keeps working without incident.
	for i := 0; i < 3; i++ {
		src.SendUDP(tap.MAC(), 9000, 9001, []byte{byte('a' + i)})
	}
	tb.K.RunFor(10 * sim.Millisecond)

	res.RouteMSBConsumed = tap.Interface().Counters().Drops[myrinet.DropRouteMSB] == 1
	res.RouteMSBNoIncident = r.Received() == 2 // the other two arrive fine
	return res
}

// runMisroute corrupts the switch-hop route byte of the tapped node's
// outbound packets: "These errors resulted in the expected packet losses,
// but none of the packets were accepted by the incorrect nodes."
func runMisroute(seed int64, res Sec432Result) Sec432Result {
	tb := NewTestbed(TestbedConfig{Seed: seed})
	tap := tb.TapNode()
	right := tb.Nodes[1] // intended destination: switch port 1
	wrong := tb.Nodes[2]
	rRight, err := NewTapReceiver(right)
	if err != nil {
		panic(err)
	}
	rWrong, err := NewTapReceiver(wrong)
	if err != nil {
		panic(err)
	}

	// Outbound packets to node1 open with route byte 0x81 followed by
	// the type field's zeros; redirect the first one to port 2 (node2).
	tb.Configure(
		"DIR L",
		"COMPARE 81 00 00 00",
		"CORRUPT REPLACE 82 -- -- --",
		"CRC ON",
		"MODE ONCE",
	)
	for i := 0; i < 3; i++ {
		tap.SendUDP(right.MAC(), 9000, 9001, []byte{byte('a' + i)})
	}
	tb.K.RunFor(10 * sim.Millisecond)

	res.MisrouteLost = rRight.Received() == 2
	// The wrong node sees the packet but its interface drops it as
	// misaddressed — no bad data passes to a higher level.
	res.MisrouteNotAccepted = rWrong.Received() == 0 &&
		wrong.Interface().Counters().Drops[myrinet.DropMisaddressed] == 1
	return res
}

// countingSocket counts deliveries on the workload port of one node.
type countingSocket struct {
	n uint64
}

// Received reports delivered datagrams.
func (s *countingSocket) Received() uint64 { return s.n }

// NewTapReceiver binds the workload port on a node and counts deliveries.
func NewTapReceiver(n *host.Node) (*countingSocket, error) {
	s := &countingSocket{}
	if _, err := n.Bind(loadDstPort, func(myrinet.MAC, uint16, []byte) { s.n++ }); err != nil {
		return nil, err
	}
	return s, nil
}

// FormatSec432 renders the result as pass/fail lines against the paper's
// observations.
func FormatSec432(r Sec432Result) string {
	check := func(b bool) string {
		if b {
			return "reproduced"
		}
		return "NOT reproduced"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mapping packet 0x0005->0x000x: node removed from network: %s\n", check(r.MappingNodeRemoved))
	fmt.Fprintf(&b, "  sends to removed node fail (no route): %d\n", r.MappingSendsFailed)
	fmt.Fprintf(&b, "  node restored by the next mapping round: %s\n", check(r.MappingNodeRestored))
	fmt.Fprintf(&b, "data packet 0x0004->unknown: dropped by receiver: %s\n", check(r.DataPacketDropped))
	fmt.Fprintf(&b, "  routing tables unchanged: %s\n", check(r.DataRoutesUntouched))
	fmt.Fprintf(&b, "route MSB at interface: consumed as error: %s\n", check(r.RouteMSBConsumed))
	fmt.Fprintf(&b, "  no delays or other errors on the target: %s\n", check(r.RouteMSBNoIncident))
	fmt.Fprintf(&b, "misrouted packets: lost as expected: %s\n", check(r.MisrouteLost))
	fmt.Fprintf(&b, "  never accepted by the wrong node: %s\n", check(r.MisrouteNotAccepted))
	return b.String()
}
