package campaign

import (
	"testing"

	"netfi/internal/core"
	"netfi/internal/sim"
)

func TestReconfigurationCostsSerialTime(t *testing.T) {
	// The injector is reprogrammed over a 115200-baud RS-232 line; a
	// campaign step of a few commands must cost simulated milliseconds —
	// the paper leans on the "slower serial line" in once-mode
	// campaigns, and NFTAPE scripts paid this price per experiment.
	tb := NewTestbed(TestbedConfig{Seed: 1})
	start := tb.K.Now()
	tb.Configure(
		"MODE ONCE",
		"COMPARE -- -- -- C0F",
		"CORRUPT REPLACE -- -- -- C03",
	)
	elapsed := tb.K.Now() - start
	if elapsed < 2*sim.Millisecond {
		t.Errorf("reconfiguration took %v of simulated time; too cheap for a serial line", elapsed)
	}
	if tb.Injector.Engine(DirOutbound).Config().Match != core.MatchOnce {
		t.Error("configuration did not apply")
	}
	// Every command acknowledged.
	for _, r := range tb.Console.Responses() {
		if r != "OK" {
			t.Errorf("response %q, want OK", r)
		}
	}
}

func TestCampaignLongRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long determinism stress; skipped in -short")
	}
	// A full corruption campaign repeated with the same seed must agree
	// to the last counter — the golden-state reset guarantee of §4.2.
	run := func() (uint64, uint64, uint64) {
		tb := NewTestbed(TestbedConfig{Seed: 99, TxQueueLimit: 4})
		tb.Configure(
			"DIR L",
			"COMPARE -- -- -- X0C",
			"CORRUPT REPLACE -- -- -- X03",
			"MODE ON",
		)
		load := tb.StartLoad(LoadConfig{})
		tb.K.RunFor(800 * sim.Millisecond)
		load.Stop()
		tb.ConfigureBothMode(false)
		tb.K.RunFor(100 * sim.Millisecond)
		return load.Sent(), load.Received(), tb.Injections()
	}
	s1, r1, i1 := run()
	s2, r2, i2 := run()
	if s1 != s2 || r1 != r2 || i1 != i2 {
		t.Errorf("campaign runs diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, r1, i1, s2, r2, i2)
	}
	if i1 == 0 {
		t.Error("campaign injected nothing")
	}
}
