package myrinet

import (
	"bytes"
	"testing"

	"netfi/internal/sim"
)

// testHost couples an Interface to capture buffers for end-to-end tests.
type testHost struct {
	ifc      *Interface
	received [][]byte
	srcs     []MAC
}

func newTestHost(k *sim.Kernel, name string, mac byte, id NodeID, mapping MappingConfig) *testHost {
	h := &testHost{}
	h.ifc = NewInterface(k, InterfaceConfig{
		Name:    name,
		MAC:     MAC{0x02, 0, 0, 0, 0, mac},
		ID:      id,
		Mapping: mapping,
	})
	h.ifc.SetDataHandler(func(src MAC, payload []byte) {
		h.received = append(h.received, append([]byte(nil), payload...))
		h.srcs = append(h.srcs, src)
	})
	return h
}

// threeNodeNet builds the Fig. 10 test bed: three hosts on one 8-port
// switch (ports 0, 1, 2), static routes unless mapping is enabled.
func threeNodeNet(t *testing.T, k *sim.Kernel, mapping bool) (*Network, []*testHost, *Switch) {
	t.Helper()
	n := NewNetwork(k)
	sw := n.AddSwitch("sw0", DefaultPortCount)
	hosts := make([]*testHost, 3)
	for i := range hosts {
		cfg := MappingConfig{}
		if mapping {
			cfg = MappingConfig{
				Enabled:       true,
				InitialMapper: i == 2, // highest ID maps
				MapPeriod:     100 * sim.Millisecond,
				ScoutTimeout:  sim.Millisecond,
			}
		}
		hosts[i] = newTestHost(k, string(rune('A'+i)), byte(i+1), NodeID(i+1), cfg)
		n.Interfaces = append(n.Interfaces, hosts[i].ifc)
		n.ConnectHost(hosts[i].ifc, sw, i)
	}
	if !mapping {
		ports := map[*Interface]int{}
		for i, h := range hosts {
			ports[h.ifc] = i
		}
		n.InstallStaticRoutes(ports)
	}
	return n, hosts, sw
}

func TestSwitchDeliversBetweenHosts(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	msg := []byte("hello through the crossbar")
	if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), msg); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(hosts[1].received) != 1 {
		t.Fatalf("B received %d messages, want 1", len(hosts[1].received))
	}
	if !bytes.Equal(hosts[1].received[0], msg) {
		t.Errorf("payload = %q, want %q", hosts[1].received[0], msg)
	}
	if hosts[1].srcs[0] != hosts[0].ifc.MAC() {
		t.Errorf("source = %v, want %v", hosts[1].srcs[0], hosts[0].ifc.MAC())
	}
	if hosts[2].received != nil {
		t.Error("C received a packet not addressed to it")
	}
}

func TestSwitchStripsRouteAndRecomputesCRC(t *testing.T) {
	// The receiving interface verifies CRC-8 over the stripped packet, so
	// a successful delivery proves the switch recomputed it.
	k := sim.NewKernel(1)
	_, hosts, sw := threeNodeNet(t, k, false)
	for i := 0; i < 5; i++ {
		if err := hosts[0].ifc.Send(hosts[2].ifc.MAC(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(hosts[2].received) != 5 {
		t.Fatalf("C received %d, want 5", len(hosts[2].received))
	}
	if got := hosts[2].ifc.Counters().Drops[DropCRC]; got != 0 {
		t.Errorf("CRC drops = %d, want 0", got)
	}
	if got := sw.PortCounters(0).PacketsForwarded; got != 5 {
		t.Errorf("switch forwarded = %d, want 5", got)
	}
}

func TestSwitchBadPortDropsUntilGap(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, sw := threeNodeNet(t, k, false)
	// Route to port 7 (no device attached).
	hosts[0].ifc.SendPacket(&Packet{Route: RouteTo(7), Type: TypeData, Payload: []byte("x")})
	// A valid packet right behind must still be delivered.
	if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got := sw.PortCounters(0).Drops[DropBadPort]; got != 1 {
		t.Errorf("DropBadPort = %d, want 1", got)
	}
	if len(hosts[1].received) != 1 {
		t.Errorf("B received %d, want 1 (resync after bad packet)", len(hosts[1].received))
	}
}

func TestSwitchMSBClearAtSwitchDrops(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, sw := threeNodeNet(t, k, false)
	// Leading route byte with MSB clear arriving at a switch.
	hosts[0].ifc.SendPacket(&Packet{Route: []byte{RouteFinal}, Type: TypeData, Payload: []byte("x")})
	k.Run()
	if got := sw.PortCounters(0).Drops[DropSwitchMSB]; got != 1 {
		t.Errorf("DropSwitchMSB = %d, want 1", got)
	}
}

func TestInterfaceRouteMSBSetConsumedAsError(t *testing.T) {
	// §4.3.2: "If the packet reaches a destination interface with the MSB
	// set to one ... consumed and handled as an error", without incident.
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	// Two hops: port 1, then a "final" byte with MSB set.
	hosts[0].ifc.SendPacket(&Packet{
		Route:   []byte{SwitchHop(1), 0x81},
		Type:    TypeData,
		Payload: []byte("x"),
	})
	if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got := hosts[1].ifc.Counters().Drops[DropRouteMSB]; got != 1 {
		t.Errorf("DropRouteMSB = %d, want 1", got)
	}
	// No delays or other errors on the target node: the good packet
	// arrives.
	if len(hosts[1].received) != 1 {
		t.Errorf("B received %d, want 1", len(hosts[1].received))
	}
}

func TestMisaddressedPacketDropped(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	// Craft a data packet routed to B but addressed to C's MAC.
	dst := hosts[2].ifc.MAC()
	src := hosts[0].ifc.MAC()
	payload := make([]byte, 0, 14)
	payload = append(payload, dst[:]...) // dst MAC = C
	payload = append(payload, src[:]...) // src MAC = A
	payload = append(payload, 'h', 'i')
	hosts[0].ifc.SendPacket(&Packet{Route: RouteTo(1), Type: TypeData, Payload: payload})
	k.Run()
	if got := hosts[1].ifc.Counters().Drops[DropMisaddressed]; got != 1 {
		t.Errorf("DropMisaddressed = %d, want 1", got)
	}
	if len(hosts[1].received) != 0 {
		t.Error("misaddressed packet delivered")
	}
}

func TestSwitchDestinationBlockingSerializes(t *testing.T) {
	// A and C both send a burst to B: the output port is a shared
	// resource; everything must still arrive exactly once.
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	const each = 20
	for i := 0; i < each; i++ {
		if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), []byte{0xA0, byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := hosts[2].ifc.Send(hosts[1].ifc.MAC(), []byte{0xC0, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(hosts[1].received) != 2*each {
		t.Fatalf("B received %d, want %d", len(hosts[1].received), 2*each)
	}
	// Per-sender order preserved.
	var ai, ci byte
	for _, msg := range hosts[1].received {
		switch msg[0] {
		case 0xA0:
			if msg[1] != ai {
				t.Fatalf("A's message out of order: got %d want %d", msg[1], ai)
			}
			ai++
		case 0xC0:
			if msg[1] != ci {
				t.Fatalf("C's message out of order: got %d want %d", msg[1], ci)
			}
			ci++
		default:
			t.Fatalf("unknown sender marker %#02x", msg[0])
		}
	}
	if got := hosts[1].ifc.Counters().Drops[DropCRC]; got != 0 {
		t.Errorf("CRC drops under contention = %d, want 0", got)
	}
}

func TestSwitchLargeTransferNoLoss(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	const count = 100
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < count; i++ {
		payload[0] = byte(i)
		if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), payload); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(hosts[1].received) != count {
		t.Fatalf("received %d/%d large packets", len(hosts[1].received), count)
	}
	for i, msg := range hosts[1].received {
		if msg[0] != byte(i) || len(msg) != len(payload) {
			t.Fatalf("packet %d corrupted (len=%d first=%d)", i, len(msg), msg[0])
		}
	}
}

func TestTwoSwitchTopology(t *testing.T) {
	// host A - sw0(p0) ... sw0(p7) <-> sw1(p6) ... sw1(p1) - host B
	k := sim.NewKernel(1)
	n := NewNetwork(k)
	sw0 := n.AddSwitch("sw0", 8)
	sw1 := n.AddSwitch("sw1", 8)
	a := newTestHost(k, "A", 1, 1, MappingConfig{})
	b := newTestHost(k, "B", 2, 2, MappingConfig{})
	n.ConnectHost(a.ifc, sw0, 0)
	n.ConnectHost(b.ifc, sw1, 1)
	n.ConnectSwitches(sw0, 7, sw1, 6)
	a.ifc.SetRoute(b.ifc.MAC(), RouteTo(7, 1))
	b.ifc.SetRoute(a.ifc.MAC(), RouteTo(6, 0))
	if err := a.ifc.Send(b.ifc.MAC(), []byte("across two switches")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 1 || string(b.received[0]) != "across two switches" {
		t.Fatalf("B received %v", b.received)
	}
	if err := b.ifc.Send(a.ifc.MAC(), []byte("and back")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(a.received) != 1 || string(a.received[0]) != "and back" {
		t.Fatalf("A received %v", a.received)
	}
}
