package rules

import "math/bits"

// Multi-pattern prefilter: a cheap screen compiled from every rule's literal
// prefix, run over whole batch runs so the exact DFA/lane executor wakes only
// around positions where some rule could actually be completing its opening
// symbols. The idea follows the approximate-NFA DPI literature: the screen is
// false-positive-only — it may wake the exact engine spuriously, but a stream
// position it clears provably cannot complete any rule's registered prefix,
// and therefore cannot be inside the prefix span of any accepting run.
//
// Two engines cover the size range:
//
//   - shift-and: every deduplicated prefix gets a contiguous run of bit
//     positions; a per-symbol row table B[s] carries class tokens natively
//     (no wildcard expansion), and one masked shift per symbol advances all
//     partials at once. At most MaxRules x prefixCap = 256 positions, so the
//     state is at most four words.
//   - reduced prefix-DFA: subset construction over the prefix-only NFA under
//     a state budget (the "budgeted approximate-DFA reduction"), with a
//     prefix-truncation ladder when the budget blows. One table lookup per
//     symbol regardless of rule count.
//
// Soundness notes the executor relies on (see Executor.StepBatch and the
// injector's planScan):
//
//   - A rule's registered prefix is its leading run of Gap==0 steps, capped
//     at prefixCap (Validate rejects a gap before the first step, so every
//     rule registers at least one token). An accepting run must consume its
//     rule's full step sequence, and in particular the registered prefix
//     contiguously — so every accept position is preceded by a prefix
//     completion the screen reports.
//   - Dedupe keeps a prefix P and drops Q only when P's tokens are exactly
//     Q's leading tokens, so every completion of Q completes P at the same
//     position: hits are preserved, only duplicates go.
//   - On a hit ending at position p, rewinding to p-MaxLen()+1 covers every
//     prefix completion at or before p; positions cleared earlier hold no
//     viable partial (dead partials never accept).

// prefixCap bounds how many leading concrete symbols of a rule are compiled
// into the prefilter.
const prefixCap = 4

// pfMaxWords is the shift-and state width: MaxRules*prefixCap bit positions.
const pfMaxWords = MaxRules * prefixCap / 64

// DefaultPrefilterStates bounds the reduced prefix-DFA's subset construction;
// small compared to the exact DFA budget because the screen only ever tracks
// prefix progress.
const DefaultPrefilterStates = 256

// prefixToken is one prefix symbol class: matches sym when (sym^cmp)&mask==0.
// cmp is stored pre-masked so token equality is class equality.
type prefixToken struct {
	cmp, mask uint16
}

func (t prefixToken) matches(sym uint16) bool { return (sym^t.cmp)&t.mask == 0 }

// Prefilter is the compiled screen. Immutable after compile and shared
// across executor clones, like the Program that owns it.
type Prefilter struct {
	prefixes [][]prefixToken // deduplicated, for stats and tests
	maxLen   int
	starter  [SymbolSpace / 64]uint64
	starters int

	// shift-and tables (always built; the fallback engine).
	words int
	rows  []uint64 // SymbolSpace x words, row-major by symbol
	ini   [pfMaxWords]uint64
	hitm  [pfMaxWords]uint64
	depth []uint8 // bit position -> symbols consumed (1-based)

	// reduced prefix-DFA tables; acTable nil selects shift-and.
	acTable  []int32
	acAccept []uint64
	acDepth  []uint8
	acStates int
}

// PrefilterStats summarizes the compiled screen.
type PrefilterStats struct {
	// Prefixes is the deduplicated prefix count; MaxLen the longest kept
	// prefix (the hit-rewind distance).
	Prefixes int
	MaxLen   int
	// Starters is how many of the 512 symbols can begin some prefix.
	Starters int
	// Words is the shift-and state width in 64-bit words; Positions the
	// occupied bit positions.
	Words     int
	Positions int
	// States is the reduced prefix-DFA size, zero when shift-and executes.
	States int
	// Engine is "shift-and" or "reduced-dfa".
	Engine string
}

// extractPrefix returns a rule's literal prefix: the first step followed by
// subsequent steps while their Gap is zero, capped at prefixCap.
func extractPrefix(r *Rule) []prefixToken {
	toks := make([]prefixToken, 0, prefixCap)
	for j, st := range r.Steps {
		if j > 0 && st.Gap != 0 {
			break
		}
		mask := st.Mask & SymbolMask
		toks = append(toks, prefixToken{cmp: st.Sym & mask, mask: mask})
		if len(toks) == prefixCap {
			break
		}
	}
	return toks
}

// prefixTrie deduplicates prefixes by exact token class, with leading-prefix
// subsumption: inserting past a terminal node is a no-op (the shorter prefix
// already covers every completion), and marking a node terminal prunes the
// longer prefixes beneath it.
type prefixTrie struct {
	nodes []trieNode
}

type trieNode struct {
	tok      prefixToken
	children []int32
	terminal bool
}

func newPrefixTrie() *prefixTrie {
	return &prefixTrie{nodes: make([]trieNode, 1)} // node 0 is the root
}

func (t *prefixTrie) insert(toks []prefixToken) {
	cur := int32(0)
	for _, tok := range toks {
		if t.nodes[cur].terminal {
			return // subsumed by a shorter prefix already kept
		}
		next := int32(-1)
		for _, c := range t.nodes[cur].children {
			if t.nodes[c].tok == tok {
				next = c
				break
			}
		}
		if next < 0 {
			next = int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{tok: tok})
			t.nodes[cur].children = append(t.nodes[cur].children, next)
		}
		cur = next
	}
	t.nodes[cur].terminal = true
	t.nodes[cur].children = nil // prune subsumed longer prefixes
}

// collect returns the kept prefixes, root-to-terminal, insertion-ordered
// within each subtree.
func (t *prefixTrie) collect() [][]prefixToken {
	var out [][]prefixToken
	var path []prefixToken
	var walk func(n int32)
	walk = func(n int32) {
		node := &t.nodes[n]
		if n != 0 {
			path = append(path, node.tok)
		}
		if node.terminal {
			out = append(out, append([]prefixToken(nil), path...))
		} else {
			for _, c := range node.children {
				walk(c)
			}
		}
		if n != 0 {
			path = path[:len(path)-1]
		}
	}
	walk(0)
	return out
}

// dedupePrefixes truncates every prefix to cap symbols and folds the set
// through the trie.
func dedupePrefixes(prefixes [][]prefixToken, limit int) [][]prefixToken {
	t := newPrefixTrie()
	for _, p := range prefixes {
		if len(p) > limit {
			p = p[:limit]
		}
		t.insert(p)
	}
	return t.collect()
}

// compilePrefilter builds the screen for a validated rule set, or returns nil
// when the requested mode is off or the auto heuristic judges a screen
// useless (starter classes covering most of the symbol space, or no prefix
// longer than one symbol — the quiet-set path already handles those).
func compilePrefilter(rs []Rule, opts Options) *Prefilter {
	if opts.Prefilter == PrefilterOff {
		return nil
	}
	raw := make([][]prefixToken, len(rs))
	for i := range rs {
		raw[i] = extractPrefix(&rs[i])
	}
	pf := &Prefilter{prefixes: dedupePrefixes(raw, prefixCap)}
	for _, p := range pf.prefixes {
		if len(p) > pf.maxLen {
			pf.maxLen = len(p)
		}
		first := p[0]
		for s := 0; s < SymbolSpace; s++ {
			if first.matches(uint16(s)) {
				pf.starter[s>>6] |= 1 << uint(s&63)
			}
		}
	}
	for _, w := range pf.starter {
		pf.starters += bits.OnesCount64(w)
	}
	if opts.Prefilter == PrefilterAuto &&
		(pf.maxLen < 2 || 2*pf.starters > SymbolSpace) {
		return nil
	}
	pf.buildShiftAnd()
	budget := opts.PrefilterBudget
	if budget <= 0 {
		budget = DefaultPrefilterStates
	}
	switch opts.Prefilter {
	case PrefilterShiftAnd:
		// shift-and only
	case PrefilterReduced:
		pf.buildReduced(budget)
	default: // auto: one table load beats a multi-word shift when it fits
		if pf.words > 2 {
			pf.buildReduced(budget)
		}
	}
	return pf
}

// buildShiftAnd lays the deduplicated prefixes into contiguous bit positions.
// Prefix boundaries need no masking: a bit shifted past a prefix's last
// position lands on the next prefix's first position, which the per-step
// initial-position injection sets anyway.
func (pf *Prefilter) buildShiftAnd() {
	total := 0
	for _, p := range pf.prefixes {
		total += len(p)
	}
	pf.words = (total + 63) / 64
	pf.rows = make([]uint64, SymbolSpace*pf.words)
	pf.depth = make([]uint8, pf.words*64)
	pf.ini = [pfMaxWords]uint64{}
	pf.hitm = [pfMaxWords]uint64{}
	pos := 0
	for _, p := range pf.prefixes {
		pf.ini[pos>>6] |= 1 << uint(pos&63)
		for j, tok := range p {
			b := pos + j
			pf.depth[b] = uint8(j + 1)
			for s := 0; s < SymbolSpace; s++ {
				if tok.matches(uint16(s)) {
					pf.rows[s*pf.words+(b>>6)] |= 1 << uint(b&63)
				}
			}
		}
		last := pos + len(p) - 1
		pf.hitm[last>>6] |= 1 << uint(last&63)
		pos += len(p)
	}
}

// buildReduced subset-constructs the prefix-only NFA under the state budget,
// walking a truncation ladder (shorter prefixes, smaller automaton) when the
// budget blows. All-caps-blown leaves the shift-and engine in charge.
func (pf *Prefilter) buildReduced(budget int) {
	for limit := pf.maxLen; limit >= 1; limit-- {
		prefixes := pf.prefixes
		if limit < pf.maxLen {
			prefixes = dedupePrefixes(pf.prefixes, limit)
		}
		nfa, starts, depths := prefixNFA(prefixes)
		table, accept, sets, ok := subsetConstruct(nfa, starts, budget)
		if !ok {
			continue
		}
		pf.acTable = table
		pf.acAccept = accept
		pf.acStates = len(sets)
		pf.acDepth = make([]uint8, len(sets))
		for i, set := range sets {
			var d uint8
			for _, s := range set {
				if depths[s] > d {
					d = depths[s]
				}
			}
			pf.acDepth[i] = d
		}
		if limit < pf.maxLen {
			// The executing engine only tracks truncated prefixes; rewind
			// and holdback distances — and the shift-and tables, should a
			// caller inspect them — must match it.
			pf.maxLen = limit
			pf.prefixes = prefixes
			pf.buildShiftAnd()
		}
		return
	}
}

// prefixNFA lowers prefixes to Thompson states for subset construction: one
// unanchored start per prefix (nfaState carries at most one consuming
// transition) followed by its token chain; the last state accepts. depths[s]
// is how many prefix symbols state s has consumed.
func prefixNFA(prefixes [][]prefixToken) (nfa []nfaState, starts []int32, depths []uint8) {
	blank := nfaState{matchNext: -1, anyNext: -1, accept: -1}
	for _, p := range prefixes {
		start := int32(len(nfa))
		starts = append(starts, start)
		s := blank
		s.selfAny = true
		nfa = append(nfa, s)
		depths = append(depths, 0)
		cur := start
		for j, tok := range p {
			post := blank
			if j == len(p)-1 {
				post.accept = 0 // any accept bit means "hit"
			}
			// A mask-0 token fires on any symbol — the same convention the
			// exact NFA simulator and subset construction use.
			nfa[cur].cmp = tok.cmp
			nfa[cur].mask = tok.mask
			next := int32(len(nfa))
			nfa[cur].matchNext = next
			nfa = append(nfa, post)
			depths = append(depths, uint8(j+1))
			cur = next
		}
	}
	return nfa, starts, depths
}

// Starter reports whether sym can begin some rule's prefix. The injector's
// batch plan folds this into its wake table: non-starters extend skip runs
// even though they are not in the executor's conservative quiet set.
func (pf *Prefilter) Starter(sym uint16) bool {
	s := sym & SymbolMask
	return pf.starter[s>>6]&(1<<uint(s&63)) != 0
}

// MaxLen is the longest registered prefix: the hit-rewind and buffer-tail
// holdback distance.
func (pf *Prefilter) MaxLen() int { return pf.maxLen }

// Stats summarizes the compiled screen.
func (pf *Prefilter) Stats() PrefilterStats {
	total := 0
	for _, p := range pf.prefixes {
		total += len(p)
	}
	st := PrefilterStats{
		Prefixes:  len(pf.prefixes),
		MaxLen:    pf.maxLen,
		Starters:  pf.starters,
		Words:     pf.words,
		Positions: total,
		Engine:    "shift-and",
	}
	if pf.acTable != nil {
		st.States = pf.acStates
		st.Engine = "reduced-dfa"
	}
	return st
}
