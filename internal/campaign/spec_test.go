package campaign

import (
	"strings"
	"testing"
)

const specGapToGo = `{
  "name": "gap-to-go",
  "seed": 7,
  "duration_ms": 900,
  "tx_queue_limit": 4,
  "faults": [
    {
      "direction": "both",
      "commands": ["COMPARE -- -- -- X0C", "CORRUPT REPLACE -- -- -- X03"],
      "mode": "on",
      "duty_on_ms": 1,
      "duty_period_ms": 100
    }
  ]
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(specGapToGo))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "gap-to-go" || len(s.Faults) != 1 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"name":"x","typo_field":1,"faults":[]}`,
		"no name":        `{"faults":[]}`,
		"bad direction":  `{"name":"x","faults":[{"direction":"up","commands":["A"]}]}`,
		"bad mode":       `{"name":"x","faults":[{"mode":"sometimes","commands":["A"]}]}`,
		"half duty":      `{"name":"x","faults":[{"commands":["A"],"duty_on_ms":5}]}`,
		"duty > period":  `{"name":"x","faults":[{"commands":["A"],"duty_on_ms":50,"duty_period_ms":5}]}`,
		"empty commands": `{"name":"x","faults":[{"commands":[]}]}`,
		"not json":       `{`,
	}
	for name, raw := range cases {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSpecBaseline(t *testing.T) {
	res := RunSpec(Spec{Name: "baseline", Seed: 1, DurationMS: 500})
	if res.Sent == 0 || res.Received != res.Sent {
		t.Errorf("baseline spec lost traffic: %+v", res)
	}
	if res.Classification != "no-effect" {
		t.Errorf("classification = %q, want no-effect", res.Classification)
	}
	if res.Injections != 0 {
		t.Errorf("injections = %d with no faults", res.Injections)
	}
}

func TestRunSpecGapCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run; skipped in -short")
	}
	s, err := ParseSpec([]byte(specGapToGo))
	if err != nil {
		t.Fatal(err)
	}
	res := RunSpec(s)
	if res.Injections == 0 {
		t.Fatal("spec campaign injected nothing")
	}
	if res.Received >= res.Sent {
		t.Errorf("no loss from GAP corruption: %+v", res)
	}
	if res.Classification != "passive" {
		t.Errorf("classification = %q, want passive", res.Classification)
	}
	out := FormatSpecResult(res)
	if !strings.Contains(out, "gap-to-go") || !strings.Contains(out, "injections=") {
		t.Errorf("FormatSpecResult output malformed: %q", out)
	}
}

func TestRunSpecOnceMode(t *testing.T) {
	res := RunSpec(Spec{
		Name:       "once",
		Seed:       3,
		DurationMS: 300,
		Faults: []FaultSpec{{
			Commands: []string{"COMPARE -- -- -- X0C", "CORRUPT REPLACE -- -- -- X03"},
			Mode:     "once",
			AtMS:     50,
		}},
	})
	// Once per direction: at most 2 injections.
	if res.Injections == 0 || res.Injections > 2 {
		t.Errorf("once-mode injections = %d, want 1-2", res.Injections)
	}
}
