package fibrechannel

import (
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// CodeGroupPeriod is the serialization time of one 10-bit code group at
// the FC-PH gigabit rate (1.0625 Gbaud): about 9.4 ns.
const CodeGroupPeriod = 9_412 * sim.Picosecond

// DefaultLinkConfig returns FC link timing with a one-meter cable.
func DefaultLinkConfig(name string) phy.LinkConfig {
	return phy.LinkConfig{
		Name:       name,
		CharPeriod: CodeGroupPeriod,
		PropDelay:  5 * sim.Nanosecond,
	}
}

// Connect builds a full-duplex FC link between two new N_Ports and returns
// them plus the cable (into which a fault injector can be spliced).
func Connect(k *sim.Kernel, a, b NPortConfig) (*NPort, *NPort, *phy.Cable) {
	linkAB := phy.NewLink(k, DefaultLinkConfig(a.Name+"->"+b.Name), discard{})
	linkBA := phy.NewLink(k, DefaultLinkConfig(b.Name+"->"+a.Name), discard{})
	pa := NewNPort(k, a, linkAB)
	pb := NewNPort(k, b, linkBA)
	linkAB.SetDst(pb)
	linkBA.SetDst(pa)
	return pa, pb, &phy.Cable{LeftToRight: linkAB, RightToLeft: linkBA}
}

type discard struct{}

func (discard) Receive([]phy.Character) {}
