package campaign

import "testing"

// TestMultiRuleSinglePass is the acceptance check for the multi-rule trigger
// engine: nine concurrent rules (seven per-target REPLACE, one shared
// TOGGLE, one capture-only watch — eight of them corrupting) armed in one
// serial configuration pass must all match and corrupt correctly in a
// single stream pass.
func TestMultiRuleSinglePass(t *testing.T) {
	res := RunMultiRule(MultiRuleOptions{Seed: 77})

	if res.RulesArmed != res.Targets+2 || res.RulesArmed < 8 {
		t.Fatalf("rules armed = %d, want %d (>= 8)", res.RulesArmed, res.Targets+2)
	}
	if res.Mode != "dfa" {
		t.Errorf("compiled mode = %q, want dfa (states=%d)", res.Mode, res.DFAStates)
	}
	if res.TargetsDroppedByCRC != res.Targets {
		t.Errorf("targets dropped by CRC = %d/%d", res.TargetsDroppedByCRC, res.Targets)
	}
	if !res.NoneDelivered {
		t.Error("a corrupted packet was delivered to an application")
	}
	for i := 1; i <= res.Targets; i++ {
		if res.PerRuleFires[i] != 1 {
			t.Errorf("target rule %d fired %d times, want 1", i, res.PerRuleFires[i])
		}
	}
	if res.ToggleFires != uint64(res.Targets) {
		t.Errorf("shared toggle fired %d times, want %d", res.ToggleFires, res.Targets)
	}
	if res.WatchMatches != uint64(res.Targets) {
		t.Errorf("capture watch matched %d packets, want %d", res.WatchMatches, res.Targets)
	}
}

// TestMultiRuleDeterminism re-runs the experiment with the same seed and
// requires identical outcomes — the §4.2 known-good-state reset requirement
// extended to the rule engine.
func TestMultiRuleDeterminism(t *testing.T) {
	a := RunMultiRule(MultiRuleOptions{Seed: 5})
	b := RunMultiRule(MultiRuleOptions{Seed: 5})
	if FormatMultiRule(a) != FormatMultiRule(b) {
		t.Errorf("same seed, different outcomes:\n%s\nvs\n%s", FormatMultiRule(a), FormatMultiRule(b))
	}
}
