// Package fibrechannel implements the board's second medium (the paper's
// PCB carries both a MyriPHY and an FCPHY): a point-to-point Fibre Channel
// link at the FC-PH level — 8b/10b code groups on the wire, ordered sets
// (IDLE, R_RDY, SOF, EOF) built on K28.5, frames with a 24-byte header and
// CRC-32, and buffer-to-buffer credit flow control. The fault injector
// splices into the code-group stream exactly as it does on Myrinet,
// demonstrating that only the interface logic is medium-specific.
package fibrechannel

import (
	"errors"
	"fmt"

	"netfi/internal/bitstream"
)

// HeaderLen is the FC-PH frame header size.
const HeaderLen = 24

// MaxPayload bounds the data field (FC-PH allows 2112).
const MaxPayload = 2112

// Address is a 24-bit N_Port identifier.
type Address uint32

// String formats the address as x.y.z.
func (a Address) String() string {
	return fmt.Sprintf("%d.%d.%d", byte(a>>16), byte(a>>8), byte(a))
}

// Header is the FC-PH frame header.
type Header struct {
	RCtl   byte
	DID    Address // destination N_Port
	CSCtl  byte
	SID    Address // source N_Port
	Type   byte
	FCtl   uint32 // 24 bits
	SeqID  byte
	DFCtl  byte
	SeqCnt uint16
	OXID   uint16
	RXID   uint16
	Params uint32
}

// Frame is one FC frame between SOF and EOF.
type Frame struct {
	Header  Header
	Payload []byte
}

// Encode serializes header+payload and appends CRC-32 (no SOF/EOF; those
// are ordered sets added by the port).
func (f *Frame) Encode() []byte {
	h := f.Header
	out := make([]byte, 0, HeaderLen+len(f.Payload)+4)
	out = append(out,
		h.RCtl, byte(h.DID>>16), byte(h.DID>>8), byte(h.DID),
		h.CSCtl, byte(h.SID>>16), byte(h.SID>>8), byte(h.SID),
		h.Type, byte(h.FCtl>>16), byte(h.FCtl>>8), byte(h.FCtl),
		h.SeqID, h.DFCtl, byte(h.SeqCnt>>8), byte(h.SeqCnt),
		byte(h.OXID>>8), byte(h.OXID), byte(h.RXID>>8), byte(h.RXID),
		byte(h.Params>>24), byte(h.Params>>16), byte(h.Params>>8), byte(h.Params),
	)
	out = append(out, f.Payload...)
	crc := bitstream.CRC32(out)
	return append(out, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// Decode errors.
var (
	ErrFrameTooShort = errors.New("fibrechannel: frame shorter than header+CRC")
	ErrBadCRC        = errors.New("fibrechannel: CRC-32 mismatch")
)

// DecodeFrame parses bytes between SOF and EOF, verifying CRC-32.
func DecodeFrame(raw []byte) (*Frame, error) {
	if len(raw) < HeaderLen+4 {
		return nil, ErrFrameTooShort
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	f := &Frame{
		Header: Header{
			RCtl:   body[0],
			DID:    Address(body[1])<<16 | Address(body[2])<<8 | Address(body[3]),
			CSCtl:  body[4],
			SID:    Address(body[5])<<16 | Address(body[6])<<8 | Address(body[7]),
			Type:   body[8],
			FCtl:   uint32(body[9])<<16 | uint32(body[10])<<8 | uint32(body[11]),
			SeqID:  body[12],
			DFCtl:  body[13],
			SeqCnt: uint16(body[14])<<8 | uint16(body[15]),
			OXID:   uint16(body[16])<<8 | uint16(body[17]),
			RXID:   uint16(body[18])<<8 | uint16(body[19]),
			Params: uint32(body[20])<<24 | uint32(body[21])<<16 | uint32(body[22])<<8 | uint32(body[23]),
		},
		Payload: append([]byte(nil), body[HeaderLen:]...),
	}
	if bitstream.CRC32(body) != want {
		return f, ErrBadCRC
	}
	return f, nil
}
