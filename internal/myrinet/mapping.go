package myrinet

import (
	"sort"

	"netfi/internal/sim"
)

// MappingConfig parameterizes the MCP's mapping behaviour (§4.1: "Each MCP
// on a network is given a unique 64-bit address, and the MCP with the
// highest address is responsible for mapping the network, a process which
// is performed once every second").
type MappingConfig struct {
	// Enabled turns on mapper-role participation (rounds and watchdog).
	// Scout responses are always on: they are interface firmware.
	Enabled bool
	// InitialMapper makes this node start mapping immediately instead of
	// waiting for the watchdog; set it on the highest-ID node.
	InitialMapper bool
	// MapPeriod is the interval between mapping rounds. Zero selects 1 s.
	MapPeriod sim.Duration
	// ScoutTimeout is how long the mapper waits for scout replies per
	// probe wave. Zero selects 1 ms.
	ScoutTimeout sim.Duration
	// ProbeDepth is the maximum number of switch hops probed. Zero
	// selects 1 (a single switch, the paper's test bed).
	ProbeDepth int
	// ProbeFanout is the assumed switch port count. Zero selects 8.
	ProbeFanout int
	// WatchdogFactor scales MapPeriod into the promotion timeout: a
	// non-mapper that hears no routing-table update for
	// WatchdogFactor*MapPeriod promotes itself. Zero selects 2.5.
	WatchdogFactor float64
	// InitialDelay postpones the first round/watchdog after attach.
	// Zero selects 1 ms.
	InitialDelay sim.Duration
}

func (c *MappingConfig) fillDefaults() {
	if c.MapPeriod == 0 {
		c.MapPeriod = sim.Second
	}
	if c.ScoutTimeout == 0 {
		c.ScoutTimeout = sim.Millisecond
	}
	if c.ProbeDepth == 0 {
		c.ProbeDepth = 1
	}
	if c.ProbeFanout == 0 {
		c.ProbeFanout = DefaultPortCount
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 2.5
	}
	if c.InitialDelay == 0 {
		c.InitialDelay = sim.Millisecond
	}
}

// Mapping packet subtypes, carried in the first payload byte.
const (
	mapSubScout byte = 1
	mapSubReply byte = 2
	mapSubTable byte = 3
)

// scoutFixedLen is the scout payload before switch-appended in-ports:
// subtype (1) + mapper ID (8) + mapper MAC (6) + probe sequence (2).
const scoutFixedLen = 1 + 8 + 6 + 2

// MapEntry describes one node discovered by a mapping round.
type MapEntry struct {
	// Route is the mapper's source route to the node (including the
	// final byte).
	Route []byte
	// InPorts lists the switch input ports the scout traversed; reversed
	// they form the node's route back to the mapper.
	InPorts []byte
	// MAC is the node's 48-bit physical address.
	MAC MAC
	// ID is the node's 64-bit MCP address.
	ID NodeID
}

// Snapshot is the outcome of one mapping round — what mmon renders and what
// Fig. 11 contrasts before/after the controller-address corruption.
type Snapshot struct {
	At           sim.Time
	Mapper       NodeID
	Round        uint64
	Entries      []MapEntry
	Inconsistent bool
}

// NodeCount reports how many nodes the snapshot contains.
func (s *Snapshot) NodeCount() int { return len(s.Entries) }

// Has reports whether the snapshot contains a node with the given MAC.
func (s *Snapshot) Has(mac MAC) bool {
	for _, e := range s.Entries {
		if e.MAC == mac {
			return true
		}
	}
	return false
}

// MCP is the Myrinet Control Program: mapping rounds when this node is the
// mapper, scout responses always, routing-table installation, and the
// promotion watchdog.
type MCP struct {
	ifc *Interface
	cfg MappingConfig

	isMapper    bool
	knownMapper NodeID
	watchdog    *sim.Timer

	// Mapper round state.
	seq         uint16
	probes      map[uint16]*probe
	roundActive bool
	rounds      uint64
	failed      uint64
	last        *Snapshot
	onSnapshot  func(*Snapshot)

	// Statistics.
	scoutsSent     uint64
	scoutsAnswered uint64
	repliesSeen    uint64
	tablesApplied  uint64
	promotions     uint64
	demotions      uint64
}

type probe struct {
	route    []byte
	firstHop int
	entry    *MapEntry
}

func newMCP(ifc *Interface, cfg MappingConfig) *MCP {
	cfg.fillDefaults()
	m := &MCP{ifc: ifc, cfg: cfg, probes: make(map[uint16]*probe)}
	m.watchdog = sim.NewTimer(ifc.k, sim.Duration(cfg.WatchdogFactor*float64(cfg.MapPeriod)), m.onWatchdog)
	return m
}

// start is called when the interface attaches to the network.
func (m *MCP) start() {
	if !m.cfg.Enabled {
		return
	}
	if m.cfg.InitialMapper {
		m.isMapper = true
	}
	m.ifc.k.AfterArg(m.cfg.InitialDelay, mcpStart, m)
}

// Package-level trampolines: the MCP's periodic machinery schedules
// capture-free (AfterArg) so a warmed testbed with mapping armed can be
// forked (see sim.Mapper).
func mcpStart(a any) {
	m := a.(*MCP)
	if !m.isMapper {
		m.watchdog.Reset()
	}
	m.tick()
}

func mcpTick(a any)       { a.(*MCP).tick() }
func mcpSecondWave(a any) { a.(*MCP).secondWave() }
func mcpFinish(a any)     { a.(*MCP).finishRound() }
func mcpBegin(a any)      { a.(*MCP).beginRound() }

// tick is the single per-node periodic driver: mappers begin a round every
// MapPeriod ("performed once every second").
func (m *MCP) tick() {
	if m.isMapper && !m.roundActive {
		m.beginRound()
	}
	m.ifc.k.AfterArg(m.cfg.MapPeriod, mcpTick, m)
}

// IsMapper reports whether this node currently acts as the network mapper.
func (m *MCP) IsMapper() bool { return m.isMapper }

// KnownMapper returns the MCP ID of the last mapper whose table this node
// accepted.
func (m *MCP) KnownMapper() NodeID { return m.knownMapper }

// LastSnapshot returns the most recent mapping round's outcome (mapper
// only), or nil.
func (m *MCP) LastSnapshot() *Snapshot { return m.last }

// Rounds reports completed mapping rounds and how many were inconsistent.
func (m *MCP) Rounds() (total, inconsistent uint64) { return m.rounds, m.failed }

// SetSnapshotHandler registers a callback invoked after every completed
// round (mapper only).
func (m *MCP) SetSnapshotHandler(fn func(*Snapshot)) { m.onSnapshot = fn }

// onWatchdog promotes this node to mapper after silence from the current
// one — the recovery that brings the network back when the mapper's address
// is corrupted away.
func (m *MCP) onWatchdog() {
	if m.isMapper || !m.cfg.Enabled {
		return
	}
	m.promotions++
	m.isMapper = true
	m.beginRound()
}

// ---- mapper rounds ----

func (m *MCP) beginRound() {
	if !m.isMapper || m.roundActive {
		return
	}
	m.roundActive = true
	m.probes = make(map[uint16]*probe)
	for p := 0; p < m.cfg.ProbeFanout; p++ {
		m.sendScout([]byte{SwitchHop(p), RouteFinal}, p)
	}
	if m.cfg.ProbeDepth >= 2 {
		m.ifc.k.AfterArg(m.cfg.ScoutTimeout, mcpSecondWave, m)
	} else {
		m.ifc.k.AfterArg(m.cfg.ScoutTimeout, mcpFinish, m)
	}
}

func (m *MCP) secondWave() {
	if !m.isMapper || !m.roundActive {
		return
	}
	answered := make(map[int]bool)
	for _, pr := range m.probes {
		if pr.entry != nil {
			answered[pr.firstHop] = true
		}
	}
	for p := 0; p < m.cfg.ProbeFanout; p++ {
		if answered[p] {
			continue // a host answered directly; no switch behind it
		}
		for q := 0; q < m.cfg.ProbeFanout; q++ {
			m.sendScout([]byte{SwitchHop(p), SwitchHop(q), RouteFinal}, p)
		}
	}
	m.ifc.k.AfterArg(m.cfg.ScoutTimeout, mcpFinish, m)
}

func (m *MCP) sendScout(route []byte, firstHop int) {
	m.seq++
	m.probes[m.seq] = &probe{route: route, firstHop: firstHop}
	payload := make([]byte, 0, scoutFixedLen)
	payload = append(payload, mapSubScout)
	payload = appendID(payload, m.ifc.cfg.ID)
	payload = append(payload, m.ifc.cfg.MAC[:]...)
	payload = append(payload, byte(m.seq>>8), byte(m.seq))
	m.scoutsSent++
	m.ifc.SendPacket(&Packet{Route: route, Type: TypeMapping, Payload: payload})
}

func (m *MCP) finishRound() {
	if !m.isMapper || !m.roundActive {
		return
	}
	m.roundActive = false
	m.rounds++

	entries := []MapEntry{{Route: []byte{RouteFinal}, InPorts: nil, MAC: m.ifc.cfg.MAC, ID: m.ifc.cfg.ID}}
	seqs := make([]int, 0, len(m.probes))
	for s := range m.probes {
		seqs = append(seqs, int(s))
	}
	sort.Ints(seqs)
	for _, s := range seqs {
		if e := m.probes[uint16(s)].entry; e != nil {
			entries = append(entries, *e)
		}
	}

	inconsistent := hasDuplicateIdentity(entries)
	if inconsistent {
		// "The controller is confused by the appearance of what it
		// believes is another controller, and is unable to generate a
		// consistent map. Each attempt to resolve the network fails in
		// an apparently random fashion" (§4.3.3): keep a pseudo-random
		// subset; the faulty map is not static across rounds.
		m.failed++
		rng := m.ifc.k.Rand()
		kept := entries[:1]
		for _, e := range entries[1:] {
			if rng.Intn(2) == 0 {
				kept = append(kept, e)
			}
		}
		entries = kept
	}

	snap := &Snapshot{
		At:           m.ifc.k.Now(),
		Mapper:       m.ifc.cfg.ID,
		Round:        m.rounds,
		Entries:      entries,
		Inconsistent: inconsistent,
	}
	m.last = snap
	m.distribute(snap)
	if m.onSnapshot != nil {
		m.onSnapshot(snap)
	}
}

func hasDuplicateIdentity(entries []MapEntry) bool {
	macs := make(map[MAC]bool, len(entries))
	ids := make(map[NodeID]bool, len(entries))
	for _, e := range entries {
		if macs[e.MAC] || ids[e.ID] {
			return true
		}
		macs[e.MAC] = true
		ids[e.ID] = true
	}
	return false
}

// distribute computes per-node routing tables from the snapshot and sends
// them out (subtype 3). The mapper installs its own table directly.
func (m *MCP) distribute(snap *Snapshot) {
	self := snap.Entries[0]
	for i, x := range snap.Entries {
		table := make(map[MAC][]byte, len(snap.Entries)-1)
		for j, y := range snap.Entries {
			if i == j {
				continue
			}
			r := routeBetween(x, y)
			if r != nil {
				table[y.MAC] = r
			}
		}
		if x.MAC == self.MAC {
			m.ifc.replaceRoutes(table)
			continue
		}
		m.sendTable(x, table)
	}
}

// routeBetween computes the source route from x to y using the scout
// evidence: reversed in-ports walk back toward the mapper's switch, then
// the mapper's forward route reaches y. Valid for tree topologies.
func routeBetween(x, y MapEntry) []byte {
	if len(x.InPorts) == 0 {
		// x is the mapper: its route to y is the probe route.
		return append([]byte(nil), y.Route...)
	}
	rev := make([]byte, 0, len(x.InPorts))
	for i := len(x.InPorts) - 1; i >= 0; i-- {
		rev = append(rev, SwitchHop(int(x.InPorts[i])))
	}
	if len(y.InPorts) == 0 {
		// y is the mapper: the reversed in-ports lead straight to it.
		return append(rev, RouteFinal)
	}
	// Stop one hop short of the mapper and splice y's forward hops.
	route := rev[:len(rev)-1]
	route = append(route, y.Route...)
	return route
}

func (m *MCP) sendTable(x MapEntry, table map[MAC][]byte) {
	payload := []byte{mapSubTable}
	payload = appendID(payload, m.ifc.cfg.ID)
	payload = append(payload, byte(len(table)>>8), byte(len(table)))
	macs := make([]MAC, 0, len(table))
	for mac := range table {
		macs = append(macs, mac)
	}
	sort.Slice(macs, func(i, j int) bool { return macs[i].String() < macs[j].String() })
	for _, mac := range macs {
		r := table[mac]
		payload = append(payload, mac[:]...)
		payload = append(payload, byte(len(r)))
		payload = append(payload, r...)
	}
	m.ifc.SendPacket(&Packet{Route: x.Route, Type: TypeMapping, Payload: payload})
}

// ---- packet handling (all nodes) ----

func (m *MCP) handlePacket(payload []byte) {
	if len(payload) == 0 {
		m.ifc.ctr.Drop(DropTruncated)
		return
	}
	switch payload[0] {
	case mapSubScout:
		m.handleScout(payload)
	case mapSubReply:
		m.handleReply(payload)
	case mapSubTable:
		m.handleTable(payload)
	default:
		m.ifc.ctr.Drop(DropUnknownType)
	}
}

// handleScout answers a scout with this node's identity and the echoed
// forward in-ports. Responses are interface firmware: they work even when
// the host is unreachable for data traffic (§4.3.3).
func (m *MCP) handleScout(payload []byte) {
	if len(payload) < scoutFixedLen {
		m.ifc.ctr.Drop(DropTruncated)
		return
	}
	origin := readID(payload[1:9])
	if origin == m.ifc.cfg.ID {
		return // own scout looped back through the fabric
	}
	seqHi, seqLo := payload[15], payload[16]
	inPorts := payload[scoutFixedLen:]
	// Reply route: reversed in-ports, then the final byte.
	route := make([]byte, 0, len(inPorts)+1)
	for i := len(inPorts) - 1; i >= 0; i-- {
		route = append(route, SwitchHop(int(inPorts[i])))
	}
	route = append(route, RouteFinal)

	reply := []byte{mapSubReply}
	reply = appendID(reply, m.ifc.cfg.ID)
	reply = append(reply, m.ifc.cfg.MAC[:]...)
	reply = append(reply, seqHi, seqLo)
	reply = append(reply, byte(len(inPorts)))
	reply = append(reply, inPorts...)
	m.scoutsAnswered++
	m.ifc.SendPacket(&Packet{Route: route, Type: TypeMapping, Payload: reply})
}

// handleReply records a scout answer during an active round.
func (m *MCP) handleReply(payload []byte) {
	const fixed = 1 + 8 + 6 + 2 + 1
	if len(payload) < fixed {
		m.ifc.ctr.Drop(DropTruncated)
		return
	}
	if !m.isMapper || !m.roundActive {
		return // stale reply
	}
	m.repliesSeen++
	id := readID(payload[1:9])
	var mac MAC
	copy(mac[:], payload[9:15])
	seq := uint16(payload[15])<<8 | uint16(payload[16])
	n := int(payload[17])
	if len(payload) < fixed+n {
		m.ifc.ctr.Drop(DropTruncated)
		return
	}
	fwdPorts := append([]byte(nil), payload[fixed:fixed+n]...)
	pr, ok := m.probes[seq]
	if !ok || pr.entry != nil {
		return // unknown probe or duplicate answer
	}
	pr.entry = &MapEntry{
		Route:   append([]byte(nil), pr.route...),
		InPorts: fwdPorts,
		MAC:     mac,
		ID:      id,
	}
}

// handleTable installs a routing table from a mapper and arbitrates the
// mapper role by MCP address.
func (m *MCP) handleTable(payload []byte) {
	const fixed = 1 + 8 + 2
	if len(payload) < fixed {
		m.ifc.ctr.Drop(DropTruncated)
		return
	}
	mapper := readID(payload[1:9])
	count := int(payload[9])<<8 | int(payload[10])
	table := make(map[MAC][]byte, count)
	off := fixed
	for i := 0; i < count; i++ {
		if off+7 > len(payload) {
			m.ifc.ctr.Drop(DropTruncated)
			return
		}
		var mac MAC
		copy(mac[:], payload[off:off+6])
		rl := int(payload[off+6])
		off += 7
		if off+rl > len(payload) {
			m.ifc.ctr.Drop(DropTruncated)
			return
		}
		table[mac] = append([]byte(nil), payload[off:off+rl]...)
		off += rl
	}
	m.tablesApplied++
	m.ifc.replaceRoutes(table)
	m.knownMapper = mapper
	if m.cfg.Enabled {
		m.watchdog.Reset()
	}
	switch {
	case m.isMapper && mapper > m.ifc.cfg.ID:
		// A higher-address MCP is mapping: defer to it (§4.1).
		m.demotions++
		m.isMapper = false
	case !m.isMapper && m.cfg.Enabled && mapper < m.ifc.cfg.ID:
		// We outrank the active mapper: take over.
		m.promotions++
		m.isMapper = true
		m.ifc.k.AfterArg(m.cfg.InitialDelay, mcpBegin, m)
	}
}

// TablesApplied reports how many routing-table updates this node accepted.
func (m *MCP) TablesApplied() uint64 { return m.tablesApplied }

// ScoutsAnswered reports how many scouts this node replied to.
func (m *MCP) ScoutsAnswered() uint64 { return m.scoutsAnswered }

// Promotions and demotions report mapper-role transitions.
func (m *MCP) Promotions() uint64 { return m.promotions }

// Demotions reports how many times this node ceded the mapper role.
func (m *MCP) Demotions() uint64 { return m.demotions }

func appendID(b []byte, id NodeID) []byte {
	return append(b,
		byte(id>>56), byte(id>>48), byte(id>>40), byte(id>>32),
		byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
}

func readID(b []byte) NodeID {
	return NodeID(b[0])<<56 | NodeID(b[1])<<48 | NodeID(b[2])<<40 | NodeID(b[3])<<32 |
		NodeID(b[4])<<24 | NodeID(b[5])<<16 | NodeID(b[6])<<8 | NodeID(b[7])
}
