// Command netfi regenerates every table and figure of the paper's
// evaluation from the simulated test bed:
//
//	netfi table1       FPGA synthesis results (Table 1)
//	netfi table2       injector latency measurements (Table 2)
//	netfi table4       control-symbol corruption campaign (Table 4)
//	netfi sec431       throughput-collapse narratives (§4.3.1)
//	netfi sec432       packet-type corruption (§4.3.2)
//	netfi sec433       physical-address corruption + Fig. 11 (§4.3.3)
//	netfi sec434       UDP checksum evasion (§4.3.4)
//	netfi passthrough  transparency demonstration (§3.5 / Fig. 8)
//	netfi multirule    multi-target corruption via the rule engine
//	netfi resilience   failure-recovery campaign with outcome triage
//	netfi monitor      monitoring plane: accrual detection + flow export
//	netfi chaos        snapshot/fork chaos sweep: warm one testbed, fork it
//	                   per k-failure scenario, triage every fork
//	netfi fabric       sharded multi-switch fabric: build a Clos from
//	                   -switches/-hosts, run the flood workload across
//	                   -shards parallel event kernels, report throughput
//	netfi all          everything above in order (fabric excluded — its
//	                   shape is set by its own flags, not -scale)
//
// Flags:
//
//	-seed N        simulation seed (default 1)
//	-switches N    fabric switch count (fabric only, default 16)
//	-hosts N       fabric host count (fabric only, default 64)
//	-shards N      fabric shard count (fabric only, default: one per CPU;
//	               output is byte-identical across shard counts)
//	-stats         append coordinator-efficiency stats to the fabric report:
//	               windows, exchanged deliveries, events/window, and
//	               windows per simulated second
//	-json          machine-readable output (resilience, monitor, chaos,
//	               fabric): detection-latency CDFs, per-trial triage, flow
//	               summaries, coordinator stats
//	-scale F       scale experiment durations/rounds toward the paper's full
//	               lengths (default 1.0; e.g. -scale 12 runs Table 2 with
//	               240k ping-pong rounds and §4.3.1 for a full minute)
//	-workers N     worker goroutines for campaign trials (default: one per
//	               CPU; 1 reproduces the serial runner exactly — output is
//	               byte-identical either way)
//	-cpuprofile F  write a CPU profile to F
//	-memprofile F  write a heap profile to F on exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"netfi/internal/campaign"
	"netfi/internal/sim"
	"netfi/internal/synth"
	"netfi/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// expOpts carries the shared experiment knobs.
type expOpts struct {
	seed    int64
	scale   float64
	workers int
	// fabric shape (netfi fabric only)
	switches int
	hosts    int
	shards   int
	stats    bool
}

func run(args []string) int {
	fs := flag.NewFlagSet("netfi", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	scale := fs.Float64("scale", 1.0, "scale experiment length toward the paper's full runs")
	workers := fs.Int("workers", campaign.DefaultWorkers(), "worker goroutines for campaign trials (1 = serial)")
	switches := fs.Int("switches", 16, "fabric switch count (fabric only)")
	hosts := fs.Int("hosts", 64, "fabric host count (fabric only)")
	shards := fs.Int("shards", campaign.DefaultWorkers(), "fabric shard count (fabric only)")
	stats := fs.Bool("stats", false, "print coordinator-efficiency stats after the run (fabric only)")
	jsonOut := fs.Bool("json", false, "machine-readable output (resilience, monitor, chaos, fabric)")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Flags are accepted on either side of the experiment name:
	// `netfi -seed 2 chaos` and `netfi fabric -switches 128` both work.
	rest := fs.Args()
	if len(rest) >= 1 {
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
	}
	if len(rest) < 1 || fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: netfi [-seed N] [-scale F] [-workers N] [-switches N] [-hosts N] [-shards N] [-stats] [-json] [-cpuprofile F] [-memprofile F] <table1|table2|table4|sec431|sec432|sec433|sec434|passthrough|multirule|resilience|monitor|chaos|fabric|all>")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netfi: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "netfi: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netfi: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "netfi: %v\n", err)
			}
		}()
	}

	opts := expOpts{
		seed: *seed, scale: *scale, workers: *workers,
		switches: *switches, hosts: *hosts, shards: *shards,
		stats: *stats,
	}
	cmds := map[string]func(expOpts) string{
		"table1":      table1,
		"table2":      table2,
		"table4":      table4,
		"sec431":      sec431,
		"sec432":      sec432,
		"sec433":      sec433,
		"sec434":      sec434,
		"passthrough": passthrough,
		"multirule":   multirule,
		"resilience":  resilience,
		"monitor":     monitorSection,
		"chaos":       chaosSection,
		"fabric":      fabricSection,
	}
	name := rest[0]
	if *jsonOut {
		out, err := jsonReport(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netfi: %v\n", err)
			return 2
		}
		fmt.Println(out)
		return 0
	}
	if name == "all" {
		order := []string{"table1", "table2", "table4", "sec431", "sec432", "sec433", "sec434", "passthrough", "multirule", "resilience", "monitor", "chaos"}
		// Sections are independent simulations, so `all` fans the sections
		// themselves out over the pool. The inner campaigns then run their
		// trials serially (workers=1) to avoid oversubscribing the CPUs;
		// each section's output is assembled whole, in order, so the
		// combined report is byte-identical to a serial run.
		sectionOpts := opts
		if opts.workers > 1 {
			sectionOpts.workers = 1
		}
		reports := campaign.RunTrials(len(order), opts.workers, func(i int) string {
			return cmds[order[i]](sectionOpts)
		})
		var b strings.Builder
		for i, n := range order {
			fmt.Fprintf(&b, "==== %s ====\n%s\n", n, reports[i])
		}
		fmt.Print(b.String())
		return 0
	}
	cmd, ok := cmds[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "netfi: unknown experiment %q\n", name)
		return 2
	}
	fmt.Print(cmd(opts))
	return 0
}

func table1(expOpts) string {
	return "Table 1: synthesis results of the FPGA code (structural estimate vs paper)\n" +
		synth.Table1()
}

func table2(o expOpts) string {
	rows := campaign.RunTable2(campaign.Table2Options{
		Seed:    o.seed,
		Rounds:  int(20_000 * o.scale),
		Workers: o.workers,
	})
	return "Table 2: latency measurements (UDP ping-pong, with/without injector)\n" +
		campaign.FormatTable2(rows)
}

func table4(o expOpts) string {
	rows := campaign.RunTable4(campaign.Table4Options{
		Seed:     o.seed,
		Duration: sim.Duration(1700 * o.scale * float64(sim.Millisecond)),
		Workers:  o.workers,
	})
	return "Table 4: control symbol corruption campaign\n" +
		campaign.FormatTable4(rows)
}

func sec431(o expOpts) string {
	res := campaign.RunSec431(campaign.Sec431Options{
		Seed:     o.seed,
		Duration: sim.Duration(5 * o.scale * float64(sim.Second)),
		Workers:  o.workers,
	})
	return "Section 4.3.1: throughput under flow-control corruption\n" +
		campaign.FormatSec431(res)
}

func sec432(o expOpts) string {
	return "Section 4.3.2: packet type corruption\n" +
		campaign.FormatSec432(campaign.RunSec432(campaign.Sec432Options{Seed: o.seed, Workers: o.workers}))
}

func sec433(o expOpts) string {
	return "Section 4.3.3: physical address corruption (includes Fig. 11)\n" +
		campaign.FormatSec433(campaign.RunSec433(campaign.Sec433Options{Seed: o.seed, Workers: o.workers}))
}

func sec434(o expOpts) string {
	return "Section 4.3.4: UDP address corruption / checksum evasion\n" +
		campaign.FormatSec434(campaign.RunSec434(campaign.Sec434Options{Seed: o.seed, Workers: o.workers}))
}

func multirule(o expOpts) string {
	res := campaign.RunMultiRule(campaign.MultiRuleOptions{Seed: o.seed})
	ent := synth.RuleEngineEntity(res.DFAStates, res.DFAStates*512, res.RulesArmed)
	est := ent.Estimate()
	return "Multi-target address corruption via the rule engine (one pass, one rule set)\n" +
		campaign.FormatMultiRule(res) +
		fmt.Sprintf("estimated FPGA cost of this rule set: %d gates, %d FGs, %d muxes, %d DFFs\n",
			est.Gates, est.FunctionGenerators, est.Multiplexors, est.DFlipFlops)
}

func resilience(o expOpts) string {
	res := campaign.RunResilience(campaign.ResilienceOptions{
		Seed:    o.seed,
		Trials:  int(14 * o.scale),
		Workers: o.workers,
	})
	return "Resilience campaign: randomized injections, recovery on vs off (same seeds)\n" +
		campaign.FormatResilience(res)
}

// chaosOptions derives the sweep shape from the shared knobs: 1000 forks
// at scale 1 (the k <= 2 combination sweep), cut from one warmed base.
func chaosOptions(o expOpts) campaign.ChaosOptions {
	return campaign.ChaosOptions{
		Seed:    o.seed,
		Forks:   int(1000 * o.scale),
		MaxK:    2,
		Workers: o.workers,
	}
}

func chaosSection(o expOpts) string {
	res := campaign.RunChaos(chaosOptions(o))
	return "Chaos sweep: warm-once testbed forked per k-failure scenario\n" +
		campaign.FormatChaos(res)
}

// fabricSection runs one sharded-fabric flood to quiescence. The topology
// shape comes from the fabric flags, not -scale: a fabric's cost grows with
// switches*hosts, which the flags express directly.
func fabricSection(o expOpts) string {
	res, err := campaign.RunFabric(campaign.FabricConfig{
		Topo: topo.Config{
			Switches: o.switches,
			Hosts:    o.hosts,
			Shards:   o.shards,
			Seed:     o.seed,
		},
	})
	if err != nil {
		return fmt.Sprintf("fabric: %v\n", err)
	}
	out := "Sharded fabric: parallel per-core event kernels, adaptive conservative lookahead\n" +
		campaign.FormatFabric(res)
	if o.stats {
		out += campaign.FormatFabricStats(res)
	}
	return out
}

func monitorSection(o expOpts) string {
	res := campaign.RunMonitor(campaign.MonitorOptions{Seed: o.seed})
	return "Monitoring plane: accrual failure detection, flow export, anomaly triage\n" +
		campaign.FormatMonitor(res)
}

func passthrough(o expOpts) string {
	res := campaign.RunPassThrough(campaign.PassThroughOptions{
		Seed:     o.seed,
		Duration: sim.Duration(2 * o.scale * float64(sim.Second)),
	})
	return "Section 3.5: pass-through transparency\n" +
		campaign.FormatPassThrough(res)
}
