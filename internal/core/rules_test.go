package core

import (
	"bytes"
	"strings"
	"testing"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/rules"
)

// oneStepRule builds a single-step full-mask data-byte rule.
func oneStepRule(id int, b byte, act rules.Action) rules.Rule {
	return rules.Rule{
		ID:     id,
		Mode:   rules.ModeOn,
		Action: act,
		Steps:  []rules.Step{{Sym: 0x100 | uint16(b), Mask: rules.SymbolMask}},
	}
}

func TestEngineRuleToggle(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	r := oneStepRule(1, 0x55, rules.ActionToggle)
	r.CorruptData = []uint16{0x0F}
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	out := bytesOf(runThrough(e, dataChars([]byte{0x11, 0x55, 0x22, 0x55})))
	want := []byte{0x11, 0x5A, 0x22, 0x5A}
	if !bytes.Equal(out, want) {
		t.Errorf("out % X, want % X", out, want)
	}
	if m, f, ok := e.RuleCounters(1); !ok || m != 2 || f != 2 {
		t.Errorf("counters = %d/%d ok=%v, want 2/2 true", m, f, ok)
	}
	if _, _, inj := e.Stats(); inj != 2 {
		t.Errorf("injections = %d, want 2", inj)
	}
}

func TestEngineRuleReplacePriority(t *testing.T) {
	// Two replace rules fire on the same character; the higher-priority
	// one's byte must land last and win.
	e := NewEngine(DefaultSlackChars)
	lo := oneStepRule(1, 0x55, rules.ActionReplace)
	lo.Priority = 1
	lo.CorruptData = []uint16{0x1AA}
	lo.CorruptMask = []uint16{uint16(MaskData)}
	hi := oneStepRule(2, 0x55, rules.ActionReplace)
	hi.Priority = 9
	hi.CorruptData = []uint16{0x1BB}
	hi.CorruptMask = []uint16{uint16(MaskData)}
	for _, r := range []rules.Rule{hi, lo} { // install order must not matter
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	out := bytesOf(runThrough(e, dataChars([]byte{0x55})))
	if !bytes.Equal(out, []byte{0xBB}) {
		t.Errorf("out % X, want BB (priority 9 wins)", out)
	}
}

func TestEngineRuleDrop(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	r := oneStepRule(1, 0x55, rules.ActionDrop)
	r.DropCount = 2 // the matching character and its predecessor
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	out := bytesOf(runThrough(e, dataChars([]byte{0x11, 0x22, 0x55, 0x33})))
	want := []byte{0x11, 0x33}
	if !bytes.Equal(out, want) {
		t.Errorf("out % X, want % X", out, want)
	}
	if d := e.DroppedChars(); d != 2 {
		t.Errorf("DroppedChars = %d, want 2", d)
	}
}

func TestEngineRuleGapSequence(t *testing.T) {
	// A0 then B0 within two characters, replacing B0.
	e := NewEngine(DefaultSlackChars)
	r := rules.Rule{
		ID: 1, Mode: rules.ModeOn, Action: rules.ActionReplace,
		Steps: []rules.Step{
			{Sym: 0x1A0, Mask: rules.SymbolMask},
			{Sym: 0x1B0, Mask: rules.SymbolMask, Gap: 2},
		},
		CorruptData: []uint16{0x1EE},
		CorruptMask: []uint16{uint16(MaskData)},
	}
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	out := bytesOf(runThrough(e, dataChars([]byte{
		0xA0, 0x01, 0xB0, // gap 1: fires, B0 -> EE
		0xA0, 0x01, 0x02, 0x03, 0xB0, // gap 3: silent
	})))
	want := []byte{0xA0, 0x01, 0xEE, 0xA0, 0x01, 0x02, 0x03, 0xB0}
	if !bytes.Equal(out, want) {
		t.Errorf("out % X, want % X", out, want)
	}
}

func TestEngineRuleMatchesLegacyConfig(t *testing.T) {
	// The legacy register file, expressed as a one-rule set, must corrupt
	// the stream identically once the window has shifted past idle fill.
	cfg := Config{
		Match: MatchOn,
		CompareData: [WindowSize]phy.Character{
			phy.DataChar(0x18), phy.DataChar(0x19), 0, 0,
		},
		CompareMask: [WindowSize]CharMask{MaskFull, MaskFull, MaskNone, MaskNone},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0x40, 0, 0},
	}
	stream := dataChars([]byte{
		0x01, 0x02, 0x03, 0x04, 0x18, 0x19, 0x05, 0x06, 0x18, 0x19, 0x07, 0x08,
	})

	legacy := NewEngine(DefaultSlackChars)
	legacy.Configure(cfg)
	wantOut := runThrough(legacy, stream)

	ruled := NewEngine(DefaultSlackChars)
	if err := ruled.AddRule(RuleFromConfig(1, cfg)); err != nil {
		t.Fatal(err)
	}
	gotOut := runThrough(ruled, stream)

	if !bytes.Equal(bytesOf(gotOut), bytesOf(wantOut)) {
		t.Errorf("rule path % X\nlegacy    % X", bytesOf(gotOut), bytesOf(wantOut))
	}
	_, legacyMatches, _ := legacy.Stats()
	m, _, _ := ruled.RuleCounters(1)
	if m != legacyMatches {
		t.Errorf("rule matches %d, legacy matches %d", m, legacyMatches)
	}
}

func TestEngineRuleDropWithCRCRecompute(t *testing.T) {
	// Dropping a payload byte must mark the packet corrupted so the
	// recomputed CRC covers the deletion.
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{RecomputeCRC: true})
	r := oneStepRule(1, 0x55, rules.ActionDrop)
	r.DropCount = 1
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	in := []phy.Character{
		phy.DataChar(0x01), phy.DataChar(0x55), phy.DataChar(0x02),
		phy.DataChar(0xAA), // stale CRC position
		phy.ControlChar(0x0C),
	}
	out := runThrough(e, in)
	if len(out) != 4 {
		t.Fatalf("out %d chars, want 4 (one dropped)", len(out))
	}
	want := bitstream.CRC8Update(bitstream.CRC8Update(0, 0x01), 0x02)
	if got := out[2].Byte(); got != want {
		t.Errorf("trailing CRC %02X, want %02X (CRC of the stream as retransmitted)", got, want)
	}
}

func TestEngineRuleManagement(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	if err := e.AddRule(oneStepRule(1, 0x10, rules.ActionCapture)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(oneStepRule(2, 0x20, rules.ActionCapture)); err != nil {
		t.Fatal(err)
	}
	// Replacing rule 1 keeps its position and the set size.
	repl := oneStepRule(1, 0x30, rules.ActionCapture)
	if err := e.AddRule(repl); err != nil {
		t.Fatal(err)
	}
	if rs := e.Rules(); len(rs) != 2 || rs[0].ID != 1 || rs[0].Steps[0].Sym != 0x130 {
		t.Fatalf("rules after replace: %+v", rs)
	}
	if !e.DeleteRule(2) || e.DeleteRule(2) {
		t.Error("DeleteRule existence reporting broken")
	}
	if _, _, ok := e.RuleCounters(2); ok {
		t.Error("deleted rule still has counters")
	}
	e.ClearRules()
	if e.RuleProgram() != nil || len(e.Rules()) != 0 {
		t.Error("ClearRules left state behind")
	}
	// Oversized vectors are rejected before reaching the compiler.
	bad := oneStepRule(3, 0x40, rules.ActionToggle)
	bad.CorruptData = make([]uint16, WindowSize+1)
	if err := e.AddRule(bad); err == nil {
		t.Error("AddRule accepted a vector longer than the window")
	}
	bad = oneStepRule(4, 0x40, rules.ActionDrop)
	bad.DropCount = WindowSize + 1
	if err := e.AddRule(bad); err == nil {
		t.Error("AddRule accepted a drop count longer than the window")
	}
}

func TestRuleCommands(t *testing.T) {
	dev, dec := newTestDecoder(t)

	for _, cmd := range []string{
		"RULE ADD 1 PRIO 2 MODE ONCE ACT TOGGLE PAT 55 VEC 0F",
		"RULE ADD 2 ACT REPLACE PAT a0 g2 b0 VEC x77",
		"RULE ADD 3 MODE AFTER:1 ACT DROP:2 PAT c0c",
		"RULE ADD 4 PAT -- 23 28",
	} {
		if resp := dec.Exec(cmd); resp != "OK" {
			t.Fatalf("%q -> %q", cmd, resp)
		}
	}
	list := dec.Exec("RULE LIST")
	if !strings.Contains(list, "count=4") || !strings.Contains(list, "mode=dfa") {
		t.Errorf("RULE LIST = %q", list)
	}
	for _, want := range []string{
		"RULE[1] prio=2 mode=ONCE act=TOGGLE steps=1",
		"RULE[2] prio=0 mode=ON act=REPLACE steps=2",
		"RULE[3] prio=0 mode=AFTER act=DROP steps=1",
		"RULE[4] prio=0 mode=ON act=CAP steps=3",
	} {
		if !strings.Contains(list, want) {
			t.Errorf("RULE LIST missing %q in %q", want, list)
		}
	}
	if stat := dec.Exec("STAT"); !strings.Contains(stat, "rules=4") {
		t.Errorf("STAT = %q", stat)
	}
	if resp := dec.Exec("RULE DEL 3"); resp != "OK" {
		t.Errorf("RULE DEL -> %q", resp)
	}
	if resp := dec.Exec("RULE DEL 3"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("deleting a missing rule -> %q", resp)
	}
	if resp := dec.Exec("RESET"); resp != "OK" {
		t.Errorf("RESET -> %q", resp)
	}
	if list := dec.Exec("RULE LIST"); !strings.Contains(list, "count=0") {
		t.Errorf("RESET did not clear rules: %q", list)
	}

	// The armed rules act on the datapath: toggle via the serial path.
	if resp := dec.Exec("RULE ADD 7 ACT TOGGLE PAT 55 VEC 0F"); resp != "OK" {
		t.Fatalf("re-arm -> %q", resp)
	}
	eng := dev.Engine(dec.Direction())
	out := bytesOf(runThrough(eng, dataChars([]byte{0x55})))
	if !bytes.Equal(out, []byte{0x5A}) {
		t.Errorf("serial-armed toggle: out % X, want 5A", out)
	}
}
