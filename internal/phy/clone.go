package phy

import (
	"fmt"

	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). Links are pure state plus one
// cross-reference — the receiver — which resolves in the mapper's deferred
// pass so wiring order never matters. A pending burst delivery clones by
// copying its characters into a fresh pooled buffer: the old world will
// deliver (and possibly release) the original, so the fork must not alias
// it. Burst and delivery pools are process-global and mutex-guarded, so
// both worlds share them safely.

// CloneSimArg implements sim.ArgClonable for pending burst deliveries.
func (d *delivery) CloneSimArg(m *sim.Mapper) any {
	dst, ok := m.Lookup(d.dst)
	if !ok {
		panic(fmt.Sprintf("phy: fork: delivery to uncloned receiver %T", d.dst))
	}
	chars := GetBurst(len(d.chars))
	copy(chars, d.chars)
	return &delivery{dst: dst.(Receiver), chars: chars}
}

// Clone forks the link. The receiver rebinds at Mapper.Finish, so the
// object it points at may be cloned before or after the link itself.
// Channelized links (a DeliverySink installed) cannot fork: the sink closes
// over a shard outbox the mapper has no way to re-point.
func (l *Link) Clone(m *sim.Mapper) *Link {
	if l.sink != nil {
		panic(fmt.Sprintf("phy: fork: link %s has a delivery sink; channelized fabrics do not fork", l.name))
	}
	l2 := &Link{
		k:            m.Kernel(),
		name:         l.name,
		charPeriod:   l.charPeriod,
		propDelay:    l.propDelay,
		busyUntil:    l.busyUntil,
		severed:      l.severed,
		chars:        l.chars,
		bursts:       l.bursts,
		severedChars: l.severedChars,
	}
	m.Put(l, l2)
	m.Defer(func() error {
		dst, ok := m.Lookup(l.dst)
		if !ok {
			return fmt.Errorf("phy: fork: link %s delivers to uncloned receiver %T", l.name, l.dst)
		}
		l2.dst = dst.(Receiver)
		return nil
	})
	return l2
}

// Clone forks both directions of the cable.
func (c *Cable) Clone(m *sim.Mapper) *Cable {
	c2 := &Cable{
		LeftToRight: c.LeftToRight.Clone(m),
		RightToLeft: c.RightToLeft.Clone(m),
	}
	m.Put(c, c2)
	return c2
}
