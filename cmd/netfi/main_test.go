package main

import "testing"

func TestRunUsageErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Errorf("no args -> %d, want 2", code)
	}
	if code := run([]string{"bogus-experiment"}); code != 2 {
		t.Errorf("unknown experiment -> %d, want 2", code)
	}
	if code := run([]string{"-not-a-flag"}); code != 2 {
		t.Errorf("bad flag -> %d, want 2", code)
	}
}

func TestRunJSON(t *testing.T) {
	if code := run([]string{"-json", "monitor"}); code != 0 {
		t.Errorf("-json monitor -> %d, want 0", code)
	}
	// Sections without a machine-readable form are a usage error.
	if code := run([]string{"-json", "table1"}); code != 2 {
		t.Errorf("-json table1 -> %d, want 2", code)
	}
}

func TestRunTable1(t *testing.T) {
	if code := run([]string{"table1"}); code != 0 {
		t.Errorf("table1 -> %d, want 0", code)
	}
}

func TestRunSec434(t *testing.T) {
	if code := run([]string{"-seed", "41", "sec434"}); code != 0 {
		t.Errorf("sec434 -> %d, want 0", code)
	}
}
