package core

import (
	"testing"

	"netfi/internal/phy"
	"netfi/internal/rules"
	"netfi/internal/sim"
)

// The injector's per-symbol path — push, compare, inject, pop — must not
// allocate: it is clocked once per character for every character that
// crosses the tap, in both directions.
func TestEngineProcessZeroAlloc(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	cfg := Config{Match: MatchOn, Corrupt: CorruptToggle}
	cfg.CompareData[WindowSize-1] = phy.DataChar(0x7F)
	cfg.CompareMask[WindowSize-1] = MaskFull
	cfg.CorruptData[WindowSize-1] = phy.Character(0x01)
	e.Configure(cfg)

	// Sanity: the compare/inject machinery is live (an injection event may
	// allocate — it records a capture — so it stays out of the hot loop).
	_ = e.Process([]phy.Character{phy.DataChar(0x7F)})
	if _, matches, injections := e.Stats(); matches != 1 || injections != 1 {
		t.Fatalf("compare engine inactive: matches=%d injections=%d", matches, injections)
	}

	// Steady state: every character is pushed, compared against the armed
	// pattern, and popped — with no trigger and no allocation.
	burst := make([]phy.Character, 64)
	for i := range burst {
		burst[i] = phy.DataChar(byte(0x20 + i))
	}
	for i := 0; i < 50; i++ {
		_ = e.Process(burst) // warm the scratch buffer and drain the capture
	}
	if avg := testing.AllocsPerRun(200, func() { _ = e.Process(burst) }); avg != 0 {
		t.Errorf("Process allocates %.2f objects per 64-char burst, want 0", avg)
	}
	if chars, _, _ := e.Stats(); chars == 0 {
		t.Fatal("datapath saw no characters")
	}
}

// An armed rule program must not reintroduce allocations, even while every
// burst matches, injects, and records a capture: match bookkeeping, the
// injection, and the capture context all ride storage that is reused once
// the bounded event store has filled (drop-new keeps counting injections
// without growing it).
func TestEngineArmedZeroAlloc(t *testing.T) {
	rs := []rules.Rule{{
		ID:     1,
		Mode:   rules.ModeOn,
		Action: rules.ActionToggle,
		Steps: []rules.Step{
			{Sym: 0x120, Mask: rules.SymbolMask},
			{Sym: 0x121, Mask: rules.SymbolMask},
		},
		CorruptData: []uint16{0, 0x01},
	}}
	prog, err := rules.Compile(rs, rules.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"per-symbol", "batch"} {
		t.Run(path, func(t *testing.T) {
			e := NewEngine(DefaultSlackChars)
			e.SetRuleProgram(prog)
			burst := phy.DataChars(make([]byte, 1024))
			burst[512] = phy.DataChar(0x20)
			burst[513] = phy.DataChar(0x21)
			step := func() {
				if path == "batch" {
					e.ProcessBatch(burst)
				} else {
					e.Process(burst)
				}
			}
			// Saturate the capture store and warm every pooled buffer: each
			// burst fires the rule once, so DefaultCaptureEvents bursts fill it.
			for i := 0; i < DefaultCaptureEvents+8; i++ {
				step()
			}
			if _, matches, injections := e.Stats(); matches == 0 || injections == 0 {
				t.Fatalf("armed path inactive: matches=%d injections=%d", matches, injections)
			}
			if avg := testing.AllocsPerRun(200, step); avg != 0 {
				t.Errorf("armed %s path allocates %.2f objects per burst, want 0", path, avg)
			}
			if e.Capture().DroppedEvents() == 0 {
				t.Error("event store never saturated; test is not exercising drop-new reuse")
			}
			if got := len(e.Capture().Events()); got != DefaultCaptureEvents {
				t.Errorf("stored events = %d, want the %d-event bound", got, DefaultCaptureEvents)
			}
		})
	}
}

// The full device path — link delivery into the port, idle fill, engine
// clocking, pooled batch deliveries downstream — must also be allocation-free
// in steady state (amortized: the entries bookkeeping reuses its backing).
func TestDevicePathSteadyStateAllocs(t *testing.T) {
	k := sim.NewKernel(1)
	dev := NewDevice(k, DeviceConfig{Name: "alloc", IdleChar: phy.ControlChar(0x07)})
	sink := phy.ReceiverFunc(func(chars []phy.Character) { phy.ReleaseBurst(chars) })
	cfg := phy.LinkConfig{Name: "in", CharPeriod: 12_500 * sim.Picosecond, PropDelay: 5 * sim.Nanosecond}
	link := phy.NewLink(k, cfg, sink)
	dev.InsertDirection(LeftToRight, link)

	burst := make([]phy.Character, 32)
	for i := range burst {
		burst[i] = phy.DataChar(byte(0x20 + i))
	}
	cycle := func() {
		link.Send(burst)
		k.Run()
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 0.1 {
		t.Errorf("device path allocates %.2f objects/op in steady state, want ~0", avg)
	}
}
