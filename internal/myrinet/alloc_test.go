package myrinet

import (
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// nullSink absorbs the controller's transmissions and recycles the bursts.
type nullSink struct{}

func (nullSink) Receive(chars []phy.Character) { phy.ReleaseBurst(chars) }

// allocTap is a minimal monitoring tap: it looks at every character without
// retaining the slice, the contract real taps follow.
type allocTap struct {
	chars  uint64
	bursts uint64
}

func (t *allocTap) ObserveChars(_ sim.Time, chars []phy.Character) {
	t.bursts++
	t.chars += uint64(len(chars))
}

func receiveCycleController(k *sim.Kernel) *LinkController {
	out := phy.NewLink(k, phy.LinkConfig{
		Name:       "alloc.out",
		CharPeriod: 12_500 * sim.Picosecond,
		PropDelay:  5 * sim.Nanosecond,
	}, nullSink{})
	return NewLinkController(k, LinkControllerConfig{
		Name:     "alloc.lc",
		Out:      out,
		Counters: NewCounters(),
	})
}

// runReceiveCycle delivers one pooled data burst to lc and drains the slack
// so watermarks never trip.
func runReceiveCycle(k *sim.Kernel, lc *LinkController) {
	burst := phy.GetBurst(32)
	for i := range burst {
		burst[i] = phy.DataChar(0x55)
	}
	lc.Receive(burst) // Receive releases the burst
	lc.Discard(lc.Buffered())
	k.Run()
}

// The satellite guard for the monitoring plane: a controller WITHOUT a tap
// must stay exactly as allocation-free as before the tap hook existed —
// monitoring off costs one nil check and nothing else.
func TestReceiveNoTapZeroAlloc(t *testing.T) {
	k := sim.NewKernel(1)
	lc := receiveCycleController(k)
	for i := 0; i < 100; i++ {
		runReceiveCycle(k, lc) // warm pools
	}
	if avg := testing.AllocsPerRun(200, func() { runReceiveCycle(k, lc) }); avg != 0 {
		t.Errorf("untapped receive cycle allocates %.2f objects/op, want 0", avg)
	}
}

// With a (well-behaved) tap attached the cycle must still be
// allocation-free: taps observe batches in place.
func TestReceiveTappedZeroAlloc(t *testing.T) {
	k := sim.NewKernel(1)
	lc := receiveCycleController(k)
	tap := &allocTap{}
	lc.SetTap(tap)
	for i := 0; i < 100; i++ {
		runReceiveCycle(k, lc)
	}
	if avg := testing.AllocsPerRun(200, func() { runReceiveCycle(k, lc) }); avg != 0 {
		t.Errorf("tapped receive cycle allocates %.2f objects/op, want 0", avg)
	}
	if tap.bursts == 0 || tap.chars == 0 {
		t.Fatal("tap observed nothing")
	}
}
