package myrinet

import (
	"errors"
	"fmt"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
)

// MAC is a 48-bit Ethernet-style address identifying a Myrinet port
// (§4.3.3: "48-bit Ethernet addresses corresponding to individual Myrinet
// ports").
type MAC [6]byte

// String formats the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// NodeID is the 64-bit unique address of an MCP. The MCP with the highest
// NodeID on a network is responsible for mapping it (§4.1).
type NodeID uint64

// Packet types carried in the 4-byte type field of every Myrinet packet.
// The experiments of §4.3.2 corrupt the 16-bit designators 0x0004 (data)
// and 0x0005 (mapping); the field is 4 bytes on the wire with the high two
// bytes zero.
const (
	TypeData    uint16 = 0x0004
	TypeMapping uint16 = 0x0005
)

// Route byte semantics (§4.3.2, "Source route corruption"): a byte with the
// MSB set routes the packet through a switch (low bits select the output
// port); the final byte has the MSB clear and is consumed by the destination
// interface. A destination interface receiving a leading byte with the MSB
// set must consume the packet and handle it as an error.
const (
	// RouteSwitchFlag marks a route byte addressed to a switch.
	RouteSwitchFlag byte = 0x80
	// RoutePortMask extracts the output port from a switch route byte.
	RoutePortMask byte = 0x7F
	// RouteFinal is the conventional final route byte consumed by the
	// destination interface (MSB clear).
	RouteFinal byte = 0x00
)

// SwitchHop builds the route byte selecting output port p at a switch.
func SwitchHop(p int) byte { return RouteSwitchFlag | byte(p)&RoutePortMask }

// Packet is the in-memory form of a Myrinet packet: an arbitrarily long
// source route, a 4-byte packet type, an arbitrarily long payload, and a
// single trailing CRC-8 byte (Fig. 6). The CRC is not stored here; it is
// computed on encode and verified on decode.
type Packet struct {
	// Route holds the remaining source-route bytes. Each switch consumes
	// the first byte and recomputes the trailing CRC.
	Route []byte
	// Type is the 16-bit packet-type designator (wire format pads it to
	// 4 bytes with leading zeros).
	Type uint16
	// TypeHigh carries the two high-order bytes of the 4-byte type field,
	// zero in every packet the paper describes; kept so that corruption of
	// those bytes survives a decode/encode round trip.
	TypeHigh uint16
	// Payload is the packet body.
	Payload []byte
}

// Bytes returns the packet's wire bytes excluding the trailing CRC.
func (p *Packet) Bytes() []byte {
	out := make([]byte, 0, len(p.Route)+4+len(p.Payload))
	out = append(out, p.Route...)
	out = append(out, byte(p.TypeHigh>>8), byte(p.TypeHigh), byte(p.Type>>8), byte(p.Type))
	out = append(out, p.Payload...)
	return out
}

// Encode returns the complete wire image: route, type, payload, CRC-8.
func (p *Packet) Encode() []byte {
	body := p.Bytes()
	return append(body, bitstream.CRC8(body))
}

// EncodeChars returns the packet as link characters followed by the
// packet-terminating GAP control symbol, ready for transmission (Fig. 8).
func (p *Packet) EncodeChars() []phy.Character {
	wire := p.Encode()
	chars := make([]phy.Character, 0, len(wire)+1)
	for _, b := range wire {
		chars = append(chars, phy.DataChar(b))
	}
	return append(chars, charGap)
}

// Errors returned by Decode.
var (
	ErrTooShort = errors.New("myrinet: packet shorter than type+CRC")
	ErrBadCRC   = errors.New("myrinet: CRC-8 mismatch")
)

// DecodePacket parses wire bytes (route+type+payload+CRC) as seen by a
// destination interface, i.e. with routeLen bytes of source route remaining.
// It verifies the trailing CRC-8 and returns ErrBadCRC on mismatch; the
// packet is still returned for inspection by monitors.
func DecodePacket(wire []byte, routeLen int) (*Packet, error) {
	if len(wire) < routeLen+5 { // route + 4-byte type + CRC
		return nil, ErrTooShort
	}
	body := wire[:len(wire)-1]
	crc := wire[len(wire)-1]
	p := &Packet{
		Route:    append([]byte(nil), body[:routeLen]...),
		TypeHigh: uint16(body[routeLen])<<8 | uint16(body[routeLen+1]),
		Type:     uint16(body[routeLen+2])<<8 | uint16(body[routeLen+3]),
		Payload:  append([]byte(nil), body[routeLen+4:]...),
	}
	if bitstream.CRC8(body) != crc {
		return p, ErrBadCRC
	}
	return p, nil
}

// RouteTo builds the source route for a path: one switch hop byte per entry
// in ports, then the final byte consumed by the destination interface.
func RouteTo(ports ...int) []byte {
	r := make([]byte, 0, len(ports)+1)
	for _, p := range ports {
		r = append(r, SwitchHop(p))
	}
	return append(r, RouteFinal)
}
