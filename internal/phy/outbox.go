package phy

import (
	"slices"

	"netfi/internal/sim"
)

// Cross-shard delivery channels. A sharded fabric replaces every cable's
// direct kernel scheduling with a ChannelEnd sink: the sending shard's link
// computes the arrival time as usual, but the burst is buffered in the
// sender's Outbox instead of entering a kernel. At each barrier the
// coordinator drains all outboxes with ExchangeAll, which injects every
// buffered delivery into its destination kernel in one global deterministic
// order — sorted by (arrival, link rank, per-link sequence), a total order
// because (rank, seq) is unique. The per-destination injection order is
// therefore a pure function of the traffic, not of the partitioning, which
// is what makes an N-shard run byte-identical to a 1-shard run.

// DeliverySink receives a link's computed deliveries in place of the local
// kernel. Implementations buffer them for a later exchange.
type DeliverySink interface {
	Deliver(arrival sim.Time, dst Receiver, chars []Character)
}

// Delivery is one buffered cross-shard burst.
type Delivery struct {
	At    sim.Time
	Dst   Receiver
	Chars []Character
	Rank  int    // the sending link's global rank (unique per link)
	Seq   uint64 // per-link send sequence; (Rank, Seq) is unique
	K     *sim.Kernel
}

// Outbox buffers deliveries originating from one shard between barriers.
// Only that shard's goroutine appends to it during a window; the barrier
// handoff publishes it to the coordinator.
type Outbox struct {
	pending []Delivery
}

// Len reports the number of buffered deliveries.
func (o *Outbox) Len() int { return len(o.pending) }

// ChannelEnd is the DeliverySink for one direction of a channelized cable.
// It stamps each delivery with the link's rank and a monotone sequence and
// appends it to the sending shard's outbox, bound for the receiving shard's
// kernel.
type ChannelEnd struct {
	out  *Outbox
	dstK *sim.Kernel
	rank int
	seq  uint64
}

// NewChannelEnd returns a sink that buffers into out, injecting into dstK at
// exchange time. Rank must be unique across all channel ends of a fabric
// and assigned deterministically from topology alone.
func NewChannelEnd(out *Outbox, dstK *sim.Kernel, rank int) *ChannelEnd {
	return &ChannelEnd{out: out, dstK: dstK, rank: rank}
}

// Deliver implements DeliverySink.
func (c *ChannelEnd) Deliver(arrival sim.Time, dst Receiver, chars []Character) {
	c.out.pending = append(c.out.pending, Delivery{
		At: arrival, Dst: dst, Chars: chars, Rank: c.rank, Seq: c.seq, K: c.dstK,
	})
	c.seq++
}

// ExchangeAll drains every outbox, injecting all buffered deliveries into
// their destination kernels in global (arrival, rank, seq) order, and
// reports how many deliveries moved. It must run at a barrier, with every
// shard quiescent, and every delivery's arrival must be at or after its
// destination kernel's clock (the conservative-lookahead window guarantees
// this; the kernel panics otherwise).
func ExchangeAll(boxes []*Outbox, scratch *[]Delivery) int {
	all := (*scratch)[:0]
	for _, b := range boxes {
		all = append(all, b.pending...)
		b.pending = b.pending[:0]
	}
	if len(all) > 1 {
		slices.SortFunc(all, func(a, b Delivery) int {
			switch {
			case a.At != b.At:
				if a.At < b.At {
					return -1
				}
				return 1
			case a.Rank != b.Rank:
				return a.Rank - b.Rank
			case a.Seq < b.Seq:
				return -1
			default:
				return 1
			}
		})
	}
	for i := range all {
		d := &all[i]
		ScheduleReceive(d.K, d.At, d.Dst, d.Chars)
		d.Dst, d.Chars, d.K = nil, nil, nil
	}
	n := len(all)
	*scratch = all[:0]
	return n
}
