package core

import (
	"fmt"

	"netfi/internal/phy"
	"netfi/internal/rules"
	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). The injector's cloning rules:
//
//   - Compiled rule programs are immutable after Compile and are shared
//     across forks; only the Executor's run state copies.
//   - The injection hook (SetInjectionHook) is monitoring-owned: it is NOT
//     cloned, and a campaign that wants injection timestamps in the fork
//     re-registers it post-fork.
//   - A device port's downstream receiver resolves in the deferred pass —
//     it is whatever the cable delivered to before the splice, cloned by
//     the myrinet layer.

// Clone copies the capture ring: pre-trigger window, in-progress capture,
// and completed events.
func (r *CaptureRing) Clone() *CaptureRing {
	r2 := &CaptureRing{}
	*r2 = *r
	r2.pre = append([]phy.Character(nil), r.pre...)
	r2.snapshot = append([]phy.Character(nil), r.snapshot...)
	if len(r.events) > 0 {
		r2.events = make([]Capture, len(r.events))
		for i, ev := range r.events {
			r2.events[i] = Capture{
				Context: append([]phy.Character(nil), ev.Context...),
				PreLen:  ev.PreLen,
			}
		}
	} else {
		r2.events = nil
	}
	return r2
}

// Clone copies the pass-through packet monitor.
func (s *PacketStats) Clone() *PacketStats {
	s2 := &PacketStats{
		inPacket:       s.inPacket,
		buf:            append([]byte(nil), s.buf...),
		packets:        s.packets,
		controlPackets: s.controlPackets,
		pairs:          make(map[pairKey]uint64, len(s.pairs)),
	}
	for k, v := range s.pairs {
		s2.pairs[k] = v
	}
	return s2
}

// Clone forks one direction's engine: FIFO contents, compare register,
// rule-engine run state, CRC recompute state, batch plan, and statistics.
func (e *Engine) Clone(m *sim.Mapper) *Engine {
	e2 := &Engine{}
	*e2 = *e // cfg, geometry, window, flags, plan, counters
	e2.fifo = append([]fifoEntry(nil), e.fifo...)
	e2.ruleList = append([]rules.Rule(nil), e.ruleList...)
	if e.ruleExec != nil {
		e2.ruleExec = e.ruleExec.Clone()
	}
	e2.capture = e.capture.Clone()
	e2.procOut = nil
	e2.flushOut = nil
	e2.onInject = nil // monitoring hook: re-register post-fork
	m.Put(e, e2)
	return e2
}

// Clone forks the device: both engines, both pass-through monitors, and both
// splice ports with their constant-delay release state.
func (d *Device) Clone(m *sim.Mapper) *Device {
	d2 := &Device{k: m.Kernel(), cfg: d.cfg, inserted: d.inserted}
	m.Put(d, d2)
	for dir := 0; dir < 2; dir++ {
		d2.engines[dir] = d.engines[dir].Clone(m)
		d2.stats[dir] = d.stats[dir].Clone()
		p := d.ports[dir]
		p2 := &devicePort{
			dev:        d2,
			dir:        p.dir,
			lastEnd:    p.lastEnd,
			entries:    append([]sim.Time(nil), p.entries...),
			flushArmed: p.flushArmed,
			flushEvent: m.MapEventID(p.flushEvent),
		}
		m.Put(p, p2)
		d2.ports[dir] = p2
		if p.downstream != nil {
			p, p2 := p, p2
			m.Defer(func() error {
				v, ok := m.Lookup(p.downstream)
				if !ok {
					return fmt.Errorf("core: fork: device %s %v downstream %T not cloned", d.cfg.Name, p.dir, p.downstream)
				}
				p2.downstream = v.(phy.Receiver)
				return nil
			})
		}
	}
	return d2
}

// Clone forks the command decoder. The output sink is wiring-owned (the
// console rebinds it); the driven device resolves deferred.
func (c *CommandDecoder) Clone(m *sim.Mapper) *CommandDecoder {
	c2 := &CommandDecoder{
		dir:      c.dir,
		line:     append([]byte(nil), c.line...),
		commands: c.commands,
		errors:   c.errors,
	}
	m.Put(c, c2)
	m.Defer(func() error {
		v, ok := m.Lookup(c.dev)
		if !ok {
			return fmt.Errorf("core: fork: command decoder drives uncloned device %s", c.dev.Name())
		}
		c2.dev = v.(*Device)
		return nil
	})
	return c2
}
