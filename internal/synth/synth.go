// Package synth estimates FPGA resource consumption for the injector's
// functional entities, reproducing the accounting of the paper's Table 1
// (synthesis results for the Virtex target). Each entity is described by a
// structural inventory — registers, one-hot FSMs, counters, combinational
// logic terms, datapath muxes, register-implemented FIFO storage — and a
// small set of global mapping rules converts the inventory into the
// table's four columns (gates, function generators, multiplexors, D
// flip-flops).
//
// The mapping rules model mid-1990s 4-LUT synthesis:
//
//   - every register, FSM state (one-hot), and counter bit costs one D
//     flip-flop;
//   - an n-input, m-output logic term costs m*ceil((n-1)/3) function
//     generators (a 4-LUT absorbs a 3-level gate tree per output);
//   - counters additionally cost one function generator per bit (carry
//     chain);
//   - a w-bit k-to-1 mux costs w*(k-1) mux primitives;
//   - the netlist gate count tracks the function-generator count at the
//     packing ratio observed in the thesis netlists (~0.96).
//
// The inventories mirror the actual architecture in internal/core (window
// width, config register file, FIFO depth), so a change there — say a wider
// compare window — moves the estimate the way it would move a re-synthesis.
// EXPERIMENTS.md records estimate-vs-paper per cell.
package synth

import (
	"fmt"
	"math"
	"strings"
)

// Resources is one row of Table 1.
type Resources struct {
	Gates              int
	FunctionGenerators int
	Multiplexors       int
	DFlipFlops         int
}

// Add accumulates r2 into r.
func (r *Resources) Add(r2 Resources) {
	r.Gates += r2.Gates
	r.FunctionGenerators += r2.FunctionGenerators
	r.Multiplexors += r2.Multiplexors
	r.DFlipFlops += r2.DFlipFlops
}

// LogicTerm is a combinational block: Outputs functions of Inputs inputs.
type LogicTerm struct {
	Inputs  int
	Outputs int
}

// Mux is a datapath multiplexor: a Width-bit K-to-1 selector.
type Mux struct {
	Width int
	K     int
}

// Entity is a structural inventory of one VHDL entity.
type Entity struct {
	// Name matches the paper's entity naming.
	Name string
	// RegBits counts plain register bits.
	RegBits int
	// FSMStates counts one-hot state bits across the entity's FSMs.
	FSMStates int
	// CounterBits counts counter register bits (flip-flop + carry LUT).
	CounterBits int
	// Logic lists combinational terms.
	Logic []LogicTerm
	// Muxes lists datapath multiplexors.
	Muxes []Mux
}

// gatePackingRatio is the netlist gates-per-function-generator ratio
// observed across the thesis synthesis reports.
const gatePackingRatio = 0.96

// Estimate applies the mapping rules to an entity.
func (e *Entity) Estimate() Resources {
	var r Resources
	r.DFlipFlops = e.RegBits + e.FSMStates + e.CounterBits
	fg := e.CounterBits
	for _, t := range e.Logic {
		depth := (t.Inputs - 1 + 2) / 3
		if depth < 1 {
			depth = 1
		}
		fg += t.Outputs * depth
	}
	r.FunctionGenerators = fg
	for _, m := range e.Muxes {
		r.Multiplexors += m.Width * (m.K - 1)
	}
	r.Gates = int(math.Round(gatePackingRatio * float64(fg)))
	return r
}

// Architecture parameters shared with internal/core: the 4-character
// compare window (the paper's 32-bit segment) at 9 bits per character, and
// the FIFO pipeline depth.
const (
	windowChars = 4
	charBits    = 9
	windowBits  = windowChars * charBits // 36
	fifoDepth   = 32
)

// InjectorEntities returns the structural inventories of the six entities
// of Fig. 1, in the paper's table order.
func InjectorEntities() []Entity {
	return []Entity{
		{
			// Clock generation: an 11-bit divider plus glue.
			Name:        "CLck_gen",
			CounterBits: 11,
			Logic:       []LogicTerm{{Inputs: 4, Outputs: 4}},
			Muxes:       []Mux{{Width: 1, K: 2}},
		},
		{
			// Communications handler: two byte buffers, a 15-state
			// FSM, interrupt and framing logic.
			Name:      "Comm",
			RegBits:   16,
			FSMStates: 15,
			Logic: []LogicTerm{
				{Inputs: 10, Outputs: 15}, // next-state (one-hot, wide fan-in)
				{Inputs: 6, Outputs: 16},  // buffer load/steer
				{Inputs: 4, Outputs: 13},  // interrupt & handshake outputs
			},
			Muxes: []Mux{{Width: 8, K: 2}, {Width: 1, K: 2}},
		},
		{
			// Command decoder: the injector's register file (compare
			// data/mask, corrupt data/mask = 4 x 36 bits), a line
			// buffer, and a wide decode FSM.
			Name:      "Inst_dec",
			RegBits:   4*windowBits + 16*8, // config file + line buffer
			FSMStates: 14,
			Logic: []LogicTerm{
				{Inputs: 10, Outputs: 14}, // next-state
				{Inputs: 7, Outputs: 72},  // field decode into config file
				{Inputs: 4, Outputs: 89},  // load enables & error detect
			},
			Muxes: []Mux{{Width: 8, K: 2}, {Width: 9, K: 2}},
		},
		{
			// Output generator: response formatting FSM.
			Name:      "Out_gen",
			RegBits:   8,
			FSMStates: 7,
			Logic: []LogicTerm{
				{Inputs: 7, Outputs: 7},  // next-state
				{Inputs: 10, Outputs: 8}, // ASCII formatting
				{Inputs: 13, Outputs: 10},
			},
		},
		{
			// SPI: 16-bit shift registers and a small FSM.
			Name:      "SPI",
			RegBits:   36,
			FSMStates: 6,
			Logic: []LogicTerm{
				{Inputs: 4, Outputs: 32}, // shift/load enables
				{Inputs: 6, Outputs: 12}, // next-state + frame tagging
				{Inputs: 4, Outputs: 13},
			},
			Muxes: []Mux{{Width: 2, K: 2}, {Width: 2, K: 2}, {Width: 2, K: 2}},
		},
		{
			// FIFO injector: register-implemented FIFO (depth x 9 bits),
			// compare window, corrupt pipeline, CRC logic, config
			// shadows, and the output/corrupt muxes.
			Name: "FIFO_Inject",
			RegBits: fifoDepth*charBits + // FIFO storage
				windowBits + // compare shift register
				3*windowBits + // 3-stage inject pipeline
				4*windowBits + // config shadows (compare/corrupt x data/mask)
				windowBits + // corrupt staging bank
				charBits + // output holding register
				2*32 + // statistics counters (matches, injections)
				24 + // capture-ring address/control
				33 + // EOF-lookahead pipeline
				8 + // running CRC
				24, // valid/corrupted flags & handshakes
			FSMStates:   4,
			CounterBits: 2 * 5, // head/tail pointers
			Logic: []LogicTerm{
				{Inputs: 4, Outputs: windowBits * 2}, // masked XOR compare (two levels)
				{Inputs: windowBits, Outputs: 2},     // match reduction tree
				{Inputs: 4, Outputs: windowBits * 2}, // toggle/replace datapath
				{Inputs: 8, Outputs: 8 * 14},         // CRC-8 recompute network
				{Inputs: 6, Outputs: fifoDepth * 9},  // FIFO write-enable decode
				{Inputs: 5, Outputs: fifoDepth * 9},  // read/valid qualification
				{Inputs: 10, Outputs: 45},            // control & EOF lookahead
			},
			Muxes: []Mux{
				{Width: charBits, K: fifoDepth}, // FIFO read mux
				{Width: windowBits, K: 2},       // corrupt-vs-pass mux
				{Width: windowBits, K: 2},       // toggle-vs-replace mux
			},
		},
	}
}

// RuleEngineEntity builds the structural inventory of the multi-rule
// trigger engine (internal/rules) sized by its compiled form, so a rule
// set's FPGA cost can be estimated next to the paper's fixed entities. The
// model follows the same 4-LUT accounting:
//
//   - the DFA transition ROM is LUT RAM: tableEntries entries of
//     ceil(log2(dfaStates)) bits, 16 bits per 4-LUT;
//   - the accept ROM holds one ruleCount-wide bitmask per DFA state;
//   - the current-state register plus a 2-to-1 next-state mux (run/hold);
//   - per rule: 16-bit match and fire counters, a mode-gating term, and
//     the corrupt-vector register pair (data + mask, window-wide);
//   - a priority resolver ordering concurrent fires.
//
// In lane mode pass dfaStates = 0 and tableEntries = the summed NFA state
// count: each lane state then costs a compare term and a flip-flop instead
// of ROM bits.
func RuleEngineEntity(dfaStates, tableEntries, ruleCount int) Entity {
	e := Entity{Name: "Rule_Engine"}
	e.CounterBits = ruleCount * 2 * 16
	e.RegBits = ruleCount * 2 * windowBits // corrupt data + mask banks
	e.Logic = append(e.Logic,
		LogicTerm{Inputs: 5, Outputs: ruleCount},         // mode gating
		LogicTerm{Inputs: ruleCount, Outputs: ruleCount}, // priority resolver
	)
	if dfaStates > 0 {
		stateBits := 1
		for 1<<stateBits < dfaStates {
			stateBits++
		}
		e.RegBits += stateBits
		e.Logic = append(e.Logic,
			LogicTerm{Inputs: 4, Outputs: (tableEntries*stateBits + 15) / 16}, // transition ROM
			LogicTerm{Inputs: 4, Outputs: (dfaStates*ruleCount + 15) / 16},    // accept ROM
		)
		e.Muxes = append(e.Muxes, Mux{Width: stateBits, K: 2})
	} else {
		// NFA lanes: one flip-flop and one masked-compare term per state.
		e.RegBits += tableEntries
		e.Logic = append(e.Logic,
			LogicTerm{Inputs: charBits * 2, Outputs: tableEntries}, // per-state compare
			LogicTerm{Inputs: 3, Outputs: tableEntries},            // set-propagation OR plane
		)
	}
	return e
}

// PaperTable1 holds the published synthesis results for comparison.
var PaperTable1 = map[string]Resources{
	"CLck_gen":    {Gates: 10, FunctionGenerators: 15, Multiplexors: 1, DFlipFlops: 11},
	"Comm":        {Gates: 94, FunctionGenerators: 100, Multiplexors: 9, DFlipFlops: 31},
	"Inst_dec":    {Gates: 259, FunctionGenerators: 275, Multiplexors: 17, DFlipFlops: 286},
	"Out_gen":     {Gates: 78, FunctionGenerators: 80, Multiplexors: 0, DFlipFlops: 15},
	"SPI":         {Gates: 66, FunctionGenerators: 69, Multiplexors: 6, DFlipFlops: 42},
	"FIFO_Inject": {Gates: 1768, FunctionGenerators: 1800, Multiplexors: 350, DFlipFlops: 788},
}

// PaperTotal is the published "Total" row. Note (flagged in EXPERIMENTS.md):
// the caption says two FIFO injector instances were assumed, but the
// printed totals equal the column sums with a single FIFO_Inject row.
var PaperTotal = Resources{Gates: 2275, FunctionGenerators: 2339, Multiplexors: 383, DFlipFlops: 1173}

// Table1 renders the reproduced table: per entity, the model estimate and
// the paper's figure side by side, then totals.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %23s   %23s\n", "Entity", "Estimated (this model)", "Paper (Table 1)")
	fmt.Fprintf(&b, "%-12s %5s %5s %5s %5s   %5s %5s %5s %5s\n",
		"", "Gates", "FGs", "Muxes", "DFFs", "Gates", "FGs", "Muxes", "DFFs")
	var estTotal, paperTotal Resources
	for _, e := range InjectorEntities() {
		est := e.Estimate()
		paper := PaperTable1[e.Name]
		estTotal.Add(est)
		paperTotal.Add(paper)
		fmt.Fprintf(&b, "%-12s %5d %5d %5d %5d   %5d %5d %5d %5d\n",
			e.Name,
			est.Gates, est.FunctionGenerators, est.Multiplexors, est.DFlipFlops,
			paper.Gates, paper.FunctionGenerators, paper.Multiplexors, paper.DFlipFlops)
	}
	fmt.Fprintf(&b, "%-12s %5d %5d %5d %5d   %5d %5d %5d %5d\n",
		"Total",
		estTotal.Gates, estTotal.FunctionGenerators, estTotal.Multiplexors, estTotal.DFlipFlops,
		paperTotal.Gates, paperTotal.FunctionGenerators, paperTotal.Multiplexors, paperTotal.DFlipFlops)
	return b.String()
}

// EstimatedTotal sums the model estimates across all entities.
func EstimatedTotal() Resources {
	var total Resources
	for _, e := range InjectorEntities() {
		total.Add(e.Estimate())
	}
	return total
}
