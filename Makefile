GO ?= go

.PHONY: all build test bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

check:
	sh scripts/check.sh
