package serial

import (
	"strings"

	"netfi/internal/core"
	"netfi/internal/sim"
)

// Console is the external management system's end of the control path: it
// owns both UART directions, the on-board SPI assembler, and the wiring
// into the device's command decoder and output generator. NFTAPE-style
// campaign frameworks drive the injector through a Console, paying real
// serial-line time for every reconfiguration.
//
// The zero value is not usable; construct with NewConsole.
type Console struct {
	k   *sim.Kernel
	dec *core.CommandDecoder

	toBoard *UART
	toHost  *UART
	spi     Assembler

	rxBuf []byte
	lines []string
}

// NewConsole wires a console to dev at the given baud rate (0 selects
// 115200).
func NewConsole(k *sim.Kernel, dev *core.Device, baud int) *Console {
	c := &Console{k: k, dec: core.NewCommandDecoder(dev)}
	// Host -> board: UART bytes arrive at the communications handler,
	// which packs them into SPI frames for the command decoder.
	c.toBoard = NewUART(k, baud, ByteSinkFunc(func(b byte) {
		frames := c.spi.Pack([]byte{b})
		for _, payload := range c.spi.Unpack(frames) {
			c.dec.InputByte(payload)
		}
	}))
	// Board -> host: the output generator's bytes cross the same path in
	// reverse.
	c.toHost = NewUART(k, baud, ByteSinkFunc(c.receive))
	c.dec.SetOutput(func(b byte) { c.toHost.Send([]byte{b}) })
	return c
}

// Decoder exposes the command decoder (for direct, zero-latency control in
// tests).
func (c *Console) Decoder() *core.CommandDecoder { return c.dec }

// Send queues a command line for transmission; the response arrives later
// in simulated time (see OnResponse / Responses).
func (c *Console) Send(cmd string) {
	if !strings.HasSuffix(cmd, "\n") {
		cmd += "\n"
	}
	c.toBoard.SendString(cmd)
}

// receive assembles response lines from the board.
func (c *Console) receive(b byte) {
	if b != '\n' {
		c.rxBuf = append(c.rxBuf, b)
		return
	}
	c.lines = append(c.lines, string(c.rxBuf))
	c.rxBuf = c.rxBuf[:0]
}

// Responses returns every response line received so far.
func (c *Console) Responses() []string { return c.lines }

// LastResponse returns the most recent response line, or "".
func (c *Console) LastResponse() string {
	if len(c.lines) == 0 {
		return ""
	}
	return c.lines[len(c.lines)-1]
}

// RoundTripTime estimates the serial cost of one command of n bytes plus a
// 3-byte response ("OK\n") — the latency floor for reconfiguring the
// injector mid-campaign.
func (c *Console) RoundTripTime(n int) sim.Duration {
	return sim.Duration(n+1)*c.toBoard.ByteTime() + 3*c.toHost.ByteTime()
}
