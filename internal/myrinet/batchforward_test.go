package myrinet

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"netfi/internal/sim"
)

// runForwardTrace runs a seeded three-host traffic mix through one switch and
// returns the full observable trace: every delivery with its timestamp,
// source and payload, every send error, and the final counters of every
// switch port. The batch flag selects run-granular vs per-character
// forwarding; equal traces for equal seeds is the batch path's correctness
// contract.
func runForwardTrace(t *testing.T, seed int64, batch, mapping, recovery bool) string {
	t.Helper()
	old := batchForward
	batchForward = batch
	defer func() { batchForward = old }()

	k := sim.NewKernel(1)
	n := NewNetwork(k)
	sw := n.AddSwitch("sw0", DefaultPortCount)
	if recovery {
		sw.SetRecovery(RecoveryConfig{Enabled: true})
	}
	var trace strings.Builder
	hosts := make([]*Interface, 3)
	for i := range hosts {
		cfg := MappingConfig{}
		if mapping {
			cfg = MappingConfig{
				Enabled:       true,
				InitialMapper: i == 2,
				MapPeriod:     100 * sim.Millisecond,
				ScoutTimeout:  sim.Millisecond,
			}
		}
		idx := i
		hosts[i] = NewInterface(k, InterfaceConfig{
			Name:    string(rune('A' + i)),
			MAC:     MAC{0x02, 0, 0, 0, 0, byte(i + 1)},
			ID:      NodeID(i + 1),
			Mapping: cfg,
		})
		hosts[i].SetDataHandler(func(src MAC, payload []byte) {
			fmt.Fprintf(&trace, "t=%v host=%d src=%x payload=%x\n", k.Now(), idx, src, payload)
		})
		n.Interfaces = append(n.Interfaces, hosts[i])
		n.ConnectHost(hosts[i], sw, i)
	}
	if !mapping {
		ports := map[*Interface]int{}
		for i, h := range hosts {
			ports[h] = i
		}
		n.InstallStaticRoutes(ports)
	}

	// Random mix: colliding destinations provoke destination blocking, and
	// payloads longer than the high watermark push the blocked port's slack
	// buffer through its STOP/GO cycle — the watermark-crossing case the
	// batch path must split around.
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < 40; s++ {
		src := rng.Intn(3)
		dst := rng.Intn(3)
		if dst == src {
			dst = (dst + 1) % 3
		}
		payload := make([]byte, rng.Intn(480))
		rng.Read(payload)
		from, to := hosts[src], hosts[dst]
		k.After(sim.Duration(rng.Intn(30_000))*sim.Nanosecond, func() {
			if err := from.Send(to.MAC(), payload); err != nil {
				fmt.Fprintf(&trace, "t=%v send err: %v\n", k.Now(), err)
			}
		})
	}
	if mapping || recovery {
		k.RunFor(400 * sim.Millisecond)
	} else {
		k.Run()
	}
	for p := 0; p < sw.Ports(); p++ {
		fmt.Fprintf(&trace, "port%d=%+v\n", p, *sw.PortCounters(p))
	}
	fmt.Fprintf(&trace, "held=%d\n", sw.HeldOutputs())
	return trace.String()
}

// TestBatchForwardEquivalence pins run-granular forwarding against
// per-character stepping over seeded traffic mixes: plain static-route
// traffic, traffic with the recovery layer armed (the blocked-packet
// watchdog's event-ID sequence must also match), and mapping-protocol
// traffic (scout packets exercise the isMapping port-byte append).
func TestBatchForwardEquivalence(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		for _, sc := range []struct {
			name              string
			mapping, recovery bool
		}{
			{"plain", false, false},
			{"recovery", false, true},
			{"mapping", true, false},
		} {
			ref := runForwardTrace(t, seed, false, sc.mapping, sc.recovery)
			got := runForwardTrace(t, seed, true, sc.mapping, sc.recovery)
			if got != ref {
				rl, gl := strings.Split(ref, "\n"), strings.Split(got, "\n")
				for i := 0; i < len(rl) || i < len(gl); i++ {
					var a, b string
					if i < len(rl) {
						a = rl[i]
					}
					if i < len(gl) {
						b = gl[i]
					}
					if a != b {
						t.Fatalf("seed %d %s: trace diverges at line %d:\n  per-char: %s\n  batch:    %s",
							seed, sc.name, i, a, b)
					}
				}
			}
		}
	}
}
