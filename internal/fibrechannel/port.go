package fibrechannel

import (
	"netfi/internal/enc8b10b"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Ordered sets are four code groups beginning with K28.5. The three bytes
// after the comma identify the set; the port recognizes these four.
const (
	k285 = 0xBC
	// Second bytes distinguishing the sets (simplified FC-PH forms).
	osIdleB2  = 0x95 // D21.4 ... IDLE
	osRRdyB2  = 0x35 // D21.1 ... R_RDY (returns one BB credit)
	osSOFB2   = 0xB5 // D21.5 ... SOFn3 (start of frame)
	osEOFB2   = 0xB6 // D22.5 ... EOFn (end of frame)
	osFillB34 = 0xB5 // filler for the 3rd/4th code groups
)

// OrderedSet identifies a decoded ordered set.
type OrderedSet int

// Recognized ordered sets. Unknown means the four-group sequence did not
// parse (e.g. it was corrupted in flight).
const (
	OSUnknown OrderedSet = iota
	OSIdle
	OSRRdy
	OSSOF
	OSEOF
)

// String returns the ordered-set mnemonic.
func (o OrderedSet) String() string {
	switch o {
	case OSIdle:
		return "IDLE"
	case OSRRdy:
		return "R_RDY"
	case OSSOF:
		return "SOF"
	case OSEOF:
		return "EOF"
	default:
		return "UNKNOWN"
	}
}

func orderedSetBytes(o OrderedSet) [4]byte {
	switch o {
	case OSRRdy:
		return [4]byte{k285, osRRdyB2, osFillB34, osFillB34}
	case OSSOF:
		return [4]byte{k285, osSOFB2, osFillB34, osFillB34}
	case OSEOF:
		return [4]byte{k285, osEOFB2, osFillB34, osFillB34}
	default:
		return [4]byte{k285, osIdleB2, osFillB34, osFillB34}
	}
}

func classifySet(b2 byte) OrderedSet {
	switch b2 {
	case osIdleB2:
		return OSIdle
	case osRRdyB2:
		return OSRRdy
	case osSOFB2:
		return OSSOF
	case osEOFB2:
		return OSEOF
	default:
		return OSUnknown
	}
}

// PortStats counts port events.
type PortStats struct {
	FramesSent      uint64
	FramesReceived  uint64
	CRCDrops        uint64
	CodeViolations  uint64
	DisparityErrors uint64
	TruncatedFrames uint64
	RRdySent        uint64
	RRdyReceived    uint64
	CreditStallTime sim.Duration
	UnknownSets     uint64
}

// NPort is one end of a point-to-point FC link. It encodes frames into
// 8b/10b code groups carried as 10-bit phy characters, decodes the incoming
// stream, and runs buffer-to-buffer credit: each transmitted frame consumes
// one credit; the receiver returns an R_RDY when it frees the buffer.
//
// The zero value is not usable; construct with NewNPort.
type NPort struct {
	k    *sim.Kernel
	name string
	addr Address
	out  *phy.Link

	// Transmit side.
	encRD   enc8b10b.RD
	credits int
	maxCred int
	txq     []*Frame
	stall   sim.Time // when the port ran out of credit

	// Receive side.
	decRD     enc8b10b.RD
	setBuf    []byte // pending code-group bytes of an ordered set
	inFrame   bool
	frameBuf  []byte
	recvDelay sim.Duration

	onFrame func(*Frame)
	stats   PortStats
}

// NPortConfig parameterizes a port.
type NPortConfig struct {
	// Name labels the port.
	Name string
	// Addr is the 24-bit N_Port identifier.
	Addr Address
	// Credits is the initial buffer-to-buffer credit. Zero selects 4.
	Credits int
	// RecvDelay is the buffer-hold time before R_RDY returns. Zero
	// selects 1 us.
	RecvDelay sim.Duration
}

// NewNPort builds a port transmitting on out.
func NewNPort(k *sim.Kernel, cfg NPortConfig, out *phy.Link) *NPort {
	if cfg.Credits == 0 {
		cfg.Credits = 4
	}
	if cfg.RecvDelay == 0 {
		cfg.RecvDelay = sim.Microsecond
	}
	return &NPort{
		k:         k,
		name:      cfg.Name,
		addr:      cfg.Addr,
		out:       out,
		encRD:     enc8b10b.RDMinus,
		decRD:     enc8b10b.RDMinus,
		credits:   cfg.Credits,
		maxCred:   cfg.Credits,
		recvDelay: cfg.RecvDelay,
	}
}

// Name returns the port's label.
func (p *NPort) Name() string { return p.name }

// Addr returns the port's identifier.
func (p *NPort) Addr() Address { return p.addr }

// Stats returns a copy of the port counters.
func (p *NPort) Stats() PortStats { return p.stats }

// Credits reports the available buffer-to-buffer credit.
func (p *NPort) Credits() int { return p.credits }

// SetFrameHandler registers the upper-layer delivery callback.
func (p *NPort) SetFrameHandler(fn func(*Frame)) { p.onFrame = fn }

// Send queues a frame; it transmits when credit allows.
func (p *NPort) Send(f *Frame) {
	p.txq = append(p.txq, f)
	p.pump()
}

func (p *NPort) pump() {
	for len(p.txq) > 0 && p.credits > 0 {
		f := p.txq[0]
		p.txq = p.txq[1:]
		p.credits--
		p.transmit(f)
	}
	if len(p.txq) > 0 && p.stall == 0 {
		p.stall = p.k.Now()
	}
}

// transmit puts SOF + encoded frame + EOF on the wire.
func (p *NPort) transmit(f *Frame) {
	body := f.Encode()
	chars := make([]phy.Character, 0, len(body)+8)
	chars = p.appendSet(chars, orderedSetBytes(OSSOF))
	for _, b := range body {
		code, next, _ := enc8b10b.Encode(b, false, p.encRD)
		p.encRD = next
		chars = append(chars, phy.Character(code))
	}
	chars = p.appendSet(chars, orderedSetBytes(OSEOF))
	p.out.Send(chars)
	p.stats.FramesSent++
}

// appendSet encodes an ordered set: K28.5 then three data groups.
func (p *NPort) appendSet(chars []phy.Character, set [4]byte) []phy.Character {
	code, next, _ := enc8b10b.Encode(set[0], true, p.encRD)
	p.encRD = next
	chars = append(chars, phy.Character(code))
	for _, b := range set[1:] {
		code, next, _ = enc8b10b.Encode(b, false, p.encRD)
		p.encRD = next
		chars = append(chars, phy.Character(code))
	}
	return chars
}

// sendRRdy returns one buffer-to-buffer credit to the remote.
func (p *NPort) sendRRdy() {
	chars := p.appendSet(nil, orderedSetBytes(OSRRdy))
	p.out.Send(chars)
	p.stats.RRdySent++
}

// Receive implements phy.Receiver: the incoming 10-bit code-group stream.
func (p *NPort) Receive(chars []phy.Character) {
	for _, c := range chars {
		res, next := enc8b10b.Decode(uint16(c), p.decRD)
		p.decRD = next
		switch {
		case res.Invalid:
			p.stats.CodeViolations++
			p.abortFrame()
			continue
		case res.DisparityError:
			p.stats.DisparityErrors++
			p.abortFrame()
			continue
		}
		if res.IsK && res.Byte == k285 {
			// Start of an ordered set; any partial set is discarded.
			p.setBuf = p.setBuf[:0]
			p.setBuf = append(p.setBuf, res.Byte)
			continue
		}
		if len(p.setBuf) > 0 {
			p.setBuf = append(p.setBuf, res.Byte)
			if len(p.setBuf) == 4 {
				p.handleSet(classifySet(p.setBuf[1]))
				p.setBuf = p.setBuf[:0]
			}
			continue
		}
		if p.inFrame {
			p.frameBuf = append(p.frameBuf, res.Byte)
			if len(p.frameBuf) > HeaderLen+MaxPayload+4 {
				p.stats.TruncatedFrames++
				p.abortFrame()
			}
		}
		// Data outside a frame and outside an ordered set: line noise,
		// ignored.
	}
	// Every code group was decoded into the port's own buffers.
	phy.ReleaseBurst(chars)
}

// abortFrame drops an in-progress frame (code violation mid-frame).
func (p *NPort) abortFrame() {
	if p.inFrame {
		p.inFrame = false
		p.frameBuf = nil
		p.stats.TruncatedFrames++
	}
	p.setBuf = p.setBuf[:0]
}

func (p *NPort) handleSet(os OrderedSet) {
	switch os {
	case OSSOF:
		p.inFrame = true
		p.frameBuf = p.frameBuf[:0]
	case OSEOF:
		if !p.inFrame {
			return
		}
		p.inFrame = false
		raw := append([]byte(nil), p.frameBuf...)
		p.frameBuf = p.frameBuf[:0]
		p.completeFrame(raw)
	case OSRRdy:
		p.stats.RRdyReceived++
		if p.credits < p.maxCred {
			p.credits++
		}
		if p.stall != 0 {
			p.stats.CreditStallTime += p.k.Now() - p.stall
			p.stall = 0
		}
		p.pump()
	case OSIdle:
		// No action.
	default:
		p.stats.UnknownSets++
	}
}

func (p *NPort) completeFrame(raw []byte) {
	f, err := DecodeFrame(raw)
	// The buffer is consumed either way: return credit after the hold
	// time.
	p.k.After(p.recvDelay, p.sendRRdy)
	if err != nil {
		p.stats.CRCDrops++
		return
	}
	if f.Header.DID != p.addr {
		// Point-to-point: misdirected frames are dropped silently.
		return
	}
	p.stats.FramesReceived++
	if p.onFrame != nil {
		p.onFrame(f)
	}
}

var _ phy.Receiver = (*NPort)(nil)
