// Control-symbol corruption, the signature capability of the paper: the
// injector sits in the data path, so it can match and corrupt the
// hardware-generated GAP/GO/STOP symbols that no software fault injector
// can reach. This example runs one Table 4 row — every GAP on the tapped
// link replaced by GO, metered by the campaign duty cycle — and prints the
// resulting loss next to the paper's figure.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/myrinet"
)

func main() {
	row := campaign.RunTable4Row(myrinet.SymbolGap, myrinet.SymbolGo,
		campaign.Table4Options{Seed: 7})
	fmt.Printf("mask=%v replacement=%v\n", row.Mask, row.Replacement)
	fmt.Printf("messages sent:     %d\n", row.Sent)
	fmt.Printf("messages received: %d\n", row.Received)
	fmt.Printf("loss rate:         %.1f%%  (paper: 11%% for GAP->GO)\n", 100*row.LossRate)
	fmt.Printf("classification:    %s (the paper's campaign saw only passive faults)\n",
		row.Outcome.Classification)

	fmt.Println("\nfull campaign: go run ./cmd/netfi table4")
}
