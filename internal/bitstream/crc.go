// Package bitstream provides the checksum and bit-manipulation primitives
// shared by the network substrates: the CRC-8 that trails every Myrinet
// packet (recomputed at each switch hop as route bytes are stripped), the
// IEEE CRC-32 used by Fibre Channel frames, and the 16-bit one's-complement
// checksum used by the UDP experiment in §4.3.4 of the paper.
package bitstream

// CRC8 computes the Myrinet trailing CRC over data using the CRC-8/ATM-HEC
// polynomial x^8 + x^2 + x + 1 (0x07), MSB-first, zero initial value.
// Myrinet appends this byte after the payload; each switch recomputes it
// after consuming a route byte.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

// CRC8Update extends a running CRC-8 with one byte.
func CRC8Update(crc, b byte) byte { return crc8Table[crc^b] }

// CRC8Update4 extends a running CRC-8 with four bytes at once using
// slicing-by-4. The four table lookups are independent, so the loop-carried
// dependency is one xor chain per four bytes instead of one per byte — the
// batch datapath uses this to take the CRC off the critical path.
func CRC8Update4(crc, b0, b1, b2, b3 byte) byte {
	return crc8Slice[3][crc^b0] ^ crc8Slice[2][b1] ^ crc8Slice[1][b2] ^ crc8Slice[0][b3]
}

// CRC8Update8 extends a running CRC-8 with eight bytes at once using
// slicing-by-8: eight independent table lookups, one xor reduction per
// block. The armed batch datapath runs this over popped data runs.
func CRC8Update8(crc, b0, b1, b2, b3, b4, b5, b6, b7 byte) byte {
	return crc8Slice[7][crc^b0] ^ crc8Slice[6][b1] ^ crc8Slice[5][b2] ^ crc8Slice[4][b3] ^
		crc8Slice[3][b4] ^ crc8Slice[2][b5] ^ crc8Slice[1][b6] ^ crc8Slice[0][b7]
}

// CRC8Zeros advances a running CRC-8 over n zero bytes. Updating with a zero
// byte is the linear map crc -> table[crc], so n steps decompose into
// power-of-two jumps through precomputed composition tables. The switch uses
// this to advance its incremental CRC correction over a forwarded run without
// walking it byte by byte.
func CRC8Zeros(crc byte, n int) byte {
	for k := 0; k < len(crc8Zero) && n != 0; k++ {
		if n&1 != 0 {
			crc = crc8Zero[k][crc]
		}
		n >>= 1
	}
	// n now counts remaining 256-step blocks: two 128-step jumps each.
	for ; n != 0; n-- {
		crc = crc8Zero[len(crc8Zero)-1][crc8Zero[len(crc8Zero)-1][crc]]
	}
	return crc
}

var crc8Table = makeCRC8Table(0x07)

// crc8Slice[k][b] is the CRC of byte b followed by k zero bytes: the
// standard slicing decomposition crc(b0 b1 b2 b3) =
// S3[crc^b0] ^ S2[b1] ^ S1[b2] ^ S0[b3], valid because the zero-init CRC is
// linear over GF(2).
var crc8Slice = makeCRC8Slice()

func makeCRC8Slice() [8][256]byte {
	var t [8][256]byte
	t[0] = crc8Table
	for k := 1; k < 8; k++ {
		for b := 0; b < 256; b++ {
			t[k][b] = crc8Table[t[k-1][b]]
		}
	}
	return t
}

// crc8Zero[k][c] applies the zero-byte update 2^k times to c.
var crc8Zero = makeCRC8Zero()

func makeCRC8Zero() [8][256]byte {
	var t [8][256]byte
	for c := 0; c < 256; c++ {
		t[0][c] = crc8Table[c]
	}
	for k := 1; k < 8; k++ {
		for c := 0; c < 256; c++ {
			t[k][c] = t[k-1][t[k-1][c]]
		}
	}
	return t
}

func makeCRC8Table(poly byte) [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for bit := 0; bit < 8; bit++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// CRC32 computes the Fibre Channel frame CRC (IEEE 802.3 polynomial,
// reflected, initial value all-ones, final complement) over data.
//
// The kernel is slicing-by-8: eight independent table lookups per 8-byte
// block, so the loop-carried dependency is one xor chain per block instead
// of one per byte. The remainder tail falls back to the byte-at-a-time
// update with the same table.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for len(data) >= 8 {
		lo := crc ^ (uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24)
		crc = crc32Slice[7][byte(lo)] ^
			crc32Slice[6][byte(lo>>8)] ^
			crc32Slice[5][byte(lo>>16)] ^
			crc32Slice[4][byte(lo>>24)] ^
			crc32Slice[3][data[4]] ^
			crc32Slice[2][data[5]] ^
			crc32Slice[1][data[6]] ^
			crc32Slice[0][data[7]]
		data = data[8:]
	}
	for _, b := range data {
		crc = crc32Table[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

var crc32Table = makeCRC32Table(0xEDB88320)

// crc32Slice[k][b] is the CRC state contribution of byte b followed by k
// zero bytes (reflected form), the standard slicing-by-8 decomposition.
var crc32Slice = makeCRC32Slice()

func makeCRC32Slice() [8][256]uint32 {
	var t [8][256]uint32
	t[0] = crc32Table
	for k := 1; k < 8; k++ {
		for b := 0; b < 256; b++ {
			prev := t[k-1][b]
			t[k][b] = crc32Table[byte(prev)] ^ prev>>8
		}
	}
	return t
}

func makeCRC32Table(poly uint32) [256]uint32 {
	var t [256]uint32
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Checksum16 computes the 16-bit one's-complement checksum over data, as
// used by UDP (RFC 768). Data is treated as a sequence of big-endian 16-bit
// words; an odd trailing byte is padded with zero. The returned value is the
// complement of the one's-complement sum, so a packet whose stored checksum
// equals Checksum16 of its contents (with the checksum field zeroed)
// verifies by summing to 0xFFFF.
//
// The §4.3.4 experiment relies on a real implementation: swapping two bytes
// that are 16 bits apart swaps equal addends in the one's-complement sum,
// which the checksum cannot detect.
func Checksum16(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum16 reports whether data, which includes a stored checksum
// field somewhere within it, sums (one's-complement) to all-ones.
func VerifyChecksum16(data []byte) bool {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum) == 0xFFFF
}
