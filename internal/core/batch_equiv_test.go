package core

import (
	"math/rand"
	"testing"

	"netfi/internal/phy"
	"netfi/internal/rules"
)

// The batch datapath's contract is byte-identical behavior to the per-symbol
// path: same output stream, same counters, same captures, same pipeline
// state — under every register file, rule set, and chunking. These tests
// drive two engines over identical stimuli, one through Process and one
// through ProcessBatch, and diff everything observable.

type batchCursor struct {
	data []byte
	pos  int
}

func (c *batchCursor) next() byte {
	if c.pos >= len(c.data) {
		c.pos++
		return byte(c.pos * 131)
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

var batchMasks = []CharMask{MaskNone, MaskFull, MaskData, 0x100, 0x1F0, 0x003}

func batchConfig(c *batchCursor) Config {
	var cfg Config
	cfg.Match = MatchMode(c.next() % 3)
	cfg.Corrupt = CorruptMode(c.next() % 2)
	cfg.RecomputeCRC = c.next()%2 == 0
	for i := 0; i < WindowSize; i++ {
		cfg.CompareData[i] = phy.Character(c.next()) | phy.Character(c.next()&1)<<8
		cfg.CompareMask[i] = batchMasks[int(c.next())%len(batchMasks)]
		cfg.CorruptData[i] = phy.Character(c.next()) | phy.Character(c.next()&1)<<8
		cfg.CorruptMask[i] = batchMasks[int(c.next())%len(batchMasks)]
	}
	return cfg
}

func batchRules(c *batchCursor) []rules.Rule {
	n := int(c.next() % 3)
	rs := make([]rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		r := rules.Rule{ID: i, Mode: rules.Mode(c.next() % 5), Priority: int(c.next() % 4)}
		switch r.Mode {
		case rules.ModeAfterN:
			r.N = uint64(c.next() % 3)
		case rules.ModeWindow:
			// The armed window reads the executor's symbol clock, which
			// bulk skipping advances without stepping the automaton — keep
			// some windows mid-stream so a clock drift flips fire gating.
			r.N = uint64(c.next()) * 2
		}
		steps := 1 + int(c.next()%4)
		for j := 0; j < steps; j++ {
			s := rules.Step{
				Sym:  uint16(c.next()) | uint16(c.next()&1)<<8,
				Mask: rules.SymbolMask,
			}
			switch c.next() % 8 {
			case 0:
				s.Mask = 0x0FF
			case 1:
				s.Mask = 0 // wildcard step: no usable literal prefix here
			}
			if j > 0 && c.next()%3 == 0 {
				// Mostly contiguous steps, so multi-symbol literal prefixes
				// dominate and the batch prefilter actually engages; the
				// occasional gap cuts the prefix short.
				s.Gap = 1 + int(c.next()%2)
			}
			r.Steps = append(r.Steps, s)
		}
		switch c.next() % 4 {
		case 0:
			r.Action = rules.ActionCapture
		case 1:
			r.Action = rules.ActionToggle
			for v := 0; v <= int(c.next()%2); v++ {
				r.CorruptData = append(r.CorruptData, uint16(c.next())&rules.SymbolMask)
			}
		case 2:
			r.Action = rules.ActionReplace
			for v := 0; v <= int(c.next()%2); v++ {
				r.CorruptData = append(r.CorruptData, uint16(c.next())&rules.SymbolMask)
				r.CorruptMask = append(r.CorruptMask, uint16(c.next())&rules.SymbolMask)
			}
		case 3:
			r.Action = rules.ActionDrop
			r.DropCount = 1 + int(c.next()%2)
		}
		rs = append(rs, r)
	}
	return rs
}

// batchStream biases characters toward the compare pattern and rule anchors
// so matches, injections and CRC substitutions all happen, with GAP and
// RESET control symbols mixed in for packet framing.
func batchStream(c *batchCursor, cfg Config, rs []rules.Rule, n int) []phy.Character {
	pool := []phy.Character{
		phy.ControlChar(0x0C), // GAP: packet framing + CRC reset
		phy.ControlChar(LinkResetCode),
		phy.ControlChar(0x00),
		phy.DataChar(0x00),
	}
	for i := 0; i < WindowSize; i++ {
		pool = append(pool, cfg.CompareData[i]&(dcFlag|0xFF))
	}
	for i := range rs {
		for _, s := range rs[i].Steps {
			pool = append(pool, phy.Character(s.Sym)&(dcFlag|0xFF))
		}
	}
	stream := make([]phy.Character, 0, n)
	for len(stream) < n {
		b := c.next()
		switch {
		case b%16 == 0:
			// A long packet: a data run far exceeding the slack (so the
			// cut-through path pops mid-packet), a late pattern hit, then
			// GAP — the shape that makes CRC substitution consume a
			// bulk-maintained running CRC.
			run := 24 + int(c.next()%72)
			for k := 0; k < run && len(stream) < n; k++ {
				if c.next()%8 == 0 {
					stream = append(stream, pool[int(c.next())%len(pool)]|dcFlag)
				} else {
					stream = append(stream, phy.DataChar(c.next()))
				}
			}
			stream = append(stream, phy.ControlChar(0x0C))
		case b&3 != 3:
			stream = append(stream, pool[int(b>>2)%len(pool)])
		default:
			stream = append(stream, phy.Character(c.next())|phy.Character(c.next()&1)<<8)
		}
	}
	return stream[:n]
}

func diffEngines(t *testing.T, caseN, chunkN int, ref, batch *Engine) {
	t.Helper()
	rc, rm, ri := ref.Stats()
	bc, bm, bi := batch.Stats()
	if rc != bc || rm != bm || ri != bi {
		t.Fatalf("case %d chunk %d: stats diverged: per-symbol (%d,%d,%d), batch (%d,%d,%d)",
			caseN, chunkN, rc, rm, ri, bc, bm, bi)
	}
	if ref.DroppedChars() != batch.DroppedChars() {
		t.Fatalf("case %d chunk %d: dropped diverged: %d vs %d", caseN, chunkN, ref.DroppedChars(), batch.DroppedChars())
	}
	if ref.ResetsSeen() != batch.ResetsSeen() {
		t.Fatalf("case %d chunk %d: resets diverged: %d vs %d", caseN, chunkN, ref.ResetsSeen(), batch.ResetsSeen())
	}
	if ref.Pending() != batch.Pending() {
		t.Fatalf("case %d chunk %d: pending diverged: %d vs %d", caseN, chunkN, ref.Pending(), batch.Pending())
	}
}

func checkEngineBatchCase(t *testing.T, caseN int, data []byte) {
	c := &batchCursor{data: data}
	slacks := []int{WindowSize, WindowSize + 1, 8, DefaultSlackChars}
	slack := slacks[int(c.next())%len(slacks)]
	cfg := batchConfig(c)
	rs := batchRules(c)

	ref := NewEngine(slack)
	batch := NewEngine(slack)
	ref.Configure(cfg)
	batch.Configure(cfg)
	if len(rs) > 0 {
		// Sweep the prefilter engines: the per-symbol reference never uses
		// the screen, so every mode is checked against exact execution.
		pfModes := []rules.PrefilterMode{
			rules.PrefilterAuto, rules.PrefilterOff,
			rules.PrefilterShiftAnd, rules.PrefilterReduced,
		}
		opts := rules.Options{Prefilter: pfModes[int(c.next())%len(pfModes)]}
		if opts.Prefilter == rules.PrefilterReduced && c.next()%2 == 0 {
			opts.PrefilterBudget = 4 // starve the budget: truncation ladder
		}
		if p, err := rules.Compile(rs, opts); err == nil {
			ref.SetRuleProgram(p)
			batch.SetRuleProgram(p)
		}
	}

	stream := batchStream(c, cfg, rs, 400)
	pos, chunkN := 0, 0
	for pos < len(stream) {
		switch c.next() {
		case 0:
			ref.InjectNow()
			batch.InjectNow()
		case 1:
			m := MatchMode(c.next() % 3)
			ref.SetMatchMode(m)
			batch.SetMatchMode(m)
		case 2:
			cfg2 := batchConfig(c)
			ref.Configure(cfg2)
			batch.Configure(cfg2)
		}
		n := 1 + int(c.next())%48
		if pos+n > len(stream) {
			n = len(stream) - pos
		}
		chunk := stream[pos : pos+n]
		outR := ref.Process(chunk)
		outB := batch.ProcessBatch(chunk)
		if len(outR) != len(outB) {
			t.Fatalf("case %d chunk %d: output length diverged: %d vs %d\nper-symbol: %v\nbatch:      %v",
				caseN, chunkN, len(outR), len(outB), outR, outB)
		}
		for k := range outR {
			if outR[k] != outB[k] {
				t.Fatalf("case %d chunk %d: output[%d] diverged: %v vs %v\nper-symbol: %v\nbatch:      %v",
					caseN, chunkN, k, outR[k], outB[k], outR, outB)
			}
		}
		diffEngines(t, caseN, chunkN, ref, batch)
		pos += n
		chunkN++
	}

	flushR := ref.Flush()
	flushB := batch.Flush()
	if len(flushR) != len(flushB) {
		t.Fatalf("case %d: flush length diverged: %d vs %d", caseN, len(flushR), len(flushB))
	}
	for k := range flushR {
		if flushR[k] != flushB[k] {
			t.Fatalf("case %d: flush[%d] diverged: %v vs %v", caseN, k, flushR[k], flushB[k])
		}
	}
	evR, evB := ref.Capture().Events(), batch.Capture().Events()
	if len(evR) != len(evB) {
		t.Fatalf("case %d: capture event count diverged: %d vs %d", caseN, len(evR), len(evB))
	}
	for k := range evR {
		if evR[k].PreLen != evB[k].PreLen || len(evR[k].Context) != len(evB[k].Context) {
			t.Fatalf("case %d: capture %d geometry diverged: (%d,%d) vs (%d,%d)",
				caseN, k, evR[k].PreLen, len(evR[k].Context), evB[k].PreLen, len(evB[k].Context))
		}
		for x := range evR[k].Context {
			if evR[k].Context[x] != evB[k].Context[x] {
				t.Fatalf("case %d: capture %d context[%d] diverged: %v vs %v",
					caseN, k, x, evR[k].Context[x], evB[k].Context[x])
			}
		}
	}
}

// TestProcessBatchEquivalence10k drives ten thousand seeded random cases —
// register files, rule sets, control-symbol framing, mid-stream
// reconfiguration and InjectNow, random chunkings — through both datapaths.
func TestProcessBatchEquivalence10k(t *testing.T) {
	cases := 10_000
	if testing.Short() {
		cases = 1_000
	}
	rng := rand.New(rand.NewSource(640)) // the paper's 640 Mb/s link rate
	buf := make([]byte, 1024)
	for i := 0; i < cases; i++ {
		rng.Read(buf)
		checkEngineBatchCase(t, i, buf)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// FuzzProcessBatch lets the fuzzer search for a stimulus separating the two
// datapaths. Run with: go test -fuzz=FuzzProcessBatch ./internal/core
func FuzzProcessBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0C, 0x05, 0xFF})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 16; i++ {
		buf := make([]byte, 64+rng.Intn(512))
		rng.Read(buf)
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkEngineBatchCase(t, 0, data)
	})
}

// A taint leak would be invisible to the equivalence suite — the engine
// would just fall back to per-symbol forever — so pin the accounting
// directly: once every corrupted slot has retired, the fast path re-arms.
func TestTaintDrainsAfterInjection(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOnce,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x42)},
		CompareMask: [WindowSize]CharMask{0, 0, 0, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, 0x0F},
	})
	burst := phy.DataChars(make([]byte, 64))
	burst[10] = phy.DataChar(0x42)
	e.ProcessBatch(burst)
	_, _, inj := e.Stats()
	if inj != 1 {
		t.Fatalf("injections = %d, want 1", inj)
	}
	if e.taint != 0 {
		t.Fatalf("taint = %d after the corrupted slot retired, want 0", e.taint)
	}
	if !e.bulkEligible() {
		t.Fatal("bulk path did not re-arm after the injection drained")
	}
}

// The cut-through path must stay allocation-free like the per-symbol path.
func TestProcessBatchNoAllocs(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	burst := phy.DataChars(make([]byte, 1024))
	e.ProcessBatch(burst) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		e.ProcessBatch(burst)
	})
	if allocs != 0 {
		t.Errorf("ProcessBatch allocates %.1f times per burst; want 0", allocs)
	}
}
