package serial

import "netfi/internal/sim"

// Fork support (see sim/clone.go). A UART's sink is wiring: the console (or
// other owner) supplies the new-world sink at clone time, the same way the
// constructor did.

// Clone forks the transmitter with a new-world sink.
func (u *UART) Clone(m *sim.Mapper, dst ByteSink) *UART {
	u2 := &UART{
		k:         m.Kernel(),
		byteTime:  u.byteTime,
		dst:       dst,
		busyUntil: u.busyUntil,
		sent:      u.sent,
		q:         append([]byte(nil), u.q...),
		qPos:      u.qPos,
		pumping:   u.pumping,
		nextAt:    u.nextAt,
	}
	m.Put(u, u2)
	return u2
}

// Clone forks the console: both UARTs, the SPI assembler, the command
// decoder, and the response buffer, with the byte-sink wiring rebuilt around
// the new-world objects.
func (c *Console) Clone(m *sim.Mapper) *Console {
	c2 := &Console{
		k:     m.Kernel(),
		spi:   c.spi,
		rxBuf: append([]byte(nil), c.rxBuf...),
		lines: append([]string(nil), c.lines...),
	}
	m.Put(c, c2)
	c2.dec = c.dec.Clone(m)
	c2.toBoard = c.toBoard.Clone(m, ByteSinkFunc(func(b byte) {
		frames := c2.spi.Pack([]byte{b})
		for _, payload := range c2.spi.Unpack(frames) {
			c2.dec.InputByte(payload)
		}
	}))
	c2.toHost = c.toHost.Clone(m, ByteSinkFunc(c2.receive))
	c2.dec.SetOutput(func(b byte) { c2.toHost.Send([]byte{b}) })
	return c2
}
