package campaign

import (
	"strings"
	"testing"

	"netfi/internal/sim"
)

// chaosTestOptions keeps equivalence trials small: 4 messages at 5 ms
// pacing bounds each trial's horizon while still leaving room for every
// fault kind to land mid-conversation.
func chaosTestOptions(seed int64, forks int) ChaosOptions {
	return ChaosOptions{
		Seed:     seed,
		Forks:    forks,
		MaxK:     3,
		Messages: 4,
		Gap:      5 * sim.Millisecond,
	}
}

// TestForkEquivalence is the PR's gate: a trial run on a fork of the
// warmed base must be byte-identical — same event order, same STAT
// counters, same detection axis, same full-world fingerprint — to the
// same plan run on a freshly built, identically warmed testbed. 30
// seed × plan combinations, spanning k = 1..3 and every fault kind;
// alternate seeds pre-arm the rule engine so forks also carry live
// executor, prefilter, and capture state (with per-rule counters and
// capture totals folded into the fingerprint).
func TestForkEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fork equivalence sweep is long")
	}
	combos := 0
	for seed := int64(1); combos < 30; seed++ {
		opts := chaosTestOptions(seed*7919, 3)
		opts.ArmedRules = seed%2 == 0
		plans := GenerateForkPlans(opts)
		base := newChaosBase(opts.Seed, opts)
		for _, plan := range plans {
			combos++
			forked := runForkTrialForTest(t, base, plan, opts)
			rebuilt := runRebuiltChaosTrial(opts.Seed, plan, opts)
			if forked != rebuilt {
				t.Errorf("seed %d plan %d (%s): fork and rebuild diverge",
					opts.Seed, plan.ID, plan)
				diffFingerprints(t, forked.Fingerprint, rebuilt.Fingerprint)
				t.Errorf("fork:    %+v", stripFingerprint(forked))
				t.Errorf("rebuild: %+v", stripFingerprint(rebuilt))
				return
			}
		}
	}
}

func runForkTrialForTest(t *testing.T, base *chaosBase, plan ForkPlan, opts ChaosOptions) ChaosTrial {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("fork trial %d (%s) panicked: %v", plan.ID, plan, r)
		}
	}()
	return runForkChaosTrial(base, plan, opts)
}

func stripFingerprint(tr ChaosTrial) ChaosTrial {
	tr.Fingerprint = ""
	return tr
}

func diffFingerprints(t *testing.T, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	shown := 0
	for i := 0; i < n && shown < 8; i++ {
		if al[i] != bl[i] {
			t.Errorf("fingerprint line %d:\n  fork:    %s\n  rebuild: %s", i, al[i], bl[i])
			shown++
		}
	}
	if len(al) != len(bl) {
		t.Errorf("fingerprint length: fork %d lines, rebuild %d lines", len(al), len(bl))
	}
}

// The armed-rules base must actually carry live rule-engine state into the
// fork point — matched counters and completed captures — or the armed fork
// equivalence combos would be vacuous.
func TestChaosArmedBaseCarriesRuleState(t *testing.T) {
	opts := chaosTestOptions(31337, 1)
	opts.ArmedRules = true
	base := newChaosBase(opts.Seed, opts)
	e := base.tb.Injector.Engine(DirOutbound)
	if got := len(e.Rules()); got != 4 {
		t.Fatalf("armed base has %d rules, want 4", got)
	}
	if _, f60, _ := e.RuleCounters(60); f60 != 1 {
		t.Errorf("ONCE toggle rule 60 fired %d times during warmup, want 1", f60)
	}
	m61, _, ok := e.RuleCounters(61)
	if !ok || m61 == 0 {
		t.Errorf("payload-pair rule 61 never matched during warmup (matches=%d ok=%v)", m61, ok)
	}
	if m63, _, _ := e.RuleCounters(63); m63 != 0 {
		t.Errorf("never-match rule 63 matched %d times", m63)
	}
	if _, _, injections := e.Stats(); injections == 0 {
		t.Error("toggle rule produced no injection during warmup")
	}
	if len(e.Capture().Events()) == 0 {
		t.Error("the warm injection completed no capture event")
	}
}

// TestForkEquivalenceParallel forks the same base concurrently — the clone
// path must be read-only on the source world (the race detector is the
// real assertion here).
func TestForkEquivalenceParallel(t *testing.T) {
	opts := chaosTestOptions(4242, 8)
	opts.Workers = 4
	plans := GenerateForkPlans(opts)
	base := newChaosBase(opts.Seed, opts)
	serial := make([]ChaosTrial, len(plans))
	for i, plan := range plans {
		serial[i] = runForkChaosTrial(base, plan, opts)
	}
	parallel, errs := RunTrialsErr(len(plans), opts.Workers, func(i int) ChaosTrial {
		return runForkChaosTrial(base, plans[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("parallel fork %d: %v", i, err)
		}
	}
	for i := range plans {
		if parallel[i] != serial[i] {
			t.Errorf("fork %d: parallel result diverges from serial", i)
		}
	}
}

// TestGenerateForkPlans pins determinism and the k-cycle.
func TestGenerateForkPlans(t *testing.T) {
	opts := ChaosOptions{Seed: 99, Forks: 12, MaxK: 3}
	a := GenerateForkPlans(opts)
	b := GenerateForkPlans(opts)
	if len(a) != 12 {
		t.Fatalf("got %d plans, want 12", len(a))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("plan %d not deterministic: %q vs %q", i, a[i], b[i])
		}
		wantK := 1 + i%3
		if a[i].K() != wantK {
			t.Errorf("plan %d: k = %d, want %d", i, a[i].K(), wantK)
		}
		for _, f := range a[i].Faults {
			if f.Kind == FaultCorrupt && f.Rule == "" {
				t.Errorf("plan %d: corrupt fault without a rule", i)
			}
		}
	}
}

// TestRunChaosSweep smokes the orchestrator end to end: every fork triaged,
// no errors, report renders.
func TestRunChaosSweep(t *testing.T) {
	opts := chaosTestOptions(7, 12)
	opts.Workers = 4
	r := RunChaos(opts)
	if len(r.Trials) != 12 {
		t.Fatalf("got %d trials, want 12", len(r.Trials))
	}
	for _, tr := range r.Trials {
		if tr.Err != "" {
			t.Errorf("fork %d errored: %s", tr.ID, tr.Err)
		}
		if tr.Outcome == "" {
			t.Errorf("fork %d: no outcome", tr.ID)
		}
		if tr.Fingerprint == "" {
			t.Errorf("fork %d: no fingerprint", tr.ID)
		}
	}
	out := FormatChaos(r)
	for _, want := range []string{"chaos sweep", "tally:", "k=1:", "detect:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestChaosNodeDeathDegrades pins the headline scenario: kill a node
// mid-conversation and the transport must abandon that traffic (degraded),
// with the accrual detector noticing the silence.
func TestChaosNodeDeathDegrades(t *testing.T) {
	opts := chaosTestOptions(1, 1)
	base := newChaosBase(opts.Seed, opts)
	plan := ForkPlan{ID: 0, Faults: []Fault{
		{Kind: FaultNodeDeath, Node: 1, Delay: 2 * sim.Millisecond},
	}}
	tr := runForkChaosTrial(base, plan, opts)
	if tr.Outcome != OutcomeDegraded && tr.Outcome != OutcomeHung {
		t.Errorf("node death outcome = %s, want degraded or hung (trial %+v)",
			tr.Outcome, stripFingerprint(tr))
	}
	if !tr.Detected {
		t.Errorf("node death went undetected (trial %+v)", stripFingerprint(tr))
	}
}

// TestChaosCleanFork pins the control: a fork with no faults at all must
// deliver everything without retransmission.
func TestChaosCleanFork(t *testing.T) {
	opts := chaosTestOptions(5, 1)
	base := newChaosBase(opts.Seed, opts)
	tr := runForkChaosTrial(base, ForkPlan{ID: 0}, opts)
	if tr.Outcome != OutcomeMasked {
		t.Errorf("clean fork outcome = %s, want masked (trial %+v)",
			tr.Outcome, stripFingerprint(tr))
	}
	if tr.Delivered != uint64(tr.Sent) {
		t.Errorf("clean fork delivered %d/%d", tr.Delivered, tr.Sent)
	}
}
