package myrinet

import (
	"testing"
	"testing/quick"

	"netfi/internal/phy"
)

func TestSlackBufferFIFO(t *testing.T) {
	s := NewSlackBuffer(8, 6, 2, nil, nil)
	for i := byte(0); i < 5; i++ {
		if !s.Push(phy.DataChar(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := byte(0); i < 5; i++ {
		c, ok := s.Pop()
		if !ok || c.Byte() != i {
			t.Fatalf("pop %d = %v,%v", i, c, ok)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestSlackBufferWatermarks(t *testing.T) {
	var stops, gos int
	s := NewSlackBuffer(10, 6, 2, func() { stops++ }, func() { gos++ })
	// Fill to high watermark: exactly one STOP.
	for i := 0; i < 6; i++ {
		s.Push(phy.DataChar(0))
	}
	if stops != 1 {
		t.Fatalf("stops = %d after reaching high watermark, want 1", stops)
	}
	if !s.Stopping() {
		t.Fatal("Stopping() = false at high watermark")
	}
	// More pushes do not re-fire STOP.
	s.Push(phy.DataChar(0))
	if stops != 1 {
		t.Errorf("stops = %d after extra push, want 1", stops)
	}
	// Drain to low watermark: exactly one GO.
	for s.Len() > 2 {
		s.Pop()
	}
	if gos != 1 {
		t.Errorf("gos = %d at low watermark, want 1", gos)
	}
	if s.Stopping() {
		t.Error("Stopping() = true after GO")
	}
	// Refill across high: STOP again (hysteresis cycle, Fig. 9).
	for s.Len() < 6 {
		s.Push(phy.DataChar(0))
	}
	if stops != 2 {
		t.Errorf("stops = %d after second cycle, want 2", stops)
	}
}

func TestSlackBufferOverflowDestroysCharacters(t *testing.T) {
	s := NewSlackBuffer(4, 3, 1, nil, nil)
	for i := 0; i < 4; i++ {
		s.Push(phy.DataChar(byte(i)))
	}
	if s.Push(phy.DataChar(99)) {
		t.Error("push into full buffer succeeded")
	}
	if s.Overflow() != 1 {
		t.Errorf("Overflow() = %d, want 1", s.Overflow())
	}
	// The destroyed character never appears.
	for {
		c, ok := s.Pop()
		if !ok {
			break
		}
		if c.Byte() == 99 {
			t.Error("overflowed character appeared in the stream")
		}
	}
}

func TestSlackBufferGeometryValidation(t *testing.T) {
	for _, bad := range [][3]int{{0, 0, 0}, {4, 5, 1}, {4, 2, 2}, {4, 2, 3}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", bad)
				}
			}()
			NewSlackBuffer(bad[0], bad[1], bad[2], nil, nil)
		}()
	}
}

// Property: contents always come out in the order they went in, regardless
// of the interleaving of pushes and pops, and Len never exceeds capacity.
func TestSlackBufferOrderProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		s := NewDefaultSlackBuffer(nil, nil)
		var next, expect byte
		for _, push := range ops {
			if push {
				if s.Push(phy.DataChar(next)) {
					next++
				}
			} else if c, ok := s.Pop(); ok {
				if c.Byte() != expect {
					return false
				}
				expect++
			}
			if s.Len() > s.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSlackBufferWrapAround(t *testing.T) {
	s := NewSlackBuffer(4, 3, 1, nil, nil)
	// Repeatedly push 2 / pop 2 to walk the ring head across the wrap.
	v := byte(0)
	w := byte(0)
	for i := 0; i < 20; i++ {
		s.Push(phy.DataChar(v))
		v++
		s.Push(phy.DataChar(v))
		v++
		for j := 0; j < 2; j++ {
			c, ok := s.Pop()
			if !ok || c.Byte() != w {
				t.Fatalf("iteration %d: got %v,%v want %d", i, c, ok, w)
			}
			w++
		}
	}
}
