package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/sim"
)

// PassThroughResult reproduces the §3.5 transparency demonstration: with
// the injector in pass-through mode, "data passed through the fault
// injector at the same rate it would have if the fault injector had not
// been in the data path", control and data packets transfer seamlessly, and
// routes map through in both directions.
type PassThroughResult struct {
	WithoutRate  float64 // delivered messages/s, no injector
	WithRate     float64 // delivered messages/s, injector spliced in
	RateImpact   float64 // fractional change (should be ~0)
	WithoutLoss  float64
	WithLoss     float64
	BothDirsSeen bool // the injector observed traffic in both directions
}

// PassThroughOptions parameterizes the experiment.
type PassThroughOptions struct {
	Seed     int64
	Duration sim.Duration
}

// RunPassThrough measures delivered throughput with and without the device.
func RunPassThrough(opts PassThroughOptions) PassThroughResult {
	if opts.Duration == 0 {
		opts.Duration = 2 * sim.Second
	}
	run := func(insert bool) (rate, loss float64, both bool) {
		tb := NewTestbed(TestbedConfig{Seed: opts.Seed, NoInjector: !insert})
		load := tb.StartLoad(LoadConfig{})
		tb.K.RunFor(opts.Duration)
		load.Stop()
		tb.K.RunFor(100 * sim.Millisecond)
		if insert {
			co, _, _ := tb.Injector.Engine(DirOutbound).Stats()
			ci, _, _ := tb.Injector.Engine(DirInbound).Stats()
			both = co > 0 && ci > 0
		}
		return float64(load.Received()) / opts.Duration.Seconds(), load.LossRate(), both
	}
	withoutRate, withoutLoss, _ := run(false)
	withRate, withLoss, both := run(true)
	res := PassThroughResult{
		WithoutRate:  withoutRate,
		WithRate:     withRate,
		WithoutLoss:  withoutLoss,
		WithLoss:     withLoss,
		BothDirsSeen: both,
	}
	if withoutRate > 0 {
		res.RateImpact = (withRate - withoutRate) / withoutRate
	}
	return res
}

// FormatPassThrough renders the result.
func FormatPassThrough(r PassThroughResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "delivered rate without injector: %8.1f msgs/s (loss %.2f%%)\n", r.WithoutRate, 100*r.WithoutLoss)
	fmt.Fprintf(&b, "delivered rate with injector:    %8.1f msgs/s (loss %.2f%%)\n", r.WithRate, 100*r.WithLoss)
	fmt.Fprintf(&b, "rate impact: %+.3f%% (paper: no observable impact)\n", 100*r.RateImpact)
	fmt.Fprintf(&b, "bi-directional pass-through observed: %v\n", r.BothDirsSeen)
	return b.String()
}
