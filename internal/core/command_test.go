package core

import (
	"strings"
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

func newTestDecoder(t *testing.T) (*Device, *CommandDecoder) {
	t.Helper()
	k := sim.NewKernel(1)
	dev := NewDevice(k, DeviceConfig{Name: "inj"})
	return dev, NewCommandDecoder(dev)
}

func TestCommandModeAndCompare(t *testing.T) {
	dev, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"MODE ON",
		"COMPARE -- -- 18 18",
		"CORRUPT REPLACE -- -- 19 --",
	} {
		if resp := dec.Exec(cmd); resp != "OK" {
			t.Fatalf("%q -> %q", cmd, resp)
		}
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.Match != MatchOn {
		t.Errorf("Match = %v", cfg.Match)
	}
	if cfg.CompareData[2] != phy.DataChar(0x18) || cfg.CompareMask[2] != MaskFull {
		t.Errorf("compare[2] = %v/%v", cfg.CompareData[2], cfg.CompareMask[2])
	}
	if cfg.CompareMask[0] != MaskNone {
		t.Errorf("compare[0] mask = %v, want don't-care", cfg.CompareMask[0])
	}
	if cfg.Corrupt != CorruptReplace || cfg.CorruptData[2] != phy.DataChar(0x19) {
		t.Errorf("corrupt config wrong: %+v", cfg)
	}
	if cfg.CorruptMask[3] != MaskNone {
		t.Errorf("corrupt[3] must pass unchanged")
	}
}

func TestCommandControlSymbolEntries(t *testing.T) {
	dev, dec := newTestDecoder(t)
	// The Table 4 operation: replace STOP with GO.
	if resp := dec.Exec("COMPARE -- -- -- C0F"); resp != "OK" {
		t.Fatal(resp)
	}
	if resp := dec.Exec("CORRUPT REPLACE -- -- -- C03"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CompareData[3] != phy.ControlChar(0x0F) {
		t.Errorf("compare[3] = %v, want C:0f", cfg.CompareData[3])
	}
	if cfg.CorruptData[3] != phy.ControlChar(0x03) {
		t.Errorf("corrupt[3] = %v, want C:03", cfg.CorruptData[3])
	}
}

func TestCommandDataOnlyMaskEntry(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("COMPARE X0F -- -- --"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CompareMask[0] != MaskData {
		t.Errorf("mask = %#x, want MaskData", cfg.CompareMask[0])
	}
}

func TestCommandToggleDCEntry(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("CORRUPT TOGGLE -- -- -- !01"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CorruptData[3] != phy.Character(0x101) {
		t.Errorf("toggle vector = %#x, want 0x101", uint16(cfg.CorruptData[3]))
	}
}

func TestCommandDirSelectsEngine(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("DIR R")
	dec.Exec("MODE ONCE")
	if dev.Engine(RightToLeft).Config().Match != MatchOnce {
		t.Error("R engine not configured")
	}
	if dev.Engine(LeftToRight).Config().Match != MatchOff {
		t.Error("L engine unexpectedly configured")
	}
	dec.Exec("DIR L")
	dec.Exec("MODE ON")
	if dev.Engine(LeftToRight).Config().Match != MatchOn {
		t.Error("L engine not configured after DIR L")
	}
}

func TestCommandErrors(t *testing.T) {
	_, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"BOGUS",
		"MODE",
		"MODE MAYBE",
		"DIR X",
		"COMPARE 18 18", // wrong arity
		"COMPARE ZZ -- -- --",
		"CORRUPT SCRAMBLE -- -- -- --",
		"CORRUPT REPLACE -- -- -- C0FF", // bad entry length
		"CRC SOMETIMES",
	} {
		if resp := dec.Exec(cmd); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, resp)
		}
	}
	total, errs := dec.Commands()
	if total != 9 || errs != 9 {
		t.Errorf("commands=%d errors=%d, want 9/9", total, errs)
	}
}

func TestCommandStatAndReset(t *testing.T) {
	dev, dec := newTestDecoder(t)
	eng := dev.Engine(LeftToRight)
	_ = eng.Process(phy.DataChars([]byte{1, 2, 3}))
	resp := dec.Exec("STAT")
	if !strings.Contains(resp, "chars=3") {
		t.Errorf("STAT = %q, want chars=3", resp)
	}
	dec.Exec("MODE ON")
	dec.Exec("RESET")
	if eng.Config().Match != MatchOff {
		t.Error("RESET did not clear config")
	}
}

func TestCommandByteStreamAssembly(t *testing.T) {
	_, dec := newTestDecoder(t)
	var out []byte
	dec.SetOutput(func(b byte) { out = append(out, b) })
	for _, b := range []byte("MODE ON\r\nINJECT\n") {
		dec.InputByte(b)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 || lines[0] != "OK" || lines[1] != "OK" {
		t.Errorf("responses = %q", lines)
	}
}

func TestCommandLowercaseAccepted(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("mode once"); resp != "OK" {
		t.Fatal(resp)
	}
	if dev.Engine(LeftToRight).Config().Match != MatchOnce {
		t.Error("lowercase command not applied")
	}
}

func TestCommandInjectNow(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("CORRUPT TOGGLE -- -- -- FF")
	dec.Exec("INJECT")
	eng := dev.Engine(LeftToRight)
	out := append(eng.Process(phy.DataChars([]byte{0x00})), eng.Flush()...)
	if out[0].Byte() != 0xFF {
		t.Errorf("inject-now did not corrupt: %v", out[0])
	}
}

func TestCommandCapReportsEvents(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("MODE ON")
	dec.Exec("COMPARE -- -- -- AA")
	dec.Exec("CORRUPT TOGGLE -- -- -- 01")
	eng := dev.Engine(LeftToRight)
	stream := append([]byte{1, 2, 0xAA}, make([]byte, DefaultCapturePost+4)...)
	_ = eng.Process(phy.DataChars(stream))
	resp := dec.Exec("CAP")
	if !strings.Contains(resp, "events=1") {
		t.Errorf("CAP = %q, want events=1", resp)
	}
}
