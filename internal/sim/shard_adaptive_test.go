package sim

import (
	"math/rand"
	"testing"
)

// The adaptive-horizon equivalence harness: a mesh of forwarding nodes whose
// traffic is a pure function of the seed, runnable at any shard count. Each
// reception re-forwards the message over a deterministic pseudo-random walk,
// so the full per-node observation history must be byte-identical no matter
// how the nodes are partitioned — the window schedule may differ, the
// executed history may not.

const meshLat = 50 * Nanosecond // minimum cable latency = group lookahead

type meshRec struct {
	at    Time
	state uint64
	hops  int
}

type meshMsg struct {
	dst   int
	state uint64
	hops  int
}

type meshExt struct {
	dst  int
	at   Time
	rank uint32
	seq  uint64
	msg  *meshMsg
}

type meshNode struct {
	net *meshNet
	id  int
	// trace is only appended by the goroutine owning this node's kernel.
	trace []meshRec
}

type meshNet struct {
	g       *ShardGroup
	kernels []*Kernel
	shardOf []int
	nodes   []*meshNode
	seqs    []uint64 // per directed cable src*N+dst, bumped by src's owner
	// outbox[s] holds shard s's cross-shard sends; only s's owner appends,
	// only the barrier exchange drains.
	outbox [][]meshExt
}

func meshLCG(s uint64) uint64 { return s*6364136223846793005 + 1442695040888963407 }

func (n *meshNode) receive(arg any) {
	m := arg.(*meshMsg)
	now := n.net.kernels[n.net.shardOf[n.id]].Now()
	n.trace = append(n.trace, meshRec{at: now, state: m.state, hops: m.hops})
	if m.hops == 0 {
		return
	}
	next := meshLCG(m.state)
	dst := int(next % uint64(len(n.net.nodes)))
	delay := meshLat * Duration(1+(next>>16)%3)
	n.net.send(n.id, dst, now+delay, next, m.hops-1)
}

// send routes a message from node src to node dst arriving at `at`. Same
// shard: scheduled synchronously, exactly like phy.DirectEnd. Cross shard:
// buffered for the barrier exchange, exactly like phy.ChannelEnd. Either
// way the (rank, seq) stamp comes from the directed cable, so the kernel's
// external total order is partition-independent.
func (net *meshNet) send(src, dst int, at Time, state uint64, hops int) {
	cable := src*len(net.nodes) + dst
	rank := uint32(cable)
	seq := net.seqs[cable]
	net.seqs[cable]++
	msg := &meshMsg{dst: dst, state: state, hops: hops}
	if net.shardOf[src] == net.shardOf[dst] {
		net.kernels[net.shardOf[dst]].AtExt(at, rank, seq, net.nodes[dst].receive, msg)
		return
	}
	s := net.shardOf[src]
	net.outbox[s] = append(net.outbox[s], meshExt{dst: dst, at: at, rank: rank, seq: seq, msg: msg})
}

func (net *meshNet) exchange() int {
	n := 0
	for s := range net.outbox {
		for _, e := range net.outbox[s] {
			net.kernels[net.shardOf[e.dst]].AtExt(e.at, e.rank, e.seq, net.nodes[e.dst].receive, e.msg)
		}
		n += len(net.outbox[s])
		net.outbox[s] = net.outbox[s][:0]
	}
	return n
}

// runMesh builds the mesh at the given shard count, injects the seeded
// initial traffic, runs to quiescence, and returns the per-node traces.
func runMesh(t *testing.T, seed int64, numNodes, shards int) ([][]meshRec, Time, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := &meshNet{
		kernels: make([]*Kernel, shards),
		shardOf: make([]int, numNodes),
		nodes:   make([]*meshNode, numNodes),
		seqs:    make([]uint64, numNodes*numNodes+numNodes),
		outbox:  make([][]meshExt, shards),
	}
	for s := range net.kernels {
		net.kernels[s] = NewKernel(int64(s) + 1)
	}
	for i := range net.nodes {
		net.shardOf[i] = i % shards
		net.nodes[i] = &meshNode{net: net, id: i}
	}
	// Initial traffic: a few seeded messages per node on that node's private
	// injector cable (ranks above the mesh cables). The shape is drawn from
	// rng before any sharding decision, so it is identical at every count.
	for i := 0; i < numNodes; i++ {
		for m := 0; m < 4; m++ {
			at := Time(rng.Int63n(int64(40 * meshLat)))
			state := rng.Uint64()
			hops := 3 + rng.Intn(5)
			cable := numNodes*numNodes + i
			seq := net.seqs[cable]
			net.seqs[cable]++
			net.kernels[net.shardOf[i]].AtExt(at, uint32(cable), seq,
				net.nodes[i].receive, &meshMsg{dst: i, state: state, hops: hops})
		}
	}
	// Uniform distance matrix at the minimum cable latency: every pair is
	// assumed reachable, which is always conservative.
	dist := make([][]Duration, shards)
	for i := range dist {
		dist[i] = make([]Duration, shards)
		for j := range dist[i] {
			dist[i][j] = meshLat
		}
	}
	net.g = NewShardGroup(net.kernels, meshLat)
	defer net.g.Close()
	net.g.SetDistanceMatrix(dist)
	net.g.SetExchange(net.exchange)
	if !net.g.Run(Second) {
		t.Fatalf("seed %d shards %d: mesh did not drain", seed, shards)
	}
	traces := make([][]meshRec, numNodes)
	for i, n := range net.nodes {
		traces[i] = n.trace
	}
	return traces, net.g.Now(), net.g.Processed()
}

// TestShardGroupAdaptiveEquivalence is the randomized form of the fabric
// equivalence gates: for a handful of seeds, the per-node observation
// history, final time, and executed-event count of the mesh must be
// identical at shard counts 1, 2, and 3 under adaptive horizons.
func TestShardGroupAdaptiveEquivalence(t *testing.T) {
	const numNodes = 6
	for _, seed := range []int64{1, 7, 42, 1001} {
		want, wantNow, wantProcessed := runMesh(t, seed, numNodes, 1)
		for _, shards := range []int{2, 3} {
			got, gotNow, gotProcessed := runMesh(t, seed, numNodes, shards)
			if gotNow != wantNow {
				t.Errorf("seed %d shards %d: Now = %v, want %v", seed, shards, gotNow, wantNow)
			}
			if gotProcessed != wantProcessed {
				t.Errorf("seed %d shards %d: Processed = %d, want %d", seed, shards, gotProcessed, wantProcessed)
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("seed %d shards %d node %d: %d receptions, want %d",
						seed, shards, i, len(got[i]), len(want[i]))
				}
				for r := range want[i] {
					if got[i][r] != want[i][r] {
						t.Fatalf("seed %d shards %d node %d rec %d: %+v, want %+v",
							seed, shards, i, r, got[i][r], want[i][r])
					}
				}
			}
		}
	}
}

// A shard no pending chain can influence must sprint to the limit in a
// single window instead of being dragged through lockstep barriers.
func TestShardGroupAdaptiveSprint(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	n := 0
	for at := Time(0); at < 1000*Nanosecond; at += 10 * Nanosecond {
		kernels[0].At(at, func() { n++ })
	}
	g := NewShardGroup(kernels, 50*Nanosecond)
	defer g.Close()
	// Shard 0 influences shard 1 but nothing influences shard 0 (no cycle
	// back), so shard 0's horizon is always the limit.
	g.SetDistanceMatrix([][]Duration{
		{0, 50 * Nanosecond},
		{0, 0},
	})
	if !g.Run(Second) {
		t.Fatal("did not drain")
	}
	if n != 100 {
		t.Fatalf("executed %d events, want 100", n)
	}
	if g.Windows() != 1 {
		t.Fatalf("Windows = %d, want 1 (uninfluenced shard should sprint)", g.Windows())
	}
}

// Run must pick up deliveries already buffered in the exchange before the
// first window: a group whose kernels are empty but whose outboxes are not
// has work to do.
func TestShardGroupDrainBufferedExchange(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	received := 0
	pending := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	g := NewShardGroup(kernels, 50*Nanosecond)
	defer g.Close()
	g.SetExchange(func() int {
		n := len(pending)
		for i, at := range pending {
			kernels[1].AtExt(at, 0, uint64(i), func(any) { received++ }, nil)
		}
		pending = pending[:0]
		return n
	})
	if !g.Run(Second) {
		t.Fatal("did not drain")
	}
	if received != 3 {
		t.Fatalf("received %d buffered deliveries, want 3", received)
	}
	if g.Exchanged() != 3 {
		t.Fatalf("Exchanged = %d, want 3", g.Exchanged())
	}
}

// A limit landing inside a window truncates the horizon: events at the limit
// execute, events past it survive, and every clock parks exactly at the
// limit until a later Run picks the remainder up.
func TestShardGroupLimitMidWindow(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	var fired []Time
	for _, at := range []Time{0, 50 * Nanosecond, 60 * Nanosecond} {
		at := at
		kernels[0].At(at, func() { fired = append(fired, at) })
	}
	g := NewShardGroup(kernels, 100*Nanosecond)
	defer g.Close()
	// Lookahead 100ns anchors the first window at [0, 99], but the limit
	// cuts it to [0, 50].
	if g.Run(50 * Nanosecond) {
		t.Fatal("claimed to drain with the 60ns event pending")
	}
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 50*Nanosecond {
		t.Fatalf("fired %v, want [0 50ns] (limit is inclusive)", fired)
	}
	for i, k := range kernels {
		if k.Now() != 50*Nanosecond {
			t.Fatalf("kernel %d clock %v, want the 50ns limit", i, k.Now())
		}
	}
	if !g.Run(Second) {
		t.Fatal("resumed run did not drain")
	}
	if len(fired) != 3 || fired[2] != 60*Nanosecond {
		t.Fatalf("after resume fired %v, want the 60ns event last", fired)
	}
	// Drained: both clocks align at the global last-event time.
	for i, k := range kernels {
		if k.Now() != 60*Nanosecond {
			t.Fatalf("kernel %d clock %v, want 60ns after drain", i, k.Now())
		}
	}
}

// Close is idempotent; any Run after Close panics instead of deadlocking on
// the departed workers.
func TestShardGroupCloseThenReuse(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2), NewKernel(3)}
	g := NewShardGroup(kernels, 50*Nanosecond)
	g.Close()
	g.Close() // second close is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	g.Run(Second)
}

func TestShardGroupDistanceMatrixValidation(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	g := NewShardGroup(kernels, 50*Nanosecond)
	defer g.Close()
	mustPanic := func(name string, dist [][]Duration) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		g.SetDistanceMatrix(dist)
	}
	mustPanic("wrong shard count", [][]Duration{{0}})
	mustPanic("not square", [][]Duration{{0, 0}, {0}})
	mustPanic("entry below lookahead", [][]Duration{
		{0, 10 * Nanosecond},
		{0, 0},
	})
}
