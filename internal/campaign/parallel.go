package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunTrials executes fn(0) … fn(n-1) across up to workers goroutines and
// returns the results in trial order.
//
// Determinism: campaign trials are embarrassingly parallel by construction —
// every trial builds its own Testbed around its own sim.Kernel, seeded from
// the campaign seed and the trial index alone, and shares no mutable state
// with its siblings. Scheduling therefore cannot influence any result, only
// the wall-clock order in which results are produced, and reassembling them
// by index makes parallel output byte-identical to serial. The contract fn
// must honor: derive all randomness from the trial index (never from a
// rand.Rand captured outside fn — the race test pins this), and do not touch
// shared state.
//
// workers <= 1 runs the trials inline on the calling goroutine, reproducing
// the pre-parallel behavior exactly. A panic in any trial is re-raised on
// the calling goroutine once the pool has drained.
func RunTrials[T any](n, workers int, fn func(trial int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers <= 1 || n == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("campaign: trial panicked: %v", panicV))
	}
	return out
}

// DefaultWorkers is the worker count campaigns use when none is specified:
// one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
