package phy

import (
	"sync/atomic"

	"netfi/internal/sim"
)

// Cross-shard delivery channels. A sharded fabric replaces a cross-shard
// cable's direct kernel scheduling with a ChannelEnd sink: the sending
// shard's link computes the arrival time as usual, but the burst is
// buffered in the sender's Outbox instead of entering a kernel. At each
// barrier the coordinator drains all outboxes with ExchangeSet.Exchange,
// which injects every buffered delivery into its destination kernel as an
// externally-ordered event (sim.Kernel.AtExt) stamped with the sending
// link's rank and per-link sequence.
//
// Determinism does not depend on injection order: the kernel fires events
// that share an arrival time in (external before local, then rank, then
// sequence) order, a total order carried by the events themselves. The
// execution order at every kernel is therefore a pure function of the
// traffic — not of which barrier a delivery happened to cross, nor of the
// partitioning — which is what makes an N-shard run byte-identical to a
// 1-shard run. Same-shard cables skip the buffering entirely via a
// DirectEnd, which schedules the same externally-ordered event immediately.

// DeliverySink receives a link's computed deliveries in place of the local
// kernel. Implementations either buffer them for a later exchange
// (ChannelEnd) or schedule them directly (DirectEnd).
type DeliverySink interface {
	Deliver(arrival sim.Time, dst Receiver, chars []Character)
}

// Delivery is one buffered cross-shard burst.
type Delivery struct {
	At    sim.Time
	Dst   Receiver
	Chars []Character
	Rank  uint32 // the sending link's global rank (unique per link)
	Seq   uint64 // per-link send sequence; (Rank, Seq) is unique
	K     *sim.Kernel
}

// Outbox buffers deliveries originating from one shard between barriers.
// Only that shard's goroutine appends to it during a window; the barrier
// handoff publishes it to the coordinator. An Outbox belongs to an
// ExchangeSet, whose shared counter it bumps on the empty -> non-empty
// transition so the coordinator can skip barriers with no traffic.
type Outbox struct {
	pending  []Delivery
	nonEmpty *atomic.Int32
	slack    int // consecutive exchanges that used < 1/4 of capacity
}

// Len reports the number of buffered deliveries.
func (o *Outbox) Len() int { return len(o.pending) }

func (o *Outbox) push(d Delivery) {
	if len(o.pending) == 0 && o.nonEmpty != nil {
		o.nonEmpty.Add(1)
	}
	o.pending = append(o.pending, d)
}

// drain moves the buffered deliveries into all, clears the backing array's
// pointers for the garbage collector, and applies the shrink policy: a
// burst of traffic can balloon the array, so when many consecutive
// exchanges use less than a quarter of its capacity the array is recycled
// at half size. Steady-state exchanges stay allocation-free.
func (o *Outbox) drain(all []Delivery) []Delivery {
	n := len(o.pending)
	if n == 0 {
		return all
	}
	all = append(all, o.pending...)
	clear(o.pending)
	o.pending = o.pending[:0]
	if c := cap(o.pending); c >= 64 && n < c/4 {
		if o.slack++; o.slack >= 16 {
			o.pending = make([]Delivery, 0, c/2)
			o.slack = 0
		}
	} else {
		o.slack = 0
	}
	return all
}

// ChannelEnd is the DeliverySink for one direction of a cross-shard cable.
// It stamps each delivery with the link's rank and a monotone sequence and
// appends it to the sending shard's outbox, bound for the receiving shard's
// kernel.
type ChannelEnd struct {
	out  *Outbox
	dstK *sim.Kernel
	rank uint32
	seq  uint64
}

// NewChannelEnd returns a sink that buffers into out, injecting into dstK at
// exchange time. Rank must be unique across all channel ends of a fabric
// and assigned deterministically from topology alone.
func NewChannelEnd(out *Outbox, dstK *sim.Kernel, rank uint32) *ChannelEnd {
	return &ChannelEnd{out: out, dstK: dstK, rank: rank}
}

// Deliver implements DeliverySink.
func (c *ChannelEnd) Deliver(arrival sim.Time, dst Receiver, chars []Character) {
	c.out.push(Delivery{
		At: arrival, Dst: dst, Chars: chars, Rank: c.rank, Seq: c.seq, K: c.dstK,
	})
	c.seq++
}

// DirectEnd is the DeliverySink for one direction of a same-shard cable in
// a sharded fabric. The delivery never leaves the shard, so it is scheduled
// into the local kernel immediately — but as the same externally-ordered
// event a barrier exchange would have produced, so execution order is
// identical to a run where the cable crossed shards.
type DirectEnd struct {
	k    *sim.Kernel
	rank uint32
	seq  uint64
}

// NewDirectEnd returns a sink that schedules into k directly. Rank shares
// the ChannelEnd rank space: unique per channel end, deterministic from
// topology alone.
func NewDirectEnd(k *sim.Kernel, rank uint32) *DirectEnd {
	return &DirectEnd{k: k, rank: rank}
}

// Deliver implements DeliverySink.
func (d *DirectEnd) Deliver(arrival sim.Time, dst Receiver, chars []Character) {
	ScheduleReceiveExt(d.k, arrival, d.rank, d.seq, dst, chars)
	d.seq++
}

// ExchangeSet owns one outbox per shard and drains them at barriers. The
// non-empty counter lets Exchange return without touching any outbox when
// no shard buffered anything since the last barrier — the common case on
// windows that carried only intra-shard traffic.
type ExchangeSet struct {
	boxes    []*Outbox
	nonEmpty atomic.Int32
	scratch  []Delivery
}

// NewExchangeSet returns a set with one empty outbox per shard.
func NewExchangeSet(shards int) *ExchangeSet {
	s := &ExchangeSet{boxes: make([]*Outbox, shards)}
	for i := range s.boxes {
		s.boxes[i] = &Outbox{nonEmpty: &s.nonEmpty}
	}
	return s
}

// Box returns shard i's outbox.
func (s *ExchangeSet) Box(i int) *Outbox { return s.boxes[i] }

// Exchange drains every outbox, injecting all buffered deliveries into
// their destination kernels, and reports how many deliveries moved. It must
// run at a barrier, with every shard quiescent, and every delivery's
// arrival must be at or after its destination kernel's clock (the
// conservative window horizons guarantee this; the kernel panics
// otherwise). Injection needs no sort: the (rank, seq) stamps order the
// events inside each kernel.
func (s *ExchangeSet) Exchange() int {
	if s.nonEmpty.Load() == 0 {
		return 0
	}
	s.nonEmpty.Store(0)
	all := s.scratch[:0]
	for _, b := range s.boxes {
		all = b.drain(all)
	}
	for i := range all {
		d := &all[i]
		ScheduleReceiveExt(d.K, d.At, d.Rank, d.Seq, d.Dst, d.Chars)
		d.Dst, d.Chars, d.K = nil, nil, nil
	}
	n := len(all)
	s.scratch = all[:0]
	return n
}
