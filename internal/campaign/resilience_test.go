package campaign

import (
	"reflect"
	"testing"
)

// One trial per fault family, recovery on and off, same seeds.
func runResilienceOnce(seed int64) ResilienceResult {
	return RunResilience(ResilienceOptions{Seed: seed, Trials: 7, Messages: 4})
}

func TestResilienceEveryTrialClassified(t *testing.T) {
	r := runResilienceOnce(7)
	for _, set := range [][]ResilienceTrial{r.Trials, r.Baseline} {
		if len(set) != 7 {
			t.Fatalf("sweep has %d trials, want 7", len(set))
		}
		for _, tr := range set {
			if tr.Outcome == "" {
				t.Errorf("trial %d (%s) unclassified", tr.ID, tr.Family)
			}
			if tr.Quiesce == "" {
				t.Errorf("trial %d (%s) has no quiescence verdict", tr.ID, tr.Family)
			}
		}
	}
}

func TestResilienceRecoveryAbsorbsFaults(t *testing.T) {
	r := runResilienceOnce(7)
	counts := CountOutcomes(r.Trials)
	if counts[OutcomeHung] != 0 {
		t.Errorf("recovery-on sweep hung %d trials:\n%s",
			counts[OutcomeHung], FormatResilience(r))
	}
	good := counts[OutcomeMasked] + counts[OutcomeRetransmitted] + counts[OutcomeResetRecovered]
	if good <= len(r.Trials)/2 {
		t.Errorf("only %d/%d trials absorbed:\n%s", good, len(r.Trials), FormatResilience(r))
	}
	if counts[OutcomeResetRecovered] == 0 {
		t.Errorf("no trial needed a link reset — the wedge family should:\n%s",
			FormatResilience(r))
	}
	// Every recovery-on trial must deliver or give up — never leave work
	// outstanding (the ISSUE's zero-unterminated-hangs requirement).
	for _, tr := range r.Trials {
		if tr.Delivered+tr.GaveUp != uint64(tr.Sent) {
			t.Errorf("trial %d (%s): %d delivered + %d gave up != %d sent",
				tr.ID, tr.Family, tr.Delivered, tr.GaveUp, tr.Sent)
		}
	}
}

func TestResilienceBaselineReproducesPaperHang(t *testing.T) {
	r := runResilienceOnce(7)
	counts := CountOutcomes(r.Baseline)
	if counts[OutcomeHung] == 0 {
		t.Fatalf("recovery-off rerun produced no hang:\n%s", FormatResilience(r))
	}
	for _, tr := range r.Baseline {
		if tr.Outcome != OutcomeHung {
			continue
		}
		// The paper's signature: a switch output still owned after the
		// network went quiet, or progress frozen with events pending.
		if tr.HeldOutputs == 0 && tr.Quiesce == "drained" {
			t.Errorf("trial %d (%s) hung without a held path or stall", tr.ID, tr.Family)
		}
		if tr.RecoveryEvents != 0 {
			t.Errorf("trial %d: recovery events fired with recovery disabled", tr.ID)
		}
	}
}

func TestResilienceWedgeTrialPair(t *testing.T) {
	// Trial 2 is the gap-drop-tail family: with recovery it must complete
	// via a reset; without, it must reproduce the hang on the same seed.
	r := runResilienceOnce(7)
	on, off := r.Trials[2], r.Baseline[2]
	if on.Family != "gap-drop-tail" || off.Family != "gap-drop-tail" {
		t.Fatalf("trial 2 families = %q/%q", on.Family, off.Family)
	}
	if on.Command != off.Command || on.ArmAt != off.ArmAt {
		t.Errorf("paired trials diverged: %q@%v vs %q@%v",
			on.Command, on.ArmAt, off.Command, off.ArmAt)
	}
	if on.Outcome != OutcomeResetRecovered {
		t.Errorf("recovery-on wedge trial = %v, want reset-recovered", on.Outcome)
	}
	if on.RecoveryEvents == 0 {
		t.Error("recovery-on wedge trial recorded no reset activity")
	}
	if off.Outcome != OutcomeHung {
		t.Errorf("recovery-off wedge trial = %v, want hung", off.Outcome)
	}
	if off.HeldOutputs == 0 {
		t.Error("recovery-off wedge left no held switch output")
	}
}

func TestResilienceDeterministicPerSeed(t *testing.T) {
	a := runResilienceOnce(21)
	b := runResilienceOnce(21)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different sweeps:\n%s\nvs\n%s",
			FormatResilience(a), FormatResilience(b))
	}
	c := runResilienceOnce(22)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical sweeps")
	}
}
