package netmap

import (
	"strings"
	"testing"

	"netfi/internal/myrinet"
)

func snap(inconsistent bool, macs ...byte) *myrinet.Snapshot {
	s := &myrinet.Snapshot{Mapper: 3, Round: 1, Inconsistent: inconsistent}
	for i, m := range macs {
		e := myrinet.MapEntry{
			MAC: myrinet.MAC{0x06, 0, 0, 0, 0, m},
			ID:  myrinet.NodeID(i + 1),
		}
		if i == 0 {
			e.Route = []byte{myrinet.RouteFinal}
		} else {
			e.Route = myrinet.RouteTo(i)
		}
		s.Entries = append(s.Entries, e)
	}
	return s
}

func TestRenderConsistentMap(t *testing.T) {
	out := Render(snap(false, 0x11, 0x12, 0x13))
	if !strings.Contains(out, "CONSISTENT") {
		t.Errorf("missing verdict: %q", out)
	}
	if !strings.Contains(out, "06:00:00:00:00:12") {
		t.Errorf("missing node: %q", out)
	}
	if !strings.Contains(out, "local") {
		t.Errorf("mapper not shown as local: %q", out)
	}
	if !strings.Contains(out, "p2") {
		t.Errorf("port labels missing: %q", out)
	}
}

func TestRenderInconsistentMap(t *testing.T) {
	out := Render(snap(true, 0x11))
	if !strings.Contains(out, "INCONSISTENT") {
		t.Errorf("missing verdict: %q", out)
	}
}

func TestRenderNil(t *testing.T) {
	if got := Render(nil); !strings.Contains(got, "no map") {
		t.Errorf("Render(nil) = %q", got)
	}
}

func TestDiffReportsLossAndGain(t *testing.T) {
	before := snap(false, 0x11, 0x12, 0x13)
	after := snap(true, 0x11, 0x77)
	out := Diff(before, after)
	if !strings.Contains(out, "lost:") || !strings.Contains(out, "gained:") {
		t.Errorf("diff missing changes: %q", out)
	}
	if !strings.Contains(out, "consistency: true -> false") {
		t.Errorf("diff missing consistency transition: %q", out)
	}
}

func TestDiffNoChange(t *testing.T) {
	s := snap(false, 0x11, 0x12)
	if out := Diff(s, s); !strings.Contains(out, "no change") {
		t.Errorf("Diff(s,s) = %q", out)
	}
}
