package core

import (
	"fmt"
	"strconv"
	"strings"

	"netfi/internal/rules"
)

// The RULE command family programs the multi-rule trigger engine:
//
//	RULE ADD <id> [PRIO <p>] [MODE <m>] [ACT <a>] PAT <e...> [VEC <e...>]
//	RULE DEL <id>
//	RULE LIST
//	RULE CLEAR
//
// where
//
//	<m>   ON | OFF | ONCE | AFTER:<n> | WIN:<w>      (default ON)
//	<a>   CAP | TOGGLE | REPLACE | DROP[:<k>]        (default CAP)
//	PAT   compare entries (as COMPARE) plus gap tokens:
//	        G<n>  up to n arbitrary characters before the next entry
//	        G*    any number of arbitrary characters
//	VEC   corrupt vector, aligned to the newest characters (rightmost
//	      entry on the matching character): toggle entries for TOGGLE,
//	      replace entries for REPLACE; invalid for CAP and DROP
//
// Adding a rule with an existing id replaces it in place; any change to the
// rule set recompiles and re-arms every rule.
func (c *CommandDecoder) execRule(fields []string, eng *Engine) (string, error) {
	if len(fields) == 0 {
		return "", fmt.Errorf("RULE needs ADD, DEL, LIST or CLEAR")
	}
	switch fields[0] {
	case "ADD":
		r, err := parseRuleAdd(fields[1:])
		if err != nil {
			return "", err
		}
		if err := eng.AddRule(r); err != nil {
			return "", err
		}
		return "", nil

	case "DEL":
		if len(fields) != 2 {
			return "", fmt.Errorf("RULE DEL needs an id")
		}
		id, err := parseRuleID(fields[1])
		if err != nil {
			return "", err
		}
		if !eng.DeleteRule(id) {
			return "", fmt.Errorf("no rule %d", id)
		}
		return "", nil

	case "LIST":
		var b strings.Builder
		rs := eng.Rules()
		if prog := eng.RuleProgram(); prog != nil {
			st := prog.Stats()
			fmt.Fprintf(&b, "RULES dir=%v count=%d mode=%s states=%d", c.dir, st.Rules, st.Mode, st.DFAStates+st.NFAStates)
		} else {
			fmt.Fprintf(&b, "RULES dir=%v count=0", c.dir)
		}
		for i := range rs {
			m, f, _ := eng.RuleCounters(rs[i].ID)
			fmt.Fprintf(&b, "\nRULE[%d] prio=%d mode=%v act=%v steps=%d matches=%d fires=%d",
				rs[i].ID, rs[i].Priority, rs[i].Mode, rs[i].Action, len(rs[i].Steps), m, f)
		}
		return b.String(), nil

	case "CLEAR":
		eng.ClearRules()
		return "", nil

	default:
		return "", fmt.Errorf("unknown RULE subcommand %q", fields[0])
	}
}

func parseRuleID(s string) (int, error) {
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad rule id %q", s)
	}
	return id, nil
}

// parseRuleAdd assembles a rules.Rule from the keyword sections following
// RULE ADD. PAT is mandatory; VEC is mandatory exactly when the action
// needs a corrupt vector.
func parseRuleAdd(fields []string) (rules.Rule, error) {
	var r rules.Rule
	r.Mode = rules.ModeOn
	if len(fields) == 0 {
		return r, fmt.Errorf("RULE ADD needs an id")
	}
	id, err := parseRuleID(fields[0])
	if err != nil {
		return r, err
	}
	r.ID = id
	fields = fields[1:]

	var pat, vec []string
	for i := 0; i < len(fields); {
		switch kw := fields[i]; kw {
		case "PRIO":
			if i+1 >= len(fields) {
				return r, fmt.Errorf("PRIO needs a value")
			}
			p, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return r, fmt.Errorf("bad priority %q", fields[i+1])
			}
			r.Priority = p
			i += 2
		case "MODE":
			if i+1 >= len(fields) {
				return r, fmt.Errorf("MODE needs a value")
			}
			if err := parseRuleMode(&r, fields[i+1]); err != nil {
				return r, err
			}
			i += 2
		case "ACT":
			if i+1 >= len(fields) {
				return r, fmt.Errorf("ACT needs a value")
			}
			if err := parseRuleAction(&r, fields[i+1]); err != nil {
				return r, err
			}
			i += 2
		case "PAT", "VEC":
			j := i + 1
			for j < len(fields) && !isRuleKeyword(fields[j]) {
				j++
			}
			if kw == "PAT" {
				pat = fields[i+1 : j]
			} else {
				vec = fields[i+1 : j]
			}
			i = j
		default:
			return r, fmt.Errorf("unknown RULE ADD keyword %q", kw)
		}
	}

	if len(pat) == 0 {
		return r, fmt.Errorf("RULE ADD needs a PAT section")
	}
	if err := parseRulePattern(&r, pat); err != nil {
		return r, err
	}
	if err := parseRuleVector(&r, vec); err != nil {
		return r, err
	}
	return r, nil
}

func isRuleKeyword(f string) bool {
	switch f {
	case "PRIO", "MODE", "ACT", "PAT", "VEC":
		return true
	}
	return false
}

func parseRuleMode(r *rules.Rule, f string) error {
	switch {
	case f == "ON":
		r.Mode = rules.ModeOn
	case f == "OFF":
		r.Mode = rules.ModeOff
	case f == "ONCE":
		r.Mode = rules.ModeOnce
	case strings.HasPrefix(f, "AFTER:"), strings.HasPrefix(f, "WIN:"):
		kind, val, _ := strings.Cut(f, ":")
		n, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return fmt.Errorf("bad mode parameter %q", f)
		}
		if kind == "AFTER" {
			r.Mode = rules.ModeAfterN
		} else {
			r.Mode = rules.ModeWindow
		}
		r.N = n
	default:
		return fmt.Errorf("unknown rule mode %q", f)
	}
	return nil
}

func parseRuleAction(r *rules.Rule, f string) error {
	switch {
	case f == "CAP":
		r.Action = rules.ActionCapture
	case f == "TOGGLE":
		r.Action = rules.ActionToggle
	case f == "REPLACE":
		r.Action = rules.ActionReplace
	case f == "DROP":
		r.Action = rules.ActionDrop
		r.DropCount = 1
	case strings.HasPrefix(f, "DROP:"):
		k, err := strconv.Atoi(f[len("DROP:"):])
		if err != nil || k < 1 {
			return fmt.Errorf("bad drop count %q", f)
		}
		r.Action = rules.ActionDrop
		r.DropCount = k
	default:
		return fmt.Errorf("unknown rule action %q", f)
	}
	return nil
}

// parseRulePattern converts PAT tokens into steps. A gap token applies to
// the next compare entry; a trailing gap has nothing to attach to.
func parseRulePattern(r *rules.Rule, pat []string) error {
	gap := 0
	for _, f := range pat {
		if len(f) >= 2 && f[0] == 'G' {
			if gap != 0 {
				return fmt.Errorf("consecutive gap tokens before %q", f)
			}
			if f == "G*" {
				gap = rules.GapUnbounded
				continue
			}
			n, err := strconv.Atoi(f[1:])
			if err != nil || n < 1 {
				return fmt.Errorf("bad gap token %q", f)
			}
			gap = n
			continue
		}
		ch, mask, err := parseCompareEntry(f)
		if err != nil {
			return err
		}
		if len(r.Steps) == 0 && gap != 0 {
			return fmt.Errorf("gap before the first pattern entry")
		}
		r.Steps = append(r.Steps, rules.Step{Sym: uint16(ch), Mask: uint16(mask), Gap: gap})
		gap = 0
	}
	if gap != 0 {
		return fmt.Errorf("trailing gap token in PAT")
	}
	return nil
}

// parseRuleVector converts the VEC tokens for the vectored actions, and
// rejects a VEC on actions that take none.
func parseRuleVector(r *rules.Rule, vec []string) error {
	switch r.Action {
	case rules.ActionToggle:
		if len(vec) == 0 {
			return fmt.Errorf("TOGGLE needs a VEC section")
		}
		for _, f := range vec {
			v, err := parseToggleEntry(f)
			if err != nil {
				return err
			}
			r.CorruptData = append(r.CorruptData, uint16(v))
		}
	case rules.ActionReplace:
		if len(vec) == 0 {
			return fmt.Errorf("REPLACE needs a VEC section")
		}
		for _, f := range vec {
			ch, mask, err := parseReplaceEntry(f)
			if err != nil {
				return err
			}
			r.CorruptData = append(r.CorruptData, uint16(ch))
			r.CorruptMask = append(r.CorruptMask, uint16(mask))
		}
	default:
		if len(vec) != 0 {
			return fmt.Errorf("%v takes no VEC section", r.Action)
		}
	}
	return nil
}
