package core

import (
	"fmt"
	"math/bits"

	"netfi/internal/phy"
	"netfi/internal/rules"
)

// This file is the bridge between the programmable rule engine
// (internal/rules) and the FIFO datapath: rule management (the RULE command
// family lands here) and the application of fired rules' corrupt vectors to
// the queued stream tail.
//
// Vector alignment: a fired rule's corrupt vector (or drop count) applies to
// the newest len(vector) characters of the stream — rightmost vector entry
// on the character that completed the match — so a one-entry vector hits
// exactly the matching character, like the legacy single-pattern corrupt
// hits its own compare window. Vectors are therefore bounded by WindowSize:
// older characters have left the compare register and their FIFO slots are
// no longer addressable, exactly as in the hardware.

// RuleFromConfig expresses the legacy single-pattern register file as an
// equivalent one-rule set: the compare window becomes a gap-free 4-step
// sequence and the corrupt vector keeps its per-position alignment. The two
// paths agree once the compare register has shifted past its idle fill
// (the automaton consumes only real stream symbols).
func RuleFromConfig(id int, cfg Config) rules.Rule {
	r := rules.Rule{ID: id}
	switch cfg.Match {
	case MatchOn:
		r.Mode = rules.ModeOn
	case MatchOnce:
		r.Mode = rules.ModeOnce
	default:
		r.Mode = rules.ModeOff
	}
	for i := 0; i < WindowSize; i++ {
		r.Steps = append(r.Steps, rules.Step{
			Sym:  uint16(cfg.CompareData[i]) & rules.SymbolMask,
			Mask: uint16(cfg.CompareMask[i]) & rules.SymbolMask,
		})
	}
	if cfg.Corrupt == CorruptToggle {
		r.Action = rules.ActionToggle
		for i := 0; i < WindowSize; i++ {
			r.CorruptData = append(r.CorruptData, uint16(cfg.CorruptData[i])&rules.SymbolMask)
		}
	} else {
		r.Action = rules.ActionReplace
		for i := 0; i < WindowSize; i++ {
			r.CorruptData = append(r.CorruptData, uint16(cfg.CorruptData[i])&rules.SymbolMask)
			r.CorruptMask = append(r.CorruptMask, uint16(cfg.CorruptMask[i])&rules.SymbolMask)
		}
	}
	return r
}

// AddRule validates r against both the rule-engine limits and the datapath
// window, recompiles the rule set with r added (replacing any existing rule
// with the same ID, preserving its position), and installs the result.
// Recompiling re-arms every rule: counters, once latches and window clocks
// restart, as reloading the hardware's rule memory would.
func (e *Engine) AddRule(r rules.Rule) error {
	if len(r.CorruptData) > WindowSize {
		return fmt.Errorf("core: rule %d corrupt vector length %d exceeds window size %d", r.ID, len(r.CorruptData), WindowSize)
	}
	if r.Action == rules.ActionDrop && r.DropCount > WindowSize {
		return fmt.Errorf("core: rule %d drop count %d exceeds window size %d", r.ID, r.DropCount, WindowSize)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	list := make([]rules.Rule, 0, len(e.ruleList)+1)
	replaced := false
	for _, old := range e.ruleList {
		if old.ID == r.ID {
			list = append(list, r)
			replaced = true
		} else {
			list = append(list, old)
		}
	}
	if !replaced {
		list = append(list, r)
	}
	prog, err := rules.Compile(list, rules.Options{})
	if err != nil {
		return err
	}
	e.installRules(list, prog)
	return nil
}

// DeleteRule removes the rule with the given ID, reporting whether it
// existed. The remaining set is recompiled and re-armed.
func (e *Engine) DeleteRule(id int) bool {
	list := make([]rules.Rule, 0, len(e.ruleList))
	for _, r := range e.ruleList {
		if r.ID != id {
			list = append(list, r)
		}
	}
	if len(list) == len(e.ruleList) {
		return false
	}
	if len(list) == 0 {
		e.installRules(nil, nil)
		return true
	}
	prog, err := rules.Compile(list, rules.Options{})
	if err != nil {
		// Cannot happen: every rule in the subset already compiled.
		return false
	}
	e.installRules(list, prog)
	return true
}

// ClearRules removes the whole rule set, disabling the rule-engine path.
func (e *Engine) ClearRules() { e.installRules(nil, nil) }

// Rules returns the installed rule set in evaluation order. Read-only.
func (e *Engine) Rules() []rules.Rule { return e.ruleList }

// RuleProgram returns the compiled program, nil when no rules are installed.
func (e *Engine) RuleProgram() *rules.Program { return e.ruleProg }

// RuleCounters reports the match and (mode-gated) fire counters of the rule
// with the given ID.
func (e *Engine) RuleCounters(id int) (matches, fires uint64, ok bool) {
	if e.ruleExec == nil {
		return 0, 0, false
	}
	for i := range e.ruleList {
		if e.ruleList[i].ID == id {
			m, f := e.ruleExec.Counters(i)
			return m, f, true
		}
	}
	return 0, 0, false
}

// SetRuleProgram installs an externally compiled program directly, bypassing
// the per-rule AddRule path — the campaign and benchmark entry point. The
// program's rules must respect the WindowSize vector bound; nil uninstalls.
func (e *Engine) SetRuleProgram(p *rules.Program) {
	if p == nil {
		e.installRules(nil, nil)
		return
	}
	e.installRules(append([]rules.Rule(nil), p.Rules()...), p)
}

// installRules swaps in a compiled rule set and arms a fresh executor.
func (e *Engine) installRules(list []rules.Rule, prog *rules.Program) {
	e.ruleList = list
	e.ruleProg = prog
	if prog != nil {
		e.ruleExec = rules.NewExecutor(prog)
	} else {
		e.ruleExec = nil
	}
	e.batchDirty = true
}

// applyRuleActions applies the fired rules' datapath effects. Corruptions
// are applied in ascending priority so the highest-priority rule's bytes
// land last and win conflicts on the same character; one capture mark and
// one injection are counted per clock cycle that changed the stream,
// however many rules fired together.
func (e *Engine) applyRuleActions(fired uint64) {
	var order [rules.MaxRules]int
	n := 0
	for set := fired; set != 0; set &= set - 1 {
		order[n] = bits.TrailingZeros64(set)
		n++
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && e.ruleList[order[j]].Priority < e.ruleList[order[j-1]].Priority; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	injected := false
	for k := 0; k < n; k++ {
		r := &e.ruleList[order[k]]
		switch r.Action {
		case rules.ActionCapture:
			// Counted by the executor; the capture ring is marked below
			// only when the stream actually changed, so a capture-only
			// rule observes without perturbing.
		case rules.ActionToggle, rules.ActionReplace:
			l := len(r.CorruptData)
			for v := 0; v < l; v++ {
				w := e.window[WindowSize-l+v]
				if w.pos < 0 {
					continue // idle fill: nothing queued to hit
				}
				entry := &e.fifo[w.pos]
				orig := entry.ch
				if r.Action == rules.ActionToggle {
					entry.ch = orig ^ phy.Character(r.CorruptData[v])&phy.Character(MaskFull)
				} else {
					m := phy.Character(r.CorruptMask[v])
					entry.ch = orig&^m | phy.Character(r.CorruptData[v])&m
				}
				if entry.ch != orig {
					if !entry.corrupted && !entry.dropped {
						e.taint++
					}
					entry.corrupted = true
					injected = true
				}
			}
		case rules.ActionDrop:
			for v := 0; v < r.DropCount; v++ {
				w := e.window[WindowSize-1-v]
				if w.pos < 0 {
					continue
				}
				entry := &e.fifo[w.pos]
				if !entry.dropped {
					if !entry.corrupted {
						e.taint++
					}
					entry.dropped = true
					e.dropped++
					injected = true
				}
			}
		}
	}
	if injected {
		e.injections++
		e.capture.MarkInjection()
		if e.onInject != nil {
			e.onInject()
		}
	}
}
