package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"netfi/internal/sim"
)

func TestRunTrialsOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got := RunTrials(7, workers, func(i int) int { return i * i })
		if len(got) != 7 {
			t.Fatalf("workers=%d: got %d results, want 7", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: trial %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunTrialsEachTrialRunsOnce(t *testing.T) {
	var counts [20]atomic.Int64
	RunTrials(len(counts), 4, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("trial %d ran %d times, want 1", i, n)
		}
	}
}

func TestRunTrialsWorkersExceedTrials(t *testing.T) {
	got := RunTrials(2, 16, func(i int) int { return i + 10 })
	if !reflect.DeepEqual(got, []int{10, 11}) {
		t.Fatalf("got %v, want [10 11]", got)
	}
}

func TestWorkerCountClamp(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{n: 3, workers: 64, want: 3},  // never more goroutines than trials
		{n: 1, workers: 8, want: 1},   // single trial runs inline
		{n: 100, workers: 4, want: 4}, // plenty of trials: keep the pool
		{n: 5, workers: 0, want: 1},   // zero/negative means serial
		{n: 5, workers: -2, want: 1},
	}
	for _, c := range cases {
		if got := workerCount(c.n, c.workers); got != c.want {
			t.Errorf("workerCount(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestRunTrialsNoIdleWorkers observes the pool from inside the trials: with
// far more workers requested than trials, the peak number of concurrently
// running trials — and therefore spawned workers — must not exceed the
// trial count.
func TestRunTrialsNoIdleWorkers(t *testing.T) {
	const trials = 3
	var running, peak atomic.Int64
	var wait sync.WaitGroup
	wait.Add(trials)
	RunTrials(trials, 64, func(i int) struct{} {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Hold every trial until all have started, so a pool larger
		// than the trial count would be caught red-handed.
		wait.Done()
		wait.Wait()
		running.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p != trials {
		t.Fatalf("peak concurrent trials = %d, want %d", p, trials)
	}
}

func TestRunTrialsZeroTrials(t *testing.T) {
	if got := RunTrials(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

func TestRunTrialsPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				if s, ok := r.(string); workers > 1 && (!ok || !strings.Contains(s, "boom")) {
					t.Errorf("workers=%d: panic value %v does not mention the cause", workers, r)
				}
			}()
			RunTrials(6, workers, func(i int) int {
				if i == 3 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// TestRunTrialsErrIsolatesPanics is the chaos-sweep contract: a panicking
// trial surfaces as an error at its own index while every other trial
// completes — one pathological fork must never kill a campaign or take a
// worker down with it.
func TestRunTrialsErrIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, errs := RunTrialsErr(8, workers, func(i int) int {
			if i == 2 || i == 5 {
				panic(fmt.Sprintf("boom %d", i))
			}
			return i * 10
		})
		if len(out) != 8 || len(errs) != 8 {
			t.Fatalf("workers=%d: got %d results, %d errors, want 8 of each",
				workers, len(out), len(errs))
		}
		for i := 0; i < 8; i++ {
			if i == 2 || i == 5 {
				if errs[i] == nil {
					t.Errorf("workers=%d: trial %d panicked but has no error", workers, i)
				} else if !strings.Contains(errs[i].Error(), fmt.Sprintf("boom %d", i)) {
					t.Errorf("workers=%d: trial %d error %q does not mention the cause",
						workers, i, errs[i])
				}
				if out[i] != 0 {
					t.Errorf("workers=%d: panicked trial %d left result %d, want zero",
						workers, i, out[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Errorf("workers=%d: healthy trial %d got error %v", workers, i, errs[i])
			}
			if out[i] != i*10 {
				t.Errorf("workers=%d: trial %d = %d, want %d", workers, i, out[i], i*10)
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}

// TestResilienceParallelMatchesSerial is the determinism guard: the parallel
// runner must produce byte-identical campaign output to the serial one for
// the same seed. CI runs this under -race, which also proves no trial state
// (kernels, RNGs, testbeds) leaks across worker goroutines.
func TestResilienceParallelMatchesSerial(t *testing.T) {
	opts := ResilienceOptions{Seed: 7, Trials: 4, Messages: 3, Gap: 2 * sim.Millisecond}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 4

	want := RunResilience(serial)
	got := RunResilience(parallel)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel result differs from serial:\n got %+v\nwant %+v", got, want)
	}
	if fs, fp := FormatResilience(want), FormatResilience(got); fs != fp {
		t.Fatalf("formatted triage tables differ:\n-- serial --\n%s\n-- parallel --\n%s", fs, fp)
	}
}

// TestParallelSweepRace runs small parallel sweeps of the experiment suites
// whose fan-out had the most shared-state risk. Under `go test -race` this is
// the audit for rand.Rand crossing goroutines: RunTable2 draws interrupt
// phases from one kernel RNG, which must be drained before the fan-out.
func TestParallelSweepRace(t *testing.T) {
	t2s := RunTable2(Table2Options{Seed: 3, Rounds: 500, Workers: 1})
	t2p := RunTable2(Table2Options{Seed: 3, Rounds: 500, Workers: 4})
	if !reflect.DeepEqual(t2s, t2p) {
		t.Errorf("Table2 parallel differs from serial:\n got %+v\nwant %+v", t2p, t2s)
	}

	s434s := RunSec434(Sec434Options{Seed: 5, Workers: 1})
	s434p := RunSec434(Sec434Options{Seed: 5, Workers: 2})
	if !reflect.DeepEqual(s434s, s434p) {
		t.Errorf("Sec434 parallel differs from serial:\n got %+v\nwant %+v", s434p, s434s)
	}
}
