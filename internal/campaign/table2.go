package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/core"
	"netfi/internal/host"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Table2Experiment is one row of the paper's Table 2: the same ping-pong
// exchange run without and with the fault injector in the data path, and
// the difference of the measured per-packet averages. The uncertainty the
// paper reports (75–1407 ns across five experiments, against a true added
// latency of ~750 ns) comes from the hosts' interrupt granularity: each run
// draws a different timer phase, so the measured averages quantize
// differently.
type Table2Experiment struct {
	Index          int
	WithoutPerPkt  sim.Duration
	WithPerPkt     sim.Duration
	AddedLatency   sim.Duration
	TrueDeviceLag  sim.Duration
	RoundsMeasured int
}

// Table2Options parameterizes the experiment.
type Table2Options struct {
	// Seed drives the per-experiment interrupt phases.
	Seed int64
	// Experiments is the row count. Zero selects the paper's 5.
	Experiments int
	// Rounds is the ping-pong round count per run. The paper used one
	// million small packets per side; zero selects 20000, which measures
	// the same averages (scale it up with the cmd/netfi flag for a
	// full-length run).
	Rounds int
	// Payload is the "small UDP packet" size. Zero selects 32.
	Payload int
	// Workers runs the experiments concurrently; <= 1 is serial. Results
	// are identical either way: the shared phase RNG is drained serially
	// up front, so no rand.Rand crosses a goroutine boundary.
	Workers int
}

func (o *Table2Options) fillDefaults() {
	if o.Experiments == 0 {
		o.Experiments = 5
	}
	if o.Rounds == 0 {
		o.Rounds = 20_000
	}
	if o.Payload == 0 {
		o.Payload = 32
	}
}

// table2Run builds a two-node network (ports 0 and 1 of an 8-port switch),
// optionally splices the injector into node 0's cable, runs the ping-pong,
// and returns the average time per packet.
func table2Run(seed int64, phaseA, phaseB sim.Duration, rounds, payload int, withInjector bool) (sim.Duration, *core.Device) {
	k := sim.NewKernel(seed)
	net := myrinet.NewNetwork(k)
	sw := net.AddSwitch("sw0", myrinet.DefaultPortCount)
	const jitter = 300 * sim.Nanosecond // cache/interrupt noise
	a := host.NewNode(k, host.NodeConfig{
		Name: "a", MAC: NodeMAC(0), ID: 1, TickPhase: phaseA, OverheadJitter: jitter,
	})
	b := host.NewNode(k, host.NodeConfig{
		Name: "b", MAC: NodeMAC(1), ID: 2, TickPhase: phaseB, OverheadJitter: jitter,
	})
	net.ConnectHost(a.Interface(), sw, 0)
	net.ConnectHost(b.Interface(), sw, 1)
	a.Interface().SetRoute(b.MAC(), myrinet.RouteTo(1))
	b.Interface().SetRoute(a.MAC(), myrinet.RouteTo(0))

	var dev *core.Device
	if withInjector {
		dev = core.NewDevice(k, core.DeviceConfig{
			Name:         "injector",
			ExtraLatency: 500 * sim.Nanosecond, // the Myricom FI3 transceiver pair
		})
		dev.Insert(net.Cables["a"])
	}
	var res host.PingPongResult
	host.PingPong(k, a, b, rounds, payload, func(r host.PingPongResult) { res = r })
	k.Run()
	if res.Rounds != rounds {
		panic(fmt.Sprintf("campaign: ping-pong finished %d/%d rounds", res.Rounds, rounds))
	}
	return res.PerPacket, dev
}

// RunTable2 executes the five experiments.
func RunTable2(opts Table2Options) []Table2Experiment {
	opts.fillDefaults()
	// Independent interrupt phases per run: rebooting the hosts between
	// experiments realigns their timer grids. The draws come from ONE
	// rand.Rand, which must never be shared across trial goroutines —
	// drain it serially here (four draws per experiment, in the original
	// without-A, without-B, with-A, with-B order) before fanning out.
	rng := sim.NewKernel(opts.Seed).Rand()
	phases := make([][4]sim.Duration, opts.Experiments)
	for i := range phases {
		for j := 0; j < 4; j++ {
			phases[i][j] = sim.Duration(rng.Int63n(int64(sim.Microsecond)))
		}
	}
	return RunTrials(opts.Experiments, opts.Workers, func(i int) Table2Experiment {
		p := phases[i]
		without, _ := table2Run(opts.Seed+int64(100+i), p[0], p[1], opts.Rounds, opts.Payload, false)
		with, dev := table2Run(opts.Seed+int64(200+i), p[2], p[3], opts.Rounds, opts.Payload, true)
		return Table2Experiment{
			Index:          i + 1,
			WithoutPerPkt:  without,
			WithPerPkt:     with,
			AddedLatency:   with - without,
			TrueDeviceLag:  dev.Latency(),
			RoundsMeasured: opts.Rounds,
		}
	})
}

// FormatTable2 renders the experiments like the paper's Table 2.
func FormatTable2(rows []Table2Experiment) string {
	paper := [][3]int64{ // without[ns], with[ns], added[ns]
		{235213, 235926, 713},
		{235805, 235730, 75},
		{235220, 236107, 887},
		{234973, 236380, 1407},
		{235426, 236134, 708},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %14s %14s %10s   %12s\n",
		"", "without [ns]", "with [ns]", "added", "paper added")
	for _, r := range rows {
		paperAdded := "-"
		if r.Index-1 < len(paper) {
			paperAdded = fmt.Sprintf("%d ns", paper[r.Index-1][2])
		}
		fmt.Fprintf(&b, "Experiment %-2d %14.0f %14.0f %9.0fns   %12s\n",
			r.Index,
			r.WithoutPerPkt.Nanoseconds(), r.WithPerPkt.Nanoseconds(),
			r.AddedLatency.Nanoseconds(), paperAdded)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "true device latency (pipeline+PHY): %v\n", rows[0].TrueDeviceLag)
	}
	return b.String()
}
