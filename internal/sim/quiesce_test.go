package sim

import (
	"testing"
	"time"
)

func TestRunUntilQuiescentDrained(t *testing.T) {
	k := NewKernel(1)
	var done uint64
	k.After(3*Millisecond, func() { done++ })
	res := k.RunUntilQuiescent(QuiesceConfig{Progress: func() uint64 { return done }})
	if !res.Drained || res.Stalled || res.DeadlineHit {
		t.Fatalf("result = %+v, want drained", res)
	}
	if res.FinalProgress != 1 {
		t.Errorf("FinalProgress = %d, want 1", res.FinalProgress)
	}
	if res.Outcome() != "drained" {
		t.Errorf("Outcome() = %q", res.Outcome())
	}
}

func TestRunUntilQuiescentStalled(t *testing.T) {
	k := NewKernel(1)
	// A self-rescheduling event that never advances the progress counter:
	// the shape of a wedged link's eternal STOP-refresh chain.
	var tick func()
	tick = func() { k.After(Millisecond, tick) }
	k.After(0, tick)
	var progress uint64
	res := k.RunUntilQuiescent(QuiesceConfig{
		Progress:   func() uint64 { return progress },
		StallAfter: 50 * Millisecond,
	})
	if !res.Stalled {
		t.Fatalf("result = %+v, want stalled", res)
	}
	if res.Elapsed < 50*Millisecond {
		t.Errorf("stalled after %v, want >= StallAfter", res.Elapsed)
	}
}

func TestRunUntilQuiescentDeadline(t *testing.T) {
	k := NewKernel(1)
	// Eternal progress: the counter advances every tick, so only the
	// deadline can end the run.
	var progress uint64
	var tick func()
	tick = func() { progress++; k.After(Millisecond, tick) }
	k.After(0, tick)
	res := k.RunUntilQuiescent(QuiesceConfig{
		Progress:   func() uint64 { return progress },
		StallAfter: 50 * Millisecond,
		Deadline:   100 * Millisecond,
	})
	if !res.DeadlineHit {
		t.Fatalf("result = %+v, want deadline", res)
	}
	if res.Elapsed < 100*Millisecond {
		t.Errorf("Elapsed = %v, want >= Deadline", res.Elapsed)
	}
}

// TestRunUntilQuiescentWallClock exercises the real-time escape hatch: a
// livelocked world that keeps making progress (so neither the stall
// detector nor a generous virtual deadline ends it) must still return
// control within the configured wall-clock budget, flagged distinctly so
// callers never mistake the timing-dependent result for a deterministic
// outcome.
func TestRunUntilQuiescentWallClock(t *testing.T) {
	k := NewKernel(1)
	var progress uint64
	var tick func()
	tick = func() { progress++; k.After(Nanosecond, tick) }
	k.After(0, tick)
	res := k.RunUntilQuiescent(QuiesceConfig{
		Progress:   func() uint64 { return progress },
		StallAfter: Second,
		Deadline:   1000 * Second, // virtual aeons: only real time can end this
		WallClock:  20 * time.Millisecond,
	})
	if !res.WallClockHit {
		t.Fatalf("result = %+v, want wall-clock hit", res)
	}
	if res.Drained || res.Stalled || res.DeadlineHit {
		t.Errorf("wall-clock exit mislabeled: %+v", res)
	}
	if res.Outcome() != "wallclock" {
		t.Errorf("Outcome() = %q, want %q", res.Outcome(), "wallclock")
	}
}

// TestRunUntilQuiescentWallClockOffByDefault pins the default: zero
// WallClock means no real-time bound, preserving determinism for every
// existing caller.
func TestRunUntilQuiescentWallClockOffByDefault(t *testing.T) {
	k := NewKernel(1)
	var done uint64
	k.After(2*Millisecond, func() { done++ })
	res := k.RunUntilQuiescent(QuiesceConfig{Progress: func() uint64 { return done }})
	if res.WallClockHit || !res.Drained {
		t.Fatalf("result = %+v, want plain drain with no wall-clock flag", res)
	}
}

func TestRunUntilQuiescentDeterministic(t *testing.T) {
	run := func() (QuiesceResult, Time) {
		k := NewKernel(7)
		var progress uint64
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 20 {
				progress++
				k.After(Duration(k.Rand().Int63n(int64(Millisecond)))+1, tick)
			} else {
				k.After(Millisecond, tick) // stop progressing, keep events alive
			}
		}
		k.After(0, tick)
		res := k.RunUntilQuiescent(QuiesceConfig{
			Progress:   func() uint64 { return progress },
			StallAfter: 30 * Millisecond,
		})
		return res, k.Now()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Errorf("non-deterministic: %+v@%v vs %+v@%v", r1, t1, r2, t2)
	}
}

func TestRunUntilQuiescentRequiresProgress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for missing Progress predicate")
		}
	}()
	NewKernel(1).RunUntilQuiescent(QuiesceConfig{})
}
