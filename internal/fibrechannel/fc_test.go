package fibrechannel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(payload []byte, did, sid uint32, seq uint16) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		f := &Frame{
			Header: Header{
				RCtl: 0x06, DID: Address(did & 0xFFFFFF), SID: Address(sid & 0xFFFFFF),
				Type: 0x08, SeqCnt: seq, OXID: 0x1234,
			},
			Payload: payload,
		}
		got, err := DecodeFrame(f.Encode())
		return err == nil &&
			got.Header == f.Header &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	f := &Frame{Header: Header{DID: 1, SID: 2}, Payload: []byte("scsi data")}
	raw := f.Encode()
	raw[HeaderLen+2] ^= 0x40
	if _, err := DecodeFrame(raw); !errors.Is(err, ErrBadCRC) {
		t.Errorf("err = %v, want ErrBadCRC", err)
	}
}

func TestFrameTooShort(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 10)); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("err = %v, want ErrFrameTooShort", err)
	}
}

func newPair(t *testing.T, k *sim.Kernel) (*NPort, *NPort, *phy.Cable) {
	t.Helper()
	return Connect(k,
		NPortConfig{Name: "A", Addr: 0x010101},
		NPortConfig{Name: "B", Addr: 0x020202})
}

func TestNPortDeliversFrames(t *testing.T) {
	k := sim.NewKernel(1)
	a, b, _ := newPair(t, k)
	var got []*Frame
	b.SetFrameHandler(func(f *Frame) { got = append(got, f) })
	a.Send(&Frame{
		Header:  Header{DID: b.Addr(), SID: a.Addr(), Type: 0x08},
		Payload: []byte("hello fibre channel"),
	})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if string(got[0].Payload) != "hello fibre channel" {
		t.Errorf("payload = %q", got[0].Payload)
	}
	if b.Stats().FramesReceived != 1 || b.Stats().CRCDrops != 0 {
		t.Errorf("stats: %+v", b.Stats())
	}
}

func TestNPortBBCreditLimitsInFlight(t *testing.T) {
	k := sim.NewKernel(1)
	a, b, _ := newPair(t, k)
	b.SetFrameHandler(func(*Frame) {})
	// Queue more frames than the credit allows; all must eventually
	// arrive, paced by R_RDY returns.
	const n = 20
	for i := 0; i < n; i++ {
		a.Send(&Frame{Header: Header{DID: b.Addr(), SID: a.Addr(), SeqCnt: uint16(i)}, Payload: make([]byte, 100)})
	}
	if a.Credits() != 0 {
		t.Errorf("credits = %d immediately after burst, want 0", a.Credits())
	}
	k.Run()
	if got := b.Stats().FramesReceived; got != n {
		t.Errorf("received %d frames, want %d", got, n)
	}
	if a.Stats().RRdyReceived != n {
		t.Errorf("R_RDYs = %d, want %d", a.Stats().RRdyReceived, n)
	}
	if a.Stats().CreditStallTime == 0 {
		t.Error("no credit stall recorded despite overcommit")
	}
}

func TestNPortMisdirectedFrameDropped(t *testing.T) {
	k := sim.NewKernel(1)
	a, b, _ := newPair(t, k)
	delivered := false
	b.SetFrameHandler(func(*Frame) { delivered = true })
	a.Send(&Frame{Header: Header{DID: 0xBADBAD, SID: a.Addr()}})
	k.Run()
	if delivered {
		t.Error("misdirected frame delivered")
	}
	if b.Stats().FramesReceived != 0 {
		t.Error("misdirected frame counted as received")
	}
}

func TestNPortCorruptedCodeGroupDropsFrame(t *testing.T) {
	// Corrupt one 10-bit code group in flight: the decoder must flag it
	// and the frame must not be delivered.
	k := sim.NewKernel(1)
	a, b, cable := newPair(t, k)
	delivered := 0
	b.SetFrameHandler(func(*Frame) { delivered++ })
	// Splice a corruptor onto the wire: flip a bit in the 10th code
	// group of the first burst.
	orig := cable.LeftToRight.Dst()
	first := true
	cable.LeftToRight.SetDst(phy.ReceiverFunc(func(chars []phy.Character) {
		if first && len(chars) > 10 {
			chars[10] ^= 0x001
			first = false
		}
		orig.Receive(chars)
	}))
	a.Send(&Frame{Header: Header{DID: b.Addr(), SID: a.Addr()}, Payload: []byte("doomed")})
	a.Send(&Frame{Header: Header{DID: b.Addr(), SID: a.Addr()}, Payload: []byte("fine")})
	k.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (first corrupted, second clean)", delivered)
	}
	st := b.Stats()
	if st.CodeViolations+st.DisparityErrors+st.CRCDrops == 0 {
		t.Errorf("corruption not detected: %+v", st)
	}
}

func TestOrderedSetClassification(t *testing.T) {
	for _, os := range []OrderedSet{OSIdle, OSRRdy, OSSOF, OSEOF} {
		b := orderedSetBytes(os)
		if got := classifySet(b[1]); got != os {
			t.Errorf("classifySet(%v) = %v", os, got)
		}
	}
	if classifySet(0x00) != OSUnknown {
		t.Error("bogus set byte classified")
	}
	if OSRRdy.String() != "R_RDY" || OSUnknown.String() != "UNKNOWN" {
		t.Error("ordered-set mnemonics wrong")
	}
}

func TestAddressString(t *testing.T) {
	if got := Address(0x010203).String(); got != "1.2.3" {
		t.Errorf("String() = %q", got)
	}
}
