package core

import (
	"fmt"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Direction selects one of the device's two independent injection paths
// (§3.3: "the architecture supports bi-directional fault injection", with
// different and independent commands per direction).
type Direction int

// Directions, named after the paper's "left going" and "right going" data.
const (
	// LeftToRight corrupts data flowing from the left splice end to the
	// right.
	LeftToRight Direction = iota
	// RightToLeft corrupts data flowing the other way.
	RightToLeft
)

// String returns "L2R" or "R2L".
func (d Direction) String() string {
	if d == RightToLeft {
		return "R2L"
	}
	return "L2R"
}

// DeviceConfig parameterizes the injector hardware model.
type DeviceConfig struct {
	// Name labels the device.
	Name string
	// SlackChars is the pipeline depth in characters; zero selects
	// DefaultSlackChars (the ~250 ns of footnote 5).
	SlackChars int
	// CharPeriod is the line character period used to convert the
	// pipeline depth into latency; zero selects 12.5 ns (Myrinet at
	// 80 MB/s).
	CharPeriod sim.Duration
	// ExtraLatency models the transceiver (PHY chip) delay on top of
	// the FIFO pipeline.
	ExtraLatency sim.Duration
	// IdleChar is the character idle fill pushes through the pipeline
	// when the wire is quiet between bursts (real hardware clocks
	// continuously; the burst model synthesizes the idles). The zero
	// value is the Myrinet IDLE control character; Fibre Channel splices
	// should use a neutral data code group the far port ignores.
	IdleChar phy.Character
}

// Device is the assembled fault injector: two FIFO-injector engines (one
// per direction), per-direction pass-through statistics, and the insertion
// plumbing that splices the device into a live cable. Command-level control
// (the serial path) lives in CommandDecoder, which drives this device.
//
// The zero value is not usable; construct with NewDevice.
type Device struct {
	k   *sim.Kernel
	cfg DeviceConfig

	engines [2]*Engine
	stats   [2]*PacketStats
	ports   [2]*devicePort

	inserted bool
}

// devicePort is one direction's receive side: it clocks the engine and
// forwards the released characters downstream after the pipeline latency.
type devicePort struct {
	dev        *Device
	dir        Direction
	downstream phy.Receiver

	lastEnd sim.Time // when the previous burst finished arriving
	// entries holds the wire entry time of every character still inside
	// the engine's FIFO (parallel to it), so released characters leave
	// at exactly entry + pipeline latency — the constant-delay behaviour
	// of the continuously clocked hardware. Without it, batched pops
	// would time-compress flow-control symbols and falsely trip the
	// remote's 16-character short timeout.
	entries    []sim.Time
	flushArmed bool
	flushEvent sim.EventID

	fillBuf []phy.Character // reused idle-fill scratch
}

// NewDevice builds an injector.
func NewDevice(k *sim.Kernel, cfg DeviceConfig) *Device {
	if cfg.SlackChars == 0 {
		cfg.SlackChars = DefaultSlackChars
	}
	if cfg.CharPeriod == 0 {
		cfg.CharPeriod = 12_500 * sim.Picosecond
	}
	d := &Device{k: k, cfg: cfg}
	for dir := 0; dir < 2; dir++ {
		d.engines[dir] = NewEngine(cfg.SlackChars)
		d.stats[dir] = NewPacketStats()
		d.ports[dir] = &devicePort{dev: d, dir: Direction(dir)}
	}
	return d
}

// Name returns the device's label.
func (d *Device) Name() string { return d.cfg.Name }

// Engine returns the injection engine for one direction.
func (d *Device) Engine(dir Direction) *Engine { return d.engines[dir] }

// PacketStats returns the pass-through monitor for one direction.
func (d *Device) PacketStats(dir Direction) *PacketStats { return d.stats[dir] }

// Latency reports the fixed delay the device adds to each direction.
func (d *Device) Latency() sim.Duration {
	return sim.Duration(d.cfg.SlackChars)*d.cfg.CharPeriod + d.cfg.ExtraLatency
}

// Insert splices the device into a full-duplex cable: characters that used
// to flow directly now pass through the injection engines, with the
// device's pipeline latency added. The cable's left-to-right direction maps
// to the LeftToRight engine.
func (d *Device) Insert(cable *phy.Cable) {
	if d.inserted {
		panic(fmt.Sprintf("core: device %s already inserted", d.cfg.Name))
	}
	d.inserted = true
	d.ports[LeftToRight].downstream = cable.LeftToRight.Dst()
	cable.LeftToRight.SetDst(d.ports[LeftToRight])
	d.ports[RightToLeft].downstream = cable.RightToLeft.Dst()
	cable.RightToLeft.SetDst(d.ports[RightToLeft])
}

// InsertDirection splices the device into a single link direction only.
func (d *Device) InsertDirection(dir Direction, link *phy.Link) {
	p := d.ports[dir]
	if p.downstream != nil {
		panic(fmt.Sprintf("core: device %s direction %v already inserted", d.cfg.Name, dir))
	}
	p.downstream = link.Dst()
	link.SetDst(p)
}

// Receive implements phy.Receiver for one direction.
func (p *devicePort) Receive(chars []phy.Character) {
	d := p.dev
	eng := d.engines[p.dir]
	period := d.cfg.CharPeriod
	now := d.k.Now()
	// Idle fill: if the wire was quiet before this burst started, the
	// continuously clocked pipeline pushed idles through, releasing the
	// held-back characters at line rate.
	start := now - sim.Duration(len(chars))*period
	if eng.Pending() > 0 && start > p.lastEnd {
		if idle := int((start - p.lastEnd) / period); idle > 0 {
			if cap(p.fillBuf) < idle {
				p.fillBuf = make([]phy.Character, idle)
			}
			fill := p.fillBuf[:idle]
			for i := range fill {
				fill[i] = d.cfg.IdleChar
				p.entries = append(p.entries, p.lastEnd+sim.Duration(i+1)*period)
			}
			p.deliver(eng.ProcessBatch(fill))
		}
	}
	if now > p.lastEnd {
		p.lastEnd = now
	}
	d.stats[p.dir].Observe(chars)
	for i := range chars {
		p.entries = append(p.entries, start+sim.Duration(i+1)*period)
	}
	p.deliver(eng.ProcessBatch(chars))
	p.armFlush()
	phy.ReleaseBurst(chars)
}

// deliver schedules released characters downstream at entry time plus the
// pipeline latency. Runs of data characters batch into one delivery at the
// run's end (receivers are rate-agnostic within a packet); control symbols
// leave individually at their exact exit times so flow-control timing —
// STOP refresh spacing against the remote short timeout — survives the
// burst model.
func (p *devicePort) deliver(out []phy.Character) {
	if len(out) == 0 {
		return
	}
	latency := p.dev.Latency()
	now := p.dev.k.Now()
	dst := p.downstream
	k := p.dev.k
	// out is the engine's scratch buffer, so each batch is copied into a
	// pooled burst of its own before it enters the event queue.
	for i := 0; i < len(out); {
		j := i + 1
		if out[i].IsData() {
			for j < len(out) && out[j].IsData() {
				j++
			}
		}
		at := p.entries[j-1] + latency
		if at < now {
			at = now
		}
		batch := phy.GetBurst(j - i)
		copy(batch, out[i:j])
		phy.ScheduleReceive(k, at, dst, batch)
		i = j
	}
	rest := p.entries[len(out):]
	if len(rest) == 0 {
		p.entries = p.entries[:0]
	} else if len(p.entries) > 4*len(rest) && len(p.entries) > 256 {
		// Compact so the backing array does not grow without bound
		// under continuous traffic.
		p.entries = append(p.entries[:0], rest...)
	} else {
		p.entries = rest
	}
}

// armFlush schedules the pipeline drain that idle fill performs on real
// hardware once the link goes quiet: if no new burst arrives within one
// pipeline time, the held-back characters are released.
func (p *devicePort) armFlush() {
	if p.flushArmed {
		p.dev.k.Cancel(p.flushEvent)
	}
	eng := p.dev.engines[p.dir]
	if eng.Pending() == 0 {
		p.flushArmed = false
		return
	}
	p.flushArmed = true
	p.flushEvent = p.dev.k.AfterArg(sim.Duration(p.dev.cfg.SlackChars)*p.dev.cfg.CharPeriod, portFlush, p)
}

func portFlush(a any) {
	p := a.(*devicePort)
	p.flushArmed = false
	p.deliver(p.dev.engines[p.dir].Flush())
}

var _ phy.Receiver = (*devicePort)(nil)
