package sim

import "testing"

func TestTickerPeriodicFire(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	tk := NewTicker(k, Millisecond, func() { fired = append(fired, k.Now()) })
	tk.Start()
	k.RunUntil(Time(5*Millisecond + Microsecond))
	if len(fired) != 5 {
		t.Fatalf("fired %d times, want 5", len(fired))
	}
	for i, at := range fired {
		want := Time(i+1) * Time(Millisecond)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if tk.Ticks() != 5 {
		t.Fatalf("Ticks() = %d, want 5", tk.Ticks())
	}
}

func TestTickerStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(k, Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	k.Run()
	if n != 3 {
		t.Fatalf("fired %d times, want 3 (stopped from callback)", n)
	}
	if tk.Armed() || tk.Running() {
		t.Fatal("ticker still armed/running after Stop")
	}
}

func TestTickerStopHorizonDrains(t *testing.T) {
	k := NewKernel(1)
	n := 0
	tk := NewTicker(k, Millisecond, func() { n++ })
	tk.SetStopAt(Time(4 * Millisecond))
	tk.Start()
	// Run() terminates only if the ticker parks itself at the horizon.
	k.Run()
	if n != 4 {
		t.Fatalf("fired %d times, want 4 (ticks at 1..4 ms)", n)
	}
	if tk.Armed() {
		t.Fatal("ticker armed past its horizon")
	}
	if !tk.Running() {
		t.Fatal("parked ticker should still report Running")
	}
	// Moving the horizon out and re-starting resumes ticking.
	tk.SetStopAt(Time(6 * Millisecond))
	tk.Start()
	k.Run()
	if n != 6 {
		t.Fatalf("fired %d times after horizon move, want 6", n)
	}
}

func TestTickerZeroAllocSteadyState(t *testing.T) {
	k := NewKernel(1)
	tk := NewTicker(k, Microsecond, func() {})
	tk.Start()
	k.RunFor(10 * Microsecond) // warm the wheel
	allocs := testing.AllocsPerRun(100, func() {
		k.RunFor(10 * Microsecond)
	})
	if allocs > 0 {
		t.Fatalf("ticker steady state allocates %.1f/run, want 0", allocs)
	}
}
