package monitor

import (
	"testing"

	"netfi/internal/sim"
)

func macOf(b byte) [6]byte { return [6]byte{0x06, 0x60, 0x8C, 0x40, 0x40, b} }

func TestFlowAggregationAndIdleExport(t *testing.T) {
	ring := NewExportRing(16)
	tbl := NewFlowTable("sw0.p0", ring, 10*sim.Millisecond)
	k1 := FlowKey{Src: macOf(1), Dst: macOf(2)}
	k2 := FlowKey{Src: macOf(1), Dst: macOf(3)}

	tbl.Observe(k1, 40, sim.Time(1*sim.Millisecond))
	tbl.Observe(k2, 40, sim.Time(2*sim.Millisecond))
	tbl.Observe(k1, 60, sim.Time(3*sim.Millisecond))
	if tbl.Active() != 2 {
		t.Fatalf("active flows = %d, want 2", tbl.Active())
	}

	// k1 last seen at 3 ms, k2 at 2 ms: at 12.5 ms only k2 has idled out.
	if n := tbl.ExpireIdle(sim.Time(12500 * sim.Microsecond)); n != 1 {
		t.Fatalf("ExpireIdle exported %d, want 1", n)
	}
	rec, ok := ring.Pop()
	if !ok || rec.Key != k2 || rec.Cause != CauseIdle {
		t.Fatalf("exported %+v, want idle record for %v", rec, k2)
	}

	// Flush the rest.
	if n := tbl.FlushAll(); n != 1 {
		t.Fatalf("FlushAll exported %d, want 1", n)
	}
	rec, _ = ring.Pop()
	if rec.Key != k1 || rec.Cause != CauseShutdown {
		t.Fatalf("flushed %+v, want shutdown record for %v", rec, k1)
	}
	if rec.Packets != 2 || rec.Bytes != 100 {
		t.Fatalf("k1 record packets=%d bytes=%d, want 2/100", rec.Packets, rec.Bytes)
	}
	if rec.First != sim.Time(1*sim.Millisecond) || rec.Last != sim.Time(3*sim.Millisecond) {
		t.Fatalf("k1 timestamps %v..%v, want 1ms..3ms", rec.First, rec.Last)
	}
}

func TestFlowResetCause(t *testing.T) {
	ring := NewExportRing(4)
	tbl := NewFlowTable("tap", ring, 0)
	tbl.Observe(FlowKey{Src: macOf(1), Dst: macOf(2)}, 30, 0)
	if n := tbl.Reset(); n != 1 {
		t.Fatalf("Reset exported %d, want 1", n)
	}
	rec, _ := ring.Pop()
	if rec.Cause != CauseReset {
		t.Fatalf("cause = %v, want reset", rec.Cause)
	}
}

func TestExportRingBounded(t *testing.T) {
	ring := NewExportRing(2)
	for i := 0; i < 5; i++ {
		ring.Push(FlowRecord{Key: FlowKey{Src: macOf(byte(i))}})
	}
	if ring.Len() != 2 || ring.Exported() != 2 || ring.Dropped() != 3 {
		t.Fatalf("len=%d exported=%d dropped=%d, want 2/2/3",
			ring.Len(), ring.Exported(), ring.Dropped())
	}
	recs := ring.Records()
	if len(recs) != 2 || recs[0].Key.Src != macOf(0) || recs[1].Key.Src != macOf(1) {
		t.Fatalf("Records() = %v, want oldest-first first two pushes", recs)
	}
}

func TestFlowStatePooling(t *testing.T) {
	ring := NewExportRing(64)
	tbl := NewFlowTable("tap", ring, 5*sim.Millisecond)
	key := FlowKey{Src: macOf(1), Dst: macOf(2)}
	now := sim.Time(0)
	// Warm: open and expire once so the free list holds a state.
	tbl.Observe(key, 30, now)
	now += sim.Time(10 * sim.Millisecond)
	tbl.ExpireIdle(now)
	allocs := testing.AllocsPerRun(100, func() {
		now += sim.Time(sim.Millisecond)
		tbl.Observe(key, 30, now)
		now += sim.Time(10 * sim.Millisecond)
		tbl.ExpireIdle(now)
	})
	if allocs > 0 {
		t.Fatalf("steady-state flow churn allocates %.1f/run, want 0", allocs)
	}
}
