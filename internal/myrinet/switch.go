package myrinet

import (
	"fmt"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Switch is a Myrinet crossbar switch: cut-through (wormhole) forwarding
// with source routing. Each input port strips the leading route byte,
// acquires the selected output port, and streams the packet through with a
// one-byte holdback so the trailing CRC-8 can be replaced by the recomputed
// value (the route byte it consumed no longer participates). The acquired
// path is held until the packet-terminating GAP passes — if the GAP is lost,
// the path stays occupied and other traffic to that output experiences
// destination blocking until a GAP finally arrives (§4.3.1, "Corruption of
// GAP symbols").
//
// Mapping packets (type 0x0005) additionally collect the input-port number
// of every switch they traverse: the port byte is appended to the payload
// (before the recomputed CRC), which is how scout replies learn a return
// route. Real Myrinet mapping firmware obtains equivalent information; see
// DESIGN.md.
//
// The zero value is not usable; construct with NewSwitch.
type Switch struct {
	k        *sim.Kernel
	name     string
	ports    []*switchPort
	recovery RecoveryConfig
}

// DefaultPortCount matches the paper's test bed (an 8-port switch).
const DefaultPortCount = 8

// portState is the input-side forwarding FSM state.
type portState int

const (
	stIdle portState = iota
	stForward
	stDrop
	stWaitOutput
)

// headPhase tracks progress through a packet's head so a forwarding port can
// recognize mapping packets without knowing route length a priori: remaining
// route bytes have the MSB set, then one final route byte, then the 4-byte
// type field.
type headPhase int

const (
	phRoute headPhase = iota
	phType
	phBody
)

type switchPort struct {
	sw    *Switch
	index int
	lc    *LinkController // nil when nothing attached
	ctr   *Counters

	// Input FSM.
	state        portState
	outPort      *switchPort
	pendingRoute byte // route byte consumed while waiting for the output
	held         byte
	haveHeld     bool
	// crcCorr is the incremental CRC adjustment for the stripped route
	// byte: the hardware does not rescan the packet, it updates the
	// trailing CRC-8 using the code's linearity — so corruption already
	// present in the stream stays CRC-inconsistent through the hop
	// (which is how §4.3.3's address corruptions get dropped "as a
	// result of the incorrect CRC-8" at the destination).
	crcCorr   byte
	phase     headPhase
	typeBytes []byte
	isMapping bool
	scratch   [1]phy.Character // reusable single-character StreamChars arg

	// Output ownership.
	owner   *switchPort
	waiters []*switchPort

	// Recovery layer: the blocked-packet watchdog. Re-armed on every unit
	// of forwarding progress; expiry tears down a packet that is stuck
	// waiting for a held output or whose tail never arrives.
	blockedTimer *sim.Timer
}

// NewSwitch returns a switch with n unattached ports.
func NewSwitch(k *sim.Kernel, name string, n int) *Switch {
	if n <= 0 {
		panic("myrinet: switch needs at least one port")
	}
	sw := &Switch{k: k, name: name, ports: make([]*switchPort, n)}
	for i := range sw.ports {
		sw.ports[i] = &switchPort{sw: sw, index: i, ctr: NewCounters()}
	}
	return sw
}

// Name returns the switch's label.
func (sw *Switch) Name() string { return sw.name }

// Ports reports the port count.
func (sw *Switch) Ports() int { return len(sw.ports) }

// Attached reports whether a device is connected at port p.
func (sw *Switch) Attached(p int) bool {
	return p >= 0 && p < len(sw.ports) && sw.ports[p].lc != nil
}

// PortCounters returns the statistics of port p.
func (sw *Switch) PortCounters(p int) *Counters { return sw.ports[p].ctr }

// AttachLink wires port p: out is the link transmitting toward the attached
// device; the returned receiver must be set as the destination of the link
// arriving from the device.
func (sw *Switch) AttachLink(p int, out *phy.Link) phy.Receiver {
	if p < 0 || p >= len(sw.ports) {
		panic(fmt.Sprintf("myrinet: switch %s has no port %d", sw.name, p))
	}
	port := sw.ports[p]
	if port.lc != nil {
		panic(fmt.Sprintf("myrinet: switch %s port %d already attached", sw.name, p))
	}
	port.lc = NewLinkController(sw.k, LinkControllerConfig{
		Name:     fmt.Sprintf("%s.p%d", sw.name, p),
		Out:      out,
		Counters: port.ctr,
		Recovery: sw.recovery,
	})
	port.lc.SetNotify(port.drain)
	port.lc.SetTxDrainNotify(port.onOutputDrained)
	port.lc.SetResetHandler(port.onReset)
	port.applyRecovery(sw.recovery)
	return port.lc
}

// SetRecovery enables (or reconfigures) the recovery layer on every port,
// attached now or later.
func (sw *Switch) SetRecovery(rc RecoveryConfig) {
	rc.fillDefaults()
	sw.recovery = rc
	for _, p := range sw.ports {
		if p.lc != nil {
			p.lc.SetRecovery(rc)
			p.applyRecovery(rc)
		}
	}
}

func (p *switchPort) applyRecovery(rc RecoveryConfig) {
	if !rc.Enabled {
		return
	}
	if p.blockedTimer == nil {
		p.blockedTimer = sim.NewTimer(p.sw.k, rc.BlockedTimeout, p.onBlockedTimeout)
	}
	p.blockedTimer.SetPeriod(rc.BlockedTimeout)
}

// petBlocked re-arms the blocked-packet watchdog: a unit of forwarding
// progress happened.
func (p *switchPort) petBlocked() {
	if p.blockedTimer != nil {
		p.blockedTimer.Reset()
	}
}

func (p *switchPort) stopBlocked() {
	if p.blockedTimer != nil {
		p.blockedTimer.Stop()
	}
}

// Controller exposes port p's link controller (monitors and tests).
func (sw *Switch) Controller(p int) *LinkController { return sw.ports[p].lc }

// HeldOutputs counts output ports currently owned by a forwarding path. A
// nonzero count on a quiet network is the paper's hang signature: a path
// acquired by a packet whose terminating GAP never arrived.
func (sw *Switch) HeldOutputs() int {
	n := 0
	for _, p := range sw.ports {
		if p.owner != nil {
			n++
		}
	}
	return n
}

// ---- input FSM ----

// batchForward gates the run-granular forwarding fast path. Always on in
// production; the equivalence test clears it to pin the batch path against
// per-character stepping.
var batchForward = true

// drain consumes characters from the port's slack buffer until it empties or
// the FSM must block (output busy, or downstream backlog at the limit).
func (p *switchPort) drain() {
	for {
		switch p.state {
		case stWaitOutput:
			return // woken by onOutputFree
		case stForward:
			if p.outPort.lc.TxBacklog() >= StreamBacklogLimit {
				return // woken by onOutputDrained
			}
			if batchForward && p.phase == phBody && p.drainRun() {
				continue
			}
		}
		c, ok := p.lc.Pop()
		if !ok {
			return
		}
		p.step(c)
	}
}

// drainRun forwards a run of packet-body data characters as slices instead of
// one character at a time: the head scan is already past (phBody), so each
// character's work is emit-previous-and-hold, which coalesces into at most
// three StreamChars appends plus a bulk CRC-correction advance. Reports false
// when the buffer head is not a batchable run (control character next, or a
// single buffered character) and the caller falls back to per-character
// stepping.
//
// Event-order exactness: the only externally visible effects of the
// per-character loop are the transmit-buffer appends, the low-watermark GO a
// pop may fire, and the blocked-watchdog pets — so the GO must land between
// the same two appends as in per-character stepping (the discard is split at
// the crossing), and the watchdog is pet once per consumed character (each
// pet allocates a kernel event ID, and the ID sequence is part of the
// simulation's determinism contract).
func (p *switchPort) drainRun() bool {
	run := p.lc.Run()
	k := 0
	for k < len(run) && run[k].IsData() {
		k++
	}
	if k < 2 {
		return false
	}
	if a := StreamBacklogLimit - p.outPort.lc.TxBacklog(); k > a {
		k = a
	}
	// x is the pop ordinal whose completion fires the low-watermark GO
	// upstream; k+1 when no crossing happens within this run.
	slack := p.lc.Slack()
	x := k + 1
	if slack.Stopping() {
		if c := slack.Len() - slack.Low(); c <= k {
			k, x = c, c
		}
	}
	out := p.outPort.lc
	if x == 1 {
		p.lc.Discard(1) // fires the GO, before this step's pet and emit
	}
	p.petBlocked()
	p.scratch[0] = phy.DataChar(p.held)
	out.StreamChars(p.scratch[:1])
	if x <= 1 || x > k {
		// GO already fired (x==1) or never fires in this run: the remaining
		// emits coalesce into one append.
		for i := 2; i <= k; i++ {
			p.petBlocked()
		}
		out.StreamChars(run[:k-1])
		if x == 1 {
			p.lc.Discard(k - 1)
		} else {
			p.lc.Discard(k)
		}
	} else {
		// 1 < x == k: the run was truncated at the crossing, whose pop —
		// and GO — per-character stepping interleaves before the final
		// pet and emit.
		for i := 2; i < k; i++ {
			p.petBlocked()
		}
		out.StreamChars(run[:k-2])
		p.lc.Discard(k) // fires the GO
		p.petBlocked()
		out.StreamChars(run[k-2 : k-1])
	}
	p.held = run[k-1].Byte()
	p.crcCorr = bitstream.CRC8Zeros(p.crcCorr, k)
	return true
}

// step feeds one character to the FSM.
func (p *switchPort) step(c phy.Character) {
	switch p.state {
	case stIdle:
		p.stepIdle(c)
	case stForward:
		p.stepForward(c)
	case stDrop:
		if !c.IsData() && DecodeControl(c.Byte()) == SymbolGap {
			p.state = stIdle
		}
	case stWaitOutput:
		// Unreachable: drain() never pops in this state.
		panic("myrinet: switch port consumed input while waiting for output")
	}
}

func (p *switchPort) stepIdle(c phy.Character) {
	if !c.IsData() {
		return // stray GAP between packets: harmless separator
	}
	route := c.Byte()
	if route&RouteSwitchFlag == 0 {
		// The packet expected to be at its destination already.
		p.ctr.Drop(DropSwitchMSB)
		p.state = stDrop
		return
	}
	out := int(route & RoutePortMask)
	if out >= len(p.sw.ports) || p.sw.ports[out].lc == nil {
		p.ctr.Drop(DropBadPort)
		p.state = stDrop
		return
	}
	target := p.sw.ports[out]
	if target.owner != nil {
		// Destination blocking: the output is held by another path.
		p.pendingRoute = route
		p.state = stWaitOutput
		target.waiters = append(target.waiters, p)
		p.petBlocked()
		return
	}
	p.beginForward(target, route)
}

// beginForward acquires the output port and resets per-packet state.
func (p *switchPort) beginForward(target *switchPort, route byte) {
	target.owner = p
	p.outPort = target
	p.state = stForward
	p.crcCorr = bitstream.CRC8Update(0, route)
	p.haveHeld = false
	p.phase = phRoute
	p.typeBytes = p.typeBytes[:0]
	p.isMapping = false
	p.petBlocked()
}

func (p *switchPort) stepForward(c phy.Character) {
	p.petBlocked()
	if c.IsData() {
		b := c.Byte()
		p.scanHead(b)
		if p.haveHeld {
			p.emit(p.held)
		}
		p.held = b
		p.haveHeld = true
		return
	}
	if DecodeControl(c.Byte()) != SymbolGap {
		return // IDLE or unknown inside a packet: ignored
	}
	// End of packet: the held byte is the incoming CRC — adjust it for
	// the stripped route byte (and any appended port byte).
	if p.haveHeld {
		crc := p.held ^ p.crcCorr
		if p.isMapping {
			// Collect the input port for the scout and extend the CRC
			// over it.
			p.outPort.lc.StreamChars([]phy.Character{phy.DataChar(byte(p.index))})
			crc = bitstream.CRC8Update(crc, byte(p.index))
		}
		p.outPort.lc.StreamChars([]phy.Character{phy.DataChar(crc), charGap})
		p.ctr.PacketsForwarded++
	} else {
		// Route byte immediately followed by GAP: nothing to forward.
		p.outPort.lc.StreamChars([]phy.Character{charGap})
		p.ctr.Drop(DropTruncated)
	}
	p.releaseOutput()
	p.state = stIdle
	p.stopBlocked()
}

// scanHead advances the head-phase tracker used to recognize mapping
// packets: skip remaining route bytes (MSB set), one final route byte, then
// collect the 4-byte type field.
func (p *switchPort) scanHead(b byte) {
	switch p.phase {
	case phRoute:
		if b&RouteSwitchFlag != 0 {
			return // another switch hop ahead
		}
		p.phase = phType // b is the final route byte
	case phType:
		p.typeBytes = append(p.typeBytes, b)
		if len(p.typeBytes) == 4 {
			typ := uint16(p.typeBytes[2])<<8 | uint16(p.typeBytes[3])
			p.isMapping = typ == TypeMapping && p.typeBytes[0] == 0 && p.typeBytes[1] == 0
			p.phase = phBody
		}
	case phBody:
	}
}

// emit streams one forwarded data byte and advances the CRC correction by
// one position (the stripped byte's error term shifts with every following
// byte).
func (p *switchPort) emit(b byte) {
	p.crcCorr = bitstream.CRC8Update(p.crcCorr, 0)
	p.outPort.lc.StreamChars([]phy.Character{phy.DataChar(b)})
}

// outputWake is the argument of a deferred waiter wake-up. It is a distinct
// allocation (not a field on the port) because a port can in principle be
// re-queued and re-woken while an earlier wake is still in flight, and the
// two wakes must not share state. It clones across a fork by remapping both
// ports.
type outputWake struct{ waiter, out *switchPort }

func fireOutputWake(a any) {
	w := a.(*outputWake)
	w.waiter.onOutputFree(w.out)
}

// CloneSimArg implements sim.ArgClonable for pending wake events.
func (w *outputWake) CloneSimArg(m *sim.Mapper) any {
	waiter, ok1 := m.Lookup(w.waiter)
	out, ok2 := m.Lookup(w.out)
	if !ok1 || !ok2 {
		panic("myrinet: fork: wake references an uncloned switch port")
	}
	return &outputWake{waiter: waiter.(*switchPort), out: out.(*switchPort)}
}

// releaseOutput frees the held output port and wakes the next waiter.
func (p *switchPort) releaseOutput() {
	out := p.outPort
	p.outPort = nil
	out.owner = nil
	if len(out.waiters) > 0 {
		next := out.waiters[0]
		out.waiters = out.waiters[1:]
		p.sw.k.AfterArg(0, fireOutputWake, &outputWake{waiter: next, out: out})
	}
}

// onOutputFree resumes a port blocked in stWaitOutput.
func (p *switchPort) onOutputFree(out *switchPort) {
	if p.state != stWaitOutput {
		return
	}
	if out.owner != nil {
		// Someone re-acquired it first; queue again.
		out.waiters = append(out.waiters, p)
		return
	}
	p.beginForward(out, p.pendingRoute)
	p.drain()
}

// onOutputDrained resumes a port that paused on downstream backlog.
func (p *switchPort) onOutputDrained() {
	// The callback fires on the OUTPUT controller; resume the input that
	// holds it.
	if p.owner != nil {
		p.owner.drain()
	}
}

// ---- recovery layer ----

// unwait removes p from the waiter queue of the output its pending route
// selected.
func (p *switchPort) unwait() {
	target := p.sw.ports[int(p.pendingRoute&RoutePortMask)]
	for i, w := range target.waiters {
		if w == p {
			target.waiters = append(target.waiters[:i], target.waiters[i+1:]...)
			break
		}
	}
}

// onBlockedTimeout fires when a cut-through packet made no forwarding
// progress for the blocked-packet deadline.
func (p *switchPort) onBlockedTimeout() {
	switch p.state {
	case stWaitOutput:
		// Head-of-line deadlock breaking: the output this packet wants
		// is held by a path that is not moving (a lost GO or corrupted
		// GAP upstream). Drop the stuck packet — its remaining
		// characters drain to the bit bucket — so traffic behind it to
		// other outputs flows again.
		p.ctr.BlockedTimeouts++
		p.ctr.Drop(DropBlocked)
		p.unwait()
		p.state = stDrop
		p.drain()
	case stForward:
		// Mid-stream stall: the tail never arrived (lost GAP) or the
		// downstream backlog froze. Terminate the partial packet on the
		// output — the trailing GAP makes the next hop's CRC check
		// reject it — propagate a forward RESET, and release the path.
		p.ctr.BlockedTimeouts++
		p.ctr.Drop(DropBlocked)
		p.ctr.LinkResets++
		p.outPort.lc.StreamChars([]phy.Character{charGap, charReset})
		p.releaseOutput()
		p.state = stDrop
		p.drain()
	}
}

// onReset reacts to a RESET symbol from the attached device: the upstream
// end of this input tore its path down. Abandon in-flight state and, if an
// output was held, propagate the reset through it.
func (p *switchPort) onReset() {
	switch p.state {
	case stForward:
		p.ctr.Drop(DropReset)
		p.outPort.lc.StreamChars([]phy.Character{charGap, charReset})
		p.releaseOutput()
	case stWaitOutput:
		p.ctr.Drop(DropReset)
		p.unwait()
	}
	// The slack was flushed with the reset; the next character from
	// upstream opens a fresh packet.
	p.state = stIdle
	p.stopBlocked()
}
