// Sharded multi-switch fabrics: one simulation split across parallel
// per-core event kernels with conservative lookahead.
//
// The walkthrough builds a 16-switch/64-host Clos (2 spines, 14 leaves)
// from the seed alone, floods every host's packets across it at three
// shard counts, and prints the per-shard event balance and throughput for
// each. The punchline is determinism: the final fabric state is
// byte-identical whether one kernel executes everything or sixteen kernels
// race under the lookahead barrier — only the wall clock and the window
// count change. Shards never see each other's clocks; the coordinator
// advances each one to its own safe horizon, computed from the fabric's
// shortest cross-shard latency paths, so no shard can receive a
// cross-shard delivery in its past. A single-shard run has no cross-shard
// cables at all and sprints to quiescence in one window.
package main

import (
	"fmt"
	"runtime"

	"netfi/internal/campaign"
	"netfi/internal/topo"
)

func main() {
	fmt.Printf("16-switch/64-host Clos flood on %d CPU(s), GOMAXPROCS=%d\n\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))

	var baseline float64
	for _, shards := range []int{1, 4, 16} {
		res, err := campaign.RunFabric(campaign.FabricConfig{
			Topo: topo.Config{Switches: 16, Hosts: 64, Shards: shards, Seed: 7},
		})
		if err != nil {
			fmt.Println("fabric:", err)
			return
		}
		rate := float64(res.Symbols) / res.Wall.Seconds() / 1e6
		if shards == 1 {
			baseline = rate
		}
		fmt.Printf("shards=%-2d  drained=%v  sent=%d delivered=%d  windows=%d  cross-shard=%d\n",
			shards, res.Drained, res.Sent, res.Delivered, res.Windows, res.Exchanged)
		fmt.Printf("           %.2fM symbols/s (%.2fx vs 1 shard), wall %v\n",
			rate, rate/baseline, res.Wall.Round(res.Wall/100))
		fmt.Print("           shard events:")
		for _, n := range res.ShardEvents {
			fmt.Printf(" %d", n)
		}
		fmt.Println()
	}

	fmt.Println("\nequal state, different schedules: TestFabricShardEquivalence pins the")
	fmt.Println("fingerprints byte-identical; on one CPU the extra shards only add")
	fmt.Println("barrier overhead, on a multicore box they buy wall-clock speedup.")
	fmt.Println("\nbigger: go run ./cmd/netfi fabric -switches 128 -hosts 1024 -shards 4")
}
