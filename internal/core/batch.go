package core

import (
	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/rules"
)

// This file is the burst-granular datapath: ProcessBatch produces output
// byte-identical to the per-symbol Process, but consumes runs of
// match-impossible characters in bulk. Three mechanisms make that legal:
//
//   - A precomputed wake table over the symbol space classifies characters:
//     legacy compare anchors (first masked window position matches), rule
//     starters (characters that can begin some rule's prefix — the
//     prefilter's starter set, or the complement of the executor's quiet
//     set when no prefilter is compiled), and link RESET symbols (counted
//     during the scan so bulk runs need no per-character statistics pass).
//     Runs with no anchor or starter flow through as a single copy — the
//     "cut-through" path — with only bulk statistics, capture-ring and
//     running-CRC updates.
//
//   - The rule program's prefilter extends skip runs through starter
//     characters whose prefix partials provably die: the scan tracks every
//     viable prefix and only wakes the per-symbol FSM around prefilter hits
//     (rewound by the maximum prefix length so the exact executor verifies
//     the whole prefix) and around partials still viable when the scan must
//     stop (buffer end, or a legacy anchor interrupting it). A span the
//     scan clears holds no partial that could ever accept: any partial
//     starting before the clean boundary would have to complete before the
//     first hit — a contradiction — so it dies, and dead partials never
//     fire.
//
//   - The per-symbol FSM re-engages around candidate anchors: a legacy
//     anchor is clocked individually plus the WindowSize-1 characters after
//     it (a match completing later cannot involve the anchor), and rule
//     wakes hold the FSM for the returned span — after which the executor
//     being mid-match keeps bulkEligible false on its own. The FSM also
//     stays engaged while any dynamic condition — tainted FIFO slots
//     awaiting retransmission, a pending InjectNow, or an armed CRC
//     recompute on a corrupted packet — could make a pop or a compare
//     content-dependent.

// batchSpan is the wake-table index space: characters are classified by
// their low 10 bits, covering the 9-bit Myrinet link symbols and the 10-bit
// Fibre Channel code groups. Masks selecting higher bits (none of the real
// substrates do) disable the batch path rather than alias.
const batchSpan = 1024

// dcFlag is the D/C bit of a link character (bit 8).
const dcFlag = phy.Character(1) << 8

// Wake-table bits. wakeReset deliberately sits above the engaging bits so a
// character's reset count is wake>>2 whatever else it carries.
const (
	wakeLegacy uint8 = 1 << 0 // anchors the legacy compare window
	wakeStart  uint8 = 1 << 1 // can begin some rule's prefix
	wakeReset  uint8 = 1 << 2 // link RESET: counted, never engages
)

// batchPlan is the cached classification of the symbol space against the
// current register file and rule set.
type batchPlan struct {
	// ok gates the whole batch path: false when a compare mask selects bits
	// outside the index span, so classification by low bits would alias.
	ok bool
	// cmpAlways marks an all-don't-care compare window: every cycle matches,
	// so bulk runs advance the match counter instead of scanning.
	cmpAlways bool
	// anchorIdx is the first compare-window position with a nonzero mask
	// (valid only when !cmpAlways): the position whose masked compare the
	// wake table encodes.
	anchorIdx int
	// pf is the armed program's compiled prefilter, nil when no rules are
	// armed or the program compiled without a screen.
	pf   *rules.Prefilter
	wake [batchSpan]uint8
}

// rebuildPlan reclassifies the symbol space. Called lazily from ProcessBatch
// after Configure, SetMatchMode or a rule-set change marks the plan dirty.
func (e *Engine) rebuildPlan() {
	e.batchDirty = false
	e.plan = batchPlan{}
	p := &e.plan
	for i := 0; i < WindowSize; i++ {
		if e.cfg.CompareMask[i]&^CharMask(batchSpan-1) != 0 {
			return // mask selects bits the classification cannot see
		}
	}
	p.ok = true
	j := -1
	for i := 0; i < WindowSize; i++ {
		if e.cfg.CompareMask[i] != 0 {
			j = i
			break
		}
	}
	p.cmpAlways = j < 0
	p.anchorIdx = j
	var quiet *[rules.SymbolSpace / 64]uint64
	if e.ruleExec != nil {
		p.pf = e.ruleExec.Program().Prefilter()
		if p.pf == nil {
			quiet = e.ruleExec.QuietSymbols()
		}
	}
	for v := 0; v < batchSpan; v++ {
		var b uint8
		if j >= 0 && (phy.Character(v)^e.cfg.CompareData[j])&phy.Character(e.cfg.CompareMask[j]) == 0 {
			b |= wakeLegacy
		}
		if p.pf != nil {
			if p.pf.Starter(uint16(v)) {
				b |= wakeStart
			}
		} else if quiet != nil {
			s := v & rules.SymbolMask
			if quiet[s>>6]&(1<<uint(s&63)) == 0 {
				b |= wakeStart
			}
		}
		if phy.Character(v)&(dcFlag|0xFF) == LinkResetCode {
			b |= wakeReset
		}
		p.wake[v] = b
	}
}

// triggerArmed reports whether a compare match on the next cycle could fire
// the legacy corrupt logic.
func (e *Engine) triggerArmed() bool {
	switch e.cfg.Match {
	case MatchOn:
		return true
	case MatchOnce:
		return !e.onceDone
	}
	return false
}

// bulkEligible reports whether the dynamic state allows consuming skip runs
// in bulk right now. The plan handles the static (configuration) half; this
// is the per-run half.
func (e *Engine) bulkEligible() bool {
	if !e.plan.ok || e.injectNow || e.taint != 0 {
		return false
	}
	if e.cfg.RecomputeCRC && e.packetCorrupted {
		return false // a pop may substitute the recomputed CRC
	}
	if e.ruleExec != nil && !e.ruleExec.InStart() {
		return false // automaton mid-match: every symbol is consumed
	}
	if e.plan.cmpAlways && e.triggerArmed() {
		return false // every cycle matches and would trigger
	}
	return true
}

// entryGuard computes how many leading burst characters must be clocked
// per-symbol because a compare match completing on them would anchor on a
// character still in the shift register from before this call.
func (e *Engine) entryGuard() int {
	if !e.plan.ok || e.plan.cmpAlways {
		return 0
	}
	j := e.plan.anchorIdx
	g := 0
	for t := 0; t < WindowSize-1-j; t++ {
		// A match at burst index t places old window entry j+t+1 at the
		// anchor position.
		w := &e.window[j+t+1]
		if (w.ch^e.cfg.CompareData[j])&phy.Character(e.cfg.CompareMask[j]) == 0 {
			g = t + 1
		}
	}
	return g
}

// planScan classifies the head of a bulk-eligible span: chars[:clean] can
// neither anchor the legacy compare nor complete any rule's prefix — they
// flow through bulkRun as one copy, with resets their RESET-symbol count —
// and the hold characters after them must be clocked per-symbol before
// scanning may resume. hold is zero only when the whole span is clean.
func (e *Engine) planScan(chars []phy.Character) (clean, hold, resets int) {
	p := &e.plan
	w := &p.wake
	n := len(chars)
	i := 0
	for i < n {
		// Cut-through sprint: 16-wide blocks with no engaging character
		// (two independent 8-wide OR trees, one branch per block), then an
		// 8-wide tail.
		for i+16 <= n {
			or0 := w[chars[i]&(batchSpan-1)] | w[chars[i+1]&(batchSpan-1)] |
				w[chars[i+2]&(batchSpan-1)] | w[chars[i+3]&(batchSpan-1)] |
				w[chars[i+4]&(batchSpan-1)] | w[chars[i+5]&(batchSpan-1)] |
				w[chars[i+6]&(batchSpan-1)] | w[chars[i+7]&(batchSpan-1)]
			or1 := w[chars[i+8]&(batchSpan-1)] | w[chars[i+9]&(batchSpan-1)] |
				w[chars[i+10]&(batchSpan-1)] | w[chars[i+11]&(batchSpan-1)] |
				w[chars[i+12]&(batchSpan-1)] | w[chars[i+13]&(batchSpan-1)] |
				w[chars[i+14]&(batchSpan-1)] | w[chars[i+15]&(batchSpan-1)]
			or := or0 | or1
			if or&(wakeLegacy|wakeStart) != 0 {
				break
			}
			if or&wakeReset != 0 {
				resets += resetsIn(w, chars[i:i+16])
			}
			i += 16
		}
		for i+8 <= n {
			or := w[chars[i]&(batchSpan-1)] | w[chars[i+1]&(batchSpan-1)] |
				w[chars[i+2]&(batchSpan-1)] | w[chars[i+3]&(batchSpan-1)] |
				w[chars[i+4]&(batchSpan-1)] | w[chars[i+5]&(batchSpan-1)] |
				w[chars[i+6]&(batchSpan-1)] | w[chars[i+7]&(batchSpan-1)]
			if or&(wakeLegacy|wakeStart) != 0 {
				break
			}
			if or&wakeReset != 0 {
				resets += resetsIn(w, chars[i:i+8])
			}
			i += 8
		}
		if i >= n {
			break
		}
		b := w[chars[i]&(batchSpan-1)]
		if b&(wakeLegacy|wakeStart) == 0 {
			resets += int(b >> 2)
			i++
			continue
		}
		if b&wakeLegacy != 0 {
			return i, WindowSize, resets
		}
		// Rule starter. Without a prefilter the executor wakes here; with
		// one, track the viable prefixes and clean through dead partials.
		if p.pf == nil {
			return i, 1, resets
		}
		sc := p.pf.NewScanner()
		j := i
		live := true
		for j < n {
			c := chars[j]
			bj := w[c&(batchSpan-1)]
			if bj&wakeLegacy != 0 {
				// Legacy anchor with partials still viable: clean up to the
				// earliest live partial, then per-symbol through the
				// anchor's compare window.
				back := sc.Depth()
				clean = j - back
				resets -= resetsIn(w, chars[clean:j])
				return clean, back + WindowSize, resets
			}
			resets += int(bj >> 2)
			ev := sc.Step(uint16(c))
			j++
			if ev == rules.ScanHit {
				// Rewind so the exact executor sees the longest possible
				// completing prefix; the rewound characters' resets move to
				// the per-symbol side.
				clean = j - p.pf.MaxLen()
				if clean < 0 {
					clean = 0
				}
				resets -= resetsIn(w, chars[clean:j])
				return clean, j - clean, resets
			}
			if ev == rules.ScanDead {
				live = false
				break
			}
		}
		if live {
			// Viable partials at the span's end: hold them back so a prefix
			// straddling the call boundary is verified per-symbol.
			back := sc.Depth()
			clean = n - back
			resets -= resetsIn(w, chars[clean:])
			return clean, back, resets
		}
		i = j
	}
	return n, 0, resets
}

// resetsIn counts RESET symbols via the wake table.
func resetsIn(w *[batchSpan]uint8, chars []phy.Character) int {
	r := 0
	for _, c := range chars {
		r += int(w[c&(batchSpan-1)] >> 2)
	}
	return r
}

// ProcessBatch clocks the engine over a burst and returns the characters
// released downstream, exactly as Process would, but burst-granular: scanned
// clean runs bypass the per-symbol FSM. The returned slice is the same
// reused scratch buffer Process uses, valid until the next call of either
// method.
func (e *Engine) ProcessBatch(chars []phy.Character) []phy.Character {
	out := e.procOut[:0]
	if e.batchDirty {
		e.rebuildPlan()
	}
	guard := e.entryGuard()
	i, n := 0, len(chars)
	for i < n {
		if guard > 0 || !e.bulkEligible() {
			c := chars[i]
			if e.plan.ok && e.plan.wake[c&(batchSpan-1)]&wakeLegacy != 0 {
				// Legacy anchor: it plus the next WindowSize-1 characters
				// stay per-symbol. Rule starters need no guard re-arm: the
				// executor leaves its start configuration, which pins
				// bulkEligible false until the automaton settles.
				guard = WindowSize
			}
			out = e.stepOne(c, out)
			i++
			if guard > 0 {
				guard--
			}
			continue
		}
		clean, hold, resets := e.planScan(chars[i:])
		if clean > 0 {
			out = e.bulkRun(chars[i:i+clean], out, resets)
			i += clean
		}
		guard = hold
	}
	e.procOut = out
	return out
}

// bulkRun consumes a run of characters proven unable to match or trigger:
// a single copy through the pipeline with statistics, capture, CRC and
// FIFO-tail updates, no per-symbol FSM. Preconditions (owned by
// ProcessBatch): bulkEligible, planScan cleared the run (resets is its
// RESET-symbol count), and the entry/anchor guard has expired.
func (e *Engine) bulkRun(seg []phy.Character, out []phy.Character, resets int) []phy.Character {
	m := len(seg)
	e.chars += uint64(m)
	e.resetsSeen += uint64(resets)
	if e.ruleExec != nil {
		e.ruleExec.SkipQuiet(m)
	}
	if e.plan.cmpAlways {
		// All-don't-care window: every cycle's compare reports a match
		// (and the eligibility gate has proven none can trigger).
		e.matches += uint64(m)
	}
	e.capture.ObserveBatch(seg)

	// Pops: the logical stream is the queued characters followed by seg;
	// output takes its prefix until the pipeline is back at slack depth.
	count0 := e.count
	pops := count0 + m - e.slack
	if pops < 0 {
		pops = 0
	}
	popFifo := pops
	if popFifo > count0 {
		popFifo = count0
	}
	for k := 0; k < popFifo; k++ {
		c := e.fifo[e.head].ch
		e.head = (e.head + 1) & (len(e.fifo) - 1)
		out = append(out, c)
		if c.IsData() {
			e.runningCRC = bitstream.CRC8Update(e.runningCRC, c.Byte())
		} else {
			e.runningCRC = 0
			e.packetCorrupted = false
		}
	}
	e.count = count0 - popFifo
	popSeg := pops - popFifo
	if popSeg > 0 {
		// Characters that enter and leave within this run: cut-through.
		out = append(out, seg[:popSeg]...)
		e.runningCRC, e.packetCorrupted = crcAdvance(e.runningCRC, e.packetCorrupted, seg[:popSeg])
	}

	// FIFO tail: only the kept suffix of seg is materialized in the ring —
	// at most slack slots regardless of run length.
	for k := popSeg; k < m; k++ {
		pos := (e.head + e.count) & (len(e.fifo) - 1)
		e.fifo[pos] = fifoEntry{ch: seg[k]}
		e.count++
	}

	// Compare shift register: the last WindowSize stream characters. Kept
	// suffix slots are live (proven by the slack >= WindowSize invariant),
	// so recorded positions stay valid for later corrupt cycles.
	if m >= WindowSize {
		for i := 0; i < WindowSize; i++ {
			d := WindowSize - 1 - i
			e.window[i] = winEntry{
				ch:  seg[m-1-d],
				pos: (e.head + e.count - 1 - d) & (len(e.fifo) - 1),
			}
		}
	} else {
		copy(e.window[:], e.window[m:])
		for i := 0; i < m; i++ {
			d := m - 1 - i
			e.window[WindowSize-m+i] = winEntry{
				ch:  seg[i],
				pos: (e.head + e.count - 1 - d) & (len(e.fifo) - 1),
			}
		}
	}
	return out
}

// crcAdvance runs the per-packet CRC state machine over a popped run:
// data bytes extend the running CRC (slicing-by-8 on all-data blocks, with a
// 4-wide then per-character tail), control symbols reset it and clear the
// corrupted-packet latch, exactly as popOne does per character.
func crcAdvance(crc byte, pc bool, seg []phy.Character) (byte, bool) {
	i, n := 0, len(seg)
	for i < n {
		for i+8 <= n {
			c0, c1, c2, c3 := seg[i], seg[i+1], seg[i+2], seg[i+3]
			c4, c5, c6, c7 := seg[i+4], seg[i+5], seg[i+6], seg[i+7]
			if c0&c1&c2&c3&c4&c5&c6&c7&dcFlag == 0 {
				break // a control symbol inside the block
			}
			crc = bitstream.CRC8Update8(crc,
				byte(c0), byte(c1), byte(c2), byte(c3),
				byte(c4), byte(c5), byte(c6), byte(c7))
			i += 8
		}
		for i+4 <= n {
			c0, c1, c2, c3 := seg[i], seg[i+1], seg[i+2], seg[i+3]
			if c0&c1&c2&c3&dcFlag == 0 {
				break // a control symbol inside the block
			}
			crc = bitstream.CRC8Update4(crc, byte(c0), byte(c1), byte(c2), byte(c3))
			i += 4
		}
		if i >= n {
			break
		}
		if c := seg[i]; c.IsData() {
			crc = bitstream.CRC8Update(crc, c.Byte())
		} else {
			crc = 0
			pc = false
		}
		i++
	}
	return crc, pc
}
