package myrinet

import (
	"fmt"
	"sort"
	"strings"
)

// DropReason classifies why a packet (or character train) was discarded.
// The campaign's outcome analysis (§4.4) depends on these distinctions: all
// observed faults were "passive" — data dropped, never incorrectly passed on
// — and the reason codes show which mechanism did the dropping.
type DropReason int

// Drop reasons. Start at 1 so the zero value is invalid.
const (
	// DropCRC: trailing CRC-8 mismatch at a destination interface.
	DropCRC DropReason = iota + 1
	// DropMisaddressed: destination MAC does not match the interface.
	DropMisaddressed
	// DropRouteMSB: leading route byte reached an interface with the MSB
	// set; the spec requires the packet be "consumed and handled as an
	// error".
	DropRouteMSB
	// DropBadPort: a switch route byte selected a port with no device or
	// an out-of-range port.
	DropBadPort
	// DropSwitchMSB: a switch saw a leading route byte with the MSB
	// clear (the packet expected to be at its destination already).
	DropSwitchMSB
	// DropUnknownType: packet type not recognized by the interface.
	DropUnknownType
	// DropOverflow: slack-buffer overflow destroyed characters.
	DropOverflow
	// DropTruncated: packet malformed or shorter than the minimum frame.
	DropTruncated
	// DropTerminated: the sending host's long-period timeout terminated
	// the packet and consumed its unsent remainder.
	DropTerminated
	// DropChecksum: UDP one's-complement checksum failure in the host
	// stack.
	DropChecksum
	// DropOversize: a packet exceeded the interface's maximum frame
	// size before its terminating GAP arrived — the signature of a lost
	// GAP merging consecutive packets into one unbounded stream.
	DropOversize
	// DropNoRoute: the sending host had no routing-table entry for the
	// destination (the node was dropped from the network map).
	DropNoRoute
	// DropTxQueue: the interface's bounded transmit queue was full — the
	// sender was stalled (STOP, blocked path) long enough for the host
	// to outrun its NIC.
	DropTxQueue
	// DropReset: in-flight receive state was discarded by a link reset
	// (slack flush plus reassembly/forwarding abort).
	DropReset
	// DropBlocked: a switch port's blocked-packet watchdog dropped a
	// cut-through packet that made no forwarding progress for the
	// blocked-packet deadline (head-of-line deadlock breaking).
	DropBlocked
)

var dropNames = map[DropReason]string{
	DropCRC:          "crc",
	DropMisaddressed: "misaddressed",
	DropRouteMSB:     "route-msb",
	DropBadPort:      "bad-port",
	DropSwitchMSB:    "switch-msb",
	DropUnknownType:  "unknown-type",
	DropOverflow:     "overflow",
	DropTruncated:    "truncated",
	DropTerminated:   "terminated",
	DropChecksum:     "checksum",
	DropOversize:     "oversize",
	DropNoRoute:      "no-route",
	DropTxQueue:      "tx-queue",
	DropReset:        "reset",
	DropBlocked:      "blocked",
}

// String returns the reason mnemonic.
func (r DropReason) String() string {
	if s, ok := dropNames[r]; ok {
		return s
	}
	return fmt.Sprintf("drop(%d)", int(r))
}

// Counters accumulates per-entity statistics. The fault injector's own
// statistics-gathering feature (§3.2) and the mmon monitor both read these.
type Counters struct {
	PacketsSent      uint64
	PacketsReceived  uint64
	PacketsForwarded uint64
	CharsIn          uint64
	CharsOut         uint64
	Drops            map[DropReason]uint64
	StopsSent        uint64
	GosSent          uint64
	StopsReceived    uint64
	GosReceived      uint64
	ShortTimeouts    uint64
	LongTimeouts     uint64
	OverflowChars    uint64

	// Recovery layer (zero unless RecoveryConfig.Enabled).
	LinkResets        uint64 // forward resets this controller initiated
	ResetsReceived    uint64 // RESET symbols received from the remote
	StopWatchdogFires uint64 // continuous-STOP deadline expiries
	BlockedTimeouts   uint64 // switch blocked-packet watchdog expiries
	FlushedChars      uint64 // slack characters discarded by resets
}

// NewCounters returns zeroed counters.
func NewCounters() *Counters {
	return &Counters{Drops: make(map[DropReason]uint64)}
}

// Drop records one dropped packet for the given reason.
func (c *Counters) Drop(r DropReason) { c.Drops[r]++ }

// TotalDrops sums packet drops across all reasons.
func (c *Counters) TotalDrops() uint64 {
	var n uint64
	for _, v := range c.Drops {
		n += v
	}
	return n
}

// String renders the counters compactly for traces and the mmon tool.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d recv=%d fwd=%d", c.PacketsSent, c.PacketsReceived, c.PacketsForwarded)
	if c.StopsSent+c.GosSent > 0 {
		fmt.Fprintf(&b, " stop/go-tx=%d/%d", c.StopsSent, c.GosSent)
	}
	if c.StopsReceived+c.GosReceived > 0 {
		fmt.Fprintf(&b, " stop/go-rx=%d/%d", c.StopsReceived, c.GosReceived)
	}
	if c.ShortTimeouts > 0 {
		fmt.Fprintf(&b, " short-to=%d", c.ShortTimeouts)
	}
	if c.LongTimeouts > 0 {
		fmt.Fprintf(&b, " long-to=%d", c.LongTimeouts)
	}
	if c.LinkResets+c.ResetsReceived > 0 {
		fmt.Fprintf(&b, " resets-tx/rx=%d/%d", c.LinkResets, c.ResetsReceived)
	}
	if c.StopWatchdogFires > 0 {
		fmt.Fprintf(&b, " stop-wd=%d", c.StopWatchdogFires)
	}
	if c.BlockedTimeouts > 0 {
		fmt.Fprintf(&b, " blocked-wd=%d", c.BlockedTimeouts)
	}
	if len(c.Drops) > 0 {
		reasons := make([]DropReason, 0, len(c.Drops))
		for r := range c.Drops {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
		b.WriteString(" drops[")
		for i, r := range reasons {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%v=%d", r, c.Drops[r])
		}
		b.WriteByte(']')
	}
	return b.String()
}
