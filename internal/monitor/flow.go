package monitor

import (
	"fmt"

	"netfi/internal/sim"
)

// FlowKey identifies a unidirectional flow the way the switch sees it: the
// 48-bit source and destination identifiers carried at the head of every
// data packet.
type FlowKey struct {
	Src, Dst [6]byte
}

// String renders "src -> dst" in hex.
func (k FlowKey) String() string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x -> %02x%02x%02x%02x%02x%02x",
		k.Src[0], k.Src[1], k.Src[2], k.Src[3], k.Src[4], k.Src[5],
		k.Dst[0], k.Dst[1], k.Dst[2], k.Dst[3], k.Dst[4], k.Dst[5])
}

// TermCause records why a flow record was exported.
type TermCause uint8

const (
	// CauseActive — long-lived flow cut by the active timeout (periodic
	// export of still-running flows).
	CauseActive TermCause = iota
	// CauseIdle — no traffic for the idle timeout.
	CauseIdle
	// CauseReset — a link RESET tore the path down mid-flow.
	CauseReset
	// CauseShutdown — the plane stopped and flushed its cache.
	CauseShutdown
)

// String returns the NetFlow-style cause mnemonic.
func (c TermCause) String() string {
	switch c {
	case CauseActive:
		return "active"
	case CauseIdle:
		return "idle"
	case CauseReset:
		return "reset"
	case CauseShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// FlowRecord is one exported NetFlow/IPFIX-style record.
type FlowRecord struct {
	Key     FlowKey
	Tap     string // which tap observed the flow
	Packets uint64
	Bytes   uint64 // payload-stream bytes (route+type+payload+CRC)
	First   sim.Time
	Last    sim.Time
	Cause   TermCause
}

// ExportRing is the bounded buffer flow records are exported into; a
// collector (report generator, CLI) drains it. When full, new records are
// dropped and counted — export pressure must never grow the ring.
type ExportRing struct {
	buf      []FlowRecord
	head     int // oldest record
	count    int
	exported uint64
	dropped  uint64
}

// NewExportRing returns a ring holding up to capacity records.
func NewExportRing(capacity int) *ExportRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &ExportRing{buf: make([]FlowRecord, capacity)}
}

// Push exports one record. Returns false (and counts a drop) when full.
func (r *ExportRing) Push(rec FlowRecord) bool {
	if r.count == len(r.buf) {
		r.dropped++
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = rec
	r.count++
	r.exported++
	return true
}

// Pop removes the oldest record.
func (r *ExportRing) Pop() (FlowRecord, bool) {
	if r.count == 0 {
		return FlowRecord{}, false
	}
	rec := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return rec, true
}

// Records returns the buffered records oldest-first without draining.
func (r *ExportRing) Records() []FlowRecord {
	out := make([]FlowRecord, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Len reports buffered records.
func (r *ExportRing) Len() int { return r.count }

// Exported reports records accepted since creation.
func (r *ExportRing) Exported() uint64 { return r.exported }

// Dropped reports records rejected because the ring was full.
func (r *ExportRing) Dropped() uint64 { return r.dropped }

// flowState is one active flow in the cache. States are pooled: a flow
// terminating returns its state to the free list, so steady-state traffic
// over a stable set of src/dst pairs allocates nothing.
type flowState struct {
	rec  FlowRecord
	dead bool // lazily removed from the order slice
}

// FlowTable aggregates per-packet observations into flow records and
// exports them on idle timeout, reset, or shutdown. Iteration is in flow
// insertion order — never Go map order — so campaigns stay deterministic
// and serial/parallel sweeps produce identical reports.
type FlowTable struct {
	tap     string
	active  map[FlowKey]*flowState
	order   []*flowState // insertion order; dead entries compacted lazily
	free    []*flowState
	ring    *ExportRing
	idle    sim.Duration
	flows   uint64 // total flows opened
	packets uint64
	bytes   uint64
}

// NewFlowTable returns an empty table exporting into ring. Records carry
// tap as their observation-point label. Idle is the inactivity timeout
// applied by ExpireIdle; zero selects 50 ms.
func NewFlowTable(tap string, ring *ExportRing, idle sim.Duration) *FlowTable {
	if idle == 0 {
		idle = 50 * sim.Millisecond
	}
	return &FlowTable{
		tap:    tap,
		active: make(map[FlowKey]*flowState),
		ring:   ring,
		idle:   idle,
	}
}

// Observe accounts one completed packet of n stream bytes to key.
func (t *FlowTable) Observe(key FlowKey, n int, now sim.Time) {
	t.packets++
	t.bytes += uint64(n)
	st := t.active[key]
	if st == nil {
		if n := len(t.free); n > 0 {
			st = t.free[n-1]
			t.free = t.free[:n-1]
		} else {
			st = &flowState{}
		}
		st.rec = FlowRecord{Key: key, Tap: t.tap, First: now}
		st.dead = false
		t.active[key] = st
		t.order = append(t.order, st)
		t.flows++
	}
	st.rec.Packets++
	st.rec.Bytes += uint64(n)
	st.rec.Last = now
}

// terminate exports st with the given cause and recycles it.
func (t *FlowTable) terminate(st *flowState, cause TermCause) {
	st.rec.Cause = cause
	t.ring.Push(st.rec)
	delete(t.active, st.rec.Key)
	st.dead = true
	t.free = append(t.free, st)
}

// compact drops dead entries from the order slice, preserving order.
func (t *FlowTable) compact() {
	live := t.order[:0]
	for _, st := range t.order {
		if !st.dead {
			live = append(live, st)
		}
	}
	t.order = live
}

// ExpireIdle exports every flow idle at time now, in insertion order.
func (t *FlowTable) ExpireIdle(now sim.Time) int {
	n := 0
	for _, st := range t.order {
		if !st.dead && now-st.rec.Last >= sim.Time(t.idle) {
			t.terminate(st, CauseIdle)
			n++
		}
	}
	if n > 0 {
		t.compact()
	}
	return n
}

// Reset exports every active flow with CauseReset: the tap's link was torn
// down, so whatever was in flight is gone.
func (t *FlowTable) Reset() int {
	n := 0
	for _, st := range t.order {
		if !st.dead {
			t.terminate(st, CauseReset)
			n++
		}
	}
	if n > 0 {
		t.compact()
	}
	return n
}

// FlushAll exports every active flow with CauseShutdown (plane stopping).
func (t *FlowTable) FlushAll() int {
	n := 0
	for _, st := range t.order {
		if !st.dead {
			t.terminate(st, CauseShutdown)
			n++
		}
	}
	if n > 0 {
		t.compact()
	}
	return n
}

// Active reports the current flow-cache population.
func (t *FlowTable) Active() int { return len(t.active) }

// Totals reports flows opened, packets and bytes observed since creation.
func (t *FlowTable) Totals() (flows, packets, bytes uint64) {
	return t.flows, t.packets, t.bytes
}
