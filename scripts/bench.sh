#!/bin/sh
# bench.sh — run the performance benchmarks and record the results as
# BENCH_<date>.json in the repository root (ns/op, trials/sec, allocs/op,
# and the custom metrics the benchmarks report). Re-running on the same day
# merges into the existing file: same-name records are replaced, benchmarks
# the new run did not execute survive.
#
# Usage:
#   sh scripts/bench.sh          full run (go's default -benchtime)
#   sh scripts/bench.sh -short   smoke run (-benchtime=1x), used by CI
set -eu
cd "$(dirname "$0")/.."

benchtime=""
if [ "${1:-}" = "-short" ]; then
    benchtime="-benchtime=1x"
fi

date=$(date +%Y-%m-%d)
out="BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (kernel + datapath + campaign + monitor throughput)"
# shellcheck disable=SC2086  # benchtime is intentionally word-split
go test -run '^$' \
    -bench '^(BenchmarkKernel|BenchmarkCampaignThroughput|BenchmarkKernelEventThroughput|BenchmarkFIFOInjectorPassThrough|BenchmarkFIFOInjectorPerSymbol|BenchmarkFIFOInjectorArmed|BenchmarkMonitorTap|BenchmarkMonitorFlowExport|BenchmarkChaosFork|BenchmarkChaosRebuild|BenchmarkChaosSweep|BenchmarkFabricSharded)$' \
    -benchmem $benchtime . ./internal/campaign | tee "$raw"

if [ -f "$out" ]; then
    go run ./scripts/benchjson -merge "$out" < "$raw" > "$out.tmp"
    mv "$out.tmp" "$out"
else
    go run ./scripts/benchjson < "$raw" > "$out"
fi
echo "wrote $out"
