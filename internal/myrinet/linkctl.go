package myrinet

import (
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// LinkController implements the per-port link protocol shared by switch
// ports and host interfaces: the transmit side paces packets in small chunks
// gated by remote STOP/GO with the short-period (act-as-GO) and long-period
// (terminate packet) timeouts; the receive side classifies incoming
// characters — flow-control symbols act immediately on the transmitter,
// data and GAP characters enter the slack buffer, IDLEs are discarded — and
// generates STOP/GO from the slack watermarks.
//
// The zero value is not usable; construct with NewLinkController.
type LinkController struct {
	k    *sim.Kernel
	name string
	out  *phy.Link
	ctr  *Counters

	// Transmit side.
	paused      bool
	shortTimer  *sim.Timer
	longTimer   *sim.Timer
	txq         []*txPacket
	cur         *txPacket
	curPos      int
	txScheduled bool

	// Streaming transmit side (used by switch ports for cut-through
	// forwarding; mutually exclusive with the packet queue in practice).
	streamBuf     []phy.Character
	streamPos     int
	txDrainNotify func()

	// Receive side.
	slack        *SlackBuffer
	refreshEvent sim.EventID
	refreshOn    bool
	notify       func() // consumer callback: data available in slack

	// Recovery layer (inactive unless recovery.Enabled).
	recovery     RecoveryConfig
	stopWatchdog *sim.Timer // continuous-STOP deadline
	onReset      func()     // consumer callback: link reset, abort in-flight state

	// Monitoring tap (nil unless a monitor attached one).
	tap Tap
}

// txPacket is one queued packet: its encoded character stream (including the
// trailing GAP) and a completion callback. Completion comes in two forms:
// the closure form (onDone) for tests and ad-hoc senders, and the interface
// form (done) for registered model objects. Only the interface form survives
// a fork — a closure's captures cannot be rebound to the new world.
type txPacket struct {
	chars  []phy.Character
	onDone func(terminated bool)
	done   TxCompletion
}

// TxCompletion receives packet-completion notifications: terminated=false
// when the last character was handed to the link, terminated=true when the
// long-period timeout (or stop watchdog) killed the packet. Implementations
// that are registered model objects remap cleanly across a fork.
type TxCompletion interface {
	TxDone(terminated bool)
}

func (p *txPacket) complete(terminated bool) {
	if p.onDone != nil {
		p.onDone(terminated)
	}
	if p.done != nil {
		p.done.TxDone(terminated)
	}
}

// LinkControllerConfig parameterizes a controller.
type LinkControllerConfig struct {
	// Name labels the controller in traces.
	Name string
	// Out is the transmit link.
	Out *phy.Link
	// Counters receives statistics; required.
	Counters *Counters
	// SlackCapacity/SlackHigh/SlackLow set the receive buffer geometry.
	// Zero values select the package defaults.
	SlackCapacity int
	SlackHigh     int
	SlackLow      int
	// Recovery enables the link-reset protocol and its watchdogs.
	Recovery RecoveryConfig
}

// NewLinkController builds a controller transmitting on cfg.Out. The
// consumer is registered later with SetNotify; characters arriving before
// that sit in the slack buffer.
func NewLinkController(k *sim.Kernel, cfg LinkControllerConfig) *LinkController {
	if cfg.Out == nil {
		panic("myrinet: LinkController requires an output link")
	}
	if cfg.Counters == nil {
		panic("myrinet: LinkController requires counters")
	}
	capacity, high, low := cfg.SlackCapacity, cfg.SlackHigh, cfg.SlackLow
	if capacity == 0 {
		capacity, high, low = DefaultSlackCapacity, DefaultSlackHigh, DefaultSlackLow
	}
	lc := &LinkController{
		k:    k,
		name: cfg.Name,
		out:  cfg.Out,
		ctr:  cfg.Counters,
	}
	lc.slack = NewSlackBuffer(capacity, high, low, lc.assertStop, lc.assertGo)
	lc.shortTimer = sim.NewTimer(k, ShortTimeout, lc.onShortTimeout)
	lc.longTimer = sim.NewTimer(k, LongTimeout, lc.onLongTimeout)
	lc.SetRecovery(cfg.Recovery)
	return lc
}

// SetRecovery configures the recovery layer. Disabling it mid-run leaves any
// armed watchdog to expire harmlessly.
func (lc *LinkController) SetRecovery(rc RecoveryConfig) {
	rc.fillDefaults()
	lc.recovery = rc
	if rc.Enabled && lc.stopWatchdog == nil {
		lc.stopWatchdog = sim.NewTimer(lc.k, rc.StopWatchdog, lc.onStopWatchdog)
	}
	if lc.stopWatchdog != nil {
		lc.stopWatchdog.SetPeriod(rc.StopWatchdog)
	}
}

// Recovery reports the controller's recovery configuration.
func (lc *LinkController) Recovery() RecoveryConfig { return lc.recovery }

// SetResetHandler registers the consumer callback invoked when the link is
// reset (locally or by a received RESET symbol): the consumer must abandon
// any in-flight reassembly or forwarding state for this port.
func (lc *LinkController) SetResetHandler(fn func()) { lc.onReset = fn }

// Name returns the controller's label.
func (lc *LinkController) Name() string { return lc.name }

// Counters returns the controller's statistics.
func (lc *LinkController) Counters() *Counters { return lc.ctr }

// Slack exposes the receive buffer (for monitors and tests).
func (lc *LinkController) Slack() *SlackBuffer { return lc.slack }

// Out returns the transmit link.
func (lc *LinkController) Out() *phy.Link { return lc.out }

// SetNotify registers the consumer callback invoked whenever characters are
// appended to the slack buffer. The consumer drains via Pop/Peek.
func (lc *LinkController) SetNotify(fn func()) { lc.notify = fn }

// Pop removes the oldest buffered character, possibly triggering the
// low-watermark GO.
func (lc *LinkController) Pop() (phy.Character, bool) { return lc.slack.Pop() }

// Peek returns the oldest buffered character without removing it.
func (lc *LinkController) Peek() (phy.Character, bool) { return lc.slack.Peek() }

// Run returns the longest contiguous run of buffered characters starting at
// the oldest without consuming them; see SlackBuffer.Run.
func (lc *LinkController) Run() []phy.Character { return lc.slack.Run() }

// Discard consumes the oldest n buffered characters; see SlackBuffer.Discard.
func (lc *LinkController) Discard(n int) { lc.slack.Discard(n) }

// Buffered reports how many characters wait in the slack buffer.
func (lc *LinkController) Buffered() int { return lc.slack.Len() }

// ---- Transmit side ----

// EnqueuePacket queues an encoded packet (characters including the trailing
// GAP) for transmission. onDone, if non-nil, is invoked when the last
// character has been handed to the link (terminated=false) or when the
// long-period timeout killed the packet (terminated=true).
func (lc *LinkController) EnqueuePacket(chars []phy.Character, onDone func(terminated bool)) {
	lc.txq = append(lc.txq, &txPacket{chars: chars, onDone: onDone})
	lc.scheduleTx()
}

// EnqueuePacketTo is EnqueuePacket with an interface-form completion: the
// fork-safe path. done may be nil.
func (lc *LinkController) EnqueuePacketTo(chars []phy.Character, done TxCompletion) {
	lc.txq = append(lc.txq, &txPacket{chars: chars, done: done})
	lc.scheduleTx()
}

// QueuedPackets reports how many packets wait behind the current one.
func (lc *LinkController) QueuedPackets() int { return len(lc.txq) }

// Transmitting reports whether a packet is partially sent.
func (lc *LinkController) Transmitting() bool { return lc.cur != nil }

// Paused reports whether remote STOP is gating the transmitter.
func (lc *LinkController) Paused() bool { return lc.paused }

// SendControl transmits a single control symbol immediately (it interleaves
// after whatever chunk the link is currently serializing).
func (lc *LinkController) SendControl(code byte) {
	lc.out.SendOne(phy.ControlChar(code))
}

// StreamChars appends characters to the streaming transmit buffer. Switch
// ports use this for cut-through forwarding: bytes flow out as they arrive,
// gated by downstream STOP/GO, without packet-granularity queueing.
func (lc *LinkController) StreamChars(chars []phy.Character) {
	lc.streamBuf = append(lc.streamBuf, chars...)
	lc.scheduleTx()
}

// TxBacklog reports how many characters wait in the streaming buffer. A
// forwarding engine checks this before consuming more input so downstream
// congestion propagates upstream as slack-buffer backpressure.
func (lc *LinkController) TxBacklog() int { return len(lc.streamBuf) - lc.streamPos }

// SetTxDrainNotify registers a callback invoked when the streaming backlog
// drains below StreamBacklogLimit after having been at or above it.
func (lc *LinkController) SetTxDrainNotify(fn func()) { lc.txDrainNotify = fn }

// StreamBacklogLimit is the streaming backlog (characters) above which a
// forwarding engine should stop consuming its input: the few dozen
// characters of pipeline a real cut-through switch holds per port.
const StreamBacklogLimit = 64

func (lc *LinkController) scheduleTx() {
	if lc.txScheduled || lc.paused {
		return
	}
	if lc.cur == nil && len(lc.txq) == 0 && lc.TxBacklog() == 0 {
		return
	}
	lc.txScheduled = true
	// Run when the transmitter is free; immediately if it already is. The
	// capture-free form matters here: this fires once per transmitted
	// chunk, and a method-value closure per chunk would allocate.
	at := lc.out.BusyUntil()
	if at < lc.k.Now() {
		at = lc.k.Now()
	}
	lc.k.AtArg(at, txStepFn, lc)
}

func txStepFn(a any) { a.(*LinkController).txStep() }

func (lc *LinkController) txStep() {
	lc.txScheduled = false
	if lc.paused {
		return // resume on GO or short timeout
	}
	// Streaming buffer drains first (switch ports use only this path).
	if lc.TxBacklog() > 0 {
		lc.streamStep()
		lc.scheduleTx()
		return
	}
	if lc.cur == nil {
		if len(lc.txq) == 0 {
			return
		}
		lc.cur = lc.txq[0]
		lc.txq = lc.txq[1:]
		lc.curPos = 0
	}
	remaining := len(lc.cur.chars) - lc.curPos
	n := txChunkChars
	if n > remaining {
		n = remaining
	}
	lc.out.Send(lc.cur.chars[lc.curPos : lc.curPos+n])
	lc.ctr.CharsOut += uint64(n)
	lc.curPos += n
	if lc.curPos == len(lc.cur.chars) {
		done := lc.cur
		lc.cur = nil
		lc.longTimer.Stop()
		done.complete(false)
	}
	lc.scheduleTx()
}

func (lc *LinkController) streamStep() {
	before := lc.TxBacklog()
	n := txChunkChars
	if n > before {
		n = before
	}
	lc.out.Send(lc.streamBuf[lc.streamPos : lc.streamPos+n])
	lc.ctr.CharsOut += uint64(n)
	lc.streamPos += n
	after := lc.TxBacklog()
	if after == 0 {
		// Reset the buffer so it does not grow without bound.
		lc.streamBuf = lc.streamBuf[:0]
		lc.streamPos = 0
	}
	if before >= StreamBacklogLimit && after < StreamBacklogLimit && lc.txDrainNotify != nil {
		lc.txDrainNotify()
	}
}

// pauseTx reacts to a received STOP.
func (lc *LinkController) pauseTx() {
	lc.ctr.StopsReceived++
	lc.paused = true
	lc.shortTimer.Reset()
	if lc.cur != nil || len(lc.txq) > 0 {
		if !lc.longTimer.Armed() {
			lc.longTimer.Reset()
		}
	}
	// The stop watchdog measures continuous STOP from the first pause: it
	// is deliberately NOT re-armed by refreshes, so a remote that refreshes
	// STOP forever (wedged consumer, lost GO downstream of it) still hits
	// the deadline.
	if lc.recovery.Enabled && !lc.stopWatchdog.Armed() {
		lc.stopWatchdog.Reset()
	}
}

// resumeTx reacts to a received GO.
func (lc *LinkController) resumeTx() {
	lc.ctr.GosReceived++
	lc.unpause()
}

func (lc *LinkController) unpause() {
	lc.paused = false
	lc.shortTimer.Stop()
	lc.longTimer.Stop()
	if lc.stopWatchdog != nil {
		lc.stopWatchdog.Stop()
	}
	lc.scheduleTx()
}

// onShortTimeout implements the short-period recovery: a stopped sender that
// hears no flow-control symbol for 16 character periods transitions itself
// to GO (§4.3.1).
func (lc *LinkController) onShortTimeout() {
	if !lc.paused {
		return
	}
	lc.ctr.ShortTimeouts++
	lc.unpause()
}

// onLongTimeout implements the long-period recovery: a sender blocked for
// ~4 million character periods terminates the packet, consumes the unsent
// remainder, and emits a GAP to reclaim the path (§4.3.1).
func (lc *LinkController) onLongTimeout() {
	if lc.cur == nil && len(lc.txq) == 0 {
		return
	}
	lc.ctr.LongTimeouts++
	var victim *txPacket
	if lc.cur != nil {
		victim = lc.cur
		lc.cur = nil
	} else {
		victim = lc.txq[0]
		lc.txq = lc.txq[1:]
	}
	lc.ctr.Drop(DropTerminated)
	if lc.recovery.Enabled {
		// Recovery layer: the termination escalates to a link reset —
		// flush local state and tear the wedged path down with a
		// forward RESET so downstream hops do not stay held for another
		// long-timeout period each.
		lc.out.SendOne(charGap)
		victim.complete(true)
		lc.resetLink()
		return
	}
	// Terminate the packet on the wire so downstream paths release.
	lc.out.SendOne(charGap)
	victim.complete(true)
	// Remain paused if STOP is still in force; the short timer will
	// clear it if the remote has gone silent. Re-arm the long timer for
	// the next queued packet so a persistent block keeps draining the
	// queue at the long-timeout cadence rather than freezing forever.
	if lc.paused && (len(lc.txq) > 0) {
		lc.longTimer.Reset()
	}
	if !lc.paused {
		lc.scheduleTx()
	}
}

// onStopWatchdog fires when the transmitter has been continuously
// STOP-blocked for the recovery deadline: the remote's buffer never drained,
// so the path beyond it is wedged. Terminate whatever is in flight and reset
// the link.
func (lc *LinkController) onStopWatchdog() {
	if !lc.paused || !lc.recovery.Enabled {
		return
	}
	lc.ctr.StopWatchdogFires++
	if lc.cur != nil {
		victim := lc.cur
		lc.cur = nil
		lc.ctr.Drop(DropTerminated)
		lc.out.SendOne(charGap)
		victim.complete(true)
	}
	lc.resetLink()
}

// resetLink performs the local half of a forward link reset: flush the
// receive slack (with its stale STOP state), propagate a RESET symbol
// downstream, notify the consumer, and resume transmission — the wedged path
// is gone, so a standing STOP no longer binds.
func (lc *LinkController) resetLink() {
	lc.ctr.LinkResets++
	lc.ctr.FlushedChars += uint64(lc.slack.Flush())
	lc.out.SendPriorityOne(charReset)
	if lc.onReset != nil {
		lc.onReset()
	}
	lc.unpause()
}

// receiveReset reacts to a RESET symbol from the remote: the upstream end
// tore the path down. Discard buffered input and in-flight consumer state;
// any standing STOP we were honoring is stale.
func (lc *LinkController) receiveReset() {
	lc.ctr.ResetsReceived++
	lc.ctr.FlushedChars += uint64(lc.slack.Flush())
	if lc.onReset != nil {
		lc.onReset()
	}
	lc.unpause()
}

// ---- Receive side ----

// Receive implements phy.Receiver: it classifies every incoming character.
func (lc *LinkController) Receive(chars []phy.Character) {
	if lc.tap != nil {
		lc.tap.ObserveChars(lc.k.Now(), chars)
	}
	pushed := false
	for _, c := range chars {
		lc.ctr.CharsIn++
		if c.IsData() {
			if !lc.slack.Push(c) {
				lc.ctr.OverflowChars++
			} else {
				pushed = true
			}
			continue
		}
		switch DecodeControl(c.Byte()) {
		case SymbolStop:
			lc.pauseTx()
		case SymbolGo:
			lc.resumeTx()
		case SymbolReset:
			// Only recovery-aware hardware knows the symbol; the
			// paper's interfaces ignore it like any unknown code.
			if lc.recovery.Enabled {
				lc.receiveReset()
			}
		case SymbolGap:
			// Packet framing: GAP enters the stream.
			if !lc.slack.Push(c) {
				lc.ctr.OverflowChars++
			} else {
				pushed = true
			}
		default:
			// IDLE and unrecognized codes: no action.
		}
	}
	if pushed && lc.notify != nil {
		lc.notify()
	}
	// The burst was copied into the slack buffer character by character;
	// hand the pooled buffer back.
	phy.ReleaseBurst(chars)
}

// assertStop is the slack buffer's high-watermark callback: issue STOP and
// keep refreshing it so the remote's short-period timer does not release it.
func (lc *LinkController) assertStop() {
	lc.ctr.StopsSent++
	lc.out.SendPriorityOne(charStop)
	lc.armRefresh()
}

func (lc *LinkController) armRefresh() {
	if lc.refreshOn {
		return
	}
	lc.refreshOn = true
	lc.refreshEvent = lc.k.AfterArg(StopRefresh, refreshStopFn, lc)
}

func refreshStopFn(a any) { a.(*LinkController).refreshStop() }

func (lc *LinkController) refreshStop() {
	lc.refreshOn = false
	if !lc.slack.Stopping() {
		return
	}
	lc.ctr.StopsSent++
	lc.out.SendPriorityOne(charStop)
	lc.armRefresh()
}

// assertGo is the slack buffer's low-watermark callback.
func (lc *LinkController) assertGo() {
	if lc.refreshOn {
		lc.k.Cancel(lc.refreshEvent)
		lc.refreshOn = false
	}
	lc.ctr.GosSent++
	lc.out.SendPriorityOne(charGo)
}

var _ phy.Receiver = (*LinkController)(nil)
