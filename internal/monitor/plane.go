package monitor

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// EventKind classifies a plane event.
type EventKind uint8

const (
	// EventSuspect — an accrual detector crossed its phi threshold.
	EventSuspect EventKind = iota
	// EventRecover — a suspected source resumed (phi fell back under
	// the threshold after fresh heartbeats).
	EventRecover
	// EventAnomaly — the streaming pipeline flagged a loss burst, a
	// wedged output, or a latency shift.
	EventAnomaly
)

// String returns the event-kind mnemonic.
func (k EventKind) String() string {
	switch k {
	case EventSuspect:
		return "suspect"
	case EventRecover:
		return "recover"
	case EventAnomaly:
		return "anomaly"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one detection the plane recorded.
type Event struct {
	Time   sim.Time
	Kind   EventKind
	Source string // detector or probe name
	Detail string // "phi", "loss-burst", "wedge", "latency-shift"
	Value  float64
}

// String renders the event for reports.
func (e Event) String() string {
	return fmt.Sprintf("%-10v %-8s %-18s %-13s %.2f",
		e.Time, e.Kind, e.Source, e.Detail, e.Value)
}

// Config parameterizes a monitoring plane.
type Config struct {
	// SampleInterval is the detector/probe evaluation period. Zero
	// selects 1 ms.
	SampleInterval sim.Duration
	// Phi configures every accrual detector the plane creates.
	Phi PhiConfig
	// FlowIdle is the flow-cache inactivity timeout. Zero selects 50 ms.
	FlowIdle sim.Duration
	// ExportCap bounds the flow export ring. Zero selects 256.
	ExportCap int
	// MaxEvents bounds the event log; further events are counted but
	// not stored. Zero selects 1024.
	MaxEvents int
	// ShiftWarmup/ShiftZ parameterize the inter-burst latency-shift
	// detector (see ShiftDetector). Zeros select 32 and 6.
	ShiftWarmup uint64
	ShiftZ      float64
}

func (c *Config) fillDefaults() {
	if c.SampleInterval == 0 {
		c.SampleInterval = sim.Millisecond
	}
	if c.FlowIdle == 0 {
		c.FlowIdle = 50 * sim.Millisecond
	}
	if c.ExportCap == 0 {
		c.ExportCap = 256
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 1024
	}
}

// TapOptions selects what a tap feeds.
type TapOptions struct {
	// Flows builds NetFlow records from the tap's packet stream.
	Flows bool
	// Detect arms a phi-accrual detector on the tap's data-packet
	// arrivals (each completed data packet is a heartbeat).
	Detect bool
	// LatencyShift arms the inter-burst-gap shift detector.
	LatencyShift bool
}

// Tap is one observation point: it implements myrinet.Tap, parsing the
// batched character stream into packet boundaries, feeding the flow table,
// the accrual detector, and the gap statistics. The parse keeps a bounded
// header prefix in a fixed buffer, so steady-state observation allocates
// nothing.
type Tap struct {
	plane *Plane
	name  string

	flows    *FlowTable
	detector *PhiDetector
	gap      *ShiftDetector
	gapHot   bool // last gap sample already flagged (one event per episode)

	lastBurst sim.Time
	haveBurst bool

	// Packet reassembly (header prefix only).
	inPacket bool
	buf      [64]byte
	n        int
	pktBytes int

	packets uint64
	control uint64
	bursts  uint64
	chars   uint64
}

// Name returns the tap's label.
func (t *Tap) Name() string { return t.name }

// Flows returns the tap's flow table, nil unless armed.
func (t *Tap) Flows() *FlowTable { return t.flows }

// Detector returns the tap's accrual detector, nil unless armed.
func (t *Tap) Detector() *PhiDetector { return t.detector }

// Stats reports bursts, characters, data packets and non-data packets the
// tap has observed.
func (t *Tap) Stats() (bursts, chars, packets, control uint64) {
	return t.bursts, t.chars, t.packets, t.control
}

// ObserveChars implements myrinet.Tap. The slice is borrowed: everything
// needed later is copied into the tap's fixed header buffer.
func (t *Tap) ObserveChars(now sim.Time, chars []phy.Character) {
	t.bursts++
	t.chars += uint64(len(chars))
	if t.gap != nil {
		if t.haveBurst {
			d := float64(now - t.lastBurst)
			if t.gap.Add(d) {
				if !t.gapHot {
					t.gapHot = true
					t.plane.record(Event{
						Time: now, Kind: EventAnomaly, Source: t.name,
						Detail: "latency-shift", Value: t.gap.Z(),
					})
				}
			} else {
				t.gapHot = false
			}
		}
		t.haveBurst = true
		t.lastBurst = now
	}
	for _, c := range chars {
		if c.IsData() {
			t.inPacket = true
			t.pktBytes++
			if t.n < len(t.buf) {
				t.buf[t.n] = c.Byte()
				t.n++
			}
			continue
		}
		switch c.Byte() {
		case myrinet.SymGap:
			if t.inPacket {
				t.completePacket(now)
			}
		case myrinet.SymReset:
			// The path was torn down: whatever was in flight is gone.
			t.abortPacket()
			if t.flows != nil {
				t.flows.Reset()
			}
		}
	}
}

func (t *Tap) abortPacket() {
	t.inPacket = false
	t.n = 0
	t.pktBytes = 0
}

// completePacket classifies the buffered header the way the injector's
// statistics engine does (core.PacketStats): skip switch-hop route bytes
// (MSB set), the final route byte, the 4-byte type field, then read the
// destination and source identifiers of data packets. The same parse works
// at a switch input (route intact) and at a host interface (hops consumed).
func (t *Tap) completePacket(now sim.Time) {
	raw := t.buf[:t.n]
	size := t.pktBytes
	t.abortPacket()
	i := 0
	for i < len(raw) && raw[i]&myrinet.RouteSwitchFlag != 0 {
		i++
	}
	i++ // final route byte
	if i+4 > len(raw) {
		t.control++
		return
	}
	hi := uint16(raw[i])<<8 | uint16(raw[i+1])
	typ := uint16(raw[i+2])<<8 | uint16(raw[i+3])
	i += 4
	if hi != 0 || typ != myrinet.TypeData || i+12 > len(raw) {
		t.control++
		return
	}
	t.packets++
	if t.detector != nil {
		t.detector.Heartbeat(now)
	}
	if t.flows != nil {
		var key FlowKey
		copy(key.Dst[:], raw[i:i+6])
		copy(key.Src[:], raw[i+6:i+12])
		t.flows.Observe(key, size, now)
	}
}

var _ myrinet.Tap = (*Tap)(nil)

// planeDetector pairs a tap's accrual detector with its suspicion state.
type planeDetector struct {
	name      string
	d         *PhiDetector
	suspected bool
}

// probe is a polled counter or gauge evaluated every sample interval.
type probe struct {
	name   string
	detail string
	// Exactly one of counter/gauge is set.
	counter func() uint64 // counter probe: alarm on positive delta
	gauge   func() int    // wedge probe: alarm on persistent nonzero
	last    uint64
	hot     bool // alarm already raised for the current episode
	streak  int  // consecutive nonzero gauge samples
}

// Plane is the monitoring plane: a set of taps, accrual detectors, and
// polled probes evaluated every sample interval on the simulation's timer
// wheel. All iteration is in attachment order, so identical runs produce
// identical event logs — the property campaign determinism tests pin.
//
// The zero value is not usable; construct with NewPlane.
type Plane struct {
	k      *sim.Kernel
	cfg    Config
	ticker *sim.Ticker
	ring   *ExportRing

	taps      []*Tap
	detectors []*planeDetector
	probes    []*probe

	events        []Event
	eventOverflow uint64
}

// NewPlane returns a plane bound to k. Attach taps and probes, then Start.
func NewPlane(k *sim.Kernel, cfg Config) *Plane {
	cfg.fillDefaults()
	p := &Plane{k: k, cfg: cfg, ring: NewExportRing(cfg.ExportCap)}
	p.ticker = sim.NewTicker(k, cfg.SampleInterval, p.tick)
	return p
}

// NewTap creates a named observation point with the given options. The
// caller wires it to a stream via myrinet's SetTap hooks (or feeds it
// directly in tests).
func (p *Plane) NewTap(name string, opts TapOptions) *Tap {
	t := &Tap{plane: p, name: name}
	if opts.Flows {
		t.flows = NewFlowTable(name, p.ring, p.cfg.FlowIdle)
	}
	if opts.Detect {
		t.detector = NewPhiDetector(p.cfg.Phi)
		p.detectors = append(p.detectors, &planeDetector{name: name, d: t.detector})
	}
	if opts.LatencyShift {
		t.gap = NewShiftDetector(p.cfg.ShiftWarmup, p.cfg.ShiftZ)
	}
	p.taps = append(p.taps, t)
	return t
}

// TapSwitchPort attaches a new tap to switch port p's input stream.
func (pl *Plane) TapSwitchPort(sw *myrinet.Switch, port int, opts TapOptions) *Tap {
	t := pl.NewTap(fmt.Sprintf("%s.p%d", sw.Name(), port), opts)
	sw.SetPortTap(port, t)
	return t
}

// TapInterface attaches a new tap to the interface's arriving stream.
func (pl *Plane) TapInterface(ifc *myrinet.Interface, opts TapOptions) *Tap {
	t := pl.NewTap(ifc.Name()+".rx", opts)
	ifc.SetTap(t)
	return t
}

// AddCounterProbe polls a monotone counter every sample interval and raises
// an anomaly with the given detail label when it advances (one event per
// episode: the alarm re-arms after an interval with no advance).
func (p *Plane) AddCounterProbe(name, detail string, fn func() uint64) {
	p.probes = append(p.probes, &probe{name: name, detail: detail, counter: fn, last: fn()})
}

// AddLossProbe polls a monotone drop counter every sample interval and
// raises a loss-burst anomaly when it advances.
func (p *Plane) AddLossProbe(name string, fn func() uint64) {
	p.AddCounterProbe(name, "loss-burst", fn)
}

// AddWedgeProbe polls a gauge (held switch outputs, paused links) and
// raises a wedge anomaly when it stays nonzero for two consecutive
// samples — one sample is just backpressure; two is §4.3.1's forever-held
// path at monitoring timescales.
func (p *Plane) AddWedgeProbe(name string, fn func() int) {
	p.probes = append(p.probes, &probe{name: name, gauge: fn})
}

// Start arms the sampling clock.
func (p *Plane) Start() { p.ticker.Start() }

// SetStopAt parks the sampling clock at the given horizon so a campaign's
// quiescence detector still sees the event queue drain (see sim.Ticker).
func (p *Plane) SetStopAt(at sim.Time) { p.ticker.SetStopAt(at) }

// Stop halts sampling and exports every active flow with CauseShutdown.
func (p *Plane) Stop() {
	p.ticker.Stop()
	for _, t := range p.taps {
		if t.flows != nil {
			t.flows.FlushAll()
		}
	}
}

// tick is the sampling pass: flow expiry, detector evaluation, probe polls.
func (p *Plane) tick() {
	now := p.k.Now()
	for _, t := range p.taps {
		if t.flows != nil {
			t.flows.ExpireIdle(now)
		}
	}
	for _, pd := range p.detectors {
		phi := pd.d.Phi(now)
		if !pd.suspected && phi >= pd.d.Threshold() {
			pd.suspected = true
			p.record(Event{Time: now, Kind: EventSuspect, Source: pd.name,
				Detail: "phi", Value: phi})
		} else if pd.suspected && phi < pd.d.Threshold() {
			pd.suspected = false
			p.record(Event{Time: now, Kind: EventRecover, Source: pd.name,
				Detail: "phi", Value: phi})
		}
	}
	for _, pr := range p.probes {
		if pr.counter != nil {
			cur := pr.counter()
			delta := cur - pr.last
			pr.last = cur
			if delta > 0 {
				if !pr.hot {
					pr.hot = true
					p.record(Event{Time: now, Kind: EventAnomaly,
						Source: pr.name, Detail: pr.detail,
						Value: float64(delta)})
				}
			} else {
				pr.hot = false
			}
			continue
		}
		v := pr.gauge()
		if v > 0 {
			pr.streak++
			if pr.streak == 2 && !pr.hot {
				pr.hot = true
				p.record(Event{Time: now, Kind: EventAnomaly,
					Source: pr.name, Detail: "wedge", Value: float64(v)})
			}
		} else {
			pr.streak = 0
			pr.hot = false
		}
	}
}

func (p *Plane) record(e Event) {
	if len(p.events) >= p.cfg.MaxEvents {
		p.eventOverflow++
		return
	}
	p.events = append(p.events, e)
}

// Events returns the recorded event log in detection order.
func (p *Plane) Events() []Event { return p.events }

// EventOverflow reports events lost to the MaxEvents bound.
func (p *Plane) EventOverflow() uint64 { return p.eventOverflow }

// FirstEventAtOrAfter returns the earliest event with Time >= at.
func (p *Plane) FirstEventAtOrAfter(at sim.Time) (Event, bool) {
	for _, e := range p.events {
		if e.Time >= at {
			return e, true
		}
	}
	return Event{}, false
}

// Ring returns the flow export ring shared by every tap.
func (p *Plane) Ring() *ExportRing { return p.ring }

// Taps returns the attachment-ordered observation points.
func (p *Plane) Taps() []*Tap { return p.taps }

// Ticks reports completed sampling passes.
func (p *Plane) Ticks() uint64 { return p.ticker.Ticks() }

// Summary renders the plane's state for reports: event log, flow records,
// and per-tap totals.
func (p *Plane) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "monitor: %d ticks, %d events", p.Ticks(), len(p.events))
	if p.eventOverflow > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", p.eventOverflow)
	}
	fmt.Fprintf(&b, ", %d flows exported", p.ring.Exported())
	if p.ring.Dropped() > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", p.ring.Dropped())
	}
	b.WriteString("\n")
	for _, e := range p.events {
		fmt.Fprintf(&b, "  event  %v\n", e)
	}
	for _, rec := range p.ring.Records() {
		fmt.Fprintf(&b, "  flow   %-14s %v pkts=%d bytes=%d %v..%v cause=%v\n",
			rec.Tap, rec.Key, rec.Packets, rec.Bytes, rec.First, rec.Last, rec.Cause)
	}
	for _, t := range p.taps {
		bursts, chars, packets, control := t.Stats()
		fmt.Fprintf(&b, "  tap    %-14s bursts=%d chars=%d data=%d other=%d\n",
			t.name, bursts, chars, packets, control)
	}
	return b.String()
}
