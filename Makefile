GO ?= go

.PHONY: all build test bench fuzz check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzRuleCompile -fuzztime=10s ./internal/rules

check:
	sh scripts/check.sh
