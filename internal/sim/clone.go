package sim

import "fmt"

// This file is the kernel half of the snapshot/fork engine: a deep copy of
// the scheduler — timer wheel, heap fallback, current-slot buffer, clock,
// sequence counter, and random source — that a warmed simulation can be
// forked from without re-running warmup. The copy is read-only on the
// source, so many forks can be taken from one base concurrently (the chaos
// campaign's worker pool does exactly that).
//
// Cloning proceeds in three phases:
//
//  1. Kernel.Clone copies the scheduler structure. Every pending event is
//     duplicated and recorded in the Mapper's event table; the duplicates
//     still point at old-world args.
//  2. The model object graph clones itself (switches, links, hosts, ...),
//     registering every old→new pair with Mapper.Put and remapping stored
//     EventIDs through Mapper.MapEventID.
//  3. Mapper.Finish rewrites each cloned event's arg to its new-world
//     counterpart — via the object table, or via ArgClonable for composite
//     args (a pooled burst delivery, a wake pair) that are not themselves
//     part of the registered graph.
//
// Closure-form events (At/After) cannot be forked: a closure's captures are
// invisible, so there is no way to rebind them to the new world. Clone
// fails loudly if any non-canceled closure event is pending — the fork
// discipline is that everything scheduled across a snapshot rides the
// AtArg/AfterArg trampoline path. Events scheduled after the fork (fault
// plans, workloads) may use closures freely.

// ArgClonable is implemented by event args that are not registered model
// objects but know how to produce a new-world copy of themselves: pooled
// delivery records, multi-object argument structs, and the like. CloneSimArg
// must not mutate the receiver (the old world keeps running).
type ArgClonable interface {
	CloneSimArg(m *Mapper) any
}

// Mapper tracks old-world → new-world identity during a fork. One Mapper
// serves one fork; it is not safe for concurrent use.
type Mapper struct {
	k2       *Kernel
	objs     map[any]any
	events   map[*event]*event
	cloned   []*event // every new-world event, for the arg-resolution pass
	deferred []func() error
	errs     []error
}

// NewMapper returns an empty mapper. Pass it to Kernel.Clone first, then to
// the model clones, then call Finish.
func NewMapper() *Mapper {
	return &Mapper{objs: make(map[any]any), events: make(map[*event]*event)}
}

// Kernel returns the cloned kernel (nil before Kernel.Clone).
func (m *Mapper) Kernel() *Kernel { return m.k2 }

// Put registers a new-world counterpart for an old-world object. Registering
// the same object twice panics: it means two owners both cloned it, which
// would silently split shared state across the fork.
func (m *Mapper) Put(old, new any) {
	if _, dup := m.objs[old]; dup {
		panic(fmt.Sprintf("sim: fork mapper: %T registered twice", old))
	}
	m.objs[old] = new
}

// Lookup returns the registered counterpart of old, if any.
func (m *Mapper) Lookup(old any) (any, bool) {
	v, ok := m.objs[old]
	return v, ok
}

// Defer queues a fixup to run at Finish, after the whole object graph has
// registered. Cross-references between clones (a link's receiver, a port's
// downstream) resolve here so clone order never matters.
func (m *Mapper) Defer(fn func() error) { m.deferred = append(m.deferred, fn) }

// MapEventID translates an old-world EventID into the fork. A stale ID (its
// event already fired or was recycled) maps to the zero EventID, which
// Cancel treats as a no-op — exactly the semantics the stale ID had at home.
func (m *Mapper) MapEventID(id EventID) EventID {
	if id.ev == nil {
		return EventID{}
	}
	ev2, ok := m.events[id.ev]
	if !ok {
		return EventID{}
	}
	// Keep the caller's generation: a valid ID stays valid (the clone
	// copied the event's gen) and a stale one stays stale.
	return EventID{ev: ev2, gen: id.gen}
}

// defer records a fork error to be reported by Finish.
func (m *Mapper) deferErr(err error) { m.errs = append(m.errs, err) }

// resolveArg maps one event arg into the fork.
func (m *Mapper) resolveArg(a any) (any, error) {
	if a == nil {
		return nil, nil
	}
	if v, ok := m.objs[a]; ok {
		return v, nil
	}
	if c, ok := a.(ArgClonable); ok {
		return c.CloneSimArg(m), nil
	}
	return nil, fmt.Errorf("sim: fork: unresolved event arg of type %T", a)
}

// Finish runs the arg-resolution pass: every cloned event's arg is rewritten
// to its new-world counterpart. It returns the first error accumulated
// anywhere in the fork (pending closures, unregistered args).
func (m *Mapper) Finish() error {
	if len(m.errs) > 0 {
		return m.errs[0]
	}
	for _, fn := range m.deferred {
		if err := fn(); err != nil {
			return err
		}
	}
	for _, ev := range m.cloned {
		if ev.canceled || ev.afn == nil {
			continue
		}
		a, err := m.resolveArg(ev.arg)
		if err != nil {
			return err
		}
		ev.arg = a
	}
	return nil
}

// cloneEvent duplicates one pending event into the fork. The duplicate's arg
// still points into the old world until Finish rewrites it.
func (m *Mapper) cloneEvent(old *event) *event {
	ev := &event{
		at:       old.at,
		seq:      old.seq,
		fn:       old.fn,
		afn:      old.afn,
		arg:      old.arg,
		ext:      old.ext,
		xrank:    old.xrank,
		xseq:     old.xseq,
		gen:      old.gen,
		canceled: old.canceled,
		index:    old.index,
	}
	if old.fn != nil && !old.canceled {
		m.deferErr(fmt.Errorf(
			"sim: fork: closure-form event pending at %v (seq %d); snapshot requires AtArg/AfterArg scheduling",
			old.at, old.seq))
	}
	m.events[old] = ev
	m.cloned = append(m.cloned, ev)
	return ev
}

// Clone deep-copies the kernel into m and returns the fork. The source is
// not mutated, so concurrent Clones from one base are safe as long as the
// base itself is not running. Model state must be cloned separately (phase
// 2) and Mapper.Finish called before the fork is used.
func (k *Kernel) Clone(m *Mapper) *Kernel {
	k2 := &Kernel{
		now:       k.now,
		seq:       k.seq,
		src:       k.src.clone(),
		processed: k.processed,
		live:      k.live,
		c0:        k.c0,
		curPos:    k.curPos,
		lvlCount:  k.lvlCount,
	}
	k2.rng = newRand(k2.src)
	k2.levels[0] = make([]*event, l0Slots)
	k2.levels[1] = make([]*event, l1Slots)
	k2.levels[2] = make([]*event, l2Slots)
	for lvl := range k.levels {
		for slot, chain := range k.levels[lvl] {
			if chain == nil {
				continue
			}
			// Preserve exact chain order: cascade and sweep walk the
			// chain head-first, and fire order within a slot is resolved
			// by sorting, but recycle order (hence pool reuse) follows
			// the chain.
			var head, tail *event
			for old := chain; old != nil; old = old.next {
				ev := m.cloneEvent(old)
				if head == nil {
					head, tail = ev, ev
				} else {
					tail.next = ev
					tail = ev
				}
			}
			k2.levels[lvl][slot] = head
		}
	}
	k2.queue = make(eventHeap, len(k.queue))
	for i, old := range k.queue {
		k2.queue[i] = m.cloneEvent(old)
	}
	k2.cur = make([]*event, len(k.cur))
	for i := k.curPos; i < len(k.cur); i++ {
		k2.cur[i] = m.cloneEvent(k.cur[i])
	}
	m.k2 = k2
	m.Put(k, k2)
	return k2
}
