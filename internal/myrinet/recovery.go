package myrinet

import "netfi/internal/sim"

// RecoveryConfig enables and parameterizes the failure-recovery layer that
// real Myrinet deployments add on top of the paper's short/long-period
// timeouts. The paper's campaign (§4.3) shows the raw protocol losing sync
// and hanging under control-symbol, GAP, and route faults; with recovery
// enabled the same faults are torn down instead:
//
//   - Link reset: when the long-period timeout terminates a packet, or a
//     sender stays STOP-blocked past the stop watchdog, the controller also
//     flushes its receive slack and propagates a forward RESET symbol so
//     every hop downstream abandons the wedged path.
//   - Blocked-packet watchdog: a switch port whose cut-through packet makes
//     no progress (held output, lost tail) for BlockedTimeout drops it,
//     breaking head-of-line deadlocks caused by lost GOs or corrupted GAPs.
//
// The zero value disables recovery, which reproduces the paper's observed
// hang outcomes.
type RecoveryConfig struct {
	// Enabled turns the recovery layer on.
	Enabled bool
	// BlockedTimeout is the switch-port blocked-packet deadline. Zero
	// selects DefaultBlockedTimeout (75 ms).
	BlockedTimeout sim.Duration
	// StopWatchdog is the continuous-STOP deadline on the transmit side.
	// Zero selects DefaultStopWatchdog (100 ms).
	StopWatchdog sim.Duration
}

func (rc *RecoveryConfig) fillDefaults() {
	if rc.BlockedTimeout == 0 {
		rc.BlockedTimeout = DefaultBlockedTimeout
	}
	if rc.StopWatchdog == 0 {
		rc.StopWatchdog = DefaultStopWatchdog
	}
}
