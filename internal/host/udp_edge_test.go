package host

import "testing"

func TestDecodeUDPLengthMismatch(t *testing.T) {
	// A merged datagram (extra bytes after a valid UDP packet — the
	// aftermath of a lost GAP) must be rejected by the length field even
	// before the checksum gets a say.
	dgram := EncodeUDP(1, 2, []byte("one"))
	merged := append(dgram, []byte("swallowed tail")...)
	if _, _, _, err := DecodeUDP(merged); err == nil {
		t.Error("length-mismatched datagram accepted")
	}
}

func TestDecodeUDPTooShort(t *testing.T) {
	if _, _, _, err := DecodeUDP([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
}

func TestDecodeUDPEmptyPayload(t *testing.T) {
	s, d, data, err := DecodeUDP(EncodeUDP(7, 9, nil))
	if err != nil || s != 7 || d != 9 || len(data) != 0 {
		t.Errorf("empty payload round trip: %d %d %q %v", s, d, data, err)
	}
}
