package topo

import (
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

func build(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build(%+v): %v", cfg, err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestHostMACRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 255, 256, 1023, 65535} {
		m := HostMAC(i)
		j, ok := HostIndex(m)
		if !ok || j != i {
			t.Fatalf("HostIndex(HostMAC(%d)) = %d, %v", i, j, ok)
		}
	}
	if _, ok := HostIndex(myrinet.MAC{1, 2, 3, 4, 5, 6}); ok {
		t.Fatal("foreign MAC resolved to a host index")
	}
}

func TestMeshShape(t *testing.T) {
	// 2 switches cannot form a Clos; they fall back to a full mesh.
	f := build(t, Config{Switches: 2, Hosts: 4, Seed: 1})
	if !f.Mesh || f.Leaves != 2 || f.Spines != 0 {
		t.Fatalf("shape: mesh=%v leaves=%d spines=%d", f.Mesh, f.Leaves, f.Spines)
	}
	if f.HostsPerLeaf != 2 {
		t.Fatalf("HostsPerLeaf = %d, want 2", f.HostsPerLeaf)
	}
	// host cables (4) + one trunk per switch pair (1)
	if len(f.Cables) != 5 {
		t.Fatalf("%d cables, want 5", len(f.Cables))
	}
}

func TestClosShape(t *testing.T) {
	f := build(t, Config{Switches: 128, Hosts: 1024, Seed: 1})
	if f.Mesh {
		t.Fatal("128 switches built a mesh")
	}
	if f.Spines != 16 || f.Leaves != 112 {
		t.Fatalf("spines=%d leaves=%d, want 16/112", f.Spines, f.Leaves)
	}
	if f.HostsPerLeaf != 10 {
		t.Fatalf("HostsPerLeaf = %d, want 10", f.HostsPerLeaf)
	}
	// Per-leaf ports: 10 hosts + 16 uplinks; spine radix: 112.
	if p := f.Switches[0].Ports(); p != 26 {
		t.Fatalf("leaf ports = %d, want 26", p)
	}
	if p := f.Switches[f.Leaves].Ports(); p != 112 {
		t.Fatalf("spine ports = %d, want 112", p)
	}
	// host cables + leaves*spines trunks
	if want := 1024 + 112*16; len(f.Cables) != want {
		t.Fatalf("%d cables, want %d", len(f.Cables), want)
	}
}

// TestRoutesWalk walks every generated route through the port map and
// checks it terminates at the destination host's port.
func TestRoutesWalk(t *testing.T) {
	for _, cfg := range []Config{
		{Switches: 2, Hosts: 4, Seed: 3},
		{Switches: 16, Hosts: 64, Seed: 3},
		{Switches: 32, Hosts: 200, Seed: 9},
	} {
		f := build(t, cfg)
		for src := 0; src < cfg.Hosts; src++ {
			for dst := 0; dst < cfg.Hosts; dst++ {
				if src == dst {
					continue
				}
				route, ok := f.Route(src, dst)
				if !ok {
					t.Fatalf("no route %d -> %d", src, dst)
				}
				if route[len(route)-1] != myrinet.RouteFinal {
					t.Fatalf("route %d -> %d does not end in RouteFinal: %v", src, dst, route)
				}
				// Walk: start at src's switch. Every hop but the last
				// crosses to another switch; the last exits to the
				// destination's host port.
				sw, _ := f.hostAttach(src)
				for i, b := range route[:len(route)-1] {
					if b&myrinet.RouteSwitchFlag == 0 {
						t.Fatalf("route %d -> %d has a non-switch hop %#x before the final byte", src, dst, b)
					}
					port := int(b & myrinet.RoutePortMask)
					if port >= f.Switches[sw].Ports() {
						t.Fatalf("route %d -> %d uses port %d beyond switch %s's %d ports",
							src, dst, port, f.Switches[sw].Name(), f.Switches[sw].Ports())
					}
					if i == len(route)-2 {
						break // final switch hop: exits to the host port
					}
					sw = f.nextSwitch(t, sw, port)
				}
				wantSw, wantPort := f.hostAttach(dst)
				if sw != wantSw {
					t.Fatalf("route %d -> %d lands on switch %d, want %d", src, dst, sw, wantSw)
				}
				// The hop before the final byte must select dst's port.
				lastHop := int(route[len(route)-2] & myrinet.RoutePortMask)
				if lastHop != wantPort {
					t.Fatalf("route %d -> %d exits port %d, want %d", src, dst, lastHop, wantPort)
				}
			}
		}
	}
}

// nextSwitch resolves where a switch port's cable leads (test-only walk of
// the topology's port map).
func (f *Fabric) nextSwitch(t *testing.T, sw, port int) int {
	t.Helper()
	if f.Mesh {
		if port < f.HostsPerLeaf {
			t.Fatalf("switch %d port %d is a host port mid-route", sw, port)
		}
		return port - f.HostsPerLeaf
	}
	if sw < f.Leaves {
		if port < f.HostsPerLeaf {
			t.Fatalf("leaf %d port %d is a host port mid-route", sw, port)
		}
		return f.Leaves + (port - f.HostsPerLeaf) // uplink to spine
	}
	return port // spine port l leads to leaf l
}

func TestRouteDeterminism(t *testing.T) {
	a := build(t, Config{Switches: 16, Hosts: 64, Seed: 5})
	b := build(t, Config{Switches: 16, Hosts: 64, Seed: 5, Shards: 4})
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 5 {
			if src == dst {
				continue
			}
			ra, _ := a.Route(src, dst)
			rb, _ := b.Route(src, dst)
			if string(ra) != string(rb) {
				t.Fatalf("route %d -> %d differs across shard counts: %v vs %v", src, dst, ra, rb)
			}
		}
	}
}

func TestPartition(t *testing.T) {
	// N <= switches: contiguous blocks, hosts follow their leaf.
	f := build(t, Config{Switches: 16, Hosts: 64, Shards: 4, Seed: 1})
	used := map[int]bool{}
	for i := 0; i < 16; i++ {
		s := f.ShardOfSwitch(i)
		if s < 0 || s >= 4 {
			t.Fatalf("switch %d on shard %d", i, s)
		}
		used[s] = true
	}
	if len(used) != 4 {
		t.Fatalf("only %d shards used, want 4", len(used))
	}
	for h := 0; h < 64; h++ {
		sw, _ := f.hostAttach(h)
		if f.ShardOfHost(h) != f.ShardOfSwitch(sw) {
			t.Fatalf("host %d on shard %d, its leaf on %d", h, f.ShardOfHost(h), f.ShardOfSwitch(sw))
		}
	}

	// N > switches: every switch its own shard, hosts spread the rest.
	g := build(t, Config{Switches: 2, Hosts: 4, Shards: 4, Seed: 1})
	if len(g.Kernels) != 4 {
		t.Fatalf("%d kernels, want 4", len(g.Kernels))
	}
	hostShards := map[int]bool{}
	for h := 0; h < 4; h++ {
		s := g.ShardOfHost(h)
		if s < 2 {
			t.Fatalf("host %d landed on a switch shard %d", h, s)
		}
		hostShards[s] = true
	}
	if len(hostShards) != 2 {
		t.Fatalf("hosts use %d shards, want 2", len(hostShards))
	}
}

func TestShardClamp(t *testing.T) {
	f := build(t, Config{Switches: 2, Hosts: 4, Shards: 100, Seed: 1})
	if len(f.Kernels) != 6 {
		t.Fatalf("%d kernels, want clamp to switches+hosts = 6", len(f.Kernels))
	}
}

func TestLookahead(t *testing.T) {
	f := build(t, Config{
		Switches: 2, Hosts: 4, Seed: 1,
		HostPropDelay: 30 * sim.Nanosecond, TrunkPropDelay: 80 * sim.Nanosecond,
	})
	want := myrinet.CharPeriod + 30*sim.Nanosecond
	if f.Lookahead() != want {
		t.Fatalf("lookahead = %v, want %v", f.Lookahead(), want)
	}
}

func TestBuildErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Switches: 0, Hosts: 4},
		{Switches: 2, Hosts: 0},
		{Switches: 2, Hosts: 300}, // 150 hosts/switch + 2 mesh ports > 128
	} {
		if _, err := Build(cfg); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", cfg)
		}
	}
}
