package host

import (
	"math/rand"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// PingPongResult summarizes one latency experiment: the paper's Table 2
// methodology (two nodes exchanging small UDP packets, each side waiting
// for the other's packet before sending).
type PingPongResult struct {
	Rounds      int
	TotalTime   sim.Duration
	PerPacket   sim.Duration // average time per packet (Table 2's metric)
	LostTimeout bool         // the exchange wedged before finishing
}

// PingPong runs a ping-pong exchange of rounds small packets between a and
// b, starting when the kernel reaches start. The returned result is valid
// after the kernel has run past the experiment.
func PingPong(k *sim.Kernel, a, b *Node, rounds int, payload int, done func(PingPongResult)) {
	const portA, portB = 7001, 7002
	data := make([]byte, payload)
	var began sim.Time
	completed := 0

	sockB, err := b.Bind(portB, nil)
	if err != nil {
		panic(err)
	}
	sockB.handler = func(src myrinet.MAC, srcPort uint16, d []byte) {
		// Echo back immediately (the remote waits for it).
		b.SendUDP(a.MAC(), portB, portA, d)
	}
	var sockA *Socket
	sockA, err = a.Bind(portA, nil)
	if err != nil {
		panic(err)
	}
	sockA.handler = func(src myrinet.MAC, srcPort uint16, d []byte) {
		completed++
		if completed >= rounds {
			total := k.Now() - began
			res := PingPongResult{
				Rounds:    completed,
				TotalTime: total,
				// Two packets cross the network per round.
				PerPacket: total / sim.Duration(2*rounds),
			}
			sockA.Close()
			sockB.Close()
			done(res)
			return
		}
		a.SendUDP(b.MAC(), portA, portB, d)
	}
	began = k.Now()
	a.SendUDP(b.MAC(), portA, portB, data)
}

// Flood is a message-sending program: it transmits fixed-size datagrams at
// a fixed interval, the "simple UDP packet generation program" the campaign
// runs on every node (§4.2). Payloads can be constrained to avoid a byte
// value so that symbol-corruption campaigns can attribute every loss to
// control symbols rather than payload hits ("the symbol mask we corrupted
// did not appear in the message itself").
type Flood struct {
	k        *sim.Kernel
	node     *Node
	dst      myrinet.MAC
	srcPort  uint16
	dstPort  uint16
	interval sim.Duration
	size     int
	avoid    []byte
	rng      *rand.Rand

	sent    uint64
	running bool
	seq     uint32
}

// FloodConfig parameterizes a generator.
type FloodConfig struct {
	// Dst is the destination node's address.
	Dst myrinet.MAC
	// SrcPort and DstPort are the UDP ports (defaults 9000/9001).
	SrcPort, DstPort uint16
	// Interval is the inter-send spacing. Zero selects 1.25 ms (the
	// 800 msg/s that yields the paper's ~48000 messages/minute baseline).
	Interval sim.Duration
	// Size is the payload length. Zero selects 64.
	Size int
	// Avoid lists byte values that must not appear in the payload.
	Avoid []byte
}

// NewFlood builds a generator on node.
func NewFlood(k *sim.Kernel, node *Node, cfg FloodConfig) *Flood {
	if cfg.Interval == 0 {
		cfg.Interval = 1250 * sim.Microsecond
	}
	if cfg.Size == 0 {
		cfg.Size = 64
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = 9000
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 9001
	}
	return &Flood{
		k:        k,
		node:     node,
		dst:      cfg.Dst,
		srcPort:  cfg.SrcPort,
		dstPort:  cfg.DstPort,
		interval: cfg.Interval,
		size:     cfg.Size,
		avoid:    cfg.Avoid,
		rng:      k.Rand(),
	}
}

// Start begins sending; Stop ends it.
func (f *Flood) Start() {
	if f.running {
		return
	}
	f.running = true
	f.tick()
}

// Stop halts the generator.
func (f *Flood) Stop() { f.running = false }

// Sent reports datagrams handed to the stack.
func (f *Flood) Sent() uint64 { return f.sent }

func (f *Flood) tick() {
	if !f.running {
		return
	}
	f.node.SendUDP(f.dst, f.srcPort, f.dstPort, f.payload())
	f.sent++
	f.k.AfterArg(f.interval, floodTick, f)
}

func floodTick(a any) { a.(*Flood).tick() }

// payload builds a sequence-stamped body that avoids the forbidden bytes.
func (f *Flood) payload() []byte {
	data := make([]byte, f.size)
	f.seq++
	// Stamp a sequence number in avoid-safe base-16-ish encoding: each
	// nibble as 0x10|nibble<<1 keeps values far from small control codes.
	s := f.seq
	for i := 0; i < 8 && i < len(data); i++ {
		data[i] = 0x40 | byte(s&0x0F)
		s >>= 4
	}
	for i := 8; i < len(data); i++ {
		data[i] = byte(0x20 + f.rng.Intn(90)) // printable, clear of 0x00-0x1F
	}
	if len(f.avoid) > 0 {
		for i, b := range data {
			for f.isAvoided(b) {
				b++
				data[i] = b
			}
		}
	}
	return data
}

func (f *Flood) isAvoided(b byte) bool {
	for _, a := range f.avoid {
		if a == b {
			return true
		}
	}
	return false
}

// CountingReceiver binds a port and counts what arrives, the measurement
// side of every campaign.
type CountingReceiver struct {
	sock  *Socket
	bytes uint64
}

// NewCountingReceiver binds port on node.
func NewCountingReceiver(node *Node, port uint16) (*CountingReceiver, error) {
	r := &CountingReceiver{}
	sock, err := node.Bind(port, func(_ myrinet.MAC, _ uint16, data []byte) {
		r.bytes += uint64(len(data))
	})
	if err != nil {
		return nil, err
	}
	r.sock = sock
	return r, nil
}

// Received reports delivered datagrams.
func (r *CountingReceiver) Received() uint64 { return r.sock.Received() }

// Bytes reports delivered payload bytes.
func (r *CountingReceiver) Bytes() uint64 { return r.bytes }

// Close releases the port.
func (r *CountingReceiver) Close() { r.sock.Close() }

// Heartbeat is the liveness beacon the monitoring plane's accrual failure
// detectors calibrate against: small fixed-interval datagrams to one peer,
// bounded by a horizon so that quiescence-based campaigns still drain. The
// payload byte stays clear of every control-symbol code, preserving the
// workload discipline fault campaigns rely on.
type Heartbeat struct {
	k        *sim.Kernel
	node     *Node
	dst      myrinet.MAC
	srcPort  uint16
	dstPort  uint16
	interval sim.Duration
	payload  []byte
	until    sim.Time

	sent    uint64
	running bool
}

// HeartbeatConfig parameterizes a beacon.
type HeartbeatConfig struct {
	// Dst is the monitored peer's address.
	Dst myrinet.MAC
	// SrcPort and DstPort are the UDP ports (defaults 7100/7100).
	SrcPort, DstPort uint16
	// Interval is the beacon period. Zero selects 2 ms.
	Interval sim.Duration
	// Until, when nonzero, is the absolute simulation time past which no
	// beacon is sent: the horizon that lets hang detectors see the event
	// queue drain. Zero runs until Stop.
	Until sim.Time
	// Size is the payload length. Zero selects 8.
	Size int
}

// HeartbeatPort is the conventional beacon port.
const HeartbeatPort = 7100

// NewHeartbeat builds a beacon on node.
func NewHeartbeat(k *sim.Kernel, node *Node, cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval == 0 {
		cfg.Interval = 2 * sim.Millisecond
	}
	if cfg.Size == 0 {
		cfg.Size = 8
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = HeartbeatPort
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = HeartbeatPort
	}
	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = 0x48 // 'H', clear of all control codes
	}
	return &Heartbeat{
		k:        k,
		node:     node,
		dst:      cfg.Dst,
		srcPort:  cfg.SrcPort,
		dstPort:  cfg.DstPort,
		interval: cfg.Interval,
		payload:  payload,
		until:    cfg.Until,
	}
}

// Start begins beaconing; the first beat goes out immediately.
func (h *Heartbeat) Start() {
	if h.running {
		return
	}
	h.running = true
	h.beat()
}

// Stop halts the beacon.
func (h *Heartbeat) Stop() { h.running = false }

// Sent reports beacons handed to the stack.
func (h *Heartbeat) Sent() uint64 { return h.sent }

func (h *Heartbeat) beat() {
	if !h.running {
		return
	}
	if h.until != 0 && h.k.Now() > h.until {
		h.running = false
		return
	}
	h.node.SendUDP(h.dst, h.srcPort, h.dstPort, h.payload)
	h.sent++
	if h.until != 0 && h.k.Now()+sim.Time(h.interval) > h.until {
		h.running = false
		return
	}
	h.k.AfterArg(h.interval, heartbeatBeat, h)
}

func heartbeatBeat(a any) { a.(*Heartbeat).beat() }
