package core

import (
	"strings"
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

func newTestDecoder(t *testing.T) (*Device, *CommandDecoder) {
	t.Helper()
	k := sim.NewKernel(1)
	dev := NewDevice(k, DeviceConfig{Name: "inj"})
	return dev, NewCommandDecoder(dev)
}

func TestCommandModeAndCompare(t *testing.T) {
	dev, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"MODE ON",
		"COMPARE -- -- 18 18",
		"CORRUPT REPLACE -- -- 19 --",
	} {
		if resp := dec.Exec(cmd); resp != "OK" {
			t.Fatalf("%q -> %q", cmd, resp)
		}
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.Match != MatchOn {
		t.Errorf("Match = %v", cfg.Match)
	}
	if cfg.CompareData[2] != phy.DataChar(0x18) || cfg.CompareMask[2] != MaskFull {
		t.Errorf("compare[2] = %v/%v", cfg.CompareData[2], cfg.CompareMask[2])
	}
	if cfg.CompareMask[0] != MaskNone {
		t.Errorf("compare[0] mask = %v, want don't-care", cfg.CompareMask[0])
	}
	if cfg.Corrupt != CorruptReplace || cfg.CorruptData[2] != phy.DataChar(0x19) {
		t.Errorf("corrupt config wrong: %+v", cfg)
	}
	if cfg.CorruptMask[3] != MaskNone {
		t.Errorf("corrupt[3] must pass unchanged")
	}
}

func TestCommandControlSymbolEntries(t *testing.T) {
	dev, dec := newTestDecoder(t)
	// The Table 4 operation: replace STOP with GO.
	if resp := dec.Exec("COMPARE -- -- -- C0F"); resp != "OK" {
		t.Fatal(resp)
	}
	if resp := dec.Exec("CORRUPT REPLACE -- -- -- C03"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CompareData[3] != phy.ControlChar(0x0F) {
		t.Errorf("compare[3] = %v, want C:0f", cfg.CompareData[3])
	}
	if cfg.CorruptData[3] != phy.ControlChar(0x03) {
		t.Errorf("corrupt[3] = %v, want C:03", cfg.CorruptData[3])
	}
}

func TestCommandDataOnlyMaskEntry(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("COMPARE X0F -- -- --"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CompareMask[0] != MaskData {
		t.Errorf("mask = %#x, want MaskData", cfg.CompareMask[0])
	}
}

func TestCommandToggleDCEntry(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("CORRUPT TOGGLE -- -- -- !01"); resp != "OK" {
		t.Fatal(resp)
	}
	cfg := dev.Engine(LeftToRight).Config()
	if cfg.CorruptData[3] != phy.Character(0x101) {
		t.Errorf("toggle vector = %#x, want 0x101", uint16(cfg.CorruptData[3]))
	}
}

func TestCommandDirSelectsEngine(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("DIR R")
	dec.Exec("MODE ONCE")
	if dev.Engine(RightToLeft).Config().Match != MatchOnce {
		t.Error("R engine not configured")
	}
	if dev.Engine(LeftToRight).Config().Match != MatchOff {
		t.Error("L engine unexpectedly configured")
	}
	dec.Exec("DIR L")
	dec.Exec("MODE ON")
	if dev.Engine(LeftToRight).Config().Match != MatchOn {
		t.Error("L engine not configured after DIR L")
	}
}

func TestCommandErrors(t *testing.T) {
	_, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"BOGUS",
		"MODE",
		"MODE MAYBE",
		"DIR X",
		"COMPARE 18 18", // wrong arity
		"COMPARE ZZ -- -- --",
		"CORRUPT SCRAMBLE -- -- -- --",
		"CORRUPT REPLACE -- -- -- C0FF", // bad entry length
		"CRC SOMETIMES",
	} {
		if resp := dec.Exec(cmd); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, resp)
		}
	}
	total, errs := dec.Commands()
	if total != 9 || errs != 9 {
		t.Errorf("commands=%d errors=%d, want 9/9", total, errs)
	}
}

func TestCommandMalformedHexRejected(t *testing.T) {
	// Every entry parser must reject malformed hex with ERR, and a failed
	// command must leave the register file untouched (the decoder builds
	// the new configuration aside and only commits on full success).
	dev, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"COMPARE ZZ -- -- --",  // bad plain data byte
		"COMPARE 1 -- -- --",   // one hex digit
		"COMPARE 123 -- -- --", // three digits, no known prefix
		"COMPARE CGG -- -- --", // control prefix, bad hex
		"COMPARE XQ9 -- -- --", // data-only prefix, bad hex
		"CORRUPT TOGGLE !ZZ -- -- --",
		"CORRUPT TOGGLE Q9 -- -- --",
		"CORRUPT REPLACE XZZ -- -- --",
		"CORRUPT REPLACE !0F -- -- --", // toggle syntax in replace mode
		"RULE ADD 1 PAT ZZ",
		"RULE ADD 1 ACT TOGGLE PAT 55 VEC !GG",
		"RULE ADD 1 ACT REPLACE PAT 55 VEC XZZ",
	} {
		if resp := dec.Exec(cmd); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, resp)
		}
	}
	eng := dev.Engine(LeftToRight)
	if eng.Config() != (Config{}) {
		t.Errorf("failed commands mutated the register file: %+v", eng.Config())
	}
	if len(eng.Rules()) != 0 {
		t.Errorf("failed RULE ADD left rules installed: %+v", eng.Rules())
	}
}

func TestCommandRuleGrammarErrors(t *testing.T) {
	dev, dec := newTestDecoder(t)
	for _, cmd := range []string{
		"RULE",                       // missing subcommand
		"RULE BOGUS",                 // unknown subcommand
		"RULE ADD",                   // missing id
		"RULE ADD X PAT 55",          // bad id
		"RULE ADD -1 PAT 55",         // negative id
		"RULE ADD 1",                 // no PAT
		"RULE ADD 1 PAT G2 55",       // gap before the first entry
		"RULE ADD 1 PAT 55 G2",       // trailing gap
		"RULE ADD 1 PAT 55 G1 G1 55", // consecutive gaps
		"RULE ADD 1 PAT 55 G0 55",    // zero gap token
		"RULE ADD 1 PAT 55 G33 55",   // gap beyond MaxGap (engine limit)
		"RULE ADD 1 MODE AFTER:X PAT 55",
		"RULE ADD 1 MODE MAYBE PAT 55",
		"RULE ADD 1 ACT SCRAMBLE PAT 55",
		"RULE ADD 1 ACT DROP:0 PAT 55",
		"RULE ADD 1 ACT TOGGLE PAT 55", // vectored action without VEC
		"RULE ADD 1 PAT 55 VEC 0F",     // VEC on capture-only
		"RULE ADD 1 FROB 3 PAT 55",     // unknown keyword
		"RULE DEL",                     // missing id
		"RULE DEL 7",                   // no such rule
	} {
		if resp := dec.Exec(cmd); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, resp)
		}
	}
	if rs := dev.Engine(LeftToRight).Rules(); len(rs) != 0 {
		t.Errorf("failed RULE commands left rules installed: %+v", rs)
	}
}

func TestCommandOverlongLineRejected(t *testing.T) {
	// Bytes past the line buffer are discarded, so an overlong command
	// executes as its truncated (and thus unknown) prefix — ERR, no state
	// change, and the decoder keeps working afterwards.
	dev, dec := newTestDecoder(t)
	var out []byte
	dec.SetOutput(func(b byte) { out = append(out, b) })
	long := "MODE " + strings.Repeat("N", maxLineLen) + " ON\n"
	for _, b := range []byte(long) {
		dec.InputByte(b)
	}
	if resp := strings.TrimSpace(string(out)); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("overlong line -> %q, want ERR", resp)
	}
	if dev.Engine(LeftToRight).Config() != (Config{}) {
		t.Error("overlong line mutated the register file")
	}
	out = out[:0]
	for _, b := range []byte("MODE ON\n") {
		dec.InputByte(b)
	}
	if strings.TrimSpace(string(out)) != "OK" {
		t.Errorf("decoder wedged after overlong line: %q", out)
	}
}

func TestCommandStatAndReset(t *testing.T) {
	dev, dec := newTestDecoder(t)
	eng := dev.Engine(LeftToRight)
	_ = eng.Process(phy.DataChars([]byte{1, 2, 3}))
	resp := dec.Exec("STAT")
	if !strings.Contains(resp, "chars=3") {
		t.Errorf("STAT = %q, want chars=3", resp)
	}
	dec.Exec("MODE ON")
	dec.Exec("RESET")
	if eng.Config().Match != MatchOff {
		t.Error("RESET did not clear config")
	}
}

func TestCommandByteStreamAssembly(t *testing.T) {
	_, dec := newTestDecoder(t)
	var out []byte
	dec.SetOutput(func(b byte) { out = append(out, b) })
	for _, b := range []byte("MODE ON\r\nINJECT\n") {
		dec.InputByte(b)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 || lines[0] != "OK" || lines[1] != "OK" {
		t.Errorf("responses = %q", lines)
	}
}

func TestCommandLowercaseAccepted(t *testing.T) {
	dev, dec := newTestDecoder(t)
	if resp := dec.Exec("mode once"); resp != "OK" {
		t.Fatal(resp)
	}
	if dev.Engine(LeftToRight).Config().Match != MatchOnce {
		t.Error("lowercase command not applied")
	}
}

func TestCommandInjectNow(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("CORRUPT TOGGLE -- -- -- FF")
	dec.Exec("INJECT")
	eng := dev.Engine(LeftToRight)
	out := append(eng.Process(phy.DataChars([]byte{0x00})), eng.Flush()...)
	if out[0].Byte() != 0xFF {
		t.Errorf("inject-now did not corrupt: %v", out[0])
	}
}

func TestCommandCapReportsEvents(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dec.Exec("MODE ON")
	dec.Exec("COMPARE -- -- -- AA")
	dec.Exec("CORRUPT TOGGLE -- -- -- 01")
	eng := dev.Engine(LeftToRight)
	stream := append([]byte{1, 2, 0xAA}, make([]byte, DefaultCapturePost+4)...)
	_ = eng.Process(phy.DataChars(stream))
	resp := dec.Exec("CAP")
	if !strings.Contains(resp, "events=1") {
		t.Errorf("CAP = %q, want events=1", resp)
	}
}
