// Package campaign is the NFTAPE-style management and control framework the
// paper drives its experiments with (§1, [Sto00]): it builds the Fig. 10
// test bed (three hosts on an 8-port Myrinet switch with the fault injector
// spliced into one host's cable), orchestrates workloads, reconfigures the
// injector over its serial console, resets to a known-good state between
// runs (a fresh deterministic simulation per run), collects measurements,
// and classifies outcomes as active or passive faults (§4.4).
package campaign

import (
	"fmt"

	"netfi/internal/core"
	"netfi/internal/host"
	"netfi/internal/myrinet"
	"netfi/internal/serial"
	"netfi/internal/sim"
)

// Injection directions on the tapped cable.
const (
	// DirOutbound corrupts data flowing from the tapped node toward the
	// switch.
	DirOutbound = core.LeftToRight
	// DirInbound corrupts data flowing from the switch toward the tapped
	// node.
	DirInbound = core.RightToLeft
)

// TestbedConfig parameterizes a run. The zero value reproduces the paper's
// setup.
type TestbedConfig struct {
	// Seed drives all randomness; identical seeds give identical runs —
	// the "known good state" reset requirement of §4.2.
	Seed int64
	// Nodes is the host count (Fig. 10 uses 3). Zero selects 3.
	Nodes int
	// Mapping enables the MCP mapping protocol. When false, static
	// routes are installed (faster, for experiments that do not involve
	// the mapping plane).
	Mapping bool
	// MapPeriod overrides the 1 s mapping period (mapping experiments
	// compress time).
	MapPeriod sim.Duration
	// TapNode selects whose cable carries the injector. Default 0 (the
	// PC in Fig. 10).
	TapNode int
	// NoInjector builds the bare network (control runs for the
	// transparency comparison). Injector and Console stay nil.
	NoInjector bool
	// TxQueueLimit bounds each NIC's transmit queue. Zero selects 32.
	TxQueueLimit int
	// Baud sets the serial console rate. Zero selects 115200.
	Baud int
	// Recovery configures the failure-recovery layer on every link
	// controller and switch port. The zero value (disabled) reproduces
	// the paper's hardware, which hangs on lost GAPs.
	Recovery myrinet.RecoveryConfig
}

// Testbed is a fully wired Fig. 10 network plus instrumentation.
type Testbed struct {
	K        *sim.Kernel
	Net      *myrinet.Network
	Switch   *myrinet.Switch
	Nodes    []*host.Node
	Injector *core.Device
	Console  *serial.Console
	cfg      TestbedConfig

	load *Load
}

// NodeMAC returns the conventional address of node i. The byte values
// deliberately avoid every control-symbol code (0x0F, 0x0C, 0x03 and the
// degraded forms), extending the paper's workload discipline — "the symbol
// mask we corrupted did not appear in the message itself" — to the
// addresses, which also traverse the tapped link in every packet.
func NodeMAC(i int) myrinet.MAC {
	return myrinet.MAC{0x06, 0x60, 0x8C, 0x40, 0x40, byte(0x11 + i)}
}

// NewTestbed builds and warms up a test bed. With mapping enabled it runs
// the simulation until the first mapping round has distributed routes.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.TxQueueLimit == 0 {
		cfg.TxQueueLimit = 32
	}
	if cfg.MapPeriod == 0 {
		cfg.MapPeriod = sim.Second
	}
	k := sim.NewKernel(cfg.Seed)
	net := myrinet.NewNetwork(k)
	sw := net.AddSwitch("sw0", myrinet.DefaultPortCount)
	sw.SetRecovery(cfg.Recovery)

	tb := &Testbed{K: k, Net: net, Switch: sw, cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		mapping := myrinet.MappingConfig{}
		if cfg.Mapping {
			mapping = myrinet.MappingConfig{
				Enabled:       true,
				InitialMapper: i == cfg.Nodes-1, // highest ID maps (§4.1)
				MapPeriod:     cfg.MapPeriod,
			}
		}
		n := host.NewNode(k, host.NodeConfig{
			Name: fmt.Sprintf("node%d", i),
			MAC:  NodeMAC(i),
			ID:   myrinet.NodeID(i + 1),
			// Campaign hosts flood aggressively ("the network was
			// operating at full capacity", §4.3.1): a fast send path
			// keeps several packets queued at the NIC so bursts from
			// different nodes overlap on the wire and flow control
			// stays continuously exercised.
			SendOverhead: 10 * sim.Microsecond,
			TxQueueLimit: cfg.TxQueueLimit,
			Mapping:      mapping,
			Recovery:     cfg.Recovery,
		})
		tb.Nodes = append(tb.Nodes, n)
		net.ConnectHost(n.Interface(), sw, i)
	}
	if !cfg.Mapping {
		ports := make(map[*myrinet.Interface]int, cfg.Nodes)
		for i, n := range tb.Nodes {
			ports[n.Interface()] = i
		}
		net.InstallStaticRoutes(ports)
	}

	if cfg.NoInjector {
		if cfg.Mapping {
			k.RunFor(10 * sim.Millisecond)
		}
		return tb
	}
	// Splice the injector into the tapped node's cable.
	tb.Injector = core.NewDevice(k, core.DeviceConfig{
		Name: "injector",
		// Footnote 5's unknown transceiver delay: the Myricom FI3
		// chips; with the 250 ns pipeline this lands the true added
		// latency near Table 2's observed center.
		ExtraLatency: 500 * sim.Nanosecond,
	})
	cable := net.Cables[tb.Nodes[cfg.TapNode].Name()]
	tb.Injector.Insert(cable)
	tb.Console = serial.NewConsole(k, tb.Injector, cfg.Baud)

	if cfg.Mapping {
		// Warm up: initial delay (1 ms) + scouts + distribution.
		k.RunFor(10 * sim.Millisecond)
	}
	return tb
}

// TapNode returns the node whose cable carries the injector.
func (tb *Testbed) TapNode() *host.Node { return tb.Nodes[tb.cfg.TapNode] }

// Configure sends command lines to the injector over the serial console and
// advances the simulation until the line drains — reconfiguration costs
// real (simulated) time, as it did through the paper's RS-232 path.
func (tb *Testbed) Configure(cmds ...string) {
	for _, c := range cmds {
		tb.Console.Send(c)
	}
	// A command byte takes ~87 us at 115200 baud; run until quiet.
	tb.K.RunFor(sim.Duration(len(cmds)) * 3 * sim.Millisecond)
}

// DutyCycle schedules MODE ON / MODE OFF toggles for both directions over
// the run: on-time every period, starting at the next period boundary.
// Campaigns use it to meter injection intensity, re-arming the trigger the
// way NFTAPE scripts toggled the real board.
func (tb *Testbed) DutyCycle(on, period sim.Duration, repeats int) {
	for i := 0; i < repeats; i++ {
		start := sim.Duration(i) * period
		tb.K.After(start, func() {
			tb.Injector.Engine(DirOutbound).SetMatchMode(core.MatchOn)
			tb.Injector.Engine(DirInbound).SetMatchMode(core.MatchOn)
		})
		tb.K.After(start+on, func() {
			tb.Injector.Engine(DirOutbound).SetMatchMode(core.MatchOff)
			tb.Injector.Engine(DirInbound).SetMatchMode(core.MatchOff)
		})
	}
}

// ConfigureBoth programs both directions' engines directly with the same
// register file (campaigns that bypass the serial path for tight timing).
func (tb *Testbed) ConfigureBoth(cfg core.Config) {
	tb.Injector.Engine(DirOutbound).Configure(cfg)
	tb.Injector.Engine(DirInbound).Configure(cfg)
}

// ConfigureBothMode arms or disarms both directions' triggers.
func (tb *Testbed) ConfigureBothMode(on bool) {
	mode := core.MatchOff
	if on {
		mode = core.MatchOn
	}
	tb.Injector.Engine(DirOutbound).SetMatchMode(mode)
	tb.Injector.Engine(DirInbound).SetMatchMode(mode)
}

// Injections sums both directions' injection counters.
func (tb *Testbed) Injections() uint64 {
	_, _, a := tb.Injector.Engine(DirOutbound).Stats()
	_, _, b := tb.Injector.Engine(DirInbound).Stats()
	return a + b
}
