package core

import (
	"strings"
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/phy"
)

// The injector counts link RESET symbols without importing the link layer;
// the two packages must agree on the code point.
func TestLinkResetCodeMatchesMyrinet(t *testing.T) {
	if LinkResetCode != byte(myrinet.SymReset) {
		t.Fatalf("core.LinkResetCode = %#02x, myrinet.SymReset = %#02x",
			LinkResetCode, byte(myrinet.SymReset))
	}
}

func TestEngineCountsResetSymbols(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Process([]phy.Character{
		phy.ControlChar(LinkResetCode),
		phy.DataChar(LinkResetCode), // data byte with the same value: not a RESET
		phy.ControlChar(0x0C),
		phy.ControlChar(LinkResetCode),
	})
	if got := e.ResetsSeen(); got != 2 {
		t.Fatalf("ResetsSeen = %d, want 2", got)
	}
}

func TestStatReportsResets(t *testing.T) {
	dev, dec := newTestDecoder(t)
	dev.Engine(LeftToRight).Process([]phy.Character{phy.ControlChar(LinkResetCode)})
	resp := dec.Exec("STAT L")
	if !strings.Contains(resp, "resets=1") {
		t.Fatalf("STAT response %q missing resets=1", resp)
	}
}
