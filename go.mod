module netfi

go 1.22
