package core

import (
	"testing"

	"netfi/internal/phy"
)

func TestCaptureRingRecordsContext(t *testing.T) {
	r := NewCaptureRing(4, 3)
	for i := byte(0); i < 10; i++ {
		r.Observe(phy.DataChar(i))
	}
	r.MarkInjection()
	for i := byte(10); i < 20; i++ {
		r.Observe(phy.DataChar(i))
	}
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.PreLen != 4 {
		t.Errorf("PreLen = %d, want 4", ev.PreLen)
	}
	want := []byte{6, 7, 8, 9, 10, 11, 12}
	if len(ev.Context) != len(want) {
		t.Fatalf("context length = %d, want %d", len(ev.Context), len(want))
	}
	for i, b := range want {
		if ev.Context[i].Byte() != b {
			t.Errorf("context[%d] = %v, want %d", i, ev.Context[i], b)
		}
	}
}

func TestCaptureRingPartialPreBuffer(t *testing.T) {
	r := NewCaptureRing(8, 2)
	r.Observe(phy.DataChar(1))
	r.Observe(phy.DataChar(2))
	r.MarkInjection()
	r.Observe(phy.DataChar(3))
	r.Observe(phy.DataChar(4))
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if events[0].PreLen != 2 {
		t.Errorf("PreLen = %d, want 2 (only two chars seen)", events[0].PreLen)
	}
}

func TestCaptureRingNoRetriggerWhileActive(t *testing.T) {
	r := NewCaptureRing(2, 4)
	for i := byte(0); i < 4; i++ {
		r.Observe(phy.DataChar(i))
	}
	r.MarkInjection()
	r.Observe(phy.DataChar(10))
	r.MarkInjection() // during active capture: ignored
	for i := byte(11); i < 15; i++ {
		r.Observe(phy.DataChar(i))
	}
	if got := len(r.Events()); got != 1 {
		t.Errorf("events = %d, want 1 (no retrigger while dumping)", got)
	}
}

func TestCaptureRingMultipleSequentialEvents(t *testing.T) {
	r := NewCaptureRing(2, 2)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			r.Observe(phy.DataChar(byte(i)))
		}
	}
	feed(5)
	r.MarkInjection()
	feed(5)
	r.MarkInjection()
	feed(5)
	if got := len(r.Events()); got != 2 {
		t.Errorf("events = %d, want 2", got)
	}
}

func TestCaptureRingReset(t *testing.T) {
	r := NewCaptureRing(2, 2)
	r.Observe(phy.DataChar(1))
	r.MarkInjection()
	r.Observe(phy.DataChar(2))
	r.Observe(phy.DataChar(3))
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("events survive Reset")
	}
}

// The event store is bounded: past DefaultCaptureEvents completed captures,
// new ones are dropped (and counted) instead of growing the store, and the
// stored records keep their contents.
func TestCaptureRingEventBound(t *testing.T) {
	r := NewCaptureRing(2, 2)
	inject := func(tag byte) {
		r.Observe(phy.DataChar(tag))
		r.Observe(phy.DataChar(tag))
		r.MarkInjection()
		r.Observe(phy.DataChar(tag))
		r.Observe(phy.DataChar(tag))
	}
	for i := 0; i < DefaultCaptureEvents+5; i++ {
		inject(byte(i))
	}
	if got := len(r.Events()); got != DefaultCaptureEvents {
		t.Fatalf("events = %d, want bound %d", got, DefaultCaptureEvents)
	}
	if got := r.DroppedEvents(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	// Drop-new: the survivors are the first DefaultCaptureEvents captures.
	for i, ev := range r.Events() {
		if ev.Context[0].Byte() != byte(i) {
			t.Fatalf("event %d context starts with %d, want %d", i, ev.Context[0].Byte(), i)
		}
	}
	r.Reset()
	if len(r.Events()) != 0 || r.DroppedEvents() != 0 {
		t.Fatal("Reset did not clear events and drop counter")
	}
}

// Reset recycles event storage: a full fill-reset-fill cycle reuses the
// slots and their Context buffers instead of reallocating them.
func TestCaptureRingStorageRecycled(t *testing.T) {
	r := NewCaptureRing(2, 2)
	fill := func() {
		for i := 0; i < DefaultCaptureEvents; i++ {
			r.Observe(phy.DataChar(1))
			r.Observe(phy.DataChar(2))
			r.MarkInjection()
			r.Observe(phy.DataChar(3))
			r.Observe(phy.DataChar(4))
		}
	}
	fill()
	r.Reset()
	if avg := testing.AllocsPerRun(5, func() { fill(); r.Reset() }); avg != 0 {
		t.Errorf("warmed fill cycle allocates %.2f objects, want 0", avg)
	}
}

func TestCaptureGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capture geometry did not panic")
		}
	}()
	NewCaptureRing(0, 1)
}
