// Mapstorm reproduces Fig. 11 live: the injector rewrites one node's
// identity in its scout replies to the controller's own address. The
// controller, "confused by the appearance of what it believes is another
// controller", fails every mapping attempt differently — the faulty map is
// not static.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/myrinet"
	"netfi/internal/netmap"
	"netfi/internal/sim"
)

func main() {
	const mapPeriod = 200 * sim.Millisecond
	tb := campaign.NewTestbed(campaign.TestbedConfig{
		Seed:      5,
		Mapping:   true,
		MapPeriod: mapPeriod,
	})
	mapper := tb.Nodes[len(tb.Nodes)-1].Interface().MCP()
	before := mapper.LastSnapshot()
	fmt.Println("-- network before corruption (Fig. 11 left) --")
	fmt.Print(netmap.Render(before))

	// Rewrite the tapped node's MAC tail (in its outbound scout replies)
	// to the controller's, with the CRC-8 recomputed so the corrupted
	// reply still parses.
	victim := campaign.NodeMAC(0)
	ctrl := campaign.NodeMAC(len(tb.Nodes) - 1)
	tb.Configure(
		"DIR L",
		fmt.Sprintf("COMPARE %02X %02X %02X 00", victim[3], victim[4], victim[5]),
		fmt.Sprintf("CORRUPT REPLACE -- -- %02X --", ctrl[5]),
		"CRC ON",
		"MODE ON",
	)

	var last *myrinet.Snapshot
	for round := 0; round < 5; round++ {
		tb.K.RunFor(mapPeriod)
		s := mapper.LastSnapshot()
		if s == last {
			continue
		}
		last = s
		fmt.Printf("\n-- mapping attempt (round %d) --\n", s.Round)
		fmt.Print(netmap.Render(s))
	}

	fmt.Println("\n-- diff, first vs last (Fig. 11 before/after) --")
	fmt.Print(netmap.Diff(before, last))
	total, inconsistent := mapper.Rounds()
	fmt.Printf("\nmapping rounds: %d, inconsistent: %d\n", total, inconsistent)
}
