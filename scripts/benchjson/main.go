// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, one record per benchmark with ns/op, B/op, allocs/op,
// and any custom b.ReportMetric metrics (events/s, trials/s, …) keyed by
// unit. scripts/bench.sh pipes through it to produce BENCH_<date>.json.
//
// Modes:
//
//	benchjson                  convert stdin to JSON on stdout
//	benchjson -merge FILE      convert stdin, then overlay the records onto
//	                           FILE's document (same-name records replaced,
//	                           others kept) — re-running bench.sh on the same
//	                           day extends the day's file instead of erasing
//	                           benchmarks the second run did not execute
//	benchjson -compare BASE -candidate CAND -bench NAME -metric UNIT \
//	          -max-regress FRAC [-lower-better]
//	                           exit nonzero when CAND's metric for NAME
//	                           regressed more than FRAC relative to BASE —
//	                           the CI regression gate
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// record is one benchmark result line.
type record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// output is the whole document. NumCPU and Gomaxprocs are stamped from the
// converting process's runtime (bench.sh runs the benchmarks and benchjson
// on the same machine), so a committed baseline records whether it came
// from the known 1-CPU bench container or a real multicore box — without
// it, parallel-scaling numbers (sharded fabrics, campaign fan-out) are
// uninterpretable across baselines.
type output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	mergePath := flag.String("merge", "", "JSON file to overlay the parsed records onto")
	comparePath := flag.String("compare", "", "baseline JSON file (compare mode)")
	candidatePath := flag.String("candidate", "", "candidate JSON file (compare mode)")
	benchName := flag.String("bench", "", "benchmark name to compare")
	metric := flag.String("metric", "ns/op", "metric unit to compare (ns/op or a custom unit)")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression")
	lowerBetter := flag.Bool("lower-better", false, "treat smaller metric values as better (e.g. ns/op)")
	flag.Parse()

	if *comparePath != "" {
		os.Exit(compare(*comparePath, *candidatePath, *benchName, *metric, *maxRegress, *lowerBetter))
	}

	doc := parseStream(os.Stdin)
	if *mergePath != "" {
		if old, err := readDoc(*mergePath); err == nil {
			doc = mergeDocs(old, doc)
		}
		// A missing or unreadable merge target degrades to plain convert.
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseStream consumes `go test -bench` output.
func parseStream(r io.Reader) output {
	out := output{NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	return out
}

// parseBench parses one result line:
//
//	BenchmarkKernel-4  1000  11763 ns/op  85012 events/s  5376 B/op  1 allocs/op
//
// The format is pairs of (value, unit) after the iteration count. Slashed
// sub-benchmark names (BenchmarkX/workers=2) pass through unchanged apart
// from the trailing -GOMAXPROCS suffix; a benchmark reporting no custom
// metrics (not even -benchmem columns) yields a record with just ns/op.
func parseBench(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	name := stripProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iters: iters, Metrics: map[string]float64{}}
	// Walk (value, unit) pairs; a field that is not a number advances by one
	// so a stray token cannot shift every following pair out of alignment.
	for i := 2; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++
			continue
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
		i += 2
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to every
// benchmark name, and nothing else: dashes inside sub-benchmark names
// (BenchmarkX/per-symbol-4 -> BenchmarkX/per-symbol) survive.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func readDoc(path string) (output, error) {
	var doc output
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	err = json.Unmarshal(data, &doc)
	return doc, err
}

// mergeDocs overlays cur's records onto old: records sharing a name are
// replaced by cur's version in place, new names append in cur's order, and
// old records cur did not re-run survive. Header fields prefer cur.
func mergeDocs(old, cur output) output {
	merged := old
	if cur.Goos != "" {
		merged.Goos = cur.Goos
	}
	if cur.Goarch != "" {
		merged.Goarch = cur.Goarch
	}
	if cur.Pkg != "" {
		merged.Pkg = cur.Pkg
	}
	if cur.CPU != "" {
		merged.CPU = cur.CPU
	}
	if cur.NumCPU != 0 {
		merged.NumCPU = cur.NumCPU
	}
	if cur.Gomaxprocs != 0 {
		merged.Gomaxprocs = cur.Gomaxprocs
	}
	merged.Benchmarks = append([]record(nil), old.Benchmarks...)
	index := make(map[string]int, len(merged.Benchmarks))
	for i, r := range merged.Benchmarks {
		index[r.Name] = i
	}
	for _, r := range cur.Benchmarks {
		if i, ok := index[r.Name]; ok {
			merged.Benchmarks[i] = r
		} else {
			index[r.Name] = len(merged.Benchmarks)
			merged.Benchmarks = append(merged.Benchmarks, r)
		}
	}
	return merged
}

// metricOf extracts the requested metric from a record; ns/op reads the
// dedicated field so benchmarks with no custom metrics compare cleanly.
func metricOf(r record, unit string) (float64, bool) {
	if unit == "ns/op" {
		return r.NsPerOp, r.NsPerOp != 0
	}
	v, ok := r.Metrics[unit]
	return v, ok
}

func find(doc output, name string) (record, bool) {
	for _, r := range doc.Benchmarks {
		if r.Name == name {
			return r, true
		}
	}
	return record{}, false
}

// compare returns the process exit code: 0 pass, 1 regression, 2 usage or
// missing-data error.
func compare(basePath, candPath, name, unit string, maxRegress float64, lowerBetter bool) int {
	if candPath == "" || name == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs -candidate and -bench")
		return 2
	}
	base, err := readDoc(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		return 2
	}
	cand, err := readDoc(candPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: candidate: %v\n", err)
		return 2
	}
	br, ok := find(base, name)
	if !ok {
		// A baseline predating the benchmark cannot gate it.
		fmt.Fprintf(os.Stderr, "benchjson: %s not in baseline, skipping gate\n", name)
		return 0
	}
	cr, ok := find(cand, name)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s not in candidate\n", name)
		return 2
	}
	bv, ok := metricOf(br, unit)
	if !ok || bv == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s has no %s, skipping gate\n", name, unit)
		return 0
	}
	cv, ok := metricOf(cr, unit)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: candidate %s has no %s\n", name, unit)
		return 2
	}
	var regress float64
	if lowerBetter {
		regress = cv/bv - 1
	} else {
		regress = 1 - cv/bv
	}
	fmt.Printf("%s %s: baseline %.4g candidate %.4g regression %.1f%% (limit %.1f%%)\n",
		name, unit, bv, cv, 100*regress, 100*maxRegress)
	if regress > maxRegress {
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed beyond the limit\n", name)
		return 1
	}
	return 0
}
