// Command netfi regenerates every table and figure of the paper's
// evaluation from the simulated test bed:
//
//	netfi table1       FPGA synthesis results (Table 1)
//	netfi table2       injector latency measurements (Table 2)
//	netfi table4       control-symbol corruption campaign (Table 4)
//	netfi sec431       throughput-collapse narratives (§4.3.1)
//	netfi sec432       packet-type corruption (§4.3.2)
//	netfi sec433       physical-address corruption + Fig. 11 (§4.3.3)
//	netfi sec434       UDP checksum evasion (§4.3.4)
//	netfi passthrough  transparency demonstration (§3.5 / Fig. 8)
//	netfi multirule    multi-target corruption via the rule engine
//	netfi resilience   failure-recovery campaign with outcome triage
//	netfi all          everything above in order
//
// Flags:
//
//	-seed N    simulation seed (default 1)
//	-scale F   scale experiment durations/rounds toward the paper's full
//	           lengths (default 1.0; e.g. -scale 12 runs Table 2 with
//	           240k ping-pong rounds and §4.3.1 for a full minute)
package main

import (
	"flag"
	"fmt"
	"os"

	"netfi/internal/campaign"
	"netfi/internal/sim"
	"netfi/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("netfi", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	scale := fs.Float64("scale", 1.0, "scale experiment length toward the paper's full runs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netfi [-seed N] [-scale F] <table1|table2|table4|sec431|sec432|sec433|sec434|passthrough|multirule|resilience|all>")
		return 2
	}
	cmds := map[string]func(int64, float64){
		"table1":      table1,
		"table2":      table2,
		"table4":      table4,
		"sec431":      sec431,
		"sec432":      sec432,
		"sec433":      sec433,
		"sec434":      sec434,
		"passthrough": passthrough,
		"multirule":   multirule,
		"resilience":  resilience,
	}
	name := fs.Arg(0)
	if name == "all" {
		for _, n := range []string{"table1", "table2", "table4", "sec431", "sec432", "sec433", "sec434", "passthrough", "multirule", "resilience"} {
			fmt.Printf("==== %s ====\n", n)
			cmds[n](*seed, *scale)
			fmt.Println()
		}
		return 0
	}
	cmd, ok := cmds[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "netfi: unknown experiment %q\n", name)
		return 2
	}
	cmd(*seed, *scale)
	return 0
}

func table1(_ int64, _ float64) {
	fmt.Println("Table 1: synthesis results of the FPGA code (structural estimate vs paper)")
	fmt.Print(synth.Table1())
}

func table2(seed int64, scale float64) {
	fmt.Println("Table 2: latency measurements (UDP ping-pong, with/without injector)")
	rows := campaign.RunTable2(campaign.Table2Options{
		Seed:   seed,
		Rounds: int(20_000 * scale),
	})
	fmt.Print(campaign.FormatTable2(rows))
}

func table4(seed int64, scale float64) {
	fmt.Println("Table 4: control symbol corruption campaign")
	rows := campaign.RunTable4(campaign.Table4Options{
		Seed:     seed,
		Duration: sim.Duration(1700 * scale * float64(sim.Millisecond)),
	})
	fmt.Print(campaign.FormatTable4(rows))
}

func sec431(seed int64, scale float64) {
	fmt.Println("Section 4.3.1: throughput under flow-control corruption")
	res := campaign.RunSec431(campaign.Sec431Options{
		Seed:     seed,
		Duration: sim.Duration(5 * scale * float64(sim.Second)),
	})
	fmt.Print(campaign.FormatSec431(res))
}

func sec432(seed int64, _ float64) {
	fmt.Println("Section 4.3.2: packet type corruption")
	fmt.Print(campaign.FormatSec432(campaign.RunSec432(campaign.Sec432Options{Seed: seed})))
}

func sec433(seed int64, _ float64) {
	fmt.Println("Section 4.3.3: physical address corruption (includes Fig. 11)")
	fmt.Print(campaign.FormatSec433(campaign.RunSec433(campaign.Sec433Options{Seed: seed})))
}

func sec434(seed int64, _ float64) {
	fmt.Println("Section 4.3.4: UDP address corruption / checksum evasion")
	fmt.Print(campaign.FormatSec434(campaign.RunSec434(campaign.Sec434Options{Seed: seed})))
}

func multirule(seed int64, _ float64) {
	fmt.Println("Multi-target address corruption via the rule engine (one pass, one rule set)")
	res := campaign.RunMultiRule(campaign.MultiRuleOptions{Seed: seed})
	fmt.Print(campaign.FormatMultiRule(res))
	ent := synth.RuleEngineEntity(res.DFAStates, res.DFAStates*512, res.RulesArmed)
	est := ent.Estimate()
	fmt.Printf("estimated FPGA cost of this rule set: %d gates, %d FGs, %d muxes, %d DFFs\n",
		est.Gates, est.FunctionGenerators, est.Multiplexors, est.DFlipFlops)
}

func resilience(seed int64, scale float64) {
	fmt.Println("Resilience campaign: randomized injections, recovery on vs off (same seeds)")
	res := campaign.RunResilience(campaign.ResilienceOptions{
		Seed:   seed,
		Trials: int(14 * scale),
	})
	fmt.Print(campaign.FormatResilience(res))
}

func passthrough(seed int64, scale float64) {
	fmt.Println("Section 3.5: pass-through transparency")
	res := campaign.RunPassThrough(campaign.PassThroughOptions{
		Seed:     seed,
		Duration: sim.Duration(2 * scale * float64(sim.Second)),
	})
	fmt.Print(campaign.FormatPassThrough(res))
}
