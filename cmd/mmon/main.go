// Command mmon is the Myrinet monitoring program of §4.2: it runs a
// simulated Fig. 10 test bed under load, periodically sampling the mapper's
// network map, every node's routing table, and the link/port counters —
// "the status of the network and the associated information (like routing
// tables and control registers) were monitored with the Myrinet monitoring
// program mmon".
//
// Flags:
//
//	-seed N      simulation seed (default 1)
//	-duration D  simulated observation time in seconds (default 2)
//	-interval D  sampling interval in milliseconds (default 500)
//	-corrupt     corrupt the tapped node's identity toward the controller
//	             mid-run, reproducing Fig. 11 live
package main

import (
	"flag"
	"fmt"
	"os"

	"netfi/internal/campaign"
	"netfi/internal/netmap"
	"netfi/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Float64("duration", 2, "observation time, simulated seconds")
	interval := flag.Float64("interval", 500, "sampling interval, simulated milliseconds")
	corrupt := flag.Bool("corrupt", false, "corrupt the tapped node's identity to the controller's mid-run")
	flag.Parse()

	tb := campaign.NewTestbed(campaign.TestbedConfig{
		Seed:      *seed,
		Mapping:   true,
		MapPeriod: 200 * sim.Millisecond,
	})
	load := tb.StartLoad(campaign.LoadConfig{})
	mapper := tb.Nodes[len(tb.Nodes)-1].Interface().MCP()

	total := sim.Duration(*duration * float64(sim.Second))
	step := sim.Duration(*interval * float64(sim.Millisecond))
	if *corrupt {
		tb.K.After(total/2, func() {
			m := campaign.NodeMAC(0)
			c := campaign.NodeMAC(len(tb.Nodes) - 1)
			tb.Console.Send(fmt.Sprintf("COMPARE %02X %02X %02X 00", m[3], m[4], m[5]))
			tb.Console.Send(fmt.Sprintf("CORRUPT REPLACE -- -- %02X --", c[5]))
			tb.Console.Send("CRC ON")
			tb.Console.Send("MODE ON")
		})
	}
	for at := step; at <= total; at += step {
		tb.K.RunUntil(at)
		fmt.Printf("---- t=%v ----\n", tb.K.Now())
		fmt.Print(netmap.Render(mapper.LastSnapshot()))
		for i, n := range tb.Nodes {
			fmt.Printf("node%d  routes=%d  %v  host={udp tx=%d rx=%d}\n",
				i, len(n.Interface().Routes()), n.Interface().Counters(),
				n.Stats().UDPSent, n.Stats().UDPReceived)
		}
		for p := 0; p < tb.Switch.Ports(); p++ {
			if !tb.Switch.Attached(p) {
				continue
			}
			fmt.Printf("sw.p%d  %v\n", p, tb.Switch.PortCounters(p))
		}
		fmt.Println()
	}
	load.Stop()
	total64, inconsistent := mapper.Rounds()
	fmt.Printf("mapping rounds: %d (%d inconsistent)\n", total64, inconsistent)
	if load.CorruptAccepted() > 0 {
		fmt.Fprintf(os.Stderr, "mmon: ACTIVE fault evidence: %d corrupted payloads accepted\n", load.CorruptAccepted())
		os.Exit(1)
	}
}
