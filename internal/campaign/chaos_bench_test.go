package campaign

import (
	"testing"

	"netfi/internal/sim"
)

// BenchmarkChaosFork vs BenchmarkChaosRebuild is the chaos engine's reason
// to exist: a fork deep-copies an already-warmed world, a rebuild
// constructs and re-warms one from scratch. Both yield a world ready to run
// the same fault plan, so forks/s against (rebuilt) trials/s is the
// like-for-like measure of warm-once amortization; the PR's acceptance
// floor is a 5x advantage. (The scenario simulation that follows costs the
// same on either world — TestForkEquivalence proves it byte-identical — so
// it is excluded from both loops.)

func chaosBenchOptions() ChaosOptions {
	return ChaosOptions{
		Seed:     42,
		MaxK:     2,
		Messages: 4,
		Gap:      5 * sim.Millisecond,
	}
}

func BenchmarkChaosFork(b *testing.B) {
	base := newChaosBase(42, chaosBenchOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.fork(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "forks/s")
}

func BenchmarkChaosRebuild(b *testing.B) {
	opts := chaosBenchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		newChaosBase(42, opts)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkChaosSweep measures the end-to-end fork-per-scenario pipeline —
// plan generation, forking, fault scheduling, simulation, triage — in
// forks per second at the CLI's default worker count.
func BenchmarkChaosSweep(b *testing.B) {
	opts := chaosBenchOptions()
	opts.Forks = 16
	opts.Workers = DefaultWorkers()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunChaos(opts)
	}
	b.ReportMetric(float64(b.N*opts.Forks)/b.Elapsed().Seconds(), "forks/s")
}
