package main

import (
	"runtime"
	"strings"
	"testing"
)

func TestParseBenchPairs(t *testing.T) {
	r, ok := parseBench("BenchmarkKernel-4  1000  11763 ns/op  85012 events/s  5376 B/op  1 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkKernel" || r.Iters != 1000 || r.NsPerOp != 11763 {
		t.Errorf("got %+v", r)
	}
	want := map[string]float64{"events/s": 85012, "B/op": 5376, "allocs/op": 1}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseBenchSlashedNames(t *testing.T) {
	cases := map[string]string{
		"BenchmarkCampaignThroughput/workers=2-4":   "BenchmarkCampaignThroughput/workers=2",
		"BenchmarkFIFOInjectorArmed/per-symbol-4":   "BenchmarkFIFOInjectorArmed/per-symbol",
		"BenchmarkRuleEngine/8rules/dfa-16":         "BenchmarkRuleEngine/8rules/dfa",
		"BenchmarkAblationPipelineDepth/slack=20-1": "BenchmarkAblationPipelineDepth/slack=20",
	}
	for in, want := range cases {
		r, ok := parseBench(in + "  100  5.0 ns/op")
		if !ok {
			t.Fatalf("%s: not parsed", in)
		}
		if r.Name != want {
			t.Errorf("%s: name = %s, want %s", in, r.Name, want)
		}
	}
}

func TestParseBenchNoCustomMetrics(t *testing.T) {
	r, ok := parseBench("Benchmark8b10bEncode-4  92371734  13.02 ns/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.NsPerOp != 13.02 || r.Metrics != nil {
		t.Errorf("got %+v, want bare ns/op record", r)
	}
}

func TestParseBenchStrayTokenRealigns(t *testing.T) {
	// A non-numeric token must advance by one, not swallow the next pair.
	r, ok := parseBench("BenchmarkX-4  100  7.0 ns/op  oops  42 widgets/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Metrics["widgets/s"] != 42 {
		t.Errorf("pair after stray token lost: %+v", r)
	}
}

func TestParseStream(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: netfi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkA-4  10  100 ns/op
--- BENCH: BenchmarkA-4
    some log output
PASS
ok  netfi 1.0s
`
	doc := parseStream(strings.NewReader(in))
	if doc.Goos != "linux" || doc.Pkg != "netfi" || len(doc.Benchmarks) != 1 {
		t.Fatalf("got %+v", doc)
	}
	// The converting machine's CPU topology is stamped into every document
	// so committed baselines are auditable (1-CPU bench container vs real
	// multicore).
	if doc.NumCPU != runtime.NumCPU() || doc.Gomaxprocs != runtime.GOMAXPROCS(0) {
		t.Errorf("cpu metadata = %d/%d, want %d/%d",
			doc.NumCPU, doc.Gomaxprocs, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
}

func TestMergeDocs(t *testing.T) {
	old := output{
		Goos:       "linux",
		NumCPU:     8,
		Gomaxprocs: 8,
		Benchmarks: []record{
			{Name: "A", NsPerOp: 1},
			{Name: "B", NsPerOp: 2},
		},
	}
	cur := output{
		NumCPU:     1,
		Gomaxprocs: 1,
		Benchmarks: []record{
			{Name: "B", NsPerOp: 20},
			{Name: "C", NsPerOp: 3},
		},
	}
	m := mergeDocs(old, cur)
	if len(m.Benchmarks) != 3 {
		t.Fatalf("merged %d records, want 3", len(m.Benchmarks))
	}
	if m.Benchmarks[0].Name != "A" || m.Benchmarks[1].NsPerOp != 20 || m.Benchmarks[2].Name != "C" {
		t.Errorf("merge order/content wrong: %+v", m.Benchmarks)
	}
	if m.Goos != "linux" {
		t.Errorf("header lost: %+v", m)
	}
	// The fresh run's CPU metadata wins: the merged file must describe the
	// machine that produced the newest records.
	if m.NumCPU != 1 || m.Gomaxprocs != 1 {
		t.Errorf("cpu metadata not refreshed: %d/%d, want 1/1", m.NumCPU, m.Gomaxprocs)
	}
	if old.Benchmarks[1].NsPerOp != 2 {
		t.Error("merge mutated the old document")
	}
}

func TestMetricOf(t *testing.T) {
	r := record{NsPerOp: 5, Metrics: map[string]float64{"MB/s": 800}}
	if v, ok := metricOf(r, "ns/op"); !ok || v != 5 {
		t.Errorf("ns/op = %v %v", v, ok)
	}
	if v, ok := metricOf(r, "MB/s"); !ok || v != 800 {
		t.Errorf("MB/s = %v %v", v, ok)
	}
	if _, ok := metricOf(record{}, "MB/s"); ok {
		t.Error("missing metric reported ok")
	}
}
