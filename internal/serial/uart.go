// Package serial models the fault injector's control path (§3.3): an
// RS-232 UART carries ASCII between the external management system and the
// board; on the board, the communications handler repacks the byte stream
// into the 16-bit SPI frame format consumed by the command decoder, and
// converts the output generator's responses back. The UART itself is
// off-loaded to a separate chip in the paper's design, so it is modeled
// here as its own component with real baud-rate timing — reconfiguring the
// injector over a 115200-baud line visibly costs simulated milliseconds,
// exactly the "slower serial line" the paper leans on in once-mode
// campaigns.
package serial

import (
	"netfi/internal/sim"
)

// ByteSink consumes bytes delivered by a UART.
type ByteSink interface {
	PutByte(b byte)
}

// ByteSinkFunc adapts a function to ByteSink.
type ByteSinkFunc func(b byte)

// PutByte implements ByteSink.
func (f ByteSinkFunc) PutByte(b byte) { f(b) }

// UART is one direction of an asynchronous serial line: 8 data bits, no
// parity, one stop bit (8N1: ten bit times per byte). Bytes queue behind
// each other like a hardware transmit shift register.
//
// The zero value is not usable; construct with NewUART.
type UART struct {
	k        *sim.Kernel
	byteTime sim.Duration
	dst      ByteSink

	busyUntil sim.Time
	sent      uint64

	// Transmit shift queue: the pump delivers q[qPos], reschedules itself
	// one byte time later, and recycles the queue when it drains. One
	// pending kernel event per UART instead of one per queued byte.
	q       []byte
	qPos    int
	pumping bool
	nextAt  sim.Time
}

// DefaultBaud matches the paper's era of RS-232 management links.
const DefaultBaud = 115200

// bitsPerByte is start + 8 data + stop.
const bitsPerByte = 10

// NewUART returns a transmitter at the given baud rate delivering to dst.
// baud <= 0 selects DefaultBaud.
func NewUART(k *sim.Kernel, baud int, dst ByteSink) *UART {
	if baud <= 0 {
		baud = DefaultBaud
	}
	if dst == nil {
		panic("serial: nil destination")
	}
	return &UART{
		k:        k,
		byteTime: sim.Duration(int64(bitsPerByte) * int64(sim.Second) / int64(baud)),
		dst:      dst,
	}
}

// ByteTime reports the serialization time of one byte (10 bit times).
func (u *UART) ByteTime() sim.Duration { return u.byteTime }

// Send queues bytes for transmission; each is delivered to the sink when
// its stop bit completes.
func (u *UART) Send(data []byte) sim.Time {
	start := u.k.Now()
	if u.busyUntil > start {
		start = u.busyUntil
	}
	start += sim.Duration(len(data)) * u.byteTime
	u.busyUntil = start
	u.sent += uint64(len(data))
	if len(data) == 0 {
		return start
	}
	u.q = append(u.q, data...)
	if !u.pumping {
		u.pumping = true
		u.nextAt = start - sim.Duration(len(data)-1)*u.byteTime
		u.k.AtArg(u.nextAt, uartDeliver, u)
	}
	return start
}

// uartDeliver is the capture-free pump: deliver the next queued byte and
// reschedule for the one behind it.
func uartDeliver(a any) {
	u := a.(*UART)
	b := u.q[u.qPos]
	u.qPos++
	if u.qPos < len(u.q) {
		u.nextAt += u.byteTime
		u.k.AtArg(u.nextAt, uartDeliver, u)
	} else {
		u.pumping = false
		u.q = u.q[:0]
		u.qPos = 0
	}
	u.dst.PutByte(b)
}

// SendString queues a string.
func (u *UART) SendString(s string) sim.Time { return u.Send([]byte(s)) }

// Sent reports the cumulative byte count.
func (u *UART) Sent() uint64 { return u.sent }

// BusyUntil reports when the transmit shift register drains.
func (u *UART) BusyUntil() sim.Time { return u.busyUntil }
