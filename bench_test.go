package netfi

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the core datapath and ablations of the design
// choices DESIGN.md calls out. The campaign benchmarks run one full
// experiment per iteration and report the paper's metric through
// b.ReportMetric, so `go test -bench=.` regenerates the evaluation and
// EXPERIMENTS.md can quote the output directly.

import (
	"testing"

	"netfi/internal/campaign"
	"netfi/internal/core"
	"netfi/internal/enc8b10b"
	"netfi/internal/fibrechannel"
	"netfi/internal/monitor"
	"netfi/internal/myrinet"
	"netfi/internal/phy"
	"netfi/internal/rules"
	"netfi/internal/sim"
	"netfi/internal/synth"
)

// ---- Table 1: synthesis results ----

func BenchmarkTable1Synthesis(b *testing.B) {
	var total synth.Resources
	for i := 0; i < b.N; i++ {
		total = synth.EstimatedTotal()
	}
	b.ReportMetric(float64(total.FunctionGenerators), "FGs")
	b.ReportMetric(float64(total.DFlipFlops), "DFFs")
	b.ReportMetric(float64(synth.PaperTotal.FunctionGenerators), "paper-FGs")
	if b.N == 1 {
		b.Log("\n" + synth.Table1())
	}
}

// ---- Table 2: latency measurements ----

func BenchmarkTable2Latency(b *testing.B) {
	var rows []campaign.Table2Experiment
	for i := 0; i < b.N; i++ {
		rows = campaign.RunTable2(campaign.Table2Options{Seed: 3, Rounds: 5000})
	}
	var sum float64
	for _, r := range rows {
		sum += r.AddedLatency.Nanoseconds()
	}
	b.ReportMetric(sum/float64(len(rows)), "added-ns")
	b.ReportMetric(rows[0].TrueDeviceLag.Nanoseconds(), "true-ns")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatTable2(rows))
	}
}

// ---- Table 4: control symbol corruption ----

func BenchmarkTable4ControlSymbols(b *testing.B) {
	var rows []campaign.Table4Row
	for i := 0; i < b.N; i++ {
		rows = campaign.RunTable4(campaign.Table4Options{Seed: 7})
	}
	var worst, avg float64
	for _, r := range rows {
		avg += r.LossRate
		if r.LossRate > worst {
			worst = r.LossRate
		}
	}
	b.ReportMetric(100*avg/float64(len(rows)), "avg-loss-%")
	b.ReportMetric(100*worst, "worst-loss-%")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatTable4(rows))
	}
}

// ---- §4.3.1: throughput collapse narratives ----

func BenchmarkSec431Throughput(b *testing.B) {
	var r campaign.Sec431Result
	for i := 0; i < b.N; i++ {
		r = campaign.RunSec431(campaign.Sec431Options{Seed: 11, Duration: 2 * sim.Second})
	}
	b.ReportMetric(r.BaselinePerMin, "base-msgs/min")
	b.ReportMetric(r.StopRunPerMin, "stop-msgs/min")
	b.ReportMetric(100*r.GapThroughputFrac, "gap-tput-%")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatSec431(r))
	}
}

// ---- §4.3.2: packet type corruption ----

func BenchmarkSec432PacketTypes(b *testing.B) {
	var r campaign.Sec432Result
	for i := 0; i < b.N; i++ {
		r = campaign.RunSec432(campaign.Sec432Options{Seed: 21})
	}
	reproduced := 0
	for _, ok := range []bool{
		r.MappingNodeRemoved, r.MappingNodeRestored, r.DataPacketDropped,
		r.DataRoutesUntouched, r.RouteMSBConsumed, r.RouteMSBNoIncident,
		r.MisrouteLost, r.MisrouteNotAccepted,
	} {
		if ok {
			reproduced++
		}
	}
	b.ReportMetric(float64(reproduced), "reproduced/8")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatSec432(r))
	}
}

// ---- §4.3.3: address corruption (includes Fig. 11) ----

func BenchmarkSec433Addresses(b *testing.B) {
	var r campaign.Sec433Result
	for i := 0; i < b.N; i++ {
		r = campaign.RunSec433(campaign.Sec433Options{Seed: 31})
	}
	reproduced := 0
	for _, ok := range []bool{
		r.DestDroppedByCRC, r.DestNeitherReceived, r.SelfUnreachable,
		r.SelfMappingWorks, r.SelfRoutingStable, r.CtrlMapsInconsistent,
		r.CtrlMapsVary, r.GhostInMap, r.RealGone, r.GhostTrafficDrops,
	} {
		if ok {
			reproduced++
		}
	}
	b.ReportMetric(float64(reproduced), "reproduced/10")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatSec433(r))
	}
}

// ---- §4.3.4: UDP checksum evasion ----

func BenchmarkSec434UDPChecksum(b *testing.B) {
	var r campaign.Sec434Result
	for i := 0; i < b.N; i++ {
		r = campaign.RunSec434(campaign.Sec434Options{Seed: 41})
	}
	ok := 0.0
	if r.EvadingDelivered {
		ok++
	}
	if r.NonEvadingDropped {
		ok++
	}
	b.ReportMetric(ok, "reproduced/2")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatSec434(r))
	}
}

// ---- §3.5 / Fig. 8: pass-through transparency ----

func BenchmarkFig8PassThrough(b *testing.B) {
	var r campaign.PassThroughResult
	for i := 0; i < b.N; i++ {
		r = campaign.RunPassThrough(campaign.PassThroughOptions{Seed: 51, Duration: sim.Second})
	}
	b.ReportMetric(100*r.RateImpact, "rate-impact-%")
	b.ReportMetric(r.WithRate, "msgs/s")
	if b.N == 1 {
		b.Log("\n" + campaign.FormatPassThrough(r))
	}
}

// ---- Figs. 2-3: the FIFO injector datapath itself ----

func BenchmarkFIFOInjectorPassThrough(b *testing.B) {
	e := core.NewEngine(core.DefaultSlackChars)
	burst := phy.DataChars(make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ProcessBatch(burst)
	}
}

// BenchmarkFIFOInjectorPerSymbol is the pre-batch baseline: the same unarmed
// burst clocked through the per-symbol FSM, for comparison against the
// cut-through numbers above.
func BenchmarkFIFOInjectorPerSymbol(b *testing.B) {
	e := core.NewEngine(core.DefaultSlackChars)
	burst := phy.DataChars(make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(burst)
	}
}

func BenchmarkFIFOInjectorMatching(b *testing.B) {
	e := core.NewEngine(core.DefaultSlackChars)
	e.Configure(core.Config{
		Match:       core.MatchOn,
		CompareData: [core.WindowSize]phy.Character{0, 0, phy.DataChar(0x18), phy.DataChar(0x18)},
		CompareMask: [core.WindowSize]core.CharMask{0, 0, core.MaskFull, core.MaskFull},
		Corrupt:     core.CorruptToggle,
		CorruptData: [core.WindowSize]phy.Character{0, 0, 1, 0},
	})
	burst := phy.DataChars(make([]byte, 1024))
	burst[512] = phy.DataChar(0x18)
	burst[513] = phy.DataChar(0x18)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(burst)
	}
}

// BenchmarkFIFOInjectorArmed measures the batch path with 8 rules armed:
// the skip map still covers most of the burst (the rules anchor on two rare
// byte pairs), so ProcessBatch should beat the per-symbol path even though
// the automaton must be consulted around every candidate anchor.
func BenchmarkFIFOInjectorArmed(b *testing.B) {
	for _, n := range []int{8, 64} {
		for _, path := range []string{"batch", "per-symbol"} {
			b.Run(itoa(n)+"rules/"+path, func(b *testing.B) {
				prog, err := rules.Compile(ruleBenchSet(n), rules.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if pf := prog.Prefilter(); pf == nil {
					b.Fatal("armed benchmark rules compiled without a prefilter")
				}
				e := core.NewEngine(core.DefaultSlackChars)
				e.SetRuleProgram(prog)
				burst := phy.DataChars(make([]byte, 1024))
				burst[512] = phy.DataChar(0x20)
				burst[513] = phy.DataChar(0x21)
				b.SetBytes(1024)
				b.ResetTimer()
				if path == "batch" {
					for i := 0; i < b.N; i++ {
						e.ProcessBatch(burst)
					}
				} else {
					for i := 0; i < b.N; i++ {
						e.Process(burst)
					}
				}
			})
		}
	}
}

// BenchmarkRuleEngine measures the multi-rule trigger path through the same
// datapath as the legacy benchmark above: bursts of 1024 characters with one
// embedded two-character match, with 1, 8 and 64 concurrent rules armed, in
// both compiled forms (flat DFA transition table vs per-rule NFA lanes). The
// DFA rows are the hardware-faithful cost model — per-symbol work independent
// of rule count — and must stay within small constant factors of the legacy
// single-pattern matcher.
func BenchmarkRuleEngine(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		set := ruleBenchSet(n)
		for _, form := range []struct {
			name  string
			force bool
		}{{"dfa", false}, {"lanes", true}} {
			b.Run(itoa(n)+"rules/"+form.name, func(b *testing.B) {
				prog, err := rules.Compile(set, rules.Options{ForceLanes: form.force})
				if err != nil {
					b.Fatal(err)
				}
				if got := prog.Stats().Mode; !form.force && got != "dfa" {
					b.Fatalf("expected dfa form, compiled to %s", got)
				}
				e := core.NewEngine(core.DefaultSlackChars)
				e.SetRuleProgram(prog)
				burst := phy.DataChars(make([]byte, 1024))
				burst[512] = phy.DataChar(0x20)
				burst[513] = phy.DataChar(0x21)
				b.SetBytes(1024)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Process(burst)
				}
				b.ReportMetric(float64(prog.Stats().DFAStates), "dfa-states")
			})
		}
	}
}

// ruleBenchSet builds n two-step toggle rules over disjoint byte pairs;
// only rule 1's pair is embedded in the benchmark burst.
func ruleBenchSet(n int) []rules.Rule {
	rs := make([]rules.Rule, n)
	for i := range rs {
		b0 := uint16(0x20 + 2*i)
		rs[i] = rules.Rule{
			ID:     i + 1,
			Mode:   rules.ModeOn,
			Action: rules.ActionToggle,
			Steps: []rules.Step{
				{Sym: 0x100 | b0, Mask: rules.SymbolMask},
				{Sym: 0x100 | (b0 + 1), Mask: rules.SymbolMask},
			},
			CorruptData: []uint16{0, 0x01},
		}
	}
	return rs
}

// ---- Fig. 9: slack buffer ----

func BenchmarkFig9SlackBuffer(b *testing.B) {
	s := myrinet.NewDefaultSlackBuffer(nil, nil)
	c := phy.DataChar(0x55)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(c)
		s.Pop()
	}
}

// ---- monitoring plane ----

// monitorBenchBurst builds a wire burst of eight complete data packets
// (route hop, type, MACs, 100-byte payload, CRC stand-in, GAP) cycling over
// six src/dst pairs, as a switch-port tap would observe it.
func monitorBenchBurst() []phy.Character {
	var chars []phy.Character
	for p := 0; p < 8; p++ {
		dst, src := campaign.NodeMAC(p%3), campaign.NodeMAC((p+1)%3)
		raw := []byte{myrinet.SwitchHop(2), myrinet.RouteFinal, 0, 0, 0, byte(myrinet.TypeData)}
		raw = append(raw, dst[:]...)
		raw = append(raw, src[:]...)
		for i := 0; i < 100; i++ {
			raw = append(raw, 0x55)
		}
		raw = append(raw, 0xAB)
		chars = append(chars, phy.DataChars(raw)...)
		chars = append(chars, phy.ControlChar(myrinet.SymGap))
	}
	return chars
}

// BenchmarkMonitorTap measures the tap's per-character observation cost with
// everything armed: packet reassembly, flow aggregation, and the accrual
// detector. Steady state must be allocation-free (the alloc_test guard in
// internal/myrinet pins the disabled path at exactly zero).
func BenchmarkMonitorTap(b *testing.B) {
	k := sim.NewKernel(1)
	p := monitor.NewPlane(k, monitor.Config{})
	tap := p.NewTap("bench", monitor.TapOptions{Flows: true, Detect: true})
	burst := monitorBenchBurst()
	now := sim.Time(0)
	b.SetBytes(int64(len(burst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += sim.Time(sim.Microsecond)
		tap.ObserveChars(now, burst)
	}
	_, _, packets, _ := tap.Stats()
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "packets/s")
}

// BenchmarkMonitorFlowExport measures flow-record throughput through the
// full cache life cycle: open (pooled state), aggregate, idle-expire into
// the bounded export ring, and drain.
func BenchmarkMonitorFlowExport(b *testing.B) {
	ring := monitor.NewExportRing(1024)
	ft := monitor.NewFlowTable("bench", ring, sim.Millisecond)
	var key monitor.FlowKey
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.Src[0], key.Src[1] = byte(i), byte(i>>8)
		now += sim.Time(10 * sim.Microsecond)
		ft.Observe(key, 64, now)
		if i&63 == 63 {
			now += sim.Time(2 * sim.Millisecond)
			ft.ExpireIdle(now)
			for {
				if _, ok := ring.Pop(); !ok {
					break
				}
			}
		}
	}
	b.ReportMetric(float64(ring.Exported())/b.Elapsed().Seconds(), "flows/s")
}

// ---- substrate micro-benchmarks ----

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}

// BenchmarkKernel exercises the event kernel with the schedule/fire/cancel
// mix a campaign run produces: mostly near-future events landing in the
// timer wheel's first level, some spread across the outer levels, a tail
// beyond the wheel horizon (heap fallback), and a fraction canceled before
// they fire. Reports events/s across the whole mix.
func BenchmarkKernel(b *testing.B) {
	delays := [8]sim.Duration{
		// L0 (sub-4µs), L1, L2, and past-horizon heap delays, weighted
		// toward the near future like real link traffic.
		50 * sim.Nanosecond,
		800 * sim.Nanosecond,
		2 * sim.Microsecond,
		30 * sim.Microsecond, // L1
		700 * sim.Microsecond,
		9 * sim.Millisecond, // L2
		16 * sim.Millisecond,
		40 * sim.Millisecond, // heap fallback (beyond the ~17ms horizon)
	}
	k := sim.NewKernel(1)
	nop := func() {}
	var pending []sim.EventID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := k.After(delays[i&7], nop)
		if i&7 == 3 {
			pending = append(pending, id)
		}
		if i&15 == 15 {
			// Cancel a scheduled-but-unfired event, then drain a bit so
			// the pending set stays bounded and events actually fire.
			k.Cancel(pending[len(pending)-1])
			pending = pending[:len(pending)-1]
			for j := 0; j < 16 && k.Step(); j++ {
			}
		}
	}
	b.StopTimer()
	k.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCampaignThroughput measures the resilience campaign's trials/sec
// at 1, 2, and N workers. Each iteration runs a fixed small sweep (trials
// on + off per trial pair); the per-worker sub-benchmarks share the seed so
// the computed results are identical and only wall-clock differs.
func BenchmarkCampaignThroughput(b *testing.B) {
	counts := []int{1, 2, campaign.DefaultWorkers()}
	if counts[2] < 4 {
		counts[2] = 4
	}
	for _, workers := range counts {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			const trials = 8
			for i := 0; i < b.N; i++ {
				campaign.RunResilience(campaign.ResilienceOptions{
					Seed:    42,
					Trials:  trials,
					Workers: workers,
				})
			}
			// Each trial runs twice (recovery on and off).
			b.ReportMetric(float64(b.N*trials*2)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

func Benchmark8b10bEncode(b *testing.B) {
	rd := enc8b10b.RDMinus
	for i := 0; i < b.N; i++ {
		_, rd, _ = enc8b10b.Encode(byte(i), false, rd)
	}
}

func Benchmark8b10bDecode(b *testing.B) {
	code, _, _ := enc8b10b.Encode(0x55, false, enc8b10b.RDMinus)
	for i := 0; i < b.N; i++ {
		enc8b10b.Decode(code, enc8b10b.RDMinus)
	}
}

// ---- ablations ----

// BenchmarkAblationPipelineDepth reports the injector's added latency as a
// function of its FIFO slack depth — the designer's trade-off of footnote 5
// ("the latency depends greatly on the VHDL designer's ability to meet
// timing constraints without pipelining the inject logic excessively").
func BenchmarkAblationPipelineDepth(b *testing.B) {
	for _, slack := range []int{4, 8, 20, 40, 80} {
		b.Run(benchName("slack", slack), func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(1)
				dev := core.NewDevice(k, core.DeviceConfig{Name: "abl", SlackChars: slack})
				lat = dev.Latency()
			}
			b.ReportMetric(lat.Nanoseconds(), "latency-ns")
		})
	}
}

// BenchmarkAblationChunkContention measures baseline delivered throughput
// under the campaign load as the workload burst size grows — the knob that
// controls how hard the slack-buffer flow control works.
func BenchmarkAblationChunkContention(b *testing.B) {
	for _, burst := range []int{2, 10, 25} {
		b.Run(benchName("burst", burst), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				tb := campaign.NewTestbed(campaign.TestbedConfig{Seed: 1})
				load := tb.StartLoad(campaign.LoadConfig{
					Burst:  burst,
					Period: 12_500 * sim.Microsecond * sim.Duration(burst) / 10,
				})
				tb.K.RunFor(sim.Second)
				load.Stop()
				tb.K.RunFor(50 * sim.Millisecond)
				rate = float64(load.Received())
			}
			b.ReportMetric(rate, "msgs/s")
		})
	}
}

// BenchmarkAblationFCMedium sweeps corruption probability on the Fibre
// Channel medium: the identical injector device, spliced into an 8b/10b
// link, toggling one wire bit of every Nth matched code group. Reported
// frame-loss tracks the injection rate — the medium-generality claim of
// §1/§3.4 made quantitative.
func BenchmarkAblationFCMedium(b *testing.B) {
	for _, every := range []int{1, 4, 16} {
		b.Run(benchName("corrupt-every", every), func(b *testing.B) {
			var lossPct float64
			for i := 0; i < b.N; i++ {
				lossPct = fcCorruptionRun(every)
			}
			b.ReportMetric(lossPct, "frame-loss-%")
		})
	}
}

// fcCorruptionRun sends 200 frames through a spliced FC link, re-arming the
// injector's once-mode before every Nth frame, and returns the loss rate.
func fcCorruptionRun(every int) float64 {
	k := sim.NewKernel(1)
	a, bPort, cable := fcConnect(k)
	neutral, _, _ := enc8b10b.Encode(0xB5, false, enc8b10b.RDMinus)
	dev := core.NewDevice(k, core.DeviceConfig{
		Name:       "fc-abl",
		CharPeriod: 9412 * sim.Picosecond,
		IdleChar:   phy.Character(neutral),
	})
	dev.Insert(cable)
	victim, _, _ := enc8b10b.Encode(0x3C, false, enc8b10b.RDMinus)
	cfg := core.Config{
		Match:       core.MatchOnce,
		CompareData: [core.WindowSize]phy.Character{0, 0, 0, phy.Character(victim)},
		CompareMask: [core.WindowSize]core.CharMask{0, 0, 0, 0x3FF},
		Corrupt:     core.CorruptToggle,
		CorruptData: [core.WindowSize]phy.Character{0, 0, 0, 0x008},
	}
	delivered := 0
	bPort.SetFrameHandler(func(*fibrechannel.Frame) { delivered++ })
	const frames = 200
	for i := 0; i < frames; i++ {
		if i%every == 0 {
			dev.Engine(core.LeftToRight).Configure(cfg)
		}
		a.Send(&fibrechannel.Frame{
			Header:  fibrechannel.Header{DID: bPort.Addr(), SID: a.Addr(), SeqCnt: uint16(i)},
			Payload: []byte{0x3C, 0x3C, 0x3C, 0x3C},
		})
		k.Run()
	}
	return 100 * float64(frames-delivered) / frames
}

func fcConnect(k *sim.Kernel) (*fibrechannel.NPort, *fibrechannel.NPort, *phy.Cable) {
	return fibrechannel.Connect(k,
		fibrechannel.NPortConfig{Name: "A", Addr: 0x010101},
		fibrechannel.NPortConfig{Name: "B", Addr: 0x020202})
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
