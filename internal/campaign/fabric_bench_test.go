package campaign

import (
	"fmt"
	"runtime"
	"testing"

	"netfi/internal/sim"
	"netfi/internal/topo"
)

// BenchmarkFabricSharded is the sharded-fabric headline: simulated
// symbols/sec on a 128-switch/1024-host Clos under the flood workload,
// single shard vs multi-shard. On a multicore box the shard count buys
// wall-clock speedup; on the known 1-CPU bench container the sub-benchmarks
// instead measure the coordinator's overhead (the recorded num_cpu /
// gomaxprocs metadata in BENCH_*.json says which reading applies). The
// byte-identity of the shard counts is pinned separately by
// TestFabricShardEquivalence.
func BenchmarkFabricSharded(b *testing.B) {
	shardCounts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		shardCounts = append(shardCounts, n)
	} else {
		shardCounts = append(shardCounts, 4)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			b.ReportAllocs()
			var symbols, events, windows, exchanged uint64
			for i := 0; i < b.N; i++ {
				res, err := RunFabric(FabricConfig{
					Topo:    topo.Config{Switches: 128, Hosts: 1024, Shards: shards, Seed: 42},
					Packets: 4,
					Payload: 64,
					Gap:     5 * sim.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Drained {
					b.Fatal("fabric did not drain")
				}
				symbols += res.Symbols
				events += res.Events
				windows += res.Windows
				exchanged += res.Exchanged
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(symbols)/secs/1e6, "Msymbols/s")
				b.ReportMetric(float64(events)/secs/1e6, "Mevents/s")
			}
			// Coordinator-efficiency metrics: how many barriers the adaptive
			// horizons cut per run, and how much traffic crossed them.
			b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
			b.ReportMetric(float64(exchanged)/float64(b.N), "exchanged/op")
		})
	}
}
