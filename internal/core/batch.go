package core

import (
	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/rules"
)

// This file is the burst-granular datapath: ProcessBatch produces output
// byte-identical to the per-symbol Process, but consumes runs of
// match-impossible characters in bulk. Two mechanisms make that legal:
//
//   - A precomputed skip bitmap over the symbol space marks characters that
//     can neither anchor the legacy compare window (fail the first masked
//     position) nor begin any rule's automaton (the executor's quiet set).
//     Runs of skip characters flow through as a single copy — the
//     "cut-through" path — with only bulk statistics, capture-ring and
//     running-CRC updates.
//
//   - The per-symbol FSM re-engages around candidate anchors: every
//     non-skip character is clocked individually, plus the WindowSize-1
//     characters after it (a match completing later than that cannot
//     involve the anchor), and for as long as any dynamic condition — a
//     rule automaton mid-match, tainted FIFO slots awaiting retransmission,
//     a pending InjectNow, or an armed CRC recompute on a corrupted
//     packet — could make a pop or a compare content-dependent.

// batchSpan is the skip-bitmap index space: characters are classified by
// their low 10 bits, covering the 9-bit Myrinet link symbols and the 10-bit
// Fibre Channel code groups. Masks selecting higher bits (none of the real
// substrates do) disable the batch path rather than alias.
const batchSpan = 1024

// dcFlag is the D/C bit of a link character (bit 8).
const dcFlag = phy.Character(1) << 8

// batchPlan is the cached classification of the symbol space against the
// current register file and rule set.
type batchPlan struct {
	// ok gates the whole batch path: false when a compare mask selects bits
	// outside the index span, so classification by low bits would alias.
	ok bool
	// all short-circuits the scan when every symbol is skippable — the
	// unarmed cut-through case.
	all bool
	// cmpAlways marks an all-don't-care compare window: every cycle matches,
	// so bulk runs advance the match counter instead of scanning.
	cmpAlways bool
	// anchorIdx is the first compare-window position with a nonzero mask
	// (valid only when !cmpAlways): the position whose masked compare the
	// skip map encodes.
	anchorIdx int
	skip      [batchSpan / 64]uint64
}

func (p *batchPlan) skipSym(c phy.Character) bool {
	v := uint16(c) & (batchSpan - 1)
	return p.skip[v>>6]&(1<<uint(v&63)) != 0
}

// rebuildPlan reclassifies the symbol space. Called lazily from ProcessBatch
// after Configure, SetMatchMode or a rule-set change marks the plan dirty.
func (e *Engine) rebuildPlan() {
	e.batchDirty = false
	e.plan = batchPlan{}
	p := &e.plan
	for i := 0; i < WindowSize; i++ {
		if e.cfg.CompareMask[i]&^CharMask(batchSpan-1) != 0 {
			return // mask selects bits the classification cannot see
		}
	}
	p.ok = true
	j := -1
	for i := 0; i < WindowSize; i++ {
		if e.cfg.CompareMask[i] != 0 {
			j = i
			break
		}
	}
	p.cmpAlways = j < 0
	p.anchorIdx = j
	var quiet *[rules.SymbolSpace / 64]uint64
	if e.ruleExec != nil {
		quiet = e.ruleExec.QuietSymbols()
	}
	p.all = true
	for v := 0; v < batchSpan; v++ {
		skippable := true
		if j >= 0 && (phy.Character(v)^e.cfg.CompareData[j])&phy.Character(e.cfg.CompareMask[j]) == 0 {
			skippable = false // would anchor the legacy compare
		}
		if quiet != nil {
			s := v & rules.SymbolMask
			if quiet[s>>6]&(1<<uint(s&63)) == 0 {
				skippable = false // could begin a rule match
			}
		}
		if skippable {
			p.skip[v>>6] |= 1 << uint(v&63)
		} else {
			p.all = false
		}
	}
}

// triggerArmed reports whether a compare match on the next cycle could fire
// the legacy corrupt logic.
func (e *Engine) triggerArmed() bool {
	switch e.cfg.Match {
	case MatchOn:
		return true
	case MatchOnce:
		return !e.onceDone
	}
	return false
}

// bulkEligible reports whether the dynamic state allows consuming skip runs
// in bulk right now. The plan handles the static (configuration) half; this
// is the per-run half.
func (e *Engine) bulkEligible() bool {
	if !e.plan.ok || e.injectNow || e.taint != 0 {
		return false
	}
	if e.cfg.RecomputeCRC && e.packetCorrupted {
		return false // a pop may substitute the recomputed CRC
	}
	if e.ruleExec != nil && !e.ruleExec.InStart() {
		return false // automaton mid-match: every symbol is consumed
	}
	if e.plan.cmpAlways && e.triggerArmed() {
		return false // every cycle matches and would trigger
	}
	return true
}

// entryGuard computes how many leading burst characters must be clocked
// per-symbol because a compare match completing on them would anchor on a
// character still in the shift register from before this call.
func (e *Engine) entryGuard() int {
	if !e.plan.ok || e.plan.cmpAlways {
		return 0
	}
	j := e.plan.anchorIdx
	g := 0
	for t := 0; t < WindowSize-1-j; t++ {
		// A match at burst index t places old window entry j+t+1 at the
		// anchor position.
		w := &e.window[j+t+1]
		if (w.ch^e.cfg.CompareData[j])&phy.Character(e.cfg.CompareMask[j]) == 0 {
			g = t + 1
		}
	}
	return g
}

// ProcessBatch clocks the engine over a burst and returns the characters
// released downstream, exactly as Process would, but burst-granular: runs of
// skip-map characters bypass the per-symbol FSM. The returned slice is the
// same reused scratch buffer Process uses, valid until the next call of
// either method.
func (e *Engine) ProcessBatch(chars []phy.Character) []phy.Character {
	out := e.procOut[:0]
	if e.batchDirty {
		e.rebuildPlan()
	}
	guard := e.entryGuard()
	i, n := 0, len(chars)
	for i < n {
		if guard > 0 || !e.bulkEligible() {
			c := chars[i]
			if e.plan.ok && !e.plan.skipSym(c) {
				// Candidate anchor: this character plus the next
				// WindowSize-1 stay on the per-symbol path.
				guard = WindowSize
			}
			out = e.stepOne(c, out)
			i++
			if guard > 0 {
				guard--
			}
			continue
		}
		j := i
		if e.plan.all {
			j = n
		} else {
			for j < n && e.plan.skipSym(chars[j]) {
				j++
			}
		}
		if j == i {
			guard = WindowSize
			continue
		}
		out = e.bulkRun(chars[i:j], out)
		i = j
	}
	e.procOut = out
	return out
}

// bulkRun consumes a run of characters proven unable to match or trigger:
// a single copy through the pipeline with statistics, capture, CRC and
// FIFO-tail updates, no per-symbol FSM. Preconditions (owned by
// ProcessBatch): bulkEligible, every character in seg is in the skip map,
// and the entry/anchor guard has expired.
func (e *Engine) bulkRun(seg []phy.Character, out []phy.Character) []phy.Character {
	m := len(seg)
	e.chars += uint64(m)
	for _, c := range seg {
		if c&(dcFlag|0xFF) == LinkResetCode {
			e.resetsSeen++
		}
	}
	if e.ruleExec != nil {
		e.ruleExec.SkipQuiet(m)
	}
	if e.plan.cmpAlways {
		// All-don't-care window: every cycle's compare reports a match
		// (and the eligibility gate has proven none can trigger).
		e.matches += uint64(m)
	}
	e.capture.ObserveBatch(seg)

	// Pops: the logical stream is the queued characters followed by seg;
	// output takes its prefix until the pipeline is back at slack depth.
	count0 := e.count
	pops := count0 + m - e.slack
	if pops < 0 {
		pops = 0
	}
	popFifo := pops
	if popFifo > count0 {
		popFifo = count0
	}
	for k := 0; k < popFifo; k++ {
		c := e.fifo[e.head].ch
		e.head = (e.head + 1) % len(e.fifo)
		out = append(out, c)
		if c.IsData() {
			e.runningCRC = bitstream.CRC8Update(e.runningCRC, c.Byte())
		} else {
			e.runningCRC = 0
			e.packetCorrupted = false
		}
	}
	e.count = count0 - popFifo
	popSeg := pops - popFifo
	if popSeg > 0 {
		// Characters that enter and leave within this run: cut-through.
		out = append(out, seg[:popSeg]...)
		e.runningCRC, e.packetCorrupted = crcAdvance(e.runningCRC, e.packetCorrupted, seg[:popSeg])
	}

	// FIFO tail: only the kept suffix of seg is materialized in the ring —
	// at most slack slots regardless of run length.
	for k := popSeg; k < m; k++ {
		pos := (e.head + e.count) % len(e.fifo)
		e.fifo[pos] = fifoEntry{ch: seg[k]}
		e.count++
	}

	// Compare shift register: the last WindowSize stream characters. Kept
	// suffix slots are live (proven by the slack >= WindowSize invariant),
	// so recorded positions stay valid for later corrupt cycles.
	if m >= WindowSize {
		for i := 0; i < WindowSize; i++ {
			d := WindowSize - 1 - i
			e.window[i] = winEntry{
				ch:  seg[m-1-d],
				pos: (e.head + e.count - 1 - d) % len(e.fifo),
			}
		}
	} else {
		copy(e.window[:], e.window[m:])
		for i := 0; i < m; i++ {
			d := m - 1 - i
			e.window[WindowSize-m+i] = winEntry{
				ch:  seg[i],
				pos: (e.head + e.count - 1 - d) % len(e.fifo),
			}
		}
	}
	return out
}

// crcAdvance runs the per-packet CRC state machine over a popped run:
// data bytes extend the running CRC (slicing-by-4 on all-data blocks),
// control symbols reset it and clear the corrupted-packet latch, exactly as
// popOne does per character.
func crcAdvance(crc byte, pc bool, seg []phy.Character) (byte, bool) {
	i, n := 0, len(seg)
	for i < n {
		for i+4 <= n {
			c0, c1, c2, c3 := seg[i], seg[i+1], seg[i+2], seg[i+3]
			if c0&c1&c2&c3&dcFlag == 0 {
				break // a control symbol inside the block
			}
			crc = bitstream.CRC8Update4(crc, byte(c0), byte(c1), byte(c2), byte(c3))
			i += 4
		}
		if i >= n {
			break
		}
		if c := seg[i]; c.IsData() {
			crc = bitstream.CRC8Update(crc, c.Byte())
		} else {
			crc = 0
			pc = false
		}
		i++
	}
	return crc, pc
}
