package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"netfi/internal/core"
	"netfi/internal/host"
	"netfi/internal/monitor"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// The chaos engine: warm one testbed, fork it per failure scenario. A fork
// deep-copies the entire simulation world (kernel, network, hosts,
// injector, console, monitoring plane) through sim.Mapper, so thousands of
// divergent scenarios pay for warmup exactly once. Scenarios are
// declarative ForkPlans — k faults with individual onset delays — generated
// up front from the campaign seed, applied to the fork by scheduling
// ordinary simulation events, and triaged with the monitoring plane the
// same way resilience trials are. Correctness rests on fork equivalence:
// running a plan on a fork must be byte-identical to running it on a
// freshly built, identically warmed testbed (TestForkEquivalence pins it).

// FaultKind names one chaos fault primitive.
type FaultKind string

const (
	// FaultNodeDeath kills a workstation and severs its cable: the host
	// goes silent mid-conversation, the way a crashed OS with a powered
	// NIC does not.
	FaultNodeDeath FaultKind = "node-death"
	// FaultLinkSever cuts a node's cable both ways; the host keeps
	// transmitting into the void.
	FaultLinkSever FaultKind = "link-sever"
	// FaultCorrupt arms an injection rule over the serial console — the
	// paper's fault families (GAP drops, phantom STOPs, route and CRC
	// corruption) drawn at random.
	FaultCorrupt FaultKind = "corrupt"
	// FaultWatchdogOff disables the switch's recovery watchdogs: latent
	// on its own, it turns an otherwise recoverable wedge into the
	// paper's forever-held output when combined with a second fault.
	FaultWatchdogOff FaultKind = "watchdog-off"
)

// Fault is one declarative failure: what, where, when.
type Fault struct {
	Kind FaultKind
	// Node is the target node index (node-death, link-sever).
	Node int
	// Rule is the RULE ADD console line (corrupt only).
	Rule string
	// Family names the corrupt rule's fault family (reporting only).
	Family string
	// Delay is the onset, relative to trial start.
	Delay sim.Duration
}

// String renders "kind(target)@delay".
func (f Fault) String() string {
	target := ""
	switch f.Kind {
	case FaultNodeDeath, FaultLinkSever:
		target = fmt.Sprintf("node%d", f.Node)
	case FaultCorrupt:
		target = f.Family
	case FaultWatchdogOff:
		target = "sw0"
	}
	return fmt.Sprintf("%s(%s)@%.1fms", f.Kind, target, f.Delay.Seconds()*1000)
}

// ForkPlan is one fork's failure scenario: k faults composed on one world.
type ForkPlan struct {
	ID     int
	Faults []Fault
}

// K reports the combination order (fault count).
func (p ForkPlan) K() int { return len(p.Faults) }

// String joins the faults with " + ".
func (p ForkPlan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, " + ")
}

// ChaosTrial is one fork's run and triage. The detection axis mirrors
// ResilienceTrial: InjectedAt is the first fault's observable onset.
type ChaosTrial struct {
	ID      int
	Plan    string
	K       int
	Outcome TrialOutcome
	Quiesce string
	Elapsed sim.Duration

	Sent           int
	Delivered      uint64
	Retransmits    uint64
	GaveUp         uint64
	RecoveryEvents uint64
	Injections     uint64
	HeldOutputs    int

	InjectedAt    sim.Duration // first fault onset; -1 when none landed
	Detected      bool
	DetectLatency sim.Duration
	DetectSource  string
	FlowsExported uint64

	// Err carries a panic surfaced by the worker pool's fault isolation;
	// Outcome is OutcomeError and every other field is zero.
	Err string

	// Fingerprint is the full-world digest the fork-equivalence gate
	// compares (counters, event log, flow records, kernel clock).
	Fingerprint string
}

// Chaos-specific outcome classes beyond the resilience triage.
const (
	// OutcomeWallClock — the per-fork real-time escape hatch tripped;
	// the result is timing-dependent and reported apart.
	OutcomeWallClock TrialOutcome = "wallclock"
	// OutcomeError — the trial panicked; see ChaosTrial.Err.
	OutcomeError TrialOutcome = "error"
)

// ChaosOptions parameterizes a sweep.
type ChaosOptions struct {
	Seed int64
	// Forks is the scenario count. Zero selects 64.
	Forks int
	// MaxK caps faults per fork; plans cycle k = 1..MaxK. Zero selects
	// 2 (singles and pairs); 3 adds triples.
	MaxK int
	// Messages is the reliable workload size per fork. Zero selects 6.
	Messages int
	// Gap paces the messages. Zero selects 10 ms.
	Gap sim.Duration
	// Workers sizes the fork worker pool; <= 1 is serial.
	Workers int
	// WallClock, when nonzero, bounds each fork in real time — the
	// escape hatch that keeps one livelocked fork from wedging a sweep.
	WallClock time.Duration
	// Rebuild runs every plan on a freshly built testbed instead of a
	// fork — the warm-path control the benchmark and the equivalence
	// gate compare against.
	Rebuild bool
	// ArmedRules pre-arms a small multi-rule trigger program on the
	// injector before warmup, so every fork is cut from a world with live
	// rule-engine state — match counters, capture events, and the compiled
	// prefilter driving the batch wake table — and the equivalence gate
	// proves that state clones exactly.
	ArmedRules bool
}

func (o *ChaosOptions) fillDefaults() {
	if o.Forks == 0 {
		o.Forks = 64
	}
	if o.MaxK == 0 {
		o.MaxK = 2
	}
	if o.MaxK > 3 {
		o.MaxK = 3
	}
	if o.Messages < 3 {
		o.Messages = 6
	}
	if o.Gap == 0 {
		o.Gap = 10 * sim.Millisecond
	}
}

// chaosNodes is the testbed size (the paper's Fig. 10 bed).
const chaosNodes = 3

// chaosWarm is the shared warmup: long enough for the accrual detectors to
// calibrate on a full inter-arrival window (75 heartbeat samples at 2 ms),
// RTT estimators to converge, flow caches to populate, and the warm
// traffic's acks to drain, so the fork point has no closure-form events
// pending. A sweep pays this once; every fork inherits the history free —
// which is the engine's entire advantage over rebuilding per scenario.
const chaosWarm = 150 * sim.Millisecond

// GenerateForkPlans derives the sweep's scenarios from the seed alone:
// plan i carries k = 1 + i mod MaxK faults, each with kind, target, and
// onset drawn from one serial RNG, so a sweep is reproducible from
// (Seed, Forks, MaxK) and any plan can be rerun in isolation.
func GenerateForkPlans(opts ChaosOptions) []ForkPlan {
	opts.fillDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	span := sim.Duration(opts.Messages-1) * opts.Gap
	kinds := []FaultKind{FaultCorrupt, FaultNodeDeath, FaultLinkSever, FaultCorrupt, FaultWatchdogOff}
	plans := make([]ForkPlan, opts.Forks)
	for i := range plans {
		k := 1 + i%opts.MaxK
		faults := make([]Fault, k)
		for j := range faults {
			f := Fault{
				Kind:  kinds[rng.Intn(len(kinds))],
				Delay: sim.Duration(rng.Int63n(int64(span))),
			}
			switch f.Kind {
			case FaultNodeDeath, FaultLinkSever:
				f.Node = rng.Intn(chaosNodes)
			case FaultCorrupt:
				fam := faultFamilies[rng.Intn(len(faultFamilies))]
				f.Family = fam.name
				f.Rule = fam.build(rng, chaosNodes).cmd
			}
			faults[j] = f
		}
		plans[i] = ForkPlan{ID: i, Faults: faults}
	}
	return plans
}

// chaosBase is the warmed world forks are cut from. After newChaosBase the
// kernel is paused at the fork point with only trampoline-form events
// pending, so Clone never trips the closure-discipline check.
type chaosBase struct {
	tb    *Testbed
	mon   *monitor.Plane
	rels  []*host.Reliable
	hbs   []*host.Heartbeat
	start sim.Time // fork point == trial start
}

// newChaosBase builds and warms one testbed: recovery armed, injector
// direction configured, reliable endpoints on every node, flow-export taps
// on every attached switch port, accrual detectors fed by heartbeats
// between the untapped nodes, and a little primed traffic so RTT
// estimators, flow caches, and detector windows all carry history into
// every fork.
func newChaosBase(seed int64, opts ChaosOptions) *chaosBase {
	opts.fillDefaults()
	tb := NewTestbed(TestbedConfig{
		Seed: seed,
		Recovery: myrinet.RecoveryConfig{
			Enabled:        true,
			BlockedTimeout: 15 * sim.Millisecond,
			StopWatchdog:   25 * sim.Millisecond,
		},
	})
	tb.Configure("DIR L")
	if opts.ArmedRules {
		// Pre-armed rules: the ONCE toggle corrupts one warm payload byte
		// (the reliable layer retransmits, so warmup still drains) and
		// leaves an injection plus a completed capture in the base; the
		// contiguous CAP pair fires on every payload run and compiles a
		// prefilter; the gapped rule keeps partial-match lanes live; the
		// last never fires. Every fork then inherits live executor,
		// capture-ring, and batch-plan state.
		tb.Configure(
			"RULE ADD 60 MODE ONCE ACT TOGGLE PAT 55 55 VEC -- 01",
			"RULE ADD 61 ACT CAP PAT 55 55",
			"RULE ADD 62 ACT CAP PAT 55 G2 7E",
			"RULE ADD 63 ACT CAP PAT 3A 3B",
		)
	}

	rels := make([]*host.Reliable, len(tb.Nodes))
	for i, n := range tb.Nodes {
		r, err := host.NewReliable(n, resiliencePort, host.ReliableConfig{
			InitialRTO: 40 * sim.Millisecond,
			MaxRTO:     80 * sim.Millisecond,
			MaxRetries: 5,
		})
		if err != nil {
			panic(err)
		}
		rels[i] = r
	}

	span := sim.Duration(opts.Messages-1) * opts.Gap
	horizon := tb.K.Now() + sim.Time(chaosWarm+span+opts.Gap+80*sim.Millisecond)

	mon := monitor.NewPlane(tb.K, monitor.Config{
		SampleInterval: sim.Millisecond,
		FlowIdle:       25 * sim.Millisecond,
	})
	for p := 0; p < tb.Switch.Ports(); p++ {
		if tb.Switch.Attached(p) {
			mon.TapSwitchPort(tb.Switch, p, monitor.TapOptions{Flows: true})
		}
	}
	var beat []int
	for i := range tb.Nodes {
		if i != 0 && len(beat) < 2 {
			beat = append(beat, i)
		}
	}
	var hbs []*host.Heartbeat
	if len(beat) == 2 {
		a, b := beat[0], beat[1]
		for _, i := range beat {
			mon.TapInterface(tb.Nodes[i].Interface(), monitor.TapOptions{Detect: true})
			if _, err := tb.Nodes[i].Bind(host.HeartbeatPort, nil); err != nil {
				panic(err)
			}
		}
		ha := host.NewHeartbeat(tb.K, tb.Nodes[a], host.HeartbeatConfig{Dst: NodeMAC(b), Until: horizon})
		hb := host.NewHeartbeat(tb.K, tb.Nodes[b], host.HeartbeatConfig{Dst: NodeMAC(a), Until: horizon})
		ha.Start()
		hb.Start()
		hbs = append(hbs, ha, hb)
	}
	mon.SetStopAt(horizon)
	mon.Start()

	// Warm traffic: one message from the tapped node to each peer, fully
	// drained, so every fork starts with calibrated RTTs and warm caches.
	payload := chaosPayload()
	for i := 1; i < len(tb.Nodes); i++ {
		rels[0].Send(NodeMAC(i), payload)
	}
	tb.K.RunFor(chaosWarm)

	return &chaosBase{tb: tb, mon: mon, rels: rels, hbs: hbs, start: tb.K.Now()}
}

// fork deep-copies the base into an independent world: phase 1 clones the
// kernel, phase 2 walks the model graph, phase 3 resolves every deferred
// cross-reference. Campaign-owned hooks (probes, injection hooks) are not
// part of any world and are re-armed by runChaosTrial.
func (b *chaosBase) fork() (*chaosBase, error) {
	m := sim.NewMapper()
	b.tb.K.Clone(m)
	tb2 := b.tb.Clone(m)
	mon2 := b.mon.Clone(m)
	rels2 := make([]*host.Reliable, len(b.rels))
	for i, r := range b.rels {
		rels2[i] = r.Clone(m)
	}
	hbs2 := make([]*host.Heartbeat, len(b.hbs))
	for i, h := range b.hbs {
		hbs2[i] = h.Clone(m)
	}
	if err := m.Finish(); err != nil {
		return nil, err
	}
	return &chaosBase{tb: tb2, mon: mon2, rels: rels2, hbs: hbs2, start: b.start}, nil
}

func chaosPayload() []byte {
	payload := make([]byte, resiliencePayloadLen)
	for i := range payload {
		payload[i] = resiliencePayloadFill
	}
	return payload
}

// runChaosTrial applies one plan to a ready world (a fork, or a freshly
// warmed base — the equivalence gate demands the two be indistinguishable)
// and triages the outcome. Probes and injection hooks are armed here, on
// whichever world runs, so both paths arm them exactly once.
func runChaosTrial(b *chaosBase, plan ForkPlan, opts ChaosOptions) ChaosTrial {
	opts.fillDefaults()
	tb, mon, rel := b.tb, b.mon, b.rels[0]
	tr := ChaosTrial{
		ID:         plan.ID,
		Plan:       plan.String(),
		K:          plan.K(),
		Sent:       opts.Messages,
		InjectedAt: -1,
	}

	mon.AddLossProbe("net.drops", func() uint64 {
		var n uint64
		for p := 0; p < tb.Switch.Ports(); p++ {
			n += tb.Switch.PortCounters(p).TotalDrops()
		}
		for _, nd := range tb.Nodes {
			n += nd.Interface().Counters().TotalDrops()
		}
		return n
	})
	mon.AddCounterProbe("net.recovery", "recovery", func() uint64 {
		return recoveryEventCount(tb)
	})
	mon.AddWedgeProbe("sw0.held", func() int { return tb.Switch.HeldOutputs() })

	// First observable fault onset: node deaths and severs mark at their
	// scheduled instant, corrupt rules when the injector actually fires.
	var faultAt sim.Time
	faultSeen := false
	mark := func() {
		if !faultSeen {
			faultSeen = true
			faultAt = tb.K.Now()
		}
	}
	tb.Injector.Engine(DirOutbound).SetInjectionHook(mark)
	tb.Injector.Engine(DirInbound).SetInjectionHook(mark)

	// Baselines: forks inherit the warm phase's counters.
	rel0 := rel.Stats()
	recovery0 := recoveryEventCount(tb)
	flows0 := mon.Ring().Exported()
	injections0 := tb.Injections()

	for _, f := range plan.Faults {
		f := f
		switch f.Kind {
		case FaultNodeDeath:
			node := tb.Nodes[f.Node]
			cable := tb.Net.Cables[node.Name()]
			tb.K.After(f.Delay, func() {
				node.Kill()
				cable.Sever()
				mark()
			})
		case FaultLinkSever:
			cable := tb.Net.Cables[tb.Nodes[f.Node].Name()]
			tb.K.After(f.Delay, func() {
				cable.Sever()
				mark()
			})
		case FaultWatchdogOff:
			tb.K.After(f.Delay, func() {
				tb.Switch.SetRecovery(myrinet.RecoveryConfig{})
			})
		case FaultCorrupt:
			rule := f.Rule
			tb.K.After(f.Delay, func() { tb.Console.Send(rule) })
		}
	}

	payload := chaosPayload()
	for i := 0; i < opts.Messages; i++ {
		dst := NodeMAC(1 + i%(chaosNodes-1))
		tb.K.After(sim.Duration(i)*opts.Gap, func() { rel.Send(dst, payload) })
	}

	res := tb.K.RunUntilQuiescent(sim.QuiesceConfig{
		Progress: func() uint64 {
			s := rel.Stats()
			return s.Delivered + s.Retransmits + s.GaveUp + recoveryEventCount(tb)
		},
		StallAfter: 300 * sim.Millisecond,
		Deadline:   3 * sim.Second,
		WallClock:  opts.WallClock,
	})
	tr.Quiesce = res.Outcome()
	tr.Elapsed = res.Elapsed
	tr.RecoveryEvents = recoveryEventCount(tb) - recovery0
	tr.HeldOutputs = tb.Switch.HeldOutputs()
	tr.Injections = tb.Injections() - injections0

	mon.Stop()
	tr.FlowsExported = mon.Ring().Exported() - flows0

	s := rel.Stats()
	accepted := s.Sent - rel0.Sent
	tr.Delivered = s.Delivered - rel0.Delivered
	tr.Retransmits = s.Retransmits - rel0.Retransmits
	tr.GaveUp = s.GaveUp - rel0.GaveUp
	switch {
	case res.WallClockHit:
		tr.Outcome = OutcomeWallClock
	case rel.Outstanding() > 0 || tr.Delivered+tr.GaveUp < accepted:
		// Accepted traffic neither delivered nor abandoned: a wedge.
		tr.Outcome = OutcomeHung
	case tr.HeldOutputs > 0:
		// Drained, but a switch output is still owned — §4.3.1's
		// forever-held path (a disabled watchdog let it stand).
		tr.Outcome = OutcomeHung
	case tr.Delivered == uint64(tr.Sent):
		switch {
		case tr.RecoveryEvents > 0:
			tr.Outcome = OutcomeResetRecovered
		case tr.Retransmits > 0:
			tr.Outcome = OutcomeRetransmitted
		default:
			tr.Outcome = OutcomeMasked
		}
	default:
		// Messages lost for good: abandoned by the transport or never
		// sent because their sender died.
		tr.Outcome = OutcomeDegraded
	}

	if faultSeen {
		tr.InjectedAt = sim.Duration(faultAt - b.start)
		if e, found := mon.FirstEventAtOrAfter(faultAt); found {
			tr.Detected = true
			tr.DetectLatency = sim.Duration(e.Time - faultAt)
			tr.DetectSource = e.Source + "/" + e.Detail
		}
	}
	tr.Fingerprint = chaosFingerprint(tb, mon, b.rels)
	return tr
}

// runForkChaosTrial cuts a fork from the warmed base and runs the plan on
// it. The base is read-only during the clone, so forks cut concurrently.
func runForkChaosTrial(base *chaosBase, plan ForkPlan, opts ChaosOptions) ChaosTrial {
	fork, err := base.fork()
	if err != nil {
		panic(fmt.Sprintf("chaos: fork %d: %v", plan.ID, err))
	}
	return runChaosTrial(fork, plan, opts)
}

// runRebuiltChaosTrial is the control path: warm a fresh world from
// scratch and run the same plan. Fork equivalence demands its result be
// byte-identical to runForkChaosTrial's.
func runRebuiltChaosTrial(seed int64, plan ForkPlan, opts ChaosOptions) ChaosTrial {
	return runChaosTrial(newChaosBase(seed, opts), plan, opts)
}

// ChaosResult is one sweep's full record.
type ChaosResult struct {
	Seed   int64
	Forks  int
	MaxK   int
	Trials []ChaosTrial
}

// RunChaos warms one base testbed, forks it per generated plan across the
// worker pool, and triages every fork. A panicking fork is isolated by
// RunTrialsErr and reported as OutcomeError rather than killing the sweep.
func RunChaos(opts ChaosOptions) ChaosResult {
	opts.fillDefaults()
	plans := GenerateForkPlans(opts)
	var base *chaosBase
	if !opts.Rebuild {
		base = newChaosBase(opts.Seed, opts)
	}
	trials, errs := RunTrialsErr(len(plans), opts.Workers, func(i int) ChaosTrial {
		if opts.Rebuild {
			return runRebuiltChaosTrial(opts.Seed, plans[i], opts)
		}
		return runForkChaosTrial(base, plans[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			trials[i] = ChaosTrial{
				ID:         plans[i].ID,
				Plan:       plans[i].String(),
				K:          plans[i].K(),
				Outcome:    OutcomeError,
				InjectedAt: -1,
				Err:        err.Error(),
			}
		}
	}
	return ChaosResult{Seed: opts.Seed, Forks: opts.Forks, MaxK: opts.MaxK, Trials: trials}
}

// CountChaosOutcomes tallies a sweep's triage.
func CountChaosOutcomes(trials []ChaosTrial) map[TrialOutcome]int {
	m := make(map[TrialOutcome]int)
	for _, t := range trials {
		m[t.Outcome]++
	}
	return m
}

// ComputeChaosDetection tallies the sweep's detection axis.
func ComputeChaosDetection(trials []ChaosTrial) DetectionStats {
	var s DetectionStats
	for _, t := range trials {
		if t.InjectedAt < 0 {
			continue
		}
		s.Injected++
		masked := t.Outcome == OutcomeMasked
		if !masked {
			s.NonMasked++
		}
		if t.Detected {
			s.Detected++
			if !masked {
				s.DetectedNonMasked++
			}
			s.Latencies = append(s.Latencies, t.DetectLatency)
		}
	}
	sort.Slice(s.Latencies, func(i, j int) bool { return s.Latencies[i] < s.Latencies[j] })
	return s
}

// chaosOutcomeOrder fixes the tally rendering order.
var chaosOutcomeOrder = []TrialOutcome{
	OutcomeMasked, OutcomeRetransmitted, OutcomeResetRecovered,
	OutcomeDegraded, OutcomeDropped, OutcomeHung, OutcomeWallClock, OutcomeError,
}

// chaosTrialLines caps the per-fork detail a sweep report prints; beyond
// it only the aggregates follow (a 10k-fork sweep is not a line printer).
const chaosTrialLines = 24

// FormatChaos renders the sweep: per-fork lines (capped), per-class and
// per-k tallies, and the detection-latency CDF in deciles.
func FormatChaos(r ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: %d forks from one warmed base (k <= %d, seed %d)\n",
		len(r.Trials), r.MaxK, r.Seed)
	for i, t := range r.Trials {
		if i == chaosTrialLines {
			fmt.Fprintf(&b, "  ... %d more forks\n", len(r.Trials)-chaosTrialLines)
			break
		}
		if t.Err != "" {
			fmt.Fprintf(&b, "  fork %4d  k=%d %-15s %s\n", t.ID, t.K, t.Outcome, t.Err)
			continue
		}
		fmt.Fprintf(&b, "  fork %4d  k=%d %-15s del=%d/%d retx=%d gaveup=%d resets=%d inj=%d det=%s (%s, %.1f ms)  %s\n",
			t.ID, t.K, t.Outcome, t.Delivered, t.Sent, t.Retransmits,
			t.GaveUp, t.RecoveryEvents, t.Injections,
			formatChaosDetection(t), t.Quiesce, t.Elapsed.Seconds()*1000, t.Plan)
	}
	counts := CountChaosOutcomes(r.Trials)
	fmt.Fprintf(&b, "  tally:")
	for _, o := range chaosOutcomeOrder {
		if counts[o] > 0 {
			fmt.Fprintf(&b, " %s=%d", o, counts[o])
		}
	}
	fmt.Fprintf(&b, "\n")
	perK := make(map[int]map[TrialOutcome]int)
	for _, t := range r.Trials {
		if perK[t.K] == nil {
			perK[t.K] = make(map[TrialOutcome]int)
		}
		perK[t.K][t.Outcome]++
	}
	for k := 1; k <= r.MaxK; k++ {
		if perK[k] == nil {
			continue
		}
		fmt.Fprintf(&b, "  k=%d:", k)
		for _, o := range chaosOutcomeOrder {
			if perK[k][o] > 0 {
				fmt.Fprintf(&b, " %s=%d", o, perK[k][o])
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	det := ComputeChaosDetection(r.Trials)
	fmt.Fprintf(&b, "  detect: %d/%d non-masked (%.0f%%), %d/%d overall\n",
		det.DetectedNonMasked, det.NonMasked, 100*det.CoverageNonMasked(),
		det.Detected, det.Injected)
	if len(det.Latencies) > 0 {
		for _, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
			fmt.Fprintf(&b, "  cdf    %7.1f ms  p=%.1f\n",
				det.Quantile(q).Seconds()*1000, q)
		}
	}
	return b.String()
}

func formatChaosDetection(t ChaosTrial) string {
	switch {
	case t.InjectedAt < 0:
		return "-"
	case !t.Detected:
		return "miss"
	default:
		return fmt.Sprintf("%.1fms:%s", t.DetectLatency.Seconds()*1000, t.DetectSource)
	}
}

// chaosFingerprint digests the world after a trial: kernel clock and event
// count, every STAT counter on every port, interface, and engine, link
// totals, transport statistics, and the monitoring plane's complete event
// log, flow records, and tap totals. Two runs with equal fingerprints
// executed the same events in the same order against the same state — the
// byte-identity the fork-equivalence gate compares.
func chaosFingerprint(tb *Testbed, mon *monitor.Plane, rels []*host.Reliable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel now=%d processed=%d\n", tb.K.Now(), tb.K.Processed())
	for p := 0; p < tb.Switch.Ports(); p++ {
		writeCounters(&b, fmt.Sprintf("sw0.p%d", p), tb.Switch.PortCounters(p))
	}
	fmt.Fprintf(&b, "sw0 held=%d\n", tb.Switch.HeldOutputs())
	for _, n := range tb.Nodes {
		writeCounters(&b, n.Name(), n.Interface().Counters())
		fmt.Fprintf(&b, "%s stats=%+v dead=%v\n", n.Name(), n.Stats(), n.Dead())
	}
	if tb.Injector != nil {
		for _, dir := range []struct {
			name string
			d    core.Direction
		}{{"out", DirOutbound}, {"in", DirInbound}} {
			e := tb.Injector.Engine(dir.d)
			chars, matches, injections := e.Stats()
			fmt.Fprintf(&b, "inj.%s chars=%d matches=%d injections=%d resets=%d captures=%d dropped=%d\n",
				dir.name, chars, matches, injections, e.ResetsSeen(),
				len(e.Capture().Events()), e.Capture().DroppedEvents())
			for _, r := range e.Rules() {
				rm, rf, _ := e.RuleCounters(r.ID)
				fmt.Fprintf(&b, "inj.%s rule%d matches=%d fires=%d\n", dir.name, r.ID, rm, rf)
			}
		}
	}
	names := make([]string, 0, len(tb.Net.Cables))
	for name := range tb.Net.Cables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := tb.Net.Cables[name]
		for _, l := range []interface {
			Name() string
			Stats() (uint64, uint64)
			SeveredChars() uint64
		}{c.LeftToRight, c.RightToLeft} {
			chars, bursts := l.Stats()
			fmt.Fprintf(&b, "link %s chars=%d bursts=%d severed=%d\n",
				l.Name(), chars, bursts, l.SeveredChars())
		}
	}
	for i, r := range rels {
		fmt.Fprintf(&b, "rel%d %+v outstanding=%d\n", i, r.Stats(), r.Outstanding())
	}
	fmt.Fprintf(&b, "mon ticks=%d overflow=%d exported=%d dropped=%d\n",
		mon.Ticks(), mon.EventOverflow(), mon.Ring().Exported(), mon.Ring().Dropped())
	for _, e := range mon.Events() {
		fmt.Fprintf(&b, "event %v\n", e)
	}
	for _, rec := range mon.Ring().Records() {
		fmt.Fprintf(&b, "flow %s %v pkts=%d bytes=%d %d..%d cause=%v\n",
			rec.Tap, rec.Key, rec.Packets, rec.Bytes, rec.First, rec.Last, rec.Cause)
	}
	for _, t := range mon.Taps() {
		bursts, chars, packets, control := t.Stats()
		fmt.Fprintf(&b, "tap %s bursts=%d chars=%d data=%d other=%d\n",
			t.Name(), bursts, chars, packets, control)
	}
	return b.String()
}

// writeCounters renders one counter block with the drop map in sorted
// order (map iteration would make fingerprints incomparable).
func writeCounters(b *strings.Builder, label string, c *myrinet.Counters) {
	fmt.Fprintf(b, "%s sent=%d recv=%d fwd=%d in=%d out=%d stops=%d/%d gos=%d/%d sto=%d lto=%d ovf=%d lr=%d rr=%d wd=%d bt=%d fl=%d drops=",
		label, c.PacketsSent, c.PacketsReceived, c.PacketsForwarded,
		c.CharsIn, c.CharsOut, c.StopsSent, c.StopsReceived, c.GosSent,
		c.GosReceived, c.ShortTimeouts, c.LongTimeouts, c.OverflowChars,
		c.LinkResets, c.ResetsReceived, c.StopWatchdogFires,
		c.BlockedTimeouts, c.FlushedChars)
	reasons := make([]int, 0, len(c.Drops))
	for r := range c.Drops {
		reasons = append(reasons, int(r))
	}
	sort.Ints(reasons)
	for _, r := range reasons {
		fmt.Fprintf(b, "%d:%d,", r, c.Drops[myrinet.DropReason(r)])
	}
	b.WriteByte('\n')
}
