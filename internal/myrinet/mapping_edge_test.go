package myrinet

import (
	"testing"

	"netfi/internal/sim"
)

// TestMappingDemotionThenRepromotion: a node that took over mapping while
// the real mapper was unreachable must cede the role when the higher ID
// returns, and reclaim it if the higher one vanishes again — the §4.1
// "highest address is responsible" rule as an ongoing arbitration, not a
// one-shot election.
func TestMappingDemotionThenRepromotion(t *testing.T) {
	k := sim.NewKernel(1)
	n, hosts, _ := threeNodeNet(t, k, true) // MapPeriod 100 ms, C (ID 3) maps
	k.RunUntil(50 * sim.Millisecond)
	high := hosts[2].ifc.MCP()
	mid := hosts[1].ifc.MCP()
	if !high.IsMapper() {
		t.Fatal("highest ID not mapper after warmup")
	}

	// Sever C: B (next highest) promotes via watchdog.
	cable := n.Cables["C"]
	origL, origR := cable.LeftToRight.Dst(), cable.RightToLeft.Dst()
	cable.LeftToRight.SetDst(nullReceiver{})
	cable.RightToLeft.SetDst(nullReceiver{})
	k.RunUntil(600 * sim.Millisecond)
	if !mid.IsMapper() {
		t.Fatal("next-highest node did not promote after mapper loss")
	}

	// Reconnect C: its tables (ID 3 > ID 2) must demote B.
	cable.LeftToRight.SetDst(origL)
	cable.RightToLeft.SetDst(origR)
	k.RunUntil(1200 * sim.Millisecond)
	if mid.IsMapper() {
		t.Error("lower-ID node still mapper after the higher ID returned")
	}
	if !high.IsMapper() {
		t.Error("returned highest-ID node did not reclaim mapping")
	}
	if mid.Demotions() == 0 {
		t.Error("no demotion recorded")
	}
	// The network must be whole again: full 3-node map distributed.
	snap := high.LastSnapshot()
	if snap == nil || snap.NodeCount() != 3 || snap.Inconsistent {
		t.Errorf("post-recovery map wrong: %+v", snap)
	}
}

// TestMappingRoutesSurviveManyRounds: route churn across many consecutive
// rounds on a healthy network must never leave a window where a node has
// no route to a peer (tables are replaced atomically per node).
func TestMappingRoutesSurviveManyRounds(t *testing.T) {
	k := sim.NewKernel(2)
	_, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(50 * sim.Millisecond)
	// Sample routing tables at random offsets across 10 rounds.
	for i := 0; i < 40; i++ {
		k.RunFor(sim.Duration(23+i) * sim.Millisecond)
		for a := range hosts {
			for b := range hosts {
				if a == b {
					continue
				}
				if _, ok := hosts[a].ifc.Route(hosts[b].ifc.MAC()); !ok {
					t.Fatalf("sample %d: node %d lost its route to node %d", i, a, b)
				}
			}
		}
	}
}

// TestMappingScoutSequenceAdvances: probe sequence numbers keep rising
// across rounds so stale replies can never be mistaken for current ones.
func TestMappingScoutSequenceAdvances(t *testing.T) {
	k := sim.NewKernel(3)
	_, hosts, _ := threeNodeNet(t, k, true)
	mcp := hosts[2].ifc.MCP()
	k.RunUntil(450 * sim.Millisecond)
	total, _ := mcp.Rounds()
	if total < 4 {
		t.Fatalf("only %d rounds completed", total)
	}
	if mcp.seq < uint16(total)*uint16(DefaultPortCount) {
		t.Errorf("seq = %d after %d rounds of %d probes", mcp.seq, total, DefaultPortCount)
	}
}
