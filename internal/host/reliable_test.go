package host

import (
	"fmt"
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// packetDropper is a wire tap that deletes the first N complete packet
// trains (data characters plus the terminating GAP) while passing flow
// control through untouched — a clean whole-datagram loss, the kind the
// recovery layer's retransmission exists to absorb.
type packetDropper struct {
	dst    phy.Receiver
	remain int
	inPkt  bool
}

func (d *packetDropper) Receive(chars []phy.Character) {
	out := make([]phy.Character, 0, len(chars))
	for _, c := range chars {
		if d.remain > 0 {
			if c.IsData() {
				d.inPkt = true
				continue
			}
			if myrinet.DecodeControl(c.Byte()) == myrinet.SymbolGap && d.inPkt {
				d.inPkt = false
				d.remain--
				continue
			}
		}
		out = append(out, c)
	}
	if len(out) > 0 {
		d.dst.Receive(out)
	}
}

// tapDrop inserts a packetDropper on n's outbound link.
func tapDrop(n *Node, remain int) *packetDropper {
	link := n.Interface().Controller().Out()
	d := &packetDropper{dst: link.Dst(), remain: remain}
	link.SetDst(d)
	return d
}

func reliablePair(t *testing.T, k *sim.Kernel, cfg ReliableConfig) (*Node, *Node, *Reliable, *Reliable) {
	t.Helper()
	a, b := twoNodeNet(t, k)
	ra, err := NewReliable(a, 7000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewReliable(b, 7000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, ra, rb
}

func TestReliableInOrderDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	a, b, ra, rb := reliablePair(t, k, ReliableConfig{})
	_ = a
	var got []string
	rb.SetHandler(func(src myrinet.MAC, data []byte) { got = append(got, string(data)) })
	for i := 0; i < 5; i++ {
		ra.Send(b.MAC(), []byte(fmt.Sprintf("msg-%d", i)))
	}
	k.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d messages, want 5: %v", len(got), got)
	}
	for i, m := range got {
		if m != fmt.Sprintf("msg-%d", i) {
			t.Errorf("got[%d] = %q", i, m)
		}
	}
	s := ra.Stats()
	if s.Delivered != 5 || s.Retransmits != 0 || s.GaveUp != 0 {
		t.Errorf("stats = %v", s)
	}
	if ra.Outstanding() != 0 {
		t.Errorf("Outstanding = %d, want 0", ra.Outstanding())
	}
	fs := ra.FlowStats(b.MAC())
	if fs.SRTT == 0 {
		t.Error("no RTT estimate after clean round trips")
	}
}

func TestReliableRetransmitAfterDataLoss(t *testing.T) {
	k := sim.NewKernel(2)
	a, b, ra, rb := reliablePair(t, k, ReliableConfig{})
	tapDrop(a, 1) // eat the first data packet on the wire
	var got []string
	rb.SetHandler(func(src myrinet.MAC, data []byte) { got = append(got, string(data)) })
	ra.Send(b.MAC(), []byte("survives loss"))
	k.Run()
	if len(got) != 1 || got[0] != "survives loss" {
		t.Fatalf("delivered %v", got)
	}
	s := ra.Stats()
	if s.Retransmits == 0 {
		t.Error("no retransmits recorded after a dropped datagram")
	}
	if s.Delivered != 1 || s.GaveUp != 0 {
		t.Errorf("stats = %v", s)
	}
}

func TestReliableAckLossCausesDuplicate(t *testing.T) {
	k := sim.NewKernel(3)
	a, b, ra, rb := reliablePair(t, k, ReliableConfig{})
	tapDrop(b, 1) // eat the first ack; the retransmit arrives as a dup
	delivered := 0
	rb.SetHandler(func(src myrinet.MAC, data []byte) { delivered++ })
	_ = a
	ra.Send(b.MAC(), []byte("acked twice"))
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly once", delivered)
	}
	if rb.Stats().DupsDropped == 0 {
		t.Error("receiver saw no duplicate after a lost ack")
	}
	if ra.Stats().Delivered != 1 {
		t.Errorf("sender stats = %v", ra.Stats())
	}
}

func TestReliableGivesUpOnDeadPath(t *testing.T) {
	k := sim.NewKernel(4)
	a, b, ra, rb := reliablePair(t, k, ReliableConfig{
		InitialRTO: sim.Millisecond,
		MaxRetries: 2,
	})
	tapDrop(a, 1000) // the path is dead
	rb.SetHandler(func(src myrinet.MAC, data []byte) { t.Error("unexpected delivery") })
	_ = a
	ra.Send(b.MAC(), []byte("into the void"))
	k.Run()
	s := ra.Stats()
	if s.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (stats %v)", s.GaveUp, s)
	}
	if s.Retransmits != 2 {
		t.Errorf("Retransmits = %d, want MaxRetries=2", s.Retransmits)
	}
	if ra.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after give-up, want 0", ra.Outstanding())
	}
	if fs := ra.FlowStats(b.MAC()); fs.GaveUp != 1 {
		t.Errorf("flow stats = %+v", fs)
	}
}

func TestReliableGiveUpThenRecoverFlow(t *testing.T) {
	// A flow that abandons one datagram must keep working for the next:
	// the receiver accepts the sequence gap.
	k := sim.NewKernel(5)
	a, b, ra, rb := reliablePair(t, k, ReliableConfig{
		InitialRTO: sim.Millisecond,
		MaxRetries: 1,
	})
	drop := tapDrop(a, 4) // first datagram + its retry + second's first two tries... tuned below
	drop.remain = 2       // exactly datagram 0 and its single retry
	var got []string
	rb.SetHandler(func(src myrinet.MAC, data []byte) { got = append(got, string(data)) })
	ra.Send(b.MAC(), []byte("lost forever"))
	ra.Send(b.MAC(), []byte("gets through"))
	k.Run()
	if len(got) != 1 || got[0] != "gets through" {
		t.Fatalf("delivered %v, want only the second datagram", got)
	}
	s := ra.Stats()
	if s.GaveUp != 1 || s.Delivered != 1 {
		t.Errorf("stats = %v", s)
	}
}

func TestReliableBackoffGrowsRTO(t *testing.T) {
	k := sim.NewKernel(6)
	a, b, ra, _ := reliablePair(t, k, ReliableConfig{
		InitialRTO: sim.Millisecond,
		MaxRTO:     64 * sim.Millisecond,
		MaxRetries: 4,
	})
	tapDrop(a, 1000)
	ra.Send(b.MAC(), []byte("x"))
	k.Run()
	fs := ra.FlowStats(b.MAC())
	if fs.RTO <= sim.Millisecond {
		t.Errorf("RTO = %v after repeated timeouts, want exponential growth", fs.RTO)
	}
}

func TestReliableDeterministicPerSeed(t *testing.T) {
	run := func() (ReliableStats, sim.Time) {
		k := sim.NewKernel(42)
		a, b, ra, rb := reliablePair(t, k, ReliableConfig{})
		tapDrop(a, 2)
		rb.SetHandler(func(src myrinet.MAC, data []byte) {})
		for i := 0; i < 4; i++ {
			ra.Send(b.MAC(), []byte{byte(i)})
		}
		k.Run()
		return ra.Stats(), k.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("non-deterministic: %v@%v vs %v@%v", s1, t1, s2, t2)
	}
}
