package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Sec431Result reproduces the §4.3.1 narrative figures:
//
//   - the healthy baseline, ~48000 messages received per minute by the test
//     program;
//   - the faulty-STOP-condition run: "the test program received 5038
//     messages in a one minute period, a decrease of almost 90%";
//   - the GAP-corruption run: long-period timeouts every ~50 ms drag the
//     network "to around 12% of the normal throughput".
type Sec431Result struct {
	// BaselinePerMin is the healthy per-minute delivery rate at the test
	// program (the tapped node's receiver).
	BaselinePerMin float64
	// StopRunPerMin is the same rate under continuous faulty STOP
	// conditions.
	StopRunPerMin float64
	// StopReduction is 1 - StopRunPerMin/BaselinePerMin.
	StopReduction float64
	// GapThroughputFrac is the network-wide throughput under continuous
	// GAP corruption, as a fraction of the healthy network-wide rate.
	GapThroughputFrac float64
	// GapLongTimeouts counts long-period (~50 ms) recoveries during the
	// GAP run.
	GapLongTimeouts uint64
}

// Sec431Options parameterizes the runs.
type Sec431Options struct {
	Seed int64
	// Duration is the measurement window per run. The paper measured a
	// minute; zero selects 5 s, which measures the same rates (scale up
	// via cmd/netfi for the full minute).
	Duration sim.Duration
	// Workers runs the three independent measurement runs concurrently;
	// <= 1 is serial. Results are identical either way.
	Workers int
}

func (o *Sec431Options) fillDefaults() {
	if o.Duration == 0 {
		o.Duration = 5 * sim.Second
	}
}

// sec431Run measures delivery under one corruption setting. mask/repl empty
// (SymbolUnknown) means the pass-through baseline. duty > 0 meters the
// trigger to duty out of every 100 ms; duty == 0 leaves it armed
// continuously.
func sec431Run(seed int64, d sim.Duration, mask, repl myrinet.Symbol, duty sim.Duration) (tapPerMin float64, totalPerMin float64, longTOs uint64) {
	tb := NewTestbed(TestbedConfig{Seed: seed, TxQueueLimit: 4})
	if mask != SymbolNone {
		for _, dir := range []string{"L", "R"} {
			tb.Configure(
				"DIR "+dir,
				"COMPARE -- -- -- "+byteEntry(mask),
				"CORRUPT REPLACE -- -- -- "+byteEntry(repl),
				"MODE ON",
			)
		}
		if duty > 0 {
			const period = 100 * sim.Millisecond
			tb.DutyCycle(duty, period, int(d/period)+1)
		}
	}
	load := tb.StartLoad(LoadConfig{})
	tb.K.RunFor(d)
	load.Stop()
	tb.ConfigureBothMode(false)
	tb.K.RunFor(100 * sim.Millisecond)

	minutes := d.Seconds() / 60
	tapPerMin = float64(load.NodeReceived(tb.cfg.TapNode)) / minutes
	totalPerMin = float64(load.Received()) / minutes
	for p := 0; p < tb.Switch.Ports(); p++ {
		longTOs += tb.Switch.PortCounters(p).LongTimeouts
	}
	for _, n := range tb.Nodes {
		longTOs += n.Interface().Counters().LongTimeouts
	}
	return tapPerMin, totalPerMin, longTOs
}

// SymbolNone marks "no corruption" in sec431Run.
const SymbolNone = myrinet.SymbolUnknown

// RunSec431 executes baseline, faulty-STOP, and GAP-corruption runs. The
// three runs are independent simulations with their own seeds, so they can
// run on the worker pool.
func RunSec431(opts Sec431Options) Sec431Result {
	opts.fillDefaults()
	type run struct {
		tap, total float64
		longTOs    uint64
	}
	runs := RunTrials(3, opts.Workers, func(i int) run {
		var r run
		switch i {
		case 0:
			r.tap, r.total, _ = sec431Run(opts.Seed, opts.Duration, SymbolNone, SymbolNone, 0)
		case 1:
			// Faulty STOP conditions — the paper's own wording: "erroneous
			// flow control symbols caused, for example, empty buffers to
			// issue STOP commands". Packet-terminating GAPs on the tapped
			// link become spurious STOPs: framing is destroyed and phantom
			// STOP commands stall the senders. Metered to 82 ms out of
			// every 100 ms; armed continuously nothing at all survives
			// (recovery needs a quiet window longer than the ~50 ms
			// long-period timeout).
			r.tap, _, _ = sec431Run(opts.Seed+1, opts.Duration, myrinet.SymbolGap, myrinet.SymbolStop, 82*sim.Millisecond)
		case 2:
			// GAP corruption: packet-terminating GAPs vanish; paths stay
			// occupied until the long-period timeout reclaims them.
			_, r.total, r.longTOs = sec431Run(opts.Seed+2, opts.Duration, myrinet.SymbolGap, myrinet.SymbolIdle, 0)
		}
		return r
	})
	baseTap, baseTotal := runs[0].tap, runs[0].total
	stopTap := runs[1].tap
	gapTotal, gapTOs := runs[2].total, runs[2].longTOs

	res := Sec431Result{
		BaselinePerMin:  baseTap,
		StopRunPerMin:   stopTap,
		GapLongTimeouts: gapTOs,
	}
	if baseTap > 0 {
		res.StopReduction = 1 - stopTap/baseTap
	}
	if baseTotal > 0 {
		res.GapThroughputFrac = gapTotal / baseTotal
	}
	return res
}

// FormatSec431 renders the result against the paper's numbers.
func FormatSec431(r Sec431Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline:            %8.0f msgs/min   (paper: ~48000)\n", r.BaselinePerMin)
	fmt.Fprintf(&b, "faulty STOP run:     %8.0f msgs/min   (paper: 5038, ~90%% decrease)\n", r.StopRunPerMin)
	fmt.Fprintf(&b, "  reduction:         %7.1f%%\n", 100*r.StopReduction)
	fmt.Fprintf(&b, "GAP corruption run:  %7.1f%% of normal throughput (paper: ~12%%)\n", 100*r.GapThroughputFrac)
	fmt.Fprintf(&b, "  long-period timeouts observed: %d\n", r.GapLongTimeouts)
	return b.String()
}
