#!/bin/sh
# check.sh — the repository's full local gate: formatting, vet, the
# race-enabled test suite, and the tier-1 build/test pass ROADMAP.md
# promises to keep green. Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== tier-1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "check: OK"
