package rules

import "math/bits"

// ScanEvent classifies one prefilter step.
type ScanEvent uint8

const (
	// ScanLive: at least one prefix partial is still viable.
	ScanLive ScanEvent = iota
	// ScanDead: no viable partial remains — every symbol consumed so far,
	// including this one, is clean (the stepped symbol started nothing).
	ScanDead
	// ScanHit: some prefix completed on this symbol; the exact executor
	// must verify from MaxLen()-1 symbols back.
	ScanHit
)

// Scanner is a resumable prefilter evaluation: a value type so callers —
// Executor.StepBatch and the injector's planScan — keep it on the stack and
// interleave stepping with their own per-symbol classification. The zero
// Scanner is not usable; obtain one from NewScanner.
type Scanner struct {
	pf *Prefilter
	d  [pfMaxWords]uint64 // shift-and viable positions
	st int32              // reduced prefix-DFA state
}

// NewScanner returns a fresh scan with no viable partials.
func (pf *Prefilter) NewScanner() Scanner { return Scanner{pf: pf} }

// Step consumes one symbol. Search is unanchored: every step also tries to
// begin each prefix, so callers never need to restart the scanner on
// starter symbols.
func (s *Scanner) Step(sym uint16) ScanEvent {
	sym &= SymbolMask
	pf := s.pf
	if pf.acTable != nil {
		s.st = pf.acTable[int(s.st)*SymbolSpace+int(sym)]
		if pf.acAccept[s.st] != 0 {
			return ScanHit
		}
		if s.st == 0 {
			return ScanDead
		}
		return ScanLive
	}
	// Multi-word shift-and: D' = ((D<<1) | I) & B[sym]. A bit shifted past
	// a prefix's last position lands on the next prefix's first position,
	// which I re-injects every step anyway, so no boundary masking.
	row := pf.rows[int(sym)*pf.words:]
	var carry, live, hit uint64
	for w := 0; w < pf.words; w++ {
		d := s.d[w]
		nd := (d<<1 | carry | pf.ini[w]) & row[w]
		carry = d >> 63
		s.d[w] = nd
		live |= nd
		hit |= nd & pf.hitm[w]
	}
	if hit != 0 {
		return ScanHit
	}
	if live != 0 {
		return ScanLive
	}
	return ScanDead
}

// Depth reports the deepest viable partial in symbols consumed: how far back
// a caller must hold symbols for per-symbol verification when it stops
// scanning with partials still live (buffer end, or a legacy compare anchor
// interrupting the scan).
func (s *Scanner) Depth() int {
	pf := s.pf
	if pf.acTable != nil {
		return int(pf.acDepth[s.st])
	}
	max := 0
	for w := 0; w < pf.words; w++ {
		for d := s.d[w]; d != 0; d &= d - 1 {
			if dep := int(pf.depth[w*64+bits.TrailingZeros64(d)]); dep > max {
				max = dep
			}
		}
	}
	return max
}

// ScanClean scans a run and splits it: syms[:clean] provably cannot complete
// any rule's registered prefix — an executor in its start configuration may
// consume them with SkipQuiet — and the next hold symbols (zero only when the
// whole run is clean) must be stepped exactly. The split accounts for hits
// (rewound by MaxLen()-1 so the verifying executor sees the whole prefix) and
// for partials still viable at the end of the run (held back so a prefix
// straddling the call boundary is verified per-symbol).
func (pf *Prefilter) ScanClean(syms []uint16) (clean, hold int) {
	n := len(syms)
	i := 0
	for i < n {
		s := syms[i] & SymbolMask
		if pf.starter[s>>6]&(1<<uint(s&63)) == 0 {
			i++
			continue
		}
		sc := pf.NewScanner()
		j := i
		live := true
		for j < n {
			ev := sc.Step(syms[j])
			j++
			if ev == ScanHit {
				clean = j - pf.maxLen
				if clean < 0 {
					clean = 0
				}
				return clean, j - clean
			}
			if ev == ScanDead {
				live = false
				break
			}
		}
		if live {
			d := sc.Depth()
			return n - d, d
		}
		i = j
	}
	return n, 0
}
