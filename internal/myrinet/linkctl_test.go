package myrinet

import (
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// testEndpoint is a LinkController wired to a sink that records everything
// the controller transmits.
type testEndpoint struct {
	lc   *LinkController
	sent []phy.Character // characters the controller put on its out link
}

func newTestEndpoint(t *testing.T, k *sim.Kernel, name string) *testEndpoint {
	t.Helper()
	ep := &testEndpoint{}
	out := phy.NewLink(k, phy.LinkConfig{Name: name + ".out", CharPeriod: CharPeriod},
		phy.ReceiverFunc(func(chars []phy.Character) { ep.sent = append(ep.sent, chars...) }))
	ep.lc = NewLinkController(k, LinkControllerConfig{
		Name:     name,
		Out:      out,
		Counters: NewCounters(),
	})
	return ep
}

func (ep *testEndpoint) sentData() []byte {
	var out []byte
	for _, c := range ep.sent {
		if c.IsData() {
			out = append(out, c.Byte())
		}
	}
	return out
}

func (ep *testEndpoint) countControl(sym Symbol) int {
	n := 0
	for _, c := range ep.sent {
		if !c.IsData() && DecodeControl(c.Byte()) == sym {
			n++
		}
	}
	return n
}

func packetChars(n int) []phy.Character {
	chars := make([]phy.Character, 0, n+1)
	for i := 0; i < n; i++ {
		chars = append(chars, phy.DataChar(byte(i)))
	}
	return append(chars, GapChar())
}

func TestLinkControllerTransmitsQueuedPacket(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	done := false
	ep.lc.EnqueuePacket(packetChars(10), func(terminated bool) {
		if terminated {
			t.Error("packet reported terminated")
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("completion callback not invoked")
	}
	if got := len(ep.sentData()); got != 10 {
		t.Errorf("sent %d data bytes, want 10", got)
	}
	if ep.countControl(SymbolGap) != 1 {
		t.Errorf("GAPs sent = %d, want 1", ep.countControl(SymbolGap))
	}
}

func TestLinkControllerStopPausesTransmit(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	// Enqueue a packet larger than one chunk, then STOP it after the
	// first chunk is on the wire.
	ep.lc.EnqueuePacket(packetChars(200), nil)
	k.RunUntil(txChunkChars * CharPeriod) // first chunk serialized
	ep.lc.Receive([]phy.Character{StopChar()})
	if !ep.lc.Paused() {
		t.Fatal("controller not paused after STOP")
	}
	sentAtStop := len(ep.sent)
	// Within the short timeout the transmitter must stay quiet; keep
	// refreshing STOP.
	for i := 0; i < 10; i++ {
		k.RunFor(StopRefresh)
		ep.lc.Receive([]phy.Character{StopChar()})
	}
	if len(ep.sent) > sentAtStop+txChunkChars {
		t.Errorf("transmitter made progress while stopped: %d -> %d chars", sentAtStop, len(ep.sent))
	}
	// GO releases it.
	ep.lc.Receive([]phy.Character{GoChar()})
	k.Run()
	if got := len(ep.sentData()); got != 200 {
		t.Errorf("sent %d data bytes after GO, want 200", got)
	}
}

func TestLinkControllerShortTimeoutActsAsGo(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	ep.lc.EnqueuePacket(packetChars(100), nil)
	k.RunUntil(txChunkChars * CharPeriod)
	ep.lc.Receive([]phy.Character{StopChar()})
	// No refresh: after 16 character periods the sender transitions
	// itself to GO (§4.3.1) and finishes.
	k.Run()
	if got := len(ep.sentData()); got != 100 {
		t.Errorf("sent %d data bytes, want 100 (short timeout should release)", got)
	}
	if ep.lc.Counters().ShortTimeouts != 1 {
		t.Errorf("ShortTimeouts = %d, want 1", ep.lc.Counters().ShortTimeouts)
	}
}

func TestLinkControllerLongTimeoutTerminatesPacket(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	terminated := false
	ep.lc.EnqueuePacket(packetChars(1000), func(term bool) { terminated = term })
	k.RunUntil(txChunkChars * CharPeriod)
	// Persistent STOP: refresh forever (a genuinely wedged path).
	var refresh func()
	refresh = func() {
		ep.lc.Receive([]phy.Character{StopChar()})
		if k.Now() < 2*LongTimeout {
			k.After(StopRefresh, refresh)
		}
	}
	refresh()
	k.RunUntil(LongTimeout + 10*sim.Millisecond)
	if !terminated {
		t.Fatal("long-period timeout did not terminate the packet")
	}
	if ep.lc.Counters().LongTimeouts != 1 {
		t.Errorf("LongTimeouts = %d, want 1", ep.lc.Counters().LongTimeouts)
	}
	// The terminating GAP reclaims the path.
	if ep.countControl(SymbolGap) < 1 {
		t.Error("no GAP emitted on termination")
	}
	if got := ep.lc.Counters().Drops[DropTerminated]; got != 1 {
		t.Errorf("DropTerminated = %d, want 1", got)
	}
}

func TestLinkControllerWatermarkStopGo(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	// Do not register a consumer: everything accumulates in slack.
	burst := make([]phy.Character, DefaultSlackHigh)
	for i := range burst {
		burst[i] = phy.DataChar(byte(i))
	}
	ep.lc.Receive(burst)
	k.RunFor(CharPeriod)
	if ep.countControl(SymbolStop) < 1 {
		t.Fatal("no STOP issued at high watermark")
	}
	// STOP refreshes while the buffer stays full.
	k.RunFor(10 * StopRefresh)
	if ep.countControl(SymbolStop) < 5 {
		t.Errorf("STOP refreshes = %d, want several", ep.countControl(SymbolStop))
	}
	// Drain: a GO must follow.
	for {
		if _, ok := ep.lc.Pop(); !ok {
			break
		}
	}
	k.RunFor(CharPeriod)
	if ep.countControl(SymbolGo) != 1 {
		t.Errorf("GO count = %d, want 1", ep.countControl(SymbolGo))
	}
	// And the refresh chain must stop.
	stops := ep.countControl(SymbolStop)
	k.RunFor(20 * StopRefresh)
	if got := ep.countControl(SymbolStop); got != stops {
		t.Errorf("STOP refresh continued after GO: %d -> %d", stops, got)
	}
}

func TestLinkControllerClassifiesIncoming(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	var notified int
	ep.lc.SetNotify(func() { notified++ })
	ep.lc.Receive([]phy.Character{
		phy.DataChar(0xAA),
		IdleChar(),            // discarded
		GapChar(),             // buffered (framing)
		phy.ControlChar(0x55), // unknown: discarded
	})
	if ep.lc.Buffered() != 2 {
		t.Errorf("Buffered() = %d, want 2 (data+GAP)", ep.lc.Buffered())
	}
	if notified != 1 {
		t.Errorf("notify count = %d, want 1", notified)
	}
	c, _ := ep.lc.Pop()
	if !c.IsData() || c.Byte() != 0xAA {
		t.Errorf("first buffered char = %v", c)
	}
	c, _ = ep.lc.Pop()
	if c.IsData() || DecodeControl(c.Byte()) != SymbolGap {
		t.Errorf("second buffered char = %v, want GAP", c)
	}
}

func TestLinkControllerDegradedStopCodeStillStops(t *testing.T) {
	// 0x08 (a 1->0 fault on STOP) must still pause the transmitter.
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	ep.lc.Receive([]phy.Character{phy.ControlChar(0x08)})
	if !ep.lc.Paused() {
		t.Error("degraded STOP code did not pause")
	}
	ep.lc.Receive([]phy.Character{phy.ControlChar(0x02)}) // degraded GO
	if ep.lc.Paused() {
		t.Error("degraded GO code did not resume")
	}
}

func TestLinkControllerStreamPath(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	ep.lc.StreamChars(packetChars(50))
	k.Run()
	if got := len(ep.sentData()); got != 50 {
		t.Errorf("streamed %d data bytes, want 50", got)
	}
	if ep.lc.TxBacklog() != 0 {
		t.Errorf("TxBacklog() = %d after drain, want 0", ep.lc.TxBacklog())
	}
}

func TestLinkControllerStreamBackpressureNotify(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	drained := 0
	ep.lc.SetTxDrainNotify(func() { drained++ })
	big := make([]phy.Character, StreamBacklogLimit*3)
	for i := range big {
		big[i] = phy.DataChar(byte(i))
	}
	ep.lc.StreamChars(big)
	if ep.lc.TxBacklog() < StreamBacklogLimit {
		t.Fatal("backlog below limit immediately after big stream")
	}
	k.Run()
	if drained == 0 {
		t.Error("drain notify never fired")
	}
	if ep.lc.TxBacklog() != 0 {
		t.Errorf("TxBacklog() = %d, want 0", ep.lc.TxBacklog())
	}
}

func TestLinkControllerStopGoCounters(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	ep.lc.Receive([]phy.Character{StopChar(), GoChar(), StopChar(), GoChar()})
	ctr := ep.lc.Counters()
	if ctr.StopsReceived != 2 || ctr.GosReceived != 2 {
		t.Errorf("stop/go received = %d/%d, want 2/2", ctr.StopsReceived, ctr.GosReceived)
	}
	_ = k
}
