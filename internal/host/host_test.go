package host

import (
	"bytes"
	"testing"
	"testing/quick"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

func mac(b byte) myrinet.MAC { return myrinet.MAC{0x02, 0, 0, 0, 0, b} }

// twoNodeNet wires two nodes through an 8-port switch with static routes.
func twoNodeNet(t *testing.T, k *sim.Kernel) (*Node, *Node) {
	t.Helper()
	net := myrinet.NewNetwork(k)
	sw := net.AddSwitch("sw0", 8)
	a := NewNode(k, NodeConfig{Name: "A", MAC: mac(1), ID: 1})
	b := NewNode(k, NodeConfig{Name: "B", MAC: mac(2), ID: 2})
	net.ConnectHost(a.Interface(), sw, 0)
	net.ConnectHost(b.Interface(), sw, 1)
	a.Interface().SetRoute(b.MAC(), myrinet.RouteTo(1))
	b.Interface().SetRoute(a.MAC(), myrinet.RouteTo(0))
	return a, b
}

func TestUDPEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(srcPort, dstPort uint16, data []byte) bool {
		if len(data) > 1400 {
			data = data[:1400]
		}
		s, d, got, err := DecodeUDP(EncodeUDP(srcPort, dstPort, data))
		return err == nil && s == srcPort && d == dstPort && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	dgram := EncodeUDP(1, 2, []byte("payload under test"))
	dgram[10] ^= 0x20
	if _, _, _, err := DecodeUDP(dgram); err != errChecksum {
		t.Errorf("err = %v, want checksum error", err)
	}
}

func TestUDPChecksumBlindToAlignedSwap(t *testing.T) {
	// The §4.3.4 signature fault: bytes 16 bits apart swap undetected.
	dgram := EncodeUDP(1, 2, []byte("Have a lot of fun"))
	i := udpHeaderLen
	dgram[i], dgram[i+2] = dgram[i+2], dgram[i]
	dgram[i+1], dgram[i+3] = dgram[i+3], dgram[i+1]
	_, _, data, err := DecodeUDP(dgram)
	if err != nil {
		t.Fatalf("aligned swap rejected: %v", err)
	}
	if string(data) != "veHa a lot of fun" {
		t.Errorf("data = %q, want %q", data, "veHa a lot of fun")
	}
}

func TestNodeSendReceive(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	var got []byte
	var gotSrc myrinet.MAC
	if _, err := b.Bind(9001, func(src myrinet.MAC, srcPort uint16, data []byte) {
		got = append([]byte(nil), data...)
		gotSrc = src
	}); err != nil {
		t.Fatal(err)
	}
	a.SendUDP(b.MAC(), 9000, 9001, []byte("hello udp"))
	k.Run()
	if string(got) != "hello udp" {
		t.Fatalf("received %q", got)
	}
	if gotSrc != a.MAC() {
		t.Errorf("src = %v, want %v", gotSrc, a.MAC())
	}
	if a.Stats().UDPSent != 1 || b.Stats().UDPReceived != 1 {
		t.Errorf("stats: %+v / %+v", a.Stats(), b.Stats())
	}
}

func TestNodeUnboundPortDropped(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	a.SendUDP(b.MAC(), 9000, 4242, []byte("nobody home"))
	k.Run()
	if b.Stats().NoSocketDrops != 1 {
		t.Errorf("NoSocketDrops = %d, want 1", b.Stats().NoSocketDrops)
	}
}

func TestNodeDoubleBindFails(t *testing.T) {
	k := sim.NewKernel(1)
	a, _ := twoNodeNet(t, k)
	if _, err := a.Bind(5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(5, nil); err == nil {
		t.Error("double bind succeeded")
	}
}

func TestNodeSocketBufferOverflow(t *testing.T) {
	k := sim.NewKernel(1)
	// Tiny socket buffer and slow receiver: a fast burst must overflow.
	net := myrinet.NewNetwork(k)
	sw := net.AddSwitch("sw0", 8)
	a := NewNode(k, NodeConfig{Name: "A", MAC: mac(1), ID: 1, SendOverhead: sim.Microsecond})
	b := NewNode(k, NodeConfig{Name: "B", MAC: mac(2), ID: 2, SocketBuffer: 4, RecvOverhead: sim.Millisecond})
	net.ConnectHost(a.Interface(), sw, 0)
	net.ConnectHost(b.Interface(), sw, 1)
	a.Interface().SetRoute(b.MAC(), myrinet.RouteTo(1))
	if _, err := b.Bind(9001, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.SendUDP(b.MAC(), 9000, 9001, []byte("burst"))
	}
	k.Run()
	st := b.Stats()
	if st.OverflowDrops == 0 {
		t.Error("no overflow drops despite tiny socket buffer")
	}
	if st.UDPReceived+st.OverflowDrops != 20 {
		t.Errorf("received %d + dropped %d != 20", st.UDPReceived, st.OverflowDrops)
	}
}

func TestNodeSendSerialization(t *testing.T) {
	// Two back-to-back sends must reach the NIC one SendOverhead apart.
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	var times []sim.Time
	if _, err := b.Bind(9001, func(myrinet.MAC, uint16, []byte) {
		times = append(times, k.Now())
	}); err != nil {
		t.Fatal(err)
	}
	a.SendUDP(b.MAC(), 9000, 9001, []byte("one"))
	a.SendUDP(b.MAC(), 9000, 9001, []byte("two"))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d, want 2", len(times))
	}
	gap := times[1] - times[0]
	if gap < 90*sim.Microsecond {
		t.Errorf("inter-delivery gap %v; sends not serialized by CPU overhead", gap)
	}
}

func TestInterruptTickQuantization(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, NodeConfig{Name: "q", MAC: mac(9), ID: 9, InterruptTick: sim.Microsecond, TickPhase: 300 * sim.Nanosecond})
	got := n.quantize(2_500_000) // 2.5 us
	// Grid: 0.3, 1.3, 2.3, 3.3 us -> 3.3 us.
	if got != 3_300_000 {
		t.Errorf("quantize(2.5us) = %v, want 3.3us", got)
	}
	// Exactly on a boundary stays put.
	if q := n.quantize(3_300_000); q != 3_300_000 {
		t.Errorf("quantize(3.3us) = %v, want 3.3us", q)
	}
}

func TestPingPongMeasuresPerPacketTime(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	var res PingPongResult
	PingPong(k, a, b, 50, 32, func(r PingPongResult) { res = r })
	k.Run()
	if res.Rounds != 50 {
		t.Fatalf("rounds = %d, want 50", res.Rounds)
	}
	// Per-packet time must be near the stack overheads (~230 us), the
	// Table 2 regime.
	if res.PerPacket < 200*sim.Microsecond || res.PerPacket > 300*sim.Microsecond {
		t.Errorf("PerPacket = %v, want ~235us", res.PerPacket)
	}
}

func TestFloodRateAndAvoidBytes(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	var payloads [][]byte
	if _, err := b.Bind(9001, func(_ myrinet.MAC, _ uint16, data []byte) {
		payloads = append(payloads, append([]byte(nil), data...))
	}); err != nil {
		t.Fatal(err)
	}
	f := NewFlood(k, a, FloodConfig{Dst: b.MAC(), Avoid: []byte{0x0F, 0x0C, 0x03}})
	f.Start()
	k.RunUntil(sim.Second)
	f.Stop()
	k.RunFor(50 * sim.Millisecond)
	// Default interval 1.25 ms -> ~800/s.
	if f.Sent() < 790 || f.Sent() > 810 {
		t.Errorf("sent = %d in 1s, want ~800", f.Sent())
	}
	if len(payloads) < 700 {
		t.Errorf("received %d, want most of ~800", len(payloads))
	}
	for _, p := range payloads {
		for _, bb := range p {
			if bb == 0x0F || bb == 0x0C || bb == 0x03 {
				t.Fatalf("forbidden byte %#02x in payload", bb)
			}
		}
	}
}

func TestCountingReceiver(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := twoNodeNet(t, k)
	r, err := NewCountingReceiver(b, 9001)
	if err != nil {
		t.Fatal(err)
	}
	a.SendUDP(b.MAC(), 9000, 9001, make([]byte, 10))
	a.SendUDP(b.MAC(), 9000, 9001, make([]byte, 20))
	k.Run()
	if r.Received() != 2 || r.Bytes() != 30 {
		t.Errorf("received=%d bytes=%d, want 2/30", r.Received(), r.Bytes())
	}
}
