// Package netfi is a full reproduction, in simulation, of "An Adaptive
// Architecture for Monitoring and Failure Analysis of High-Speed Networks"
// (Floering, Brothers, Kalbarczyk, Iyer — DSN 2002): an in-path,
// reconfigurable fault injector for gigabit networks, together with every
// substrate the paper's evaluation depends on.
//
// The packages:
//
//	internal/sim           deterministic discrete-event kernel (ps clock)
//	internal/phy           physical links: characters, serialization, delay
//	internal/bitstream     CRC-8, CRC-32, one's-complement checksum
//	internal/myrinet       Myrinet: symbols, slack buffers, switches, MCP mapping
//	internal/enc8b10b      IBM 8b/10b transmission code
//	internal/fibrechannel  FC-PH frames, ordered sets, BB credit
//	internal/core          THE PAPER'S CONTRIBUTION: the FIFO injector device
//	internal/serial        UART / SPI / console control path
//	internal/host          UDP-era host stack with interrupt-granularity timing
//	internal/synth         FPGA resource estimator (Table 1)
//	internal/campaign      NFTAPE-style campaign framework + all experiments
//	internal/netmap        network-map rendering (Fig. 11)
//
// Regenerate the paper's tables and figures with:
//
//	go run ./cmd/netfi all
//
// The benchmarks in this package (bench_test.go) drive the same
// experiments under `go test -bench`; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package netfi
