package campaign

import (
	"fmt"

	"netfi/internal/host"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). Testbed.Clone is the top of the model
// graph's phase-2 pass: it forks the network container (switches,
// interfaces, cables), the hosts, the spliced injector, and the serial
// console, in an order the mapper's deferred pass makes irrelevant. The
// caller owns phase 1 (sim.NewMapper + Kernel.Clone) and phase 3
// (Mapper.Finish), because a campaign usually clones more than the testbed
// — the monitoring plane, reliable endpoints, beacons — under one mapper.

// Clone forks the testbed into the mapper's new world. The kernel must
// already be cloned into m.
func (tb *Testbed) Clone(m *sim.Mapper) *Testbed {
	tb2 := &Testbed{K: m.Kernel(), cfg: tb.cfg}
	m.Put(tb, tb2)
	tb2.Net = tb.Net.Clone(m)
	if v, ok := m.Lookup(tb.Switch); ok {
		tb2.Switch = v.(*myrinet.Switch)
	}
	for _, n := range tb.Nodes {
		tb2.Nodes = append(tb2.Nodes, n.Clone(m))
	}
	if tb.Injector != nil {
		tb2.Injector = tb.Injector.Clone(m)
		tb2.Console = tb.Console.Clone(m)
	}
	if tb.load != nil {
		tb2.load = tb.load.clone(m, tb2)
	}
	return tb2
}

// Load returns the running workload, nil before StartLoad. A fork reaches
// its own copy through this accessor.
func (tb *Testbed) Load() *Load { return tb.load }

// clone forks the workload: counters, burst schedule state (pending
// loadTick events remap through the object table), and the per-node
// receiver handlers rebound onto the fork's sockets.
func (l *Load) clone(m *sim.Mapper, tb2 *Testbed) *Load {
	l2 := &Load{
		tb:              tb2,
		burst:           l.burst,
		period:          l.period,
		size:            l.size,
		running:         l.running,
		seq:             l.seq,
		sent:            l.sent,
		received:        l.received,
		corruptAccepted: l.corruptAccepted,
		perNodeRecv:     append([]uint64(nil), l.perNodeRecv...),
		socks:           make([]*host.Socket, len(l.socks)),
	}
	m.Put(l, l2)
	for i, s := range l.socks {
		i, s := i, s
		m.Defer(func() error {
			v, ok := m.Lookup(s)
			if !ok {
				return fmt.Errorf("campaign: fork: load receiver %d on uncloned socket", i)
			}
			s2 := v.(*host.Socket)
			l2.socks[i] = s2
			s2.SetHandler(func(_ myrinet.MAC, _ uint16, data []byte) {
				l2.onReceive(i, data)
			})
			return nil
		})
	}
	return l2
}
