package serial

// SPI framing (§3.3): the communications handler "assembles data in the
// 16-bit SPI protocol format from 8-bit ASCII codes". Each 16-bit frame
// carries one payload byte in the low half and a tag in the high half; the
// tag distinguishes command-stream bytes from board status and gives the
// frame the self-describing shape a hardware FSM can route without a
// separate strobe line.

// SPI frame tags.
const (
	// TagData marks a frame carrying one command/response byte.
	TagData byte = 0xA5
	// TagStatus marks a board-status frame (low half = status code).
	TagStatus byte = 0x5A
)

// Frame is one 16-bit SPI transfer.
type Frame uint16

// NewDataFrame wraps one payload byte.
func NewDataFrame(b byte) Frame { return Frame(uint16(TagData)<<8 | uint16(b)) }

// NewStatusFrame wraps one status code.
func NewStatusFrame(code byte) Frame { return Frame(uint16(TagStatus)<<8 | uint16(code)) }

// Tag returns the frame's high-half tag.
func (f Frame) Tag() byte { return byte(f >> 8) }

// Payload returns the frame's low-half byte.
func (f Frame) Payload() byte { return byte(f) }

// IsData reports whether the frame carries a command/response byte.
func (f Frame) IsData() bool { return f.Tag() == TagData }

// Assembler packs a byte stream into SPI frames and unpacks it again,
// mirroring the SPI entity's serialize/deserialize role.
type Assembler struct {
	frames   uint64
	rejected uint64
}

// Pack converts bytes to data frames.
func (a *Assembler) Pack(data []byte) []Frame {
	out := make([]Frame, len(data))
	for i, b := range data {
		out[i] = NewDataFrame(b)
	}
	a.frames += uint64(len(data))
	return out
}

// Unpack extracts payload bytes from data frames, discarding (and
// counting) frames with unknown tags — line noise on a real SPI bus.
func (a *Assembler) Unpack(frames []Frame) []byte {
	out := make([]byte, 0, len(frames))
	for _, f := range frames {
		if !f.IsData() {
			a.rejected++
			continue
		}
		out = append(out, f.Payload())
	}
	return out
}

// Stats reports frames packed and frames rejected on unpack.
func (a *Assembler) Stats() (packed, rejected uint64) { return a.frames, a.rejected }
