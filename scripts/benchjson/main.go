// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, one record per benchmark with ns/op, B/op, allocs/op,
// and any custom b.ReportMetric metrics (events/s, trials/s, …) keyed by
// unit. scripts/bench.sh pipes through it to produce BENCH_<date>.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result line.
type record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// output is the whole document.
type output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var out output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses one result line:
//
//	BenchmarkKernel-4  1000  11763 ns/op  85012 events/s  5376 B/op  1 allocs/op
//
// The format is pairs of (value, unit) after the iteration count.
func parseBench(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
