package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// MultiRuleResult is the outcome of the multi-target address-corruption
// experiment: a §4.3.3-style campaign that arms one corruption rule per
// destination node in a single rule set, so every target is hit in one
// stream pass instead of one reconfiguration per target.
type MultiRuleResult struct {
	// RulesArmed is the rule-set size; Mode/DFAStates/NFAStates describe
	// the compiled form ("dfa" when subset construction fit the budget).
	RulesArmed int
	Mode       string
	DFAStates  int
	NFAStates  int

	// Targets is the number of distinct destination nodes armed; each has
	// its own REPLACE rule rewriting the destination MAC's last byte to a
	// nonexistent address with the CRC left stale.
	Targets int
	// TargetsDroppedByCRC counts targets whose interface dropped exactly
	// the corrupted packet with an incorrect CRC-8.
	TargetsDroppedByCRC int
	// NoneDelivered reports that no corrupted packet reached any
	// application socket.
	NoneDelivered bool

	// PerRuleFires maps rule ID to its fire counter after the pass; the
	// shared port-toggle rule must have fired once per packet, and the
	// capture-only watch rule must have observed every packet without
	// perturbing the stream.
	PerRuleFires map[int]uint64
	ToggleFires  uint64
	WatchMatches uint64
}

// MultiRuleOptions parameterizes the experiment.
type MultiRuleOptions struct {
	Seed int64
}

// ghostByte returns the nonexistent MAC-tail byte substituted for target i.
// 0x70..0x7F is clear of every control-symbol code and every real node
// address (0x11 + i).
func ghostByte(i int) byte { return byte(0x70 + i) }

// Rule IDs: one REPLACE rule per target node, then the shared toggle and
// the capture-only watch.
const (
	multiRuleToggleID = 60
	multiRuleWatchID  = 61
)

// RunMultiRule builds a full 8-node test bed (every switch port occupied),
// arms the whole rule set over the serial console in one configuration
// pass, then sends one UDP packet from the tapped node to each of the seven
// other nodes — a single stream pass through the injector that every rule
// acts on concurrently.
func RunMultiRule(opts MultiRuleOptions) MultiRuleResult {
	tb := NewTestbed(TestbedConfig{Seed: opts.Seed, Nodes: myrinet.DefaultPortCount})
	tap := tb.TapNode()
	targets := len(tb.Nodes) - 1

	receivers := make([]*countingSocket, len(tb.Nodes))
	for i, n := range tb.Nodes {
		r, err := NewTapReceiver(n)
		if err != nil {
			panic(err)
		}
		receivers[i] = r
	}

	// One configuration pass arms everything. Per target i: the outbound
	// destination MAC tail (..40 40 11+i) followed by the source MAC's
	// first byte identifies a data packet to node i; rewrite the last
	// address byte to a ghost value, CRC left stale. The shared toggle
	// flips the UDP source port's low byte on every workload packet
	// (source MAC tail, then the port's two bytes), and the watch rule
	// observes the tapped node's own source-address tail without touching
	// the stream.
	cmds := []string{"DIR L"}
	for i := 1; i <= targets; i++ {
		m := NodeMAC(i)
		cmds = append(cmds, fmt.Sprintf(
			"RULE ADD %d PRIO %d ACT REPLACE PAT %02X %02X %02X %02X VEC -- -- %02X --",
			i, i, m[3], m[4], m[5], NodeMAC(0)[0], ghostByte(i)))
	}
	src := NodeMAC(0)
	cmds = append(cmds,
		fmt.Sprintf("RULE ADD %d ACT TOGGLE PAT %02X %02X %02X VEC -- -- 01",
			multiRuleToggleID, src[5], byte(loadSrcPort>>8), byte(loadSrcPort&0xFF)),
		fmt.Sprintf("RULE ADD %d ACT CAP PAT %02X %02X %02X",
			multiRuleWatchID, src[3], src[4], src[5]),
	)
	tb.Configure(cmds...)
	// RULE ADD lines run longer than the legacy commands Configure's
	// per-line budget assumes; drain the serial path completely before
	// traffic, then require every response to be OK — a late-arriving ADD
	// would silently re-arm the set mid-pass.
	tb.K.RunFor(sim.Duration(len(strings.Join(cmds, "\n"))) * 100 * sim.Microsecond)
	if got := len(tb.Console.Responses()); got != len(cmds) {
		panic(fmt.Sprintf("campaign: %d of %d commands acknowledged", got, len(cmds)))
	}
	for i, resp := range tb.Console.Responses() {
		if resp != "OK" {
			panic(fmt.Sprintf("campaign: command %d (%q) -> %q", i, cmds[i], resp))
		}
	}

	crcBefore := make([]uint64, len(tb.Nodes))
	for i, n := range tb.Nodes {
		crcBefore[i] = n.Interface().Counters().Drops[myrinet.DropCRC]
	}

	// The single pass: one packet per target, payload clear of every
	// armed pattern byte.
	for i := 1; i <= targets; i++ {
		tap.SendUDP(NodeMAC(i), loadSrcPort, loadDstPort, []byte("multirule pass"))
	}
	tb.K.RunFor(20 * sim.Millisecond)

	eng := tb.Injector.Engine(DirOutbound)
	res := MultiRuleResult{
		Targets:      targets,
		PerRuleFires: make(map[int]uint64),
	}
	if prog := eng.RuleProgram(); prog != nil {
		st := prog.Stats()
		res.RulesArmed = st.Rules
		res.Mode = st.Mode
		res.DFAStates = st.DFAStates
		res.NFAStates = st.NFAStates
	}
	for _, r := range eng.Rules() {
		_, f, _ := eng.RuleCounters(r.ID)
		res.PerRuleFires[r.ID] = f
	}
	res.ToggleFires = res.PerRuleFires[multiRuleToggleID]
	m, _, _ := eng.RuleCounters(multiRuleWatchID)
	res.WatchMatches = m

	for i := 1; i <= targets; i++ {
		n := tb.Nodes[i]
		if n.Interface().Counters().Drops[myrinet.DropCRC] == crcBefore[i]+1 {
			res.TargetsDroppedByCRC++
		}
	}
	res.NoneDelivered = true
	for _, r := range receivers {
		if r.Received() != 0 {
			res.NoneDelivered = false
		}
	}
	return res
}

// FormatMultiRule renders the result.
func FormatMultiRule(r MultiRuleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule set: %d rules compiled to %s (%d DFA states, %d NFA states)\n",
		r.RulesArmed, r.Mode, r.DFAStates, r.NFAStates)
	fmt.Fprintf(&b, "single pass over %d targets: %d/%d dropped by stale CRC-8; none delivered: %v\n",
		r.Targets, r.TargetsDroppedByCRC, r.Targets, r.NoneDelivered)
	fmt.Fprintf(&b, "shared port-toggle rule fired %d times; capture-only watch matched %d packets\n",
		r.ToggleFires, r.WatchMatches)
	for i := 1; i <= r.Targets; i++ {
		fmt.Fprintf(&b, "  rule %d (target node%d): fires=%d\n", i, i, r.PerRuleFires[i])
	}
	return b.String()
}
