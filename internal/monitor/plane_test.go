package monitor

import (
	"strings"
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// testPacket builds the wire characters of one data packet as a switch
// input tap would see it: route hop, final route byte, 4-byte type, dst and
// src identifiers, payload, CRC byte, GAP.
func testPacket(src, dst [6]byte, payload int) []phy.Character {
	raw := []byte{myrinet.SwitchHop(2), myrinet.RouteFinal, 0, 0, 0, byte(myrinet.TypeData)}
	raw = append(raw, dst[:]...)
	raw = append(raw, src[:]...)
	for i := 0; i < payload; i++ {
		raw = append(raw, 0x55)
	}
	raw = append(raw, 0xAB) // stand-in CRC; taps do not verify it
	chars := phy.DataChars(raw)
	return append(chars, phy.ControlChar(myrinet.SymGap))
}

func TestTapFlowExtraction(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{})
	tap := p.NewTap("sw0.p0", TapOptions{Flows: true, Detect: true})

	src, dst := macOf(1), macOf(2)
	pkt := testPacket(src, dst, 20)
	for i := 0; i < 3; i++ {
		tap.ObserveChars(sim.Time(i)*sim.Time(sim.Millisecond), pkt)
	}
	if tap.Flows().Active() != 1 {
		t.Fatalf("active flows = %d, want 1", tap.Flows().Active())
	}
	tap.Flows().FlushAll()
	rec, ok := p.Ring().Pop()
	if !ok {
		t.Fatal("no flow record exported")
	}
	want := FlowKey{Src: src, Dst: dst}
	if rec.Key != want {
		t.Fatalf("flow key = %v, want %v", rec.Key, want)
	}
	if rec.Packets != 3 || rec.Bytes != uint64(3*len(pkt)-3) {
		t.Fatalf("record packets=%d bytes=%d, want 3/%d", rec.Packets, rec.Bytes, 3*len(pkt)-3)
	}
	if tap.Detector().Heartbeats() != 3 {
		t.Fatalf("detector heartbeats = %d, want 3", tap.Detector().Heartbeats())
	}
}

func TestTapSplitBurstsAndControlPackets(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{})
	tap := p.NewTap("t", TapOptions{Flows: true})

	// A data packet delivered across three bursts must still classify.
	pkt := testPacket(macOf(1), macOf(2), 10)
	tap.ObserveChars(0, pkt[:5])
	tap.ObserveChars(0, pkt[5:11])
	tap.ObserveChars(0, pkt[11:])
	// A mapping packet counts as control, not a flow.
	mp := []byte{myrinet.RouteFinal, 0, 0, 0, byte(myrinet.TypeMapping), 1, 2, 3}
	tap.ObserveChars(0, append(phy.DataChars(mp), phy.ControlChar(myrinet.SymGap)))

	_, _, packets, control := tap.Stats()
	if packets != 1 || control != 1 {
		t.Fatalf("packets=%d control=%d, want 1/1", packets, control)
	}
}

func TestTapResetTerminatesFlows(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{})
	tap := p.NewTap("t", TapOptions{Flows: true})
	tap.ObserveChars(0, testPacket(macOf(1), macOf(2), 10))
	tap.ObserveChars(0, []phy.Character{phy.ControlChar(myrinet.SymReset)})
	rec, ok := p.Ring().Pop()
	if !ok || rec.Cause != CauseReset {
		t.Fatalf("after RESET: record=%+v ok=%v, want reset-cause export", rec, ok)
	}
	if tap.Flows().Active() != 0 {
		t.Fatal("flow cache should be empty after RESET")
	}
}

func TestPlaneSuspectAndRecover(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{SampleInterval: sim.Millisecond})
	tap := p.NewTap("node1.rx", TapOptions{Detect: true})
	p.Start()

	pkt := testPacket(macOf(2), macOf(1), 8)
	// Heartbeats every 2 ms for 40 ms, then silence.
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * sim.Time(2*sim.Millisecond)
		k.At(at, func() { tap.ObserveChars(k.Now(), pkt) })
	}
	k.RunUntil(sim.Time(100 * sim.Millisecond))

	var suspect *Event
	for i := range p.Events() {
		if p.Events()[i].Kind == EventSuspect {
			suspect = &p.Events()[i]
			break
		}
	}
	if suspect == nil {
		t.Fatalf("no suspect event after silence; events=%v", p.Events())
	}
	if suspect.Source != "node1.rx" {
		t.Fatalf("suspect source = %q, want node1.rx", suspect.Source)
	}
	lastBeat := sim.Time(19 * 2 * sim.Millisecond)
	lat := suspect.Time - lastBeat
	if lat <= 0 || lat > sim.Time(20*sim.Millisecond) {
		t.Fatalf("suspicion latency = %v, want within (0, 20ms]", lat)
	}

	// Fresh heartbeats recover the source.
	for i := 0; i < 3; i++ {
		at := sim.Time(100*sim.Millisecond) + sim.Time(i)*sim.Time(2*sim.Millisecond)
		k.At(at, func() { tap.ObserveChars(k.Now(), pkt) })
	}
	k.RunUntil(sim.Time(110 * sim.Millisecond))
	found := false
	for _, e := range p.Events() {
		if e.Kind == EventRecover && e.Time > suspect.Time {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recover event after heartbeats resumed; events=%v", p.Events())
	}
	p.Stop()
}

func TestPlaneLossAndWedgeProbes(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{SampleInterval: sim.Millisecond})
	var drops uint64
	var held int
	p.AddLossProbe("net.drops", func() uint64 { return drops })
	p.AddWedgeProbe("sw0.held", func() int { return held })
	p.Start()

	k.At(sim.Time(5*sim.Millisecond), func() { drops = 3 })
	k.At(sim.Time(20*sim.Millisecond), func() { held = 1 })
	k.At(sim.Time(40*sim.Millisecond), func() { held = 0 })
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	p.Stop()

	var loss, wedge *Event
	for i := range p.Events() {
		e := &p.Events()[i]
		switch e.Detail {
		case "loss-burst":
			if loss == nil {
				loss = e
			}
		case "wedge":
			if wedge == nil {
				wedge = e
			}
		}
	}
	// The drop lands at 5 ms before that instant's sampling pass (it was
	// scheduled first), so the 5 ms tick already reports it.
	if loss == nil || loss.Time != sim.Time(5*sim.Millisecond) || loss.Value != 3 {
		t.Fatalf("loss event = %+v, want t=5ms value=3", loss)
	}
	// Held from 20 ms (before that instant's pass): nonzero samples at
	// 20 ms and 21 ms, so the two-sample persistence alarm fires at 21 ms.
	if wedge == nil || wedge.Time != sim.Time(21*sim.Millisecond) {
		t.Fatalf("wedge event = %+v, want t=21ms", wedge)
	}
	// Exactly one event per episode.
	n := 0
	for _, e := range p.Events() {
		if e.Detail == "loss-burst" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("loss events = %d, want 1 (single episode)", n)
	}
}

func TestPlaneStopAtDrainsKernel(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{SampleInterval: sim.Millisecond})
	p.AddLossProbe("x", func() uint64 { return 0 })
	p.SetStopAt(sim.Time(10 * sim.Millisecond))
	p.Start()
	// Run() must terminate: the ticker parks at the horizon.
	k.Run()
	if k.Now() > sim.Time(10*sim.Millisecond) {
		t.Fatalf("kernel ran to %v, want <= 10ms", k.Now())
	}
	if p.Ticks() != 10 {
		t.Fatalf("ticks = %d, want 10", p.Ticks())
	}
}

func TestTapObserveAllocFree(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{})
	tap := p.NewTap("t", TapOptions{Flows: true, Detect: true, LatencyShift: true})
	pkt := testPacket(macOf(1), macOf(2), 20)
	now := sim.Time(0)
	// Warm: open the flow, fill the shift baseline.
	for i := 0; i < 64; i++ {
		now += sim.Time(sim.Millisecond)
		tap.ObserveChars(now, pkt)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now += sim.Time(sim.Millisecond)
		tap.ObserveChars(now, pkt)
	})
	if allocs > 0 {
		t.Fatalf("tap observation allocates %.1f/run, want 0", allocs)
	}
}

func TestPlaneSummaryRenders(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPlane(k, Config{SampleInterval: sim.Millisecond})
	tap := p.NewTap("sw0.p0", TapOptions{Flows: true})
	tap.ObserveChars(0, testPacket(macOf(1), macOf(2), 10))
	p.Stop() // flush
	s := p.Summary()
	for _, want := range []string{"flows exported", "sw0.p0", "cause=shutdown"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
