package enc8b10b

import (
	"testing"
	"testing/quick"
)

func TestKnownCodeGroups(t *testing.T) {
	cases := []struct {
		name string
		b    byte
		isK  bool
		rd   RD
		want uint16
	}{
		{"D0.0 RD-", 0x00, false, RDMinus, 0b1001110100},
		{"D0.0 RD+", 0x00, false, RDPlus, 0b0110001011},
		{"K28.5 RD-", 0xBC, true, RDMinus, 0b0011111010},
		{"K28.5 RD+", 0xBC, true, RDPlus, 0b1100000101},
		{"K28.1 RD-", 0x3C, true, RDMinus, 0b0011111001},
		{"K28.3 RD-", 0x7C, true, RDMinus, 0b0011110011},
		{"D21.5 RD-", 0xB5, false, RDMinus, 0b1010101010},
		{"D21.5 RD+", 0xB5, false, RDPlus, 0b1010101010},
	}
	for _, c := range cases {
		got, _, err := Encode(c.b, c.isK, c.rd)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %010b, want %010b", c.name, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTripAllBytes(t *testing.T) {
	for _, rd := range []RD{RDMinus, RDPlus} {
		for v := 0; v < 256; v++ {
			code, next, err := Encode(byte(v), false, rd)
			if err != nil {
				t.Fatalf("Encode(D%#02x, %v): %v", v, rd, err)
			}
			res, decRD := Decode(code, rd)
			if res.Invalid || res.DisparityError {
				t.Fatalf("D%#02x rd=%v decoded as invalid=%v dispErr=%v", v, rd, res.Invalid, res.DisparityError)
			}
			if res.Byte != byte(v) || res.IsK {
				t.Fatalf("D%#02x decoded as %#02x K=%v", v, res.Byte, res.IsK)
			}
			// Decoder's RD evolution must mirror the encoder's.
			if decRD != next {
				t.Fatalf("D%#02x rd=%v: decoder RD %v != encoder RD %v", v, rd, decRD, next)
			}
		}
	}
}

func TestEncodeDecodeRoundTripKChars(t *testing.T) {
	for k := range validK {
		for _, rd := range []RD{RDMinus, RDPlus} {
			code, _, err := Encode(k, true, rd)
			if err != nil {
				t.Fatalf("Encode(K%#02x): %v", k, err)
			}
			res, _ := Decode(code, rd)
			if !res.IsK || res.Byte != k || res.Invalid {
				t.Errorf("K%#02x rd=%v decoded as %+v", k, rd, res)
			}
		}
	}
}

func TestEncodeRejectsBogusK(t *testing.T) {
	if _, _, err := Encode(0x00, true, RDMinus); err == nil {
		t.Error("K0.0 encoded without error")
	}
}

// Property: every valid code group has 4, 5, or 6 ones — the fundamental
// DC-balance bound of 8b/10b.
func TestCodeGroupOnesBound(t *testing.T) {
	check := func(code uint16) {
		ones := 0
		for i := 0; i < 10; i++ {
			if code&(1<<i) != 0 {
				ones++
			}
		}
		if ones < 4 || ones > 6 {
			t.Fatalf("code %010b has %d ones", code, ones)
		}
	}
	for v := 0; v < 256; v++ {
		for _, rd := range []RD{RDMinus, RDPlus} {
			code, _, _ := Encode(byte(v), false, rd)
			check(code)
		}
	}
}

// Property: over any byte stream, running disparity stays in {-1,+1} and
// the stream decodes back exactly.
func TestStreamRoundTripProperty(t *testing.T) {
	prop := func(data []byte) bool {
		codes, finalRD := EncodeStream(data, RDMinus)
		if finalRD != RDMinus && finalRD != RDPlus {
			return false
		}
		rd := RDMinus
		for i, code := range codes {
			res, next := Decode(code, rd)
			if res.Invalid || res.DisparityError || res.IsK || res.Byte != data[i] {
				return false
			}
			rd = next
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the code is a prefix-free mapping per disparity — no two
// distinct inputs share a code group under the same entry disparity.
func TestNoCodeCollisions(t *testing.T) {
	for rdi := 0; rdi < 2; rdi++ {
		seen := make(map[uint16]byte)
		for v := 0; v < 256; v++ {
			code, _, _ := Encode(byte(v), false, RD(2*rdi-1))
			if prev, ok := seen[code]; ok {
				t.Fatalf("D%#02x and D%#02x share code %010b", prev, v, code)
			}
			seen[code] = byte(v)
		}
	}
}

func TestSingleBitFaultsAreDetectable(t *testing.T) {
	// Flip each bit of each encoded data byte: the result must decode as
	// invalid, as a disparity error, or (if it aliases a legal group)
	// derail the running disparity so a later group errors. Count how
	// many faults are immediately visible — the vast majority must be.
	immediate := 0
	total := 0
	for v := 0; v < 256; v++ {
		code, _, _ := Encode(byte(v), false, RDMinus)
		for bit := 0; bit < 10; bit++ {
			total++
			res, _ := Decode(code^1<<bit, RDMinus)
			if res.Invalid || res.DisparityError || (!res.IsK && res.Byte == byte(v)) {
				if res.Invalid || res.DisparityError {
					immediate++
				}
				continue
			}
			// Aliased to a different legal value: data corruption that
			// upper layers (FC CRC-32) must catch.
		}
	}
	if float64(immediate)/float64(total) < 0.5 {
		t.Errorf("only %d/%d single-bit faults immediately detectable", immediate, total)
	}
}

func TestDisparityErrorDetection(t *testing.T) {
	// D.0's RD- form arriving while the decoder expects RD+ is a
	// disparity error.
	code, _, _ := Encode(0x00, false, RDMinus)
	res, _ := Decode(code, RDPlus)
	if !res.DisparityError {
		t.Errorf("wrong-disparity code not flagged: %+v", res)
	}
}

func TestCommaUniqueness(t *testing.T) {
	// The comma pattern 0011111 / 1100000 (abcdeif) must appear only in
	// K28.1, K28.5, K28.7 — singular comma property used for alignment.
	hasComma := func(code uint16) bool {
		top7 := code >> 3
		return top7 == 0b0011111 || top7 == 0b1100000
	}
	for v := 0; v < 256; v++ {
		for _, rd := range []RD{RDMinus, RDPlus} {
			code, _, _ := Encode(byte(v), false, rd)
			if hasComma(code) {
				t.Errorf("data byte D%#02x rd=%v contains a comma: %010b", v, rd, code)
			}
		}
	}
	for _, k := range []byte{0xBC, 0x3C, 0xFC} {
		code, _, _ := Encode(k, true, RDMinus)
		if !hasComma(code) {
			t.Errorf("K%#02x lacks the comma: %010b", k, code)
		}
	}
}
