package myrinet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"netfi/internal/bitstream"
)

func TestPacketEncodeLayout(t *testing.T) {
	p := &Packet{
		Route:   []byte{0x81, 0x00},
		Type:    TypeData,
		Payload: []byte{0xDE, 0xAD},
	}
	wire := p.Encode()
	// route(2) + type(4) + payload(2) + crc(1)
	if len(wire) != 9 {
		t.Fatalf("wire length = %d, want 9", len(wire))
	}
	want := []byte{0x81, 0x00, 0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD}
	if !bytes.Equal(wire[:8], want) {
		t.Errorf("wire = %x, want prefix %x", wire, want)
	}
	if wire[8] != bitstream.CRC8(want) {
		t.Errorf("crc = %#02x, want %#02x", wire[8], bitstream.CRC8(want))
	}
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(route []byte, typ uint16, payload []byte) bool {
		if len(route) == 0 {
			route = []byte{RouteFinal}
		}
		if len(route) > 8 {
			route = route[:8]
		}
		p := &Packet{Route: route, Type: typ, Payload: payload}
		got, err := DecodePacket(p.Encode(), len(route))
		if err != nil {
			return false
		}
		return bytes.Equal(got.Route, route) &&
			got.Type == typ &&
			got.TypeHigh == 0 &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePacketBadCRC(t *testing.T) {
	p := &Packet{Route: []byte{RouteFinal}, Type: TypeData, Payload: []byte("hi")}
	wire := p.Encode()
	wire[3] ^= 0x10 // corrupt a type byte without fixing the CRC
	_, err := DecodePacket(wire, 1)
	if !errors.Is(err, ErrBadCRC) {
		t.Errorf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodePacketTooShort(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2, 3}, 1); !errors.Is(err, ErrTooShort) {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestDecodePreservesCorruptTypeHigh(t *testing.T) {
	// A corrupted high half of the 4-byte type field must survive decode
	// so interfaces can reject it as unknown.
	p := &Packet{Route: []byte{RouteFinal}, TypeHigh: 0x00FF, Type: TypeData}
	got, err := DecodePacket(p.Encode(), 1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.TypeHigh != 0x00FF {
		t.Errorf("TypeHigh = %#04x, want 0x00FF", got.TypeHigh)
	}
}

func TestRouteTo(t *testing.T) {
	r := RouteTo(3, 5)
	want := []byte{0x83, 0x85, 0x00}
	if !bytes.Equal(r, want) {
		t.Errorf("RouteTo(3,5) = %x, want %x", r, want)
	}
}

func TestSwitchHopMasksPort(t *testing.T) {
	if SwitchHop(3) != 0x83 {
		t.Errorf("SwitchHop(3) = %#02x", SwitchHop(3))
	}
	if SwitchHop(0x1FF) != 0xFF {
		t.Errorf("SwitchHop overflow = %#02x, want 0xFF", SwitchHop(0x1FF))
	}
}

func TestEncodeCharsEndsWithGap(t *testing.T) {
	p := &Packet{Route: []byte{RouteFinal}, Type: TypeData, Payload: []byte{1}}
	chars := p.EncodeChars()
	last := chars[len(chars)-1]
	if last.IsData() || DecodeControl(last.Byte()) != SymbolGap {
		t.Errorf("last character = %v, want GAP", last)
	}
	for _, c := range chars[:len(chars)-1] {
		if !c.IsData() {
			t.Errorf("non-data character %v inside packet", c)
		}
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("String() = %q", got)
	}
	if m.IsZero() {
		t.Error("IsZero() on non-zero MAC")
	}
	if !(MAC{}).IsZero() {
		t.Error("IsZero() false on zero MAC")
	}
}

func TestDecodeControlRules(t *testing.T) {
	cases := []struct {
		code byte
		want Symbol
	}{
		{SymIdle, SymbolIdle},
		{SymGo, SymbolGo},
		{SymGap, SymbolGap},
		{SymStop, SymbolStop},
		{0x08, SymbolStop},      // single 1->0 fault still recognized (paper)
		{0x02, SymbolGo},        // single 1->0 fault still recognized (paper)
		{SymReset, SymbolReset}, // recovery layer's forward reset
		{0x06, SymbolUnknown},
		{0xFF, SymbolUnknown},
	}
	for _, c := range cases {
		if got := DecodeControl(c.code); got != c.want {
			t.Errorf("DecodeControl(%#02x) = %v, want %v", c.code, got, c.want)
		}
	}
}

func TestControlSymbolHammingDistance(t *testing.T) {
	// "There is a Hamming distance of at least two between any two
	// control symbols" (§4.3.1).
	syms := []byte{SymGo, SymGap, SymStop, SymReset}
	for i := 0; i < len(syms); i++ {
		for j := i + 1; j < len(syms); j++ {
			d := bitstream.OnesCount32(uint32(syms[i] ^ syms[j]))
			if d < 2 {
				t.Errorf("distance(%#02x,%#02x) = %d, want >= 2", syms[i], syms[j], d)
			}
		}
	}
}

func TestSymbolStringAndCode(t *testing.T) {
	for _, s := range []Symbol{SymbolIdle, SymbolGo, SymbolGap, SymbolStop} {
		if DecodeControl(s.Code()) != s {
			t.Errorf("round trip failed for %v", s)
		}
	}
	if SymbolStop.String() != "STOP" || SymbolGap.String() != "GAP" {
		t.Error("symbol mnemonics wrong")
	}
}
