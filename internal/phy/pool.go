package phy

import (
	"math/bits"
	"sync"

	"netfi/internal/sim"
)

// Burst-buffer pool. Every burst a link delivers is copied into a pooled
// buffer, and the pool only reclaims a buffer when its receiver explicitly
// hands it back with ReleaseBurst — so a receiver that retains the slice
// (the documented legacy contract) is always safe: the buffer simply falls
// out of the pool and the garbage collector reclaims it as before.
//
// Buffers are size-classed by power-of-two capacity. The free lists are
// guarded by per-class mutexes rather than sync.Pool because Put-ing a slice
// into a sync.Pool boxes it (one allocation per release), which would defeat
// the zero-allocs-per-burst goal the regression tests pin.

const (
	minBurstBits = 4  // smallest pooled class: 16 characters
	maxBurstBits = 16 // largest pooled class: 65536 characters
)

type burstClass struct {
	mu   sync.Mutex
	free [][]Character
}

var burstClasses [maxBurstBits + 1]burstClass

func burstClassFor(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2 n) for n > 1
	if c < minBurstBits {
		c = minBurstBits
	}
	return c
}

// GetBurst returns a buffer of length n, recycled from the pool when one is
// available. The contents are unspecified; callers overwrite them.
func GetBurst(n int) []Character {
	if n <= 0 {
		return nil
	}
	if n > 1<<maxBurstBits {
		return make([]Character, n)
	}
	cl := &burstClasses[burstClassFor(n)]
	cl.mu.Lock()
	if last := len(cl.free) - 1; last >= 0 {
		b := cl.free[last]
		cl.free[last] = nil
		cl.free = cl.free[:last]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	return make([]Character, n, 1<<burstClassFor(n))
}

// ReleaseBurst returns a delivered burst to the pool. Callers must release
// exactly the slice they were handed, must not touch it afterwards, and must
// not release a buffer twice. Releasing is always optional — an unreleased
// buffer is collected by the GC — and foreign slices whose capacity is not a
// pooled power of two are ignored.
func ReleaseBurst(b []Character) {
	c := cap(b)
	if c < 1<<minBurstBits || c > 1<<maxBurstBits || c&(c-1) != 0 {
		return
	}
	cl := &burstClasses[bits.Len(uint(c))-1]
	cl.mu.Lock()
	cl.free = append(cl.free, b[:0])
	cl.mu.Unlock()
}

// delivery carries one pending Receive call through the kernel without a
// closure. Deliveries are pooled like bursts.
type delivery struct {
	dst   Receiver
	chars []Character
	next  *delivery
}

var deliveryPool struct {
	mu   sync.Mutex
	free *delivery
}

func deliverBurst(a any) {
	d := a.(*delivery)
	dst, chars := d.dst, d.chars
	d.dst, d.chars = nil, nil
	deliveryPool.mu.Lock()
	d.next = deliveryPool.free
	deliveryPool.free = d
	deliveryPool.mu.Unlock()
	dst.Receive(chars)
}

// ScheduleReceive schedules dst.Receive(chars) at virtual time at, passing
// ownership of chars to the receiver. It is the allocation-free spelling of
// k.At(at, func() { dst.Receive(chars) }) and is exported so devices that
// forward pooled buffers (e.g. the injector's ports) can reuse it.
func ScheduleReceive(k *sim.Kernel, at sim.Time, dst Receiver, chars []Character) sim.EventID {
	deliveryPool.mu.Lock()
	d := deliveryPool.free
	if d != nil {
		deliveryPool.free = d.next
		d.next = nil
	}
	deliveryPool.mu.Unlock()
	if d == nil {
		d = new(delivery)
	}
	d.dst, d.chars = dst, chars
	return k.AtArg(at, deliverBurst, d)
}

// ScheduleReceiveExt is ScheduleReceive for externally-ordered deliveries:
// the event carries the sending channel's (rank, seq) stamp so the kernel
// fires same-time deliveries in a partition-independent order (see
// sim.Kernel.AtExt). Used by the sharded fabric's exchange and DirectEnd
// paths.
func ScheduleReceiveExt(k *sim.Kernel, at sim.Time, rank uint32, seq uint64, dst Receiver, chars []Character) sim.EventID {
	deliveryPool.mu.Lock()
	d := deliveryPool.free
	if d != nil {
		deliveryPool.free = d.next
		d.next = nil
	}
	deliveryPool.mu.Unlock()
	if d == nil {
		d = new(delivery)
	}
	d.dst, d.chars = dst, chars
	return k.AtExt(at, rank, seq, deliverBurst, d)
}
