// Conservative coordination of multiple kernels with extracted lookahead.
//
// A ShardGroup advances N kernels in windows separated by barriers. Each
// window gives shard j a horizon h(j): the shard executes every pending
// event with timestamp <= h(j) and then waits. The horizons are chosen so
// no event executed inside the window can be affected by a cross-shard
// delivery that has not been injected yet — the classic Chandy-Misra-Bryant
// conservative discipline, with the barrier playing the role of null
// messages.
//
// Safe horizon. Let next(i) be shard i's earliest pending event and
// dist(i, j) the minimum virtual-time latency from an event executing on
// shard i to the earliest resulting arrival on shard j, minimized over all
// influence paths with at least one cross- or intra-shard channel hop
// (dist(j, j) is the shortest nontrivial cycle through j). Any arrival
// into j caused by an event chain starting from shard i's current state
// happens at or after next(i) + dist(i, j), so
//
//	h(j) = min over i with pending events of next(i) + dist(i, j) - 1
//
// is safe: everything j executes through h(j) precedes the earliest
// possible not-yet-injected arrival. The matrix is supplied by the fabric
// layer (SetDistanceMatrix) from the cable map; without one the group
// falls back to a uniform dist(i, j) = lookahead, which reproduces the
// fixed-window schedule of the static design (window = global min event
// time T through T+lookahead-1).
//
// Determinism: shards execute external deliveries in a total order carried
// by the events themselves (arrival time, then cable rank, then per-cable
// sequence — see Kernel.AtExt), so the set and order of events each kernel
// executes is a pure function of the traffic, independent of how windows
// happen to be cut. The same simulation sharded 1, 2, or N ways executes
// byte-identically (the fabric equivalence tests pin this down); only the
// window count varies with the partition.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// senseBarrier is a reusable sense-reversing barrier for n participants.
// Arrivals spin briefly (yielding the processor) and then park on a
// condition variable, so it is cheap both on multicore (spin resolves) and
// on a single CPU (Gosched hands the processor to the shard that has not
// arrived yet).
type senseBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32

	mu   sync.Mutex
	cond *sync.Cond
}

func newSenseBarrier(n int) *senseBarrier {
	b := &senseBarrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants have called wait. Each participant
// passes a pointer to its private sense flag; the barrier is immediately
// reusable for the next phase.
func (b *senseBarrier) wait(local *uint32) {
	s := *local ^ 1
	*local = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		// Publish the sense flip under the mutex so a participant that
		// observed the stale sense and is about to park cannot miss the
		// broadcast.
		b.mu.Lock()
		b.sense.Store(s)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < 128; i++ {
		if b.sense.Load() == s {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// ShardGroup drives a set of kernels through conservative windows
// separated by exchange barriers.
//
// The zero value is not usable; construct with NewShardGroup.
type ShardGroup struct {
	kernels   []*Kernel
	lookahead Duration

	// dist[i][j] is the minimum latency from an event on shard i to an
	// arrival on shard j over paths with >= 1 channel hop; 0 means shard i
	// cannot influence shard j at all. nil selects the static fallback
	// (uniform lookahead between every pair, including self).
	dist [][]Duration

	// exchange drains every shard's outbox into its peers' kernels at a
	// barrier. It runs with all shards quiescent and must inject events
	// in a deterministic order; it returns the number of deliveries
	// moved. Set by the fabric layer via SetExchange.
	exchange func() int

	windows   uint64
	exchanged uint64

	// Per-shard window state. horizons is written by the coordinator
	// before the start barrier; nexts/has are written by each shard's
	// owner after draining, before the end barrier. The barriers order
	// every write against every read.
	horizons []Time
	nexts    []Time
	has      []bool

	// Worker machinery for len(kernels) > 1. Worker i owns kernels[i]
	// exclusively between barriers; kernel 0 runs on the coordinating
	// goroutine so a 1-shard group has zero concurrency.
	bar    *senseBarrier
	sense0 uint32
	quit   bool
	closed bool
}

// NewShardGroup returns a coordinator over the given kernels. The lookahead
// must be positive: it is the guaranteed minimum virtual-time latency of any
// cross-shard interaction, and the uniform fallback when no distance matrix
// is installed.
func NewShardGroup(kernels []*Kernel, lookahead Duration) *ShardGroup {
	if len(kernels) == 0 {
		panic("sim: ShardGroup needs at least one kernel")
	}
	if lookahead <= 0 {
		panic("sim: ShardGroup lookahead must be positive")
	}
	n := len(kernels)
	g := &ShardGroup{
		kernels:   kernels,
		lookahead: lookahead,
		horizons:  make([]Time, n),
		nexts:     make([]Time, n),
		has:       make([]bool, n),
	}
	if n > 1 {
		g.bar = newSenseBarrier(n)
		for i := 1; i < n; i++ {
			go g.worker(i)
		}
	}
	return g
}

// SetExchange installs the barrier exchange hook. It must be set before Run
// when any cross-shard channels exist.
func (g *ShardGroup) SetExchange(fn func() int) { g.exchange = fn }

// SetDistanceMatrix installs the shard-pair minimum-latency matrix that
// unlocks adaptive horizons. dist[i][j] must be the minimum virtual-time
// latency from an event executing on shard i to the earliest resulting
// arrival on shard j over influence paths with at least one channel hop
// (dist[j][j] is the shortest nontrivial cycle through j); a zero entry
// means shard i can never influence shard j. Every entry must be either
// zero or >= the group's lookahead.
func (g *ShardGroup) SetDistanceMatrix(dist [][]Duration) {
	if len(dist) != len(g.kernels) {
		panic("sim: distance matrix shard count mismatch")
	}
	for _, row := range dist {
		if len(row) != len(g.kernels) {
			panic("sim: distance matrix is not square")
		}
		for _, d := range row {
			if d != 0 && d < g.lookahead {
				panic("sim: distance matrix entry below group lookahead")
			}
		}
	}
	g.dist = dist
}

// Kernels returns the coordinated kernels, shard-indexed.
func (g *ShardGroup) Kernels() []*Kernel { return g.kernels }

// Windows reports how many windows have been executed. Unlike event
// execution order, the window count depends on the partition and the
// distance matrix — more shards or tighter latencies mean more barriers.
func (g *ShardGroup) Windows() uint64 { return g.windows }

// Exchanged reports how many cross-shard deliveries have crossed barriers.
func (g *ShardGroup) Exchanged() uint64 { return g.exchanged }

// Processed sums executed events across all kernels.
func (g *ShardGroup) Processed() uint64 {
	var n uint64
	for _, k := range g.kernels {
		n += k.Processed()
	}
	return n
}

// Pending sums pending events across all kernels.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, k := range g.kernels {
		n += k.Pending()
	}
	return n
}

// Now returns the maximum shard clock; after Run it is the shared time all
// shards were aligned to (the global last-event time when drained, limit
// otherwise).
func (g *ShardGroup) Now() Time {
	var t Time
	for _, k := range g.kernels {
		if k.Now() > t {
			t = k.Now()
		}
	}
	return t
}

// worker owns kernels[idx], draining it to the commanded horizon each
// window. Between the two barrier waits the worker has exclusive access to
// its kernel and its nexts/has slots.
func (g *ShardGroup) worker(idx int) {
	k := g.kernels[idx]
	var sense uint32
	for {
		g.bar.wait(&sense) // start: horizons are published
		if g.quit {
			return
		}
		k.Drain(g.horizons[idx])
		g.nexts[idx], g.has[idx] = k.PeekNext()
		g.bar.wait(&sense) // end: nexts are published
	}
}

// peekAll refreshes the cached next-event times from every kernel. Needed
// at Run entry and after an exchange injects events; between windows the
// cache is maintained incrementally at barrier exit.
func (g *ShardGroup) peekAll() {
	for i, k := range g.kernels {
		g.nexts[i], g.has[i] = k.PeekNext()
	}
}

// minNext returns the global minimum next-event time from the cache.
func (g *ShardGroup) minNext() (Time, bool) {
	var minT Time
	found := false
	for i := range g.kernels {
		if g.has[i] && (!found || g.nexts[i] < minT) {
			minT, found = g.nexts[i], true
		}
	}
	return minT, found
}

// computeHorizons fills g.horizons for the next window, capped at limit.
// With a distance matrix, shard j may run through
// min over pending i of next(i) + dist(i, j) - 1; a shard no pending
// event chain can reach sprints straight to limit. Without a matrix every
// shard gets the static window T+lookahead-1 anchored at the global
// minimum T.
func (g *ShardGroup) computeHorizons(limit Time) {
	if g.dist == nil {
		t, _ := g.minNext()
		h := t + g.lookahead - 1
		if h > limit {
			h = limit
		}
		for j := range g.horizons {
			g.horizons[j] = h
		}
		return
	}
	for j := range g.horizons {
		h := limit
		for i := range g.kernels {
			if !g.has[i] {
				continue
			}
			d := g.dist[i][j]
			if d == 0 {
				continue
			}
			if hij := g.nexts[i] + d - 1; hij < h {
				h = hij
			}
		}
		g.horizons[j] = h
	}
}

// runWindow drains every shard to its horizon, in parallel when the group
// has more than one shard, and refreshes the next-event cache at barrier
// exit.
func (g *ShardGroup) runWindow() {
	if g.bar == nil {
		k := g.kernels[0]
		k.Drain(g.horizons[0])
		g.nexts[0], g.has[0] = k.PeekNext()
		g.windows++
		return
	}
	g.bar.wait(&g.sense0) // start: release workers
	k := g.kernels[0]
	k.Drain(g.horizons[0])
	g.nexts[0], g.has[0] = k.PeekNext()
	g.bar.wait(&g.sense0) // end: collect workers
	g.windows++
}

// Run executes windows until every shard drains or the global next-event
// time passes limit. It reports whether the group drained (quiesced); when
// false, pending events remain beyond limit. All shard clocks end at the
// same time: the global last-event time when drained, limit otherwise —
// either way a pure function of the traffic, independent of the partition.
func (g *ShardGroup) Run(limit Time) bool {
	if g.closed {
		panic("sim: ShardGroup used after Close")
	}
	g.peekAll()
	for {
		if g.exchange != nil {
			if n := g.exchange(); n > 0 {
				g.exchanged += uint64(n)
				g.peekAll()
			}
		}
		t, ok := g.minNext()
		if !ok {
			// Drained. Align the clocks so observers see one time.
			g.alignClocks(g.Now())
			return true
		}
		if t > limit {
			g.alignClocks(limit)
			return false
		}
		g.computeHorizons(limit)
		g.runWindow()
	}
}

// alignClocks advances every shard clock to t without executing events
// (RunUntil on a kernel whose next event is beyond t only moves the clock).
func (g *ShardGroup) alignClocks(t Time) {
	for _, k := range g.kernels {
		if k.Now() < t {
			k.RunUntil(t)
		}
	}
}

// Close shuts down the worker goroutines. The group panics if used after.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	if g.bar != nil {
		g.quit = true
		g.bar.wait(&g.sense0)
	}
}
