package core

import (
	"testing"

	"netfi/internal/enc8b10b"
	fc "netfi/internal/fibrechannel"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// The paper's board carries both a MyriPHY and an FCPHY; only the interface
// logic is medium-specific. These tests splice the identical Device into an
// 8b/10b Fibre Channel link.

func fcFixture(t *testing.T, k *sim.Kernel) (*fc.NPort, *fc.NPort, *Device) {
	t.Helper()
	a, b, cable := fc.Connect(k,
		fc.NPortConfig{Name: "A", Addr: 0x010101},
		fc.NPortConfig{Name: "B", Addr: 0x020202})
	neutral, _, err := enc8b10b.Encode(0xB5, false, enc8b10b.RDMinus)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(k, DeviceConfig{
		Name:       "fc-inj",
		CharPeriod: fc.CodeGroupPeriod,
		IdleChar:   phy.Character(neutral),
	})
	dev.Insert(cable)
	return a, b, dev
}

func TestDeviceTransparentOnFibreChannel(t *testing.T) {
	k := sim.NewKernel(1)
	a, b, _ := fcFixture(t, k)
	got := 0
	b.SetFrameHandler(func(*fc.Frame) { got++ })
	for i := 0; i < 10; i++ {
		a.Send(&fc.Frame{
			Header:  fc.Header{DID: b.Addr(), SID: a.Addr(), SeqCnt: uint16(i)},
			Payload: make([]byte, 256),
		})
	}
	k.Run()
	if got != 10 {
		t.Errorf("delivered %d/10 frames through the spliced injector", got)
	}
	st := b.Stats()
	if st.CodeViolations+st.DisparityErrors+st.CRCDrops != 0 {
		t.Errorf("pass-through introduced line errors: %+v", st)
	}
}

func TestDeviceCorruptsFCCodeGroup(t *testing.T) {
	// Toggle one bit of a matched 10-bit code group: the receiver must
	// detect the fault (code violation / disparity error / CRC-32) and
	// the frame must not be delivered.
	k := sim.NewKernel(1)
	a, b, dev := fcFixture(t, k)
	victim, _, _ := enc8b10b.Encode(0x3A, false, enc8b10b.RDMinus)
	dev.Engine(LeftToRight).Configure(Config{
		Match:       MatchOnce,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.Character(victim)},
		CompareMask: [WindowSize]CharMask{0, 0, 0, 0x3FF},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, 0x004},
	})
	delivered := 0
	b.SetFrameHandler(func(*fc.Frame) { delivered++ })
	a.Send(&fc.Frame{
		Header:  fc.Header{DID: b.Addr(), SID: a.Addr()},
		Payload: []byte{0x3A, 0x3A},
	})
	a.Send(&fc.Frame{
		Header:  fc.Header{DID: b.Addr(), SID: a.Addr()},
		Payload: []byte{0x01, 0x02},
	})
	k.Run()
	_, _, injections := dev.Engine(LeftToRight).Stats()
	if injections != 1 {
		t.Fatalf("injections = %d, want 1", injections)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (corrupted frame dropped, clean frame through)", delivered)
	}
	st := b.Stats()
	if st.CodeViolations+st.DisparityErrors+st.CRCDrops == 0 {
		t.Errorf("corruption undetected by the FC receive path: %+v", st)
	}
}

func TestDeviceFCCreditLoopSurvivesSplice(t *testing.T) {
	// R_RDY ordered sets cross the injector in the reverse direction;
	// buffer-to-buffer credit must keep cycling through the splice.
	k := sim.NewKernel(1)
	a, b, _ := fcFixture(t, k)
	b.SetFrameHandler(func(*fc.Frame) {})
	const n = 25
	for i := 0; i < n; i++ {
		a.Send(&fc.Frame{Header: fc.Header{DID: b.Addr(), SID: a.Addr(), SeqCnt: uint16(i)}})
	}
	k.Run()
	if got := b.Stats().FramesReceived; got != n {
		t.Errorf("frames through credit loop = %d, want %d", got, n)
	}
	if a.Stats().RRdyReceived != n {
		t.Errorf("R_RDYs back through injector = %d, want %d", a.Stats().RRdyReceived, n)
	}
}
