package sim

// Timer is a resettable one-shot timeout bound to a kernel, modeled after the
// watchdog counters in Myrinet interfaces: every received symbol resets the
// short-period counter, and expiry fires a recovery action.
//
// The zero value is not usable; construct with NewTimer.
type Timer struct {
	k       *Kernel
	d       Duration
	fn      func()
	pending EventID
	armed   bool
	fires   uint64
}

// NewTimer returns a timer that invokes fn when d elapses without a Reset.
// The timer starts disarmed.
func NewTimer(k *Kernel, d Duration, fn func()) *Timer {
	return &Timer{k: k, d: d, fn: fn}
}

// Reset (re)arms the timer for a full period from now. Re-arming rides the
// kernel's capture-free path: watchdog pets happen per received burst, and a
// closure per pet would dominate the datapath's allocations.
func (t *Timer) Reset() {
	t.Stop()
	t.armed = true
	t.pending = t.k.AfterArg(t.d, timerExpire, t)
}

func timerExpire(a any) {
	t := a.(*Timer)
	t.armed = false
	t.fires++
	t.fn()
}

// Stop disarms the timer without firing.
func (t *Timer) Stop() {
	if t.armed {
		t.k.Cancel(t.pending)
		t.armed = false
	}
}

// Clone forks the timer into m's new world. The callback cannot be copied
// (it is a closure over the owner), so the owner's own clone passes the
// rebound fn; the pending expiry event, if armed, is remapped so the fork
// fires it at the same instant the source would.
func (t *Timer) Clone(m *Mapper, fn func()) *Timer {
	t2 := &Timer{
		k:       m.Kernel(),
		d:       t.d,
		fn:      fn,
		pending: m.MapEventID(t.pending),
		armed:   t.armed,
		fires:   t.fires,
	}
	m.Put(t, t2)
	return t2
}

// Armed reports whether the timer is counting down.
func (t *Timer) Armed() bool { return t.armed }

// Fires reports how many times the timer has expired.
func (t *Timer) Fires() uint64 { return t.fires }

// SetPeriod changes the timeout period. It takes effect at the next Reset.
func (t *Timer) SetPeriod(d Duration) { t.d = d }

// Period returns the current timeout period.
func (t *Timer) Period() Duration { return t.d }
