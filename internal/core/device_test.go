package core

import (
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

const charPeriod = 12_500 * sim.Picosecond

type sink struct {
	k     *sim.Kernel
	chars []phy.Character
	times []sim.Time
}

func (s *sink) Receive(chars []phy.Character) {
	s.chars = append(s.chars, chars...)
	for range chars {
		s.times = append(s.times, s.k.Now())
	}
}

// spliceFixture builds left->right and right->left links with a device
// spliced in, and sinks at both ends.
func spliceFixture(t *testing.T, k *sim.Kernel) (*Device, *phy.Cable, *sink, *sink) {
	t.Helper()
	right := &sink{k: k}
	left := &sink{k: k}
	cfg := phy.LinkConfig{Name: "cable", CharPeriod: charPeriod, PropDelay: 5 * sim.Nanosecond}
	cable := phy.NewCable(k, cfg, left, right)
	dev := NewDevice(k, DeviceConfig{Name: "inj"})
	dev.Insert(cable)
	return dev, cable, left, right
}

func TestDevicePassThroughTransparency(t *testing.T) {
	// §3.5: both control and data characters transfer seamlessly; routes
	// map through in both directions.
	k := sim.NewKernel(1)
	_, cable, left, right := spliceFixture(t, k)
	msg := []phy.Character{
		phy.DataChar(0x81), phy.DataChar(0x00), phy.DataChar(0x04),
		phy.ControlChar(0x0C),
	}
	cable.LeftToRight.Send(msg)
	cable.RightToLeft.Send([]phy.Character{phy.DataChar(0x42), phy.ControlChar(0x0C)})
	k.Run()
	if len(right.chars) != 4 {
		t.Fatalf("right received %d chars, want 4", len(right.chars))
	}
	for i := range msg {
		if right.chars[i] != msg[i] {
			t.Errorf("char %d = %v, want %v", i, right.chars[i], msg[i])
		}
	}
	if len(left.chars) != 2 || left.chars[0] != phy.DataChar(0x42) {
		t.Errorf("left received %v", left.chars)
	}
}

func TestDeviceAddsFixedLatency(t *testing.T) {
	k := sim.NewKernel(1)
	// Reference: identical cable without a device.
	ref := &sink{k: k}
	cfg := phy.LinkConfig{Name: "ref", CharPeriod: charPeriod, PropDelay: 5 * sim.Nanosecond}
	refLink := phy.NewLink(k, cfg, ref)

	dev, cable, _, right := spliceFixture(t, k)
	payload := phy.DataChars(make([]byte, 64))
	refLink.Send(payload)
	cable.LeftToRight.Send(payload)
	k.Run()
	if len(right.times) == 0 || len(ref.times) == 0 {
		t.Fatal("no deliveries")
	}
	added := right.times[len(right.times)-1] - ref.times[len(ref.times)-1]
	if added != dev.Latency() {
		t.Errorf("added latency = %v, want %v", added, dev.Latency())
	}
	// The paper's footnote: ~250 ns at the default pipeline depth.
	if dev.Latency() != 250*sim.Nanosecond {
		t.Errorf("default latency = %v, want 250ns", dev.Latency())
	}
}

func TestDeviceNoThroughputImpact(t *testing.T) {
	// "The fault injector caused no observable impact on the data
	// transfer rate": n chars must take n*charPeriod + constant, not
	// n*(charPeriod+x).
	k := sim.NewKernel(1)
	_, cable, _, right := spliceFixture(t, k)
	const n = 10_000
	start := k.Now()
	for i := 0; i < n/100; i++ {
		cable.LeftToRight.Send(phy.DataChars(make([]byte, 100)))
	}
	k.Run()
	if len(right.chars) != n {
		t.Fatalf("received %d chars, want %d", len(right.chars), n)
	}
	elapsed := right.times[len(right.times)-1] - start
	wire := sim.Duration(n) * charPeriod
	overhead := elapsed - wire
	if overhead > 300*sim.Nanosecond {
		t.Errorf("per-stream overhead %v exceeds constant latency budget", overhead)
	}
}

func TestDeviceBidirectionalIndependence(t *testing.T) {
	// Different and independent commands on data traveling in different
	// directions (§3.3).
	k := sim.NewKernel(1)
	dev, cable, left, right := spliceFixture(t, k)
	dev.Engine(LeftToRight).Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x11)},
		CompareMask: [WindowSize]CharMask{0, 0, 0, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, 0xFF},
	})
	dev.Engine(RightToLeft).Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x22)},
		CompareMask: [WindowSize]CharMask{0, 0, 0, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, 0x0F},
	})
	cable.LeftToRight.Send(phy.DataChars([]byte{0x11, 0x22}))
	cable.RightToLeft.Send(phy.DataChars([]byte{0x11, 0x22}))
	k.Run()
	if right.chars[0].Byte() != 0xEE || right.chars[1].Byte() != 0x22 {
		t.Errorf("L2R corruption wrong: %v", right.chars)
	}
	if left.chars[0].Byte() != 0x11 || left.chars[1].Byte() != 0x2D {
		t.Errorf("R2L corruption wrong: %v", left.chars)
	}
}

func TestDeviceFlushReleasesPipelineOnQuietLink(t *testing.T) {
	k := sim.NewKernel(1)
	_, cable, _, right := spliceFixture(t, k)
	cable.LeftToRight.Send(phy.DataChars([]byte{1, 2, 3})) // fewer than slack
	k.Run()
	if len(right.chars) != 3 {
		t.Fatalf("flush did not release pipeline: got %d chars", len(right.chars))
	}
}

func TestDevicePacketStatsCountsPairs(t *testing.T) {
	k := sim.NewKernel(1)
	dev, cable, _, _ := spliceFixture(t, k)
	// A minimal Myrinet data packet: route, type 0x0004, dst/src MACs.
	var dst, src [6]byte
	dst[5], src[5] = 0xBB, 0xAA
	wire := []byte{0x00, 0x00, 0x00, 0x00, 0x04}
	wire = append(wire, dst[:]...)
	wire = append(wire, src[:]...)
	wire = append(wire, 0x77) // crc placeholder; stats don't verify
	chars := phy.DataChars(wire)
	chars = append(chars, phy.ControlChar(0x0C))
	cable.LeftToRight.Send(chars)
	cable.LeftToRight.Send(chars)
	k.Run()
	st := dev.PacketStats(LeftToRight)
	total, control := st.Packets()
	if total != 2 || control != 0 {
		t.Errorf("packets = %d/%d, want 2/0", total, control)
	}
	if got := st.PairCount(src, dst); got != 2 {
		t.Errorf("pair count = %d, want 2", got)
	}
	if rep := st.Report(); len(rep) != 1 {
		t.Errorf("report lines = %d, want 1", len(rep))
	}
}

func TestDeviceInsertTwicePanics(t *testing.T) {
	k := sim.NewKernel(1)
	dev, cable, _, _ := spliceFixture(t, k)
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	dev.Insert(cable)
}

func TestDeviceOrderPreservedAcrossFlush(t *testing.T) {
	k := sim.NewKernel(1)
	_, cable, _, right := spliceFixture(t, k)
	cable.LeftToRight.Send(phy.DataChars([]byte{1, 2, 3}))
	// Let the flush fire, then send more.
	k.RunFor(sim.Microsecond)
	cable.LeftToRight.Send(phy.DataChars([]byte{4, 5}))
	k.Run()
	want := []byte{1, 2, 3, 4, 5}
	if len(right.chars) != len(want) {
		t.Fatalf("received %d chars, want %d", len(right.chars), len(want))
	}
	for i, b := range want {
		if right.chars[i].Byte() != b {
			t.Errorf("char %d = %v, want %d", i, right.chars[i], b)
		}
	}
}
