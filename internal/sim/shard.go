// Conservative-lookahead coordination of multiple kernels.
//
// A ShardGroup advances N kernels in lockstep windows. Each window is
// anchored at the global minimum next-event time T and extends through
// T+lookahead-1: no shard may execute an event at or beyond T+lookahead
// until the next barrier. The lookahead is the minimum latency of any
// cross-shard channel (serialization of one character plus propagation
// delay), so an event executed inside the window can only produce a
// cross-shard delivery at T+lookahead or later — after the barrier at
// which that delivery is exchanged and injected. This is the classic
// Chandy-Misra-Bryant conservative synchronization, with the barrier
// playing the role of null messages.
//
// Determinism: the window schedule depends only on the global set of
// pending events, which is identical regardless of how the model is
// partitioned, so the same simulation sharded 1, 2, or N ways executes
// byte-identically (the fabric equivalence tests pin this down).
package sim

// ShardGroup drives a set of kernels through conservative-lookahead
// windows separated by exchange barriers.
//
// The zero value is not usable; construct with NewShardGroup.
type ShardGroup struct {
	kernels   []*Kernel
	lookahead Duration

	// exchange drains every shard's outbox into its peers' kernels at a
	// barrier. It runs with all shards quiescent and must inject events
	// in a deterministic order; it returns the number of deliveries
	// moved. Set by the fabric layer via SetExchange.
	exchange func() int

	windows   uint64
	exchanged uint64

	// Worker machinery for len(kernels) > 1. Worker i owns kernels[i+1]
	// exclusively between the channel handoffs; kernel 0 runs on the
	// coordinating goroutine so a 1-shard group has zero concurrency.
	cmd  []chan Time
	done chan struct{}
}

// NewShardGroup returns a coordinator over the given kernels. The lookahead
// must be positive: it is the guaranteed minimum virtual-time latency of any
// cross-shard interaction.
func NewShardGroup(kernels []*Kernel, lookahead Duration) *ShardGroup {
	if len(kernels) == 0 {
		panic("sim: ShardGroup needs at least one kernel")
	}
	if lookahead <= 0 {
		panic("sim: ShardGroup lookahead must be positive")
	}
	g := &ShardGroup{kernels: kernels, lookahead: lookahead}
	if n := len(kernels) - 1; n > 0 {
		g.cmd = make([]chan Time, n)
		g.done = make(chan struct{}, n)
		for i := range g.cmd {
			g.cmd[i] = make(chan Time, 1)
			go g.worker(i + 1)
		}
	}
	return g
}

// SetExchange installs the barrier exchange hook. It must be set before Run
// when any cross-shard channels exist.
func (g *ShardGroup) SetExchange(fn func() int) { g.exchange = fn }

// Kernels returns the coordinated kernels, shard-indexed.
func (g *ShardGroup) Kernels() []*Kernel { return g.kernels }

// Windows reports how many lookahead windows have been executed.
func (g *ShardGroup) Windows() uint64 { return g.windows }

// Exchanged reports how many cross-shard deliveries have crossed barriers.
func (g *ShardGroup) Exchanged() uint64 { return g.exchanged }

// Processed sums executed events across all kernels.
func (g *ShardGroup) Processed() uint64 {
	var n uint64
	for _, k := range g.kernels {
		n += k.Processed()
	}
	return n
}

// Pending sums pending events across all kernels.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, k := range g.kernels {
		n += k.Pending()
	}
	return n
}

// Now returns the maximum shard clock; after Run it is the barrier time all
// shards share.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, k := range g.kernels {
		if k.Now() > t {
			t = k.Now()
		}
	}
	return t
}

// worker owns kernels[idx], running it to each commanded horizon. The
// channel receive/send pair gives the coordinator exclusive access to the
// kernel between windows (happens-before in both directions).
func (g *ShardGroup) worker(idx int) {
	k := g.kernels[idx]
	for h := range g.cmd[idx-1] {
		k.RunUntil(h)
		g.done <- struct{}{}
	}
}

// peekMin returns the global minimum next-event time across shards.
func (g *ShardGroup) peekMin() (Time, bool) {
	var minT Time
	found := false
	for _, k := range g.kernels {
		if t, ok := k.PeekNext(); ok && (!found || t < minT) {
			minT, found = t, true
		}
	}
	return minT, found
}

// runWindow advances every shard to horizon h (executing events with
// timestamps <= h), in parallel when the group has more than one shard.
func (g *ShardGroup) runWindow(h Time) {
	for _, c := range g.cmd {
		c <- h
	}
	g.kernels[0].RunUntil(h)
	for range g.cmd {
		<-g.done
	}
	g.windows++
}

// Run executes windows until every shard drains or the global next-event
// time passes limit. It reports whether the group drained (quiesced); when
// false, pending events remain beyond limit. All shard clocks end at the
// same time: the last window's horizon, or limit when the group ran out of
// events before it.
func (g *ShardGroup) Run(limit Time) bool {
	for {
		if g.exchange != nil {
			g.exchanged += uint64(g.exchange())
		}
		t, ok := g.peekMin()
		if !ok {
			// Drained. Align the clocks so observers see one time.
			g.alignClocks(g.Now())
			return true
		}
		if t > limit {
			g.alignClocks(limit)
			return false
		}
		h := t + g.lookahead - 1
		if h > limit {
			h = limit
		}
		g.runWindow(h)
	}
}

// alignClocks advances every shard clock to t without executing events
// (RunUntil on a kernel whose next event is beyond t only moves the clock).
func (g *ShardGroup) alignClocks(t Time) {
	for _, k := range g.kernels {
		if k.Now() < t {
			k.RunUntil(t)
		}
	}
}

// Close shuts down the worker goroutines. The group must not be used after.
func (g *ShardGroup) Close() {
	for _, c := range g.cmd {
		close(c)
	}
}
