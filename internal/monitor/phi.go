// Package monitor is the production monitoring plane layered over the fault
// injection test bed: phi-accrual failure detectors fed by heartbeat and
// traffic observations, NetFlow-style flow records exported from switch
// taps, and a streaming statistics pipeline that flags anomalies (latency
// shifts, loss bursts, wedged outputs) online while a campaign runs. The
// paper's monitoring was a human watching counters; this package is the
// automated operator the ROADMAP's "production monitoring plane" item asks
// for.
//
// Everything here observes; nothing here perturbs. Taps are strictly
// opt-in, batch-granular, and allocation-free in steady state so the
// zero-alloc pass-through guarantees of the datapath survive with
// monitoring armed.
package monitor

import (
	"math"

	"netfi/internal/sim"
)

// PhiConfig parameterizes an accrual failure detector.
type PhiConfig struct {
	// Window is the sliding window of inter-arrival samples. Zero
	// selects 64.
	Window int
	// Threshold is the phi value at or above which the monitored source
	// is suspected. Zero selects 1.0 — suspicion when the estimated
	// probability that the source has failed reaches 90%.
	Threshold float64
	// MinSamples is how many inter-arrival samples must accrue before
	// the detector emits a nonzero phi; below it the detector has no
	// basis for suspicion. Zero selects 3.
	MinSamples int
	// Scale stretches the empirical distribution: an elapsed silence is
	// compared against sample*Scale, tolerating jitter up to the factor.
	// Zero selects 1.5.
	Scale float64
}

func (c *PhiConfig) fillDefaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Threshold == 0 {
		c.Threshold = 1.0
	}
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.Scale == 0 {
		c.Scale = 1.5
	}
}

// PhiDetector is an adaptive accrual failure detector in the phi-accrual
// family (Hayashibara et al.; the adaptive variant follows SNIPPETS §3):
// instead of outputting a boolean alive/failed, it accrues suspicion as a
// continuous function of the silence since the last heartbeat, calibrated
// against the empirical distribution of recent inter-arrival times.
//
//	P_fail(t) = |{ s in window : s*Scale <= t }| / (count + 1)
//	phi(t)    = -log10(1 - P_fail(t))
//
// The +1 smoothing keeps P_fail < 1 (phi finite, bounded by
// log10(count+1)), and the empirical CDF adapts to whatever cadence the
// monitored source actually has — a 2 ms heartbeat and a bursty 10 ms
// workload both calibrate themselves.
//
// The zero value is not usable; construct with NewPhiDetector.
type PhiDetector struct {
	cfg     PhiConfig
	samples []sim.Duration // ring buffer of inter-arrival times
	next    int            // ring write position
	count   int            // filled entries, <= cfg.Window
	last    sim.Time
	seen    bool // at least one heartbeat observed
	beats   uint64
}

// NewPhiDetector returns a detector with no history.
func NewPhiDetector(cfg PhiConfig) *PhiDetector {
	cfg.fillDefaults()
	return &PhiDetector{
		cfg:     cfg,
		samples: make([]sim.Duration, cfg.Window),
	}
}

// Heartbeat records an arrival at time now. The first arrival only anchors
// the clock; subsequent arrivals contribute inter-arrival samples.
func (d *PhiDetector) Heartbeat(now sim.Time) {
	d.beats++
	if d.seen {
		delta := now - d.last
		if delta > 0 {
			d.samples[d.next] = sim.Duration(delta)
			d.next = (d.next + 1) % d.cfg.Window
			if d.count < d.cfg.Window {
				d.count++
			}
		}
	}
	d.seen = true
	d.last = now
}

// Phi returns the accrued suspicion at time now: 0 while the detector lacks
// MinSamples history, rising toward log10(count+1) as silence outlasts the
// observed inter-arrival distribution.
func (d *PhiDetector) Phi(now sim.Time) float64 {
	if d.count < d.cfg.MinSamples || now <= d.last {
		return 0
	}
	elapsed := float64(now - d.last)
	exceeded := 0
	for i := 0; i < d.count; i++ {
		if float64(d.samples[i])*d.cfg.Scale <= elapsed {
			exceeded++
		}
	}
	if exceeded == 0 {
		return 0
	}
	p := float64(exceeded) / float64(d.count+1)
	return -math.Log10(1 - p)
}

// Suspect reports whether phi has reached the configured threshold.
func (d *PhiDetector) Suspect(now sim.Time) bool {
	return d.Phi(now) >= d.cfg.Threshold
}

// Heartbeats reports the total arrivals observed.
func (d *PhiDetector) Heartbeats() uint64 { return d.beats }

// LastHeartbeat reports the most recent arrival time and whether any
// arrival has been observed.
func (d *PhiDetector) LastHeartbeat() (sim.Time, bool) { return d.last, d.seen }

// SampleCount reports how many inter-arrival samples the window holds.
func (d *PhiDetector) SampleCount() int { return d.count }

// Threshold returns the configured suspicion threshold.
func (d *PhiDetector) Threshold() float64 { return d.cfg.Threshold }
