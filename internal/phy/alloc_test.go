package phy

import (
	"testing"

	"netfi/internal/sim"
)

// releasingSink consumes deliveries and returns the buffers to the pool,
// as a pool-aware receiver does.
type releasingSink struct{ chars uint64 }

func (s *releasingSink) Receive(chars []Character) {
	s.chars += uint64(len(chars))
	ReleaseBurst(chars)
}

// Link delivery is the single hottest edge in a campaign: every character of
// every packet crosses at least two links. After the pools warm up, a
// send/deliver cycle must not allocate at all.
func TestLinkDeliveryZeroAlloc(t *testing.T) {
	k := sim.NewKernel(1)
	sink := &releasingSink{}
	link := NewLink(k, LinkConfig{Name: "alloc", CharPeriod: 12_500 * sim.Picosecond, PropDelay: 5 * sim.Nanosecond}, sink)
	burst := make([]Character, 64)
	for i := range burst {
		burst[i] = DataChar(byte(i))
	}
	cycle := func() {
		link.Send(burst)
		link.SendOne(ControlChar(0x0C))
		link.SendPriorityOne(ControlChar(0x09))
		k.Run()
	}
	for i := 0; i < 100; i++ {
		cycle() // warm the burst, delivery, and event pools
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("link delivery cycle allocates %.2f objects/op, want 0", avg)
	}
	if sink.chars == 0 {
		t.Fatal("sink received nothing")
	}
}

func TestBurstPoolRoundTrip(t *testing.T) {
	b := GetBurst(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want the 128 size class", cap(b))
	}
	ReleaseBurst(b)
	b2 := GetBurst(65)
	if cap(b2) != 128 {
		t.Fatalf("cap after recycle = %d, want 128", cap(b2))
	}
	// Foreign and undersized slices are ignored, never pooled.
	ReleaseBurst(make([]Character, 5))
	ReleaseBurst(make([]Character, 0, 100))
	ReleaseBurst(nil)
	if got := GetBurst(0); got != nil {
		t.Errorf("GetBurst(0) = %v, want nil", got)
	}
	// Oversize requests fall through to plain allocation.
	big := GetBurst(1 << 17)
	if len(big) != 1<<17 {
		t.Fatalf("oversize len = %d", len(big))
	}
	ReleaseBurst(big) // ignored: above the largest class
}
