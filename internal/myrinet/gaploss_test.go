package myrinet

import (
	"strings"
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// gapKiller is a wire tap that deletes the first n packet-terminating GAPs
// it sees, reproducing the §4.3.1 "GAP symbol not transmitted or lost in
// transmission" fault at the link level.
type gapKiller struct {
	dst    phy.Receiver
	remain int
	killed int
}

func (g *gapKiller) Receive(chars []phy.Character) {
	out := make([]phy.Character, 0, len(chars))
	for _, c := range chars {
		if g.remain > 0 && !c.IsData() && DecodeControl(c.Byte()) == SymbolGap {
			g.remain--
			g.killed++
			continue
		}
		out = append(out, c)
	}
	if len(out) > 0 {
		g.dst.Receive(out)
	}
}

func TestLostGapMergesPacketsUntilNextGap(t *testing.T) {
	// Two packets with the first GAP deleted arrive as one merged train,
	// resynchronizing at the surviving GAP — "misinterpretation of
	// packet tails and headers". A notable protocol reality this test
	// pins down: the merged train PASSES the Myrinet CRC-8, because a
	// zero-init CRC over [P1, crc(P1), P2] self-cancels across the first
	// packet and ends at crc(P2) — so the link layer cannot detect
	// merges at all. The end-to-end UDP length/checksum is what actually
	// rejects them in the full stack (the campaign's MalformedDrops),
	// which is why the paper's GAP faults stay passive.
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	link := a.ifc.Controller().Out()
	killer := &gapKiller{dst: link.Dst(), remain: 1}
	link.SetDst(killer)

	if err := a.ifc.Send(b.ifc.MAC(), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.ifc.Send(b.ifc.MAC(), []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := a.ifc.Send(b.ifc.MAC(), []byte("third")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if killer.killed != 1 {
		t.Fatalf("killed %d GAPs, want 1", killer.killed)
	}
	if len(b.received) != 2 {
		t.Fatalf("received %d trains, want 2 (merged + third)", len(b.received))
	}
	merged := string(b.received[0])
	if !contains(merged, "first") || !contains(merged, "second") {
		t.Errorf("merged train %q does not contain both packets", merged)
	}
	if got := string(b.received[1]); got != "third" {
		t.Errorf("post-resync packet = %q, want third", got)
	}
}

func TestLostGapAtSwitchHoldsPathUntilNextGap(t *testing.T) {
	// A lost GAP on the host->switch segment leaves the switch's
	// forwarding path held: the next packet's bytes continue down the
	// OLD path even if routed elsewhere, and only its GAP releases the
	// output. Cross-traffic resumes afterwards.
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, false)
	link := hosts[0].ifc.Controller().Out()
	killer := &gapKiller{dst: link.Dst(), remain: 1}
	link.SetDst(killer)

	// Packet 1 to node1 loses its GAP; packet 2 addressed to node2 gets
	// swallowed into the held path toward node1.
	if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := hosts[0].ifc.Send(hosts[2].ifc.MAC(), []byte("two")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(hosts[2].received) != 0 {
		t.Error("packet two escaped the held path")
	}
	// The merged train rides packet one's path into node1. At the
	// Myrinet level it can even pass the CRC-8 (a message followed by
	// its own CRC self-cancels in a zero-init CRC — true of the real
	// hardware too); the merge is caught at the UDP layer in the full
	// stack (length/checksum), which is why the paper's faults stay
	// passive. Here, at the raw interface level, we assert the swallow
	// itself: packet two's bytes are inside whatever node1 saw.
	if len(hosts[1].received) == 1 {
		merged := string(hosts[1].received[0])
		if !contains(merged, "two") {
			t.Errorf("merged train does not contain the swallowed packet: %q", merged)
		}
	}
	// The path released with packet two's GAP: traffic flows again.
	if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := hosts[0].ifc.Send(hosts[2].ifc.MAC(), []byte("after2")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	last := ""
	if n := len(hosts[1].received); n > 0 {
		last = string(hosts[1].received[n-1])
	}
	if last != "after" {
		t.Errorf("node1 did not recover: %q", hosts[1].received)
	}
	if len(hosts[2].received) != 1 || string(hosts[2].received[0]) != "after2" {
		t.Errorf("node2 did not recover: %q", hosts[2].received)
	}
}

func TestSpuriousGapSplitsPacket(t *testing.T) {
	// The reverse fault (STOP->GAP style): a GAP inserted mid-packet
	// splits it into two trains, both of which fail at the receiver.
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	link := a.ifc.Controller().Out()
	orig := link.Dst()
	inserted := false
	link.SetDst(phy.ReceiverFunc(func(chars []phy.Character) {
		if !inserted && len(chars) > 4 {
			chars = append(chars[:4:4], append([]phy.Character{GapChar()}, chars[4:]...)...)
			inserted = true
		}
		orig.Receive(chars)
	}))
	if err := a.ifc.Send(b.ifc.MAC(), []byte("victim of a split")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 0 {
		t.Errorf("split packet delivered: %q", b.received)
	}
	if b.ifc.Counters().TotalDrops() < 1 {
		t.Error("split fragments not counted as drops")
	}
}
