// Quickstart: splice the fault injector into a live Myrinet cable,
// program it over its serial console to replace the 16-bit pattern 0x1818
// with 0x1918 (the paper's §3.3 typical injection scenario), send traffic,
// and read back the injection statistics and capture buffer.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

func main() {
	// A Fig. 10 test bed: three hosts, an 8-port switch, the injector
	// spliced into node 0's cable, everything deterministic under seed 1.
	tb := campaign.NewTestbed(campaign.TestbedConfig{Seed: 1})

	// Program the injector over the simulated RS-232 console. Matching
	// is masked per window position: two don't-cares, then 0x18 0x18.
	tb.Configure(
		"DIR R", // corrupt data flowing toward node 0
		"COMPARE -- -- 18 18",
		"CORRUPT REPLACE -- -- 19 --",
		"CRC ON", // recompute the Myrinet CRC-8 so only the payload is wrong
		"MODE ONCE",
	)
	fmt.Println("injector configured over serial:", tb.Console.Responses())

	// Deliver a datagram containing the victim pattern to node 0.
	var got []byte
	if _, err := tb.Nodes[0].Bind(9001, func(_ myrinet.MAC, _ uint16, data []byte) {
		got = append([]byte(nil), data...)
	}); err != nil {
		panic(err)
	}
	// Enough trailing bytes that the capture ring's post-trigger quota
	// (16 characters) fills before the stream ends.
	payload := append([]byte{0xAA, 0xBB, 0x18, 0x18, 0xCC, 0xDD}, make([]byte, 20)...)
	tb.Nodes[1].SendUDP(tb.Nodes[0].MAC(), 9000, 9001, payload)
	tb.K.RunFor(5 * sim.Millisecond)

	fmt.Printf("sent payload:     %x\n", payload)
	fmt.Printf("received payload: %x\n", got)

	// The injector's own statistics and data-monitoring capture.
	eng := tb.Injector.Engine(campaign.DirInbound)
	chars, matches, injections := eng.Stats()
	fmt.Printf("injector saw %d characters, matched %d windows, injected %d faults\n",
		chars, matches, injections)
	for i, ev := range eng.Capture().Events() {
		fmt.Printf("capture[%d] (pre=%d):", i, ev.PreLen)
		for _, c := range ev.Context {
			fmt.Printf(" %v", c)
		}
		fmt.Println()
	}

	// Note: the UDP checksum catches this corruption — the paper's
	// §4.3.4 point — so the host stack dropped the datagram unless the
	// swap was checksum-neutral. Check the stack counters:
	fmt.Printf("node0 checksum drops: %d\n", tb.Nodes[0].Stats().ChecksumDrops)
	if len(got) == 0 {
		fmt.Println("datagram dropped by the UDP checksum (corruption detected end-to-end)")
	}
}
