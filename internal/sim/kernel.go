// Package sim provides a deterministic discrete-event simulation kernel.
//
// All network, host, and injector models in this repository are driven by a
// single Kernel per simulation. The kernel keeps a virtual clock with
// picosecond resolution (so the 12.5 ns Myrinet character period at 80 MB/s
// is exactly representable), a priority queue of scheduled events, and a
// seeded random source. Two runs with the same seed and the same model code
// produce byte-identical traces: event ties are broken by insertion order,
// and no global mutable state is used.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in picoseconds.
type Duration = Time

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1_000
	Microsecond Duration = 1_000_000
	Millisecond Duration = 1_000_000_000
	Second      Duration = 1_000_000_000_000
)

// Nanoseconds reports t as a floating-point count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.5ns" or "50ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimUnit(float64(t)/float64(Nanosecond), "ns")
	case t < Millisecond:
		return trimUnit(float64(t)/float64(Microsecond), "us")
	case t < Second:
		return trimUnit(float64(t)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(t)/float64(Second), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a trailing dot.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()

	index    int // heap index
	canceled bool
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct{ ev *event }

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now       Time
	queue     eventHeap
	seq       uint64
	rng       *rand.Rand
	processed uint64
	stopped   bool
}

// NewKernel returns a kernel with its clock at zero and a random source
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed reports how many events have been executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending reports how many events are scheduled and not yet executed.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a model bug, and silently reordering time would make
// every downstream result wrong.
func (k *Kernel) At(t Time, fn func()) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return EventID{ev: ev}
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Cancel prevents a scheduled event from running. Canceling an event that
// already ran, or was already canceled, is a no-op.
func (k *Kernel) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.canceled = true
	}
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.canceled {
			continue
		}
		k.now = ev.at
		k.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled after t remain pending.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor executes events for a span d of virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now + d) }

// Stop makes the innermost Run/RunUntil return after the current event.
func (k *Kernel) Stop() { k.stopped = true }

func (k *Kernel) peek() (Time, bool) {
	for len(k.queue) > 0 {
		if k.queue[0].canceled {
			heap.Pop(&k.queue)
			continue
		}
		return k.queue[0].at, true
	}
	return 0, false
}
