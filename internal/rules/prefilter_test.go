package rules

import (
	"math/rand"
	"testing"
)

func pfRule(id int, steps ...Step) Rule {
	return Rule{ID: id, Mode: ModeOn, Action: ActionCapture, Steps: steps}
}

func mustCompile(t *testing.T, rs []Rule, opts Options) *Program {
	t.Helper()
	p, err := Compile(rs, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// Prefix extraction stops at the first gapped step and caps at prefixCap.
func TestPrefixExtraction(t *testing.T) {
	cases := []struct {
		name  string
		steps []Step
		want  int // extracted prefix length
	}{
		{"single", []Step{{Sym: 0x41, Mask: SymbolMask}}, 1},
		{"contiguous pair", []Step{
			{Sym: 0x41, Mask: SymbolMask},
			{Sym: 0x42, Mask: SymbolMask},
		}, 2},
		{"gap cuts the prefix", []Step{
			{Sym: 0x41, Mask: SymbolMask},
			{Sym: 0x42, Mask: SymbolMask},
			{Sym: 0x43, Mask: SymbolMask, Gap: 2},
			{Sym: 0x44, Mask: SymbolMask},
		}, 2},
		{"unbounded gap cuts too", []Step{
			{Sym: 0x41, Mask: SymbolMask},
			{Sym: 0x42, Mask: SymbolMask, Gap: GapUnbounded},
		}, 1},
		{"capped at prefixCap", []Step{
			{Sym: 0x41, Mask: SymbolMask},
			{Sym: 0x42, Mask: SymbolMask},
			{Sym: 0x43, Mask: SymbolMask},
			{Sym: 0x44, Mask: SymbolMask},
			{Sym: 0x45, Mask: SymbolMask},
			{Sym: 0x46, Mask: SymbolMask},
		}, prefixCap},
	}
	for _, tc := range cases {
		r := pfRule(0, tc.steps...)
		if got := len(extractPrefix(&r)); got != tc.want {
			t.Errorf("%s: extracted prefix length %d, want %d", tc.name, got, tc.want)
		}
	}
}

// Identical prefixes collapse, and a shorter prefix subsumes every longer
// prefix it leads: completions of the longer are completions of the shorter
// at the same position, so only the shorter needs positions.
func TestPrefixDedupeAndSubsumption(t *testing.T) {
	rs := []Rule{
		pfRule(0, Step{Sym: 0x41, Mask: SymbolMask}, Step{Sym: 0x42, Mask: SymbolMask}),
		pfRule(1, Step{Sym: 0x41, Mask: SymbolMask}, Step{Sym: 0x42, Mask: SymbolMask}), // duplicate
		pfRule(2, Step{Sym: 0x41, Mask: SymbolMask}, Step{Sym: 0x42, Mask: SymbolMask},
			Step{Sym: 0x43, Mask: SymbolMask}, Step{Sym: 0x44, Mask: SymbolMask}), // subsumed by rule 0
		pfRule(3, Step{Sym: 0x50, Mask: SymbolMask}, Step{Sym: 0x51, Mask: SymbolMask}), // distinct
	}
	pf := mustCompile(t, rs, Options{Prefilter: PrefilterShiftAnd}).Prefilter()
	if pf == nil {
		t.Fatal("forced shift-and prefilter missing")
	}
	st := pf.Stats()
	if st.Prefixes != 2 {
		t.Fatalf("deduplicated prefixes = %d, want 2 (stats %+v)", st.Prefixes, st)
	}
	if st.MaxLen != 2 {
		t.Fatalf("MaxLen = %d, want 2 after subsumption (stats %+v)", st.MaxLen, st)
	}
	// Same-symbol different-mask first steps are distinct classes, not dupes.
	rs2 := []Rule{
		pfRule(0, Step{Sym: 0x41, Mask: SymbolMask}, Step{Sym: 0x42, Mask: SymbolMask}),
		pfRule(1, Step{Sym: 0x41, Mask: 0x0FF}, Step{Sym: 0x42, Mask: SymbolMask}),
	}
	pf2 := mustCompile(t, rs2, Options{Prefilter: PrefilterShiftAnd}).Prefilter()
	if got := pf2.Stats().Prefixes; got != 2 {
		t.Fatalf("distinct masked classes collapsed: prefixes = %d, want 2", got)
	}
	// Sym bits outside the mask are normalized away before comparing.
	rs3 := []Rule{
		pfRule(0, Step{Sym: 0x141, Mask: 0x0FF}, Step{Sym: 0x42, Mask: SymbolMask}),
		pfRule(1, Step{Sym: 0x041, Mask: 0x0FF}, Step{Sym: 0x42, Mask: SymbolMask}),
	}
	pf3 := mustCompile(t, rs3, Options{Prefilter: PrefilterShiftAnd}).Prefilter()
	if got := pf3.Stats().Prefixes; got != 1 {
		t.Fatalf("mask-equivalent classes not collapsed: prefixes = %d, want 1", got)
	}
}

// The auto heuristic declines a screen when it cannot help: single-symbol
// prefixes (the quiet set already covers them) or starter classes covering
// most of the symbol space; forcing an engine still compiles a correct one.
func TestPrefilterAutoDeclines(t *testing.T) {
	wildcard := []Rule{pfRule(0,
		Step{Sym: 0, Mask: 0}, // matches every symbol: no usable literal prefix
		Step{Sym: 0x42, Mask: SymbolMask})}
	if pf := mustCompile(t, wildcard, Options{}).Prefilter(); pf != nil {
		t.Fatalf("auto compiled a screen for a wildcard-first rule: %+v", pf.Stats())
	}
	short := []Rule{pfRule(0, Step{Sym: 0x41, Mask: SymbolMask})}
	if pf := mustCompile(t, short, Options{}).Prefilter(); pf != nil {
		t.Fatalf("auto compiled a screen for a one-symbol rule: %+v", pf.Stats())
	}
	useful := []Rule{pfRule(0,
		Step{Sym: 0x41, Mask: SymbolMask},
		Step{Sym: 0x42, Mask: SymbolMask})}
	if pf := mustCompile(t, useful, Options{}).Prefilter(); pf == nil {
		t.Fatal("auto declined a two-symbol literal prefix")
	}
	// Forced engines compile even for the useless shapes and stay correct
	// (the differential suites cover behavior; here just existence).
	for _, mode := range []PrefilterMode{PrefilterShiftAnd, PrefilterReduced} {
		if pf := mustCompile(t, wildcard, Options{Prefilter: mode}).Prefilter(); pf == nil {
			t.Fatalf("forced mode %d declined to compile", mode)
		}
	}
}

// The starter set must contain every symbol that satisfies some rule's first
// step — the injector's wake table treats non-starters as skippable.
func TestPrefilterStarterCoversFirstSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	buf := make([]byte, 64)
	for caseN := 0; caseN < 300; caseN++ {
		rng.Read(buf)
		c := &byteCursor{data: buf}
		rs := buildFuzzRules(c)
		p, err := Compile(rs, Options{Prefilter: PrefilterShiftAnd})
		if err != nil {
			continue
		}
		pf := p.Prefilter()
		for s := 0; s < SymbolSpace; s++ {
			if pf.Starter(uint16(s)) {
				continue
			}
			for i := range rs {
				first := rs[i].Steps[0]
				if (uint16(s)^first.Sym)&first.Mask&SymbolMask == 0 {
					t.Fatalf("case %d: symbol %#03x not a starter but satisfies rule %d's first step", caseN, s, i)
				}
			}
		}
	}
}

// The reduced engine's truncation ladder: a budget too small for the full
// prefix automaton shortens prefixes until it fits, keeping MaxLen and the
// executing tables consistent; the screen stays false-positive-only either
// way (behavioral agreement is the differential suites' job).
func TestPrefilterReducedBudgetLadder(t *testing.T) {
	rs := []Rule{pfRule(0,
		Step{Sym: 0x41, Mask: SymbolMask},
		Step{Sym: 0x42, Mask: SymbolMask},
		Step{Sym: 0x43, Mask: SymbolMask},
		Step{Sym: 0x44, Mask: SymbolMask})}
	full := mustCompile(t, rs, Options{Prefilter: PrefilterReduced}).Prefilter()
	if full.Stats().Engine != "reduced-dfa" || full.MaxLen() != 4 {
		t.Fatalf("default budget: stats %+v, want reduced-dfa with MaxLen 4", full.Stats())
	}
	cut := mustCompile(t, rs, Options{Prefilter: PrefilterReduced, PrefilterBudget: 3}).Prefilter()
	st := cut.Stats()
	if st.Engine != "reduced-dfa" {
		t.Fatalf("budget 3: engine %q, want reduced-dfa via truncation", st.Engine)
	}
	if st.States > 3 {
		t.Fatalf("budget 3: %d states", st.States)
	}
	if cut.MaxLen() >= 4 || cut.MaxLen() < 1 {
		t.Fatalf("budget 3: MaxLen %d, want truncated below 4", cut.MaxLen())
	}
}

// ScanClean's three verdict shapes: a hit rewinds by MaxLen-1, a partial at
// the buffer end is held back, dead partials are cleaned through.
func TestScanCleanSplits(t *testing.T) {
	rs := []Rule{pfRule(0,
		Step{Sym: 0x41, Mask: SymbolMask},
		Step{Sym: 0x42, Mask: SymbolMask})}
	for _, mode := range []PrefilterMode{PrefilterShiftAnd, PrefilterReduced} {
		pf := mustCompile(t, rs, Options{Prefilter: mode}).Prefilter()
		cases := []struct {
			name        string
			syms        []uint16
			clean, hold int
		}{
			{"all quiet", []uint16{1, 2, 3, 4}, 4, 0},
			{"hit mid-run", []uint16{1, 2, 0x41, 0x42, 7}, 2, 2},
			{"hit at start", []uint16{0x41, 0x42, 7}, 0, 2},
			{"partial at end", []uint16{1, 2, 0x41}, 2, 1},
			{"dead partial cleaned", []uint16{1, 0x41, 9, 2}, 4, 0},
			// The first 0x41's partial died when the second arrived; the hit
			// rewind only needs MaxLen symbols, so position 0 stays clean.
			{"restart inside partial", []uint16{0x41, 0x41, 0x42}, 1, 2},
		}
		for _, tc := range cases {
			clean, hold := pf.ScanClean(tc.syms)
			if clean != tc.clean || hold != tc.hold {
				t.Errorf("mode %d %s: ScanClean = (%d,%d), want (%d,%d)",
					mode, tc.name, clean, hold, tc.clean, tc.hold)
			}
		}
	}
}

// A prefix straddling a StepBatch call boundary must still fire: the clean
// split holds back live partials at the buffer end.
func TestStepBatchPrefixAcrossChunks(t *testing.T) {
	rs := []Rule{pfRule(0,
		Step{Sym: 0x41, Mask: SymbolMask},
		Step{Sym: 0x42, Mask: SymbolMask},
		Step{Sym: 0x43, Mask: SymbolMask})}
	for _, mode := range []PrefilterMode{PrefilterShiftAnd, PrefilterReduced} {
		p := mustCompile(t, rs, Options{Prefilter: mode})
		for cut := 1; cut < 3; cut++ {
			e := NewExecutor(p)
			stream := []uint16{7, 7, 0x41, 0x42, 0x43, 7}
			boundary := 2 + cut // split inside the prefix
			var fired uint64
			fired |= e.StepBatch(stream[:boundary])
			fired |= e.StepBatch(stream[boundary:])
			if fired != 1 {
				t.Fatalf("mode %d cut %d: fired %#x, want rule 0", mode, cut, fired)
			}
			if m, _ := e.Counters(0); m != 1 {
				t.Fatalf("mode %d cut %d: matches %d, want 1", mode, cut, m)
			}
		}
	}
}
