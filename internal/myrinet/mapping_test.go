package myrinet

import (
	"bytes"
	"testing"

	"netfi/internal/sim"
)

func TestMappingDiscoversThreeNodes(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(50 * sim.Millisecond) // one round completes within 2 ms
	mapper := hosts[2].ifc.MCP()
	if !mapper.IsMapper() {
		t.Fatal("host C (highest ID) is not the mapper")
	}
	snap := mapper.LastSnapshot()
	if snap == nil {
		t.Fatal("no snapshot after mapping round")
	}
	if snap.NodeCount() != 3 {
		t.Fatalf("map has %d nodes, want 3: %+v", snap.NodeCount(), snap.Entries)
	}
	if snap.Inconsistent {
		t.Error("healthy network produced an inconsistent map")
	}
	for _, h := range hosts {
		if !snap.Has(h.ifc.MAC()) {
			t.Errorf("map missing %v", h.ifc.MAC())
		}
	}
}

func TestMappingDistributesWorkingRoutes(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(50 * sim.Millisecond)
	// Every host must now reach every other using mapped routes only.
	for i, from := range hosts {
		for j, to := range hosts {
			if i == j {
				continue
			}
			if err := from.ifc.Send(to.ifc.MAC(), []byte{byte(i), byte(j)}); err != nil {
				t.Fatalf("%s -> %s: %v", from.ifc.Name(), to.ifc.Name(), err)
			}
		}
	}
	k.RunFor(10 * sim.Millisecond)
	for j, to := range hosts {
		if len(to.received) != 2 {
			t.Errorf("host %d received %d messages, want 2", j, len(to.received))
		}
	}
}

func TestMappingPeriodicRounds(t *testing.T) {
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, true) // MapPeriod = 100 ms
	k.RunUntil(450 * sim.Millisecond)
	total, failed := hosts[2].ifc.MCP().Rounds()
	if total < 4 || total > 6 {
		t.Errorf("rounds in 450 ms = %d, want ~4-5", total)
	}
	if failed != 0 {
		t.Errorf("failed rounds = %d, want 0", failed)
	}
}

func TestMappingNodeRemovalOnSilence(t *testing.T) {
	// Detach host A mid-run: the next mapping round must drop it from
	// the map and from the other nodes' routing tables.
	k := sim.NewKernel(1)
	n, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(50 * sim.Millisecond)
	if _, ok := hosts[1].ifc.Route(hosts[0].ifc.MAC()); !ok {
		t.Fatal("B has no route to A after first round")
	}
	// Sever A's cable (both directions discard).
	cable := n.Cables["A"]
	cable.LeftToRight.SetDst(nullReceiver{})
	cable.RightToLeft.SetDst(nullReceiver{})
	k.RunUntil(250 * sim.Millisecond) // two more rounds
	snap := hosts[2].ifc.MCP().LastSnapshot()
	if snap.Has(hosts[0].ifc.MAC()) {
		t.Error("map still contains detached node A")
	}
	if _, ok := hosts[1].ifc.Route(hosts[0].ifc.MAC()); ok {
		t.Error("B still has a route to detached node A")
	}
	// Send attempts now fail with no-route.
	if err := hosts[1].ifc.Send(hosts[0].ifc.MAC(), []byte("x")); err == nil {
		t.Error("send to removed node succeeded")
	}
}

func TestMappingWatchdogPromotesNextMapper(t *testing.T) {
	// Kill the mapper (host C): after the watchdog period, another node
	// must take over mapping.
	k := sim.NewKernel(1)
	n, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(50 * sim.Millisecond)
	cable := n.Cables["C"]
	cable.LeftToRight.SetDst(nullReceiver{})
	cable.RightToLeft.SetDst(nullReceiver{})
	// Watchdog factor 2.5 * 100 ms = 250 ms; allow a few rounds after.
	k.RunUntil(600 * sim.Millisecond)
	if !hosts[0].ifc.MCP().IsMapper() && !hosts[1].ifc.MCP().IsMapper() {
		t.Fatal("no surviving node promoted itself to mapper")
	}
	// The new mapper should have produced a 2-node map.
	var snap *Snapshot
	for _, h := range hosts[:2] {
		if s := h.ifc.MCP().LastSnapshot(); s != nil {
			snap = s
		}
	}
	if snap == nil {
		t.Fatal("no snapshot from the new mapper")
	}
	if snap.NodeCount() != 2 {
		t.Errorf("new map has %d nodes, want 2", snap.NodeCount())
	}
}

func TestMappingHigherIDTakesOver(t *testing.T) {
	// Start with the LOWEST id as initial mapper; once its table reaches
	// the higher-ID nodes, the highest must take over (§4.1).
	k := sim.NewKernel(1)
	n := NewNetwork(k)
	sw := n.AddSwitch("sw0", 8)
	hosts := make([]*testHost, 3)
	for i := range hosts {
		hosts[i] = newTestHost(k, string(rune('A'+i)), byte(i+1), NodeID(i+1), MappingConfig{
			Enabled:       true,
			InitialMapper: i == 0, // wrong node starts as mapper
			MapPeriod:     100 * sim.Millisecond,
			ScoutTimeout:  sim.Millisecond,
		})
		n.ConnectHost(hosts[i].ifc, sw, i)
	}
	k.RunUntil(500 * sim.Millisecond)
	if hosts[0].ifc.MCP().IsMapper() {
		t.Error("low-ID node still mapper after takeover window")
	}
	if !hosts[2].ifc.MCP().IsMapper() {
		t.Error("highest-ID node did not take over mapping")
	}
}

func TestMappingTwoSwitchDiscovery(t *testing.T) {
	// Mapper on sw0 must find a host behind sw1 with depth-2 probing and
	// distribute working routes in both directions.
	k := sim.NewKernel(1)
	n := NewNetwork(k)
	sw0 := n.AddSwitch("sw0", 4)
	sw1 := n.AddSwitch("sw1", 4)
	mcfg := func(initial bool) MappingConfig {
		return MappingConfig{
			Enabled:       true,
			InitialMapper: initial,
			MapPeriod:     100 * sim.Millisecond,
			ScoutTimeout:  sim.Millisecond,
			ProbeDepth:    2,
			ProbeFanout:   4,
		}
	}
	a := newTestHost(k, "A", 1, 1, mcfg(false))
	b := newTestHost(k, "B", 2, 9, mcfg(true)) // mapper, on sw0
	n.ConnectHost(b.ifc, sw0, 0)
	n.ConnectHost(a.ifc, sw1, 1)
	n.ConnectSwitches(sw0, 3, sw1, 2)
	k.RunUntil(80 * sim.Millisecond)
	snap := b.ifc.MCP().LastSnapshot()
	if snap == nil || !snap.Has(a.ifc.MAC()) {
		t.Fatalf("mapper did not discover host behind second switch: %+v", snap)
	}
	// Routes must work both ways.
	if err := b.ifc.Send(a.ifc.MAC(), []byte("down")); err != nil {
		t.Fatalf("mapper -> far host: %v", err)
	}
	if err := a.ifc.Send(b.ifc.MAC(), []byte("up")); err != nil {
		t.Fatalf("far host -> mapper: %v", err)
	}
	k.RunFor(10 * sim.Millisecond)
	if len(a.received) != 1 || string(a.received[0]) != "down" {
		t.Errorf("far host received %v", a.received)
	}
	if len(b.received) != 1 || string(b.received[0]) != "up" {
		t.Errorf("mapper received %v", b.received)
	}
}

func TestMappingDuplicateControllerAddressCorruptsMap(t *testing.T) {
	// §4.3.3 / Fig. 11: when a scout reply claims the controller's own
	// identity, the mapper cannot build a consistent map, and successive
	// attempts fail differently.
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, true)
	// Intercept host A's scout replies by rewriting its identity to the
	// mapper's at the packet-observer level is not possible (observer is
	// read-only), so emulate the in-flight corruption: give A the
	// mapper's MAC before the first round.
	hosts[0].ifc.cfg.MAC = hosts[2].ifc.MAC()
	sizes := map[int]bool{}
	for round := 0; round < 6; round++ {
		k.RunUntil(sim.Time(50+100*round) * sim.Millisecond)
		snap := hosts[2].ifc.MCP().LastSnapshot()
		if snap == nil {
			continue
		}
		if !snap.Inconsistent {
			t.Fatalf("round %d: duplicate controller identity produced a consistent map", round)
		}
		sizes[snap.NodeCount()] = true
	}
	_, failed := hosts[2].ifc.MCP().Rounds()
	if failed == 0 {
		t.Fatal("no failed rounds recorded")
	}
	if len(sizes) < 2 {
		t.Errorf("faulty map was static across rounds (sizes %v); paper reports it varies", sizes)
	}
}

func TestScoutReplyEncodingRoundTrip(t *testing.T) {
	// The appended in-ports must come back reversed as the reply route.
	k := sim.NewKernel(1)
	_, hosts, _ := threeNodeNet(t, k, true)
	k.RunUntil(5 * sim.Millisecond)
	// After one round, the mapper's own entry has empty in-ports and the
	// others have exactly one (the mapper's attach port, 2).
	snap := hosts[2].ifc.MCP().LastSnapshot()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	for _, e := range snap.Entries[1:] {
		if !bytes.Equal(e.InPorts, []byte{2}) {
			t.Errorf("entry %v in-ports = %v, want [2]", e.MAC, e.InPorts)
		}
	}
}
