package core

import (
	"testing"

	"netfi/internal/phy"
)

func TestCaptureRingRecordsContext(t *testing.T) {
	r := NewCaptureRing(4, 3)
	for i := byte(0); i < 10; i++ {
		r.Observe(phy.DataChar(i))
	}
	r.MarkInjection()
	for i := byte(10); i < 20; i++ {
		r.Observe(phy.DataChar(i))
	}
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.PreLen != 4 {
		t.Errorf("PreLen = %d, want 4", ev.PreLen)
	}
	want := []byte{6, 7, 8, 9, 10, 11, 12}
	if len(ev.Context) != len(want) {
		t.Fatalf("context length = %d, want %d", len(ev.Context), len(want))
	}
	for i, b := range want {
		if ev.Context[i].Byte() != b {
			t.Errorf("context[%d] = %v, want %d", i, ev.Context[i], b)
		}
	}
}

func TestCaptureRingPartialPreBuffer(t *testing.T) {
	r := NewCaptureRing(8, 2)
	r.Observe(phy.DataChar(1))
	r.Observe(phy.DataChar(2))
	r.MarkInjection()
	r.Observe(phy.DataChar(3))
	r.Observe(phy.DataChar(4))
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if events[0].PreLen != 2 {
		t.Errorf("PreLen = %d, want 2 (only two chars seen)", events[0].PreLen)
	}
}

func TestCaptureRingNoRetriggerWhileActive(t *testing.T) {
	r := NewCaptureRing(2, 4)
	for i := byte(0); i < 4; i++ {
		r.Observe(phy.DataChar(i))
	}
	r.MarkInjection()
	r.Observe(phy.DataChar(10))
	r.MarkInjection() // during active capture: ignored
	for i := byte(11); i < 15; i++ {
		r.Observe(phy.DataChar(i))
	}
	if got := len(r.Events()); got != 1 {
		t.Errorf("events = %d, want 1 (no retrigger while dumping)", got)
	}
}

func TestCaptureRingMultipleSequentialEvents(t *testing.T) {
	r := NewCaptureRing(2, 2)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			r.Observe(phy.DataChar(byte(i)))
		}
	}
	feed(5)
	r.MarkInjection()
	feed(5)
	r.MarkInjection()
	feed(5)
	if got := len(r.Events()); got != 2 {
		t.Errorf("events = %d, want 2", got)
	}
}

func TestCaptureRingReset(t *testing.T) {
	r := NewCaptureRing(2, 2)
	r.Observe(phy.DataChar(1))
	r.MarkInjection()
	r.Observe(phy.DataChar(2))
	r.Observe(phy.DataChar(3))
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("events survive Reset")
	}
}

func TestCaptureGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capture geometry did not panic")
		}
	}()
	NewCaptureRing(0, 1)
}
