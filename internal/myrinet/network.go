package myrinet

import (
	"fmt"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Attachable is anything that terminates a full-duplex Myrinet cable: host
// interfaces and switch ports (via portAttacher).
type Attachable interface {
	// AttachLink wires the device to transmit on out and returns the
	// receiver for the arriving direction.
	AttachLink(out *phy.Link) phy.Receiver
}

// portAttacher adapts one switch port to the Attachable interface.
type portAttacher struct {
	sw   *Switch
	port int
}

// AttachLink implements Attachable.
func (pa portAttacher) AttachLink(out *phy.Link) phy.Receiver {
	return pa.sw.AttachLink(pa.port, out)
}

// Port returns an Attachable for port p of sw.
func Port(sw *Switch, p int) Attachable { return portAttacher{sw: sw, port: p} }

// DefaultLinkConfig returns the paper's link timing: 80 MB/s per direction
// (12.5 ns character period) and a one-meter cable (~5 ns propagation).
func DefaultLinkConfig(name string) phy.LinkConfig {
	return phy.LinkConfig{
		Name:       name,
		CharPeriod: CharPeriod,
		PropDelay:  5 * sim.Nanosecond,
	}
}

// nullReceiver discards characters; used as a placeholder while wiring.
type nullReceiver struct{}

func (nullReceiver) Receive(chars []phy.Character) { phy.ReleaseBurst(chars) }

// Connect builds a full-duplex cable between a and b and wires both ends.
// It returns the cable so the fault injector can later be spliced into it.
func Connect(k *sim.Kernel, cfg phy.LinkConfig, a, b Attachable) *phy.Cable {
	aToB := cfg
	aToB.Name = cfg.Name + ":a2b"
	bToA := cfg
	bToA.Name = cfg.Name + ":b2a"
	linkAB := phy.NewLink(k, aToB, nullReceiver{})
	linkBA := phy.NewLink(k, bToA, nullReceiver{})
	recvA := a.AttachLink(linkAB) // a transmits on linkAB
	recvB := b.AttachLink(linkBA) // b transmits on linkBA
	linkAB.SetDst(recvB)
	linkBA.SetDst(recvA)
	return &phy.Cable{LeftToRight: linkAB, RightToLeft: linkBA}
}

// ConnectCross builds a full-duplex cable between endpoints that may live on
// different kernels: each direction's link is constructed on the *sender's*
// kernel (a link reads its own clock when serializing), while delivery to
// the far side is the fabric layer's problem — it installs a DeliverySink on
// both links so bursts cross shards through barrier exchange instead of
// direct scheduling. With ka == kb and no sinks installed this is exactly
// Connect.
func ConnectCross(ka, kb *sim.Kernel, cfg phy.LinkConfig, a, b Attachable) *phy.Cable {
	aToB := cfg
	aToB.Name = cfg.Name + ":a2b"
	bToA := cfg
	bToA.Name = cfg.Name + ":b2a"
	linkAB := phy.NewLink(ka, aToB, nullReceiver{})
	linkBA := phy.NewLink(kb, bToA, nullReceiver{})
	recvA := a.AttachLink(linkAB) // a transmits on linkAB
	recvB := b.AttachLink(linkBA) // b transmits on linkBA
	linkAB.SetDst(recvB)
	linkBA.SetDst(recvA)
	return &phy.Cable{LeftToRight: linkAB, RightToLeft: linkBA}
}

// Network is a convenience container for a simulated Myrinet: the kernel,
// switches, interfaces, and the cables between them.
type Network struct {
	Kernel     *sim.Kernel
	Switches   []*Switch
	Interfaces []*Interface
	Cables     map[string]*phy.Cable
}

// NewNetwork returns an empty network on the given kernel.
func NewNetwork(k *sim.Kernel) *Network {
	return &Network{Kernel: k, Cables: make(map[string]*phy.Cable)}
}

// AddSwitch creates and registers a switch.
func (n *Network) AddSwitch(name string, ports int) *Switch {
	sw := NewSwitch(n.Kernel, name, ports)
	n.Switches = append(n.Switches, sw)
	return sw
}

// AddInterface creates and registers a host interface.
func (n *Network) AddInterface(cfg InterfaceConfig) *Interface {
	ifc := NewInterface(n.Kernel, cfg)
	n.Interfaces = append(n.Interfaces, ifc)
	return ifc
}

// ConnectHost cables a host interface to a switch port and records the
// cable under the interface's name.
func (n *Network) ConnectHost(ifc *Interface, sw *Switch, port int) *phy.Cable {
	cable := Connect(n.Kernel, DefaultLinkConfig(fmt.Sprintf("%s<->%s.p%d", ifc.Name(), sw.Name(), port)), ifc, Port(sw, port))
	n.Cables[ifc.Name()] = cable
	return cable
}

// ConnectSwitches cables two switch ports together.
func (n *Network) ConnectSwitches(a *Switch, pa int, b *Switch, pb int) *phy.Cable {
	name := fmt.Sprintf("%s.p%d<->%s.p%d", a.Name(), pa, b.Name(), pb)
	cable := Connect(n.Kernel, DefaultLinkConfig(name), Port(a, pa), Port(b, pb))
	n.Cables[name] = cable
	return cable
}

// InterfaceByMAC finds a registered interface by address.
func (n *Network) InterfaceByMAC(mac MAC) (*Interface, bool) {
	for _, ifc := range n.Interfaces {
		if ifc.MAC() == mac {
			return ifc, true
		}
	}
	return nil, false
}

// InstallStaticRoutes gives every interface a route to every other assuming
// all are on a single switch, bypassing the mapping protocol. Tests that do
// not exercise mapping use this; ports maps each interface to its switch
// port.
func (n *Network) InstallStaticRoutes(ports map[*Interface]int) {
	for a, _ := range ports {
		for b, pb := range ports {
			if a == b {
				continue
			}
			a.SetRoute(b.MAC(), RouteTo(pb))
		}
	}
}
