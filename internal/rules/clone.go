package rules

// Clone copies the executor's run state — automaton position, counters,
// once latches — sharing the compiled Program, which is immutable after
// Compile. The program's prefilter travels with it: the screen's tables are
// compile-time constants and its scan state is a per-StepBatch stack value
// (Scanner), never live across calls, so a fork needs no prefilter run state
// beyond the automaton position already copied here. Forked campaigns use
// this to duplicate a warmed injector without recompiling.
func (e *Executor) Clone() *Executor {
	e2 := &Executor{}
	*e2 = *e // p (shared), dfa, symbols, onceFired, quiet (value array)
	if e.lanes != nil {
		e2.lanes = append([]uint64(nil), e.lanes...)
	}
	e2.matches = append([]uint64(nil), e.matches...)
	e2.fires = append([]uint64(nil), e.fires...)
	return e2
}
