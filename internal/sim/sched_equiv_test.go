package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// The wheel+pool scheduler must fire events in exactly the order a plain
// priority queue would: (time, insertion sequence). These tests pin that by
// running randomized event programs — nested scheduling, cancels, stale
// cancels, delays straddling every wheel level and the heap fallback —
// against a brute-force reference scheduler and comparing full fire traces.

// refSched is the reference: an unordered list scanned for the minimum
// (at, seq) on every step. Too slow for simulations, trivially correct.
type refSched struct {
	now Time
	seq int
	evs []*refEvent
}

type refEvent struct {
	at       Time
	seq      int
	fn       func()
	canceled bool
	fired    bool
}

func (r *refSched) Now() Time { return r.now }

func (r *refSched) After(d Duration, fn func()) func() {
	ev := &refEvent{at: r.now + d, seq: r.seq, fn: fn}
	r.seq++
	r.evs = append(r.evs, ev)
	return func() { ev.canceled = true }
}

func (r *refSched) Step() bool {
	var best *refEvent
	bi := -1
	for i, ev := range r.evs {
		if ev.canceled || ev.fired {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best, bi = ev, i
		}
	}
	if best == nil {
		return false
	}
	r.evs[bi].fired = true
	r.now = best.at
	best.fn()
	return true
}

// testSched is the surface a program drives; both schedulers implement it.
// After returns a cancel thunk so programs can cancel by index, including
// after the event fired (the stale-EventID case for the pooled kernel).
type testSched interface {
	Now() Time
	After(d Duration, fn func()) func()
	Step() bool
}

type kernelSched struct{ k *Kernel }

func (s kernelSched) Now() Time  { return s.k.Now() }
func (s kernelSched) Step() bool { return s.k.Step() }
func (s kernelSched) After(d Duration, fn func()) func() {
	id := s.k.After(d, fn)
	return func() { s.k.Cancel(id) }
}

// traceEntry records one fired event.
type traceEntry struct {
	At  Time
	Tag int
}

// randomDelay spans every placement class: same tick, level 0/1/2 of the
// wheel, and past the ~17 ms horizon into the heap.
func randomDelay(rng *rand.Rand) Duration {
	switch rng.Intn(6) {
	case 0:
		return Duration(rng.Int63n(int64(16 * Nanosecond))) // same tick
	case 1:
		return Duration(rng.Int63n(int64(4 * Microsecond))) // level 0
	case 2:
		return Duration(rng.Int63n(int64(270 * Microsecond))) // level 1
	case 3:
		return Duration(rng.Int63n(int64(17 * Millisecond))) // level 2
	case 4:
		return 17*Millisecond + Duration(rng.Int63n(int64(100*Millisecond))) // heap
	default:
		return Duration(rng.Int63n(int64(40 * Millisecond))) // boundary mix
	}
}

// runProgram executes one randomized event program and returns its trace.
// All random choices come from a fresh rng with the given seed, drawn in
// fire order — so two schedulers produce the same trace iff they fire events
// in the same order.
func runProgram(s testSched, seed int64) []traceEntry {
	rng := rand.New(rand.NewSource(seed))
	var trace []traceEntry
	var cancels []func()
	budget := 400 // total events scheduled, bounding the program

	var spawn func(tag int) func()
	spawn = func(tag int) func() {
		return func() {
			trace = append(trace, traceEntry{s.Now(), tag})
			for n := rng.Intn(3); n > 0 && budget > 0; n-- {
				budget--
				cancels = append(cancels, s.After(randomDelay(rng), spawn(budget)))
			}
			if len(cancels) > 0 && rng.Intn(4) == 0 {
				// Cancel a random registered event — live, already
				// canceled, or already fired; all must be safe.
				cancels[rng.Intn(len(cancels))]()
			}
		}
	}
	for i := 0; i < 20; i++ {
		budget--
		cancels = append(cancels, s.After(randomDelay(rng), spawn(budget)))
	}
	for s.Step() {
	}
	return trace
}

func TestSchedulerEquivalenceRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		got := runProgram(kernelSched{NewKernel(1)}, seed)
		want := runProgram(&refSched{}, seed)
		if len(got) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("seed %d: traces diverge at event %d: kernel %+v, reference %+v",
						seed, i, got[i:min(i+3, len(got))], want[i:min(i+3, len(want))])
				}
			}
			t.Fatalf("seed %d: kernel trace has %d extra events", seed, len(got)-len(want))
		}
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	idA := k.At(10, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// A's struct is back on the free list. A stale cancel must not touch
	// whatever reuses it.
	idB := k.After(5, func() { fired++ })
	k.Cancel(idA) // stale: generation mismatch
	k.Cancel(idA) // idempotent
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after stale cancels, want 1", k.Pending())
	}
	k.Run()
	if fired != 2 {
		t.Errorf("B did not fire after stale cancel of A (fired = %d)", fired)
	}
	k.Cancel(idB) // cancel-after-fire of the reused struct: also a no-op
	if k.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", k.Pending())
	}
}

func TestKernelSameTickInsertionOrderTies(t *testing.T) {
	// Distinct times within one 2^14 ps wheel tick share a slot; exactly
	// equal times must still break ties by insertion order.
	k := NewKernel(1)
	var order []int
	base := Time(1 << 20)
	k.At(base+3, func() { order = append(order, 0) })
	k.At(base+1, func() { order = append(order, 1) })
	k.At(base+1, func() { order = append(order, 2) })
	k.At(base+2, func() { order = append(order, 3) })
	k.At(base+1, func() { order = append(order, 4) })
	k.Run()
	want := []int{1, 2, 4, 3, 0}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("fire order = %v, want %v", order, want)
	}
}

func TestKernelScheduleAtNowFromCallback(t *testing.T) {
	// An event scheduled at the current instant from inside a callback
	// lands behind the wheel's harvest cursor and must still fire, after
	// every earlier-scheduled event at the same time.
	k := NewKernel(1)
	var order []int
	k.At(100, func() {
		order = append(order, 1)
		k.After(0, func() { order = append(order, 3) })
	})
	k.At(100, func() { order = append(order, 2) })
	k.Run()
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("fire order = %v, want %v", order, want)
	}
}

func TestTimerRescheduleAcrossWheelHeapBoundary(t *testing.T) {
	// A timer re-armed with periods on both sides of the ~17 ms wheel
	// horizon must fire at exactly Reset time + period each time.
	k := NewKernel(1)
	var fires []Time
	var arm func()
	tm := NewTimer(k, 50*Millisecond, func() { arm() })
	// Self-re-arming across the boundary: long, short, long, short.
	periods := []Duration{50 * Millisecond, 100 * Nanosecond, 30 * Millisecond, 2 * Microsecond}
	i := 0
	var want []Time
	arm = func() {
		fires = append(fires, k.Now())
		if i == len(periods) {
			return
		}
		tm.SetPeriod(periods[i])
		want = append(want, k.Now()+periods[i])
		i++
		tm.Reset()
	}
	arm()
	k.Run()
	if len(fires) != len(periods)+1 {
		t.Fatalf("timer fired %d times, want %d", len(fires)-1, len(periods))
	}
	if !reflect.DeepEqual(fires[1:], want) {
		t.Errorf("fire times = %v, want %v", fires[1:], want)
	}
	if tm.Fires() != uint64(len(periods)) {
		t.Errorf("Fires = %d, want %d", tm.Fires(), len(periods))
	}
	// And a Reset that preempts a pending long timer with a short one: the
	// long expiry must not fire.
	k2 := NewKernel(1)
	count := 0
	tm2 := NewTimer(k2, 40*Millisecond, func() { count++ })
	tm2.Reset()
	k2.RunFor(Millisecond)
	tm2.SetPeriod(10 * Microsecond)
	tm2.Reset() // cancels the heap event, arms a wheel event
	k2.Run()
	if count != 1 {
		t.Errorf("timer fired %d times after cross-boundary reset, want 1", count)
	}
	if k2.Now() != Millisecond+10*Microsecond {
		t.Errorf("final time = %v, want %v", k2.Now(), Millisecond+10*Microsecond)
	}
}
