package campaign

import (
	"reflect"
	"strings"
	"testing"

	"netfi/internal/monitor"
)

// TestResilienceDetection pins the ISSUE's acceptance bound: with the
// monitoring plane armed in every trial, at least 90% of non-masked injected
// failures are detected, and every reset-recovered trial (the wedge family,
// the paper's hang) is caught.
func TestResilienceDetection(t *testing.T) {
	r := runResilienceOnce(7)
	for name, set := range map[string][]ResilienceTrial{
		"recovery-on": r.Trials, "recovery-off": r.Baseline,
	} {
		det := ComputeDetection(set)
		if det.NonMasked == 0 {
			t.Fatalf("%s: no non-masked trials to measure detection on", name)
		}
		if c := det.CoverageNonMasked(); c < 0.9 {
			t.Errorf("%s: detection coverage %.0f%% < 90%%:\n%s",
				name, 100*c, FormatResilience(r))
		}
		for _, tr := range set {
			if tr.Outcome == OutcomeResetRecovered || tr.Outcome == OutcomeHung {
				if !tr.Detected {
					t.Errorf("%s trial %d (%s, %s) escaped detection",
						name, tr.ID, tr.Family, tr.Outcome)
				}
			}
			if tr.Detected {
				if tr.DetectLatency < 0 {
					t.Errorf("%s trial %d: negative detection latency %v",
						name, tr.ID, tr.DetectLatency)
				}
				if tr.DetectSource == "" {
					t.Errorf("%s trial %d: detected without a source", name, tr.ID)
				}
			}
		}
	}
	// The CDF is rendered from sorted latencies.
	lats := ComputeDetection(r.Trials).Latencies
	for i := 1; i < len(lats); i++ {
		if lats[i] < lats[i-1] {
			t.Fatalf("detection latencies not sorted: %v", lats)
		}
	}
}

// TestResilienceDetectionDeterministic is the detector-determinism guard the
// ISSUE asks for: the detection axis (latency, source, flow counts) must be
// byte-identical between serial and parallel sweeps of the same seed.
func TestResilienceDetectionDeterministic(t *testing.T) {
	opts := ResilienceOptions{Seed: 11, Trials: 4, Messages: 3}
	serial, parallel := opts, opts
	serial.Workers = 1
	parallel.Workers = 4
	a, b := RunResilience(serial), RunResilience(parallel)
	type detAxis struct {
		Detected bool
		Latency  string
		Source   string
		Flows    uint64
	}
	axis := func(set []ResilienceTrial) []detAxis {
		out := make([]detAxis, len(set))
		for i, tr := range set {
			out[i] = detAxis{tr.Detected, tr.DetectLatency.String(),
				tr.DetectSource, tr.FlowsExported}
		}
		return out
	}
	if !reflect.DeepEqual(axis(a.Trials), axis(b.Trials)) {
		t.Errorf("recovery-on detection axis differs serial vs parallel:\n%v\nvs\n%v",
			axis(a.Trials), axis(b.Trials))
	}
	if !reflect.DeepEqual(axis(a.Baseline), axis(b.Baseline)) {
		t.Errorf("recovery-off detection axis differs serial vs parallel:\n%v\nvs\n%v",
			axis(a.Baseline), axis(b.Baseline))
	}
}

// TestMonitorLifecycle drives the scripted monitor demonstration and checks
// the full detection narrative: wedge anomaly, accrual suspicion, recovery
// observation, and flow export.
func TestMonitorLifecycle(t *testing.T) {
	r := RunMonitor(MonitorOptions{Seed: 1})
	if r.Delivered != uint64(r.Sent) {
		t.Fatalf("workload delivered %d/%d", r.Delivered, r.Sent)
	}
	if r.Injections == 0 {
		t.Fatal("scripted fault never landed")
	}
	if r.InjectedAt < 0 || r.DetectLatency < 0 {
		t.Fatalf("fault not detected: injectedAt=%v latency=%v", r.InjectedAt, r.DetectLatency)
	}
	kinds := map[monitor.EventKind]int{}
	details := map[string]int{}
	for _, e := range r.Events {
		kinds[e.Kind]++
		details[e.Detail]++
	}
	if kinds[monitor.EventSuspect] == 0 {
		t.Errorf("no accrual suspicion raised; events=%v", r.Events)
	}
	if kinds[monitor.EventRecover] == 0 {
		t.Errorf("suspected path never observed recovering; events=%v", r.Events)
	}
	if details["wedge"] == 0 {
		t.Errorf("wedge probe silent across a held-output episode; events=%v", r.Events)
	}
	if r.FlowsExported == 0 || len(r.Flows) == 0 {
		t.Fatal("no flows exported")
	}
	for _, f := range r.Flows {
		if f.Packets == 0 || f.Last < f.First {
			t.Errorf("malformed flow record %+v", f)
		}
	}
	out := FormatMonitor(r)
	for _, want := range []string{"workload:", "detected:", "suspect", "flow", "tap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatMonitor missing %q:\n%s", want, out)
		}
	}
	// Same seed, same narrative.
	if again := RunMonitor(MonitorOptions{Seed: 1}); !reflect.DeepEqual(r, again) {
		t.Error("RunMonitor not deterministic for a fixed seed")
	}
}
