package myrinet

import (
	"fmt"
	"sort"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Interface is a Myrinet host interface (NIC): it connects a host to the
// network, runs the Myrinet Control Program (MCP) responsible for mapping
// (§4.1), parses the incoming character stream back into packets, performs
// the hardware checks (CRC-8, route-byte MSB, destination address), and
// exposes a routing table of MAC → source route.
//
// Classification happens at wire speed, like the LANai hardware: an
// interface keeps answering mapping packets even when its host is wedged —
// the behaviour §4.3.3 observes ("the node still responds correctly to
// mapping packets").
//
// The zero value is not usable; construct with NewInterface.
type Interface struct {
	k   *sim.Kernel
	cfg InterfaceConfig
	lc  *LinkController
	ctr *Counters

	// Receive-side stream parser.
	inPacket   bool
	assembling []byte
	oversized  bool

	// Routing.
	routes map[MAC][]byte
	// resolver computes a route on a table miss (large fabrics derive
	// routes from topology instead of materializing H^2 entries). A hit
	// is cached into routes.
	resolver func(dst MAC) ([]byte, bool)

	// MCP.
	mcp *MCP

	// Host-side delivery callback (src MAC, UDP-level payload).
	onData func(src MAC, payload []byte)
	// onPacket observes every structurally valid packet before
	// classification; used by monitors and tests. Return value ignored.
	onPacket func(p *Packet)
}

// InterfaceConfig parameterizes an interface.
type InterfaceConfig struct {
	// Name labels the interface in traces.
	Name string
	// MAC is the interface's 48-bit physical address.
	MAC MAC
	// ID is the MCP's 64-bit unique address; the highest ID on the
	// network is responsible for mapping.
	ID NodeID
	// MaxPacket bounds reassembly; a stream exceeding it before a GAP is
	// dropped as oversize. Zero selects 4096.
	MaxPacket int
	// TxQueueLimit bounds the NIC transmit queue in packets; sends
	// beyond it are dropped (DropTxQueue). Zero means unbounded.
	TxQueueLimit int
	// Mapping configures the MCP's mapping behaviour.
	Mapping MappingConfig
	// Recovery enables the link-reset protocol on the interface's link.
	Recovery RecoveryConfig
}

// NewInterface returns an unattached interface.
func NewInterface(k *sim.Kernel, cfg InterfaceConfig) *Interface {
	if cfg.MaxPacket == 0 {
		cfg.MaxPacket = 4096
	}
	ifc := &Interface{
		k:      k,
		cfg:    cfg,
		ctr:    NewCounters(),
		routes: make(map[MAC][]byte),
	}
	ifc.mcp = newMCP(ifc, cfg.Mapping)
	return ifc
}

// AttachLink wires the interface: out transmits toward the network; the
// returned receiver must be set as the destination of the arriving link.
func (ifc *Interface) AttachLink(out *phy.Link) phy.Receiver {
	if ifc.lc != nil {
		panic(fmt.Sprintf("myrinet: interface %s already attached", ifc.cfg.Name))
	}
	ifc.lc = NewLinkController(ifc.k, LinkControllerConfig{
		Name:     ifc.cfg.Name + ".lc",
		Out:      out,
		Counters: ifc.ctr,
		Recovery: ifc.cfg.Recovery,
	})
	ifc.lc.SetNotify(ifc.drain)
	ifc.lc.SetResetHandler(ifc.onLinkReset)
	ifc.mcp.start()
	return ifc.lc
}

// onLinkReset abandons the in-flight reassembly: the link was reset, so the
// partial packet's tail is gone.
func (ifc *Interface) onLinkReset() {
	if ifc.inPacket {
		ifc.ctr.Drop(DropReset)
	}
	ifc.assembling = nil
	ifc.inPacket = false
	ifc.oversized = false
}

// Name returns the interface's label.
func (ifc *Interface) Name() string { return ifc.cfg.Name }

// MAC returns the interface's physical address.
func (ifc *Interface) MAC() MAC { return ifc.cfg.MAC }

// ID returns the MCP's unique address.
func (ifc *Interface) ID() NodeID { return ifc.cfg.ID }

// Counters returns the interface statistics.
func (ifc *Interface) Counters() *Counters { return ifc.ctr }

// Controller exposes the link controller (monitors and tests).
func (ifc *Interface) Controller() *LinkController { return ifc.lc }

// MCP returns the interface's Myrinet Control Program.
func (ifc *Interface) MCP() *MCP { return ifc.mcp }

// SetDataHandler registers the host-stack delivery callback.
func (ifc *Interface) SetDataHandler(fn func(src MAC, payload []byte)) { ifc.onData = fn }

// SetPacketObserver registers a callback invoked for every CRC-valid packet
// addressed to this interface's link, before classification.
func (ifc *Interface) SetPacketObserver(fn func(p *Packet)) { ifc.onPacket = fn }

// ---- routing table ----

// SetRoute installs a static route (tests and manual topologies).
func (ifc *Interface) SetRoute(dst MAC, route []byte) {
	ifc.routes[dst] = append([]byte(nil), route...)
}

// SetRouteResolver installs a fallback consulted on a routing-table miss.
// The resolved route is cached in the table, so the resolver runs once per
// destination. Fabric topologies use this to derive routes on demand from
// the port mapping instead of pre-installing hosts-squared entries.
func (ifc *Interface) SetRouteResolver(fn func(dst MAC) ([]byte, bool)) {
	ifc.resolver = fn
}

// Route returns the source route for dst, if known.
func (ifc *Interface) Route(dst MAC) ([]byte, bool) {
	r, ok := ifc.routes[dst]
	if !ok && ifc.resolver != nil {
		if r, ok = ifc.resolver(dst); ok {
			ifc.routes[dst] = r
		}
	}
	return r, ok
}

// Routes returns a copy of the routing table.
func (ifc *Interface) Routes() map[MAC][]byte {
	out := make(map[MAC][]byte, len(ifc.routes))
	for m, r := range ifc.routes {
		out[m] = append([]byte(nil), r...)
	}
	return out
}

// KnownPeers returns the MACs in the routing table in deterministic order.
func (ifc *Interface) KnownPeers() []MAC {
	out := make([]MAC, 0, len(ifc.routes))
	for m := range ifc.routes {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return out
}

// replaceRoutes installs a full table (mapping distribution).
func (ifc *Interface) replaceRoutes(table map[MAC][]byte) {
	ifc.routes = table
}

// ---- transmit ----

// dataHeaderLen is the data-packet payload prefix: destination MAC (6) and
// source MAC (6), the 48-bit Ethernet-style addresses of §4.3.3.
const dataHeaderLen = 12

// Send transmits payload to dst using the routing table. It returns an
// error — and counts DropNoRoute — when the destination is not in the table
// (the node was removed from the network map).
func (ifc *Interface) Send(dst MAC, payload []byte) error {
	route, ok := ifc.Route(dst)
	if !ok {
		ifc.ctr.Drop(DropNoRoute)
		return fmt.Errorf("myrinet: %s has no route to %v", ifc.cfg.Name, dst)
	}
	body := make([]byte, 0, dataHeaderLen+len(payload))
	body = append(body, dst[:]...)
	body = append(body, ifc.cfg.MAC[:]...)
	body = append(body, payload...)
	ifc.SendPacket(&Packet{Route: route, Type: TypeData, Payload: body})
	return nil
}

// SendPacket transmits an arbitrary packet (mapping traffic, tests). When
// the bounded transmit queue is full — the link is stalled by STOP or a
// blocked path — the packet is dropped like a full hardware send ring.
func (ifc *Interface) SendPacket(p *Packet) {
	if ifc.lc == nil {
		panic(fmt.Sprintf("myrinet: interface %s not attached", ifc.cfg.Name))
	}
	if ifc.cfg.TxQueueLimit > 0 && ifc.lc.QueuedPackets() >= ifc.cfg.TxQueueLimit {
		ifc.ctr.Drop(DropTxQueue)
		return
	}
	ifc.lc.EnqueuePacketTo(p.EncodeChars(), ifc)
}

// TxDone implements TxCompletion: the interface's per-packet send accounting.
// The interface (not a closure) carries the completion so pending transmit
// queues survive a fork.
func (ifc *Interface) TxDone(terminated bool) {
	if !terminated {
		ifc.ctr.PacketsSent++
	}
}

// ---- receive ----

// drain consumes the slack buffer, reassembling packets.
func (ifc *Interface) drain() {
	for {
		c, ok := ifc.lc.Pop()
		if !ok {
			return
		}
		if c.IsData() {
			ifc.inPacket = true
			if ifc.oversized {
				continue
			}
			if len(ifc.assembling) >= ifc.cfg.MaxPacket {
				ifc.oversized = true
				continue
			}
			ifc.assembling = append(ifc.assembling, c.Byte())
			continue
		}
		if DecodeControl(c.Byte()) == SymbolGap && ifc.inPacket {
			ifc.completePacket()
		}
	}
}

// completePacket classifies one reassembled packet.
func (ifc *Interface) completePacket() {
	raw := ifc.assembling
	oversized := ifc.oversized
	ifc.assembling = nil
	ifc.inPacket = false
	ifc.oversized = false

	switch {
	case oversized:
		ifc.ctr.Drop(DropOversize)
		return
	case len(raw) < 6: // route + 4-byte type + CRC
		ifc.ctr.Drop(DropTruncated)
		return
	}
	routeByte := raw[0]
	if routeByte&RouteSwitchFlag != 0 {
		// "Consumed and handled as an error": dropped without incident,
		// no error propagation (§4.3.2, source route corruption).
		ifc.ctr.Drop(DropRouteMSB)
		return
	}
	body, crc := raw[:len(raw)-1], raw[len(raw)-1]
	if bitstream.CRC8(body) != crc {
		ifc.ctr.Drop(DropCRC)
		return
	}
	p := &Packet{
		Route:    raw[0:1],
		TypeHigh: uint16(raw[1])<<8 | uint16(raw[2]),
		Type:     uint16(raw[3])<<8 | uint16(raw[4]),
		Payload:  raw[5 : len(raw)-1],
	}
	if ifc.onPacket != nil {
		ifc.onPacket(p)
	}
	if p.TypeHigh != 0 {
		ifc.ctr.Drop(DropUnknownType)
		return
	}
	switch p.Type {
	case TypeData:
		ifc.handleData(p.Payload)
	case TypeMapping:
		ifc.mcp.handlePacket(p.Payload)
	default:
		// Corrupted designators (e.g. 0x0005 -> 0x000x) land here: the
		// packet is ignored, so a corrupted mapping exchange looks like
		// a missing response to the mapper (§4.3.2).
		ifc.ctr.Drop(DropUnknownType)
	}
}

func (ifc *Interface) handleData(payload []byte) {
	if len(payload) < dataHeaderLen {
		ifc.ctr.Drop(DropTruncated)
		return
	}
	var dst, src MAC
	copy(dst[:], payload[0:6])
	copy(src[:], payload[6:12])
	if dst != ifc.cfg.MAC {
		// Misaddressed packets are dropped silently; with its inbound
		// addresses corrupted a node "drops all packets as being
		// misaddressed" (§4.3.3).
		ifc.ctr.Drop(DropMisaddressed)
		return
	}
	ifc.ctr.PacketsReceived++
	if ifc.onData != nil {
		ifc.onData(src, payload[dataHeaderLen:])
	}
}
