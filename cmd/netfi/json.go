package main

import (
	"encoding/json"
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/monitor"
	"netfi/internal/sim"
	"netfi/internal/topo"
)

// The -json views: durations render as milliseconds so consumers never need
// the simulator's time base.

type jsonTrial struct {
	ID             int     `json:"id"`
	Family         string  `json:"family"`
	Outcome        string  `json:"outcome"`
	Sent           int     `json:"sent"`
	Delivered      uint64  `json:"delivered"`
	Retransmits    uint64  `json:"retransmits"`
	GaveUp         uint64  `json:"gave_up"`
	RecoveryEvents uint64  `json:"recovery_events"`
	Injections     uint64  `json:"injections"`
	HeldOutputs    int     `json:"held_outputs"`
	InjectedAtMs   float64 `json:"injected_at_ms"` // -1: rule never fired
	Detected       bool    `json:"detected"`
	DetectLatMs    float64 `json:"detect_latency_ms"` // -1: undetected
	DetectSource   string  `json:"detect_source,omitempty"`
	FlowsExported  uint64  `json:"flows_exported"`
}

type jsonDetection struct {
	Injected          int       `json:"injected"`
	NonMasked         int       `json:"non_masked"`
	Detected          int       `json:"detected"`
	DetectedNonMasked int       `json:"detected_non_masked"`
	Coverage          float64   `json:"coverage_non_masked"`
	LatencyCDFMs      []float64 `json:"latency_cdf_ms"`
}

type jsonSweep struct {
	Trials    []jsonTrial    `json:"trials"`
	Tally     map[string]int `json:"tally"`
	Detection jsonDetection  `json:"detection"`
}

type jsonResilience struct {
	Section     string    `json:"section"`
	Seed        int64     `json:"seed"`
	RecoveryOn  jsonSweep `json:"recovery_on"`
	RecoveryOff jsonSweep `json:"recovery_off"`
}

type jsonChaosTrial struct {
	ID             int     `json:"id"`
	Plan           string  `json:"plan"`
	K              int     `json:"k"`
	Outcome        string  `json:"outcome"`
	Quiesce        string  `json:"quiesce,omitempty"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	Sent           int     `json:"sent"`
	Delivered      uint64  `json:"delivered"`
	Retransmits    uint64  `json:"retransmits"`
	GaveUp         uint64  `json:"gave_up"`
	RecoveryEvents uint64  `json:"recovery_events"`
	Injections     uint64  `json:"injections"`
	HeldOutputs    int     `json:"held_outputs"`
	InjectedAtMs   float64 `json:"injected_at_ms"` // -1: no fault became observable
	Detected       bool    `json:"detected"`
	DetectLatMs    float64 `json:"detect_latency_ms"` // -1: undetected
	DetectSource   string  `json:"detect_source,omitempty"`
	FlowsExported  uint64  `json:"flows_exported"`
	Error          string  `json:"error,omitempty"`
}

type jsonChaos struct {
	Section   string                    `json:"section"`
	Seed      int64                     `json:"seed"`
	Forks     int                       `json:"forks"`
	MaxK      int                       `json:"max_k"`
	Trials    []jsonChaosTrial          `json:"trials"`
	Tally     map[string]int            `json:"tally"`
	PerK      map[string]map[string]int `json:"per_k"`
	Detection jsonDetection             `json:"detection"`
}

type jsonEvent struct {
	TimeMs float64 `json:"time_ms"`
	Kind   string  `json:"kind"`
	Source string  `json:"source"`
	Detail string  `json:"detail"`
	Value  float64 `json:"value"`
}

type jsonFlow struct {
	Tap     string  `json:"tap"`
	Src     string  `json:"src"`
	Dst     string  `json:"dst"`
	Packets uint64  `json:"packets"`
	Bytes   uint64  `json:"bytes"`
	FirstMs float64 `json:"first_ms"`
	LastMs  float64 `json:"last_ms"`
	Cause   string  `json:"cause"`
}

type jsonMonitor struct {
	Section        string               `json:"section"`
	Seed           int64                `json:"seed"`
	Sent           int                  `json:"sent"`
	Delivered      uint64               `json:"delivered"`
	Retransmits    uint64               `json:"retransmits"`
	RecoveryEvents uint64               `json:"recovery_events"`
	Injections     uint64               `json:"injections"`
	InjectedAtMs   float64              `json:"injected_at_ms"`
	DetectLatMs    float64              `json:"detect_latency_ms"`
	DetectSource   string               `json:"detect_source,omitempty"`
	Ticks          uint64               `json:"ticks"`
	Events         []jsonEvent          `json:"events"`
	FlowsExported  uint64               `json:"flows_exported"`
	FlowsDropped   uint64               `json:"flows_dropped"`
	Flows          []jsonFlow           `json:"flows"`
	Taps           []campaign.TapTotals `json:"taps"`
}

type jsonFabric struct {
	Section       string   `json:"section"`
	Seed          int64    `json:"seed"`
	Switches      int      `json:"switches"`
	Hosts         int      `json:"hosts"`
	Shards        int      `json:"shards"`
	Drained       bool     `json:"drained"`
	SimTimeMs     float64  `json:"sim_time_ms"`
	WallMs        float64  `json:"wall_ms"`
	Sent          uint64   `json:"sent"`
	Delivered     uint64   `json:"delivered"`
	Bytes         uint64   `json:"bytes"`
	Symbols       uint64   `json:"symbols"`
	Events        uint64   `json:"events"`
	Windows       uint64   `json:"windows"`
	Exchanged     uint64   `json:"exchanged"`
	EventsPerWin  float64  `json:"events_per_window"`
	WinPerSimSec  float64  `json:"windows_per_simsec"`
	SymbolsPerSec float64  `json:"symbols_per_sec"`
	ShardEvents   []uint64 `json:"shard_events"`
}

func viewFabric(res campaign.FabricResult) jsonFabric {
	v := jsonFabric{
		Section: "fabric", Seed: res.Cfg.Topo.Seed,
		Switches: res.Cfg.Topo.Switches, Hosts: res.Cfg.Topo.Hosts,
		Shards:    res.Cfg.Topo.Shards,
		Drained:   res.Drained,
		SimTimeMs: sim.Duration(res.SimTime).Seconds() * 1000,
		WallMs:    float64(res.Wall.Nanoseconds()) / 1e6,
		Sent:      res.Sent, Delivered: res.Delivered,
		Bytes: res.Bytes, Symbols: res.Symbols,
		Events: res.Events, Windows: res.Windows, Exchanged: res.Exchanged,
		EventsPerWin:  res.EventsPerWindow(),
		WinPerSimSec:  res.WindowsPerSimSec(),
		SymbolsPerSec: res.SymbolsPerSec(),
		ShardEvents:   res.ShardEvents,
	}
	if v.ShardEvents == nil {
		v.ShardEvents = []uint64{}
	}
	return v
}

func ms(d sim.Duration) float64 {
	if d < 0 {
		return -1
	}
	return d.Seconds() * 1000
}

func viewSweep(trials []campaign.ResilienceTrial) jsonSweep {
	sw := jsonSweep{Tally: map[string]int{}}
	for _, t := range trials {
		jt := jsonTrial{
			ID: t.ID, Family: t.Family, Outcome: string(t.Outcome),
			Sent: t.Sent, Delivered: t.Delivered, Retransmits: t.Retransmits,
			GaveUp: t.GaveUp, RecoveryEvents: t.RecoveryEvents,
			Injections: t.Injections, HeldOutputs: t.HeldOutputs,
			InjectedAtMs: ms(t.InjectedAt), Detected: t.Detected,
			DetectLatMs: -1, DetectSource: t.DetectSource,
			FlowsExported: t.FlowsExported,
		}
		if t.Detected {
			jt.DetectLatMs = ms(t.DetectLatency)
		}
		sw.Trials = append(sw.Trials, jt)
		sw.Tally[string(t.Outcome)]++
	}
	det := campaign.ComputeDetection(trials)
	sw.Detection = jsonDetection{
		Injected: det.Injected, NonMasked: det.NonMasked,
		Detected: det.Detected, DetectedNonMasked: det.DetectedNonMasked,
		Coverage:     det.CoverageNonMasked(),
		LatencyCDFMs: []float64{},
	}
	for _, l := range det.Latencies {
		sw.Detection.LatencyCDFMs = append(sw.Detection.LatencyCDFMs, ms(l))
	}
	return sw
}

func viewChaos(res campaign.ChaosResult) jsonChaos {
	v := jsonChaos{
		Section: "chaos", Seed: res.Seed, Forks: res.Forks, MaxK: res.MaxK,
		Trials: []jsonChaosTrial{}, Tally: map[string]int{}, PerK: map[string]map[string]int{},
	}
	for _, t := range res.Trials {
		jt := jsonChaosTrial{
			ID: t.ID, Plan: t.Plan, K: t.K, Outcome: string(t.Outcome),
			Quiesce: t.Quiesce, ElapsedMs: ms(t.Elapsed),
			Sent: t.Sent, Delivered: t.Delivered, Retransmits: t.Retransmits,
			GaveUp: t.GaveUp, RecoveryEvents: t.RecoveryEvents,
			Injections: t.Injections, HeldOutputs: t.HeldOutputs,
			InjectedAtMs: ms(t.InjectedAt), Detected: t.Detected,
			DetectLatMs: -1, DetectSource: t.DetectSource,
			FlowsExported: t.FlowsExported, Error: t.Err,
		}
		if t.Detected {
			jt.DetectLatMs = ms(t.DetectLatency)
		}
		v.Trials = append(v.Trials, jt)
		v.Tally[string(t.Outcome)]++
		k := fmt.Sprintf("%d", t.K)
		if v.PerK[k] == nil {
			v.PerK[k] = map[string]int{}
		}
		v.PerK[k][string(t.Outcome)]++
	}
	det := campaign.ComputeChaosDetection(res.Trials)
	v.Detection = jsonDetection{
		Injected: det.Injected, NonMasked: det.NonMasked,
		Detected: det.Detected, DetectedNonMasked: det.DetectedNonMasked,
		Coverage:     det.CoverageNonMasked(),
		LatencyCDFMs: []float64{},
	}
	for _, l := range det.Latencies {
		v.Detection.LatencyCDFMs = append(v.Detection.LatencyCDFMs, ms(l))
	}
	return v
}

func viewEvents(events []monitor.Event) []jsonEvent {
	out := []jsonEvent{}
	for _, e := range events {
		out = append(out, jsonEvent{
			TimeMs: e.Time.Seconds() * 1000, Kind: e.Kind.String(),
			Source: e.Source, Detail: e.Detail, Value: e.Value,
		})
	}
	return out
}

func viewFlows(flows []monitor.FlowRecord) []jsonFlow {
	out := []jsonFlow{}
	for _, f := range flows {
		out = append(out, jsonFlow{
			Tap: f.Tap, Src: fmt.Sprintf("%x", f.Key.Src), Dst: fmt.Sprintf("%x", f.Key.Dst),
			Packets: f.Packets, Bytes: f.Bytes,
			FirstMs: f.First.Seconds() * 1000, LastMs: f.Last.Seconds() * 1000,
			Cause: f.Cause.String(),
		})
	}
	return out
}

// jsonReport renders the sections with structured output. Sections without a
// machine-readable form report an error (the caller exits 2, matching the
// unknown-experiment path).
func jsonReport(name string, o expOpts) (string, error) {
	var v any
	switch name {
	case "resilience":
		res := campaign.RunResilience(campaign.ResilienceOptions{
			Seed:    o.seed,
			Trials:  int(14 * o.scale),
			Workers: o.workers,
		})
		v = jsonResilience{
			Section: "resilience", Seed: o.seed,
			RecoveryOn:  viewSweep(res.Trials),
			RecoveryOff: viewSweep(res.Baseline),
		}
	case "monitor":
		res := campaign.RunMonitor(campaign.MonitorOptions{Seed: o.seed})
		v = jsonMonitor{
			Section: "monitor", Seed: o.seed,
			Sent: res.Sent, Delivered: res.Delivered, Retransmits: res.Retransmits,
			RecoveryEvents: res.RecoveryEvents, Injections: res.Injections,
			InjectedAtMs: ms(res.InjectedAt), DetectLatMs: ms(res.DetectLatency),
			DetectSource: res.DetectSource, Ticks: res.Ticks,
			Events:        viewEvents(res.Events),
			FlowsExported: res.FlowsExported, FlowsDropped: res.FlowsDropped,
			Flows: viewFlows(res.Flows), Taps: res.Taps,
		}
	case "chaos":
		v = viewChaos(campaign.RunChaos(chaosOptions(o)))
	case "fabric":
		res, err := campaign.RunFabric(campaign.FabricConfig{
			Topo: topo.Config{
				Switches: o.switches,
				Hosts:    o.hosts,
				Shards:   o.shards,
				Seed:     o.seed,
			},
		})
		if err != nil {
			return "", err
		}
		v = viewFabric(res)
	default:
		return "", fmt.Errorf("-json supports resilience, monitor, chaos, and fabric, not %q", name)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
