package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"netfi/internal/host"
	"netfi/internal/monitor"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// TrialOutcome classifies one resilience trial. The triage extends the paper's
// active/passive fault split (§4.4) with the recovery layer's vocabulary:
// how, not just whether, the network absorbed the fault.
type TrialOutcome string

const (
	// OutcomeMasked — the fault landed (or missed) without any observable
	// application effect: every message arrived on the first attempt.
	OutcomeMasked TrialOutcome = "masked"
	// OutcomeRetransmitted — the fault destroyed traffic, and the reliable
	// transport's retry restored it end to end.
	OutcomeRetransmitted TrialOutcome = "retransmitted"
	// OutcomeResetRecovered — a link reset or watchdog had to break a
	// wedged path before delivery could complete.
	OutcomeResetRecovered TrialOutcome = "reset-recovered"
	// OutcomeDegraded — the trial terminated but messages were lost for
	// good (the transport gave up, or a plain-UDP run lost traffic).
	OutcomeDegraded TrialOutcome = "degraded"
	// OutcomeDropped — recovery-off only: messages vanished with the
	// network itself still healthy.
	OutcomeDropped TrialOutcome = "dropped"
	// OutcomeHung — the paper's failure mode: a path stayed wedged, either
	// as frozen progress or a switch output still owned after the network
	// drained (§4.3.1's blocked-forever packet).
	OutcomeHung TrialOutcome = "hung"
)

// ResilienceTrial records one randomized injection and its triage.
type ResilienceTrial struct {
	ID      int
	Family  string
	Command string       // the RULE ADD line armed over the serial console
	ArmAt   sim.Duration // when the line was queued, relative to traffic start
	Outcome TrialOutcome
	Quiesce string // drained / stalled / deadline (from RunUntilQuiescent)
	Elapsed sim.Duration

	Sent        int
	Delivered   uint64
	Retransmits uint64
	GaveUp      uint64
	// RecoveryEvents sums link resets, RESETs received, stop-watchdog and
	// blocked-timeout fires over every switch port and interface.
	RecoveryEvents uint64
	// Injections is the injector's own count of characters it perturbed.
	Injections uint64
	// ResetsOnWire is the injector's RESET-symbol observation (the figure
	// STAT reports as resets=), both directions summed.
	ResetsOnWire uint64
	// HeldOutputs is the switch's owned-output count after quiescence.
	HeldOutputs int

	// Detection axis (the monitoring plane runs armed in every trial).
	// InjectedAt is when the first fault landed on the wire, relative to
	// traffic start; negative when the rule never fired.
	InjectedAt sim.Duration
	// Detected reports whether the plane raised any event at or after
	// the injection.
	Detected bool
	// DetectLatency is first-event time minus injection time.
	DetectLatency sim.Duration
	// DetectSource names the first detector that fired, as
	// "source/detail" (e.g. "node1.rx/phi", "net.drops/loss-burst").
	DetectSource string
	// FlowsExported counts NetFlow records the plane's switch taps
	// exported over the trial.
	FlowsExported uint64
}

// ResilienceResult pairs the recovery-on sweep with its recovery-off rerun
// on the same seeds.
type ResilienceResult struct {
	Trials   []ResilienceTrial // recovery layer enabled
	Baseline []ResilienceTrial // recovery disabled: the paper's hardware
}

// ResilienceOptions parameterizes the campaign.
type ResilienceOptions struct {
	Seed int64
	// Trials per sweep. Zero selects 14 (each fault family twice).
	Trials int
	// Messages sent by the tapped node per trial. Zero selects 6;
	// minimum 3 (the tail-fault family needs a penultimate message).
	Messages int
	// Gap paces the messages. Zero selects 10 ms — wide enough that a
	// serially-armed rule lands between two specific packets.
	Gap sim.Duration
	// Workers runs trials on a worker pool; <= 1 is serial. Results are
	// identical either way (each trial is a self-contained simulation).
	Workers int
}

func (o *ResilienceOptions) fillDefaults() {
	if o.Trials == 0 {
		o.Trials = 2 * len(faultFamilies)
	}
	if o.Messages < 3 {
		o.Messages = 6
	}
	if o.Gap == 0 {
		o.Gap = 10 * sim.Millisecond
	}
}

// resilienceRuleID is the rule slot every trial arms (one rule per trial;
// the testbed is rebuilt from scratch between trials).
const resilienceRuleID = 70

// faultPlan is one trial's randomized injection, fixed before any traffic so
// the recovery-on and recovery-off runs of the same seed see the same fault.
type faultPlan struct {
	cmd  string
	tail bool // arm between the penultimate and final message
}

// faultFamilies spans the ISSUE's sweep axes: control symbols, GAPs, route
// bytes, and CRC integrity. Each builder may draw from rng; the draw count
// per family is what keeps a seed's plan identical across reruns.
var faultFamilies = []struct {
	name  string
	build func(rng *rand.Rand, nodes int) faultPlan
}{
	{"go-drop", func(rng *rand.Rand, nodes int) faultPlan {
		// A lost GO is the benign end of the spectrum: the short-period
		// timeout acts as GO ~200 ns later (§4.3.1).
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT DROP PAT C03", resilienceRuleID)}
	}},
	{"gap-drop", func(rng *rand.Rand, nodes int) faultPlan {
		// A packet-terminating GAP vanishes mid-stream; the next train
		// merges into it and dies on the destination's CRC check.
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT DROP PAT C0C", resilienceRuleID)}
	}},
	{"gap-drop-tail", func(rng *rand.Rand, nodes int) faultPlan {
		// The same fault on the final packet: no later train ever
		// terminates the merged stream — the paper's wedge.
		return faultPlan{tail: true, cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT DROP PAT C0C", resilienceRuleID)}
	}},
	{"gap-to-stop", func(rng *rand.Rand, nodes int) faultPlan {
		// "Erroneous flow control symbols" (§4.3.1): the terminator
		// becomes a phantom STOP, unframing the train and pausing the
		// reverse path at once.
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT REPLACE PAT C0C VEC C0F", resilienceRuleID)}
	}},
	{"route-toggle", func(rng *rand.Rand, nodes int) faultPlan {
		// §4.3.2 source-route corruption: flip low bits of a switch hop
		// so the packet exits a wrong (possibly unattached) port. The
		// MSB stays set — the hop still addresses the switch.
		target := 1 + rng.Intn(nodes-1)
		vec := 1 + rng.Intn(7)
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT TOGGLE PAT %02X VEC %02X",
			resilienceRuleID, myrinet.SwitchHop(target), vec)}
	}},
	{"crc-stale", func(rng *rand.Rand, nodes int) faultPlan {
		// Payload corruption with the CRC left stale: the link delivers
		// the packet, the destination's CRC-8 check rejects it.
		vec := 1 + rng.Intn(255)
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT TOGGLE PAT %02X VEC %02X",
			resilienceRuleID, resiliencePayloadFill, vec)}
	}},
	{"truncate", func(rng *rand.Rand, nodes int) faultPlan {
		// Delete a run of payload characters: the shortened packet fails
		// length and CRC checks downstream.
		k := 2 + rng.Intn(6)
		return faultPlan{cmd: fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT DROP:%d PAT %02X",
			resilienceRuleID, k, resiliencePayloadFill)}
	}},
}

// resiliencePayloadFill is the message body byte. 0x55 is clear of every
// control-symbol code, the MAC bytes, and the transport header, so the
// payload-pattern families fire inside the payload proper.
const resiliencePayloadFill = 0x55

const resiliencePayloadLen = 20 // > max truncate run, so framing survives

const resiliencePort = 7000

// recoveryEventCount sums the recovery layer's activity over the whole
// network: every switch port and every host interface.
func recoveryEventCount(tb *Testbed) uint64 {
	var n uint64
	for p := 0; p < tb.Switch.Ports(); p++ {
		c := tb.Switch.PortCounters(p)
		n += c.LinkResets + c.ResetsReceived + c.StopWatchdogFires + c.BlockedTimeouts
	}
	for _, nd := range tb.Nodes {
		c := nd.Interface().Counters()
		n += c.LinkResets + c.ResetsReceived + c.StopWatchdogFires + c.BlockedTimeouts
	}
	return n
}

// armTrialMonitor attaches the monitoring plane to a resilience testbed:
// flow-export taps on every attached switch input, arrival-side accrual
// detectors on the two lowest untapped nodes (fed by heartbeat beacons
// between them — beacons never cross the injector's cable, preserving the
// workload discipline the fault families rely on), and loss / recovery /
// wedge probes over the network counters. The beacons and the sampling
// clock stop at horizon. The returned func reports when the first fault
// landed on the wire.
func armTrialMonitor(tb *Testbed, horizon sim.Time) (*monitor.Plane, func() (sim.Time, bool)) {
	mon := monitor.NewPlane(tb.K, monitor.Config{
		SampleInterval: sim.Millisecond,
		FlowIdle:       25 * sim.Millisecond,
	})
	for p := 0; p < tb.Switch.Ports(); p++ {
		if tb.Switch.Attached(p) {
			mon.TapSwitchPort(tb.Switch, p, monitor.TapOptions{Flows: true})
		}
	}

	// Heartbeats between the first two nodes that are not the tapped one.
	var beat []int
	for i := range tb.Nodes {
		if i != tb.cfg.TapNode && len(beat) < 2 {
			beat = append(beat, i)
		}
	}
	if len(beat) == 2 {
		a, b := beat[0], beat[1]
		for _, i := range beat {
			mon.TapInterface(tb.Nodes[i].Interface(), monitor.TapOptions{Detect: true})
			if _, err := tb.Nodes[i].Bind(host.HeartbeatPort,
				func(myrinet.MAC, uint16, []byte) {}); err != nil {
				panic(err)
			}
		}
		host.NewHeartbeat(tb.K, tb.Nodes[a], host.HeartbeatConfig{
			Dst: NodeMAC(b), Until: horizon,
		}).Start()
		host.NewHeartbeat(tb.K, tb.Nodes[b], host.HeartbeatConfig{
			Dst: NodeMAC(a), Until: horizon,
		}).Start()
	}

	mon.AddLossProbe("net.drops", func() uint64 {
		var n uint64
		for p := 0; p < tb.Switch.Ports(); p++ {
			n += tb.Switch.PortCounters(p).TotalDrops()
		}
		for _, nd := range tb.Nodes {
			n += nd.Interface().Counters().TotalDrops()
		}
		return n
	})
	mon.AddCounterProbe("net.recovery", "recovery", func() uint64 {
		return recoveryEventCount(tb)
	})
	mon.AddWedgeProbe("sw0.held", func() int { return tb.Switch.HeldOutputs() })

	var injectedAt sim.Time
	injSeen := false
	hook := func() {
		if !injSeen {
			injSeen = true
			injectedAt = tb.K.Now()
		}
	}
	tb.Injector.Engine(DirOutbound).SetInjectionHook(hook)
	tb.Injector.Engine(DirInbound).SetInjectionHook(hook)

	mon.SetStopAt(horizon)
	mon.Start()
	return mon, func() (sim.Time, bool) { return injectedAt, injSeen }
}

// runResilienceTrial executes one fault injection against a fresh testbed.
// With recovery enabled the workload is the reliable transport; disabled, it
// is plain UDP — the paper's stack, which loses or wedges instead.
func runResilienceTrial(seed int64, trial int, opts ResilienceOptions, recovery bool) ResilienceTrial {
	rc := myrinet.RecoveryConfig{}
	if recovery {
		// Watchdogs shorter than the transport's first RTO, so a wedge
		// is broken by a reset before the retry needs the path back.
		rc = myrinet.RecoveryConfig{
			Enabled:        true,
			BlockedTimeout: 15 * sim.Millisecond,
			StopWatchdog:   25 * sim.Millisecond,
		}
	}
	tb := NewTestbed(TestbedConfig{Seed: seed, Recovery: rc})
	nodes := len(tb.Nodes)

	// Fix the fault before any other randomness so recovery-on and -off
	// runs of one seed inject identically.
	fam := faultFamilies[trial%len(faultFamilies)]
	plan := fam.build(tb.K.Rand(), nodes)
	armSpan := sim.Duration(opts.Messages-2) * opts.Gap
	var armAt sim.Duration
	if plan.tail {
		// Land after the penultimate GAP but before the final message:
		// the serial line itself takes ~87 us per byte to decode.
		armAt = armSpan + 3*sim.Millisecond
	} else {
		armAt = sim.Duration(tb.K.Rand().Int63n(int64(armSpan)))
	}

	tb.Configure("DIR L")
	cmd := plan.cmd
	tb.K.After(armAt, func() { tb.Console.Send(cmd) })

	tr := ResilienceTrial{
		ID:         trial,
		Family:     fam.name,
		Command:    cmd,
		ArmAt:      armAt,
		Sent:       opts.Messages,
		InjectedAt: -1,
	}

	// Arm the monitoring plane. base is traffic start; the heartbeat
	// beacons and the sampling clock both end at a horizon comfortably
	// past the last workload message and every recovery watchdog, so the
	// detectors cover the whole fault window yet the event queue still
	// drains in healthy trials (and end-of-workload silence is never
	// mistaken for failure).
	base := tb.K.Now()
	horizon := base + sim.Time(armSpan+opts.Gap+60*sim.Millisecond)
	mon, injected := armTrialMonitor(tb, horizon)

	payload := make([]byte, resiliencePayloadLen)
	for i := range payload {
		payload[i] = resiliencePayloadFill
	}

	var progress func() uint64
	var rel *host.Reliable
	received := 0
	if recovery {
		endpoints := make([]*host.Reliable, nodes)
		for i, n := range tb.Nodes {
			r, err := host.NewReliable(n, resiliencePort, host.ReliableConfig{
				InitialRTO: 40 * sim.Millisecond,
				MaxRTO:     80 * sim.Millisecond,
				MaxRetries: 5,
			})
			if err != nil {
				panic(err)
			}
			endpoints[i] = r
		}
		rel = endpoints[0]
		for i := 0; i < opts.Messages; i++ {
			dst := NodeMAC(1 + i%(nodes-1))
			tb.K.After(sim.Duration(i)*opts.Gap, func() { rel.Send(dst, payload) })
		}
		progress = func() uint64 {
			s := rel.Stats()
			return s.Delivered + s.Retransmits + s.GaveUp + recoveryEventCount(tb)
		}
	} else {
		for _, n := range tb.Nodes {
			if _, err := n.Bind(resiliencePort, func(myrinet.MAC, uint16, []byte) {
				received++
			}); err != nil {
				panic(err)
			}
		}
		tap := tb.TapNode()
		for i := 0; i < opts.Messages; i++ {
			dst := NodeMAC(1 + i%(nodes-1))
			tb.K.After(sim.Duration(i)*opts.Gap, func() {
				tap.SendUDP(dst, resiliencePort, resiliencePort, payload)
			})
		}
		progress = func() uint64 {
			n := uint64(received)
			for p := 0; p < tb.Switch.Ports(); p++ {
				n += tb.Switch.PortCounters(p).PacketsForwarded
			}
			return n
		}
	}

	res := tb.K.RunUntilQuiescent(sim.QuiesceConfig{
		Progress:   progress,
		StallAfter: 300 * sim.Millisecond,
		Deadline:   3 * sim.Second,
	})
	tr.Quiesce = res.Outcome()
	tr.Elapsed = res.Elapsed
	tr.RecoveryEvents = recoveryEventCount(tb)
	tr.HeldOutputs = tb.Switch.HeldOutputs()
	_, _, injOut := tb.Injector.Engine(DirOutbound).Stats()
	_, _, injIn := tb.Injector.Engine(DirInbound).Stats()
	tr.Injections = injOut + injIn
	tr.ResetsOnWire = tb.Injector.Engine(DirOutbound).ResetsSeen() +
		tb.Injector.Engine(DirInbound).ResetsSeen()

	mon.Stop()
	tr.FlowsExported = mon.Ring().Exported()
	if at, ok := injected(); ok {
		tr.InjectedAt = sim.Duration(at - base)
		if e, found := mon.FirstEventAtOrAfter(at); found {
			tr.Detected = true
			tr.DetectLatency = sim.Duration(e.Time - at)
			tr.DetectSource = e.Source + "/" + e.Detail
		}
	}

	if recovery {
		s := rel.Stats()
		tr.Delivered = s.Delivered
		tr.Retransmits = s.Retransmits
		tr.GaveUp = s.GaveUp
		switch {
		case res.Stalled || res.DeadlineHit || rel.Outstanding() > 0:
			tr.Outcome = OutcomeHung
		case s.Delivered == uint64(tr.Sent):
			switch {
			case tr.RecoveryEvents > 0:
				tr.Outcome = OutcomeResetRecovered
			case s.Retransmits > 0:
				tr.Outcome = OutcomeRetransmitted
			default:
				tr.Outcome = OutcomeMasked
			}
		default:
			tr.Outcome = OutcomeDegraded
		}
		return tr
	}

	tr.Delivered = uint64(received)
	switch {
	case res.Stalled || res.DeadlineHit:
		tr.Outcome = OutcomeHung
	case tr.HeldOutputs > 0:
		// The network drained but a switch output is still owned: the
		// §4.3.1 wedge, waiting for a GAP that will never come.
		tr.Outcome = OutcomeHung
	case received == tr.Sent:
		tr.Outcome = OutcomeMasked
	default:
		tr.Outcome = OutcomeDropped
	}
	return tr
}

// RunResilience sweeps randomized injections with the recovery layer
// enabled, then reruns the identical faults (same seeds, same plans) with
// recovery disabled to reproduce the paper's failure modes side by side.
func RunResilience(opts ResilienceOptions) ResilienceResult {
	opts.fillDefaults()
	type pair struct{ on, off ResilienceTrial }
	pairs := RunTrials(opts.Trials, opts.Workers, func(t int) pair {
		seed := opts.Seed + int64(t)*7919
		return pair{
			on:  runResilienceTrial(seed, t, opts, true),
			off: runResilienceTrial(seed, t, opts, false),
		}
	})
	var res ResilienceResult
	for _, p := range pairs {
		res.Trials = append(res.Trials, p.on)
		res.Baseline = append(res.Baseline, p.off)
	}
	return res
}

// CountOutcomes tallies a sweep's triage.
func CountOutcomes(trials []ResilienceTrial) map[TrialOutcome]int {
	m := make(map[TrialOutcome]int)
	for _, t := range trials {
		m[t.Outcome]++
	}
	return m
}

// DetectionStats summarizes one sweep's detection axis.
type DetectionStats struct {
	// Injected counts trials whose fault actually landed on the wire.
	Injected int
	// NonMasked counts injected trials with any observable effect
	// (outcome != masked) — the denominator the ISSUE's ≥90% bound uses.
	NonMasked int
	// Detected / DetectedNonMasked count plane detections among them.
	Detected          int
	DetectedNonMasked int
	// Latencies holds the detection latencies of detected trials, sorted
	// ascending: the detection-latency CDF.
	Latencies []sim.Duration
}

// ComputeDetection tallies the detection axis of a sweep.
func ComputeDetection(trials []ResilienceTrial) DetectionStats {
	var s DetectionStats
	for _, t := range trials {
		if t.InjectedAt < 0 {
			continue
		}
		s.Injected++
		masked := t.Outcome == OutcomeMasked
		if !masked {
			s.NonMasked++
		}
		if t.Detected {
			s.Detected++
			if !masked {
				s.DetectedNonMasked++
			}
			s.Latencies = append(s.Latencies, t.DetectLatency)
		}
	}
	sort.Slice(s.Latencies, func(i, j int) bool { return s.Latencies[i] < s.Latencies[j] })
	return s
}

// CoverageNonMasked is the detected fraction of non-masked injected
// failures (1 when there were none).
func (s DetectionStats) CoverageNonMasked() float64 {
	if s.NonMasked == 0 {
		return 1
	}
	return float64(s.DetectedNonMasked) / float64(s.NonMasked)
}

// Quantile returns the q-th latency quantile (0 when nothing was detected).
func (s DetectionStats) Quantile(q float64) sim.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(s.Latencies)-1))
	return s.Latencies[i]
}

// formatDetection renders a trial's detection cell.
func formatDetection(t ResilienceTrial) string {
	switch {
	case t.InjectedAt < 0:
		return "-"
	case !t.Detected:
		return "miss"
	default:
		return fmt.Sprintf("%.1fms:%s", t.DetectLatency.Seconds()*1000, t.DetectSource)
	}
}

// FormatDetectionCDF renders the full detection-latency CDF, one step per
// detected trial.
func FormatDetectionCDF(s DetectionStats) string {
	var b strings.Builder
	for i, lat := range s.Latencies {
		fmt.Fprintf(&b, "  cdf    %7.1f ms  p=%.2f\n",
			lat.Seconds()*1000, float64(i+1)/float64(len(s.Latencies)))
	}
	return b.String()
}

// FormatResilience renders both sweeps, their tallies, and the detection
// axis the monitoring plane adds.
func FormatResilience(r ResilienceResult) string {
	var b strings.Builder
	render := func(title string, trials []ResilienceTrial) {
		fmt.Fprintf(&b, "%s\n", title)
		for _, t := range trials {
			fmt.Fprintf(&b, "  trial %2d  %-14s %-15s del=%d/%d retx=%d gaveup=%d resets=%d inj=%d det=%s (%s, %.1f ms)\n",
				t.ID, t.Family, t.Outcome, t.Delivered, t.Sent,
				t.Retransmits, t.GaveUp, t.RecoveryEvents, t.Injections,
				formatDetection(t), t.Quiesce, t.Elapsed.Seconds()*1000)
		}
		counts := CountOutcomes(trials)
		fmt.Fprintf(&b, "  tally:")
		for _, o := range []TrialOutcome{OutcomeMasked, OutcomeRetransmitted,
			OutcomeResetRecovered, OutcomeDegraded, OutcomeDropped, OutcomeHung} {
			if counts[o] > 0 {
				fmt.Fprintf(&b, " %s=%d", o, counts[o])
			}
		}
		fmt.Fprintf(&b, "\n")
		det := ComputeDetection(trials)
		fmt.Fprintf(&b, "  detect: %d/%d non-masked (%.0f%%), %d/%d overall, p50=%.1fms p90=%.1fms max=%.1fms\n",
			det.DetectedNonMasked, det.NonMasked, 100*det.CoverageNonMasked(),
			det.Detected, det.Injected,
			det.Quantile(0.5).Seconds()*1000, det.Quantile(0.9).Seconds()*1000,
			det.Quantile(1).Seconds()*1000)
		b.WriteString(FormatDetectionCDF(det))
	}
	render("recovery enabled:", r.Trials)
	render("recovery disabled (paper hardware):", r.Baseline)
	return b.String()
}
