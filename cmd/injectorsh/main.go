// Command injectorsh is an interactive serial shell to a simulated fault
// injector, the way a user at the RS-232 console would drive the real
// board (§3.3). The injector sits in a live two-node network; commands
// typed on stdin are carried over the simulated UART (at real serial-line
// cost in virtual time), and the board's responses are printed.
//
// Try:
//
//	MODE ON
//	COMPARE -- -- 18 18
//	CORRUPT REPLACE -- -- 19 --
//	STAT
//	CAP
//
// Lines starting with '!' are shell controls:
//
//	!run <ms>    advance the simulation (default 100 ms of traffic)
//	!stats       print network counters
//	!quit
//
// The -seed flag selects the simulation seed; identical seeds replay
// identical sessions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netfi/internal/campaign"
	"netfi/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (identical seeds replay identical sessions)")
	flag.Parse()
	tb := campaign.NewTestbed(campaign.TestbedConfig{Seed: *seed})
	load := tb.StartLoad(campaign.LoadConfig{})
	defer load.Stop()

	fmt.Println("netfi injector shell — type HELP-worthy commands (MODE/COMPARE/CORRUPT/CRC/INJECT/STAT/CAP/RESET/DIR), '!run N', '!stats', '!quit'")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("inj> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "!quit" || line == "!q":
			return
		case line == "!stats":
			for i, n := range tb.Nodes {
				fmt.Printf("node%d: %v\n", i, n.Interface().Counters())
			}
			fmt.Printf("load: sent=%d recv=%d corrupt-accepted=%d\n",
				load.Sent(), load.Received(), load.CorruptAccepted())
		case strings.HasPrefix(line, "!run"):
			ms := 100.0
			if f := strings.Fields(line); len(f) > 1 {
				if v, err := strconv.ParseFloat(f[1], 64); err == nil {
					ms = v
				}
			}
			tb.K.RunFor(sim.Duration(ms * float64(sim.Millisecond)))
			fmt.Printf("t=%v\n", tb.K.Now())
		default:
			before := len(tb.Console.Responses())
			tb.Console.Send(line)
			// Run until the serial exchange drains.
			tb.K.RunFor(5 * sim.Millisecond)
			for _, r := range tb.Console.Responses()[before:] {
				fmt.Println(r)
			}
		}
	}
}
