package monitor

import "math"

// Welford is the numerically stable single-pass mean/variance accumulator —
// the streaming half of the anomaly pipeline. It never stores samples, so
// a campaign can push one value per burst for minutes of simulated time.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one sample in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports samples seen.
func (w *Welford) Count() uint64 { return w.n }

// Mean reports the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev reports the running standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Z reports how many standard deviations x sits from the running mean;
// 0 while the accumulator lacks spread.
func (w *Welford) Z(x float64) float64 {
	sd := w.Stddev()
	if sd == 0 {
		return 0
	}
	return (x - w.mean) / sd
}

// EWMA is an exponentially weighted moving average, the fast-adapting
// companion to Welford's long-run statistics: the plane compares the two to
// call sustained shifts without reacting to single outliers.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an average with the given smoothing factor in (0, 1];
// higher alpha weighs recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Add folds one sample in. The first sample initializes the average.
func (e *EWMA) Add(x float64) {
	if !e.seen {
		e.value = x
		e.seen = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value reports the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Seen reports whether any sample has arrived.
func (e *EWMA) Seen() bool { return e.seen }

// ShiftDetector flags sustained latency shifts in a sample stream: it
// baselines with Welford over a warmup, then reports an anomaly when the
// EWMA departs from the baseline mean by more than zmax standard
// deviations. Comparing the smoothed average (not the raw sample) means a
// single late burst does not fire it, but a shifted distribution does.
type ShiftDetector struct {
	base   Welford
	recent *EWMA
	warmup uint64
	zmax   float64
}

// NewShiftDetector returns a detector requiring warmup baseline samples
// (zero selects 32) and firing beyond zmax standard deviations (zero
// selects 6).
func NewShiftDetector(warmup uint64, zmax float64) *ShiftDetector {
	if warmup == 0 {
		warmup = 32
	}
	if zmax == 0 {
		zmax = 6
	}
	return &ShiftDetector{recent: NewEWMA(0.2), warmup: warmup, zmax: zmax}
}

// Add folds one sample in and reports whether it completes a detected
// shift. During warmup every sample extends the baseline; after it the
// baseline freezes and only the EWMA tracks the stream.
func (d *ShiftDetector) Add(x float64) bool {
	if d.base.Count() < d.warmup {
		d.base.Add(x)
		d.recent.Add(x)
		return false
	}
	d.recent.Add(x)
	return math.Abs(d.base.Z(d.recent.Value())) >= d.zmax
}

// Z reports the current smoothed deviation from the baseline.
func (d *ShiftDetector) Z() float64 { return d.base.Z(d.recent.Value()) }

// Warm reports whether the baseline is complete.
func (d *ShiftDetector) Warm() bool { return d.base.Count() >= d.warmup }
