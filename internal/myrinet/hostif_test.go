package myrinet

import (
	"testing"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

// directPair wires two interfaces back to back (no switch): A's route to B
// is just the final byte.
func directPair(t *testing.T, k *sim.Kernel) (*testHost, *testHost) {
	t.Helper()
	a := newTestHost(k, "A", 1, 1, MappingConfig{})
	b := newTestHost(k, "B", 2, 2, MappingConfig{})
	Connect(k, DefaultLinkConfig("ab"), a.ifc, b.ifc)
	a.ifc.SetRoute(b.ifc.MAC(), []byte{RouteFinal})
	b.ifc.SetRoute(a.ifc.MAC(), []byte{RouteFinal})
	return a, b
}

func TestInterfaceDirectDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	if err := a.ifc.Send(b.ifc.MAC(), []byte("point to point")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 1 || string(b.received[0]) != "point to point" {
		t.Fatalf("B received %q", b.received)
	}
}

func TestInterfaceNoRouteError(t *testing.T) {
	k := sim.NewKernel(1)
	a, _ := directPair(t, k)
	if err := a.ifc.Send(MAC{9, 9, 9, 9, 9, 9}, []byte("x")); err == nil {
		t.Error("send without route succeeded")
	}
	if got := a.ifc.Counters().Drops[DropNoRoute]; got != 1 {
		t.Errorf("DropNoRoute = %d, want 1", got)
	}
}

func TestInterfaceTxQueueLimit(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewInterface(k, InterfaceConfig{
		Name: "A", MAC: MAC{2, 0, 0, 0, 0, 1}, ID: 1, TxQueueLimit: 2,
	})
	b := newTestHost(k, "B", 2, 2, MappingConfig{})
	Connect(k, DefaultLinkConfig("ab"), a, b.ifc)
	a.SetRoute(b.ifc.MAC(), []byte{RouteFinal})
	// Enqueue a burst without letting the kernel run: the ring holds the
	// in-flight packet plus two queued; the rest drop.
	for i := 0; i < 10; i++ {
		if err := a.Send(b.ifc.MAC(), make([]byte, 600)); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	drops := a.Counters().Drops[DropTxQueue]
	if drops == 0 {
		t.Fatal("no tx-queue drops despite tiny ring")
	}
	if got := uint64(len(b.received)) + drops; got != 10 {
		t.Errorf("delivered %d + dropped %d != 10", len(b.received), drops)
	}
}

func TestInterfaceOversizeStreamDropped(t *testing.T) {
	// A stream that never sees its GAP (merged packets after a lost GAP)
	// must be dropped as oversize and the parser must resync afterwards.
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	_ = a
	lc := b.ifc.Controller()
	// Feed in link-sized chunks (the parser drains between bursts, as on
	// the real wire) until well past the 4096-byte reassembly bound.
	chunk := make([]phy.Character, 500)
	for i := range chunk {
		chunk[i] = phy.DataChar(byte(i))
	}
	for i := 0; i < 12; i++ {
		lc.Receive(chunk)
	}
	lc.Receive([]phy.Character{GapChar()})
	if got := b.ifc.Counters().Drops[DropOversize]; got != 1 {
		t.Fatalf("DropOversize = %d, want 1", got)
	}
	// Resync: a clean packet right after is delivered.
	if err := a.ifc.Send(b.ifc.MAC(), []byte("after the monster")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 1 {
		t.Errorf("no delivery after oversize resync")
	}
}

func TestInterfaceTruncatedPacketDropped(t *testing.T) {
	k := sim.NewKernel(1)
	_, b := directPair(t, k)
	lc := b.ifc.Controller()
	lc.Receive([]phy.Character{phy.DataChar(0x00), phy.DataChar(0x01), GapChar()})
	if got := b.ifc.Counters().Drops[DropTruncated]; got != 1 {
		t.Errorf("DropTruncated = %d, want 1", got)
	}
}

func TestInterfacePacketObserver(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	var seen []*Packet
	b.ifc.SetPacketObserver(func(p *Packet) { seen = append(seen, p) })
	if err := a.ifc.Send(b.ifc.MAC(), []byte("observed")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(seen) != 1 {
		t.Fatalf("observer saw %d packets, want 1", len(seen))
	}
	if seen[0].Type != TypeData {
		t.Errorf("observed type = %#04x, want data", seen[0].Type)
	}
}

func TestInterfaceCRCDropOnWireCorruption(t *testing.T) {
	// Corrupt one byte in flight (via a tap on the link): the interface
	// must count a CRC drop and deliver nothing.
	k := sim.NewKernel(1)
	a, b := directPair(t, k)
	link := a.ifc.Controller().Out()
	orig := link.Dst()
	first := true
	link.SetDst(phy.ReceiverFunc(func(chars []phy.Character) {
		if first {
			for i, c := range chars {
				if c.IsData() && c.Byte() == 'p' {
					chars[i] = phy.DataChar('q')
					first = false
					break
				}
			}
		}
		orig.Receive(chars)
	}))
	if err := a.ifc.Send(b.ifc.MAC(), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got := b.ifc.Counters().Drops[DropCRC]; got != 1 {
		t.Errorf("DropCRC = %d, want 1", got)
	}
	if len(b.received) != 0 {
		t.Error("corrupted packet delivered")
	}
}

func TestInterfaceUnknownTypeDropped(t *testing.T) {
	k := sim.NewKernel(1)
	_, b := directPair(t, k)
	p := &Packet{Route: []byte{RouteFinal}, Type: 0x00FF, Payload: []byte("?")}
	b.ifc.Controller().Receive(p.EncodeChars())
	if got := b.ifc.Counters().Drops[DropUnknownType]; got != 1 {
		t.Errorf("DropUnknownType = %d, want 1", got)
	}
}

func TestInterfaceTypeHighBytesRejected(t *testing.T) {
	// The 4-byte type field's high half must be zero; a corrupted high
	// byte makes the packet unrecognizable even if the low half says
	// "data".
	k := sim.NewKernel(1)
	_, b := directPair(t, k)
	p := &Packet{Route: []byte{RouteFinal}, TypeHigh: 0x0100, Type: TypeData, Payload: make([]byte, 16)}
	b.ifc.Controller().Receive(p.EncodeChars())
	if got := b.ifc.Counters().Drops[DropUnknownType]; got != 1 {
		t.Errorf("DropUnknownType = %d, want 1", got)
	}
}

func TestInterfaceShortDataPayloadTruncated(t *testing.T) {
	k := sim.NewKernel(1)
	_, b := directPair(t, k)
	p := &Packet{Route: []byte{RouteFinal}, Type: TypeData, Payload: []byte{1, 2, 3}}
	b.ifc.Controller().Receive(p.EncodeChars())
	if got := b.ifc.Counters().Drops[DropTruncated]; got != 1 {
		t.Errorf("DropTruncated = %d, want 1", got)
	}
}

func TestCRC8IncrementalAdjustmentIdentity(t *testing.T) {
	// The switch's incremental CRC trick: for any packet, stripping the
	// first byte and xoring the correction term equals recomputing.
	body := []byte{0x81, 0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}
	full := bitstream.CRC8(body)
	corr := bitstream.CRC8Update(0, body[0])
	for range body[1:] {
		corr = bitstream.CRC8Update(corr, 0)
	}
	if got := full ^ corr; got != bitstream.CRC8(body[1:]) {
		t.Errorf("incremental adjust = %#02x, recompute = %#02x", got, bitstream.CRC8(body[1:]))
	}
}
