package monitor

import (
	"math"
	"testing"

	"netfi/internal/sim"
)

// refPhi is the straight-line reference the estimator is tested against: it
// rebuilds the window naively from the full arrival history on every query.
func refPhi(cfg PhiConfig, arrivals []sim.Time, now sim.Time) float64 {
	cfg.fillDefaults()
	var inter []sim.Duration
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d > 0 {
			inter = append(inter, sim.Duration(d))
		}
	}
	if len(inter) > cfg.Window {
		inter = inter[len(inter)-cfg.Window:]
	}
	if len(inter) < cfg.MinSamples || len(arrivals) == 0 {
		return 0
	}
	last := arrivals[len(arrivals)-1]
	if now <= last {
		return 0
	}
	elapsed := float64(now - last)
	exceeded := 0
	for _, s := range inter {
		if float64(s)*cfg.Scale <= elapsed {
			exceeded++
		}
	}
	if exceeded == 0 {
		return 0
	}
	return -math.Log10(1 - float64(exceeded)/float64(len(inter)+1))
}

func feedArrivals(d *PhiDetector, arrivals []sim.Time) {
	for _, at := range arrivals {
		d.Heartbeat(at)
	}
}

func TestPhiMatchesReference(t *testing.T) {
	cases := []struct {
		name     string
		cfg      PhiConfig
		arrivals []sim.Time // strictly increasing
		queries  []sim.Duration
	}{
		{
			name: "steady-2ms",
			arrivals: []sim.Time{
				0, sim.Time(2 * sim.Millisecond), sim.Time(4 * sim.Millisecond),
				sim.Time(6 * sim.Millisecond), sim.Time(8 * sim.Millisecond),
				sim.Time(10 * sim.Millisecond),
			},
			queries: []sim.Duration{
				sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond,
				5 * sim.Millisecond, 20 * sim.Millisecond,
			},
		},
		{
			name: "mixed-cadence",
			arrivals: []sim.Time{
				0, sim.Time(sim.Millisecond), sim.Time(3 * sim.Millisecond),
				sim.Time(13 * sim.Millisecond), sim.Time(14 * sim.Millisecond),
				sim.Time(24 * sim.Millisecond), sim.Time(25 * sim.Millisecond),
			},
			queries: []sim.Duration{
				sim.Millisecond, 4 * sim.Millisecond, 16 * sim.Millisecond,
				40 * sim.Millisecond,
			},
		},
		{
			name: "window-eviction",
			cfg:  PhiConfig{Window: 4},
			arrivals: func() []sim.Time {
				// 10 early 1 ms gaps then 4 late 5 ms gaps: only the
				// 5 ms samples must remain in the window.
				var a []sim.Time
				at := sim.Time(0)
				a = append(a, at)
				for i := 0; i < 10; i++ {
					at += sim.Time(sim.Millisecond)
					a = append(a, at)
				}
				for i := 0; i < 4; i++ {
					at += sim.Time(5 * sim.Millisecond)
					a = append(a, at)
				}
				return a
			}(),
			queries: []sim.Duration{
				2 * sim.Millisecond, 8 * sim.Millisecond, 30 * sim.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewPhiDetector(tc.cfg)
			feedArrivals(d, tc.arrivals)
			last := tc.arrivals[len(tc.arrivals)-1]
			for _, q := range tc.queries {
				now := last + sim.Time(q)
				got := d.Phi(now)
				want := refPhi(tc.cfg, tc.arrivals, now)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("Phi(last+%v) = %v, reference %v", q, got, want)
				}
			}
		})
	}
}

func TestPhiKnownValues(t *testing.T) {
	// 5 arrivals 2 ms apart: 4 samples of 2 ms each, Scale 1.5. With only
	// 4 samples the smoothing bounds phi at log10(5) ≈ 0.7, so the
	// suspicion checks use a threshold below that.
	d := NewPhiDetector(PhiConfig{Scale: 1.5, Threshold: 0.5})
	for i := 0; i < 5; i++ {
		d.Heartbeat(sim.Time(i) * sim.Time(2*sim.Millisecond))
	}
	last := sim.Time(4 * 2 * sim.Millisecond)

	// Silence below 3 ms (= 2 ms * 1.5): no sample exceeded, phi 0.
	if got := d.Phi(last + sim.Time(2*sim.Millisecond)); got != 0 {
		t.Fatalf("phi within jitter tolerance = %v, want 0", got)
	}
	// Silence past 3 ms: all 4 samples exceeded, P = 4/5, phi = -log10(1/5).
	want := -math.Log10(1 - 4.0/5.0)
	if got := d.Phi(last + sim.Time(3*sim.Millisecond)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("phi after silence = %v, want %v", got, want)
	}
	if !d.Suspect(last + sim.Time(3*sim.Millisecond)) {
		t.Fatal("detector should suspect after silence outlasts every sample")
	}
	if d.Suspect(last + sim.Time(sim.Millisecond)) {
		t.Fatal("detector should not suspect within the observed cadence")
	}
}

func TestPhiNeedsMinSamples(t *testing.T) {
	d := NewPhiDetector(PhiConfig{MinSamples: 3})
	d.Heartbeat(0)
	d.Heartbeat(sim.Time(sim.Millisecond))
	d.Heartbeat(sim.Time(2 * sim.Millisecond))
	// Two inter-arrival samples < MinSamples: phi must stay 0 forever.
	if got := d.Phi(sim.Time(sim.Second)); got != 0 {
		t.Fatalf("phi with %d samples = %v, want 0", d.SampleCount(), got)
	}
	d.Heartbeat(sim.Time(3 * sim.Millisecond))
	if got := d.Phi(sim.Time(sim.Second)); got <= 0 {
		t.Fatalf("phi with %d samples = %v, want > 0", d.SampleCount(), got)
	}
}

func TestPhiBounded(t *testing.T) {
	d := NewPhiDetector(PhiConfig{Window: 8})
	for i := 0; i < 100; i++ {
		d.Heartbeat(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	phi := d.Phi(sim.Time(10 * sim.Second))
	bound := math.Log10(float64(d.SampleCount() + 1))
	if phi > bound+1e-12 {
		t.Fatalf("phi = %v exceeds smoothing bound %v", phi, bound)
	}
	if math.IsInf(phi, 0) || math.IsNaN(phi) {
		t.Fatalf("phi = %v, want finite", phi)
	}
}

func TestPhiQueryAllocFree(t *testing.T) {
	d := NewPhiDetector(PhiConfig{})
	for i := 0; i < 70; i++ {
		d.Heartbeat(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	now := sim.Time(200 * sim.Millisecond)
	allocs := testing.AllocsPerRun(100, func() {
		d.Heartbeat(now)
		now += sim.Time(sim.Millisecond)
		_ = d.Phi(now)
	})
	if allocs > 0 {
		t.Fatalf("heartbeat+query allocates %.1f/run, want 0", allocs)
	}
}
