// The failure-recovery layer, end to end: the paper's hardware hangs when a
// packet-terminating GAP is lost on the wire — the switch output stays owned
// forever and a human at the console notices the counters stop moving
// (§4.3.1). This walkthrough reproduces that wedge with the rule engine,
// then reruns the identical fault with the recovery layer enabled: the
// switch's blocked-packet watchdog drops the wedged packet, a RESET symbol
// propagates down the held path, and the reliable transport retransmits the
// lost datagram.
//
// Then it runs the full randomized campaign (control symbols, GAPs, route
// bytes, stale CRCs, truncation) and prints the side-by-side triage.
package main

import (
	"fmt"

	"netfi/internal/campaign"
)

func main() {
	// One trial pair first: trial index 2 is the gap-drop-tail family —
	// the final packet's GAP is deleted so nothing ever closes the path.
	pair := campaign.RunResilience(campaign.ResilienceOptions{
		Seed: 7, Trials: 3, Messages: 4,
	})
	on, off := pair.Trials[2], pair.Baseline[2]

	fmt.Println("the wedge, recovery disabled (paper hardware):")
	fmt.Printf("  fault: %s (armed at %v)\n", off.Command, off.ArmAt)
	fmt.Printf("  delivered %d/%d, held switch outputs: %d, outcome: %s\n",
		off.Delivered, off.Sent, off.HeldOutputs, off.Outcome)

	fmt.Println("\nsame seed, same fault, recovery enabled:")
	fmt.Printf("  delivered %d/%d, retransmits: %d, recovery events: %d, outcome: %s\n",
		on.Delivered, on.Sent, on.Retransmits, on.RecoveryEvents, on.Outcome)
	fmt.Println("  (the blocked-packet watchdog reset the held path; the reliable")
	fmt.Println("   transport resent the lost datagram — nothing hung)")

	fmt.Println("\nfull sweep, every fault family twice:")
	res := campaign.RunResilience(campaign.ResilienceOptions{Seed: 7})
	fmt.Print(campaign.FormatResilience(res))

	fmt.Println("\nfull campaign: go run ./cmd/netfi resilience")
}
