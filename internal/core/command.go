package core

import (
	"fmt"
	"strconv"
	"strings"

	"netfi/internal/phy"
)

// CommandDecoder is the large FSM of §3.3 that receives configuration data
// from the communications handler and applies it to the injector circuitry;
// its companion output generator produces the ASCII acknowledgment/error
// codes sent back over the serial link.
//
// The command language (one ASCII line per command, LF- or CR-terminated):
//
//	DIR L|R                       select the direction configured next
//	MODE ON|OFF|ONCE              match mode
//	COMPARE e e e e               compare data+mask, oldest position first
//	CORRUPT TOGGLE e e e e        corrupt vector, toggle mode
//	CORRUPT REPLACE e e e e       corrupt vector+mask, replace mode
//	CRC ON|OFF                    recompute the trailing CRC-8 after injection
//	INJECT                        inject now (next even clock cycle)
//	STAT                          report chars/matches/injections
//	CAP                           report completed capture events
//	RESET                         clear configuration, rules and statistics
//
// The multi-rule trigger engine (internal/rules) is programmed with the
// RULE family (see command_rules.go for the grammar):
//
//	RULE ADD <id> [PRIO <p>] [MODE <m>] [ACT <a>] PAT <e...> [VEC <e...>]
//	RULE DEL <id>                 remove one rule
//	RULE LIST                     list rules with match/fire counters
//	RULE CLEAR                    remove all rules
//
// A window entry e is one of:
//
//	--      don't care (compare) / pass unchanged (corrupt)
//	XX      data character 0xXX, all 9 bits significant
//	cXX     control character 0xXX (D/C = 0), all 9 bits significant
//	xXX     compare only: match the 8 data bits, ignore the D/C flag
//	!XX     toggle only: flip data bits XX and the D/C flag
//
// Responses are "OK", "ERR <reason>", or data lines followed by "OK".
type CommandDecoder struct {
	dev *Device
	dir Direction

	line []byte
	out  func(byte)

	commands uint64
	errors   uint64
}

// maxLineLen bounds command assembly, as a hardware line buffer would.
const maxLineLen = 256

// NewCommandDecoder returns a decoder driving dev, initially configuring
// the left-to-right direction.
func NewCommandDecoder(dev *Device) *CommandDecoder {
	return &CommandDecoder{dev: dev}
}

// SetOutput registers the output generator's byte sink (toward the SPI /
// UART path back to the external system).
func (c *CommandDecoder) SetOutput(fn func(byte)) { c.out = fn }

// Direction reports which direction subsequent commands configure.
func (c *CommandDecoder) Direction() Direction { return c.dir }

// Commands reports executed commands and how many returned errors.
func (c *CommandDecoder) Commands() (total, errors uint64) { return c.commands, c.errors }

// InputByte feeds one byte from the communications handler. Lines are
// executed on CR or LF.
func (c *CommandDecoder) InputByte(b byte) {
	switch b {
	case '\r', '\n':
		if len(c.line) == 0 {
			return
		}
		line := string(c.line)
		c.line = c.line[:0]
		c.emit(c.Exec(line))
	default:
		if len(c.line) < maxLineLen {
			c.line = append(c.line, b)
		}
	}
}

// emit sends a response line through the output generator.
func (c *CommandDecoder) emit(resp string) {
	if c.out == nil {
		return
	}
	for i := 0; i < len(resp); i++ {
		c.out(resp[i])
	}
	c.out('\n')
}

// Exec executes one command line and returns the response (without the
// trailing newline). Campaign frameworks may call it directly; the serial
// path arrives through InputByte.
func (c *CommandDecoder) Exec(line string) string {
	c.commands++
	resp, err := c.exec(line)
	if err != nil {
		c.errors++
		return "ERR " + err.Error()
	}
	if resp == "" {
		return "OK"
	}
	return resp + "\nOK"
}

func (c *CommandDecoder) exec(line string) (string, error) {
	fields := strings.Fields(strings.ToUpper(strings.TrimSpace(line)))
	if len(fields) == 0 {
		return "", fmt.Errorf("empty command")
	}
	eng := c.dev.Engine(c.dir)
	switch fields[0] {
	case "DIR":
		if len(fields) != 2 {
			return "", fmt.Errorf("DIR needs L or R")
		}
		switch fields[1] {
		case "L":
			c.dir = LeftToRight
		case "R":
			c.dir = RightToLeft
		default:
			return "", fmt.Errorf("unknown direction %q", fields[1])
		}
		return "", nil

	case "MODE":
		if len(fields) != 2 {
			return "", fmt.Errorf("MODE needs ON, OFF or ONCE")
		}
		switch fields[1] {
		case "ON":
			eng.SetMatchMode(MatchOn)
		case "OFF":
			eng.SetMatchMode(MatchOff)
		case "ONCE":
			eng.SetMatchMode(MatchOnce)
		default:
			return "", fmt.Errorf("unknown mode %q", fields[1])
		}
		return "", nil

	case "COMPARE":
		if len(fields) != 1+WindowSize {
			return "", fmt.Errorf("COMPARE needs %d window entries", WindowSize)
		}
		cfg := eng.Config()
		for i, f := range fields[1:] {
			ch, mask, err := parseCompareEntry(f)
			if err != nil {
				return "", err
			}
			cfg.CompareData[i] = ch
			cfg.CompareMask[i] = mask
		}
		eng.Configure(cfg)
		return "", nil

	case "CORRUPT":
		if len(fields) != 2+WindowSize {
			return "", fmt.Errorf("CORRUPT needs a mode and %d entries", WindowSize)
		}
		cfg := eng.Config()
		switch fields[1] {
		case "TOGGLE":
			cfg.Corrupt = CorruptToggle
			for i, f := range fields[2:] {
				v, err := parseToggleEntry(f)
				if err != nil {
					return "", err
				}
				cfg.CorruptData[i] = v
				cfg.CorruptMask[i] = MaskFull
			}
		case "REPLACE":
			cfg.Corrupt = CorruptReplace
			for i, f := range fields[2:] {
				ch, mask, err := parseReplaceEntry(f)
				if err != nil {
					return "", err
				}
				cfg.CorruptData[i] = ch
				cfg.CorruptMask[i] = mask
			}
		default:
			return "", fmt.Errorf("unknown corrupt mode %q", fields[1])
		}
		eng.Configure(cfg)
		return "", nil

	case "CRC":
		if len(fields) != 2 {
			return "", fmt.Errorf("CRC needs ON or OFF")
		}
		cfg := eng.Config()
		switch fields[1] {
		case "ON":
			cfg.RecomputeCRC = true
		case "OFF":
			cfg.RecomputeCRC = false
		default:
			return "", fmt.Errorf("unknown CRC state %q", fields[1])
		}
		eng.Configure(cfg)
		return "", nil

	case "INJECT":
		eng.InjectNow()
		return "", nil

	case "STAT":
		chars, matches, inj := eng.Stats()
		return fmt.Sprintf("STAT dir=%v chars=%d matches=%d injections=%d rules=%d dropped=%d resets=%d",
			c.dir, chars, matches, inj, len(eng.Rules()), eng.DroppedChars(), eng.ResetsSeen()), nil

	case "RULE":
		return c.execRule(fields[1:], eng)

	case "CAP":
		events := eng.Capture().Events()
		var b strings.Builder
		fmt.Fprintf(&b, "CAP dir=%v events=%d", c.dir, len(events))
		for i, ev := range events {
			fmt.Fprintf(&b, "\nCAP[%d] pre=%d", i, ev.PreLen)
			for _, ch := range ev.Context {
				fmt.Fprintf(&b, " %v", ch)
			}
		}
		return b.String(), nil

	case "RESET":
		eng.Configure(Config{})
		eng.ClearRules()
		eng.Capture().Reset()
		return "", nil

	default:
		return "", fmt.Errorf("unknown command %q", fields[0])
	}
}

func parseHexByte(s string) (byte, error) {
	v, err := strconv.ParseUint(s, 16, 8)
	if err != nil {
		return 0, fmt.Errorf("bad hex byte %q", s)
	}
	return byte(v), nil
}

// Entry prefixes are disambiguated by length: a plain data byte is exactly
// two hex digits ("0F"); prefixed forms ("C0F", "X0F", "!0F") are exactly
// three characters, so hex bytes whose first digit is C (e.g. "CC") stay
// unambiguous.
func parseCompareEntry(f string) (phy.Character, CharMask, error) {
	switch {
	case f == "--":
		return 0, MaskNone, nil
	case len(f) == 3 && f[0] == 'C':
		b, err := parseHexByte(f[1:])
		if err != nil {
			return 0, 0, err
		}
		return phy.ControlChar(b), MaskFull, nil
	case len(f) == 3 && f[0] == 'X':
		b, err := parseHexByte(f[1:])
		if err != nil {
			return 0, 0, err
		}
		return phy.DataChar(b), MaskData, nil
	case len(f) == 2:
		b, err := parseHexByte(f)
		if err != nil {
			return 0, 0, err
		}
		return phy.DataChar(b), MaskFull, nil
	default:
		return 0, 0, fmt.Errorf("bad compare entry %q", f)
	}
}

func parseToggleEntry(f string) (phy.Character, error) {
	switch {
	case f == "--":
		return 0, nil
	case len(f) == 3 && f[0] == '!':
		b, err := parseHexByte(f[1:])
		if err != nil {
			return 0, err
		}
		return phy.Character(0x100) | phy.Character(b), nil
	case len(f) == 2:
		b, err := parseHexByte(f)
		if err != nil {
			return 0, err
		}
		return phy.Character(b), nil
	default:
		return 0, fmt.Errorf("bad toggle entry %q", f)
	}
}

func parseReplaceEntry(f string) (phy.Character, CharMask, error) {
	switch {
	case f == "--":
		return 0, MaskNone, nil
	case len(f) == 3 && f[0] == 'C':
		b, err := parseHexByte(f[1:])
		if err != nil {
			return 0, 0, err
		}
		return phy.ControlChar(b), MaskFull, nil
	case len(f) == 3 && f[0] == 'X':
		// Replace the 8 data bits only, preserving the D/C flag — the
		// 32-bit datapath view, where a control symbol becomes another
		// control symbol and a data byte another data byte.
		b, err := parseHexByte(f[1:])
		if err != nil {
			return 0, 0, err
		}
		return phy.Character(b), MaskData, nil
	case len(f) == 2:
		b, err := parseHexByte(f)
		if err != nil {
			return 0, 0, err
		}
		return phy.DataChar(b), MaskFull, nil
	default:
		return 0, 0, fmt.Errorf("bad replace entry %q", f)
	}
}
