package sim

import "time"

// QuiesceConfig parameterizes RunUntilQuiescent: a bounded run that tells a
// wedged simulation apart from a finished one. Campaigns need the
// distinction to be deterministic — the paper's real test bed detected hangs
// by a human watching the message counters stop moving; here the progress
// predicate is that counter.
type QuiesceConfig struct {
	// Progress returns a monotonically non-decreasing figure of merit
	// (messages delivered + packets dropped + resets — anything that
	// proves the system is still doing work). Required.
	Progress func() uint64
	// CheckInterval is how often progress is sampled. Zero selects 5 ms.
	CheckInterval Duration
	// StallAfter declares the run stalled when Progress has not advanced
	// for this long while events remain pending. Zero selects 200 ms —
	// comfortably past the long-period timeout and every recovery
	// watchdog, so a stall means nothing is coming to the rescue.
	StallAfter Duration
	// Deadline bounds the whole run (an endless-progress pathology: a
	// periodic source feeding an eternally dropping sink still advances
	// Progress forever). Zero selects 10 s.
	Deadline Duration
	// WallClock bounds the run in real (host) time — the escape hatch
	// for a livelocked fork whose event pathology outpaces the virtual
	// deadline (an event storm that makes virtual time crawl). Zero
	// disables the check: simulations are normally bounded in virtual
	// time so results stay machine-independent, and a chaos sweep opts
	// in per fork. Note a tripped wall clock makes that one result
	// timing-dependent; sweeps report it as a distinct outcome rather
	// than folding it into the deterministic classes.
	WallClock time.Duration
}

func (c *QuiesceConfig) fillDefaults() {
	if c.CheckInterval == 0 {
		c.CheckInterval = 5 * Millisecond
	}
	if c.StallAfter == 0 {
		c.StallAfter = 200 * Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = 10 * Second
	}
}

// QuiesceResult reports how a RunUntilQuiescent run ended. Exactly one of
// Drained, Stalled, DeadlineHit, WallClockHit is set.
type QuiesceResult struct {
	// Drained: the event queue emptied — the simulation is finished.
	Drained bool
	// Stalled: events remained pending but Progress froze for StallAfter.
	// With work outstanding this is a detected hang.
	Stalled bool
	// DeadlineHit: the run reached Deadline still making progress.
	DeadlineHit bool
	// WallClockHit: the configured real-time bound elapsed first.
	WallClockHit bool
	// Elapsed is virtual time consumed by this call.
	Elapsed Duration
	// FinalProgress is the last Progress sample.
	FinalProgress uint64
}

// Outcome renders the terminal condition ("drained", "stalled", "deadline",
// "wallclock").
func (r QuiesceResult) Outcome() string {
	switch {
	case r.Drained:
		return "drained"
	case r.Stalled:
		return "stalled"
	case r.WallClockHit:
		return "wallclock"
	default:
		return "deadline"
	}
}

// RunUntilQuiescent executes events in CheckInterval slices until the queue
// drains, progress stalls for StallAfter, or Deadline elapses. It is the
// campaign's hang detector: a fault that wedges the network leaves an
// eternal event chain (STOP refreshes, watchdog-free waits) that Run() would
// chase forever; this returns with Stalled set instead, deterministically —
// the same seed stalls at the same virtual time.
func (k *Kernel) RunUntilQuiescent(cfg QuiesceConfig) QuiesceResult {
	if cfg.Progress == nil {
		panic("sim: RunUntilQuiescent requires a Progress predicate")
	}
	cfg.fillDefaults()
	start := k.Now()
	last := cfg.Progress()
	lastChange := start
	var wallStart time.Time
	if cfg.WallClock > 0 {
		wallStart = time.Now()
	}
	for {
		k.RunFor(cfg.CheckInterval)
		now := k.Now()
		p := cfg.Progress()
		if p != last {
			last = p
			lastChange = now
		}
		res := QuiesceResult{Elapsed: now - start, FinalProgress: p}
		if _, pending := k.peek(); !pending {
			res.Drained = true
			return res
		}
		if now-lastChange >= cfg.StallAfter {
			res.Stalled = true
			return res
		}
		if now-start >= cfg.Deadline {
			res.DeadlineHit = true
			return res
		}
		if cfg.WallClock > 0 && time.Since(wallStart) >= cfg.WallClock {
			res.WallClockHit = true
			return res
		}
	}
}
