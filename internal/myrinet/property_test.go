package myrinet

import (
	"testing"
	"testing/quick"

	"netfi/internal/sim"
)

// Network-level conservation: for any batch of random-size payloads sprayed
// between three hosts through the switch, every message arrives exactly
// once, intact, at the right node — the uncorrupted network neither loses
// nor duplicates nor misdelivers.
func TestNetworkConservationProperty(t *testing.T) {
	type spray struct {
		Sizes []uint16
	}
	prop := func(s spray) bool {
		if len(s.Sizes) > 40 {
			s.Sizes = s.Sizes[:40]
		}
		k := sim.NewKernel(3)
		_, hosts, _ := threeNodeNet(t, k, false)
		sent := make([]int, 3)
		for i, raw := range s.Sizes {
			size := int(raw%1200) + 1
			from := i % 3
			to := (i + 1 + i%2) % 3
			if to == from {
				to = (to + 1) % 3
			}
			payload := make([]byte, size)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := hosts[from].ifc.Send(hosts[to].ifc.MAC(), payload); err != nil {
				return false
			}
			sent[to]++
		}
		k.Run()
		for i, h := range hosts {
			if len(h.received) != sent[i] {
				return false
			}
			if h.ifc.Counters().TotalDrops() != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Payload transparency: arbitrary byte contents — including bytes equal to
// control-symbol codes — survive the trip bit-exactly, because the D/C flag
// keeps data and control apart on the wire.
func TestNetworkPayloadTransparencyProperty(t *testing.T) {
	prop := func(payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{0x0C} // a GAP-valued data byte
		}
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		k := sim.NewKernel(5)
		_, hosts, _ := threeNodeNet(t, k, false)
		if err := hosts[0].ifc.Send(hosts[1].ifc.MAC(), payload); err != nil {
			return false
		}
		k.Run()
		if len(hosts[1].received) != 1 {
			return false
		}
		got := hosts[1].received[0]
		if len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Two-switch conservation: the same holds across a multi-hop path with
// per-hop route stripping and CRC adjustment.
func TestTwoSwitchConservationProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		k := sim.NewKernel(7)
		n := NewNetwork(k)
		sw0 := n.AddSwitch("sw0", 4)
		sw1 := n.AddSwitch("sw1", 4)
		a := newTestHost(k, "A", 1, 1, MappingConfig{})
		b := newTestHost(k, "B", 2, 2, MappingConfig{})
		n.ConnectHost(a.ifc, sw0, 0)
		n.ConnectHost(b.ifc, sw1, 1)
		n.ConnectSwitches(sw0, 3, sw1, 2)
		a.ifc.SetRoute(b.ifc.MAC(), RouteTo(3, 1))
		for i, sz := range sizes {
			payload := make([]byte, int(sz)+1)
			payload[0] = byte(i)
			if err := a.ifc.Send(b.ifc.MAC(), payload); err != nil {
				return false
			}
		}
		k.Run()
		if len(b.received) != len(sizes) {
			return false
		}
		for i, msg := range b.received {
			if msg[0] != byte(i) {
				return false
			}
		}
		return b.ifc.Counters().Drops[DropCRC] == 0
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
