package campaign

import "testing"

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		name            string
		sent, recv      uint64
		corruptAccepted uint64
		want            string
	}{
		{"clean run", 100, 100, 0, "no-effect"},
		{"drops only", 100, 90, 0, "passive"},
		{"corrupt data accepted", 100, 99, 1, "active"},
		{"active dominates passive", 100, 50, 2, "active"},
	}
	for _, c := range cases {
		l := &Load{sent: c.sent, received: c.recv, corruptAccepted: c.corruptAccepted}
		got := l.Classify()
		if got.Classification != c.want {
			t.Errorf("%s: classification = %q, want %q", c.name, got.Classification, c.want)
		}
		if got.Sent != c.sent || got.Received != c.recv {
			t.Errorf("%s: counters not carried through", c.name)
		}
	}
}

func TestLoadLossRate(t *testing.T) {
	l := &Load{sent: 200, received: 150}
	if got := l.LossRate(); got != 0.25 {
		t.Errorf("LossRate = %v, want 0.25", got)
	}
	empty := &Load{}
	if got := empty.LossRate(); got != 0 {
		t.Errorf("empty LossRate = %v, want 0", got)
	}
}
