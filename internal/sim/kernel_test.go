package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelTiesBreakByInsertionOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want insertion order", order)
		}
	}
}

func TestKernelNowAdvancesExactly(t *testing.T) {
	k := NewKernel(1)
	k.At(12_500, func() {
		if k.Now() != 12_500 {
			t.Errorf("Now() = %v inside event, want 12500ps", k.Now())
		}
	})
	k.Run()
	if k.Now() != 12_500 {
		t.Errorf("Now() = %v after run, want 12500ps", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	id := k.At(10, func() { ran = true })
	k.Cancel(id)
	k.Run()
	if ran {
		t.Error("canceled event ran")
	}
	if k.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", k.Processed())
	}
}

func TestKernelCancelIsIdempotent(t *testing.T) {
	k := NewKernel(1)
	id := k.At(10, func() {})
	k.Cancel(id)
	k.Cancel(id)
	k.Run()
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	k := NewKernel(1)
	var ran []Time
	k.At(10, func() { ran = append(ran, 10) })
	k.At(100, func() { ran = append(ran, 100) })
	k.RunUntil(50)
	if k.Now() != 50 {
		t.Errorf("Now() = %v, want 50", k.Now())
	}
	if len(ran) != 1 || ran[0] != 10 {
		t.Errorf("ran = %v, want [10]", ran)
	}
	k.Run()
	if len(ran) != 2 {
		t.Errorf("after Run, ran = %v, want both events", ran)
	}
}

func TestRunUntilInclusiveOfDeadline(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.At(50, func() { ran = true })
	k.RunUntil(50)
	if !ran {
		t.Error("event at the deadline did not run")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := Time(1); i <= 100; i++ {
		k.At(i, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	if k.Pending() != 97 {
		t.Errorf("Pending() = %d, want 97", k.Pending())
	}
}

func TestKernelDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth == 0 {
				return
			}
			d := Duration(k.Rand().Intn(1000) + 1)
			k.After(d, func() {
				out = append(out, int64(k.Now()))
				schedule(depth - 1)
				schedule(depth - 1)
			})
		}
		schedule(6)
		k.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKernelTimeStringFormats(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{12_500, "12.5ns"},
		{1_000_000, "1us"},
		{50_000_000_000, "50ms"},
		{2_000_000_000_000, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of non-negative delays, events execute in
// non-decreasing time order and the count of executed events matches.
func TestKernelOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel(7)
		var times []Time
		for _, d := range delays {
			k.After(Duration(d), func() { times = append(times, k.Now()) })
		}
		k.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerFiresAfterPeriod(t *testing.T) {
	k := NewKernel(1)
	fired := Time(-1)
	tm := NewTimer(k, 200*Nanosecond, func() { fired = k.Now() })
	tm.Reset()
	k.Run()
	if fired != 200*Nanosecond {
		t.Errorf("timer fired at %v, want 200ns", fired)
	}
	if tm.Fires() != 1 {
		t.Errorf("Fires() = %d, want 1", tm.Fires())
	}
}

func TestTimerResetExtendsDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := Time(-1)
	tm := NewTimer(k, 100*Nanosecond, func() { fired = k.Now() })
	tm.Reset()
	// Keep resetting every 50 ns until t = 500 ns; the timer must fire at
	// 600 ns, one full period after the last reset.
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*50*Nanosecond, tm.Reset)
	}
	k.Run()
	if fired != 600*Nanosecond {
		t.Errorf("timer fired at %v, want 600ns", fired)
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	k := NewKernel(1)
	tm := NewTimer(k, 100, func() { t.Error("stopped timer fired") })
	tm.Reset()
	tm.Stop()
	if tm.Armed() {
		t.Error("Armed() = true after Stop")
	}
	k.Run()
}

func TestTimerSetPeriod(t *testing.T) {
	k := NewKernel(1)
	var fired Time
	tm := NewTimer(k, 100, func() { fired = k.Now() })
	tm.SetPeriod(250)
	if tm.Period() != 250 {
		t.Fatalf("Period() = %v, want 250", tm.Period())
	}
	tm.Reset()
	k.Run()
	if fired != 250 {
		t.Errorf("fired at %v, want 250", fired)
	}
}
