package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// Snapshot determinism, mirroring sched_equiv_test.go: randomized event
// programs — nested scheduling, cancels (live, canceled, stale), delays
// straddling every wheel level and the heap — forked via Mapper/Clone at
// arbitrary points mid-run. The forked world and the original must both
// play out the exact trace an un-snapshotted run produces: a snapshot may
// never perturb event order, timing, cancellation bookkeeping, or the
// kernel's random stream on either side of the cut.

// forkProg is one randomized program's world: it owns the trace and the
// registered cancel targets, draws all randomness from the kernel's
// stream (which clones with the kernel), and schedules exclusively in arg
// form so pending events survive a fork.
type forkProg struct {
	k      *Kernel
	trace  []traceEntry
	ids    []EventID
	budget int
	tag    int
}

func newForkProg(k *Kernel) *forkProg {
	p := &forkProg{k: k, budget: 300}
	for i := 0; i < 15; i++ {
		p.schedule()
	}
	return p
}

func (p *forkProg) schedule() {
	p.budget--
	p.tag++
	p.ids = append(p.ids, p.k.AfterArg(randomDelay(p.k.Rand()), forkProgFire, p))
}

func forkProgFire(a any) {
	p := a.(*forkProg)
	p.trace = append(p.trace, traceEntry{p.k.Now(), p.tag})
	rng := p.k.Rand()
	for n := rng.Intn(3); n > 0 && p.budget > 0; n-- {
		p.schedule()
	}
	if len(p.ids) > 0 && rng.Intn(4) == 0 {
		// Cancel a random registered event — live, already canceled, or
		// already fired (stale EventID); all must stay safe across a fork.
		p.k.Cancel(p.ids[rng.Intn(len(p.ids))])
	}
}

// Clone forks the program into the mapper's new world: trace and budget
// copy, pending-event handles remap through the event table.
func (p *forkProg) Clone(m *Mapper) *forkProg {
	p2 := &forkProg{
		k:      m.Kernel(),
		trace:  append([]traceEntry(nil), p.trace...),
		ids:    make([]EventID, len(p.ids)),
		budget: p.budget,
		tag:    p.tag,
	}
	for i, id := range p.ids {
		p2.ids[i] = m.MapEventID(id)
	}
	m.Put(p, p2)
	return p2
}

// runForkProgram runs seed's program to completion with no snapshot,
// returning the reference trace.
func runForkProgram(seed int64) []traceEntry {
	p := newForkProg(NewKernel(seed))
	for p.k.Step() {
	}
	return p.trace
}

func forkAt(t *testing.T, p *forkProg) *forkProg {
	t.Helper()
	m := NewMapper()
	p.k.Clone(m)
	p2 := p.Clone(m)
	if err := m.Finish(); err != nil {
		t.Fatalf("fork at event %d: %v", len(p.trace), err)
	}
	return p2
}

func TestForkDeterminismRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		want := runForkProgram(seed)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}

		// Re-run the same program, forking at a seed-derived cut point;
		// then keep forking the FORK at further cut points — snapshots of
		// snapshots must stay exact too.
		cutRng := rand.New(rand.NewSource(seed * 31))
		cut := cutRng.Intn(len(want))
		p := newForkProg(NewKernel(seed))
		for len(p.trace) < cut && p.k.Step() {
		}
		forks := []*forkProg{forkAt(t, p)}
		if cut2 := cut + cutRng.Intn(len(want)-cut); cut2 > cut {
			f := forks[0]
			for len(f.trace) < cut2 && f.k.Step() {
			}
			forks = append(forks, forkAt(t, f))
		}

		// The original must be unperturbed by having been snapshotted.
		for p.k.Step() {
		}
		if !reflect.DeepEqual(p.trace, want) {
			t.Fatalf("seed %d: original diverged after snapshot at event %d", seed, cut)
		}
		for fi, f := range forks {
			for f.k.Step() {
			}
			if !reflect.DeepEqual(f.trace, want) {
				for i := range want {
					if i >= len(f.trace) || f.trace[i] != want[i] {
						t.Fatalf("seed %d fork %d (cut %d): traces diverge at event %d: fork %+v, reference %+v",
							seed, fi, cut, i,
							f.trace[i:min(i+3, len(f.trace))], want[i:min(i+3, len(want))])
					}
				}
				t.Fatalf("seed %d fork %d: fork trace has %d extra events",
					seed, fi, len(f.trace)-len(want))
			}
		}
	}
}

// TestForkDivergence pins that forks are genuinely independent worlds:
// after the cut, scheduling in one must not appear in the other.
func TestForkDivergence(t *testing.T) {
	p := newForkProg(NewKernel(3))
	for len(p.trace) < 10 && p.k.Step() {
	}
	f := forkAt(t, p)

	fired := ""
	p.k.After(Microsecond, func() { fired += "orig" })
	f.k.After(Microsecond, func() { fired += "fork" })
	origPending, forkPending := p.k.Pending(), f.k.Pending()
	if origPending != forkPending {
		t.Fatalf("pending diverged at fork: orig %d, fork %d", origPending, forkPending)
	}
	for p.k.Step() {
	}
	if fired != "orig" {
		t.Fatalf("after draining original, fired = %q, want %q", fired, "orig")
	}
	for f.k.Step() {
	}
	if fired != "origfork" {
		t.Errorf("after draining fork, fired = %q, want %q", fired, "origfork")
	}
}

// TestForkClosureDiscipline pins the guard: a pending closure-form event
// cannot cross a snapshot and must fail the fork with a diagnostic, not
// silently misbehave.
func TestForkClosureDiscipline(t *testing.T) {
	k := NewKernel(1)
	k.After(Millisecond, func() {})
	m := NewMapper()
	k.Clone(m)
	if err := m.Finish(); err == nil {
		t.Fatal("fork with a pending closure-form event succeeded, want error")
	}
}
