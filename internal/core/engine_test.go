package core

import (
	"testing"
	"testing/quick"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
)

func dataChars(b []byte) []phy.Character { return phy.DataChars(b) }

func runThrough(e *Engine, chars []phy.Character) []phy.Character {
	out := e.Process(chars)
	return append(out, e.Flush()...)
}

func bytesOf(chars []phy.Character) []byte {
	var out []byte
	for _, c := range chars {
		if c.IsData() {
			out = append(out, c.Byte())
		}
	}
	return out
}

func TestEnginePassThroughIdentity(t *testing.T) {
	// With the zero config the engine must be perfectly transparent.
	prop := func(data []byte) bool {
		e := NewEngine(DefaultSlackChars)
		out := runThrough(e, dataChars(data))
		if len(out) != len(data) {
			return false
		}
		for i, c := range out {
			if !c.IsData() || c.Byte() != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEnginePreservesControlSymbols(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	in := []phy.Character{
		phy.ControlChar(0x0C),
		phy.DataChar(0x81),
		phy.DataChar(0x04),
		phy.ControlChar(0x0F),
		phy.ControlChar(0x0C),
	}
	out := runThrough(e, in)
	if len(out) != len(in) {
		t.Fatalf("out %d chars, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("char %d = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestEngineHoldsBackSlack(t *testing.T) {
	e := NewEngine(8)
	out := e.Process(dataChars(make([]byte, 20)))
	if len(out) != 12 {
		t.Errorf("released %d chars, want 12 (20 in - 8 slack)", len(out))
	}
	if e.Pending() != 8 {
		t.Errorf("Pending() = %d, want 8", e.Pending())
	}
	rest := e.Flush()
	if len(rest) != 8 {
		t.Errorf("Flush released %d, want 8", len(rest))
	}
}

func TestEngineReplaceExample(t *testing.T) {
	// The paper's typical scenario (§3.3): match 0x1818 within the window
	// and replace with 0x1918.
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match: MatchOn,
		CompareData: [WindowSize]phy.Character{
			0, 0, phy.DataChar(0x18), phy.DataChar(0x18),
		},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskFull, MaskFull},
		Corrupt:     CorruptReplace,
		CorruptData: [WindowSize]phy.Character{
			0, 0, phy.DataChar(0x19), phy.DataChar(0x18),
		},
		CorruptMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskFull, MaskFull},
	})
	in := []byte{0x00, 0x11, 0x18, 0x18, 0x22, 0x33}
	got := bytesOf(runThrough(e, dataChars(in)))
	want := []byte{0x00, 0x11, 0x19, 0x18, 0x22, 0x33}
	if string(got) != string(want) {
		t.Errorf("out = %x, want %x", got, want)
	}
	_, matches, inj := e.Stats()
	if matches != 1 || inj != 1 {
		t.Errorf("matches=%d injections=%d, want 1/1", matches, inj)
	}
}

func TestEngineToggleMode(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0xA0)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0x01)},
	})
	in := []byte{0xA0, 0xBB}
	got := bytesOf(runThrough(e, dataChars(in)))
	if got[0] != 0xA1 {
		t.Errorf("toggled byte = %#02x, want 0xA1", got[0])
	}
	if got[1] != 0xBB {
		t.Errorf("neighbour byte = %#02x, want untouched 0xBB", got[1])
	}
}

func TestEngineToggleDCFlagTurnsControlIntoData(t *testing.T) {
	// Toggling the D/C flag converts a control symbol into a data byte —
	// a fault class only an in-path injector can produce.
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.ControlChar(0x0F)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0x100)},
	})
	in := []phy.Character{phy.ControlChar(0x0F)}
	out := runThrough(e, in)
	if !out[0].IsData() || out[0].Byte() != 0x0F {
		t.Errorf("out = %v, want D:0f", out[0])
	}
}

func TestEngineControlSymbolReplacement(t *testing.T) {
	// The Table 4 campaign's core operation: STOP (0x0F) -> GO (0x03).
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.ControlChar(0x0F)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptReplace,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.ControlChar(0x03)},
		CorruptMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
	})
	in := []phy.Character{
		phy.DataChar(0x0F), // data byte 0x0F must NOT match (D/C differs)
		phy.ControlChar(0x0F),
		phy.ControlChar(0x0C),
	}
	out := runThrough(e, in)
	if !out[0].IsData() || out[0].Byte() != 0x0F {
		t.Errorf("data byte 0x0F was corrupted: %v", out[0])
	}
	if out[1].IsData() || out[1].Byte() != 0x03 {
		t.Errorf("STOP not replaced by GO: %v", out[1])
	}
	if out[2].IsData() || out[2].Byte() != 0x0C {
		t.Errorf("GAP disturbed: %v", out[2])
	}
}

func TestEngineOnceModeSingleInjection(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	cfg := Config{
		Match:       MatchOnce,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x55)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0xFF)},
	}
	e.Configure(cfg)
	in := []byte{0x55, 0x00, 0x55, 0x00, 0x55}
	got := bytesOf(runThrough(e, dataChars(in)))
	if got[0] != 0xAA {
		t.Errorf("first match not injected: %#02x", got[0])
	}
	if got[2] != 0x55 || got[4] != 0x55 {
		t.Errorf("subsequent matches injected in ONCE mode: % x", got)
	}
	_, matches, inj := e.Stats()
	if matches != 3 || inj != 1 {
		t.Errorf("matches=%d injections=%d, want 3/1", matches, inj)
	}
	// Re-arming repeats exactly one more.
	e.SetMatchMode(MatchOnce)
	got2 := bytesOf(runThrough(e, dataChars(in)))
	if got2[0] != 0xAA || got2[2] != 0x55 {
		t.Errorf("re-armed ONCE misbehaved: % x", got2)
	}
}

func TestEngineMatchOffNeverInjects(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOff,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x55)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0xFF)},
	})
	got := bytesOf(runThrough(e, dataChars([]byte{0x55, 0x55})))
	if got[0] != 0x55 || got[1] != 0x55 {
		t.Errorf("OFF mode injected: % x", got)
	}
}

func TestEngineInjectNow(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOff,
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0x80)},
	})
	// Prime the window, then request an injection: the next even cycle
	// corrupts the newest window position.
	_ = e.Process(dataChars([]byte{1, 2, 3, 4}))
	e.InjectNow()
	out := append(e.Process(dataChars([]byte{5})), e.Flush()...)
	got := bytesOf(out)
	// Characters 1..4 already pushed; injection lands on char 5.
	want := []byte{1, 2, 3, 4, 0x85}
	if string(got) != string(want) {
		t.Errorf("out = %x, want %x", got, want)
	}
}

func TestEngineMaskedMatchAnyDontCareBits(t *testing.T) {
	// "By using the mask commands, we can specify any arbitrary number of
	// bits between 0 and 32" (§3.3): match on the top nibble only.
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x40)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, 0x1F0},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0x0F)},
	})
	in := []byte{0x41, 0x4F, 0x51}
	got := bytesOf(runThrough(e, dataChars(in)))
	if got[0] != 0x4E || got[1] != 0x40 {
		t.Errorf("masked matches wrong: % x", got)
	}
	if got[2] != 0x51 {
		t.Errorf("non-matching byte corrupted: %#02x", got[2])
	}
}

func TestEngineCRCRecompute(t *testing.T) {
	// Build a packet, corrupt one payload byte with CRC recompute on: the
	// retransmitted packet must carry a VALID CRC over the corrupted
	// contents (§3.2 real-time triggering mechanism).
	body := []byte{0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}
	wire := append(append([]byte{}, body...), bitstream.CRC8(body))
	chars := dataChars(wire)
	chars = append(chars, phy.ControlChar(0x0C)) // GAP

	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:        MatchOn,
		CompareData:  [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0xAD)},
		CompareMask:  [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:      CorruptReplace,
		CorruptData:  [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0x11)},
		CorruptMask:  [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		RecomputeCRC: true,
	})
	out := bytesOf(runThrough(e, chars))
	if len(out) != len(wire) {
		t.Fatalf("out %d bytes, want %d", len(out), len(wire))
	}
	if out[5] != 0x11 {
		t.Fatalf("payload byte not corrupted: %#02x", out[5])
	}
	gotBody, gotCRC := out[:len(out)-1], out[len(out)-1]
	if bitstream.CRC8(gotBody) != gotCRC {
		t.Errorf("retransmitted CRC invalid: crc=%#02x want %#02x", gotCRC, bitstream.CRC8(gotBody))
	}
	if gotCRC == wire[len(wire)-1] {
		t.Error("CRC unchanged despite corrupted payload")
	}
}

func TestEngineNoCRCRecomputeLeavesStaleCRC(t *testing.T) {
	// Without recompute the corrupted packet keeps the stale CRC — the
	// destination drops it (the §4.3.3 address-corruption outcome).
	body := []byte{0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD}
	wire := append(append([]byte{}, body...), bitstream.CRC8(body))
	chars := append(dataChars(wire), phy.ControlChar(0x0C))

	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match:       MatchOn,
		CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(0xDE)},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskNone, MaskFull},
		Corrupt:     CorruptToggle,
		CorruptData: [WindowSize]phy.Character{0, 0, 0, phy.Character(0xFF)},
	})
	out := bytesOf(runThrough(e, chars))
	gotBody, gotCRC := out[:len(out)-1], out[len(out)-1]
	if bitstream.CRC8(gotBody) == gotCRC {
		t.Error("CRC still valid; expected a stale CRC after corruption")
	}
}

func TestEngineCRCRecomputeOnlyTouchesCorruptedPackets(t *testing.T) {
	// An uncorrupted packet passing a CRC-recompute-enabled engine must be
	// bit-identical (no spurious substitution).
	body := []byte{0x00, 0x00, 0x00, 0x04, 1, 2, 3}
	wire := append(append([]byte{}, body...), bitstream.CRC8(body))
	chars := append(dataChars(wire), phy.ControlChar(0x0C))
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{Match: MatchOff, RecomputeCRC: true})
	out := bytesOf(runThrough(e, chars))
	if string(out) != string(wire) {
		t.Errorf("pass-through altered packet: %x vs %x", out, wire)
	}
}

func TestEngineStatsCountChars(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	_ = runThrough(e, dataChars(make([]byte, 100)))
	chars, _, _ := e.Stats()
	if chars != 100 {
		t.Errorf("chars = %d, want 100", chars)
	}
}

func TestEngineSlackValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("slack below window size did not panic")
		}
	}()
	NewEngine(2)
}

// Property: pass-through across many random mixed bursts preserves the
// exact character sequence.
func TestEngineBurstBoundaryTransparency(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		e := NewEngine(DefaultSlackChars)
		var want, got []byte
		for _, chunk := range chunks {
			want = append(want, chunk...)
			got = append(got, bytesOf(e.Process(dataChars(chunk)))...)
		}
		got = append(got, bytesOf(e.Flush())...)
		return string(got) == string(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a match split across burst boundaries still triggers (the
// compare window persists between bursts).
func TestEngineMatchAcrossBurstBoundary(t *testing.T) {
	e := NewEngine(DefaultSlackChars)
	e.Configure(Config{
		Match: MatchOn,
		CompareData: [WindowSize]phy.Character{
			0, 0, phy.DataChar(0x18), phy.DataChar(0x18),
		},
		CompareMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskFull, MaskFull},
		Corrupt:     CorruptReplace,
		CorruptData: [WindowSize]phy.Character{0, 0, phy.DataChar(0x19), 0},
		CorruptMask: [WindowSize]CharMask{MaskNone, MaskNone, MaskFull, MaskNone},
	})
	var out []phy.Character
	out = append(out, e.Process(dataChars([]byte{0xAA, 0x18}))...)
	out = append(out, e.Process(dataChars([]byte{0x18, 0xBB}))...)
	out = append(out, e.Flush()...)
	got := bytesOf(out)
	want := []byte{0xAA, 0x19, 0x18, 0xBB}
	if string(got) != string(want) {
		t.Errorf("out = %x, want %x", got, want)
	}
}
