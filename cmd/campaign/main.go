// Command campaign runs declarative fault-injection campaigns from JSON
// spec files — the "automated fashion" of §1, where NFTAPE scripts drive
// the injector, reset the network to a known good state between runs, and
// collect the results.
//
//	campaign spec.json [more.json ...]
//	campaign -json spec.json      # machine-readable results
//	campaign -example             # print a ready-to-run example spec
//
// A spec names a workload, a list of injector activations (raw COMPARE/
// CORRUPT/CRC command lines plus arming and duty metering), and the
// measurement window; the result classifies the outcome as active,
// passive, or no-effect per §4.4.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"netfi/internal/campaign"
)

const exampleSpec = `{
  "name": "gap-to-go",
  "seed": 7,
  "duration_ms": 1700,
  "tx_queue_limit": 4,
  "faults": [
    {
      "direction": "both",
      "commands": [
        "COMPARE -- -- -- X0C",
        "CORRUPT REPLACE -- -- -- X03"
      ],
      "mode": "on",
      "duty_on_ms": 1,
      "duty_period_ms": 100
    }
  ]
}`

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit results as JSON")
	example := fs.Bool("example", false, "print an example spec and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *example {
		fmt.Println(exampleSpec)
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: campaign [-json] <spec.json> ...   (or -example)")
		return 2
	}
	exit := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			exit = 1
			continue
		}
		spec, err := campaign.ParseSpec(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", path, err)
			exit = 1
			continue
		}
		res := campaign.RunSpec(spec)
		if *asJSON {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
				exit = 1
				continue
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Print(campaign.FormatSpecResult(res))
	}
	return exit
}
