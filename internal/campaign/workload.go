package campaign

import (
	"netfi/internal/host"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Load is the campaign workload of §4.2: "a simple UDP packet generation
// program, running concurrently with the standard Unix ping program with
// the flood option" — modeled as synchronized bursts from every node,
// alternating destinations packet by packet so switch outputs stay
// contended and flow control (STOP/GO) is continuously exercised.
//
// Payloads carry a tag and sequence so receivers can verify integrity at
// the application level: a packet that arrives with a damaged tag yet
// passed every checksum is an ACTIVE fault (incorrect data passed to a
// higher level, §4.4); anything merely missing is PASSIVE.
type Load struct {
	tb     *Testbed
	burst  int
	period sim.Duration
	size   int

	running bool
	seq     uint32

	sent            uint64
	received        uint64
	corruptAccepted uint64
	perNodeRecv     []uint64

	socks []*host.Socket // per-node receivers, kept so a fork can rebind
}

const (
	loadSrcPort = 9000
	loadDstPort = 9001
	// loadTag marks valid workload payloads; its bytes avoid every
	// control-symbol code ("the symbol mask we corrupted did not appear
	// in the message itself", §4.3.1).
	loadTagLen = 4
)

var loadTag = [loadTagLen]byte{'N', 'F', 'T', 'A'}

// LoadConfig parameterizes the workload.
type LoadConfig struct {
	// Burst is packets per node per period. Zero selects 10.
	Burst int
	// Period is the burst interval. Zero selects 12.5 ms (so each node
	// offers the ~800 msg/s that matches the paper's 48000 msgs/minute
	// healthy baseline).
	Period sim.Duration
	// Size is the UDP payload length. Zero selects 512: a packet then
	// occupies the wire for ~540 character periods, longer than the
	// slack-buffer high watermark, so destination blocking reliably
	// drives the blocked input across its watermark and STOP/GO symbols
	// flow — the precondition for the Table 4 corruption campaign.
	Size int
}

// StartLoad binds receivers on every node and begins the burst schedule.
func (tb *Testbed) StartLoad(cfg LoadConfig) *Load {
	if tb.load != nil {
		panic("campaign: load already started")
	}
	if cfg.Burst == 0 {
		cfg.Burst = 10
	}
	if cfg.Period == 0 {
		cfg.Period = 12_500 * sim.Microsecond
	}
	if cfg.Size == 0 {
		cfg.Size = 512
	}
	if cfg.Size < loadTagLen+5 {
		panic("campaign: load payload too small for tag+sequence")
	}
	l := &Load{
		tb:          tb,
		burst:       cfg.Burst,
		period:      cfg.Period,
		size:        cfg.Size,
		perNodeRecv: make([]uint64, len(tb.Nodes)),
	}
	for i, n := range tb.Nodes {
		i := i
		s, err := n.Bind(loadDstPort, func(_ myrinet.MAC, _ uint16, data []byte) {
			l.onReceive(i, data)
		})
		if err != nil {
			panic(err)
		}
		l.socks = append(l.socks, s)
	}
	l.running = true
	tb.load = l
	l.tick()
	return l
}

// Stop halts the burst schedule (in-flight packets still drain).
func (l *Load) Stop() { l.running = false }

// Sent and Received report application-level counts across all nodes.
func (l *Load) Sent() uint64 { return l.sent }

// Received reports tag-valid datagrams delivered to the applications.
func (l *Load) Received() uint64 { return l.received }

// CorruptAccepted reports datagrams that reached an application with a
// damaged tag — evidence of an ACTIVE fault.
func (l *Load) CorruptAccepted() uint64 { return l.corruptAccepted }

// NodeReceived reports per-node deliveries.
func (l *Load) NodeReceived(i int) uint64 { return l.perNodeRecv[i] }

// LossRate is 1 - received/sent (0 when nothing was sent).
func (l *Load) LossRate() float64 {
	if l.sent == 0 {
		return 0
	}
	return 1 - float64(l.received)/float64(l.sent)
}

func (l *Load) tick() {
	if !l.running {
		return
	}
	n := len(l.tb.Nodes)
	rng := l.tb.K.Rand()
	for i, node := range l.tb.Nodes {
		for p := 0; p < l.burst; p++ {
			// Pick a random other node per packet: bursts from
			// different senders then collide at switch outputs,
			// keeping destination blocking and STOP/GO continuously
			// exercised.
			dst := (i + 1 + rng.Intn(n-1)) % n
			node.SendUDP(NodeMAC(dst), loadSrcPort, loadDstPort, l.payload())
			l.sent++
		}
	}
	l.tb.K.AfterArg(l.period, loadTick, l)
}

func loadTick(a any) { a.(*Load).tick() }

// payload builds a tagged, sequence-stamped body free of control-symbol
// byte values.
func (l *Load) payload() []byte {
	data := make([]byte, l.size)
	copy(data, loadTag[:])
	l.seq++
	s := l.seq
	for i := 0; i < 5; i++ {
		data[loadTagLen+i] = 0x40 | byte(s&0x0F) // 0x40..0x4F: clear of control codes
		s >>= 4
	}
	for i := loadTagLen + 5; i < len(data); i++ {
		data[i] = 0x55
	}
	return data
}

func (l *Load) onReceive(node int, data []byte) {
	if len(data) >= loadTagLen && [loadTagLen]byte(data[:loadTagLen]) == loadTag {
		l.received++
		l.perNodeRecv[node]++
		return
	}
	l.corruptAccepted++
}

// Outcome classifies a run per §4.4's active/passive terminology.
type Outcome struct {
	Sent            uint64
	Received        uint64
	LossRate        float64
	CorruptAccepted uint64
	Classification  string
}

// Classify summarizes the load's counters.
func (l *Load) Classify() Outcome {
	o := Outcome{
		Sent:            l.sent,
		Received:        l.received,
		LossRate:        l.LossRate(),
		CorruptAccepted: l.corruptAccepted,
	}
	switch {
	case o.CorruptAccepted > 0:
		o.Classification = "active"
	case o.Received < o.Sent:
		o.Classification = "passive"
	default:
		o.Classification = "no-effect"
	}
	return o
}
