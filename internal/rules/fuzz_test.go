package rules

import (
	"math/rand"
	"testing"
)

// fuzzCase derives a rule set and a symbol stream from raw bytes, compiles
// the set twice (DFA under a tight budget, so fallback is exercised too,
// and forced lanes), runs both over the stream, and checks every fire mask
// against the naive reference matcher. The compiler must never panic: raw
// field values are taken from the bytes with only light shaping, so invalid
// rules (bad gaps, overlong vectors) reach Validate regularly and must come
// back as errors.
type byteCursor struct {
	data []byte
	pos  int
}

func (c *byteCursor) next() byte {
	if c.pos >= len(c.data) {
		c.pos++
		return byte(c.pos * 37) // deterministic tail when input runs dry
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

// fuzzMasks keeps the don't-care classes small enough (≥5 significant bits)
// that subset construction stays fast under thousands of cases; the zero
// mask is the full wildcard step.
var fuzzMasks = []uint16{SymbolMask, 0x0FF, 0x17F, 0x1F3, 0x1F0, 0}

// buildFuzzRules shapes bytes into 1..4 rules. Roughly one rule in eight
// comes out invalid (gap out of range), exercising the error path.
func buildFuzzRules(c *byteCursor) []Rule {
	nRules := 1 + int(c.next()%4)
	rs := make([]Rule, 0, nRules)
	for i := 0; i < nRules; i++ {
		r := Rule{ID: i, Mode: ModeOn, Action: ActionCapture}
		nSteps := 1 + int(c.next()%4)
		for j := 0; j < nSteps; j++ {
			s := Step{
				Sym:  uint16(c.next()) | uint16(c.next()&1)<<8,
				Mask: fuzzMasks[int(c.next())%len(fuzzMasks)],
			}
			if j > 0 {
				// Mostly small gaps; occasionally unbounded or (invalid)
				// past MaxGap.
				switch g := int(c.next() % 16); {
				case g < 10:
					s.Gap = g % 4
				case g < 13:
					s.Gap = GapUnbounded
				case g < 15:
					s.Gap = g // 13..14: valid mid-range
				default:
					s.Gap = MaxGap + 3 // invalid
				}
			}
			r.Steps = append(r.Steps, s)
		}
		rs = append(rs, r)
	}
	return rs
}

// buildFuzzStream emits symbols biased toward the rules' step symbols so
// matches actually happen.
func buildFuzzStream(c *byteCursor, rs []Rule, n int) []uint16 {
	var pool []uint16
	for _, r := range rs {
		for _, s := range r.Steps {
			pool = append(pool, s.Sym)
		}
	}
	stream := make([]uint16, n)
	for i := range stream {
		b := c.next()
		if b&1 == 0 && len(pool) > 0 {
			stream[i] = pool[int(b>>1)%len(pool)]
		} else {
			stream[i] = uint16(b) | uint16(c.next()&1)<<8
		}
	}
	return stream
}

// checkFuzzCase is the shared oracle for FuzzRuleCompile and the fixed
// 10k-case CI sweep.
func checkFuzzCase(t *testing.T, data []byte) {
	c := &byteCursor{data: data}
	rs := buildFuzzRules(c)

	dfa, errD := Compile(rs, Options{MaxDFAStates: 64})
	lanes, errL := Compile(rs, Options{ForceLanes: true})
	if (errD == nil) != (errL == nil) {
		t.Fatalf("compile disagreement: dfa err=%v, lanes err=%v", errD, errL)
	}
	if errD != nil {
		return // invalid rule set: rejected without panicking, done
	}

	stream := buildFuzzStream(c, rs, 48)
	ed, el := NewExecutor(dfa), NewExecutor(lanes)
	for p, sym := range stream {
		fd, fl := ed.Step(sym), el.Step(sym)
		if fd != fl {
			t.Fatalf("pos %d: dfa fired %#x, lanes fired %#x (stats %+v)", p, fd, fl, dfa.Stats())
		}
		var ref uint64
		for i := range rs {
			if MatchesAt(&rs[i], stream, p) {
				ref |= 1 << uint(i)
			}
		}
		if fd != ref {
			t.Fatalf("pos %d: compiled fired %#x, reference %#x\nrules: %+v\nstream: %v",
				p, fd, ref, rs, stream[:p+1])
		}
	}
}

// FuzzRuleCompile asserts the compiler never panics and that compiled
// execution (both DFA and lane fallback) agrees with the reference matcher.
// Run with: go test -fuzz=FuzzRuleCompile ./internal/rules
func FuzzRuleCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0x18, 1, 0xFF, 2, 0x19, 0, 0x00, 5})
	f.Add([]byte{3, 1, 0x0C, 0, 1, 1, 0x0F, 3, 12, 2, 0x40, 2, 15, 7, 7, 7})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 16; i++ {
		buf := make([]byte, 8+rng.Intn(56))
		rng.Read(buf)
		f.Add(buf)
	}
	f.Fuzz(checkFuzzCase)
}

// TestRuleCompileEquivalence10k is the CI-mode form of the fuzz target: ten
// thousand seeded random cases through the same oracle, so every ordinary
// `go test` run re-proves DFA/lane/reference agreement without the fuzzing
// engine.
func TestRuleCompileEquivalence10k(t *testing.T) {
	cases := 10_000
	if testing.Short() {
		cases = 1_000
	}
	rng := rand.New(rand.NewSource(20020623)) // the paper's venue date
	buf := make([]byte, 96)
	for i := 0; i < cases; i++ {
		rng.Read(buf)
		checkFuzzCase(t, buf)
		if t.Failed() {
			t.Fatalf("diverged on case %d", i)
		}
	}
}
