// Package rules generalizes the injector's single compare-data/don't-care
// register pair (DESIGN §2, internal/core) into a programmable multi-rule
// trigger engine: many simultaneous patterns compiled into one automaton and
// evaluated per 9-bit link symbol at line rate, the way line-rate DPI taps
// compile rule sets into nondeterministic automata on the FPGA fabric.
//
// A Rule is a sequence of (compare symbol, don't-care mask) steps with
// optional gap wildcards between steps, an action (capture-only, toggle,
// replace, drop), a trigger mode (on/off/once/after-N/within-window) and a
// priority for conflict resolution when several rules fire on the same
// symbol. Compile lowers a rule set into a flat DFA transition table by
// subset construction under a configurable state budget; when the DFA would
// blow past the budget it falls back to per-rule NFA lanes (one bitset-
// simulated automaton per rule). Executor runs either form with zero
// allocations in the per-symbol hot path.
//
// The package is deliberately free of any dependency on the datapath: it
// matches on bare 9-bit symbols (the Myrinet D/C flag plus 8 data bits, as
// seen on the FPGA's parallel interface) and reports which rules fired;
// applying the corrupt vectors to the FIFO is internal/core's job.
package rules

import "fmt"

// Symbol geometry: Myrinet link characters are 9 bits wide (D/C flag +
// byte), so the automaton alphabet has 512 symbols.
const (
	SymbolBits  = 9
	SymbolSpace = 1 << SymbolBits
	SymbolMask  = SymbolSpace - 1
)

// Engine limits. MaxRules is bounded by the uint64 fire bitmask; the
// per-rule NFA must fit a 64-bit lane bitset.
const (
	MaxRules      = 64
	MaxSteps      = 16
	MaxGap        = 32
	MaxCorrupt    = 8
	maxRuleStates = 64
)

// GapUnbounded, as a Step.Gap value, allows any number of arbitrary symbols
// before the step.
const GapUnbounded = -1

// Step is one position of a rule's compare sequence: the symbol must satisfy
// (sym ^ Sym) & Mask == 0. A zero Mask is a single-symbol wildcard. Gap
// admits up to Gap arbitrary symbols (GapUnbounded: any number) between the
// previous step's symbol and this one; it must be zero on the first step,
// where it would be meaningless — matching is unanchored in the stream.
type Step struct {
	Sym  uint16
	Mask uint16
	Gap  int
}

// Action selects what the datapath does when the rule fires.
type Action int

// Actions. Capture only marks the capture ring and counts; Toggle flips the
// corrupt-data bits in the matched window tail; Replace substitutes
// corrupt-data bits under the corrupt mask; Drop deletes characters from the
// retransmitted stream.
const (
	ActionCapture Action = iota
	ActionToggle
	ActionReplace
	ActionDrop
)

// String returns the action mnemonic (the serial command language token).
func (a Action) String() string {
	switch a {
	case ActionToggle:
		return "TOGGLE"
	case ActionReplace:
		return "REPLACE"
	case ActionDrop:
		return "DROP"
	default:
		return "CAP"
	}
}

// Mode gates a rule's trigger, extending the paper's on/off/once match modes
// with counted and windowed arming.
type Mode int

// Modes. ModeAfterN skips the first N matches and fires on every subsequent
// one; ModeWindow fires only on matches within the first N symbols after the
// executor is (re-)armed.
const (
	ModeOff Mode = iota
	ModeOn
	ModeOnce
	ModeAfterN
	ModeWindow
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case ModeOn:
		return "ON"
	case ModeOnce:
		return "ONCE"
	case ModeAfterN:
		return "AFTER"
	case ModeWindow:
		return "WIN"
	default:
		return "OFF"
	}
}

// Rule is one trigger: a step sequence, a gated action, and the corrupt
// vectors the datapath applies to the stream tail when the rule fires.
type Rule struct {
	// ID names the rule in the serial command language and statistics.
	ID int
	// Priority resolves conflicts when several corrupting rules fire on
	// the same symbol: corruptions apply in ascending priority, so the
	// highest-priority rule's bytes land last and win.
	Priority int
	// Mode gates the trigger; N parameterizes ModeAfterN (matches to
	// skip) and ModeWindow (armed-window length in symbols).
	Mode Mode
	N    uint64
	// Action selects the datapath effect.
	Action Action
	// Steps is the compare sequence, oldest first.
	Steps []Step
	// CorruptData/CorruptMask are the error vectors for Toggle and
	// Replace, applied to the newest len(CorruptData) stream characters
	// at match time, rightmost entry on the matching character. Toggle
	// ignores CorruptMask.
	CorruptData []uint16
	CorruptMask []uint16
	// DropCount is the number of trailing characters Drop deletes.
	DropCount int
}

// nfaSize is the rule's NFA state count: a start state plus, per step, its
// bounded-gap chain and a post state.
func (r *Rule) nfaSize() int {
	n := 1
	for _, s := range r.Steps {
		n++
		if s.Gap > 0 {
			n += s.Gap
		}
	}
	return n
}

// Validate checks the rule against the engine limits.
func (r *Rule) Validate() error {
	if len(r.Steps) == 0 {
		return fmt.Errorf("rules: rule %d has no steps", r.ID)
	}
	if len(r.Steps) > MaxSteps {
		return fmt.Errorf("rules: rule %d has %d steps, max %d", r.ID, len(r.Steps), MaxSteps)
	}
	for i, s := range r.Steps {
		if s.Sym > SymbolMask || s.Mask > SymbolMask {
			return fmt.Errorf("rules: rule %d step %d outside the %d-bit symbol space", r.ID, i, SymbolBits)
		}
		if s.Gap != GapUnbounded && (s.Gap < 0 || s.Gap > MaxGap) {
			return fmt.Errorf("rules: rule %d step %d gap %d outside 0..%d", r.ID, i, s.Gap, MaxGap)
		}
		if i == 0 && s.Gap != 0 {
			return fmt.Errorf("rules: rule %d has a gap before its first step", r.ID)
		}
	}
	if n := r.nfaSize(); n > maxRuleStates {
		return fmt.Errorf("rules: rule %d expands to %d NFA states, max %d", r.ID, n, maxRuleStates)
	}
	switch r.Action {
	case ActionCapture:
	case ActionToggle:
		if len(r.CorruptData) == 0 || len(r.CorruptData) > MaxCorrupt {
			return fmt.Errorf("rules: rule %d toggle vector length %d outside 1..%d", r.ID, len(r.CorruptData), MaxCorrupt)
		}
	case ActionReplace:
		if len(r.CorruptData) == 0 || len(r.CorruptData) > MaxCorrupt {
			return fmt.Errorf("rules: rule %d replace vector length %d outside 1..%d", r.ID, len(r.CorruptData), MaxCorrupt)
		}
		if len(r.CorruptMask) != len(r.CorruptData) {
			return fmt.Errorf("rules: rule %d replace mask length %d != data length %d", r.ID, len(r.CorruptMask), len(r.CorruptData))
		}
	case ActionDrop:
		if r.DropCount < 1 || r.DropCount > MaxCorrupt {
			return fmt.Errorf("rules: rule %d drop count %d outside 1..%d", r.ID, r.DropCount, MaxCorrupt)
		}
	default:
		return fmt.Errorf("rules: rule %d has unknown action %d", r.ID, r.Action)
	}
	switch r.Mode {
	case ModeOff, ModeOn, ModeOnce, ModeAfterN, ModeWindow:
	default:
		return fmt.Errorf("rules: rule %d has unknown mode %d", r.ID, r.Mode)
	}
	return nil
}

// clone deep-copies the rule so a compiled Program cannot alias caller
// slices.
func (r Rule) clone() Rule {
	r.Steps = append([]Step(nil), r.Steps...)
	r.CorruptData = append([]uint16(nil), r.CorruptData...)
	r.CorruptMask = append([]uint16(nil), r.CorruptMask...)
	return r
}

// MatchesAt is the naive per-rule reference matcher: it reports whether the
// rule's step sequence matches some substring of stream whose final step
// consumes stream[p]. It is the executable specification the compiled
// automata are fuzz-checked against; it allocates and backtracks freely and
// must never be used on the hot path.
func MatchesAt(r *Rule, stream []uint16, p int) bool {
	if p < 0 || p >= len(stream) {
		return false
	}
	return refMatch(r.Steps, stream, p)
}

// refMatch checks steps against stream ending at p, recursing backward
// through the gap alternatives.
func refMatch(steps []Step, stream []uint16, p int) bool {
	j := len(steps) - 1
	s := steps[j]
	if p < 0 || (stream[p]&SymbolMask^s.Sym)&s.Mask != 0 {
		return false
	}
	if j == 0 {
		return true
	}
	g := s.Gap
	if g == GapUnbounded || g > p {
		g = p
	}
	for k := 0; k <= g; k++ {
		if refMatch(steps[:j], stream, p-1-k) {
			return true
		}
	}
	return false
}
