// Package myrinet is a character-accurate simulator of the Myrinet LAN the
// paper's fault-injection campaign targeted: 9-bit link characters (D/C flag
// + 8 data bits), GAP/GO/STOP/IDLE control symbols, slack-buffer flow control
// with watermarks and STOP/GO generation, cut-through crossbar switches with
// source-route byte stripping and per-hop CRC-8 recomputation, host
// interfaces running a Myrinet Control Program (MCP) with the scout-based
// mapping protocol, and the short-period (16 character) and long-period
// (~4 M character, about 50 ms) timeouts whose interactions the campaign of
// §4 exposes.
package myrinet

import "netfi/internal/phy"

// Control symbol codes, as given in §4.3.1 of the paper. The encodings keep
// a Hamming distance of at least two between any two symbols.
const (
	// SymIdle fills the link when nothing is transmitted. Receivers take
	// no action on it.
	SymIdle byte = 0x00
	// SymGo resumes a stopped transmitter (flow control).
	SymGo byte = 0x03
	// SymGap separates packets: it marks the previous data character as
	// the packet tail. GAPs never appear inside a packet.
	SymGap byte = 0x0C
	// SymStop pauses the remote transmitter (flow control, issued when a
	// slack buffer reaches its high watermark).
	SymStop byte = 0x0F
	// SymReset is the forward-reset symbol of the recovery layer: a link
	// controller that gives up on a wedged path (long-period termination,
	// stuck-STOP watchdog) sends it downstream; every hop that receives it
	// tears down in-flight state for the path and propagates it onward.
	// 0x05 keeps the code set's Hamming distance of at least two from
	// IDLE/GO/GAP/STOP and from their tolerated degraded forms (0x02, 0x08).
	SymReset byte = 0x05
)

// Symbol is the decoded meaning of a control character.
type Symbol int

// Decoded control symbols. Start at 1 so the zero value is distinguishable
// as "not decoded".
const (
	SymbolUnknown Symbol = iota // unrecognized code: ignored like IDLE
	SymbolIdle
	SymbolGo
	SymbolGap
	SymbolStop
	SymbolReset
)

// String returns the symbol mnemonic.
func (s Symbol) String() string {
	switch s {
	case SymbolIdle:
		return "IDLE"
	case SymbolGo:
		return "GO"
	case SymbolGap:
		return "GAP"
	case SymbolStop:
		return "STOP"
	case SymbolReset:
		return "RESET"
	default:
		return "UNKNOWN"
	}
}

// Code returns the canonical wire code for a symbol. Unknown maps to IDLE.
func (s Symbol) Code() byte {
	switch s {
	case SymbolGo:
		return SymGo
	case SymbolGap:
		return SymGap
	case SymbolStop:
		return SymStop
	case SymbolReset:
		return SymReset
	default:
		return SymIdle
	}
}

// DecodeControl decodes a received control character code into a symbol,
// implementing the error-tolerant rules quoted in §4.3.1: the canonical
// codes decode exactly; certain single-fault patterns still decode to their
// original symbol (0x08 is still recognized as STOP, 0x02 as GO); anything
// else is treated as IDLE/unknown and ignored. This protection is what makes
// single bit errors mostly harmless and forces the campaign to use targeted
// symbol *replacement* (burst errors) instead.
func DecodeControl(code byte) Symbol {
	switch code {
	case SymIdle:
		return SymbolIdle
	case SymGo:
		return SymbolGo
	case SymGap:
		return SymbolGap
	case SymStop:
		return SymbolStop
	case SymReset:
		return SymbolReset
	case 0x08: // single 1->0 fault on STOP, per the paper
		return SymbolStop
	case 0x02: // single 1->0 fault on GO, per the paper
		return SymbolGo
	default:
		return SymbolUnknown
	}
}

// Control characters as phy characters, for convenience.
var (
	charIdle  = phy.ControlChar(SymIdle)
	charGo    = phy.ControlChar(SymGo)
	charGap   = phy.ControlChar(SymGap)
	charStop  = phy.ControlChar(SymStop)
	charReset = phy.ControlChar(SymReset)
)

// GapChar returns the GAP control character.
func GapChar() phy.Character { return charGap }

// StopChar returns the STOP control character.
func StopChar() phy.Character { return charStop }

// GoChar returns the GO control character.
func GoChar() phy.Character { return charGo }

// IdleChar returns the IDLE control character.
func IdleChar() phy.Character { return charIdle }

// ResetChar returns the forward-reset control character.
func ResetChar() phy.Character { return charReset }
