package core

import (
	"testing"
	"testing/quick"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// Engine invariant: characters are conserved — for any configuration and
// any input stream, exactly len(input) characters come out (Process +
// Flush), in order by position; the injector can corrupt but never create
// or destroy characters.
func TestEngineCharacterConservationProperty(t *testing.T) {
	prop := func(data []byte, cmpData [WindowSize]byte, cmpMask [WindowSize]byte,
		corData [WindowSize]byte, toggle bool, matchOn bool) bool {
		e := NewEngine(DefaultSlackChars)
		cfg := Config{Corrupt: CorruptReplace}
		if toggle {
			cfg.Corrupt = CorruptToggle
		}
		if matchOn {
			cfg.Match = MatchOn
		}
		for i := 0; i < WindowSize; i++ {
			cfg.CompareData[i] = phy.DataChar(cmpData[i])
			cfg.CompareMask[i] = CharMask(cmpMask[i])
			cfg.CorruptData[i] = phy.DataChar(corData[i])
			cfg.CorruptMask[i] = MaskData
		}
		e.Configure(cfg)
		out := append(e.Process(phy.DataChars(data)), e.Flush()...)
		return len(out) == len(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Engine invariant: with the trigger off and no inject-now, the engine is
// the identity function no matter what sits in the compare/corrupt
// registers.
func TestEngineIdentityWhenDisarmedProperty(t *testing.T) {
	prop := func(data []byte, cmp, cor [WindowSize]byte) bool {
		e := NewEngine(DefaultSlackChars)
		cfg := Config{Match: MatchOff, Corrupt: CorruptToggle}
		for i := 0; i < WindowSize; i++ {
			cfg.CompareData[i] = phy.DataChar(cmp[i])
			cfg.CompareMask[i] = MaskFull
			cfg.CorruptData[i] = phy.Character(cor[i])
		}
		e.Configure(cfg)
		out := append(e.Process(phy.DataChars(data)), e.Flush()...)
		if len(out) != len(data) {
			return false
		}
		for i, c := range out {
			if !c.IsData() || c.Byte() != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Engine invariant: toggle corruption is confined to matched windows —
// every differing output character lies within WindowSize characters of a
// position where the compare pattern matched the input.
func TestEngineCorruptionLocalityProperty(t *testing.T) {
	prop := func(data []byte, pattern byte) bool {
		e := NewEngine(DefaultSlackChars)
		e.Configure(Config{
			Match:       MatchOn,
			CompareData: [WindowSize]phy.Character{0, 0, 0, phy.DataChar(pattern)},
			CompareMask: [WindowSize]CharMask{0, 0, 0, MaskFull},
			Corrupt:     CorruptToggle,
			CorruptData: [WindowSize]phy.Character{0, 0, 0, 0x01},
		})
		out := append(e.Process(phy.DataChars(data)), e.Flush()...)
		if len(out) != len(data) {
			return false
		}
		for i, c := range out {
			if c.Byte() == data[i] {
				continue
			}
			// A differing byte must itself have been the match (the
			// corrupt vector only touches the newest window slot).
			if data[i] != pattern {
				return false
			}
			if c.Byte() != pattern^0x01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Device invariant: the splice is exactly-once and order-preserving for
// arbitrary burst shapes.
func TestDeviceOrderPreservationProperty(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		k := newPropKernel()
		_, cable, _, right := propSplice(k)
		var want []byte
		seq := byte(0)
		for _, chunk := range chunks {
			if len(chunk) == 0 {
				continue
			}
			if len(chunk) > 200 {
				chunk = chunk[:200]
			}
			stamped := make([]byte, len(chunk))
			for i := range stamped {
				stamped[i] = seq
				seq++
			}
			want = append(want, stamped...)
			cable.LeftToRight.Send(phy.DataChars(stamped))
		}
		k.Run()
		if len(right.chars) != len(want) {
			return false
		}
		for i, c := range right.chars {
			if c.Byte() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Helpers for the device property test.

func newPropKernel() *sim.Kernel { return sim.NewKernel(1) }

// propSplice builds a spliced cable with sinks, without a testing.T.
func propSplice(k *sim.Kernel) (*Device, *phy.Cable, *sink, *sink) {
	left := &sink{k: k}
	right := &sink{k: k}
	cfg := phy.LinkConfig{Name: "prop", CharPeriod: charPeriod, PropDelay: 5 * sim.Nanosecond}
	cable := phy.NewCable(k, cfg, left, right)
	dev := NewDevice(k, DeviceConfig{Name: "prop-inj"})
	dev.Insert(cable)
	return dev, cable, left, right
}
