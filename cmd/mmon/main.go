// Command mmon is the Myrinet monitoring program of §4.2: it runs a
// simulated Fig. 10 test bed under load, periodically sampling the mapper's
// network map, every node's routing table, and the link/port counters —
// "the status of the network and the associated information (like routing
// tables and control registers) were monitored with the Myrinet monitoring
// program mmon".
//
// Flags:
//
//	-seed N      simulation seed (default 1)
//	-duration D  simulated observation time in seconds (default 2)
//	-interval D  sampling interval in milliseconds (default 500)
//	-corrupt     corrupt the tapped node's identity toward the controller
//	             mid-run, reproducing Fig. 11 live
//	-live        arm the monitoring plane: per-sample phi values, live flow
//	             counts, and anomaly events alongside the counter dumps
package main

import (
	"flag"
	"fmt"
	"os"

	"netfi/internal/campaign"
	"netfi/internal/monitor"
	"netfi/internal/netmap"
	"netfi/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Float64("duration", 2, "observation time, simulated seconds")
	interval := flag.Float64("interval", 500, "sampling interval, simulated milliseconds")
	corrupt := flag.Bool("corrupt", false, "corrupt the tapped node's identity to the controller's mid-run")
	live := flag.Bool("live", false, "arm the monitoring plane (phi values, flows, anomalies)")
	flag.Parse()

	tb := campaign.NewTestbed(campaign.TestbedConfig{
		Seed:      *seed,
		Mapping:   true,
		MapPeriod: 200 * sim.Millisecond,
	})
	load := tb.StartLoad(campaign.LoadConfig{})
	mapper := tb.Nodes[len(tb.Nodes)-1].Interface().MCP()

	total := sim.Duration(*duration * float64(sim.Second))
	step := sim.Duration(*interval * float64(sim.Millisecond))

	// -live arms the monitoring plane over the same test bed: flow export
	// on every attached switch input, an accrual detector plus latency-shift
	// tracker on every host's arriving stream (the continuous load is the
	// heartbeat), and the standard loss probe.
	var mon *monitor.Plane
	var hostTaps []*monitor.Tap
	printedEvents := 0
	if *live {
		// The load is bursty (12.5 ms periods), so the arrival cadence at
		// each host is bimodal: raise the phi threshold above the level
		// the inter-burst silences reach, or every period would flap the
		// detectors.
		mon = monitor.NewPlane(tb.K, monitor.Config{
			Phi: monitor.PhiConfig{Threshold: 2},
		})
		for p := 0; p < tb.Switch.Ports(); p++ {
			if tb.Switch.Attached(p) {
				mon.TapSwitchPort(tb.Switch, p, monitor.TapOptions{Flows: true})
			}
		}
		for _, n := range tb.Nodes {
			hostTaps = append(hostTaps, mon.TapInterface(n.Interface(),
				monitor.TapOptions{Detect: true}))
		}
		mon.AddLossProbe("net.drops", func() uint64 {
			var d uint64
			for p := 0; p < tb.Switch.Ports(); p++ {
				d += tb.Switch.PortCounters(p).TotalDrops()
			}
			for _, n := range tb.Nodes {
				d += n.Interface().Counters().TotalDrops()
			}
			return d
		})
		mon.SetStopAt(sim.Time(total))
		mon.Start()
	}
	if *corrupt {
		tb.K.After(total/2, func() {
			m := campaign.NodeMAC(0)
			c := campaign.NodeMAC(len(tb.Nodes) - 1)
			tb.Console.Send(fmt.Sprintf("COMPARE %02X %02X %02X 00", m[3], m[4], m[5]))
			tb.Console.Send(fmt.Sprintf("CORRUPT REPLACE -- -- %02X --", c[5]))
			tb.Console.Send("CRC ON")
			tb.Console.Send("MODE ON")
		})
	}
	for at := step; at <= total; at += step {
		tb.K.RunUntil(at)
		fmt.Printf("---- t=%v ----\n", tb.K.Now())
		fmt.Print(netmap.Render(mapper.LastSnapshot()))
		for i, n := range tb.Nodes {
			fmt.Printf("node%d  routes=%d  %v  host={udp tx=%d rx=%d}\n",
				i, len(n.Interface().Routes()), n.Interface().Counters(),
				n.Stats().UDPSent, n.Stats().UDPReceived)
		}
		for p := 0; p < tb.Switch.Ports(); p++ {
			if !tb.Switch.Attached(p) {
				continue
			}
			fmt.Printf("sw.p%d  %v\n", p, tb.Switch.PortCounters(p))
		}
		if mon != nil {
			fmt.Printf("plane ")
			for _, tp := range hostTaps {
				fmt.Printf(" %s phi=%.2f", tp.Name(), tp.Detector().Phi(tb.K.Now()))
			}
			active := 0
			for _, tp := range mon.Taps() {
				if tp.Flows() != nil {
					active += tp.Flows().Active()
				}
			}
			fmt.Printf("  flows active=%d exported=%d\n", active, mon.Ring().Exported())
			for ; printedEvents < len(mon.Events()); printedEvents++ {
				fmt.Printf("plane  event %v\n", mon.Events()[printedEvents])
			}
		}
		fmt.Println()
	}
	load.Stop()
	if mon != nil {
		mon.Stop()
		fmt.Printf("plane: %d sampling passes, %d events, %d flows exported\n",
			mon.Ticks(), len(mon.Events()), mon.Ring().Exported())
	}
	total64, inconsistent := mapper.Rounds()
	fmt.Printf("mapping rounds: %d (%d inconsistent)\n", total64, inconsistent)
	if load.CorruptAccepted() > 0 {
		fmt.Fprintf(os.Stderr, "mmon: ACTIVE fault evidence: %d corrupted payloads accepted\n", load.CorruptAccepted())
		os.Exit(1)
	}
}
