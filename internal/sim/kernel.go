// Package sim provides a deterministic discrete-event simulation kernel.
//
// All network, host, and injector models in this repository are driven by a
// single Kernel per simulation. The kernel keeps a virtual clock with
// picosecond resolution (so the 12.5 ns Myrinet character period at 80 MB/s
// is exactly representable), a scheduler of pending events, and a seeded
// random source. Two runs with the same seed and the same model code produce
// byte-identical traces: event ties are broken by insertion order, and no
// global mutable state is used.
//
// The scheduler is a hierarchical timer wheel (three levels, 16.4 ns ticks,
// ~17 ms horizon) for the short-horizon character-period events that dominate
// a simulation, with a binary-heap fallback for long timers. Events are
// recycled through a free list, and the AtArg/AfterArg variants schedule a
// callback without a per-call closure allocation, so the steady-state event
// path does not allocate. Fire order is exactly (time, insertion sequence) —
// identical to a plain priority queue, as the equivalence test pins down.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"slices"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in picoseconds.
type Duration = Time

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1_000
	Microsecond Duration = 1_000_000
	Millisecond Duration = 1_000_000_000
	Second      Duration = 1_000_000_000_000
)

// Nanoseconds reports t as a floating-point count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.5ns" or "50ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimUnit(float64(t)/float64(Nanosecond), "ns")
	case t < Millisecond:
		return trimUnit(float64(t)/float64(Microsecond), "us")
	case t < Second:
		return trimUnit(float64(t)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(t)/float64(Second), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a trailing dot.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// event is a scheduled callback. Events are pooled: fired and harvested-
// canceled events return to a kernel-local free list, and gen distinguishes
// the lifetimes so a stale EventID (for example a Cancel after the event
// already fired) cannot touch a recycled slot.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically

	fn  func()    // closure form (At/After)
	afn func(any) // capture-free form (AtArg/AfterArg)
	arg any

	// Externally ordered events (AtExt) carry their own tie-break key in
	// place of the insertion sequence: at equal timestamps they fire
	// before every locally scheduled event, ordered among themselves by
	// (xrank, xseq). Shard coordinators use this so a cross-shard
	// delivery's fire position is a pure function of the traffic — not of
	// when the barrier that injected it happened to run.
	ext   bool
	xrank uint32
	xseq  uint64

	gen      uint64
	canceled bool

	next  *event // wheel slot chain, or free-list link
	index int    // heap index; -1 when not in the heap
}

// eventLess is the kernel's total fire order: time first, then external
// events before local ones, then (xrank, xseq) among externals and the
// insertion sequence among locals. Every queue structure (wheel slot sort,
// current-slot insert, heap, wheel-vs-heap merge) must use exactly this
// comparison or same-tick events would fire in structure-dependent order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ext != b.ext {
		return a.ext
	}
	if a.ext {
		if a.xrank != b.xrank {
			return a.xrank < b.xrank
		}
		return a.xseq < b.xseq
	}
	return a.seq < b.seq
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	ev  *event
	gen uint64
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer-wheel geometry. One level-0 tick is 2^14 ps ≈ 16.4 ns — about 1.3
// Myrinet character periods — so the per-character delivery events that
// dominate a campaign land in level 0. The three levels together cover a
// 2^34 ps ≈ 17.2 ms horizon (flow-control refreshes, injector pipeline
// flushes, burst periods); anything farther out (watchdogs, mapping rounds,
// message gaps) takes the heap fallback.
const (
	tickBits = 14
	l0Bits   = 8 // 256 slots × 16.4 ns  ≈ 4.3 us
	l1Bits   = 6 // 64 slots  × 4.3 us   ≈ 275 us
	l2Bits   = 6 // 64 slots  × 275 us   ≈ 17.6 ms

	l0Slots = 1 << l0Bits
	l1Slots = 1 << l1Bits
	l2Slots = 1 << l2Bits
)

// Kernel is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	src       *prng
	rng       *rand.Rand
	processed uint64
	stopped   bool
	live      int // scheduled, not yet fired, not canceled

	// Heap fallback: events beyond the wheel horizon, in exact order.
	queue eventHeap

	// Timer wheel. c0 is the harvest frontier: the next absolute level-0
	// tick to be swept. cur holds the harvested events of the frontier
	// slot, sorted by (at, seq); curPos is the consume cursor into it.
	levels   [3][]*event
	lvlCount [3]int
	c0       uint64
	cur      []*event
	curPos   int

	free *event // recycled event structs
}

// NewKernel returns a kernel with its clock at zero and a random source
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	src := &prng{}
	src.Seed(seed)
	k := &Kernel{src: src, rng: newRand(src)}
	k.levels[0] = make([]*event, l0Slots)
	k.levels[1] = make([]*event, l1Slots)
	k.levels[2] = make([]*event, l2Slots)
	return k
}

func newRand(src *prng) *rand.Rand { return rand.New(src) }

// prng is the kernel's random source: splitmix64, chosen over the stdlib
// default source because its entire state is one word the fork engine can
// copy. rand.Rand itself keeps no hidden state on the integer paths the
// models use, so cloning the source clones the stream.
type prng struct{ s uint64 }

// Seed implements rand.Source.
func (p *prng) Seed(seed int64) { p.s = uint64(seed) }

// Uint64 implements rand.Source64 (splitmix64).
func (p *prng) Uint64() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (p *prng) Int63() int64 { return int64(p.Uint64() >> 1) }

func (p *prng) clone() *prng { return &prng{s: p.s} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed reports how many events have been executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending reports how many events are scheduled and not yet executed.
func (k *Kernel) Pending() int { return k.live }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a model bug, and silently reordering time would make
// every downstream result wrong.
func (k *Kernel) At(t Time, fn func()) EventID {
	return k.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.schedule(k.now+d, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute virtual time t. Unlike At, the
// callback captures nothing: callers on hot paths pass a reused callee and
// its receiver, so scheduling allocates no closure — with the event pool,
// nothing at all in steady state.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) EventID {
	return k.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time; see AtArg.
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.schedule(k.now+d, nil, fn, arg)
}

// AtExt schedules an externally ordered event: at time t it fires before
// every locally scheduled event with the same timestamp, and external events
// at equal times fire in (rank, xseq) order regardless of the order or the
// moment they were scheduled. (rank, xseq) must be unique per pending
// external event at any timestamp. Sharded fabrics schedule cross- and
// same-shard deliveries this way, which is what lets the barrier schedule
// change (adaptive lookahead) without changing the execution order.
func (k *Kernel) AtExt(t Time, rank uint32, xseq uint64, fn func(any), arg any) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	ev := k.alloc()
	ev.at = t
	ev.seq = k.seq
	ev.ext, ev.xrank, ev.xseq = true, rank, xseq
	ev.afn, ev.arg = fn, arg
	k.seq++
	k.live++
	k.place(ev)
	return EventID{ev: ev, gen: ev.gen}
}

func (k *Kernel) schedule(t Time, fn func(), afn func(any), arg any) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	ev := k.alloc()
	ev.at = t
	ev.seq = k.seq
	ev.fn, ev.afn, ev.arg = fn, afn, arg
	k.seq++
	k.live++
	k.place(ev)
	return EventID{ev: ev, gen: ev.gen}
}

// place routes an event to its wheel slot, the current-slot buffer, or the
// long-timer heap. Placement never affects fire order — only where the event
// waits — so the only invariant is that a slot is swept no later than its
// events fall due; the level tests below guarantee it because a level-L slot
// cascades exactly when the frontier reaches its first level-0 tick.
func (k *Kernel) place(ev *event) {
	t0 := uint64(ev.at) >> tickBits
	if k.lvlCount[0] == 0 && k.lvlCount[1] == 0 && k.lvlCount[2] == 0 {
		// Idle wheel: snap the frontier over the gap so a long-idle
		// simulation does not sweep empty slots to catch up.
		if nowTick := uint64(k.now) >> tickBits; nowTick > k.c0 {
			k.c0 = nowTick
		}
	}
	switch {
	case t0 < k.c0:
		// The frontier already swept this tick (the clock sits inside
		// it): the event joins the sorted current-slot buffer.
		k.insertCur(ev)
	case t0-k.c0 < l0Slots:
		k.push(0, int(t0&(l0Slots-1)), ev)
	case t0>>l0Bits-k.c0>>l0Bits < l1Slots:
		k.push(1, int(t0>>l0Bits&(l1Slots-1)), ev)
	case t0>>(l0Bits+l1Bits)-k.c0>>(l0Bits+l1Bits) < l2Slots:
		k.push(2, int(t0>>(l0Bits+l1Bits)&(l2Slots-1)), ev)
	default:
		heap.Push(&k.queue, ev)
	}
}

func (k *Kernel) push(level, slot int, ev *event) {
	ev.next = k.levels[level][slot]
	k.levels[level][slot] = ev
	k.lvlCount[level]++
}

// insertCur inserts ev into the unconsumed tail of the current-slot buffer,
// keeping it sorted in fire order.
func (k *Kernel) insertCur(ev *event) {
	cur := k.cur
	lo, hi := k.curPos, len(cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if eventLess(cur[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k.cur = append(cur, nil)
	copy(k.cur[lo+1:], k.cur[lo:])
	k.cur[lo] = ev
}

// Cancel prevents a scheduled event from running. Canceling an event that
// already ran, or was already canceled, is a no-op: the generation check
// makes a stale EventID harmless even after its struct has been recycled.
func (k *Kernel) Cancel(id EventID) {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.canceled {
		return
	}
	ev.canceled = true
	k.live--
}

// alloc takes an event struct off the free list, growing it in blocks.
func (k *Kernel) alloc() *event {
	if k.free == nil {
		block := make([]event, 64)
		for i := range block {
			block[i].index = -1
			block[i].next = k.free
			k.free = &block[i]
		}
	}
	ev := k.free
	k.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a fired or canceled event to the free list. The
// generation bump invalidates every outstanding EventID for it.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.ext, ev.xrank, ev.xseq = false, 0, 0
	ev.canceled = false
	ev.index = -1
	ev.next = k.free
	k.free = ev
}

// wheelFront returns the earliest live wheel event without consuming it,
// sweeping the frontier forward (and pruning canceled events) as needed.
// Sweeping never advances the clock, so it is safe from peek paths too.
func (k *Kernel) wheelFront() *event {
	for {
		for k.curPos < len(k.cur) {
			ev := k.cur[k.curPos]
			if ev.canceled {
				k.cur[k.curPos] = nil
				k.curPos++
				k.recycle(ev)
				continue
			}
			return ev
		}
		k.cur = k.cur[:0]
		k.curPos = 0
		if k.lvlCount[0] == 0 && k.lvlCount[1] == 0 && k.lvlCount[2] == 0 {
			return nil
		}
		k.sweep()
	}
}

// sweep advances the frontier until it has harvested one level-0 slot's
// events into cur, cascading higher levels at their boundaries and jumping
// over provably empty stretches.
func (k *Kernel) sweep() {
	for {
		if k.c0&(l0Slots-1) == 0 {
			// Entering a new level-1 slot; at a level-2 boundary the
			// level-2 slot cascades first so its events reach level 1
			// before that level's own cascade runs.
			if k.c0&(1<<(l0Bits+l1Bits)-1) == 0 && k.lvlCount[2] > 0 {
				k.cascade(2, int(k.c0>>(l0Bits+l1Bits)&(l2Slots-1)))
			}
			if k.lvlCount[1] > 0 {
				k.cascade(1, int(k.c0>>l0Bits&(l1Slots-1)))
			}
		}
		slot := int(k.c0 & (l0Slots - 1))
		k.c0++
		if chain := k.levels[0][slot]; chain != nil {
			k.levels[0][slot] = nil
			for ev := chain; ev != nil; {
				nx := ev.next
				ev.next = nil
				k.lvlCount[0]--
				if ev.canceled {
					k.recycle(ev)
				} else {
					k.cur = append(k.cur, ev)
				}
				ev = nx
			}
			if len(k.cur) > 0 {
				slices.SortFunc(k.cur, cmpEvent)
				return
			}
			continue // slot held only canceled events; keep sweeping
		}
		if k.lvlCount[0] == 0 {
			if k.lvlCount[1] == 0 && k.lvlCount[2] == 0 {
				return // wheel drained mid-sweep (all canceled)
			}
			// No level-0 events left: jump straight to the next cascade
			// boundary instead of sweeping empty slots one by one.
			k.c0 = (k.c0 + l0Slots - 1) &^ (l0Slots - 1)
		}
	}
}

func cmpEvent(a, b *event) int {
	if eventLess(a, b) {
		return -1
	}
	return 1
}

// cascade redistributes one higher-level slot down the wheel.
func (k *Kernel) cascade(level, slot int) {
	chain := k.levels[level][slot]
	k.levels[level][slot] = nil
	for ev := chain; ev != nil; {
		nx := ev.next
		ev.next = nil
		k.lvlCount[level]--
		if ev.canceled {
			k.recycle(ev)
		} else {
			k.place(ev)
		}
		ev = nx
	}
}

// heapFront returns the earliest live heap event, pruning canceled tops.
func (k *Kernel) heapFront() *event {
	for len(k.queue) > 0 {
		if ev := k.queue[0]; ev.canceled {
			heap.Pop(&k.queue)
			k.recycle(ev)
			continue
		}
		return k.queue[0]
	}
	return nil
}

// popNext removes and returns the globally earliest live event, or nil.
func (k *Kernel) popNext() *event {
	wf := k.wheelFront()
	hf := k.heapFront()
	switch {
	case wf == nil && hf == nil:
		return nil
	case hf == nil || (wf != nil && eventLess(wf, hf)):
		k.cur[k.curPos] = nil
		k.curPos++
		return wf
	default:
		heap.Pop(&k.queue)
		return hf
	}
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (k *Kernel) Step() bool {
	ev := k.popNext()
	if ev == nil {
		return false
	}
	k.now = ev.at
	k.processed++
	k.live--
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	k.recycle(ev) // before the call, so the callback can reuse the struct
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled after t remain pending.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Drain executes events with timestamps <= t like RunUntil, but leaves the
// clock at the last executed event instead of forcing it to t. Shard
// coordinators run windows with Drain so a kernel's clock tracks its real
// activity: the group's observable time stays the time of the last executed
// event — a pure function of the traffic — rather than the horizon of the
// last window, which depends on the partition.
func (k *Kernel) Drain(t Time) {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > t {
			return
		}
		k.Step()
	}
}

// RunFor executes events for a span d of virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now + d) }

// Stop makes the innermost Run/RunUntil return after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// PeekNext reports the timestamp of the earliest pending event without
// executing it. The second result is false when no events are pending.
// Shard coordinators use this to compute the global minimum next-event time
// that anchors each conservative-lookahead window.
func (k *Kernel) PeekNext() (Time, bool) { return k.peek() }

func (k *Kernel) peek() (Time, bool) {
	wf := k.wheelFront()
	hf := k.heapFront()
	switch {
	case wf == nil && hf == nil:
		return 0, false
	case hf == nil || (wf != nil && eventLess(wf, hf)):
		return wf.at, true
	default:
		return hf.at, true
	}
}
