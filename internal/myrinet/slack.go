package myrinet

import "netfi/internal/phy"

// SlackBuffer is the receive-side elastic buffer of a Myrinet port (Fig. 9).
// Incoming characters are pushed as they arrive; the port's forwarding logic
// pops them as it can make progress. Crossing the high watermark fires
// onStop (the port issues a STOP symbol upstream); draining to the low
// watermark fires onGo. Pushing into a full buffer destroys the character —
// the overflow the paper's flow-control corruption campaign provokes.
//
// The zero value is not usable; construct with NewSlackBuffer.
//
// The ring's backing array is a power of two sized below the logical
// capacity and grown on demand: a fabric instantiates thousands of these
// and most never hold more than a packet, so allocating the full capacity
// up front dominated fabric construction. Overflow and the watermarks act
// on the logical count, so the growth policy is invisible to flow control.
type SlackBuffer struct {
	buf      []phy.Character // power-of-two ring, grown on demand
	capacity int             // logical limit; pushes beyond it overflow
	head     int
	count    int
	high     int
	low      int
	stopping bool
	onStop   func()
	onGo     func()
	overflow uint64
	pushes   uint64
}

// slackRingSize returns the initial ring size for a capacity: the smallest
// power of two covering it, at most 64.
func slackRingSize(capacity int) int {
	size := 1
	for size < capacity && size < 64 {
		size <<= 1
	}
	return size
}

// NewSlackBuffer returns a buffer with the given geometry. onStop and onGo
// may be nil. Watermarks must satisfy 0 <= low < high <= capacity.
func NewSlackBuffer(capacity, high, low int, onStop, onGo func()) *SlackBuffer {
	if capacity <= 0 || low < 0 || high <= low || high > capacity {
		panic("myrinet: invalid slack buffer geometry")
	}
	return &SlackBuffer{
		buf:      make([]phy.Character, slackRingSize(capacity)),
		capacity: capacity,
		high:     high,
		low:      low,
		onStop:   onStop,
		onGo:     onGo,
	}
}

// grow doubles the ring, unwrapping the buffered characters to the front.
func (s *SlackBuffer) grow() {
	nb := make([]phy.Character, 2*len(s.buf))
	n := copy(nb, s.buf[s.head:])
	copy(nb[n:], s.buf[:s.head])
	s.buf = nb
	s.head = 0
}

// NewDefaultSlackBuffer returns a buffer with the package-default geometry.
func NewDefaultSlackBuffer(onStop, onGo func()) *SlackBuffer {
	return NewSlackBuffer(DefaultSlackCapacity, DefaultSlackHigh, DefaultSlackLow, onStop, onGo)
}

// Push appends a character. It reports false — and destroys the character —
// when the buffer is full. Crossing the high watermark triggers onStop once
// until the buffer next drains to the low watermark.
func (s *SlackBuffer) Push(c phy.Character) bool {
	s.pushes++
	if s.count == s.capacity {
		s.overflow++
		return false
	}
	if s.count == len(s.buf) {
		s.grow()
	}
	s.buf[(s.head+s.count)&(len(s.buf)-1)] = c
	s.count++
	if s.count >= s.high && !s.stopping {
		s.stopping = true
		if s.onStop != nil {
			s.onStop()
		}
	}
	return true
}

// Pop removes and returns the oldest character. Draining to the low
// watermark while stopping triggers onGo.
func (s *SlackBuffer) Pop() (phy.Character, bool) {
	if s.count == 0 {
		return 0, false
	}
	c := s.buf[s.head]
	s.head = (s.head + 1) & (len(s.buf) - 1)
	s.count--
	if s.stopping && s.count <= s.low {
		s.stopping = false
		if s.onGo != nil {
			s.onGo()
		}
	}
	return c, true
}

// Run returns the longest contiguous run of buffered characters starting at
// the oldest, as a slice into the ring: valid until the next Push, not
// consumed (pair with Discard). The run stops at the ring wrap, so a caller
// draining a wrapped buffer sees the remainder on its next call.
func (s *SlackBuffer) Run() []phy.Character {
	n := len(s.buf) - s.head
	if n > s.count {
		n = s.count
	}
	return s.buf[s.head : s.head+n]
}

// Discard removes the oldest n characters with the same watermark effect as
// n Pops: draining a stopping buffer to the low watermark fires onGo. The
// callback fires once, after the whole discard — a caller that must
// interleave the GO with other work splits the discard at Len()-Low().
func (s *SlackBuffer) Discard(n int) {
	if n <= 0 {
		return
	}
	if n > s.count {
		panic("myrinet: discard beyond buffered count")
	}
	s.head = (s.head + n) & (len(s.buf) - 1)
	s.count -= n
	if s.stopping && s.count <= s.low {
		s.stopping = false
		if s.onGo != nil {
			s.onGo()
		}
	}
}

// Low returns the low (GO) watermark.
func (s *SlackBuffer) Low() int { return s.low }

// Flush discards every buffered character and returns how many were
// destroyed. A flush that empties a stopping buffer fires onGo: the link
// reset that triggered it has torn down the upstream path, and whatever
// replaces it must not inherit a stale STOP. Used by the recovery layer only.
func (s *SlackBuffer) Flush() int {
	n := s.count
	s.head = 0
	s.count = 0
	if s.stopping {
		s.stopping = false
		if s.onGo != nil {
			s.onGo()
		}
	}
	return n
}

// Peek returns the oldest character without removing it.
func (s *SlackBuffer) Peek() (phy.Character, bool) {
	if s.count == 0 {
		return 0, false
	}
	return s.buf[s.head], true
}

// Len reports the number of buffered characters.
func (s *SlackBuffer) Len() int { return s.count }

// Cap reports the buffer capacity in characters (the logical limit, not
// the ring's current backing size).
func (s *SlackBuffer) Cap() int { return s.capacity }

// Stopping reports whether the buffer is between its high-watermark STOP
// and the low-watermark GO.
func (s *SlackBuffer) Stopping() bool { return s.stopping }

// Overflow reports how many characters were destroyed by pushes into a full
// buffer.
func (s *SlackBuffer) Overflow() uint64 { return s.overflow }

// Pushes reports the total number of push attempts.
func (s *SlackBuffer) Pushes() uint64 { return s.pushes }
