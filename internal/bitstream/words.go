package bitstream

// Word utilities for the injector's 32-bit datapath. The FPGA shifts the
// incoming byte stream into 32-bit compare registers and matches with a
// "don't care" mask (§3.3), so byte/word packing order matters: bytes enter
// most-significant first, matching the order they appear on the wire.

// PackWord packs up to four bytes, wire order first byte in the most
// significant position, into a 32-bit word. Fewer than four bytes leave the
// low-order positions zero.
func PackWord(b []byte) uint32 {
	var w uint32
	for i := 0; i < 4 && i < len(b); i++ {
		w |= uint32(b[i]) << (24 - 8*i)
	}
	return w
}

// UnpackWord reverses PackWord into four bytes.
func UnpackWord(w uint32) [4]byte {
	return [4]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
}

// MatchMasked reports whether got matches want under mask: only bit
// positions set in mask participate in the comparison (mask bit 0 = "don't
// care"). This is the compare-data/compare-mask operation of the injector's
// trigger logic.
func MatchMasked(got, want, mask uint32) bool {
	return (got^want)&mask == 0
}

// ApplyToggle flips the bits of w selected by corrupt (corrupt-mode
// "toggle": errors appear at the bit positions that are logic one in the
// corrupt data vector).
func ApplyToggle(w, corrupt uint32) uint32 { return w ^ corrupt }

// ApplyReplace substitutes the bits of w selected by mask with the
// corresponding bits of corrupt (corrupt-mode "replace" under the corrupt
// mask; mask bits at zero pass the original data unchanged).
func ApplyReplace(w, corrupt, mask uint32) uint32 {
	return w&^mask | corrupt&mask
}

// OnesCount32 counts set bits; used by fault-distance assertions in tests.
func OnesCount32(w uint32) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}
