#!/bin/sh
# bench.sh — run the performance benchmarks and record the results as
# BENCH_<date>.json in the repository root (ns/op, trials/sec, allocs/op,
# and the custom metrics the benchmarks report).
#
# Usage:
#   sh scripts/bench.sh          full run (go's default -benchtime)
#   sh scripts/bench.sh -short   smoke run (-benchtime=1x), used by CI
set -eu
cd "$(dirname "$0")/.."

benchtime=""
if [ "${1:-}" = "-short" ]; then
    benchtime="-benchtime=1x"
fi

date=$(date +%Y-%m-%d)
out="BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (kernel + campaign throughput)"
# shellcheck disable=SC2086  # benchtime is intentionally word-split
go test -run '^$' \
    -bench '^(BenchmarkKernel|BenchmarkCampaignThroughput|BenchmarkKernelEventThroughput|BenchmarkFIFOInjectorPassThrough)$' \
    -benchmem $benchtime . | tee "$raw"

go run ./scripts/benchjson < "$raw" > "$out"
echo "wrote $out"
