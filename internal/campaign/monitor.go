package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/host"
	"netfi/internal/monitor"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// MonitorOptions parameterizes the monitoring-plane demonstration.
type MonitorOptions struct {
	Seed int64
	// Messages sent by the tapped node. Zero selects 6; minimum 3.
	Messages int
	// Gap paces the messages. Zero selects 10 ms.
	Gap sim.Duration
}

func (o *MonitorOptions) fillDefaults() {
	if o.Messages < 3 {
		o.Messages = 6
	}
	if o.Gap == 0 {
		o.Gap = 10 * sim.Millisecond
	}
}

// TapTotals is one observation point's lifetime counters.
type TapTotals struct {
	Name    string
	Bursts  uint64
	Chars   uint64
	Packets uint64
	Control uint64
}

// MonitorResult is the monitoring-plane demonstration's full record: the
// workload outcome plus everything the plane observed.
type MonitorResult struct {
	Sent           int
	Delivered      uint64
	Retransmits    uint64
	RecoveryEvents uint64
	Injections     uint64

	Ticks         uint64
	Events        []monitor.Event
	FlowsExported uint64
	FlowsDropped  uint64
	Flows         []monitor.FlowRecord
	Taps          []TapTotals

	// InjectedAt / DetectLatency mirror the resilience trials' detection
	// axis for this single scripted fault (-1 when undetected).
	InjectedAt    sim.Duration
	DetectLatency sim.Duration
	DetectSource  string
}

// RunMonitor runs the monitoring plane through one full failure life cycle:
// a reliable workload from the tapped node to node 1, heartbeat beacons
// between the untapped nodes, flow-export taps on every switch input — then
// a tail GAP drop wedges the switch output toward node 1 (§4.3.1's
// forever-held path). The beacons starve, the accrual detector suspects the
// path, the wedge and recovery probes fire as the watchdog breaks the path,
// and the detector observes the recovery. The exported flows record the
// traffic the whole way through.
func RunMonitor(opts MonitorOptions) MonitorResult {
	opts.fillDefaults()
	tb := NewTestbed(TestbedConfig{
		Seed: opts.Seed,
		Recovery: myrinet.RecoveryConfig{
			Enabled:        true,
			BlockedTimeout: 15 * sim.Millisecond,
			StopWatchdog:   25 * sim.Millisecond,
		},
	})

	tb.Configure("DIR L")
	armSpan := sim.Duration(opts.Messages-2) * opts.Gap
	// Land the GAP drop after the penultimate message's terminator: the
	// final message's train then never terminates — the paper's wedge.
	tb.K.After(armSpan+3*sim.Millisecond, func() {
		tb.Console.Send(fmt.Sprintf(
			"RULE ADD %d MODE ONCE ACT DROP PAT C0C", resilienceRuleID))
	})

	base := tb.K.Now()
	horizon := base + sim.Time(armSpan+opts.Gap+60*sim.Millisecond)
	mon, injected := armTrialMonitor(tb, horizon)

	payload := make([]byte, resiliencePayloadLen)
	for i := range payload {
		payload[i] = resiliencePayloadFill
	}
	endpoints := make([]*host.Reliable, len(tb.Nodes))
	for i, n := range tb.Nodes {
		r, err := host.NewReliable(n, resiliencePort, host.ReliableConfig{
			InitialRTO: 40 * sim.Millisecond,
			MaxRTO:     80 * sim.Millisecond,
			MaxRetries: 5,
		})
		if err != nil {
			panic(err)
		}
		endpoints[i] = r
	}
	rel := endpoints[0]
	// A fixed destination: the wedged output is then the heartbeat path
	// toward node 1, so the accrual detector sees the outage directly.
	dst := NodeMAC(1)
	for i := 0; i < opts.Messages; i++ {
		tb.K.After(sim.Duration(i)*opts.Gap, func() { rel.Send(dst, payload) })
	}

	tb.K.RunUntilQuiescent(sim.QuiesceConfig{
		Progress: func() uint64 {
			s := rel.Stats()
			return s.Delivered + s.Retransmits + s.GaveUp + recoveryEventCount(tb)
		},
		StallAfter: 300 * sim.Millisecond,
		Deadline:   3 * sim.Second,
	})
	mon.Stop()

	s := rel.Stats()
	res := MonitorResult{
		Sent:           opts.Messages,
		Delivered:      s.Delivered,
		Retransmits:    s.Retransmits,
		RecoveryEvents: recoveryEventCount(tb),
		Injections:     tb.Injections(),
		Ticks:          mon.Ticks(),
		Events:         append([]monitor.Event(nil), mon.Events()...),
		FlowsExported:  mon.Ring().Exported(),
		FlowsDropped:   mon.Ring().Dropped(),
		Flows:          mon.Ring().Records(),
		InjectedAt:     -1,
		DetectLatency:  -1,
	}
	for _, t := range mon.Taps() {
		bursts, chars, packets, control := t.Stats()
		res.Taps = append(res.Taps, TapTotals{
			Name: t.Name(), Bursts: bursts, Chars: chars,
			Packets: packets, Control: control,
		})
	}
	if at, ok := injected(); ok {
		res.InjectedAt = sim.Duration(at - base)
		if e, found := mon.FirstEventAtOrAfter(at); found {
			res.DetectLatency = sim.Duration(e.Time - at)
			res.DetectSource = e.Source + "/" + e.Detail
		}
	}
	return res
}

// FormatMonitor renders the demonstration: workload line, detection line,
// the plane's event log, exported flows, and per-tap totals.
func FormatMonitor(r MonitorResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d/%d delivered, %d retransmits, %d recovery events, %d injections\n",
		r.Delivered, r.Sent, r.Retransmits, r.RecoveryEvents, r.Injections)
	if r.InjectedAt >= 0 && r.DetectLatency >= 0 {
		fmt.Fprintf(&b, "detected: %.1f ms after injection at %.1f ms, by %s\n",
			r.DetectLatency.Seconds()*1000, r.InjectedAt.Seconds()*1000, r.DetectSource)
	} else if r.InjectedAt >= 0 {
		fmt.Fprintf(&b, "detected: MISS (injection at %.1f ms raised no event)\n",
			r.InjectedAt.Seconds()*1000)
	}
	fmt.Fprintf(&b, "plane: %d sampling passes, %d events, %d flows exported",
		r.Ticks, len(r.Events), r.FlowsExported)
	if r.FlowsDropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", r.FlowsDropped)
	}
	b.WriteString("\n")
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  event  %v\n", e)
	}
	for _, rec := range r.Flows {
		fmt.Fprintf(&b, "  flow   %-14s %v pkts=%d bytes=%d %v..%v cause=%v\n",
			rec.Tap, rec.Key, rec.Packets, rec.Bytes, rec.First, rec.Last, rec.Cause)
	}
	for _, t := range r.Taps {
		fmt.Fprintf(&b, "  tap    %-14s bursts=%d chars=%d data=%d other=%d\n",
			t.Name, t.Bursts, t.Chars, t.Packets, t.Control)
	}
	return b.String()
}
