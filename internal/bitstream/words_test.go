package bitstream

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestPackUnpackWordRoundTrip(t *testing.T) {
	prop := func(a, b, c, d byte) bool {
		w := PackWord([]byte{a, b, c, d})
		u := UnpackWord(w)
		return u == [4]byte{a, b, c, d}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPackWordShortInput(t *testing.T) {
	if got := PackWord([]byte{0xAB}); got != 0xAB000000 {
		t.Errorf("PackWord(1 byte) = %#08x, want 0xAB000000", got)
	}
	if got := PackWord(nil); got != 0 {
		t.Errorf("PackWord(nil) = %#08x, want 0", got)
	}
	if got := PackWord([]byte{1, 2, 3, 4, 5, 6}); got != 0x01020304 {
		t.Errorf("PackWord(>4 bytes) = %#08x, want 0x01020304", got)
	}
}

func TestMatchMasked(t *testing.T) {
	cases := []struct {
		got, want, mask uint32
		match           bool
	}{
		{0x18181818, 0x18181818, 0xFFFFFFFF, true},
		{0x18181819, 0x18181818, 0xFFFFFFFF, false},
		{0x18181819, 0x18181818, 0xFFFFFF00, true}, // low byte don't-care
		{0xDEADBEEF, 0x0000BE00, 0x0000FF00, true}, // 8-bit window
		{0xDEADBEEF, 0x00000000, 0x00000000, true}, // all don't-care always matches
	}
	for _, c := range cases {
		if got := MatchMasked(c.got, c.want, c.mask); got != c.match {
			t.Errorf("MatchMasked(%#x,%#x,%#x) = %v, want %v", c.got, c.want, c.mask, got, c.match)
		}
	}
}

// Property: toggle is an involution; applying the same corrupt vector twice
// restores the original word.
func TestApplyToggleInvolution(t *testing.T) {
	prop := func(w, corrupt uint32) bool {
		return ApplyToggle(ApplyToggle(w, corrupt), corrupt) == w
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: replace only changes bits under the mask, and changed bits equal
// the corrupt vector's bits.
func TestApplyReplaceMaskDiscipline(t *testing.T) {
	prop := func(w, corrupt, mask uint32) bool {
		out := ApplyReplace(w, corrupt, mask)
		if out&^mask != w&^mask {
			return false // touched a bit outside the mask
		}
		return out&mask == corrupt&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyReplaceZeroMaskIsIdentity(t *testing.T) {
	prop := func(w, corrupt uint32) bool {
		return ApplyReplace(w, corrupt, 0) == w
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOnesCount32MatchesStdlib(t *testing.T) {
	prop := func(w uint32) bool {
		return OnesCount32(w) == bits.OnesCount32(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
