package host

import (
	"fmt"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Fork support (see sim/clone.go). The host layer's cloning rules:
//
//   - A Node reuses its interface's clone when the network container already
//     produced one (the usual path), so the two views stay one object.
//   - Socket handlers are application closures: a Node clone carries the
//     socket (port, delivery count) with a nil handler, and each
//     application's own clone rebinds its handler. A socket whose owner is
//     not cloned silently discards deliveries in the fork — the same
//     behaviour as a nil handler at home.
//   - Applications resolve their node/socket in the deferred pass, so apps
//     and nodes may clone in any order.

// Clone forks the workstation: stack state, receive pipeline, sockets, and
// (if not already cloned via the network container) the Myrinet interface.
func (n *Node) Clone(m *sim.Mapper) *Node {
	n2 := &Node{
		k:           m.Kernel(),
		cfg:         n.cfg,
		sockets:     make(map[uint16]*Socket, len(n.sockets)),
		stats:       n.stats,
		recvBusy:    n.recvBusy,
		inRecv:      n.inRecv.clone(),
		sendReadyAt: n.sendReadyAt,
		dead:        n.dead,
	}
	if len(n.recvq) > 0 {
		n2.recvq = make([]queuedPacket, len(n.recvq))
		for i, p := range n.recvq {
			n2.recvq[i] = p.clone()
		}
	}
	m.Put(n, n2)
	if v, ok := m.Lookup(n.ifc); ok {
		n2.ifc = v.(*myrinet.Interface)
	} else {
		n2.ifc = n.ifc.Clone(m)
	}
	n2.ifc.SetDataHandler(n2.onDatagram)
	for port, s := range n.sockets {
		s2 := &Socket{node: n2, port: s.port, received: s.received}
		m.Put(s, s2)
		n2.sockets[port] = s2
	}
	return n2
}

func (p queuedPacket) clone() queuedPacket {
	p.data = append([]byte(nil), p.data...)
	return p
}

// Clone forks the reliable transport: every flow's stop-and-wait state,
// retransmission timers remapped, and the endpoint's port re-bound on the
// cloned node. The in-order delivery handler (SetHandler) is
// application-owned and must be re-registered post-fork.
func (r *Reliable) Clone(m *sim.Mapper) *Reliable {
	r2 := &Reliable{
		k:      m.Kernel(),
		cfg:    r.cfg,
		port:   r.port,
		flows:  make(map[myrinet.MAC]*flow, len(r.flows)),
		expect: make(map[myrinet.MAC]uint32, len(r.expect)),
		stats:  r.stats,
	}
	for mac, seq := range r.expect {
		r2.expect[mac] = seq
	}
	m.Put(r, r2)
	for mac, f := range r.flows {
		r2.flows[mac] = f.clone(m, r2)
	}
	m.Defer(func() error {
		v, ok := m.Lookup(r.node)
		if !ok {
			return fmt.Errorf("host: fork: reliable endpoint on uncloned node %s", r.node.Name())
		}
		n2 := v.(*Node)
		r2.node = n2
		if s, ok := n2.sockets[r.port]; ok {
			s.handler = r2.onDatagram
		}
		return nil
	})
	return r2
}

func (f *flow) clone(m *sim.Mapper, r2 *Reliable) *flow {
	f2 := &flow{
		r:        r2,
		dst:      f.dst,
		nextSeq:  f.nextSeq,
		seq:      f.seq,
		attempts: f.attempts,
		sentAt:   f.sentAt,
		timer:    m.MapEventID(f.timer),
		timerSet: f.timerSet,
		srtt:     f.srtt,
		rttvar:   f.rttvar,
		rto:      f.rto,
		stats:    f.stats,
	}
	if len(f.queue) > 0 {
		f2.queue = make([][]byte, len(f.queue))
		for i, d := range f.queue {
			f2.queue[i] = append([]byte(nil), d...)
		}
	}
	if f.inflight != nil {
		f2.inflight = append([]byte(nil), f.inflight...)
	}
	m.Put(f, f2)
	return f2
}

// Clone forks the flood generator. The RNG repoints at the forked kernel's
// (the generator borrows the kernel's stream rather than owning one).
func (f *Flood) Clone(m *sim.Mapper) *Flood {
	f2 := &Flood{
		k:        m.Kernel(),
		dst:      f.dst,
		srcPort:  f.srcPort,
		dstPort:  f.dstPort,
		interval: f.interval,
		size:     f.size,
		avoid:    append([]byte(nil), f.avoid...),
		rng:      m.Kernel().Rand(),
		sent:     f.sent,
		running:  f.running,
		seq:      f.seq,
	}
	m.Put(f, f2)
	m.Defer(func() error {
		v, ok := m.Lookup(f.node)
		if !ok {
			return fmt.Errorf("host: fork: flood generator on uncloned node %s", f.node.Name())
		}
		f2.node = v.(*Node)
		return nil
	})
	return f2
}

// Clone forks the heartbeat beacon.
func (h *Heartbeat) Clone(m *sim.Mapper) *Heartbeat {
	h2 := &Heartbeat{
		k:        m.Kernel(),
		dst:      h.dst,
		srcPort:  h.srcPort,
		dstPort:  h.dstPort,
		interval: h.interval,
		payload:  append([]byte(nil), h.payload...),
		until:    h.until,
		sent:     h.sent,
		running:  h.running,
	}
	m.Put(h, h2)
	m.Defer(func() error {
		v, ok := m.Lookup(h.node)
		if !ok {
			return fmt.Errorf("host: fork: heartbeat on uncloned node %s", h.node.Name())
		}
		h2.node = v.(*Node)
		return nil
	})
	return h2
}

// Clone forks the counting receiver and rebinds its handler on the cloned
// socket.
func (r *CountingReceiver) Clone(m *sim.Mapper) *CountingReceiver {
	r2 := &CountingReceiver{bytes: r.bytes}
	m.Put(r, r2)
	m.Defer(func() error {
		v, ok := m.Lookup(r.sock)
		if !ok {
			return fmt.Errorf("host: fork: counting receiver on uncloned socket (port %d)", r.sock.Port())
		}
		s2 := v.(*Socket)
		r2.sock = s2
		s2.handler = func(_ myrinet.MAC, _ uint16, data []byte) {
			r2.bytes += uint64(len(data))
		}
		return nil
	})
	return r2
}
