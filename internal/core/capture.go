package core

import "netfi/internal/phy"

// Capture geometry defaults: how much context around an injection the FPGA
// keeps ("the bytes surrounding the fault injection event", §3.2).
const (
	DefaultCapturePre  = 16
	DefaultCapturePost = 16
)

// DefaultCaptureEvents bounds the completed-event store, like a hardware
// capture RAM of fixed depth: once full, new injections still count and
// corrupt the stream, but their context records are dropped (drop-new, with
// a counter) rather than growing the store. The bound is what lets the
// armed datapath run allocation-free in steady state — every buffer below
// is reused once warmed.
const DefaultCaptureEvents = 64

// CaptureRing records the characters surrounding fault-injection events so
// the user has "sufficient dynamic state information about the environment
// in which the fault injection was performed" (§3.2). It continuously
// observes the stream into a pre-trigger ring; when an injection fires it
// snapshots the ring and keeps recording until the post-trigger quota
// fills.
//
// The zero value is not usable; construct with NewCaptureRing.
type CaptureRing struct {
	pre  []phy.Character
	head int
	full bool

	post      int
	capturing bool
	remaining int
	snapshot  []phy.Character // reused across captures (len 0 when idle)

	maxEvents int
	dropped   uint64
	events    []Capture // slots and their Context buffers are reused
}

// Capture is one completed injection-context record.
type Capture struct {
	// Context holds the pre-injection characters followed by the
	// post-injection characters; the injection point sits right after
	// the pre region.
	Context []phy.Character
	// PreLen is the number of pre-injection characters in Context.
	PreLen int
}

// NewCaptureRing returns a ring keeping pre characters before and post
// characters after each injection, storing up to DefaultCaptureEvents
// completed records.
func NewCaptureRing(pre, post int) *CaptureRing {
	if pre <= 0 || post <= 0 {
		panic("core: capture geometry must be positive")
	}
	return &CaptureRing{
		pre:       make([]phy.Character, pre),
		post:      post,
		maxEvents: DefaultCaptureEvents,
	}
}

// finishCapture files the completed snapshot as an event. Event slots (and
// their Context buffers) are recycled: the slice is re-extended over
// capacity left by a prior Reset so steady-state captures allocate nothing.
func (r *CaptureRing) finishCapture() {
	r.capturing = false
	if len(r.events) >= r.maxEvents {
		r.dropped++
		r.snapshot = r.snapshot[:0]
		return
	}
	n := len(r.events)
	if n < cap(r.events) {
		r.events = r.events[:n+1]
	} else {
		r.events = append(r.events, Capture{})
	}
	ev := &r.events[n]
	ev.Context = append(ev.Context[:0], r.snapshot...)
	ev.PreLen = len(r.snapshot) - r.post
	r.snapshot = r.snapshot[:0]
}

// Observe records one stream character.
func (r *CaptureRing) Observe(c phy.Character) {
	if r.capturing {
		r.snapshot = append(r.snapshot, c)
		r.remaining--
		if r.remaining == 0 {
			r.finishCapture()
		}
	}
	r.pre[r.head] = c
	r.head = (r.head + 1) % len(r.pre)
	if r.head == 0 {
		r.full = true
	}
}

// ObserveBatch records a run of stream characters, with the same final state
// as calling Observe per character. The pre-trigger ring only ever holds its
// last len(pre) observations, so a long run costs O(len(pre)) ring writes
// plus whatever an active post-trigger capture consumes.
func (r *CaptureRing) ObserveBatch(chars []phy.Character) {
	n := len(chars)
	if n == 0 {
		return
	}
	if r.capturing {
		take := r.remaining
		if take > n {
			take = n
		}
		r.snapshot = append(r.snapshot, chars[:take]...)
		r.remaining -= take
		if r.remaining == 0 {
			r.finishCapture()
		}
	}
	if n >= len(r.pre) {
		// Only the newest len(pre) characters survive; lay them out so the
		// slot just before the advanced head is the newest.
		hp := (r.head + n) % len(r.pre)
		tail := chars[n-len(r.pre):]
		copy(r.pre[hp:], tail[:len(r.pre)-hp])
		copy(r.pre[:hp], tail[len(r.pre)-hp:])
		r.head = hp
		r.full = true
		return
	}
	k := copy(r.pre[r.head:], chars)
	if k < n {
		copy(r.pre, chars[k:])
	}
	r.head += n
	if r.head >= len(r.pre) {
		r.head -= len(r.pre)
		r.full = true
	}
}

// MarkInjection snapshots the pre ring and starts post-trigger recording.
// A second injection during an active capture extends nothing: the first
// capture completes with its original quota (matching a hardware ring that
// cannot re-trigger while dumping).
func (r *CaptureRing) MarkInjection() {
	if r.capturing {
		return
	}
	r.capturing = true
	r.remaining = r.post
	if r.full {
		r.snapshot = append(r.snapshot[:0], r.pre[r.head:]...)
		r.snapshot = append(r.snapshot, r.pre[:r.head]...)
	} else {
		r.snapshot = append(r.snapshot[:0], r.pre[:r.head]...)
	}
}

// Events returns the completed captures. The slice and its Context buffers
// are owned by the ring and valid until the next Reset.
func (r *CaptureRing) Events() []Capture { return r.events }

// DroppedEvents reports how many completed captures were discarded because
// the event store was full.
func (r *CaptureRing) DroppedEvents() uint64 { return r.dropped }

// Reset discards all completed captures and any in-progress one, keeping
// the recycled storage.
func (r *CaptureRing) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	r.capturing = false
	if r.snapshot != nil {
		r.snapshot = r.snapshot[:0]
	}
}
