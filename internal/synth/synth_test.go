package synth

import (
	"math"
	"strings"
	"testing"
)

// within reports whether est is inside tol (fractional) of want; zero wants
// demand small absolute estimates.
func within(est, want int, tol float64) bool {
	if want == 0 {
		return est <= 2
	}
	return math.Abs(float64(est-want)) <= tol*float64(want)
}

func TestEstimatesTrackPaperTable1(t *testing.T) {
	const tol = 0.25
	for _, e := range InjectorEntities() {
		paper, ok := PaperTable1[e.Name]
		if !ok {
			t.Fatalf("no paper row for entity %q", e.Name)
		}
		est := e.Estimate()
		if !within(est.FunctionGenerators, paper.FunctionGenerators, tol) {
			t.Errorf("%s FGs: est %d vs paper %d (beyond %.0f%%)", e.Name, est.FunctionGenerators, paper.FunctionGenerators, tol*100)
		}
		if !within(est.DFlipFlops, paper.DFlipFlops, tol) {
			t.Errorf("%s DFFs: est %d vs paper %d", e.Name, est.DFlipFlops, paper.DFlipFlops)
		}
		if !within(est.Multiplexors, paper.Multiplexors, tol) {
			t.Errorf("%s muxes: est %d vs paper %d", e.Name, est.Multiplexors, paper.Multiplexors)
		}
		if !within(est.Gates, paper.Gates, tol+0.15) { // gate metric is loosest
			t.Errorf("%s gates: est %d vs paper %d", e.Name, est.Gates, paper.Gates)
		}
	}
}

func TestEstimatedTotalNearPaperTotal(t *testing.T) {
	est := EstimatedTotal()
	if !within(est.FunctionGenerators, PaperTotal.FunctionGenerators, 0.2) {
		t.Errorf("total FGs: est %d vs paper %d", est.FunctionGenerators, PaperTotal.FunctionGenerators)
	}
	if !within(est.DFlipFlops, PaperTotal.DFlipFlops, 0.2) {
		t.Errorf("total DFFs: est %d vs paper %d", est.DFlipFlops, PaperTotal.DFlipFlops)
	}
	if !within(est.Multiplexors, PaperTotal.Multiplexors, 0.2) {
		t.Errorf("total muxes: est %d vs paper %d", est.Multiplexors, PaperTotal.Multiplexors)
	}
}

func TestPaperTotalsSumFromRows(t *testing.T) {
	// The printed Total row equals the column sums with ONE FIFO_Inject
	// row (despite the two-instance caption); verify our transcription.
	var sum Resources
	for _, r := range PaperTable1 {
		sum.Add(r)
	}
	if sum != PaperTotal {
		t.Errorf("paper rows sum to %+v, printed total %+v", sum, PaperTotal)
	}
}

func TestEstimateRules(t *testing.T) {
	e := Entity{
		Name:        "probe",
		RegBits:     10,
		FSMStates:   4,
		CounterBits: 8,
		Logic:       []LogicTerm{{Inputs: 4, Outputs: 6}, {Inputs: 10, Outputs: 2}},
		Muxes:       []Mux{{Width: 8, K: 4}},
	}
	r := e.Estimate()
	if r.DFlipFlops != 22 {
		t.Errorf("DFFs = %d, want 22 (10+4+8)", r.DFlipFlops)
	}
	// FG: counters 8 + 6*1 + 2*3 = 20.
	if r.FunctionGenerators != 20 {
		t.Errorf("FGs = %d, want 20", r.FunctionGenerators)
	}
	if r.Multiplexors != 24 {
		t.Errorf("muxes = %d, want 24 (8*(4-1))", r.Multiplexors)
	}
	if r.Gates != 19 { // round(0.96*20)
		t.Errorf("gates = %d, want 19", r.Gates)
	}
}

func TestEstimateScalesWithArchitecture(t *testing.T) {
	// Doubling the FIFO depth must grow the FIFO entity's estimate — the
	// model is structural, not a lookup table.
	base := InjectorEntities()[5]
	grown := base
	grown.RegBits += fifoDepth * charBits // double the storage
	if grown.Estimate().DFlipFlops <= base.Estimate().DFlipFlops {
		t.Error("estimate did not grow with FIFO depth")
	}
}

func TestRuleEngineEntityScales(t *testing.T) {
	// DFA form: more states cost more ROM LUTs and a wider state register.
	smallEnt := RuleEngineEntity(16, 16*512, 4)
	bigEnt := RuleEngineEntity(256, 256*512, 4)
	moreRulesEnt := RuleEngineEntity(16, 16*512, 16)
	small, big, moreRules := smallEnt.Estimate(), bigEnt.Estimate(), moreRulesEnt.Estimate()
	if big.FunctionGenerators <= small.FunctionGenerators {
		t.Errorf("transition ROM did not grow: %d -> %d FGs", small.FunctionGenerators, big.FunctionGenerators)
	}
	if big.DFlipFlops <= small.DFlipFlops {
		t.Errorf("state register did not widen: %d -> %d DFFs", small.DFlipFlops, big.DFlipFlops)
	}
	// More rules cost more counters regardless of form.
	if moreRules.DFlipFlops <= small.DFlipFlops {
		t.Error("per-rule counters did not grow with rule count")
	}
	// Lane form trades ROM for per-state registers.
	lanes := RuleEngineEntity(0, 40, 8)
	lr := lanes.Estimate()
	if lr.DFlipFlops == 0 || lr.FunctionGenerators == 0 {
		t.Errorf("lane-mode estimate empty: %+v", lr)
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, name := range []string{"CLck_gen", "Comm", "Inst_dec", "Out_gen", "SPI", "FIFO_Inject", "Total"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table1 output missing %q", name)
		}
	}
	if !strings.Contains(out, "2275") {
		t.Error("Table1 output missing the paper total 2275")
	}
}
