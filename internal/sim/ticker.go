package sim

// Ticker is a periodic callback bound to a kernel: the monitoring plane's
// sampling clock. Like Timer it rides the capture-free AfterArg path — a
// closure per tick would show up in campaigns that sample every millisecond
// for minutes of simulated time.
//
// A Ticker can be given a stop horizon (StopAt): the tick that would land
// past the horizon is never armed, so a quiescence-based hang detector still
// sees the event queue drain once real work has finished. Without a horizon
// the ticker runs until Stop.
//
// The zero value is not usable; construct with NewTicker.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func()
	stopAt  Time // zero: no horizon
	pending EventID
	running bool
	armed   bool
	ticks   uint64
}

// NewTicker returns a ticker that invokes fn every period once started.
func NewTicker(k *Kernel, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	return &Ticker{k: k, period: period, fn: fn}
}

// SetStopAt sets the horizon past which no tick is scheduled. Zero removes
// the horizon. Takes effect when the next tick is armed.
func (t *Ticker) SetStopAt(at Time) { t.stopAt = at }

// Start arms the first tick one period from now. Starting an armed ticker is
// a no-op; starting one parked at its horizon re-arms it (after SetStopAt
// moved the horizon out).
func (t *Ticker) Start() {
	t.running = true
	if !t.armed {
		t.arm()
	}
}

func (t *Ticker) arm() {
	next := t.k.Now() + t.period
	if t.stopAt != 0 && next > t.stopAt {
		return // parked at the horizon; Start() re-arms if moved
	}
	t.armed = true
	t.pending = t.k.AfterArg(t.period, tickerFire, t)
}

func tickerFire(a any) {
	t := a.(*Ticker)
	t.armed = false
	t.ticks++
	t.fn()
	if t.running && !t.armed {
		t.arm()
	}
}

// Clone forks the ticker into m's new world; fn is the owner-rebound
// callback (see Timer.Clone).
func (t *Ticker) Clone(m *Mapper, fn func()) *Ticker {
	t2 := &Ticker{
		k:       m.Kernel(),
		period:  t.period,
		fn:      fn,
		stopAt:  t.stopAt,
		pending: m.MapEventID(t.pending),
		running: t.running,
		armed:   t.armed,
		ticks:   t.ticks,
	}
	m.Put(t, t2)
	return t2
}

// Stop disarms the ticker. The callback will not fire again until Start.
func (t *Ticker) Stop() {
	t.running = false
	if t.armed {
		t.k.Cancel(t.pending)
		t.armed = false
	}
}

// Running reports whether the ticker has been started and not stopped. A
// running ticker may still be parked at its stop horizon (Armed false).
func (t *Ticker) Running() bool { return t.running }

// Armed reports whether a tick is scheduled.
func (t *Ticker) Armed() bool { return t.armed }

// Ticks reports how many times the callback has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Period returns the tick period.
func (t *Ticker) Period() Duration { return t.period }
