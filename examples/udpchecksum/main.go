// UDP checksum evasion, §4.3.4: the one's-complement checksum cannot see a
// swap of bytes 16 bits apart. The injector rewrites "Have" into "veHa" in
// flight (recomputing the Myrinet CRC-8 with its real-time trigger); the
// checksum still verifies, so the corrupted message is passed to the
// application — the campaign's one ACTIVE fault.
package main

import (
	"fmt"

	"netfi/internal/bitstream"
	"netfi/internal/campaign"
)

func main() {
	orig := []byte("Have a lot of fun")
	swapped := []byte("veHa a lot of fun")
	fmt.Printf("checksum(%q) = %#04x\n", orig, bitstream.Checksum16(orig))
	fmt.Printf("checksum(%q) = %#04x (identical: the swap is invisible)\n\n",
		swapped, bitstream.Checksum16(swapped))

	res := campaign.RunSec434(campaign.Sec434Options{Seed: 41})
	fmt.Printf("aligned swap delivered to the application: %v\n", res.EvadingDelivered)
	fmt.Printf("application received: %q\n", res.EvadingPayload)
	fmt.Printf("non-aligned corruption dropped by the checksum: %v\n", res.NonEvadingDropped)
}
