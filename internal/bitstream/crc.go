// Package bitstream provides the checksum and bit-manipulation primitives
// shared by the network substrates: the CRC-8 that trails every Myrinet
// packet (recomputed at each switch hop as route bytes are stripped), the
// IEEE CRC-32 used by Fibre Channel frames, and the 16-bit one's-complement
// checksum used by the UDP experiment in §4.3.4 of the paper.
package bitstream

// CRC8 computes the Myrinet trailing CRC over data using the CRC-8/ATM-HEC
// polynomial x^8 + x^2 + x + 1 (0x07), MSB-first, zero initial value.
// Myrinet appends this byte after the payload; each switch recomputes it
// after consuming a route byte.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

// CRC8Update extends a running CRC-8 with one byte.
func CRC8Update(crc, b byte) byte { return crc8Table[crc^b] }

var crc8Table = makeCRC8Table(0x07)

func makeCRC8Table(poly byte) [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for bit := 0; bit < 8; bit++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// CRC32 computes the Fibre Channel frame CRC (IEEE 802.3 polynomial,
// reflected, initial value all-ones, final complement) over data.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc32Table[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

var crc32Table = makeCRC32Table(0xEDB88320)

func makeCRC32Table(poly uint32) [256]uint32 {
	var t [256]uint32
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Checksum16 computes the 16-bit one's-complement checksum over data, as
// used by UDP (RFC 768). Data is treated as a sequence of big-endian 16-bit
// words; an odd trailing byte is padded with zero. The returned value is the
// complement of the one's-complement sum, so a packet whose stored checksum
// equals Checksum16 of its contents (with the checksum field zeroed)
// verifies by summing to 0xFFFF.
//
// The §4.3.4 experiment relies on a real implementation: swapping two bytes
// that are 16 bits apart swaps equal addends in the one's-complement sum,
// which the checksum cannot detect.
func Checksum16(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum16 reports whether data, which includes a stored checksum
// field somewhere within it, sums (one's-complement) to all-ones.
func VerifyChecksum16(data []byte) bool {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum) == 0xFFFF
}
