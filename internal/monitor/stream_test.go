package monitor

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := 5 + 2*rng.NormFloat64()
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	variance := m2 / float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean = %v, direct %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance = %v, direct %v", w.Variance(), variance)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(0)
	for i := 0; i < 50; i++ {
		e.Add(10)
	}
	if math.Abs(e.Value()-10) > 1e-6 {
		t.Fatalf("EWMA = %v, want ~10", e.Value())
	}
}

func TestShiftDetector(t *testing.T) {
	d := NewShiftDetector(32, 6)
	rng := rand.New(rand.NewSource(7))
	// Baseline: ~100 with a little jitter.
	for i := 0; i < 64; i++ {
		if d.Add(100 + rng.Float64()) {
			t.Fatalf("false positive on baseline traffic at sample %d", i)
		}
	}
	// One moderate outlier must not fire the smoothed detector (the EWMA
	// moves by alpha*delta, well under the z threshold here)...
	if d.Add(104) {
		t.Fatal("single outlier fired the shift detector")
	}
	// ...but the same level sustained must.
	fired := false
	for i := 0; i < 50; i++ {
		if d.Add(104 + rng.Float64()) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("sustained 2x latency shift went undetected")
	}
}
