// Fibre Channel: the paper's board carries an FCPHY next to the MyriPHY —
// "the injection logic is general and not customized to any one network".
// This example splices the same injector device into an FC link carrying
// 8b/10b code groups, toggles one bit of a matched code group, and shows
// the corruption surfacing as a code violation / disparity error / CRC-32
// drop at the receiving N_Port.
package main

import (
	"fmt"

	"netfi/internal/core"
	"netfi/internal/enc8b10b"
	fc "netfi/internal/fibrechannel"
	"netfi/internal/phy"
	"netfi/internal/sim"
)

func main() {
	k := sim.NewKernel(1)
	a, b, cable := fc.Connect(k,
		fc.NPortConfig{Name: "initiator", Addr: 0x010101},
		fc.NPortConfig{Name: "target", Addr: 0x020202})

	// The injector's idle fill must be medium-appropriate: D21.5
	// (1010101010) decodes as a data byte outside any frame, which the
	// N_Port ignores.
	neutral, _, _ := enc8b10b.Encode(0xB5, false, enc8b10b.RDMinus)
	dev := core.NewDevice(k, core.DeviceConfig{
		Name:       "fc-injector",
		CharPeriod: fc.CodeGroupPeriod,
		IdleChar:   phy.Character(neutral),
	})
	dev.Insert(cable)

	// Toggle one wire bit of any code group matching the 10-bit encoding
	// of payload byte 0x55 under RD- (the window compares raw groups).
	victim, _, _ := enc8b10b.Encode(0x55, false, enc8b10b.RDMinus)
	dev.Engine(core.LeftToRight).Configure(core.Config{
		Match:       core.MatchOnce,
		CompareData: [core.WindowSize]phy.Character{0, 0, 0, phy.Character(victim)},
		CompareMask: [core.WindowSize]core.CharMask{0, 0, 0, 0x3FF},
		Corrupt:     core.CorruptToggle,
		CorruptData: [core.WindowSize]phy.Character{0, 0, 0, 0x010},
	})

	delivered := 0
	b.SetFrameHandler(func(f *fc.Frame) { delivered++ })
	for i := 0; i < 3; i++ {
		a.Send(&fc.Frame{
			Header:  fc.Header{DID: b.Addr(), SID: a.Addr(), Type: 0x08, SeqCnt: uint16(i)},
			Payload: []byte{0x55, 0x55, 0x55, 0x55},
		})
	}
	k.Run()

	st := b.Stats()
	fmt.Printf("frames sent: 3, delivered: %d\n", delivered)
	fmt.Printf("code violations: %d, disparity errors: %d, CRC-32 drops: %d, truncated: %d\n",
		st.CodeViolations, st.DisparityErrors, st.CRCDrops, st.TruncatedFrames)
	fmt.Printf("buffer-to-buffer credits returned (R_RDY): %d\n", st.RRdySent)
	_, _, injections := dev.Engine(core.LeftToRight).Stats()
	fmt.Printf("injections performed: %d\n", injections)
	if delivered == 2 && injections == 1 {
		fmt.Println("one frame killed by a single 10-bit code-group bit flip; the rest pass clean")
	}
}
