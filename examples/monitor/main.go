// The monitoring plane, end to end: phi-accrual failure detection, NetFlow
// export, and online anomaly triage over a live failure.
//
// The walkthrough first shows the accrual detector alone — heartbeats at a
// steady cadence, then silence: phi climbs continuously (no binary timeout
// cliff) and crosses the suspicion threshold a few missed beats in. Then it
// runs the full scripted scenario: a reliable workload plus heartbeat
// beacons under flow-export taps, a mid-run GAP deletion that wedges a
// switch output (§4.3.1's forever-held path), and the plane's event log —
// wedge anomaly, phi suspicion, watchdog recovery, and the flow records
// that bracket the outage.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/monitor"
	"netfi/internal/sim"
)

func main() {
	// Part 1: the detector alone. 30 heartbeats on a mixed 2/4 ms cadence,
	// then silence: suspicion accrues through the levels the observed
	// cadence justifies instead of falling off a single timeout cliff.
	fmt.Println("phi accrual on a mixed 2/4 ms heartbeat, then silence:")
	d := monitor.NewPhiDetector(monitor.PhiConfig{})
	var last sim.Time
	for i := 0; i <= 30; i++ {
		step := 2 * sim.Millisecond
		if i%2 == 0 {
			step = 4 * sim.Millisecond
		}
		last += sim.Time(step)
		d.Heartbeat(last)
	}
	for _, after := range []sim.Duration{
		sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond,
		4 * sim.Millisecond, 6 * sim.Millisecond, 10 * sim.Millisecond,
	} {
		now := last + sim.Time(after)
		mark := ""
		if d.Suspect(now) {
			mark = "  <- suspect"
		}
		fmt.Printf("  %4.0f ms after last beat: phi=%.2f%s\n",
			after.Seconds()*1000, d.Phi(now), mark)
	}

	// Part 2: the full plane over a scripted failure.
	fmt.Println("\nscripted outage (tail GAP drop wedges the path to node 1):")
	res := campaign.RunMonitor(campaign.MonitorOptions{Seed: 1})
	fmt.Print(campaign.FormatMonitor(res))

	fmt.Println("\nfull campaign with per-trial detection: go run ./cmd/netfi resilience")
	fmt.Println("machine-readable output:                 go run ./cmd/netfi -json monitor")
}
