package campaign

import (
	"strings"
	"testing"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// The experiment tests assert the SHAPE of each paper result — who loses,
// roughly how much, which mechanism fires — not exact figures (the
// substrate is a simulator, not the authors' testbed). EXPERIMENTS.md
// records the measured-vs-paper numbers.

func TestTable4RowGapCorruptionLossBand(t *testing.T) {
	r := RunTable4Row(myrinet.SymbolGap, myrinet.SymbolGo, Table4Options{Seed: 7})
	if r.LossRate < 0.05 || r.LossRate > 0.20 {
		t.Errorf("GAP->GO loss = %.1f%%, want within the paper's band (roughly 5-20%%)", 100*r.LossRate)
	}
	if r.Outcome.Classification != "passive" {
		t.Errorf("classification = %q, want passive (data dropped, never passed on)", r.Outcome.Classification)
	}
	if r.Outcome.CorruptAccepted != 0 {
		t.Errorf("corrupt payloads accepted: %d, want 0", r.Outcome.CorruptAccepted)
	}
}

func TestTable4RowStopToGapMostLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short")
	}
	stopGap := RunTable4Row(myrinet.SymbolStop, myrinet.SymbolGap, Table4Options{Seed: 7})
	goIdle := RunTable4Row(myrinet.SymbolGo, myrinet.SymbolIdle, Table4Options{Seed: 7})
	// Paper ordering: STOP->GAP is the worst row (15%); GO->IDLE rows are
	// survivable. Our protocol's short-period timeout makes lost GOs
	// nearly free, so the gap is even wider here.
	if stopGap.LossRate <= goIdle.LossRate {
		t.Errorf("STOP->GAP loss %.1f%% not above GO->IDLE loss %.1f%%",
			100*stopGap.LossRate, 100*goIdle.LossRate)
	}
	if stopGap.LossRate < 0.08 {
		t.Errorf("STOP->GAP loss = %.1f%%, want >= 8%%", 100*stopGap.LossRate)
	}
}

func TestTable4EveryRowLosesSomething(t *testing.T) {
	if testing.Short() {
		t.Skip("full nine-row campaign; skipped in -short")
	}
	rows := RunTable4(Table4Options{Seed: 7})
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Sent < 3000 {
			t.Errorf("%v->%v sent only %d messages", r.Mask, r.Replacement, r.Sent)
		}
		if r.Received > r.Sent {
			t.Errorf("%v->%v received %d > sent %d", r.Mask, r.Replacement, r.Received, r.Sent)
		}
		if r.Received == r.Sent {
			t.Errorf("%v->%v lost nothing; every corruption row must cost messages", r.Mask, r.Replacement)
		}
		if r.Outcome.CorruptAccepted != 0 {
			t.Errorf("%v->%v passed corrupt data upward (active fault)", r.Mask, r.Replacement)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "STOP") || !strings.Contains(out, "p.loss") {
		t.Error("FormatTable4 output malformed")
	}
}

func TestTable2LatencyShape(t *testing.T) {
	rows := RunTable2(Table2Options{Seed: 3, Rounds: 5000})
	if len(rows) != 5 {
		t.Fatalf("experiments = %d, want 5", len(rows))
	}
	for _, r := range rows {
		// Per-packet time in the paper's regime (~235 us).
		if r.WithoutPerPkt < 200*sim.Microsecond || r.WithoutPerPkt > 280*sim.Microsecond {
			t.Errorf("exp %d: per-packet %v outside the ~235 us regime", r.Index, r.WithoutPerPkt)
		}
		// The added latency is sub-microsecond noise around the true
		// device latency, exactly the paper's "between 75 and 1400 ns".
		if r.AddedLatency < -500*sim.Nanosecond || r.AddedLatency > 2*sim.Microsecond {
			t.Errorf("exp %d: added latency %v outside the plausible band", r.Index, r.AddedLatency)
		}
		if r.TrueDeviceLag != 750*sim.Nanosecond {
			t.Errorf("true device latency = %v, want 750ns", r.TrueDeviceLag)
		}
	}
	// The measurements must not all be identical: the interrupt phase
	// varies per experiment.
	distinct := map[sim.Duration]bool{}
	for _, r := range rows {
		distinct[r.AddedLatency] = true
	}
	if len(distinct) < 2 {
		t.Error("added-latency measurements show no run-to-run uncertainty")
	}
}

func TestSec431ThroughputCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second throughput runs; skipped in -short")
	}
	r := RunSec431(Sec431Options{Seed: 11, Duration: 2 * sim.Second})
	// Baseline near the paper's 48000 msgs/min.
	if r.BaselinePerMin < 40_000 || r.BaselinePerMin > 56_000 {
		t.Errorf("baseline = %.0f msgs/min, want ~48000", r.BaselinePerMin)
	}
	// "A decrease of almost 90%".
	if r.StopReduction < 0.75 || r.StopReduction > 0.97 {
		t.Errorf("faulty-STOP reduction = %.1f%%, want ~90%%", 100*r.StopReduction)
	}
	// "To around 12% of the normal throughput".
	if r.GapThroughputFrac < 0.05 || r.GapThroughputFrac > 0.30 {
		t.Errorf("GAP-run throughput = %.1f%% of normal, want ~12%%", 100*r.GapThroughputFrac)
	}
	// The long-period timeout must be the recovery mechanism in play.
	if r.GapLongTimeouts == 0 {
		t.Error("no long-period timeouts during the GAP run")
	}
}

func TestSec432PacketTypeCorruption(t *testing.T) {
	r := RunSec432(Sec432Options{Seed: 21})
	if !r.MappingNodeRemoved {
		t.Error("corrupted mapping exchange did not remove the node from the network")
	}
	if r.MappingSendsFailed == 0 {
		t.Error("sends to the removed node did not fail")
	}
	if !r.MappingNodeRestored {
		t.Error("node not restored by the next mapping round")
	}
	if !r.DataPacketDropped {
		t.Error("corrupted data packet not dropped as unrecognized")
	}
	if !r.DataRoutesUntouched {
		t.Error("routing tables changed after data-packet corruption")
	}
	if !r.RouteMSBConsumed || !r.RouteMSBNoIncident {
		t.Error("route-MSB packet not consumed as an error without incident")
	}
	if !r.MisrouteLost || !r.MisrouteNotAccepted {
		t.Error("misrouted packet outcome wrong (must be lost, never accepted by the wrong node)")
	}
}

func TestSec433AddressCorruption(t *testing.T) {
	r := RunSec433(Sec433Options{Seed: 31})
	if !r.DestDroppedByCRC || !r.DestNeitherReceived {
		t.Error("destination corruption must be dropped by CRC-8, received by neither node")
	}
	if !r.SelfUnreachable {
		t.Error("node with corrupted inbound address still received data")
	}
	if !r.SelfMappingWorks {
		t.Error("node stopped answering mapping packets")
	}
	if !r.SelfRoutingStable {
		t.Error("routing info changed during self-address corruption")
	}
	if !r.CtrlMapsInconsistent {
		t.Error("duplicate controller address produced consistent maps")
	}
	if !r.CtrlMapsVary {
		t.Error("faulty map was static; paper reports it varies per attempt")
	}
	if !r.GhostInMap || !r.RealGone || !r.GhostTrafficDrops {
		t.Error("nonexistent-address corruption outcome wrong")
	}
	if !strings.Contains(r.CtrlFigBefore, "CONSISTENT") || !strings.Contains(r.CtrlFigAfter, "INCONSISTENT") {
		t.Error("Fig. 11 renderings missing consistency verdicts")
	}
}

func TestSec434UDPChecksum(t *testing.T) {
	r := RunSec434(Sec434Options{Seed: 41})
	if !r.EvadingDelivered {
		t.Errorf("aligned swap not delivered; got %q", r.EvadingPayload)
	}
	if r.EvadingPayload != "veHa a lot of fun" {
		t.Errorf("payload = %q, want the paper's %q", r.EvadingPayload, "veHa a lot of fun")
	}
	if !r.NonEvadingDropped {
		t.Error("non-aligned corruption evaded the checksum")
	}
}

func TestPassThroughTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second throughput runs; skipped in -short")
	}
	r := RunPassThrough(PassThroughOptions{Seed: 51})
	if r.RateImpact < -0.005 || r.RateImpact > 0.005 {
		t.Errorf("rate impact = %+.3f%%, want ~0 (no observable impact)", 100*r.RateImpact)
	}
	if r.WithLoss != 0 || r.WithoutLoss != 0 {
		t.Errorf("loss with/without = %.3f/%.3f, want 0/0", r.WithLoss, r.WithoutLoss)
	}
	if !r.BothDirsSeen {
		t.Error("injector did not observe both directions")
	}
}
