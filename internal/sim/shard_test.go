package sim

import (
	"testing"
)

func TestPeekNext(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.PeekNext(); ok {
		t.Fatal("empty kernel reported a pending event")
	}
	k.At(40*Nanosecond, func() {})
	k.At(10*Nanosecond, func() {})
	at, ok := k.PeekNext()
	if !ok || at != 10*Nanosecond {
		t.Fatalf("PeekNext = %v, %v; want 10ns, true", at, ok)
	}
	// Peeking must not execute or advance anything.
	if k.Processed() != 0 || k.Now() != 0 {
		t.Fatalf("peek had side effects: processed=%d now=%v", k.Processed(), k.Now())
	}
}

func TestShardGroupDrains(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2), NewKernel(3)}
	var fired []int
	for i, k := range kernels {
		i := i
		k.At(Time(i+1)*100*Nanosecond, func() { fired = append(fired, i) })
	}
	g := NewShardGroup(kernels, 50*Nanosecond)
	defer g.Close()
	if !g.Run(Second) {
		t.Fatal("group did not drain")
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if g.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", g.Processed())
	}
	// All clocks align at the last window's horizon.
	now := kernels[0].Now()
	for i, k := range kernels {
		if k.Now() != now {
			t.Fatalf("kernel %d clock %v != kernel 0 clock %v", i, k.Now(), now)
		}
	}
}

func TestShardGroupLimit(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	ran := false
	kernels[0].At(10*Microsecond, func() { ran = true })
	g := NewShardGroup(kernels, 100*Nanosecond)
	defer g.Close()
	if g.Run(Microsecond) {
		t.Fatal("group claimed to drain with an event pending beyond the limit")
	}
	if ran {
		t.Fatal("event beyond the limit executed")
	}
	for i, k := range kernels {
		if k.Now() != Microsecond {
			t.Fatalf("kernel %d clock %v, want limit %v", i, k.Now(), Time(Microsecond))
		}
		if i == 0 && k.Pending() != 1 {
			t.Fatalf("kernel 0 pending %d, want 1", k.Pending())
		}
	}
	// Resuming past the event finishes the job.
	if !g.Run(20 * Microsecond) {
		t.Fatal("resumed run did not drain")
	}
	if !ran {
		t.Fatal("event never executed")
	}
}

func TestShardGroupWindowSchedule(t *testing.T) {
	// Events at 0ns, 10ns, 100ns on different kernels with a 50ns
	// lookahead: window 1 anchors at 0 and covers [0, 49], absorbing the
	// 10ns event; window 2 anchors at 100. The schedule is a pure
	// function of the union of events, not of their placement.
	for _, split := range [][]int{{0, 0, 0}, {0, 1, 0}, {1, 0, 1}} {
		kernels := []*Kernel{NewKernel(1), NewKernel(2)}
		times := []Time{0, 10 * Nanosecond, 100 * Nanosecond}
		for i, at := range times {
			kernels[split[i]].At(at, func() {})
		}
		g := NewShardGroup(kernels, 50*Nanosecond)
		if !g.Run(Second) {
			t.Fatal("did not drain")
		}
		if g.Windows() != 2 {
			t.Fatalf("split %v: %d windows, want 2", split, g.Windows())
		}
		g.Close()
	}
}

// TestShardGroupExchange wires a minimal cross-shard channel: each executed
// event on kernel 0 buffers a message that the exchange hook injects into
// kernel 1 at send time + lookahead. The injection must never land in a
// peer's past (the kernel would panic), and each message must make exactly
// one barrier crossing.
func TestShardGroupExchange(t *testing.T) {
	const lookahead = 50 * Nanosecond
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	type msg struct{ at Time }
	var outbox []msg
	received := 0
	var send func()
	sends := 0
	send = func() {
		outbox = append(outbox, msg{at: kernels[0].Now() + lookahead})
		if sends++; sends < 5 {
			kernels[0].After(7*Nanosecond, send)
		}
	}
	kernels[0].At(0, send)
	g := NewShardGroup(kernels, lookahead)
	defer g.Close()
	g.SetExchange(func() int {
		n := len(outbox)
		for _, m := range outbox {
			m := m
			kernels[1].At(m.at, func() { received++ })
		}
		outbox = outbox[:0]
		return n
	})
	if !g.Run(Second) {
		t.Fatal("did not drain")
	}
	if received != 5 {
		t.Fatalf("received %d messages, want 5", received)
	}
	if g.Exchanged() != 5 {
		t.Fatalf("Exchanged = %d, want 5", g.Exchanged())
	}
}

func TestShardGroupSingle(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.At(10*Nanosecond, func() { n++ })
	g := NewShardGroup([]*Kernel{k}, 20*Nanosecond)
	defer g.Close()
	if !g.Run(Second) || n != 1 {
		t.Fatalf("single-shard run: n=%d", n)
	}
}

func TestShardGroupValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("no kernels", func() { NewShardGroup(nil, Nanosecond) })
	mustPanic("zero lookahead", func() { NewShardGroup([]*Kernel{NewKernel(1)}, 0) })
}
