package myrinet

import (
	"testing"

	"netfi/internal/phy"
	"netfi/internal/sim"
)

// newRecoveryEndpoint is newTestEndpoint with the recovery layer enabled.
func newRecoveryEndpoint(t *testing.T, k *sim.Kernel, name string, rc RecoveryConfig) *testEndpoint {
	t.Helper()
	ep := &testEndpoint{}
	out := phy.NewLink(k, phy.LinkConfig{Name: name + ".out", CharPeriod: CharPeriod},
		phy.ReceiverFunc(func(chars []phy.Character) { ep.sent = append(ep.sent, chars...) }))
	ep.lc = NewLinkController(k, LinkControllerConfig{
		Name:     name,
		Out:      out,
		Counters: NewCounters(),
		Recovery: rc,
	})
	return ep
}

func TestLinkResetOnLongTimeout(t *testing.T) {
	// With recovery enabled the long-period termination escalates to a
	// full link reset: RESET on the wire, counters, transmitter freed.
	k := sim.NewKernel(1)
	ep := newRecoveryEndpoint(t, k, "a", RecoveryConfig{Enabled: true})
	terminated := false
	ep.lc.EnqueuePacket(packetChars(1000), func(term bool) { terminated = term })
	k.RunUntil(txChunkChars * CharPeriod)
	var refresh func()
	refresh = func() {
		ep.lc.Receive([]phy.Character{StopChar()})
		if k.Now() < LongTimeout+sim.Millisecond {
			k.After(StopRefresh, refresh)
		}
	}
	refresh()
	k.RunUntil(LongTimeout + 10*sim.Millisecond)
	if !terminated {
		t.Fatal("long-period timeout did not terminate the packet")
	}
	ctr := ep.lc.Counters()
	if ctr.LinkResets != 1 {
		t.Errorf("LinkResets = %d, want 1", ctr.LinkResets)
	}
	if ep.countControl(SymbolReset) != 1 {
		t.Errorf("RESET symbols on wire = %d, want 1", ep.countControl(SymbolReset))
	}
	if ep.lc.Paused() {
		t.Error("transmitter still paused after reset")
	}
	// The link is usable again: a fresh packet goes through.
	done := false
	ep.lc.EnqueuePacket(packetChars(10), func(term bool) { done = !term })
	k.Run()
	if !done {
		t.Error("packet after reset did not transmit")
	}
}

func TestStopWatchdogResetsWedgedLink(t *testing.T) {
	// A remote that refreshes STOP forever (its consumer is wedged) never
	// lets the long timer's act-as-GO path help; the stop watchdog is the
	// deadline that finally breaks the link.
	k := sim.NewKernel(1)
	ep := newRecoveryEndpoint(t, k, "a", RecoveryConfig{
		Enabled:      true,
		StopWatchdog: 2 * sim.Millisecond, // well under LongTimeout for the test
	})
	terminated := false
	ep.lc.EnqueuePacket(packetChars(1000), func(term bool) { terminated = term })
	k.RunUntil(txChunkChars * CharPeriod)
	var refresh func()
	refresh = func() {
		ep.lc.Receive([]phy.Character{StopChar()})
		if k.Now() < 3*sim.Millisecond {
			k.After(StopRefresh, refresh)
		}
	}
	refresh()
	k.RunUntil(4 * sim.Millisecond)
	ctr := ep.lc.Counters()
	if ctr.StopWatchdogFires == 0 {
		t.Fatal("stop watchdog never fired under perpetual STOP refresh")
	}
	if !terminated {
		t.Error("in-flight packet not terminated by the watchdog")
	}
	if ctr.LinkResets == 0 {
		t.Error("watchdog fired without resetting the link")
	}
	if ep.countControl(SymbolReset) == 0 {
		t.Error("no RESET symbol on the wire")
	}
	if ctr.LongTimeouts != 0 {
		t.Errorf("LongTimeouts = %d, want 0 (watchdog should preempt)", ctr.LongTimeouts)
	}
}

func TestStopWatchdogNotRearmedByRefreshes(t *testing.T) {
	// The watchdog measures continuous STOP from the first pause; STOP
	// refreshes must not push the deadline out.
	k := sim.NewKernel(1)
	ep := newRecoveryEndpoint(t, k, "a", RecoveryConfig{
		Enabled:      true,
		StopWatchdog: sim.Millisecond,
	})
	ep.lc.EnqueuePacket(packetChars(1000), nil)
	k.RunUntil(txChunkChars * CharPeriod)
	start := k.Now()
	var refresh func()
	refresh = func() {
		ep.lc.Receive([]phy.Character{StopChar()})
		if ep.lc.Counters().StopWatchdogFires == 0 {
			k.After(StopRefresh, refresh)
		}
	}
	refresh()
	k.RunUntil(start + 2*sim.Millisecond)
	if ep.lc.Counters().StopWatchdogFires != 1 {
		t.Fatalf("StopWatchdogFires = %d, want 1", ep.lc.Counters().StopWatchdogFires)
	}
}

func TestReceiveResetFlushesSlackAndNotifies(t *testing.T) {
	k := sim.NewKernel(1)
	ep := newRecoveryEndpoint(t, k, "a", RecoveryConfig{Enabled: true})
	resets := 0
	ep.lc.SetResetHandler(func() { resets++ })
	chars := make([]phy.Character, 10)
	for i := range chars {
		chars[i] = phy.DataChar(byte(i))
	}
	ep.lc.Receive(chars)
	if ep.lc.Buffered() != 10 {
		t.Fatalf("Buffered = %d before reset", ep.lc.Buffered())
	}
	ep.lc.Receive([]phy.Character{ResetChar()})
	if ep.lc.Buffered() != 0 {
		t.Errorf("Buffered = %d after reset, want 0", ep.lc.Buffered())
	}
	if resets != 1 {
		t.Errorf("reset handler invoked %d times, want 1", resets)
	}
	ctr := ep.lc.Counters()
	if ctr.ResetsReceived != 1 || ctr.FlushedChars != 10 {
		t.Errorf("ResetsReceived=%d FlushedChars=%d, want 1/10", ctr.ResetsReceived, ctr.FlushedChars)
	}
}

func TestResetIgnoredWithoutRecovery(t *testing.T) {
	// The paper's hardware does not know the symbol: a RESET must be
	// treated like any unassigned control code.
	k := sim.NewKernel(1)
	ep := newTestEndpoint(t, k, "a")
	chars := make([]phy.Character, 5)
	for i := range chars {
		chars[i] = phy.DataChar(byte(i))
	}
	ep.lc.Receive(chars)
	ep.lc.Receive([]phy.Character{ResetChar()})
	if ep.lc.Buffered() != 5 {
		t.Errorf("Buffered = %d, want 5 (reset must be a no-op)", ep.lc.Buffered())
	}
	if ep.lc.Counters().ResetsReceived != 0 {
		t.Errorf("ResetsReceived = %d, want 0", ep.lc.Counters().ResetsReceived)
	}
}

func TestResetClearsStandingStop(t *testing.T) {
	// A reset flushes the slack past its low watermark, so the stale STOP
	// state must clear: GO goes out and the refresh chain dies.
	k := sim.NewKernel(1)
	ep := newRecoveryEndpoint(t, k, "a", RecoveryConfig{Enabled: true})
	burst := make([]phy.Character, DefaultSlackHigh)
	for i := range burst {
		burst[i] = phy.DataChar(byte(i))
	}
	ep.lc.Receive(burst)
	k.RunFor(CharPeriod)
	if ep.countControl(SymbolStop) < 1 {
		t.Fatal("no STOP at high watermark")
	}
	ep.lc.Receive([]phy.Character{ResetChar()})
	k.RunFor(CharPeriod)
	if ep.countControl(SymbolGo) != 1 {
		t.Errorf("GO count = %d, want 1 after reset cleared the buffer", ep.countControl(SymbolGo))
	}
	stops := ep.countControl(SymbolStop)
	k.RunFor(20 * StopRefresh)
	if got := ep.countControl(SymbolStop); got != stops {
		t.Errorf("STOP refresh survived the reset: %d -> %d", stops, got)
	}
}

// recoveryNet is threeNodeNet with the recovery layer enabled everywhere,
// using short test deadlines.
func recoveryNet(t *testing.T, k *sim.Kernel) (*Network, []*testHost, *Switch) {
	t.Helper()
	rc := RecoveryConfig{
		Enabled:        true,
		BlockedTimeout: 2 * sim.Millisecond,
		StopWatchdog:   4 * sim.Millisecond,
	}
	n := NewNetwork(k)
	sw := n.AddSwitch("sw0", DefaultPortCount)
	sw.SetRecovery(rc)
	hosts := make([]*testHost, 3)
	for i := range hosts {
		hosts[i] = &testHost{}
		hosts[i].ifc = NewInterface(k, InterfaceConfig{
			Name:     string(rune('A' + i)),
			MAC:      MAC{0x02, 0, 0, 0, 0, byte(i + 1)},
			ID:       NodeID(i + 1),
			Recovery: rc,
		})
		h := hosts[i]
		h.ifc.SetDataHandler(func(src MAC, payload []byte) {
			h.received = append(h.received, append([]byte(nil), payload...))
			h.srcs = append(h.srcs, src)
		})
		n.ConnectHost(hosts[i].ifc, sw, i)
	}
	ports := map[*Interface]int{}
	for i, h := range hosts {
		ports[h.ifc] = i
	}
	n.InstallStaticRoutes(ports)
	return n, hosts, sw
}

func TestSwitchBlockedTimeoutBreaksHeldPath(t *testing.T) {
	// The §4.3.1 GAP-loss hang, with the recovery layer switched on: A's
	// packet to B loses its GAP, so switch port 0 holds the A->B path
	// forever and C's packet to B queues behind it. The blocked-packet
	// watchdog terminates the stuck stream (GAP+RESET downstream),
	// releases the output, and C's packet goes through.
	k := sim.NewKernel(1)
	_, hosts, sw := recoveryNet(t, k)
	a, b, c := hosts[0], hosts[1], hosts[2]

	link := a.ifc.Controller().Out()
	killer := &gapKiller{dst: link.Dst(), remain: 1}
	link.SetDst(killer)

	if err := a.ifc.Send(b.ifc.MAC(), []byte("loses its gap")); err != nil {
		t.Fatal(err)
	}
	k.RunFor(100 * sim.Microsecond)
	if err := c.ifc.Send(b.ifc.MAC(), []byte("queued behind")); err != nil {
		t.Fatal(err)
	}
	k.Run()

	if killer.killed != 1 {
		t.Fatalf("gapKiller killed %d GAPs, want 1", killer.killed)
	}
	if len(b.received) != 1 || string(b.received[0]) != "queued behind" {
		t.Fatalf("B received %q, want C's packet after recovery", b.received)
	}
	p0 := sw.PortCounters(0)
	if p0.BlockedTimeouts != 1 {
		t.Errorf("port 0 BlockedTimeouts = %d, want 1", p0.BlockedTimeouts)
	}
	if p0.LinkResets == 0 {
		t.Error("port 0 recorded no link reset")
	}
	if p0.Drops[DropBlocked] != 1 {
		t.Errorf("port 0 DropBlocked = %d, want 1", p0.Drops[DropBlocked])
	}
	bc := b.ifc.Counters()
	if bc.ResetsReceived == 0 {
		t.Error("B's interface never saw the forward RESET")
	}
	// The RESET flushes B's slack — including the terminating GAP — so
	// the partial packet dies as a reset abort, not a CRC failure.
	if bc.Drops[DropReset] != 1 {
		t.Errorf("B DropReset = %d, want 1 (partial packet aborted)", bc.Drops[DropReset])
	}
}

func TestSwitchHeldPathHangsWithoutRecovery(t *testing.T) {
	// The same scenario with recovery disabled reproduces the paper: the
	// path stays held, C's packet never arrives, and the simulation
	// simply runs out of events with the output port still owned.
	k := sim.NewKernel(1)
	_, hosts, sw := threeNodeNet(t, k, false)
	a, b, c := hosts[0], hosts[1], hosts[2]

	link := a.ifc.Controller().Out()
	killer := &gapKiller{dst: link.Dst(), remain: 1}
	link.SetDst(killer)

	if err := a.ifc.Send(b.ifc.MAC(), []byte("loses its gap")); err != nil {
		t.Fatal(err)
	}
	k.RunFor(100 * sim.Microsecond)
	if err := c.ifc.Send(b.ifc.MAC(), []byte("never arrives")); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Second)

	if len(b.received) != 0 {
		t.Fatalf("B received %q, want nothing (paper hang)", b.received)
	}
	if sw.ports[1].owner == nil {
		t.Error("output port released without recovery — hang not reproduced")
	}
	if got := sw.PortCounters(0).BlockedTimeouts; got != 0 {
		t.Errorf("BlockedTimeouts = %d with recovery off, want 0", got)
	}
}

func TestHostInterfaceAbandonsReassemblyOnReset(t *testing.T) {
	// A RESET arriving mid-reassembly (no terminating GAP seen) must drop
	// the partial packet and leave the parser clean for the next one.
	k := sim.NewKernel(1)
	rc := RecoveryConfig{Enabled: true}
	a := newTestHost(k, "A", 1, 1, MappingConfig{})
	b := &testHost{}
	b.ifc = NewInterface(k, InterfaceConfig{
		Name: "B", MAC: MAC{0x02, 0, 0, 0, 0, 2}, ID: 2, Recovery: rc,
	})
	b.ifc.SetDataHandler(func(src MAC, payload []byte) {
		b.received = append(b.received, append([]byte(nil), payload...))
	})
	Connect(k, DefaultLinkConfig("ab"), a.ifc, b.ifc)
	a.ifc.SetRoute(b.ifc.MAC(), []byte{RouteFinal})
	b.ifc.SetRoute(a.ifc.MAC(), []byte{RouteFinal})

	// Tap A's wire: replace the packet's terminating GAP with a RESET.
	link := a.ifc.Controller().Out()
	inner := link.Dst()
	link.SetDst(phy.ReceiverFunc(func(chars []phy.Character) {
		out := make([]phy.Character, 0, len(chars))
		for _, ch := range chars {
			if !ch.IsData() && DecodeControl(ch.Byte()) == SymbolGap {
				out = append(out, ResetChar())
				continue
			}
			out = append(out, ch)
		}
		inner.Receive(out)
	}))
	if err := a.ifc.Send(b.ifc.MAC(), []byte("tail replaced by reset")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 0 {
		t.Fatalf("B received %q, want nothing", b.received)
	}
	if got := b.ifc.Counters().Drops[DropReset]; got != 1 {
		t.Errorf("DropReset = %d, want 1", got)
	}
	// Parser is clean: an untouched follow-up packet delivers.
	link.SetDst(inner)
	if err := a.ifc.Send(b.ifc.MAC(), []byte("clean again")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(b.received) != 1 || string(b.received[0]) != "clean again" {
		t.Errorf("B received %q after reset, want the follow-up packet", b.received)
	}
}
