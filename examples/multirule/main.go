// Three concurrent trigger rules in a single stream pass — the capability
// the single-pattern register file of the original injector cannot express.
// One serial configuration arms:
//
//   - rule 1, a control-symbol toggle: flips one bit of a GAP. The paper's
//     robust decoding forgives single faults on GO and STOP, but GAP has no
//     tolerated degraded form, so the toggled symbol decodes as unknown and
//     the packet boundary vanishes (§4.3.1). MODE AFTER:3 aims it at the
//     fourth GAP, truncating the last packet of the run.
//   - rule 2, a route-byte replace: rewrites the first packet's source-route
//     byte from port 1 to port 2, misrouting it. The CRC-8 is left stale, so
//     the wrong destination discards it (§4.3.3's failure mode, reached
//     through the route instead of the MAC).
//   - rule 3, a capture-only watch: matches the workload's UDP port pair and
//     four wildcards, landing the trigger exactly on the UDP checksum byte —
//     observation without perturbation (§4.3.4's view of the stream).
//
// Four UDP packets later, the per-rule match/fire counters tell the story.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

func main() {
	tb := campaign.NewTestbed(campaign.TestbedConfig{Seed: 42})

	// Count deliveries at the intended destination (node1) and at the
	// misroute victim (node2).
	var gotNode1, gotNode2 int
	const srcPort, dstPort = 9000, 9001 // 0x23 0x28 / 0x23 0x29 on the wire
	if _, err := tb.Nodes[1].Bind(dstPort, func(myrinet.MAC, uint16, []byte) { gotNode1++ }); err != nil {
		panic(err)
	}
	if _, err := tb.Nodes[2].Bind(dstPort, func(myrinet.MAC, uint16, []byte) { gotNode2++ }); err != nil {
		panic(err)
	}

	cmds := []string{
		"DIR L",
		"RULE ADD 1 MODE AFTER:3 ACT TOGGLE PAT C0C VEC 01",
		"RULE ADD 2 MODE ONCE ACT REPLACE PAT 81 VEC 82",
		"RULE ADD 3 ACT CAP PAT 23 28 23 29 -- -- -- --",
	}
	tb.Configure(cmds...)
	// RULE lines outlast Configure's per-command budget at 115200 baud;
	// drain fully and insist every ADD was acknowledged before traffic.
	tb.K.RunFor(20 * sim.Millisecond)
	for i, resp := range tb.Console.Responses() {
		if resp != "OK" {
			panic(fmt.Sprintf("command %q -> %q", cmds[i], resp))
		}
	}

	crcBefore := tb.Nodes[2].Interface().Counters().Drops[myrinet.DropCRC]
	for i := 1; i <= 4; i++ {
		tb.TapNode().SendUDP(campaign.NodeMAC(1), srcPort, dstPort,
			[]byte(fmt.Sprintf("rule engine demo %d", i)))
	}
	tb.K.RunFor(20 * sim.Millisecond)

	eng := tb.Injector.Engine(campaign.DirOutbound)
	st := eng.RuleProgram().Stats()
	fmt.Printf("rule set: %d rules compiled to %s (%d DFA states)\n",
		st.Rules, st.Mode, st.DFAStates)
	names := map[int]string{
		1: "GAP bit-toggle   (AFTER:3)",
		2: "route replace    (ONCE)   ",
		3: "UDP cksum watch  (CAP)    ",
	}
	for _, r := range eng.Rules() {
		m, f, _ := eng.RuleCounters(r.ID)
		fmt.Printf("rule %d %s matches=%d fires=%d\n", r.ID, names[r.ID], m, f)
	}
	crcDrops := tb.Nodes[2].Interface().Counters().Drops[myrinet.DropCRC] - crcBefore
	fmt.Printf("sent 4 packets to node1: delivered node1=%d node2=%d; node2 CRC drops=%d\n",
		gotNode1, gotNode2, crcDrops)
	fmt.Println("packet 1 misrouted and CRC-dropped, packet 4 lost its GAP; 2 and 3 arrived")

	fmt.Println("\nfull campaign: go run ./cmd/netfi multirule")
}
