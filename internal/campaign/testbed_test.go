package campaign

import (
	"testing"

	"netfi/internal/core"
	"netfi/internal/sim"
)

func TestTestbedBaselineLossFree(t *testing.T) {
	// The Fig. 10 test bed under full contended load, injector in
	// pass-through: flow control must make the baseline loss-free.
	tb := NewTestbed(TestbedConfig{Seed: 1})
	load := tb.StartLoad(LoadConfig{})
	tb.K.RunFor(2 * sim.Second)
	load.Stop()
	tb.K.RunFor(100 * sim.Millisecond)
	if load.Sent() == 0 {
		t.Fatal("load sent nothing")
	}
	if load.Received() != load.Sent() {
		t.Errorf("baseline loss: sent %d received %d (%.1f%%)",
			load.Sent(), load.Received(), 100*load.LossRate())
	}
	if load.CorruptAccepted() != 0 {
		t.Errorf("corrupt payloads accepted at baseline: %d", load.CorruptAccepted())
	}
	// ~800 msg/s per node x 3 nodes x 2 s.
	if load.Sent() < 4000 || load.Sent() > 5200 {
		t.Errorf("sent = %d, want ~4800", load.Sent())
	}
}

func TestTestbedFlowControlActive(t *testing.T) {
	// The contended workload must actually exercise STOP/GO — the Table 4
	// campaign corrupts those symbols, so they need to exist.
	tb := NewTestbed(TestbedConfig{Seed: 1})
	load := tb.StartLoad(LoadConfig{})
	tb.K.RunFor(sim.Second)
	load.Stop()
	tb.K.RunFor(50 * sim.Millisecond)
	var stops, gos uint64
	for p := 0; p < tb.Switch.Ports(); p++ {
		c := tb.Switch.PortCounters(p)
		stops += c.StopsSent
		gos += c.GosSent
	}
	if stops == 0 || gos == 0 {
		t.Errorf("no flow control under contended load: stops=%d gos=%d", stops, gos)
	}
}

func TestTestbedMappingWarmup(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1, Mapping: true, MapPeriod: 100 * sim.Millisecond})
	// After warmup every node must have routes to both others.
	for i, n := range tb.Nodes {
		for j := range tb.Nodes {
			if i == j {
				continue
			}
			if _, ok := n.Interface().Route(NodeMAC(j)); !ok {
				t.Errorf("node %d missing route to node %d after warmup", i, j)
			}
		}
	}
	if !tb.Nodes[2].Interface().MCP().IsMapper() {
		t.Error("highest-ID node is not the mapper")
	}
}

func TestTestbedSerialConfiguration(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1})
	tb.Configure("DIR L", "MODE ONCE", "COMPARE -- -- -- C0F")
	if tb.Injector.Engine(DirOutbound).Config().Match != core.MatchOnce {
		t.Error("serial configuration did not reach the injector")
	}
	for _, r := range tb.Console.Responses() {
		if r != "OK" {
			t.Errorf("unexpected response %q", r)
		}
	}
}

func TestTestbedDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		tb := NewTestbed(TestbedConfig{Seed: 42})
		load := tb.StartLoad(LoadConfig{})
		tb.K.RunFor(500 * sim.Millisecond)
		load.Stop()
		tb.K.RunFor(50 * sim.Millisecond)
		return load.Sent(), load.Received()
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Errorf("runs diverged: (%d,%d) vs (%d,%d)", s1, r1, s2, r2)
	}
}

func TestTestbedInjectorSeesTraffic(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1})
	load := tb.StartLoad(LoadConfig{})
	tb.K.RunFor(200 * sim.Millisecond)
	load.Stop()
	tb.K.RunFor(50 * sim.Millisecond)
	chars, _, _ := tb.Injector.Engine(DirOutbound).Stats()
	if chars == 0 {
		t.Error("injector saw no outbound characters")
	}
	total, _ := tb.Injector.PacketStats(DirOutbound).Packets()
	if total == 0 {
		t.Error("packet stats counted nothing")
	}
	// The per-identifier counters must attribute traffic to the tapped
	// node's source address (§3.2 statistics gathering).
	src := [6]byte(NodeMAC(0))
	dst := [6]byte(NodeMAC(1))
	if tb.Injector.PacketStats(DirOutbound).PairCount(src, dst) == 0 {
		t.Error("no packets attributed to tap->node1")
	}
}
