// Chameleon-style correlated failures, §4.4: "Chameleon contains
// application processes that block while waiting for certain messages. If
// errors in the underlying Myrinet network cause a node to hang, processes
// that require the services of a blocking process will block as well,
// causing correlated failures."
//
// This example builds a three-stage request chain (node0 asks node1, node1
// asks node2, node2 answers), then uses the injector to wedge node2's link
// with continuous GAP→STOP corruption. The hang propagates backwards
// through the chain — a PASSIVE network fault becoming a correlated
// application-level outage — until a watchdog (the recovery Chameleon's
// diagnosis layer would run) notices the blocked stage.
package main

import (
	"fmt"

	"netfi/internal/campaign"
	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

func main() {
	tb := campaign.NewTestbed(campaign.TestbedConfig{Seed: 9, TapNode: 2})
	k := tb.K
	n0, n1, n2 := tb.Nodes[0], tb.Nodes[1], tb.Nodes[2]

	const (
		portReq  = 7100
		deadline = 20 * sim.Millisecond
	)
	var served, answered, chained int

	// Stage 3 (node2): the leaf service.
	if _, err := n2.Bind(portReq, func(src myrinet.MAC, srcPort uint16, data []byte) {
		served++
		n2.SendUDP(src, portReq, srcPort, append([]byte("leaf:"), data...))
	}); err != nil {
		panic(err)
	}
	// Stage 2 (node1): blocks on node2 before answering node0.
	var pending []myrinet.MAC
	if _, err := n1.Bind(portReq, func(src myrinet.MAC, srcPort uint16, data []byte) {
		pending = append(pending, src)
		n1.SendUDP(n2.MAC(), portReq+1, portReq, data) // block on the leaf
	}); err != nil {
		panic(err)
	}
	if _, err := n1.Bind(portReq+1, func(_ myrinet.MAC, _ uint16, data []byte) {
		if len(pending) == 0 {
			return
		}
		chained++
		dst := pending[0]
		pending = pending[1:]
		n1.SendUDP(dst, portReq, portReq+2, data)
	}); err != nil {
		panic(err)
	}
	// Stage 1 (node0): the requester, with a per-request watchdog.
	done := map[byte]bool{}
	hangsDiagnosed := 0
	if _, err := n0.Bind(portReq+2, func(_ myrinet.MAC, _ uint16, data []byte) {
		answered++
		if len(data) > 0 {
			done[data[len(data)-1]] = true
		}
	}); err != nil {
		panic(err)
	}
	request := func(i int) {
		id := byte(i)
		n0.SendUDP(n1.MAC(), portReq+2, portReq, []byte{id})
		k.After(deadline, func() {
			if !done[id] {
				// The Chameleon recovery path: diagnose a hang and
				// initiate recovery ([Whi01]).
				hangsDiagnosed++
			}
		})
	}

	// Phase 1: healthy chain.
	for i := 0; i < 5; i++ {
		k.After(sim.Duration(i)*5*sim.Millisecond, func() { request(i) })
	}
	k.RunFor(100 * sim.Millisecond)
	fmt.Printf("healthy phase:  answered %d/5 requests, hangs diagnosed: %d\n", answered, hangsDiagnosed)

	// Phase 2: wedge the leaf's link — a passive network fault. Every
	// GAP on node2's link becomes a spurious STOP, in both directions.
	for _, dir := range []string{"L", "R"} {
		tb.Configure(
			"DIR "+dir,
			"COMPARE -- -- -- X0C",
			"CORRUPT REPLACE -- -- -- X0F",
			"MODE ON",
		)
	}
	a0 := answered
	for i := 0; i < 5; i++ {
		k.After(sim.Duration(i)*5*sim.Millisecond, func() { request(10 + i) })
	}
	k.RunFor(150 * sim.Millisecond)
	fmt.Printf("wedged phase:   answered %d/5 requests, hangs diagnosed: %d\n", answered-a0, hangsDiagnosed)
	fmt.Printf("correlated blocking: node1 still waiting on the leaf for %d requests\n", len(pending))

	// Phase 3: clear the fault; after the network's own transient
	// recovery (stray merged streams resync at the next GAP), the chain
	// works again — "the Myrinet protocols are able to handle these
	// faults with only transient downtime".
	tb.ConfigureBothMode(false)
	k.RunFor(100 * sim.Millisecond)
	a1, h1 := answered, hangsDiagnosed
	pending = nil
	for i := 0; i < 5; i++ {
		k.After(sim.Duration(i)*5*sim.Millisecond, func() { request(20 + i) })
	}
	k.RunFor(150 * sim.Millisecond)
	fmt.Printf("recovered phase: answered %d/5 requests, new hangs: %d\n", answered-a1, hangsDiagnosed-h1)
	fmt.Printf("\nleaf served %d requests total; chain completions %d\n", served, chained)
	fmt.Println("a PASSIVE fault (data dropped, never corrupted) still propagates as correlated app-level blocking — §4.4's point")
}
